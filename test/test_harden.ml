(* Hardening subsystem: fuzzer determinism and envelope, differential
   oracle (clean programs agree; an injected miscompile is caught),
   reducer shrinking, crash artifacts, and the shared JSON summary
   envelope. *)

module P = Wsc_frontends.Stencil_program
module H = Wsc_harden
module Json = Wsc_trace.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tmp_dir (label : string) : string =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wsc-harden-%s-%d" label (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

(* ------------------------------------------------------------------ *)
(* fuzzer                                                              *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  for i = 0 to 19 do
    let a = H.Fuzz.generate ~seed:42 ~index:i in
    let b = H.Fuzz.generate ~seed:42 ~index:i in
    check (Printf.sprintf "case %d replays" i) true (a = b)
  done;
  (* case i is independent of the cases before it: a different seed
     changes the program *)
  check "seeds differ" true
    (H.Fuzz.generate ~seed:1 ~index:0 <> H.Fuzz.generate ~seed:2 ~index:0)

let test_generator_well_formed () =
  for seed = 1 to 4 do
    for i = 0 to 49 do
      let p = H.Fuzz.generate ~seed ~index:i in
      check (Printf.sprintf "s%d c%d well-formed" seed i) true
        (H.Fuzz.well_formed p)
    done
  done

let test_generator_variants () =
  (* across a modest index range all four program shapes appear *)
  let shapes = Hashtbl.create 4 in
  for i = 0 to 39 do
    let p = H.Fuzz.generate ~seed:7 ~index:i in
    let shape =
      ( List.length p.P.state,
        List.length p.P.kernels,
        List.exists (fun s -> s = "mask") p.P.state )
    in
    Hashtbl.replace shapes shape ()
  done;
  check "several program shapes" true (Hashtbl.length shapes >= 3)

let test_program_json_roundtrip () =
  for i = 0 to 19 do
    let p = H.Fuzz.generate ~seed:11 ~index:i in
    let j = H.Fuzz.program_to_json p in
    (* through text, as the artifact files store it *)
    match Json.of_string (Json.to_string j) with
    | Error e -> Alcotest.failf "case %d: JSON re-parse failed: %s" i e
    | Ok j2 -> (
        match H.Fuzz.program_of_json j2 with
        | Error e -> Alcotest.failf "case %d: program decode failed: %s" i e
        | Ok p2 -> check (Printf.sprintf "case %d round-trips" i) true (p = p2))
  done

(* ------------------------------------------------------------------ *)
(* oracle                                                              *)
(* ------------------------------------------------------------------ *)

let test_oracle_agrees_on_clean_programs () =
  for i = 0 to 4 do
    let p = H.Fuzz.generate ~seed:3 ~index:i in
    let r = H.Oracle.check p in
    (match r.H.Oracle.failure with
    | Some f ->
        Alcotest.failf "case %d rejected: %s" i (H.Oracle.failure_to_string f)
    | None -> ());
    check (Printf.sprintf "case %d ok" i) true (H.Oracle.ok r)
  done

let test_oracle_catches_injected_bug () =
  let p = H.Fuzz.generate ~seed:3 ~index:0 in
  match (H.Oracle.check ~inject_bug:true p).H.Oracle.failure with
  | None -> Alcotest.fail "injected miscompile not caught"
  | Some f ->
      check "caught as a mismatch" true
        (match f with H.Oracle.Mismatch _ -> true | _ -> false);
      check "interp tier flags it first" true
        (H.Oracle.failure_key f = "mismatch:interp")

(* ------------------------------------------------------------------ *)
(* reducer                                                             *)
(* ------------------------------------------------------------------ *)

let test_candidates_shrink () =
  for i = 0 to 9 do
    let p = H.Fuzz.generate ~seed:5 ~index:i in
    let sz = H.Fuzz.program_size p in
    List.iter
      (fun q ->
        check "candidate well-formed" true (H.Fuzz.well_formed q);
        check "candidate strictly smaller" true (H.Fuzz.program_size q < sz))
      (H.Reduce.candidates p)
  done

let test_reduce_shrinks_failing_case () =
  let p = H.Fuzz.generate ~seed:3 ~index:1 in
  let key =
    match (H.Oracle.check ~inject_bug:true p).H.Oracle.failure with
    | Some f -> H.Oracle.failure_key f
    | None -> Alcotest.fail "expected a failure to reduce"
  in
  let still_fails q =
    match (H.Oracle.check ~inject_bug:true q).H.Oracle.failure with
    | Some f -> H.Oracle.failure_key f = key
    | None -> false
  in
  let r = H.Reduce.reduce ~max_checks:80 ~still_fails p in
  check "took at least one step" true (r.H.Reduce.steps > 0);
  check "strictly smaller" true
    (H.Fuzz.program_size r.H.Reduce.reduced < H.Fuzz.program_size p);
  check "still fails the same way" true (still_fails r.H.Reduce.reduced);
  check "reduced case is well-formed" true (H.Fuzz.well_formed r.H.Reduce.reduced)

(* ------------------------------------------------------------------ *)
(* campaign + artifacts                                                *)
(* ------------------------------------------------------------------ *)

let test_campaign_clean () =
  let dir = tmp_dir "clean" in
  let cfg =
    {
      H.Campaign.default_config with
      H.Campaign.seed = 9;
      count = 5;
      crash_dir = dir;
    }
  in
  let r = H.Campaign.run cfg in
  check_int "no crashes" 0 (H.Campaign.crashes r);
  check_int "all cases ran" 5 (List.length r.H.Campaign.cases)

let test_campaign_json_deterministic () =
  let dir = tmp_dir "det" in
  let cfg =
    {
      H.Campaign.default_config with
      H.Campaign.seed = 4;
      count = 4;
      crash_dir = dir;
    }
  in
  let j1 = Json.to_string (H.Campaign.to_json (H.Campaign.run cfg)) in
  let j2 = Json.to_string (H.Campaign.to_json (H.Campaign.run cfg)) in
  check_str "byte-identical replay" j1 j2

let test_campaign_catches_and_dumps () =
  let dir = tmp_dir "bug" in
  let cfg =
    {
      H.Campaign.default_config with
      H.Campaign.seed = 3;
      count = 1;
      crash_dir = dir;
      inject_bug = true;
      reduce_budget = 80;
    }
  in
  let r = H.Campaign.run cfg in
  check_int "the miscompile is caught" 1 (H.Campaign.crashes r);
  let c = List.hd r.H.Campaign.cases in
  (match c.H.Campaign.c_reduced_size with
  | None -> Alcotest.fail "no reduction recorded"
  | Some s -> check "reduced strictly smaller" true (s < c.H.Campaign.c_size));
  match c.H.Campaign.c_artifact with
  | None -> Alcotest.fail "no artifact written"
  | Some crash_dir ->
      check "report.json exists" true
        (Sys.file_exists (Filename.concat crash_dir "report.json"));
      check "before.mlir exists" true
        (Sys.file_exists (Filename.concat crash_dir "before.mlir"));
      (* the artifact loads back and replays: same program, same defect *)
      (match H.Artifact.load crash_dir with
      | Error e -> Alcotest.failf "artifact load failed: %s" e
      | Ok a ->
          check "artifact program replays the case" true
            (a.H.Artifact.program = H.Fuzz.generate ~seed:3 ~index:0);
          check "artifact remembers the bug flag" true a.H.Artifact.inject_bug;
          (match a.H.Artifact.reduced with
          | None -> Alcotest.fail "artifact lost the reduced case"
          | Some red ->
              check "stored reduction still fails the same way" true
                (match (H.Oracle.check ~inject_bug:true red).H.Oracle.failure with
                | Some f -> H.Oracle.failure_key f = a.H.Artifact.key
                | None -> false)))

(* ------------------------------------------------------------------ *)
(* shared JSON envelope                                                *)
(* ------------------------------------------------------------------ *)

let test_summary_envelope () =
  let dir = tmp_dir "env" in
  let cfg =
    {
      H.Campaign.default_config with
      H.Campaign.seed = 2;
      count = 2;
      crash_dir = dir;
    }
  in
  let doc = H.Campaign.to_json (H.Campaign.run cfg) in
  check "tool" true (Json.member "tool" doc = Some (Json.String "fuzz"));
  check "schema_version" true
    (Json.member "schema_version" doc = Some (Json.Int 1));
  check "config is an object" true
    (match Json.member "config" doc with Some (Json.Obj _) -> true | _ -> false);
  (match Json.member "results" doc with
  | Some (Json.List l) -> check_int "one result per case" 2 (List.length l)
  | _ -> Alcotest.fail "results missing");
  (* float_or_null keeps measurements and non-measurements apart *)
  check "nan -> null" true (Json.float_or_null Float.nan = Json.Null);
  check "inf -> null" true (Json.float_or_null infinity = Json.Null);
  check "finite -> float" true (Json.float_or_null 1.5 = Json.Float 1.5)

let () =
  Alcotest.run "harden"
    [
      ( "fuzz",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "well-formed" `Quick test_generator_well_formed;
          Alcotest.test_case "variants" `Quick test_generator_variants;
          Alcotest.test_case "json round-trip" `Quick test_program_json_roundtrip;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean programs agree" `Quick
            test_oracle_agrees_on_clean_programs;
          Alcotest.test_case "injected bug caught" `Quick
            test_oracle_catches_injected_bug;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "candidates shrink" `Quick test_candidates_shrink;
          Alcotest.test_case "reduces a failing case" `Quick
            test_reduce_shrinks_failing_case;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "clean campaign" `Quick test_campaign_clean;
          Alcotest.test_case "deterministic json" `Quick
            test_campaign_json_deterministic;
          Alcotest.test_case "catches, dumps, reduces" `Quick
            test_campaign_catches_and_dumps;
        ] );
      ("json", [ Alcotest.test_case "summary envelope" `Quick test_summary_envelope ]);
    ]
