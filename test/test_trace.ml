(* Tests for the trace subsystem: the hand-rolled JSON printer/parser,
   the Chrome Trace exporter's well-formedness (valid JSON, monotonic
   timestamps, matched span pairs, link flows), bit-identity of traced
   vs untraced simulations under both fabric drivers, and the
   pass-remarks plumbing. *)

module P = Wsc_frontends.Stencil_program
module B = Wsc_benchmarks.Benchmarks
module I = Wsc_dialects.Interp
module Core = Wsc_core
module Machine = Wsc_wse.Machine
module Fabric = Wsc_wse.Fabric
module Host = Wsc_wse.Host
module T = Wsc_trace.Trace
module J = Wsc_trace.Json
module A = Wsc_trace.Aggregate
module Remarks = Wsc_trace.Remarks
module Chrome = Wsc_trace.Chrome

let () = Core.Csl_stencil_interp.register ()
let check = Alcotest.(check bool)

let init_grids (p : P.t) =
  List.map
    (fun _ ->
      let g3 = I.grid_of_typ (P.field_type p) in
      I.init_grid g3;
      I.retensorize_grid g3)
    p.P.state

let contains ~(sub : string) (s : string) : bool =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(** Compile a benchmark at Tiny, collecting pass remarks. *)
let compile_with_remarks (p : P.t) =
  let remarks = ref [] in
  let pass_options =
    {
      Wsc_ir.Pass.default_options with
      on_remark = Some (Remarks.collect remarks);
    }
  in
  let compiled = Core.Pipeline.compile ~pass_options (P.compile p) in
  (compiled, !remarks)

(* ------------------------------------------------------------------ *)
(* JSON printer/parser                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Int 0;
      J.Int (-42);
      J.Int max_int;
      J.Float 1.5;
      J.Float (-0.25);
      J.Float 3.0;
      J.Float 1e30;
      J.Float 1.25e-3;
      J.String "";
      J.String "plain";
      J.String "quote\" backslash\\ newline\n tab\t cr\r ctl\x01";
      J.List [];
      J.Obj [];
      J.List [ J.Int 1; J.String "two"; J.Float 0.5; J.Null ];
      J.Obj
        [
          ("a", J.Int 1);
          ("nested", J.Obj [ ("l", J.List [ J.Bool false; J.Obj [] ]) ]);
          ("s", J.String "x:y,z");
        ];
    ]
  in
  List.iter
    (fun v ->
      match J.of_string (J.to_string v) with
      | Ok v' ->
          check
            (Printf.sprintf "roundtrip %s" (J.to_string v))
            true (v = v')
      | Error msg -> Alcotest.failf "roundtrip %s: %s" (J.to_string v) msg)
    cases

let test_json_floats_stay_numbers () =
  (* nan/inf must never leak a token Perfetto's parser rejects *)
  List.iter
    (fun f ->
      let s = J.to_string (J.Float f) in
      match J.of_string s with
      | Ok (J.Float _ | J.Int _) -> ()
      | Ok _ -> Alcotest.failf "float %h printed as non-number %s" f s
      | Error msg -> Alcotest.failf "float %h printed as invalid %s: %s" f s msg)
    [ Float.nan; Float.infinity; Float.neg_infinity; 0.0; -0.0; 1e308 ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse of %S should fail" s)
    [ ""; "{"; "[1,"; "tru"; "\"abc"; "{\"a\":}"; "1 2"; "[1 2]"; "{\"a\" 1}" ]

let test_json_accessors () =
  let v =
    J.Obj [ ("n", J.Int 3); ("f", J.Float 2.5); ("l", J.List [ J.String "x" ]) ]
  in
  check "member n" true (J.member "n" v = Some (J.Int 3));
  check "member missing" true (J.member "zzz" v = None);
  check "number of int" true (J.to_number_opt (J.Int 3) = Some 3.0);
  check "number of float" true (J.to_number_opt (J.Float 2.5) = Some 2.5);
  check "list" true
    (Option.map List.length (Option.bind (J.member "l" v) J.to_list_opt) = Some 1)

(** Every tool's envelope carries the shared schema_version, and it
    survives a print/parse round trip — downstream scripts dispatch on
    it before touching [results]. *)
let test_summary_schema_version () =
  List.iter
    (fun tool ->
      let doc =
        J.summary ~tool
          ~config:[ ("k", J.Int 1) ]
          ~results:[ J.Obj [ ("r", J.Bool true) ] ]
      in
      check (tool ^ " stamps schema_version") true
        (J.member "schema_version" doc = Some (J.Int J.schema_version));
      match J.of_string (J.to_string doc) with
      | Ok doc' ->
          check
            (tool ^ " schema_version survives roundtrip")
            true
            (J.member "schema_version" doc' = Some (J.Int J.schema_version));
          check (tool ^ " tool survives roundtrip") true
            (J.member "tool" doc' = Some (J.String tool))
      | Error msg -> Alcotest.failf "summary for %s reparse failed: %s" tool msg)
    [ "simulate"; "faults"; "fuzz"; "reduce"; "bench"; "serve"; "batch" ]

(* qcheck: roundtrip over random int/string/bool trees (floats are
   printed to 12 significant digits, so exact roundtrip is only promised
   for the scalar cases above) *)
let json_gen : J.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return J.Null;
               map (fun b -> J.Bool b) bool;
               map (fun i -> J.Int i) int;
               map (fun s -> J.String s) string_printable;
             ]
         in
         if n = 0 then leaf
         else
           frequency
             [
               (2, leaf);
               (1, map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2))));
               ( 1,
                 map
                   (fun l -> J.Obj l)
                   (list_size (int_bound 4)
                      (pair string_printable (self (n / 2)))) );
             ])

let prop_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"json print/parse roundtrip"
    (QCheck.make json_gen) (fun v ->
      match J.of_string (J.to_string v) with Ok v' -> v = v' | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* bit-identity: tracing on vs off, both drivers                       *)
(* ------------------------------------------------------------------ *)

let test_tracing_bit_identical () =
  List.iter
    (fun (d : B.descr) ->
      List.iter
        (fun driver ->
          let p = d.make B.Tiny in
          let compiled, _ = compile_with_remarks p in
          let h0 = Host.simulate ~driver Machine.wse2 compiled (init_grids p) in
          let sink = T.collector () in
          let h1 =
            Host.simulate ~driver ~trace:sink Machine.wse2 compiled (init_grids p)
          in
          let name = d.id in
          check (name ^ " cycles identical") true
            (Fabric.elapsed_cycles h0.sim = Fabric.elapsed_cycles h1.sim);
          check (name ^ " stats identical") true
            (Fabric.stats_equal (Fabric.total_stats h0.sim)
               (Fabric.total_stats h1.sim));
          List.iter2
            (fun g0 g1 ->
              check (name ^ " outputs identical") true (I.max_abs_diff g0 g1 = 0.0))
            (Host.read_all h0) (Host.read_all h1);
          check (name ^ " collected something") true (T.event_count sink > 0))
        [ Fabric.Polling; Fabric.Event_driven; Fabric.Parallel 2 ])
    B.all

(* ------------------------------------------------------------------ *)
(* exporter well-formedness                                            *)
(* ------------------------------------------------------------------ *)

type ev = { ph : string; ts : float; pid : int; tid : int; name : string; id : float }

let events_of_export (j : J.t) : ev list =
  let evs =
    match Option.bind (J.member "traceEvents" j) J.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  List.map
    (fun e ->
      let str k = Option.bind (J.member k e) J.to_string_opt in
      let num k = Option.bind (J.member k e) J.to_number_opt in
      match str "ph" with
      | None -> Alcotest.fail "event without ph"
      | Some ph ->
          {
            ph;
            ts = Option.value ~default:0.0 (num "ts");
            pid = int_of_float (Option.value ~default:0.0 (num "pid"));
            tid = int_of_float (Option.value ~default:0.0 (num "tid"));
            name = Option.value ~default:"" (str "name");
            id = Option.value ~default:0.0 (num "id");
          })
    evs

(** Spans must nest per track: every E closes an open B with the same
    name on the same (pid, tid), and nothing stays open.  The check is
    insensitive to the order of same-timestamp neighbours. *)
let check_span_pairs (name : string) (evs : ev list) : unit =
  let open_spans : (int * int, string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = (e.pid, e.tid) in
      let stack = Option.value ~default:[] (Hashtbl.find_opt open_spans key) in
      match e.ph with
      | "B" -> Hashtbl.replace open_spans key (e.name :: stack)
      | "E" ->
          if not (List.mem e.name stack) then
            Alcotest.failf "%s: E %S on track (%d,%d) without a matching B"
              name e.name e.pid e.tid;
          let removed = ref false in
          let stack' =
            List.filter
              (fun n ->
                if (not !removed) && n = e.name then begin
                  removed := true;
                  false
                end
                else true)
              stack
          in
          Hashtbl.replace open_spans key stack'
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun (pid, tid) stack ->
      if stack <> [] then
        Alcotest.failf "%s: %d span(s) left open on track (%d,%d)" name
          (List.length stack) pid tid)
    open_spans

let check_export (name : string) (sink : T.sink) : unit =
  let j =
    match J.of_string (Chrome.to_string sink) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "%s: export is not valid JSON: %s" name msg
  in
  let evs = events_of_export j in
  check (name ^ " has events") true (evs <> []);
  (* only known Chrome phases *)
  List.iter
    (fun e ->
      if not (List.mem e.ph [ "B"; "E"; "i"; "b"; "e"; "C"; "M" ]) then
        Alcotest.failf "%s: unknown phase %S" name e.ph)
    evs;
  (* timestamps are globally monotonic in file order (the exporter
     sorts), hence monotonic per track too *)
  let non_meta = List.filter (fun e -> e.ph <> "M") evs in
  ignore
    (List.fold_left
       (fun prev (e : ev) ->
         if e.ts < prev then
           Alcotest.failf "%s: timestamp %g before %g" name e.ts prev;
         e.ts)
       neg_infinity non_meta);
  List.iter
    (fun (e : ev) ->
      if e.ts < 0.0 then Alcotest.failf "%s: negative timestamp %g" name e.ts)
    non_meta;
  check_span_pairs name evs;
  (* link flows pair up by id *)
  let flows ph = List.filter (fun e -> e.ph = ph) evs in
  let begins = flows "b" and ends = flows "e" in
  check (name ^ " flow counts match") true (List.length begins = List.length ends);
  check (name ^ " has link flows") true (begins <> []);
  List.iter
    (fun (b : ev) ->
      if not (List.exists (fun (e : ev) -> e.id = b.id) ends) then
        Alcotest.failf "%s: flow id %g begun but never ended" name b.id)
    begins;
  (* per-PE spans exist on the fabric process *)
  check (name ^ " has PE spans") true
    (List.exists (fun e -> e.ph = "B" && e.pid = 0) evs);
  (* track metadata is present *)
  check (name ^ " has metadata") true (List.exists (fun e -> e.ph = "M") evs)

let test_export_wellformed () =
  List.iter
    (fun (d : B.descr) ->
      let p = d.make B.Tiny in
      let compiled, remarks = compile_with_remarks p in
      let sink = T.collector () in
      let _ = Host.simulate ~trace:sink Machine.wse2 compiled (init_grids p) in
      Remarks.emit sink remarks;
      check_export d.id sink)
    B.all

let test_export_has_compiler_track () =
  let p = (B.find "diffusion").make B.Tiny in
  let compiled, remarks = compile_with_remarks p in
  let sink = T.collector () in
  let _ = Host.simulate ~trace:sink Machine.wse2 compiled (init_grids p) in
  Remarks.emit sink remarks;
  let j =
    match J.of_string (Chrome.to_string sink) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "invalid JSON: %s" msg
  in
  let evs = events_of_export j in
  check "pass spans on compiler process" true
    (List.exists (fun e -> e.ph = "B" && e.pid = 1) evs);
  check "host markers present" true (List.exists (fun e -> e.pid = 2) evs)

(* ------------------------------------------------------------------ *)
(* pass remarks                                                        *)
(* ------------------------------------------------------------------ *)

let test_remarks_collected () =
  let p = (B.find "diffusion").make B.Tiny in
  let _, remarks = compile_with_remarks p in
  check "remarks nonempty" true (remarks <> []);
  List.iter
    (fun (r : Wsc_ir.Pass.remark) ->
      check (r.r_pass ^ " wall time sane") true (r.r_wall_s >= 0.0);
      check (r.r_pass ^ " op counts sane") true
        (r.r_ops_before > 0 && r.r_ops_after > 0))
    remarks;
  check "total wall positive" true (Remarks.total_wall_s remarks > 0.0);
  let table = Remarks.table remarks in
  check "table mentions every pass" true
    (List.for_all
       (fun (r : Wsc_ir.Pass.remark) -> contains ~sub:r.r_pass table)
       remarks);
  check "table has a total row" true (contains ~sub:"total" table)

(* ------------------------------------------------------------------ *)
(* aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let test_aggregation () =
  let p = (B.find "diffusion").make B.Tiny in
  let compiled, _ = compile_with_remarks p in
  let sink = T.collector () in
  let h = Host.simulate ~trace:sink Machine.wse2 compiled (init_grids p) in
  let summaries = Fabric.pe_summaries h.sim in
  check "one summary per PE" true
    (List.length summaries = h.sim.Fabric.width * h.sim.Fabric.height);
  let bd = A.breakdown summaries in
  check "busy pct in range" true (bd.bd_busy_pct >= 0.0 && bd.bd_busy_pct <= 100.0);
  check "blocked pct in range" true
    (bd.bd_blocked_pct >= 0.0 && bd.bd_blocked_pct <= 100.0);
  check "clock bounds ordered" true (bd.bd_max_clock >= bd.bd_min_clock);
  let links = A.links (T.events sink) in
  check "links reconstructed" true (links <> []);
  List.iter
    (fun (l : A.link) ->
      let u = A.utilization l in
      check "utilization in range" true (u >= 0.0 && u <= 1.0);
      check "link transfers positive" true (l.ln_transfers > 0))
    links;
  let dev =
    A.deviation ~bench:"diffusion" ~machine:"WSE2" ~simulated_cycles:110.0
      ~predicted_cycles:100.0
  in
  check "deviation pct" true (abs_float (dev.dv_pct -. 10.0) < 1e-9);
  check "deviation line mentions bench" true
    (contains ~sub:"diffusion" (A.deviation_line dev))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "floats stay numbers" `Quick
            test_json_floats_stay_numbers;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "summary schema_version" `Quick
            test_summary_schema_version;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "bit-identical traced/untraced" `Quick
            test_tracing_bit_identical;
        ] );
      ( "export",
        [
          Alcotest.test_case "well-formed for every benchmark" `Quick
            test_export_wellformed;
          Alcotest.test_case "compiler and host tracks" `Quick
            test_export_has_compiler_track;
        ] );
      ( "remarks",
        [ Alcotest.test_case "collected and rendered" `Quick test_remarks_collected ] );
      ( "aggregate",
        [ Alcotest.test_case "summaries, links, deviation" `Quick test_aggregation ] );
    ]
