(* Tests for the compile service (lib/serve): the LRU cache's counters
   and eviction order, single-flight dedup of concurrent misses on one
   key, the persistent worker pool's spawn discipline and
   failure propagation, the content-addressed cache key's invariance
   under the print/parse fixpoint, byte-identity of cache hits at 1/2/4
   domains, the JSON-lines protocol, per-request timeouts, corpus
   emission determinism, the batch driver, and a live server end-to-end
   over a Unix socket. *)

module S = Wsc_serve
module J = Wsc_trace.Json
module H = Wsc_harden
module Pipeline = Wsc_core.Pipeline

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(** A small deterministic corpus of real stencil modules. *)
let source i = H.Corpus.case_contents ~seed:7 ~index:i

(* ------------------------------------------------------------------ *)
(* cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_basics () =
  let c = S.Cache.create ~capacity:2 in
  check "miss on empty" true (S.Cache.find c "a" = None);
  S.Cache.add c "a" 1;
  S.Cache.add c "b" 2;
  (* touching "a" makes "b" the LRU, so inserting "c" evicts "b" *)
  check "find a" true (S.Cache.find c "a" = Some 1);
  S.Cache.add c "c" 3;
  check "b evicted" true (S.Cache.find c "b" = None);
  check "a survives" true (S.Cache.find c "a" = Some 1);
  check "c present" true (S.Cache.find c "c" = Some 3);
  let s = S.Cache.stats c in
  checki "hits" 3 s.S.Cache.hits;
  checki "misses" 2 s.S.Cache.misses;
  checki "insertions" 3 s.S.Cache.insertions;
  checki "evictions" 1 s.S.Cache.evictions;
  checki "entries" 2 s.S.Cache.entries;
  check "entries <= capacity" true (s.S.Cache.entries <= s.S.Cache.capacity);
  check "hit rate" true (abs_float (S.Cache.hit_rate s -. (3.0 /. 5.0)) < 1e-9)

(** Spin until [c] has a blocked waiter (bounded; the waiter domain is
    between [acquire] and being woken). *)
let wait_for_waiter c =
  let rec go n =
    if S.Cache.waiters c = 0 then
      if n = 0 then Alcotest.fail "waiter never blocked"
      else begin
        Unix.sleepf 0.001;
        go (n - 1)
      end
  in
  go 2000

let test_cache_single_flight () =
  let c = S.Cache.create ~capacity:4 in
  (* first caller claims the key: counted as the one miss *)
  (match S.Cache.acquire c "k" with
  | `Claimed -> ()
  | `Hit _ | `Dedup _ -> Alcotest.fail "first acquire must claim");
  (* a concurrent caller blocks until the claimant releases *)
  let d =
    Domain.spawn (fun () ->
        match S.Cache.acquire c "k" with
        | `Dedup v -> v
        | `Hit _ -> Alcotest.fail "in-flight value must arrive as `Dedup"
        | `Claimed -> Alcotest.fail "second acquire must not re-claim")
  in
  wait_for_waiter c;
  S.Cache.release c "k" (Some 42);
  checki "served the in-flight value" 42 (Domain.join d);
  let s = S.Cache.stats c in
  checki "one miss (the claim)" 1 s.S.Cache.misses;
  checki "dedup counted as a hit" 1 s.S.Cache.hits;
  checki "and separately as a dedup hit" 1 s.S.Cache.dedup_hits;
  checki "no waiter left" 0 (S.Cache.waiters c);
  (* once resolved, later acquires are plain hits, not dedups *)
  (match S.Cache.acquire c "k" with
  | `Hit 42 -> ()
  | _ -> Alcotest.fail "resolved key must be a plain hit");
  checki "plain hit is not a dedup" 1 (S.Cache.stats c).S.Cache.dedup_hits

let test_cache_single_flight_failure () =
  let c = S.Cache.create ~capacity:4 in
  (match S.Cache.acquire c "k" with
  | `Claimed -> ()
  | _ -> Alcotest.fail "first acquire must claim");
  let d = Domain.spawn (fun () -> S.Cache.acquire c "k") in
  wait_for_waiter c;
  (* the claimant's compute failed: nothing cached, a waiter re-claims *)
  S.Cache.release c "k" None;
  (match Domain.join d with
  | `Claimed -> ()
  | `Hit _ | `Dedup _ -> Alcotest.fail "waiter must re-claim after a failure");
  S.Cache.release c "k" (Some 7);
  (match S.Cache.acquire c "k" with
  | `Hit 7 -> ()
  | _ -> Alcotest.fail "retry's value must be cached");
  let s = S.Cache.stats c in
  checki "both claims are misses" 2 s.S.Cache.misses;
  checki "no dedup on the failure path" 0 s.S.Cache.dedup_hits

let test_cache_replace_and_clamp () =
  let c = S.Cache.create ~capacity:0 in
  (* capacity clamps to 1 *)
  S.Cache.add c "a" 1;
  S.Cache.add c "a" 10;
  check "replaced" true (S.Cache.find c "a" = Some 10);
  let s = S.Cache.stats c in
  checki "replace counts as insertion" 2 s.S.Cache.insertions;
  checki "replace does not evict" 0 s.S.Cache.evictions;
  checki "one entry" 1 s.S.Cache.entries;
  S.Cache.add c "b" 2;
  checki "clamped capacity evicts" 1 (S.Cache.stats c).S.Cache.evictions

(* ------------------------------------------------------------------ *)
(* pool                                                                *)
(* ------------------------------------------------------------------ *)

(** The pool must spawn exactly [domains] domains per pool, however many
    jobs run — the regression guard against spawn-per-request. *)
let test_pool_spawn_discipline () =
  let before = S.Pool.domains_spawned () in
  let hits = Atomic.make 0 in
  let p = S.Pool.create ~domains:2 (fun _i () -> Atomic.incr hits) in
  for _ = 1 to 100 do
    check "submit accepted" true (S.Pool.submit p ())
  done;
  S.Pool.drain p;
  checki "all jobs ran" 100 (Atomic.get hits);
  S.Pool.shutdown p;
  checki "exactly 2 domains spawned for 100 jobs" 2
    (S.Pool.domains_spawned () - before);
  check "submit refused after shutdown" false (S.Pool.submit p ())

exception Boom

let test_pool_failure_reraised () =
  let p = S.Pool.create ~domains:1 (fun _i bad -> if bad then raise Boom) in
  ignore (S.Pool.submit p false);
  ignore (S.Pool.submit p true);
  ignore (S.Pool.submit p false);
  S.Pool.drain p;
  (* the poisoned job must not kill the pool before the queue drains,
     and shutdown must surface it *)
  match S.Pool.shutdown p with
  | () -> Alcotest.fail "shutdown should re-raise the job exception"
  | exception Boom -> ()

(** Bounded retry: a job that fails its first attempts is requeued with
    backoff and eventually succeeds; one that always fails lands in
    [on_exhausted] instead of poisoning the pool.  Per-job attempt
    counters make the outcome deterministic across two domains. *)
let test_pool_retry_and_exhaustion () =
  let attempts = Array.init 4 (fun _ -> Atomic.make 0) in
  let exhausted = Atomic.make (-1) in
  let p =
    S.Pool.create ~domains:2 ~max_retries:2
      ~on_exhausted:(fun _i job _e -> Atomic.set exhausted job)
      (fun _i job ->
        let n = Atomic.fetch_and_add attempts.(job) 1 in
        (* job 0 succeeds at once, 1 and 2 need retries, 3 never works *)
        match job with
        | 1 when n < 1 -> raise Boom
        | 2 when n < 2 -> raise Boom
        | 3 -> raise Boom
        | _ -> ())
  in
  List.iter (fun j -> ignore (S.Pool.submit p j)) [ 0; 1; 2; 3 ];
  S.Pool.drain p;
  checki "job 1 ran twice" 2 (Atomic.get attempts.(1));
  checki "job 2 ran three times" 3 (Atomic.get attempts.(2));
  checki "job 3 exhausted its budget" 3 (Atomic.get attempts.(3));
  checki "on_exhausted saw job 3" 3 (Atomic.get exhausted);
  (* retried attempts: job 1 once, job 2 twice, job 3 twice *)
  checki "retries counted" 5 (S.Pool.retries p);
  (* every failed attempt restarts a worker: 1 + 2 + 3 *)
  checki "worker restarts counted" 6 (S.Pool.worker_restarts p);
  match S.Pool.shutdown p with
  | () -> ()
  | exception Boom -> Alcotest.fail "exhaustion must not poison the pool"

(* ------------------------------------------------------------------ *)
(* cache key: canonical under print->parse->print                      *)
(* ------------------------------------------------------------------ *)

(** The key is content-addressed over the *canonical* module text, so
    formatting noise (comments, trailing whitespace) and a full
    print/parse round trip all map to the same key, while a different
    pipeline config never does. *)
let prop_key_canonical =
  QCheck.Test.make ~count:15 ~name:"cache key canonical under reprint"
    QCheck.(pair (int_bound 1000) (int_bound 30))
    (fun (seed, index) ->
      let src = H.Corpus.case_contents ~seed ~index in
      let eng = S.Engine.create () in
      let key s =
        match S.Engine.key_of_source eng s with
        | Ok k -> k
        | Error e -> QCheck.Test.fail_reportf "keying failed: %s" e.S.Engine.e_message
      in
      let k = key src in
      let with_comment = "// formatting noise\n" ^ src ^ "\n\n" in
      let reprinted =
        Wsc_ir.Printer.op_to_string (Wsc_ir.Parser.parse_string src)
      in
      (* every field the autotuner searches must reach the cache key:
         flipping any one of them yields a distinct key, and re-keying
         under equal options yields an equal key *)
      let d = Pipeline.default_options in
      let deviations =
        [
          { d with Pipeline.inline_stencils = not d.Pipeline.inline_stencils };
          { d with Pipeline.use_varith = not d.Pipeline.use_varith };
          {
            d with
            Pipeline.promote_coefficients = not d.Pipeline.promote_coefficients;
          };
          {
            d with
            Pipeline.one_shot_reduction = not d.Pipeline.one_shot_reduction;
          };
          { d with Pipeline.fuse_fmac = not d.Pipeline.fuse_fmac };
          { d with Pipeline.fuse_fmac_pass = not d.Pipeline.fuse_fmac_pass };
          {
            d with
            Pipeline.comm_budget_bytes = d.Pipeline.comm_budget_bytes / 2;
          };
          { d with Pipeline.num_chunks_override = Some 2 };
        ]
      in
      let key_opts o =
        match S.Engine.key_of_source eng ~options:o src with
        | Ok k' -> k'
        | Error e ->
            QCheck.Test.fail_reportf "keying failed: %s" e.S.Engine.e_message
      in
      let deviant_keys = List.map key_opts deviations in
      List.for_all (fun k' -> k' <> k) deviant_keys
      && List.length (List.sort_uniq compare deviant_keys)
         = List.length deviant_keys
      && List.for_all2 ( = ) deviant_keys (List.map key_opts deviations)
      && k = key with_comment && k = key reprinted)

(* ------------------------------------------------------------------ *)
(* engine: hits byte-identical to cold compiles, at 1/2/4 domains      *)
(* ------------------------------------------------------------------ *)

let payload (r : S.Engine.result) : string =
  match
    S.Protocol.response_payload (S.Protocol.compile_response ~id:0 r)
  with
  | Some p -> p
  | None -> Alcotest.fail "expected an ok compile payload"

let cache_of (r : S.Engine.result) =
  match r.S.Engine.cache with
  | Some `Hit -> "hit"
  | Some `Miss -> "miss"
  | None -> "none"

(** Compile [sources] concurrently on [domains] workers sharing one
    engine; returns the rendered payloads in submission order. *)
let compile_all ~domains (eng : S.Engine.t) (sources : string array) :
    (string * string) array =
  let out = Array.make (Array.length sources) ("", "") in
  let p =
    S.Pool.create ~domains (fun _i (slot, src) ->
        let r = S.Engine.compile_source eng src in
        out.(slot) <- (payload r, cache_of r))
  in
  Array.iteri (fun slot src -> ignore (S.Pool.submit p (slot, src))) sources;
  S.Pool.drain p;
  S.Pool.shutdown p;
  out

let test_hits_byte_identical () =
  let sources = Array.init 6 source in
  (* the CSL bytes must also be deterministic across domain counts:
     files-only view, comparable across engines (the full payload embeds
     the cold compile's wall time, which is engine-local) *)
  let files_of (p : string) : string =
    match J.of_string p with
    | Ok doc -> (
        match J.member "files" doc with
        | Some f -> J.to_string f
        | None -> Alcotest.fail "payload without files")
    | Error e -> Alcotest.fail ("payload not JSON: " ^ e)
  in
  let baseline = ref None in
  List.iter
    (fun domains ->
      let eng = S.Engine.create () in
      let cold = compile_all ~domains eng sources in
      let warm = compile_all ~domains eng sources in
      Array.iteri
        (fun i (pc, cc) ->
          let pw, cw = warm.(i) in
          check (Printf.sprintf "d%d case %d cold is miss" domains i) true
            (cc = "miss");
          check (Printf.sprintf "d%d case %d warm is hit" domains i) true
            (cw = "hit");
          check
            (Printf.sprintf "d%d case %d hit byte-identical to cold" domains i)
            true (pw = pc))
        cold;
      let s = S.Engine.cache_stats eng in
      checki
        (Printf.sprintf "d%d hits" domains)
        (Array.length sources) s.S.Cache.hits;
      checki
        (Printf.sprintf "d%d misses" domains)
        (Array.length sources) s.S.Cache.misses;
      let files = Array.map (fun (p, _) -> files_of p) cold in
      match !baseline with
      | None -> baseline := Some files
      | Some b ->
          Array.iteri
            (fun i f ->
              check
                (Printf.sprintf "d%d case %d CSL identical to 1-domain run"
                   domains i)
                true (f = b.(i)))
            files)
    [ 1; 2; 4 ]

let test_engine_errors () =
  let eng = S.Engine.create () in
  (match (S.Engine.compile_source eng "").S.Engine.outcome with
  | Error e -> check "empty is bad-request" true (e.S.Engine.e_kind = S.Engine.Bad_request)
  | Ok _ -> Alcotest.fail "empty source compiled");
  (match (S.Engine.compile_source eng "not ir at all").S.Engine.outcome with
  | Error e ->
      check "garbage is parse failure" true
        (e.S.Engine.e_kind = S.Engine.Parse_failure)
  | Ok _ -> Alcotest.fail "garbage compiled");
  (* failures are never cached *)
  ignore (S.Engine.compile_source eng "not ir at all");
  let s = S.Engine.cache_stats eng in
  checki "no insertions from failures" 0 s.S.Cache.insertions;
  (* a deadline in the past times out without caching *)
  match
    (S.Engine.compile_source eng ~timeout_s:(-1.0) (source 0)).S.Engine.outcome
  with
  | Error e -> check "timeout kind" true (e.S.Engine.e_kind = S.Engine.Timeout)
  | Ok _ -> Alcotest.fail "expired deadline compiled"

(* ------------------------------------------------------------------ *)
(* protocol                                                            *)
(* ------------------------------------------------------------------ *)

let defaults = Pipeline.default_options

let test_protocol_roundtrip () =
  let rq =
    S.Protocol.Compile
      {
        S.Protocol.rq_id = 7;
        rq_source = "x";
        rq_options =
          { defaults with Pipeline.comm_budget_bytes = 1234 };
        rq_timeout_s = Some 2.5;
      }
  in
  (match S.Protocol.request_of_string ~defaults (S.Protocol.request_to_string rq) with
  | Ok (S.Protocol.Compile c) ->
      checki "id" 7 c.S.Protocol.rq_id;
      check "source" true (c.S.Protocol.rq_source = "x");
      checki "config" 1234 c.S.Protocol.rq_options.Pipeline.comm_budget_bytes;
      check "timeout" true (c.S.Protocol.rq_timeout_s = Some 2.5)
  | _ -> Alcotest.fail "compile round trip");
  List.iter
    (fun r ->
      check "op round trip" true
        (S.Protocol.request_of_string ~defaults (S.Protocol.request_to_string r)
        = Ok r))
    [ S.Protocol.Stats 1; S.Protocol.Shutdown 2 ]

let test_protocol_errors () =
  let bad line expect_id =
    match S.Protocol.request_of_string ~defaults line with
    | Error (id, _) -> check ("id echoed: " ^ line) true (id = expect_id)
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  bad "nonsense" None;
  bad "{\"op\":\"compile\",\"source\":\"x\"}" None;
  bad "{\"id\":3,\"op\":\"noop\"}" (Some 3);
  bad "{\"id\":4,\"op\":\"compile\"}" (Some 4);
  bad "{\"id\":5,\"op\":\"compile\",\"source\":\"x\",\"config\":{\"zzz\":1}}"
    (Some 5);
  bad
    "{\"id\":6,\"op\":\"compile\",\"source\":\"x\",\"config\":{\"use_varith\":3}}"
    (Some 6)

let test_response_envelope () =
  let eng = S.Engine.create () in
  let r = S.Engine.compile_source eng (source 0) in
  let doc = S.Protocol.compile_response ~id:9 r in
  check "tool" true (J.member "tool" doc = Some (J.String "serve"));
  check "schema_version" true
    (J.member "schema_version" doc = Some (J.Int J.schema_version));
  check "id" true (S.Protocol.response_id doc = Some 9);
  check "status" true (S.Protocol.response_status doc = Some "ok");
  check "cache" true (S.Protocol.response_cache doc = Some "miss");
  check "payload present" true (S.Protocol.response_payload doc <> None);
  (* the envelope line itself must reparse *)
  check "reparses" true
    (match J.of_string (J.to_string doc) with Ok _ -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* corpus emission                                                     *)
(* ------------------------------------------------------------------ *)

let tmpdir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) name in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let test_corpus_deterministic () =
  let d1 = tmpdir "wsc-corpus-a" and d2 = tmpdir "wsc-corpus-b" in
  let p1 = H.Corpus.emit ~dir:d1 ~seed:11 ~count:4 in
  let p2 = H.Corpus.emit ~dir:d2 ~seed:11 ~count:4 in
  checki "count" 4 (List.length p1);
  List.iter2
    (fun a b ->
      check "same filename" true (Filename.basename a = Filename.basename b);
      let read p = In_channel.with_open_bin p In_channel.input_all in
      check ("byte-identical " ^ Filename.basename a) true (read a = read b);
      (* and each file is a standalone module the parser accepts *)
      ignore (Wsc_ir.Parser.parse_file a))
    p1 p2;
  check "stamped filename" true
    (Filename.basename (List.hd p1) = H.Corpus.filename ~seed:11 ~index:0)

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

let test_batch_repeat_hits () =
  let dir = tmpdir "wsc-batch" in
  let paths = H.Corpus.emit ~dir ~seed:3 ~count:3 in
  let cfg = { S.Batch.default_config with S.Batch.domains = 1; repeat = 2 } in
  let r = S.Batch.run cfg paths in
  checki "total" 6 r.S.Batch.rp_total;
  checki "ok" 6 r.S.Batch.rp_ok;
  checki "errors" 0 r.S.Batch.rp_errors;
  checki "cache hits" 3 r.S.Batch.rp_cache.S.Cache.hits;
  checki "cache misses" 3 r.S.Batch.rp_cache.S.Cache.misses;
  (* concurrent misses on one key are single-flight ([Cache.acquire]),
     so the hit/miss totals stay exact with racing workers too — a
     repeat that races its first compile blocks and is served the
     in-flight record, counted as a (dedup) hit, never a second miss *)
  let rc =
    S.Batch.run { cfg with S.Batch.domains = 2; repeat = 3 } paths
  in
  checki "concurrent ok" 9 rc.S.Batch.rp_ok;
  checki "concurrent misses stay exact" 3 rc.S.Batch.rp_cache.S.Cache.misses;
  checki "concurrent hits stay exact" 6 rc.S.Batch.rp_cache.S.Cache.hits;
  (* unreadable files are io entries, not crashes *)
  let r2 =
    S.Batch.run
      { cfg with S.Batch.repeat = 1 }
      [ Filename.concat dir "missing.mlir" ]
  in
  checki "io errors counted" 1 r2.S.Batch.rp_errors;
  check "io status" true
    ((List.hd r2.S.Batch.rp_entries).S.Batch.en_status = "io");
  (* the report renders as the shared envelope *)
  let doc = S.Batch.report_to_json cfg r in
  check "batch tool" true (J.member "tool" doc = Some (J.String "batch"));
  check "batch schema_version" true
    (J.member "schema_version" doc = Some (J.Int J.schema_version))

let test_batch_dump_requests () =
  let dir = tmpdir "wsc-dump" in
  let paths = H.Corpus.emit ~dir ~seed:5 ~count:2 in
  let tmp = Filename.temp_file "wsc-req" ".jsonl" in
  Out_channel.with_open_bin tmp (fun oc -> S.Batch.dump_requests oc paths);
  let lines = In_channel.with_open_text tmp In_channel.input_lines in
  Sys.remove tmp;
  checki "one line per file" 2 (List.length lines);
  List.iteri
    (fun i line ->
      match S.Protocol.request_of_string ~defaults line with
      | Ok (S.Protocol.Compile c) ->
          checki "1-based id" (i + 1) c.S.Protocol.rq_id
      | _ -> Alcotest.fail "dumped line is not a compile request")
    lines

(* ------------------------------------------------------------------ *)
(* server end-to-end over a Unix socket                                *)
(* ------------------------------------------------------------------ *)

let read_line_block fd buf =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
        let s = Buffer.contents buf in
        let line = String.sub s 0 i in
        Buffer.clear buf;
        Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
        line
    | None ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then Alcotest.fail "server closed the connection early";
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ()

let test_server_socket_e2e () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "wsc-test.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  S.Server.reset_stop ();
  let cfg =
    {
      S.Server.default_config with
      S.Server.domains = 2;
      transport = S.Server.Unix_socket path;
    }
  in
  let server = Domain.spawn (fun () -> S.Server.run cfg) in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while not (Sys.file_exists path) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  check "socket appeared" true (Sys.file_exists path);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let send line = ignore (Unix.write_substring fd (line ^ "\n") 0 (String.length line + 1)) in
  let src = source 1 in
  send (S.Protocol.compile_line ~id:1 ~source:src);
  send (S.Protocol.compile_line ~id:2 ~source:src);
  send "{\"id\":3,\"op\":\"stats\"}";
  let buf = Buffer.create 4096 in
  let responses = List.init 3 (fun _ -> read_line_block fd buf) in
  let parsed =
    List.map
      (fun l ->
        match J.of_string l with
        | Ok d -> d
        | Error e -> Alcotest.fail ("bad response JSON: " ^ e))
      responses
  in
  let find id =
    match List.find_opt (fun d -> S.Protocol.response_id d = Some id) parsed with
    | Some d -> d
    | None -> Alcotest.failf "no response with id %d" id
  in
  check "1 ok" true (S.Protocol.response_status (find 1) = Some "ok");
  check "2 ok" true (S.Protocol.response_status (find 2) = Some "ok");
  (* same source twice: exactly one miss and one hit, in either finish
     order, with byte-identical payloads *)
  let c1 = S.Protocol.response_cache (find 1)
  and c2 = S.Protocol.response_cache (find 2) in
  check "one miss one hit" true
    ((c1 = Some "miss" && c2 = Some "hit") || (c1 = Some "hit" && c2 = Some "miss"));
  check "hit payload identical over the wire" true
    (S.Protocol.response_payload (find 1) = S.Protocol.response_payload (find 2));
  check "stats op answered" true
    (S.Protocol.response_status (find 3) = Some "ok");
  send "{\"id\":4,\"op\":\"shutdown\"}";
  let shutdown_resp = read_line_block fd buf in
  check "shutdown acked" true
    (match J.of_string shutdown_resp with
    | Ok d -> S.Protocol.response_id d = Some 4
    | Error _ -> false);
  let served = Domain.join server in
  checki "requests counted" 4 served;
  Unix.close fd;
  check "socket removed on shutdown" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "lru basics and counters" `Quick test_cache_basics;
          Alcotest.test_case "replace and capacity clamp" `Quick
            test_cache_replace_and_clamp;
          Alcotest.test_case "single-flight dedup of concurrent misses" `Quick
            test_cache_single_flight;
          Alcotest.test_case "failed compute wakes waiters to re-claim" `Quick
            test_cache_single_flight_failure;
        ] );
      ( "pool",
        [
          Alcotest.test_case "spawn discipline" `Quick test_pool_spawn_discipline;
          Alcotest.test_case "failure re-raised at shutdown" `Quick
            test_pool_failure_reraised;
          Alcotest.test_case "bounded retry with backoff, then exhaustion"
            `Quick test_pool_retry_and_exhaustion;
        ] );
      ( "engine",
        [
          QCheck_alcotest.to_alcotest prop_key_canonical;
          Alcotest.test_case "hits byte-identical at 1/2/4 domains" `Quick
            test_hits_byte_identical;
          Alcotest.test_case "error kinds, failures uncached, timeout" `Quick
            test_engine_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "malformed requests" `Quick test_protocol_errors;
          Alcotest.test_case "response envelope" `Quick test_response_envelope;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "seed-deterministic emission" `Quick
            test_corpus_deterministic;
        ] );
      ( "batch",
        [
          Alcotest.test_case "repeats hit the cache" `Quick test_batch_repeat_hits;
          Alcotest.test_case "dump-requests lines parse" `Quick
            test_batch_dump_requests;
        ] );
      ( "server",
        [
          Alcotest.test_case "unix socket end-to-end" `Quick
            test_server_socket_e2e;
        ] );
    ]
