(* The autotuner: seeded replay, the oracle shipping gate, and the
   tuned-config store's integration with the serve engine. *)

module B = Wsc_benchmarks.Benchmarks
module T = Wsc_tune.Tune
module S = Wsc_serve
module Pipeline = Wsc_core.Pipeline
module J = Wsc_trace.Json

let jac = B.find "jacobian"

(* small searches keep the suite fast; determinism is independent of
   search size *)
let quick_config =
  { T.default_config with T.screen = 6; top_k = 2; oracle = false }

let gated_config = { T.default_config with T.screen = 8; top_k = 3 }

let render (r : T.result) : string = J.to_string (T.to_json r)

(* ------------------------------------------------------------------ *)
(* replay: same seed, same JSON, byte for byte                         *)
(* ------------------------------------------------------------------ *)

let prop_replay =
  QCheck.Test.make ~count:3 ~name:"seeded replay byte-identical"
    QCheck.(int_bound 1000)
    (fun seed ->
      let config = { quick_config with T.seed } in
      let a = render (T.run ~config jac) in
      let b = render (T.run ~config jac) in
      (* domains must not leak into the result either *)
      let c = render (T.run ~config:{ config with T.domains = 3 } jac) in
      a = b && b = c)

(* ------------------------------------------------------------------ *)
(* the gated run: oracle pass, tuned <= default, memo saves evals      *)
(* ------------------------------------------------------------------ *)

let gated = lazy (T.run ~config:gated_config jac)

let test_gated_run () =
  let r = Lazy.force gated in
  Alcotest.(check bool) "oracle passed" true (r.T.r_oracle_ok = Some true);
  Alcotest.(check bool) "tuned no slower than default" true
    (r.T.r_tuned_cycles <= r.T.r_default_cycles);
  Alcotest.(check bool) "oracle ran at least once" true (r.T.r_oracle_checks >= 1);
  (* satellite: the per-session memo must save repeat proxy runs — the
     confirmation stage replays every candidate's screening run *)
  Alcotest.(check bool) "memo saved evaluations" true (r.T.r_evals_saved > 0);
  Alcotest.(check int) "evals balance" r.T.r_evals_total
    (r.T.r_evals_run + r.T.r_evals_saved);
  Alcotest.(check bool) "default candidate screened first" true
    (match r.T.r_candidates with
    | c :: _ ->
        c.T.c_rendered = Pipeline.options_to_string Pipeline.default_options
    | [] -> false)

(* ------------------------------------------------------------------ *)
(* register: tuned configs never ship without an oracle pass           *)
(* ------------------------------------------------------------------ *)

let test_register_gate () =
  let r = Lazy.force gated in
  (* a winner whose oracle never ran must not ship *)
  let store = S.Tuned.create () in
  Alcotest.(check bool) "oracle-skipped refused" false
    (T.register store { r with T.r_oracle_ok = None });
  (* nor one whose oracle failed *)
  Alcotest.(check bool) "oracle-failed refused" false
    (T.register store { r with T.r_oracle_ok = Some false });
  (* nor one slower than the default *)
  Alcotest.(check bool) "slower-than-default refused" false
    (T.register store
       { r with T.r_tuned_cycles = r.T.r_default_cycles +. 1.0 });
  Alcotest.(check int) "store untouched by refusals" 0 (S.Tuned.size store);
  (* the validated winner ships *)
  Alcotest.(check bool) "validated winner registered" true
    (T.register store r);
  Alcotest.(check int) "store has one entry" 1 (S.Tuned.size store);
  Alcotest.(check bool) "stored under the program key" true
    (S.Tuned.peek store r.T.r_program_key <> None)

(* ------------------------------------------------------------------ *)
(* serve integration: a tuned-cache hit compiles byte-identical to     *)
(* tuning-then-compiling cold                                          *)
(* ------------------------------------------------------------------ *)

let payload (r : S.Engine.result) : string =
  match S.Protocol.response_payload (S.Protocol.compile_response ~id:0 r) with
  | Some p -> p
  | None -> Alcotest.fail "expected an ok compile payload"

(* the emitted CSL, rendered; the full payload also carries pass wall
   times, which legitimately differ between two cold compiles *)
let csl_files (r : S.Engine.result) : string =
  match r.S.Engine.outcome with
  | Ok c ->
      String.concat "\x00"
        (List.concat_map (fun (n, c) -> [ n; c ]) c.S.Engine.files)
  | Error e -> Alcotest.fail ("expected ok compile: " ^ e.S.Engine.e_message)

let test_tuned_hit_byte_identical () =
  let r = Lazy.force gated in
  let store = S.Tuned.create () in
  Alcotest.(check bool) "registered" true (T.register store r);
  let src = T.source_for jac in
  (* the engine with the store transparently compiles under the tuned
     options *)
  let eng = S.Engine.create ~tuned:store () in
  let hot = S.Engine.compile_source eng src in
  Alcotest.(check bool) "tuned override fired" true hot.S.Engine.tuned;
  (* a store-less engine given the tuned options explicitly must produce
     the same bytes *)
  let cold = S.Engine.create () in
  let cold_r = S.Engine.compile_source cold ~options:r.T.r_tuned_options src in
  Alcotest.(check bool) "cold compile not tuned-flagged" false
    cold_r.S.Engine.tuned;
  Alcotest.(check string) "tuned hit byte-identical to cold tuned compile"
    (csl_files cold_r) (csl_files hot);
  (* resubmission hits the compile cache and keeps the tuned flag *)
  let again = S.Engine.compile_source eng src in
  Alcotest.(check bool) "cache hit" true (again.S.Engine.cache = Some `Hit);
  Alcotest.(check bool) "still tuned-flagged" true again.S.Engine.tuned;
  Alcotest.(check string) "hit byte-identical" (payload hot) (payload again);
  let hits, misses = S.Engine.tuned_counters eng in
  Alcotest.(check bool) "tuned hits counted" true (hits >= 2);
  Alcotest.(check int) "no tuned misses for this program" 0 misses

(* ------------------------------------------------------------------ *)
(* store persistence                                                   *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  let r = Lazy.force gated in
  let store = S.Tuned.create () in
  Alcotest.(check bool) "registered" true (T.register store r);
  S.Tuned.add store ~key:(S.Tuned.key_of_canonical "other program")
    { Pipeline.default_options with Pipeline.use_varith = false };
  let path = Filename.temp_file "wsc_tuned" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  S.Tuned.save_file store path;
  match S.Tuned.load_file path with
  | Error msg -> Alcotest.fail ("load_file: " ^ msg)
  | Ok loaded ->
      Alcotest.(check int) "entry count survives" (S.Tuned.size store)
        (S.Tuned.size loaded);
      Alcotest.(check string) "store JSON survives the round trip"
        (J.to_string (S.Tuned.to_json store))
        (J.to_string (S.Tuned.to_json loaded));
      (match S.Tuned.peek loaded r.T.r_program_key with
      | None -> Alcotest.fail "tuned entry lost in round trip"
      | Some o ->
          Alcotest.(check string) "options survive"
            (Pipeline.options_to_string r.T.r_tuned_options)
            (Pipeline.options_to_string o));
      Alcotest.(check bool) "missing file is an error" true
        (match S.Tuned.load_file (path ^ ".does-not-exist") with
        | Error _ -> true
        | Ok _ -> false)

let () =
  Alcotest.run "tune"
    [
      ( "search",
        [
          QCheck_alcotest.to_alcotest prop_replay;
          Alcotest.test_case "gated run: oracle, memo, ranking" `Quick
            test_gated_run;
        ] );
      ( "shipping",
        [
          Alcotest.test_case "register refuses unvalidated winners" `Quick
            test_register_gate;
          Alcotest.test_case "tuned hit byte-identical to cold tuned compile"
            `Quick test_tuned_hit_byte_identical;
          Alcotest.test_case "store save/load round trip" `Quick
            test_store_roundtrip;
        ] );
    ]
