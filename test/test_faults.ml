(* Tests for the fault-injection & resilience layer: a compiled-in but
   quiet injector must leave the simulation bit-identical to an
   uninstrumented run under both drivers; campaigns must replay
   byte-for-byte from their seed; and the recovery protocol must bring a
   faulted run back to the reference answer while charging measurable
   recovery cycles. *)

module P = Wsc_frontends.Stencil_program
module B = Wsc_benchmarks.Benchmarks
module I = Wsc_dialects.Interp
module Core = Wsc_core
module Machine = Wsc_wse.Machine
module Fabric = Wsc_wse.Fabric
module Host = Wsc_wse.Host
module Trace = Wsc_trace.Trace
module Aggregate = Wsc_trace.Aggregate
module Faults = Wsc_faults.Faults
module Campaign = Wsc_faults_campaign.Campaign

let () = Core.Csl_stencil_interp.register ()
let check = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let init_grids (p : P.t) =
  List.map
    (fun _ ->
      let g3 = I.grid_of_typ (P.field_type p) in
      I.init_grid g3;
      I.retensorize_grid g3)
    p.P.state

(* one run of [p] under [driver] with the given injector; everything the
   bit-identity comparison needs *)
let run_once ?faults driver (p : P.t) =
  let compiled = Core.Pipeline.compile (P.compile p) in
  let h = Host.simulate ?faults ~driver Machine.wse3 compiled (init_grids p) in
  (Fabric.elapsed_cycles h.sim, Fabric.total_stats h.sim, Host.read_all h)

let assert_identical name (c1, s1, o1) (c2, s2, o2) =
  check (name ^ ": elapsed cycles bit-identical") true (c1 = c2);
  (match Fabric.stats_diff s1 s2 with
  | None -> ()
  | Some msg -> Alcotest.failf "%s: aggregated pe_stats differ: %s" name msg);
  let maxd = List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff o1 o2) in
  check (name ^ ": outputs bit-identical") true (maxd = 0.0)

(* ------------------------------------------------------------------ *)
(* quiet injectors leave the simulation untouched                      *)
(* ------------------------------------------------------------------ *)

let test_null_injector_bit_identical () =
  let p = (B.find "jacobian").make B.Tiny in
  List.iter
    (fun driver ->
      let bare = run_once driver p in
      let nulled = run_once ~faults:Faults.null driver p in
      assert_identical "Null injector" bare nulled)
    [ Fabric.Polling; Fabric.Event_driven ]

(* the qcheck property of the satellite: for ANY seed, a rate-0.0
   injector (resilience on) is bit-identical to the uninstrumented run
   under both drivers *)
let prop_rate0_bit_identical =
  QCheck.Test.make ~name:"rate-0.0 injector bit-identical for any seed"
    ~count:8 QCheck.small_nat (fun seed ->
      let p = (B.find "diffusion").make B.Tiny in
      List.for_all
        (fun driver ->
          let bare = run_once driver p in
          let injector =
            Faults.create (Faults.config_for Faults.Drop ~rate:0.0 ~seed ~resilient:true)
          in
          let c1, s1, o1 = bare and c2, s2, o2 = run_once ~faults:injector driver p in
          let maxd =
            List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff o1 o2)
          in
          c1 = c2 && s1 = s2 && maxd = 0.0
          && (Faults.stats injector).drops = 0
          && (Faults.stats injector).retries = 0)
        [ Fabric.Polling; Fabric.Event_driven ])

(* ------------------------------------------------------------------ *)
(* campaign determinism                                                *)
(* ------------------------------------------------------------------ *)

let small_campaign ?(driver = Fabric.Event_driven) ?(resilient = true)
    ?(kinds = [ Faults.Drop; Faults.Halt ]) ?(rates = [ 0.05 ])
    ?(seeds = [ 1; 2 ]) () =
  Campaign.run ~driver ~kinds ~bench:"jacobian" ~size:B.Tiny ~resilient ~rates
    ~seeds ()

let test_campaign_replay_identical () =
  let r1 = small_campaign () in
  let r2 = small_campaign () in
  check "replayed report byte-identical" true
    (Campaign.to_string r1 = Campaign.to_string r2)

let test_campaign_drivers_agree () =
  let strip_header s =
    match String.index_opt s '\n' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  let re = small_campaign ~driver:Fabric.Event_driven () in
  let rp = small_campaign ~driver:Fabric.Polling () in
  check "same cells under both drivers" true
    (strip_header (Campaign.to_string re) = strip_header (Campaign.to_string rp))

(* ------------------------------------------------------------------ *)
(* the recovery protocol actually recovers                             *)
(* ------------------------------------------------------------------ *)

let test_resilient_drop_recovers () =
  let r = small_campaign ~kinds:[ Faults.Drop ] ~seeds:[ 1; 2; 3 ] () in
  check "all cells survived" true (Campaign.survival_rate r = 1.0);
  List.iter
    (fun (c : Campaign.cell) ->
      check "completed" true c.completed;
      check "schedule fired" true (c.injected > 0);
      check "every drop retransmitted" true (c.retries >= c.injected);
      check "no giveups at this rate" true (c.giveups = 0);
      check "recovery cycles charged" true (c.recovery_cycles > 0.0);
      check "divergence at float noise" true (c.divergence < 1e-4))
    r.cells

let test_resilient_corrupt_detected () =
  (* regression: the receiver-side checksum must flag the damaged copy
     (only a collision may pass), so every corruption triggers a NACK *)
  let r = small_campaign ~kinds:[ Faults.Corrupt ] ~seeds:[ 1; 2 ] () in
  check "all cells survived" true (Campaign.survival_rate r = 1.0);
  List.iter
    (fun (c : Campaign.cell) ->
      check "corruptions injected" true (c.injected > 0);
      check "checksums caught them" true (c.retries >= c.injected);
      check "result matches reference" true (c.divergence < 1e-4))
    r.cells

let test_unprotected_drop_diverges () =
  (* without the protocol the dropped wavelets read as zeroes and the
     answer is wrong — this is what resilience buys *)
  let r = small_campaign ~resilient:false ~kinds:[ Faults.Drop ] ~seeds:[ 1 ] () in
  let c = List.hd r.cells in
  check "faults landed" true (c.injected > 0);
  check "nothing retried" true (c.retries = 0);
  check "result diverged" true (c.divergence > 1e-4);
  check "cell marked dead" true (not c.survived)

let test_halt_degrades_gracefully () =
  let r = small_campaign ~kinds:[ Faults.Halt ] ~rates:[ 0.05 ] ~seeds:[ 1 ] () in
  let c = List.hd r.cells in
  check "run completed despite dead PEs" true c.completed;
  check "validity mask shrank" true (c.valid_pes < c.total_pes);
  check "some PEs still valid" true (c.valid_pes > 0);
  check "halt timeouts recorded" true (c.halt_timeouts > 0);
  check "valid region matches reference" true c.survived

let test_host_fault_report () =
  (* drive one halt cell by hand and read the host-facing mask/report *)
  let p = (B.find "jacobian").make B.Tiny in
  let compiled = Core.Pipeline.compile (P.compile p) in
  let faults =
    Faults.create (Faults.config_for Faults.Halt ~rate:0.05 ~seed:1 ~resilient:true)
  in
  let h = Host.simulate ~faults Machine.wse3 compiled (init_grids p) in
  let mask = Host.validity h in
  let invalid = ref 0 in
  Array.iter (Array.iter (fun ok -> if not ok then incr invalid)) mask;
  check "mask marks invalid PEs" true (!invalid > 0);
  (match Host.fault_report h with
  | None -> Alcotest.fail "expected a fault report"
  | Some msg ->
      check "report counts the region" true (contains msg "invalid data");
      check "report names a PE" true (contains msg "PE("));
  (* a clean run reports nothing *)
  let h0 = Host.simulate Machine.wse3 compiled (init_grids p) in
  check "clean run has no report" true (Host.fault_report h0 = None)

(* ------------------------------------------------------------------ *)
(* decision primitives                                                 *)
(* ------------------------------------------------------------------ *)

let prop_uniform_in_range =
  QCheck.Test.make ~name:"uniform is deterministic and in [0,1)" ~count:200
    QCheck.(triple small_nat small_nat (small_list small_int))
    (fun (seed, site, keys) ->
      let u = Faults.uniform ~seed ~site ~keys in
      u = Faults.uniform ~seed ~site ~keys && u >= 0.0 && u < 1.0)

let prop_checksum_detects =
  QCheck.Test.make ~name:"checksum flags any single-element damage" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 16) (float_range (-10.) 10.)) pos_float)
    (fun (a, noise) ->
      QCheck.assume (Array.length a > 0 && noise > 0.0);
      let len = Array.length a in
      let damaged = Array.copy a in
      damaged.(len / 2) <- damaged.(len / 2) +. noise;
      Faults.checksum damaged ~off:0 ~len <> Faults.checksum a ~off:0 ~len)

let test_backoff_bounded_monotone () =
  let r = Faults.default_resilience in
  let prev = ref 0.0 in
  for a = 1 to 12 do
    let b = Faults.backoff r ~attempt:a in
    check "backoff never shrinks" true (b >= !prev);
    check "backoff capped" true (b <= r.Faults.max_backoff_cycles);
    prev := b
  done;
  check "first timeout" true (Faults.backoff r ~attempt:1 = r.Faults.timeout_cycles)

(* ------------------------------------------------------------------ *)
(* surface: generated CSL protocol, trace aggregation                  *)
(* ------------------------------------------------------------------ *)

let test_resilience_section_in_csl () =
  let sec = Core.Comms_csl.resilience_section in
  List.iter
    (fun needle -> check ("section mentions " ^ needle) true (contains sec needle))
    [ "WaveletHeader"; "nack_color"; "checksum"; "max_retries"; "backoff" ];
  check "library source carries the param" true
    (contains Core.Comms_csl.source "param resilience");
  check "library source embeds the protocol" true
    (contains Core.Comms_csl.source "WaveletHeader")

let test_fault_table_aggregation () =
  check "empty trace renders (none)" true
    (contains (Aggregate.fault_table []) "(none)");
  let sink = Trace.collector () in
  Trace.instant sink ~pid:1 ~tid:7 ~cat:"fault" ~name:"drop" 10.0;
  Trace.instant sink ~pid:1 ~tid:8 ~cat:"fault" ~name:"drop" 30.0;
  Trace.instant sink ~pid:1 ~tid:7 ~cat:"fault" ~name:"retry" 12.0;
  Trace.instant sink ~pid:1 ~tid:7 ~cat:"other" ~name:"noise" 5.0;
  let table = Aggregate.fault_table (Trace.events sink) in
  check "totals only fault events" true (contains table "fault events (3 total)");
  check "rows per name" true (contains table "drop" && contains table "retry");
  check "ignores other categories" true (not (contains table "noise"))

let () =
  Alcotest.run "faults"
    [
      ( "bit-identity",
        Alcotest.test_case "Null injector, both drivers" `Quick
          test_null_injector_bit_identical
        :: List.map QCheck_alcotest.to_alcotest [ prop_rate0_bit_identical ] );
      ( "campaign",
        [
          Alcotest.test_case "replay byte-identical" `Quick
            test_campaign_replay_identical;
          Alcotest.test_case "drivers agree" `Quick test_campaign_drivers_agree;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "drops retransmitted" `Quick
            test_resilient_drop_recovers;
          Alcotest.test_case "corruption checksummed" `Quick
            test_resilient_corrupt_detected;
          Alcotest.test_case "unprotected run diverges" `Quick
            test_unprotected_drop_diverges;
          Alcotest.test_case "halt degrades gracefully" `Quick
            test_halt_degrades_gracefully;
          Alcotest.test_case "host validity and report" `Quick
            test_host_fault_report;
        ] );
      ( "primitives",
        Alcotest.test_case "backoff bounded, monotone" `Quick
          test_backoff_bounded_monotone
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_uniform_in_range; prop_checksum_detects ] );
      ( "surface",
        [
          Alcotest.test_case "csl resilience section" `Quick
            test_resilience_section_in_csl;
          Alcotest.test_case "fault event table" `Quick
            test_fault_table_aggregation;
        ] );
    ]
