(* Property-based tests over the whole system: random stencil programs
   compiled through the complete pipeline and executed on the fabric
   simulator must agree with the sequential reference interpreter; plus
   algebraic properties of the buffer-view kernel library. *)

module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp
module Core = Wsc_core
module Bufview = Wsc_core.Bufview

let () = Core.Csl_stencil_interp.register ()

(* ------------------------------------------------------------------ *)
(* random star-stencil programs                                        *)
(* ------------------------------------------------------------------ *)

(* a random star-shaped term: coefficient x access at an offset on the
   cross (so the generated program is within the pipeline's supported
   communication patterns), with optional squaring of local accesses *)
let term_gen : P.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let offset =
    oneof
      [
        return [ 0; 0; 0 ];
        map (fun d -> [ d; 0; 0 ]) (oneof [ return (-2); return (-1); return 1; return 2 ]);
        map (fun d -> [ 0; d; 0 ]) (oneof [ return (-1); return 1 ]);
        map (fun d -> [ 0; 0; d ]) (oneof [ return (-1); return 1 ]);
      ]
  in
  let* c = float_range (-2.0) 2.0 in
  let* off = offset in
  let* grid = oneofl [ "u"; "u" ] in
  let acc = P.Access (grid, off) in
  let* square = bool in
  (* only local accesses may appear non-linearly: a squared remote access
     is fine (remote-pure), but keep the generator simple and always
     linear for remote terms with several grids *)
  if square && off = [ 0; 0; 0 ] then return (P.Mul (acc, acc))
  else return (P.Mul (P.Const c, acc))

let program_gen : P.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n_terms = int_range 2 6 in
  let* terms = list_repeat n_terms term_gen in
  (* ensure at least one remote term so the kernel communicates *)
  let* d = oneofl [ 1; -1 ] in
  let terms = P.Mul (P.Const 0.3, P.Access ("u", [ d; 0; 0 ])) :: terms in
  let expr = List.fold_left (fun a t -> P.Add (a, t)) (List.hd terms) (List.tl terms) in
  let* nx = int_range 3 5 in
  let* ny = int_range 3 5 in
  let* nz = int_range 4 8 in
  let* iterations = int_range 1 3 in
  return
    {
      P.pname = "prop";
      frontend = "qcheck";
      extents = (nx, ny, nz);
      halo = 2;
      state = [ "u" ];
      kernels = [ { P.kname = "k"; output = "w"; expr } ];
      next_state = [ "w" ];
      iterations;
      use_loop = true;
      dsl_loc = 0;
    }

let print_program (p : P.t) =
  let nx, ny, nz = p.P.extents in
  let rec s = function
    | P.Const c -> Printf.sprintf "%g" c
    | P.Access (g, off) ->
        Printf.sprintf "%s[%s]" g (String.concat "," (List.map string_of_int off))
    | P.Add (a, b) -> Printf.sprintf "(%s + %s)" (s a) (s b)
    | P.Sub (a, b) -> Printf.sprintf "(%s - %s)" (s a) (s b)
    | P.Mul (a, b) -> Printf.sprintf "(%s * %s)" (s a) (s b)
    | P.Div (a, b) -> Printf.sprintf "(%s / %s)" (s a) (s b)
  in
  Printf.sprintf "%dx%dx%d x%d: %s" nx ny nz p.P.iterations
    (s (List.hd p.P.kernels).P.expr)

let run_on_fabric ?(machine = Wsc_wse.Machine.wse3) (p : P.t) : I.grid list =
  let compiled = Core.Pipeline.compile (P.compile p) in
  let init =
    List.map
      (fun _ ->
        let g3 = I.grid_of_typ (P.field_type p) in
        I.init_grid g3;
        I.retensorize_grid g3)
      p.P.state
  in
  let h = Wsc_wse.Host.simulate machine compiled init in
  Wsc_wse.Host.read_all h

let agrees p out =
  let ref_grids = P.run_reference p in
  List.for_all2 (fun a b -> I.max_abs_diff a b < 1e-4) ref_grids out

let prop_pipeline_end_to_end =
  QCheck.Test.make ~name:"random program: fabric = reference (WSE3)" ~count:40
    (QCheck.make ~print:print_program program_gen)
    (fun p -> agrees p (run_on_fabric p))

let prop_pipeline_end_to_end_wse2 =
  QCheck.Test.make ~name:"random program: fabric = reference (WSE2)" ~count:20
    (QCheck.make ~print:print_program program_gen)
    (fun p -> agrees p (run_on_fabric ~machine:Wsc_wse.Machine.wse2 p))

let masked_program_gen : P.t QCheck.Gen.t =
  (* gate the whole expression by a locally held field: forces pack mode *)
  let open QCheck.Gen in
  let* p = program_gen in
  let k = List.hd p.P.kernels in
  let expr = P.Mul (P.Access ("mask", [ 0; 0; 0 ]), k.P.expr) in
  return
    {
      p with
      P.state = p.P.state @ [ "mask" ];
      next_state = p.P.next_state @ [ "mask" ];
      kernels = [ { k with P.expr } ];
    }

let prop_pack_mode_end_to_end =
  QCheck.Test.make ~name:"random masked program: pack mode = reference" ~count:25
    (QCheck.make ~print:print_program masked_program_gen)
    (fun p -> agrees p (run_on_fabric p))

let prop_interp_oracle_after_each_stage =
  (* the interpreter oracle must agree after groups 1-3, too *)
  QCheck.Test.make ~name:"random program: staged lowering preserves semantics"
    ~count:25
    (QCheck.make ~print:print_program program_gen)
    (fun p ->
      let o = Core.Pipeline.default_options in
      let passes =
        Core.Pipeline.frontend_passes o @ Core.Pipeline.middle_passes o
      in
      let m = Wsc_ir.Pass.run_pipeline passes (P.compile p) in
      let grids =
        List.map
          (fun _ ->
            let g3 = I.grid_of_typ (P.field_type p) in
            I.init_grid g3;
            I.retensorize_grid g3)
          p.P.state
      in
      ignore (I.run_func m ~name:"main" (List.map (fun g -> I.Rgrid g) grids));
      agrees p grids)

(* ------------------------------------------------------------------ *)
(* printer / parser fuzzing                                            *)
(* ------------------------------------------------------------------ *)

open Wsc_ir.Ir

let typ_gen : typ QCheck.Gen.t =
  let open QCheck.Gen in
  let scalar = oneofl [ F16; F32; F64; I1; I16; I32; I64; Index ] in
  let dims = list_size (int_range 1 3) (int_range 1 16) in
  let bounds = list_size (int_range 1 3) (map (fun l -> (l, l + 8)) (int_range (-4) 4)) in
  oneof
    [
      scalar;
      map2 (fun d e -> Tensor (d, e)) dims scalar;
      map2 (fun d e -> Memref (d, e)) dims scalar;
      map2 (fun b e -> Temp (b, e)) bounds scalar;
      map2 (fun b e -> Field (b, e)) bounds scalar;
      (let* b = bounds in
       let* n = int_range 1 16 in
       return (Temp (b, Tensor ([ n ], F32))));
      map (fun e -> Ptr (e, Ptr_many)) scalar;
      oneofl [ Dsd Mem1d; Dsd Mem4d; Dsd Fabin; Dsd Fabout; Color ];
    ]

let prop_typ_roundtrip =
  QCheck.Test.make ~name:"random types round-trip the printer/parser" ~count:300
    (QCheck.make ~print:Wsc_ir.Printer.typ_to_string typ_gen)
    (fun t ->
      let text =
        Printf.sprintf "%%r = \"t.op\"() : () -> (%s)"
          (Wsc_ir.Printer.typ_to_string t)
      in
      let parsed = Wsc_ir.Parser.parse_string text in
      (result parsed).vtyp = t)

let attr_gen : attr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Unit_attr;
        map (fun b -> Bool_attr b) bool;
        map (fun i -> Int_attr i) (int_range (-1000) 1000);
        map (fun f -> Float_attr f) (float_range (-100.0) 100.0);
        map (fun s -> String_attr s)
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        map (fun l -> Dense_ints l) (list_size (int_range 1 4) (int_range (-9) 9));
        map (fun s -> Symbol_ref ("f" ^ s))
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 5));
      ]
  in
  sized
    (fix (fun self n ->
         if n <= 1 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Array_attr l) (list_size (int_range 0 3) (self (n / 2)));
               map
                 (fun l ->
                   Dict_attr (List.mapi (fun i a -> (Printf.sprintf "k%d" i, a)) l))
                 (list_size (int_range 0 3) (self (n / 2)));
             ]))

let fuzz_program_gen : P.t QCheck.Gen.t =
  (* qcheck only picks the (seed, index) pair; the program itself comes
     from the deterministic hardening fuzzer, so shrinking stays cheap
     and failures replay exactly *)
  QCheck.Gen.(
    map2
      (fun seed index -> Wsc_harden.Fuzz.generate ~seed ~index)
      (int_range 1 1000) (int_range 0 1000))

let prop_fuzz_module_roundtrip =
  QCheck.Test.make
    ~name:"fuzzer-generated modules: print->parse->print is a fixpoint"
    ~count:60
    (QCheck.make ~print:Wsc_harden.Fuzz.describe fuzz_program_gen)
    (fun p ->
      let s1 = Wsc_ir.Printer.op_to_string (P.compile p) in
      let s2 = Wsc_ir.Printer.op_to_string (Wsc_ir.Parser.parse_string s1) in
      s1 = s2)

let prop_fuzz_module_roundtrip_lowered =
  (* the same fixpoint must hold for the name-hint-heavy IR the lowering
     produces (groups 1-3) *)
  QCheck.Test.make
    ~name:"lowered fuzzer modules: print->parse->print is a fixpoint" ~count:15
    (QCheck.make ~print:Wsc_harden.Fuzz.describe fuzz_program_gen)
    (fun p ->
      let o = Core.Pipeline.default_options in
      let passes =
        Core.Pipeline.frontend_passes o @ Core.Pipeline.middle_passes o
      in
      let m = Wsc_ir.Pass.run_pipeline passes (P.compile p) in
      let s1 = Wsc_ir.Printer.op_to_string m in
      let s2 = Wsc_ir.Printer.op_to_string (Wsc_ir.Parser.parse_string s1) in
      s1 = s2)

let prop_attr_roundtrip =
  QCheck.Test.make ~name:"random attributes round-trip" ~count:300
    (QCheck.make attr_gen)
    (fun a ->
      let op = create_op "t.op" ~results:[] ~attrs:[ ("x", a) ] in
      let text = Wsc_ir.Printer.op_to_string op in
      match Wsc_ir.Parser.parse_string text with
      | parsed -> (
          match attr parsed "x" with
          | Some a2 ->
              (* floats print with bounded precision; everything else must
                 be structurally identical *)
              let rec approx x y =
                match (x, y) with
                | Float_attr f, Float_attr g -> Float.abs (f -. g) < 1e-6
                | Array_attr xs, Array_attr ys ->
                    List.length xs = List.length ys && List.for_all2 approx xs ys
                | Dict_attr xs, Dict_attr ys ->
                    List.length xs = List.length ys
                    && List.for_all2
                         (fun (k1, v1) (k2, v2) -> k1 = k2 && approx v1 v2)
                         xs ys
                | x, y -> x = y
              in
              approx a a2
          | None -> false))

(* ------------------------------------------------------------------ *)
(* Bufview algebra                                                     *)
(* ------------------------------------------------------------------ *)

let arr_gen n = QCheck.Gen.(array_size (return n) (float_range (-50.0) 50.0))

let prop_bufview_sub_aliases =
  QCheck.Test.make ~name:"subview writes reach the parent" ~count:200
    QCheck.(pair (int_range 0 5) (float_range (-9.0) 9.0))
    (fun (off, v) ->
      let a = Array.make 10 0.0 in
      let whole = Bufview.of_array a in
      let sub = Bufview.sub whole ~off ~len:3 in
      Bufview.set sub 1 v;
      a.(off + 1) = v)

let prop_bufview_fmac =
  QCheck.Test.make ~name:"fmac_into = a + b*s" ~count:200
    QCheck.(
      triple
        (make (arr_gen 6))
        (make (arr_gen 6))
        (float_range (-3.0) 3.0))
    (fun (a, b, s) ->
      let dst = Array.make 6 0.0 in
      Bufview.fmac_into (Bufview.of_array a) (Bufview.of_array b) s
        (Bufview.of_array dst);
      Array.for_all (fun x -> Float.is_finite x) dst
      && Array.for_all2
           (fun d (x, y) -> d = x +. (y *. s))
           dst
           (Array.map2 (fun x y -> (x, y)) a b))

let prop_bufview_inplace_accumulate =
  QCheck.Test.make ~name:"in-place add matches functional sum" ~count:200
    QCheck.(pair (make (arr_gen 8)) (make (arr_gen 8)))
    (fun (a, b) ->
      let acc = Array.copy a in
      let va = Bufview.of_array acc and vb = Bufview.of_array b in
      (* dst aliases an operand, as the accumulator reuse relies on *)
      Bufview.map2_into ( +. ) va vb va;
      Array.for_all2 (fun x (p, q) -> x = p +. q) acc
        (Array.map2 (fun p q -> (p, q)) a b))

let prop_bufview_strided =
  QCheck.Test.make ~name:"strided views" ~count:100 QCheck.(int_range 1 3)
    (fun stride ->
      let a = Array.init 12 float_of_int in
      let len = (12 + stride - 1) / stride in
      let v = Bufview.make a ~off:0 ~len ~stride () in
      let ok = ref true in
      for i = 0 to len - 1 do
        if Bufview.get v i <> float_of_int (i * stride) then ok := false
      done;
      !ok)

let prop_bufview_bounds_checked =
  QCheck.Test.make ~name:"out-of-range views rejected" ~count:50
    QCheck.(int_range 5 20)
    (fun len ->
      let a = Array.make 4 0.0 in
      match Bufview.make a ~off:0 ~len () with
      | exception Invalid_argument _ -> true
      | _ -> false)

let () =
  Alcotest.run "properties"
    [
      ( "pipeline",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pipeline_end_to_end;
            prop_pipeline_end_to_end_wse2;
            prop_pack_mode_end_to_end;
            prop_interp_oracle_after_each_stage;
          ] );
      ( "printer-parser",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_typ_roundtrip;
            prop_attr_roundtrip;
            prop_fuzz_module_roundtrip;
            prop_fuzz_module_roundtrip_lowered;
          ] );
      ( "bufview",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bufview_sub_aliases;
            prop_bufview_fmac;
            prop_bufview_inplace_accumulate;
            prop_bufview_strided;
            prop_bufview_bounds_checked;
          ] );
    ]
