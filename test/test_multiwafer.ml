(* Tests for the multi-wafer subsystem (lib/multiwafer): the balanced
   split, the decomposition plan's geometry and boundary-trimmed swaps,
   the dmp exchange-volume identity (property-based), the plan-IR
   round trip, bit-identity of the co-simulation against the
   single-wafer fabric on representative benchmarks, slice-shape dedup
   through the shared compile-engine cache, and the one-domain-per-
   wafer spawn discipline. *)

open Wsc_ir.Ir
module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module D = Wsc_multiwafer.Decompose
module MW = Wsc_multiwafer.Cosim
module Dmp = Wsc_dialects.Dmp
module Cache = Wsc_serve.Cache
module Printer = Wsc_ir.Printer
module Parser = Wsc_ir.Parser

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* split                                                               *)
(* ------------------------------------------------------------------ *)

let test_split () =
  Alcotest.(check (list (pair int int))) "even" [ (0, 2); (2, 2) ] (D.split 4 2);
  Alcotest.(check (list (pair int int)))
    "uneven" [ (0, 3); (3, 2); (5, 2) ] (D.split 7 3);
  (* tiles the extent, contiguous, widths differ by at most one *)
  List.iter
    (fun (extent, parts) ->
      let ranges = D.split extent parts in
      checki "parts" parts (List.length ranges);
      let widths = List.map snd ranges in
      let wmin = List.fold_left min extent widths in
      let wmax = List.fold_left max 0 widths in
      check "balanced" true (wmax - wmin <= 1);
      checki "covers" extent (List.fold_left ( + ) 0 widths);
      ignore
        (List.fold_left
           (fun expect (x0, w) ->
             checki "contiguous" expect x0;
             x0 + w)
           0 ranges))
    [ (4, 2); (5, 2); (7, 3); (9, 4); (16, 5) ]

(* ------------------------------------------------------------------ *)
(* plan geometry and swap trimming                                     *)
(* ------------------------------------------------------------------ *)

let test_plan_geometry () =
  let p = B.jacobian B.Tiny in
  let nx, ny, _ = p.P.extents in
  let pl = D.plan ~wafers:(2, 2) p in
  checki "slices" 4 (List.length pl.D.slices);
  (* every interior cell is owned by exactly one slice *)
  let owner = Array.make (nx * ny) 0 in
  List.iter
    (fun (s : D.slice) ->
      for x = s.D.x0 to s.D.x0 + s.D.snx - 1 do
        for y = s.D.y0 to s.D.y0 + s.D.sny - 1 do
          owner.((y * nx) + x) <- owner.((y * nx) + x) + 1
        done
      done)
    pl.D.slices;
  Array.iter (fun n -> checki "owned once" 1 n) owner;
  (* jacobian reads state at |dx|,|dy| <= 1: interior depths are 1 *)
  checki "depth west" 1 pl.D.depth_west;
  checki "depth east" 1 pl.D.depth_east;
  checki "depth north" 1 pl.D.depth_north;
  checki "depth south" 1 pl.D.depth_south;
  (* boundary wafers have no swap for the missing neighbour *)
  let dirs (s : D.slice) = List.map (fun (d : Dmp.swap_desc) -> d.Dmp.dir) s.D.swaps in
  List.iter
    (fun (s : D.slice) ->
      let ds = dirs s in
      check "west edge trimmed" true (List.mem Dmp.West ds = (s.D.wi > 0));
      check "east edge trimmed" true (List.mem Dmp.East ds = (s.D.wi < 1));
      check "north edge trimmed" true (List.mem Dmp.North ds = (s.D.wj > 0));
      check "south edge trimmed" true (List.mem Dmp.South ds = (s.D.wj < 1)))
    pl.D.slices;
  (* exchange accounting: global = Σ per-slice *)
  checki "exchange sum" (D.exchange_scalars pl)
    (List.fold_left (fun acc s -> acc + D.slice_exchange_scalars s) 0 pl.D.slices);
  (* equal slices produce equal subprograms (one compile-cache entry) *)
  let subs = List.map (D.subprogram pl) pl.D.slices in
  checki "one distinct subprogram" 1
    (List.length (List.sort_uniq compare (List.map (fun q -> q.P.extents) subs)))

let test_plan_rejections () =
  let p = B.jacobian B.Tiny in
  (* wafer grid wider than the interior *)
  (match D.plan ~wafers:(64, 1) p with
  | exception D.Decompose_error _ -> ()
  | _ -> Alcotest.fail "expected Decompose_error for an oversized grid");
  (* straight-line multi-iteration programs fuse across timesteps *)
  let fused = { p with P.use_loop = false; iterations = 3 } in
  check "decomposable says no" true
    (match D.decomposable fused with Error _ -> true | Ok () -> false);
  match D.plan ~wafers:(2, 1) fused with
  | exception D.Decompose_error _ -> ()
  | _ -> Alcotest.fail "expected Decompose_error for a fused program"

let test_plan_module_roundtrip () =
  List.iter
    (fun id ->
      let d = B.find id in
      let pl = D.plan ~wafers:(2, 2) (d.B.make B.Tiny) in
      let m = D.plan_module pl in
      Wsc_ir.Verifier.verify m;
      let s1 = Printer.op_to_string m in
      let s2 = Printer.op_to_string (Parser.parse_string s1) in
      check (id ^ " plan module fixpoint") true (String.equal s1 s2);
      (* the printed plan mentions the wafer-level op *)
      check (id ^ " has wafer_swap") true
        (let re = "dmp.wafer_swap" in
         let len = String.length re in
         let rec find i =
           i + len <= String.length s1 && (String.sub s1 i len = re || find (i + 1))
         in
         find 0))
    [ "jacobian"; "seismic" ]

(* ------------------------------------------------------------------ *)
(* exchange volume property                                            *)
(* ------------------------------------------------------------------ *)

let swap_gen : Dmp.swap_desc QCheck.Gen.t =
  let open QCheck.Gen in
  let* dir = oneofl Dmp.all_directions in
  let* depth = int_range 1 4 in
  let* z_lo = int_range 0 8 in
  let* z_len = int_range 0 8 in
  return { Dmp.dir; depth; z_lo; z_hi = z_lo + z_len }

let prop_exchange_volume =
  QCheck.Test.make ~name:"exchange_volume = Σ depth×(z_hi−z_lo)" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 6) swap_gen))
    (fun swaps ->
      let expect =
        List.fold_left
          (fun acc (s : Dmp.swap_desc) -> acc + (s.Dmp.depth * (s.Dmp.z_hi - s.Dmp.z_lo)))
          0 swaps
      in
      let t = new_value (Temp ([ (0, 4); (0, 4) ], Tensor ([ 10 ], F32))) in
      Dmp.sum_volume swaps = expect
      && Dmp.exchange_volume (Dmp.swap t ~topology:(4, 4) ~swaps) = expect
      && Dmp.exchange_volume (Dmp.wafer_swap t ~topology:(2, 2) ~swaps) = expect)

(* ------------------------------------------------------------------ *)
(* co-simulation bit-identity                                          *)
(* ------------------------------------------------------------------ *)

let engine = lazy (Wsc_serve.Engine.create ())

let run_identical id wafers =
  let d = B.find id in
  let p = d.B.make B.Tiny in
  let refs = MW.reference p in
  let r = MW.run ~engine:(Lazy.force engine) ~wafers p in
  check
    (Printf.sprintf "%s %dx%d bit-identical" id (fst wafers) (snd wafers))
    true
    (MW.grids_bit_identical refs r.MW.grids);
  r

let test_bit_identity_jacobian () =
  ignore (run_identical "jacobian" (2, 1));
  ignore (run_identical "jacobian" (2, 2))

let test_bit_identity_uvkbe () = ignore (run_identical "uvkbe" (2, 2))

(* seismic reads 4 deep: the halo is wider than a 2-wide slice is far
   from its neighbour, exercising deep-halo copies from the globals *)
let test_bit_identity_seismic () = ignore (run_identical "seismic" (2, 1))

let test_cosim_cache_dedup () =
  let e = Lazy.force engine in
  let s0 = Wsc_serve.Engine.cache_stats e in
  let d = B.find "diffusion" in
  let r = MW.run ~engine:e ~wafers:(2, 2) (d.B.make B.Tiny) in
  let s1 = r.MW.cache in
  (* Tiny is 4×4 over 2×2 wafers: all four slices are 2×2, one program *)
  checki "one distinct slice shape" 1 r.MW.distinct_programs;
  checki "one cold compile" 1 (s1.Cache.misses - s0.Cache.misses);
  checki "three cache hits" 3 (s1.Cache.hits - s0.Cache.hits);
  (* re-running hits the shared engine's cache for every wafer *)
  let r2 = MW.run ~engine:e ~wafers:(2, 2) (d.B.make B.Tiny) in
  let s2 = r2.MW.cache in
  checki "warm re-run misses" 0 (s2.Cache.misses - s1.Cache.misses);
  checki "warm re-run hits" 4 (s2.Cache.hits - s1.Cache.hits)

let test_one_domain_per_wafer () =
  let before = MW.domains_spawned () in
  let d = B.find "jacobian" in
  ignore (MW.run ~engine:(Lazy.force engine) ~wafers:(2, 1) (d.B.make B.Tiny));
  checki "2x1 spawns two domains" (before + 2) (MW.domains_spawned ());
  ignore (MW.run ~engine:(Lazy.force engine) ~wafers:(2, 2) (d.B.make B.Tiny));
  checki "2x2 spawns four more" (before + 6) (MW.domains_spawned ())

(* ------------------------------------------------------------------ *)
(* wafer-level resilience                                               *)
(* ------------------------------------------------------------------ *)

module Wf = Wsc_faults.Faults.Wafer
module MC = Wsc_multiwafer.Mwcampaign
module CK = Wsc_multiwafer.Checkpoint
module I = Wsc_dialects.Interp
module Json = Wsc_trace.Json

(* These tests deliberately use their own engines: the cache-delta
   assertions above pin exact hit/miss counts on the shared one. *)

let grid_gen : I.grid QCheck.Gen.t =
  let open QCheck.Gen in
  let* nx = int_range 1 4 in
  let* ny = int_range 1 4 in
  let* z = int_range 1 3 in
  let* data = array_size (pure (nx * ny * z)) (float_bound_inclusive 1000.0) in
  pure
    {
      I.gbounds = [ (0, nx); (0, ny) ];
      gelt = Tensor ([ z ], F32);
      gdata = data;
    }

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint take/restore is bit-identical" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 4) grid_gen))
    (fun grids ->
      let saved = List.map (fun (g : I.grid) -> Array.copy g.I.gdata) grids in
      let ck = CK.take ~epoch:3 grids in
      (* scramble the live state, as a faulty epoch would *)
      List.iter
        (fun (g : I.grid) ->
          Array.iteri (fun i v -> g.I.gdata.(i) <- (2.0 *. v) +. 1.0) g.I.gdata)
        grids;
      CK.restore ck ~into:grids;
      CK.epoch ck = 3
      && CK.bytes ck > 0
      && List.for_all2
           (fun (g : I.grid) orig ->
             Array.length g.I.gdata = Array.length orig
             && Array.for_all2
                  (fun a b ->
                    Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
                  g.I.gdata orig)
           grids saved)

let campaign ~wafers ~seed =
  MC.run ~bench:"jacobian" ~size:B.Tiny ~wafers ~resilient:true
    ~kinds:[ Wf.Halo_drop; Wf.Crash ] ~rates:[ 0.25 ] ~seeds:[ seed ] ()

let prop_campaign_replay =
  QCheck.Test.make ~name:"campaign replays byte-for-byte (2x1, 2x2)" ~count:3
    (QCheck.make QCheck.Gen.(int_range 1 50))
    (fun seed ->
      List.for_all
        (fun wafers ->
          let a = campaign ~wafers ~seed in
          let b = campaign ~wafers ~seed in
          String.equal (MC.to_string a) (MC.to_string b)
          && String.equal
               (Json.to_string (MC.to_json a))
               (Json.to_string (MC.to_json b)))
        [ (2, 1); (2, 2) ])

let recovery_of (r : MW.t) =
  match r.MW.recovery with
  | Some rc -> rc
  | None -> Alcotest.fail "expected a recovery report"

let test_null_injector_fault_free () =
  let d = B.find "diffusion" in
  let p = d.B.make B.Tiny in
  let refs = MW.reference p in
  let e = Wsc_serve.Engine.create () in
  let plain = MW.run ~engine:e ~wafers:(2, 1) p in
  check "plain run has no recovery report" true (plain.MW.recovery = None);
  let null = MW.run ~engine:e ~faults:Wf.null ~wafers:(2, 1) p in
  check "Wf.null bit-identical" true
    (MW.grids_bit_identical refs null.MW.grids);
  check "Wf.null has no recovery report" true (null.MW.recovery = None);
  let zero =
    MW.run ~engine:e ~faults:(Wf.create Wf.default_config) ~wafers:(2, 1) p
  in
  check "zero-rate injector bit-identical" true
    (MW.grids_bit_identical refs zero.MW.grids);
  let rc = recovery_of zero in
  checki "zero-rate: no rollbacks" 0 rc.MW.rollbacks;
  checki "zero-rate: no detections" 0 rc.MW.detections;
  check "zero-rate: not degraded" false rc.MW.degraded

let test_recovery_bit_identical () =
  let d = B.find "jacobian" in
  let p = d.B.make B.Tiny in
  let refs = MW.reference p in
  let e = Wsc_serve.Engine.create () in
  let total_injected = ref 0 in
  let total_rollbacks = ref 0 in
  List.iter
    (fun wafers ->
      List.iter
        (fun kind ->
          let faults =
            Wf.create (Wf.config_for kind ~rate:0.25 ~seed:1 ~resilient:true)
          in
          let r = MW.run ~engine:e ~faults ~wafers p in
          let rc = recovery_of r in
          if not rc.MW.degraded then
            check
              (Printf.sprintf "%s %dx%d recovered bit-identical"
                 (Wf.kind_to_string kind) (fst wafers) (snd wafers))
              true
              (MW.grids_bit_identical refs r.MW.grids);
          let st = Wf.stats faults in
          total_injected :=
            !total_injected + st.Wf.halo_drops + st.Wf.halo_corrupts
            + st.Wf.crashes;
          total_rollbacks := !total_rollbacks + rc.MW.rollbacks)
        [ Wf.Halo_drop; Wf.Halo_corrupt; Wf.Crash ])
    [ (2, 1); (2, 2) ];
  check "the schedule actually fired" true (!total_injected > 0);
  check "recovery actually rolled back" true (!total_rollbacks > 0)

let test_loss_degrades_gracefully () =
  let d = B.find "jacobian" in
  let p = d.B.make B.Tiny in
  let faults =
    Wf.create (Wf.config_for Wf.Loss ~rate:0.9 ~seed:1 ~resilient:true)
  in
  let r = MW.run ~faults ~wafers:(2, 1) p in
  let rc = recovery_of r in
  check "degraded" true rc.MW.degraded;
  check "lost wafers recorded" true (rc.MW.lost <> []);
  check "taint covers the lost wafers" true
    (List.for_all (fun w -> List.mem w rc.MW.tainted) rc.MW.lost)

let test_crash_unprotected_then_clean_rerun () =
  let d = B.find "jacobian" in
  let p = d.B.make B.Tiny in
  let refs = MW.reference p in
  let e = Wsc_serve.Engine.create () in
  let faults =
    Wf.create (Wf.config_for Wf.Crash ~rate:0.9 ~seed:1 ~resilient:false)
  in
  (match MW.run ~engine:e ~faults ~wafers:(2, 1) p with
  | exception MW.Cosim_error _ -> ()
  | _ -> Alcotest.fail "expected Cosim_error with resilience disabled");
  (* the failed run must leave the engine and its pool clean: an
     identical fault-free run on the same engine succeeds, from cache *)
  let r = MW.run ~engine:e ~wafers:(2, 1) p in
  check "re-run on the same engine bit-identical" true
    (MW.grids_bit_identical refs r.MW.grids);
  check "re-run served from cache" true (r.MW.cache.Cache.hits > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "multiwafer"
    [
      ( "decompose",
        [
          Alcotest.test_case "balanced split" `Quick test_split;
          Alcotest.test_case "plan geometry and swap trimming" `Quick
            test_plan_geometry;
          Alcotest.test_case "infeasible and fused programs rejected" `Quick
            test_plan_rejections;
          Alcotest.test_case "plan module round-trips" `Quick
            test_plan_module_roundtrip;
        ] );
      ("dmp", [ QCheck_alcotest.to_alcotest prop_exchange_volume ]);
      ( "cosim",
        [
          Alcotest.test_case "jacobian bit-identical (2x1, 2x2)" `Quick
            test_bit_identity_jacobian;
          Alcotest.test_case "uvkbe bit-identical (2x2)" `Quick
            test_bit_identity_uvkbe;
          Alcotest.test_case "seismic deep-halo bit-identical (2x1)" `Quick
            test_bit_identity_seismic;
          Alcotest.test_case "equal slices share one cache entry" `Quick
            test_cosim_cache_dedup;
          Alcotest.test_case "one domain per wafer" `Quick
            test_one_domain_per_wafer;
        ] );
      ( "resilience",
        [
          QCheck_alcotest.to_alcotest prop_checkpoint_roundtrip;
          QCheck_alcotest.to_alcotest prop_campaign_replay;
          Alcotest.test_case "fault-free path unchanged by null injectors"
            `Quick test_null_injector_fault_free;
          Alcotest.test_case "recovered runs bit-identical" `Quick
            test_recovery_bit_identical;
          Alcotest.test_case "exhausted retries degrade gracefully" `Quick
            test_loss_degrades_gracefully;
          Alcotest.test_case "unprotected crash raises; engine stays clean"
            `Quick test_crash_unprotected_then_clean_rerun;
        ] );
    ]
