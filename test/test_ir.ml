(* Tests for the SSA IR core: structure, attributes, traversal,
   substitution, cloning, DCE, the textual printer/parser round trip and
   the verifier. *)

open Wsc_ir.Ir
module Printer = Wsc_ir.Printer
module Parser = Wsc_ir.Parser
module Verifier = Wsc_ir.Verifier
module Builtin = Wsc_dialects.Builtin
module Arith = Wsc_dialects.Arith
module Func = Wsc_dialects.Func

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* construction and attributes                                         *)
(* ------------------------------------------------------------------ *)

let test_create_op () =
  let a = new_value F32 and b = new_value F32 in
  let op = create_op "test.add" ~operands:[ a; b ] ~results:[ F32 ] in
  check_int "operand count" 2 (List.length op.operands);
  check_int "result count" 1 (List.length op.results);
  check "result type" true ((result op).vtyp = F32);
  check "fresh result ids" true ((result op).vid <> a.vid)

let test_attrs () =
  let op =
    create_op "test.op" ~results:[]
      ~attrs:[ ("i", Int_attr 42); ("f", Float_attr 1.5); ("s", String_attr "x") ]
  in
  check_int "int attr" 42 (int_attr_exn op "i");
  check "float attr" true (float_attr_exn op "f" = 1.5);
  check_str "string attr" "x" (string_attr_exn op "s");
  check "missing attr" true (attr op "nope" = None);
  set_attr op "i" (Int_attr 7);
  check_int "overwrite" 7 (int_attr_exn op "i");
  remove_attr op "i";
  check "removed" true (attr op "i" = None);
  Alcotest.check_raises "missing raises"
    (Invalid_argument "op test.op: missing attribute gone") (fun () ->
      ignore (attr_exn op "gone"))

let test_dense_ints () =
  let op = create_op "t" ~results:[] ~attrs:[ ("off", Dense_ints [ 1; -2; 3 ]) ] in
  check "dense ints" true (dense_ints_exn op "off" = [ 1; -2; 3 ])

(* ------------------------------------------------------------------ *)
(* type helpers                                                        *)
(* ------------------------------------------------------------------ *)

let test_type_helpers () =
  let t = Temp ([ (-1, 5); (-1, 5); (-2, 10) ], F32) in
  check "elem" true (elem_type t = F32);
  check "shape" true (shape_of t = [ 6; 6; 12 ]);
  check_int "elements" (6 * 6 * 12) (num_elements t);
  check_int "bytes" (6 * 6 * 12 * 4) (size_in_bytes t);
  check_int "rank" 3 (rank t);
  let tt = Temp ([ (0, 4) ], Tensor ([ 8 ], F32)) in
  check "nested elem" true (elem_type tt = F32);
  check_int "tensor bytes" (8 * 4) (size_in_bytes (Tensor ([ 8 ], F32)))

(* ------------------------------------------------------------------ *)
(* traversal, use counts, dce                                          *)
(* ------------------------------------------------------------------ *)

let simple_module () =
  let f =
    Func.func ~name:"f" ~args:[ F32 ] ~results:[ F32 ] (fun b args ->
        let x = List.hd args in
        let c = Wsc_ir.Builder.insert b (Arith.constant_f 2.0) in
        let m = Wsc_ir.Builder.insert b (Arith.mulf c x) in
        let dead = Wsc_ir.Builder.insert b (Arith.addf x x) in
        ignore dead;
        Wsc_ir.Builder.insert0 b (Func.return_ [ m ]))
  in
  Builtin.module_op [ f ]

let test_walk () =
  let m = simple_module () in
  let names = ref [] in
  walk_op (fun o -> names := o.opname :: !names) m;
  check "walk sees module" true (List.mem "builtin.module" !names);
  check "walk sees nested" true (List.mem "arith.mulf" !names);
  check_int "op count" 6 (Wsc_ir.Stats.total_ops m);
  check_int "find_ops" 1 (List.length (find_ops_by_name "arith.mulf" m));
  check "find_op none" true (find_op_by_name "nope.op" m = None)

let test_use_counts_and_dce () =
  let m = simple_module () in
  let pure = function
    | "arith.addf" | "arith.mulf" | "arith.constant" -> true
    | _ -> false
  in
  let removed = dce ~pure m in
  check_int "dead addf removed" 1 removed;
  check_int "mulf kept" 1 (Wsc_ir.Stats.count m "arith.mulf");
  check_int "addf gone" 0 (Wsc_ir.Stats.count m "arith.addf")

let test_subst () =
  let a = new_value F32 and b = new_value F32 and c = new_value F32 in
  let s = Subst.create () in
  Subst.add s ~from:a ~to_:b;
  Subst.add s ~from:b ~to_:c;
  check "chases chains" true ((Subst.resolve s a).vid = c.vid);
  check "identity" true ((Subst.resolve s c).vid = c.vid)

let test_clone () =
  let m = simple_module () in
  let f = Option.get (Func.lookup m "f") in
  let s = Subst.create () in
  let f2 = clone_op s f in
  check "clone keeps name" true (f2.opname = "func.func");
  check_int "clone keeps body size" (List.length (Func.entry f).bops)
    (List.length (Func.entry f2).bops);
  (* the clone must not alias the original's values *)
  let orig_ids = ref [] in
  walk_op (fun o -> List.iter (fun v -> orig_ids := v.vid :: !orig_ids) o.results) f;
  walk_op
    (fun o ->
      List.iter (fun v -> check "fresh ids" false (List.mem v.vid !orig_ids)) o.results)
    f2

let test_rewrite_block () =
  let m = simple_module () in
  let f = Option.get (Func.lookup m "f") in
  let blk = Func.entry f in
  let before = List.length blk.bops in
  rewrite_block
    (fun o -> if o.opname = "arith.addf" then Erase else Keep)
    blk;
  check_int "one erased" (before - 1) (List.length blk.bops)

(* ------------------------------------------------------------------ *)
(* printer / parser round trip                                         *)
(* ------------------------------------------------------------------ *)

let roundtrip_fixpoint m =
  let s1 = Printer.op_to_string m in
  let s2 = Printer.op_to_string (Parser.parse_string s1) in
  let s3 = Printer.op_to_string (Parser.parse_string s2) in
  (s2, s3)

let test_roundtrip_simple () =
  let s2, s3 = roundtrip_fixpoint (simple_module ()) in
  check_str "fixpoint" s2 s3

let test_roundtrip_all_benchmarks () =
  List.iter
    (fun (d : Wsc_benchmarks.Benchmarks.descr) ->
      let p = d.make Wsc_benchmarks.Benchmarks.Tiny in
      let m = Wsc_frontends.Stencil_program.compile p in
      let s2, s3 = roundtrip_fixpoint m in
      check_str ("fixpoint " ^ d.id) s2 s3)
    Wsc_benchmarks.Benchmarks.all

let test_parse_types () =
  List.iter
    (fun t ->
      let s = Printer.typ_to_string t in
      (* embed in a constant op so the parser exercises the type position *)
      let v = new_value t in
      let op = create_op "test.id" ~operands:[ v ] ~results:[ t ] in
      ignore op;
      let text = Printf.sprintf "%%r = \"test.src\"() : () -> (%s)" s in
      let parsed = Parser.parse_string text in
      check_str ("type " ^ s) s (Printer.typ_to_string (result parsed).vtyp))
    [
      F16; F32; F64; I1; I16; I32; I64; Index;
      Tensor ([ 4 ], F32);
      Tensor ([ 4; 8 ], F32);
      Tensor ([], F32);
      Memref ([ 16 ], F32);
      Temp ([ (-1, 5) ], F32);
      Temp ([ (-1, 5); (0, 3) ], Tensor ([ 7 ], F32));
      Field ([ (-2, 10); (-2, 10); (-2, 12) ], F32);
      Ptr (Memref ([ 8 ], F32), Ptr_many);
      Ptr (F32, Ptr_single);
      Dsd Mem1d; Dsd Mem4d; Dsd Fabin; Dsd Fabout;
      Color;
      Struct "comms";
    ]

let test_parse_errors () =
  let bad = [ "\"op\"("; "\"op\"() : () -> (badtype)"; "%x = \"op\"() : () -> ()" ] in
  List.iter
    (fun s ->
      match Parser.parse_string s with
      | exception Parser.Parse_error _ -> ()
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" s)
    bad

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_parse_count_mismatch_named () =
  (* an operand/type count mismatch must be a proper parse error naming
     the op and its source line, not a bare Invalid_argument from the
     zipping List.map2 *)
  let cases =
    [
      ( "// leading comment\n\"test.op\"(%a, %b) : (f32) -> ()",
        [ "test.op"; "line 2"; "2 operands but 1" ] );
      ( "\"test.res\"() : () -> (f32, f32)",
        [ "test.res"; "line 1"; "result" ] );
    ]
  in
  List.iter
    (fun (s, needles) ->
      match Parser.parse_string s with
      | exception Parser.Parse_error (_, msg) ->
          List.iter
            (fun needle ->
              if not (contains msg needle) then
                Alcotest.failf "error %S does not mention %S" msg needle)
            needles
      | exception e ->
          Alcotest.failf "expected Parse_error, got %s" (Printexc.to_string e)
      | _ -> Alcotest.failf "expected parse error for %S" s)
    cases

let test_parse_error_locations () =
  (* every failure carries a structured line/column location and the
     rendered message names both; out-of-range numeric literals must be
     located parse errors, not the bare Failure of int_of_string *)
  let check_loc s ~line =
    match Parser.parse_string s with
    | exception Parser.Parse_error (loc, msg) ->
        Alcotest.(check int) ("line of " ^ s) line loc.Parser.line;
        if loc.Parser.col <= 0 then
          Alcotest.failf "no column for %S: %S" s msg;
        if not (contains msg "column") then
          Alcotest.failf "message %S does not name the column" msg
    | exception e ->
        Alcotest.failf "expected Parse_error for %S, got %s" s
          (Printexc.to_string e)
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  check_loc "\"op\"() : () -> (badtype)" ~line:1;
  check_loc "// comment\n\"op\"() : () -> (f32) extra" ~line:2;
  check_loc "\"t.op\"() { a = 99999999999999999999999 } : () -> ()" ~line:1;
  check_loc "%x = \"op\"() : () -> (f32)\n\"t\"(%x, %x) : (f32) -> ()" ~line:2

let test_parse_attrs_roundtrip () =
  let attrs =
    [
      ("a", Int_attr (-3));
      ("b", Float_attr 2.5);
      ("c", String_attr "hi \"there\"\n");
      ("d", Array_attr [ Int_attr 1; Float_attr 2.0 ]);
      ("e", Dict_attr [ ("x", Int_attr 1); ("y", String_attr "z") ]);
      ("f", Dense_ints [ 1; 2; 3 ]);
      ("g", Dense_floats [ 1.5; -2.25 ]);
      ("h", Symbol_ref "some_fn");
      ("i", Bool_attr true);
      ("j", Unit_attr);
    ]
  in
  let op = create_op "test.attrs" ~results:[] ~attrs in
  let s = Printer.op_to_string op in
  let op2 = Parser.parse_string s in
  List.iter
    (fun (k, v) ->
      let v2 = Option.get (attr op2 k) in
      (* unit prints as "unit" and reparses as itself; booleans likewise *)
      check ("attr " ^ k) true (v = v2 || (v = Unit_attr && v2 = Unit_attr)))
    attrs

(* ------------------------------------------------------------------ *)
(* verifier                                                            *)
(* ------------------------------------------------------------------ *)

let test_verifier_accepts () =
  Verifier.verify (simple_module ())

let test_verifier_ssa_violation () =
  (* an op that uses a value never defined *)
  let ghost = new_value F32 in
  let use = create_op "test.use" ~operands:[ ghost ] ~results:[] in
  let m = Builtin.module_op [ use ] in
  match Verifier.verify m with
  | exception Verifier.Verification_error _ -> ()
  | () -> Alcotest.fail "expected SSA violation"

let test_verifier_use_before_def () =
  let c = Arith.constant_f 1.0 in
  let use = create_op "test.use" ~operands:[ result c ] ~results:[] in
  (* use placed before its definition *)
  let m = Builtin.module_op [ use; c ] in
  match Verifier.verify m with
  | exception Verifier.Verification_error _ -> ()
  | () -> Alcotest.fail "expected use-before-def"

let test_verifier_terminator () =
  (* func without return *)
  let f =
    Func.func ~name:"g" ~args:[] ~results:[] (fun b _ ->
        Wsc_ir.Builder.insert0 b (Arith.constant_f 1.0))
  in
  let m = Builtin.module_op [ f ] in
  match Verifier.verify m with
  | exception Verifier.Verification_error _ -> ()
  | () -> Alcotest.fail "expected missing-terminator error"

let test_verify_result () =
  check "ok is Ok" true (Verifier.verify_result (simple_module ()) = Ok ());
  let ghost = new_value F32 in
  let m = Builtin.module_op [ create_op "t" ~operands:[ ghost ] ~results:[] ] in
  check "error is Error" true
    (match Verifier.verify_result m with Error _ -> true | Ok () -> false)

let test_verifier_names_offending_op () =
  (* a verification failure must carry the offending op's textual form,
     so a failing verify_each run is diagnosable without a dump *)
  let ghost = new_value F32 in
  let m = Builtin.module_op [ create_op "t.bad" ~operands:[ ghost ] ~results:[] ] in
  match Verifier.verify m with
  | exception Verifier.Verification_error msg ->
      if not (contains msg "offending op") then
        Alcotest.failf "message %S lacks the offending-op snippet" msg;
      if not (contains msg "t.bad") then
        Alcotest.failf "message %S does not show the op" msg
  | () -> Alcotest.fail "expected verification error"

(* ------------------------------------------------------------------ *)
(* pass manager                                                        *)
(* ------------------------------------------------------------------ *)

let test_pipeline_on_ir_hook () =
  (* the snapshot hook sees the module after every pass, in order *)
  let seen = ref [] in
  let opts =
    {
      Wsc_ir.Pass.default_options with
      on_ir = Some (fun name _ -> seen := name :: !seen);
    }
  in
  let mk name = Wsc_ir.Pass.make_inplace name (fun _ -> ()) in
  ignore
    (Wsc_ir.Pass.run_pipeline ~options:opts [ mk "a"; mk "b" ] (simple_module ()));
  check "hook call order" true (List.rev !seen = [ "a"; "b" ])

let test_pipeline_runs_in_order () =
  let log = ref [] in
  let mk name = Wsc_ir.Pass.make_inplace name (fun _ -> log := name :: !log) in
  let m = simple_module () in
  ignore (Wsc_ir.Pass.run_pipeline [ mk "a"; mk "b"; mk "c" ] m);
  check "order" true (List.rev !log = [ "a"; "b"; "c" ])

let test_pipeline_verifies () =
  let break =
    Wsc_ir.Pass.make_inplace "break" (fun m ->
        (* splice in an op using an undefined value *)
        let ghost = new_value F32 in
        Builtin.set_body m
          (Builtin.body m @ [ create_op "bad" ~operands:[ ghost ] ~results:[] ]))
  in
  match Wsc_ir.Pass.run_pipeline [ break ] (simple_module ()) with
  | exception Wsc_ir.Pass.Pass_failed ("break", _) -> ()
  | _ -> Alcotest.fail "expected Pass_failed"

let test_pipeline_wraps_any_exception () =
  (* every exception escaping a pass must be attributed to it, not just
     verifier errors; the original exception rides along as payload *)
  let boom =
    [
      ("boom-failure", fun _ -> failwith "kaboom");
      ("boom-not-found", fun _ -> raise Not_found);
      ("boom-invalid", fun _ -> invalid_arg "List.map2");
    ]
  in
  List.iter
    (fun (name, f) ->
      let pass = Wsc_ir.Pass.make name f in
      match Wsc_ir.Pass.run_pipeline [ pass ] (simple_module ()) with
      | exception Wsc_ir.Pass.Pass_failed (n, _) ->
          check_str "failing pass named" name n
      | exception e ->
          Alcotest.failf "expected Pass_failed, got %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Pass_failed")
    boom;
  (* a Pass_failed from a nested pipeline keeps its original attribution *)
  let nested =
    Wsc_ir.Pass.make "outer" (fun m ->
        Wsc_ir.Pass.run_pipeline
          [ Wsc_ir.Pass.make "inner" (fun _ -> failwith "deep") ]
          m)
  in
  match Wsc_ir.Pass.run_pipeline [ nested ] (simple_module ()) with
  | exception Wsc_ir.Pass.Pass_failed ("inner", _) -> ()
  | exception Wsc_ir.Pass.Pass_failed (n, _) ->
      Alcotest.failf "attributed to %S, expected the inner pass" n
  | _ -> Alcotest.fail "expected Pass_failed"

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let m = simple_module () in
  let hist = Wsc_ir.Stats.op_histogram m in
  check_int "mulf count" 1 (List.assoc "arith.mulf" hist);
  check_int "addf count" 1 (List.assoc "arith.addf" hist)

let () =
  Alcotest.run "ir"
    [
      ( "core",
        [
          Alcotest.test_case "create op" `Quick test_create_op;
          Alcotest.test_case "attributes" `Quick test_attrs;
          Alcotest.test_case "dense ints" `Quick test_dense_ints;
          Alcotest.test_case "type helpers" `Quick test_type_helpers;
          Alcotest.test_case "walk" `Quick test_walk;
          Alcotest.test_case "use counts and dce" `Quick test_use_counts_and_dce;
          Alcotest.test_case "substitution" `Quick test_subst;
          Alcotest.test_case "clone" `Quick test_clone;
          Alcotest.test_case "rewrite block" `Quick test_rewrite_block;
        ] );
      ( "printer-parser",
        [
          Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
          Alcotest.test_case "roundtrip benchmarks" `Quick
            test_roundtrip_all_benchmarks;
          Alcotest.test_case "types" `Quick test_parse_types;
          Alcotest.test_case "attrs" `Quick test_parse_attrs_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error locations" `Quick test_parse_error_locations;
          Alcotest.test_case "count mismatch named" `Quick
            test_parse_count_mismatch_named;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts valid" `Quick test_verifier_accepts;
          Alcotest.test_case "ssa violation" `Quick test_verifier_ssa_violation;
          Alcotest.test_case "use before def" `Quick test_verifier_use_before_def;
          Alcotest.test_case "terminator" `Quick test_verifier_terminator;
          Alcotest.test_case "verify_result" `Quick test_verify_result;
          Alcotest.test_case "names offending op" `Quick
            test_verifier_names_offending_op;
        ] );
      ( "passes",
        [
          Alcotest.test_case "pipeline order" `Quick test_pipeline_runs_in_order;
          Alcotest.test_case "on_ir hook" `Quick test_pipeline_on_ir_hook;
          Alcotest.test_case "pipeline verifies" `Quick test_pipeline_verifies;
          Alcotest.test_case "pipeline wraps exceptions" `Quick
            test_pipeline_wraps_any_exception;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
    ]
