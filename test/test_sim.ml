(* Tests for the fabric simulator: end-to-end correctness of the compiled
   programs against the sequential reference, on both WSE generations and
   under every pipeline variant; plus the machine model's guard rails and
   the statistics the performance study relies on. *)

module P = Wsc_frontends.Stencil_program
module B = Wsc_benchmarks.Benchmarks
module I = Wsc_dialects.Interp
module Core = Wsc_core
module Machine = Wsc_wse.Machine
module Fabric = Wsc_wse.Fabric
module Host = Wsc_wse.Host

let () = Core.Csl_stencil_interp.register ()
let check = Alcotest.(check bool)

(* CI reruns the whole suite under an alternative fabric driver by
   setting WSC_DRIVER (polling | sched | parallel) and WSC_DOMAINS;
   unset, everything runs under the default event driver *)
let default_driver =
  match Sys.getenv_opt "WSC_DRIVER" with
  | Some "polling" -> Fabric.Polling
  | Some ("sched" | "event") -> Fabric.Event_driven
  | Some "parallel" ->
      let domains =
        match Sys.getenv_opt "WSC_DOMAINS" with
        | Some s -> ( try int_of_string s with _ -> 2)
        | None -> 2
      in
      Fabric.Parallel domains
  | Some other -> invalid_arg ("WSC_DRIVER: unknown driver " ^ other)
  | None -> Fabric.Event_driven

let init_grids (p : P.t) =
  List.map
    (fun _ ->
      let g3 = I.grid_of_typ (P.field_type p) in
      I.init_grid g3;
      I.retensorize_grid g3)
    p.P.state

let simulate ?(options = Core.Pipeline.default_options)
    ?(machine = Machine.wse3) (p : P.t) : Host.t * I.grid list =
  let compiled = Core.Pipeline.compile ~options (P.compile p) in
  let h = Host.simulate ~driver:default_driver machine compiled (init_grids p) in
  (h, Host.read_all h)

let assert_matches name (p : P.t) out =
  let ref_grids = P.run_reference p in
  let maxd =
    List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff ref_grids out)
  in
  if maxd > 1e-4 then Alcotest.failf "%s: fabric differs by %g" name maxd

(* ------------------------------------------------------------------ *)
(* end-to-end correctness                                              *)
(* ------------------------------------------------------------------ *)

let test_all_benchmarks_both_machines () =
  List.iter
    (fun (d : B.descr) ->
      List.iter
        (fun machine ->
          let p = d.make B.Tiny in
          let _, out = simulate ~machine p in
          assert_matches (d.id ^ " on " ^ machine.Machine.name) p out)
        [ Machine.wse2; Machine.wse3 ])
    B.all

let test_variants_end_to_end () =
  let base = Core.Pipeline.default_options in
  let variants =
    [
      ("2 chunks", { base with num_chunks_override = Some 2 });
      ("no promotion", { base with promote_coefficients = false });
      ("no one-shot", { base with one_shot_reduction = false });
      ("no fmac", { base with fuse_fmac = false; fuse_fmac_pass = false });
      ("no varith", { base with use_varith = false });
    ]
  in
  List.iter
    (fun (vname, options) ->
      List.iter
        (fun (d : B.descr) ->
          let p = d.make B.Tiny in
          let _, out = simulate ~options p in
          assert_matches (d.id ^ " " ^ vname) p out)
        B.all)
    variants

let test_multi_output_passthrough () =
  (* a producer whose value is both consumed by the next kernel and kept
     as state: inlining passes it through, giving a two-result apply that
     lowers via pack mode with two output buffers rotating *)
  let expr_a = P.Add (P.Access ("u", [ 1; 0; 0 ]), P.Access ("u", [ -1; 0; 0 ])) in
  let expr_b =
    P.Add (P.Mul (P.Const 0.5, P.Access ("a", [ 0; 0; 0 ])), P.Access ("u", [ 0; 1; 0 ]))
  in
  let p =
    {
      P.pname = "passthru";
      frontend = "test";
      extents = (4, 4, 6);
      halo = 1;
      state = [ "u"; "a_keep" ];
      kernels =
        [
          { P.kname = "ka"; output = "a"; expr = expr_a };
          { P.kname = "kb"; output = "b"; expr = expr_b };
        ];
      next_state = [ "b"; "a" ];
      iterations = 3;
      use_loop = true;
      dsl_loc = 0;
    }
  in
  let _, out = simulate p in
  assert_matches "multi-output passthrough" p out

let test_uvkbe_no_inlining () =
  let options = { Core.Pipeline.default_options with inline_stencils = false } in
  let p = (B.find "uvkbe").make B.Tiny in
  let _, out = simulate ~options p in
  assert_matches "uvkbe chained" p out

let test_more_iterations () =
  (* buffer rotation must hold up over many steps (odd and even counts) *)
  List.iter
    (fun n ->
      List.iter
        (fun id ->
          let p = (B.find id).make_n B.Tiny n in
          let _, out = simulate p in
          assert_matches (Printf.sprintf "%s x%d" id n) p out)
        [ "jacobian"; "acoustic" ])
    [ 1; 4; 7 ]

let test_rectangular_grid () =
  let p = (B.find "diffusion").make_n (B.Proxy (3, 7)) 2 in
  let _, out = simulate p in
  assert_matches "3x7 grid" p out

let test_boundary_dirichlet () =
  (* halo cells of the result equal the initial data exactly *)
  let p = (B.find "jacobian").make B.Tiny in
  let h, out = simulate p in
  ignore h;
  let g0 = I.grid_of_typ (P.field_type p) in
  I.init_grid g0;
  let g0 = I.retensorize_grid g0 in
  let out0 = List.hd out in
  I.iter_points g0.I.gbounds (fun pt ->
      match pt with
      | [ x; y ] when x < 0 || x >= 4 || y < 0 || y >= 4 -> (
          match (I.grid_get g0 pt, I.grid_get out0 pt) with
          | I.Rtensor a, I.Rtensor b ->
              Array.iteri
                (fun i v ->
                  if v <> b.(i) then Alcotest.fail "halo column changed")
                a
          | _ -> ())
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* machine model guard rails                                           *)
(* ------------------------------------------------------------------ *)

let test_grid_too_large () =
  let p = (B.find "jacobian").make_n (B.Proxy (800, 4)) 1 in
  let compiled = Core.Pipeline.compile (P.compile p) in
  (* 800 > the WSE2's 750-wide fabric *)
  match Host.simulate Machine.wse2 compiled (init_grids p) with
  | exception Fabric.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected fabric-size error"

let test_wrong_state_count () =
  let p = (B.find "acoustic").make B.Tiny in
  let compiled = Core.Pipeline.compile (P.compile p) in
  match Host.simulate Machine.wse3 compiled [ List.hd (init_grids p) ] with
  | exception Host.Host_error _ -> ()
  | _ -> Alcotest.fail "expected state-count error"

(* ------------------------------------------------------------------ *)
(* timing and statistics                                               *)
(* ------------------------------------------------------------------ *)

let test_wse3_faster_than_wse2 () =
  List.iter
    (fun (d : B.descr) ->
      let p = d.make B.Tiny in
      let h2, _ = simulate ~machine:Machine.wse2 p in
      let h3, _ = simulate ~machine:Machine.wse3 p in
      check
        (d.id ^ ": WSE3 beats WSE2")
        true
        (Fabric.elapsed_cycles h3.sim < Fabric.elapsed_cycles h2.sim))
    B.all

let test_clock_monotone_in_iterations () =
  let t n =
    let p = (B.find "jacobian").make_n B.Tiny n in
    let h, _ = simulate p in
    Fabric.elapsed_cycles h.sim
  in
  let t2 = t 2 and t4 = t 4 and t6 = t 6 in
  check "t4 > t2" true (t4 > t2);
  check "t6 > t4" true (t6 > t4);
  (* steady state: equal increments within tolerance *)
  let d1 = t4 -. t2 and d2 = t6 -. t4 in
  check "linear steady state" true (Float.abs (d1 -. d2) < 0.2 *. d1)

let test_flops_match_expectation () =
  (* measured useful FLOPs = points x iterations x flops/point *)
  let d = B.find "jacobian" in
  let p = d.make_n B.Tiny 2 in
  let h, _ = simulate p in
  let stats = Fabric.total_stats h.sim in
  let nx, ny = B.xy_extents B.Tiny in
  let _, _, nz = p.P.extents in
  let expected = float_of_int (nx * ny * nz * 2 * 12) in
  (* 6-point jacobian, algorithmic counting: four promoted columns reduce
     with fmacs off the fabric (8 FLOPs) plus two z-neighbour fmacs (4) *)
  let ratio = stats.flops /. expected in
  check "flops in the expected band" true (ratio > 0.7 && ratio < 1.3)

let test_wse2_sends_cost_more () =
  let p = (B.find "jacobian").make B.Tiny in
  let h2, _ = simulate ~machine:Machine.wse2 p in
  let h3, _ = simulate ~machine:Machine.wse3 p in
  let s2 = (Fabric.total_stats h2.sim).send_cycles in
  let s3 = (Fabric.total_stats h3.sim).send_cycles in
  check "self-send doubles injection" true (s2 > 1.9 *. s3)

let test_task_activations_positive () =
  let p = (B.find "seismic").make B.Tiny in
  let h, _ = simulate p in
  let stats = Fabric.total_stats h.sim in
  check "tasks ran" true (stats.task_activations > 0);
  check "data moved" true (stats.elems_sent > 0);
  check "memory traffic" true (stats.mem_bytes > 0.0)

(* ------------------------------------------------------------------ *)
(* scheduler: driver equivalence, deadlock diagnostics, task order     *)
(* ------------------------------------------------------------------ *)

(* run one benchmark under a given driver and return everything the
   equivalence check compares; the host handle stays local so the PE
   grid is collectable between runs *)
let run_with_driver driver (p : P.t) =
  let compiled = Core.Pipeline.compile (P.compile p) in
  let h = Host.simulate ~driver Machine.wse3 compiled (init_grids p) in
  (Fabric.elapsed_cycles h.sim, Fabric.total_stats h.sim, Host.read_all h)

(* every driver the equivalence checks sweep: both sequential drivers
   and the domain-parallel driver at 1, 2 and 4 domains (1 exercises
   the sequential fallback, 2 and 4 the strip decomposition) *)
let all_drivers =
  [
    Fabric.Polling;
    Fabric.Event_driven;
    Fabric.Parallel 1;
    Fabric.Parallel 2;
    Fabric.Parallel 4;
  ]

let driver_label d =
  Printf.sprintf "%s/%d" (Fabric.driver_name d) (Fabric.driver_domains d)

let assert_drivers_agree name (p : P.t) =
  let ce, se, oe = run_with_driver Fabric.Event_driven p in
  List.iter
    (fun driver ->
      let c, s, o = run_with_driver driver p in
      let name = name ^ " [" ^ driver_label driver ^ "]" in
      check (name ^ ": elapsed cycles bit-identical") true (c = ce);
      (match Fabric.stats_diff se s with
      | None -> ()
      | Some msg -> Alcotest.failf "%s: aggregated pe_stats differ: %s" name msg);
      let maxd = List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff oe o) in
      check (name ^ ": outputs bit-identical") true (maxd = 0.0))
    all_drivers

let test_driver_equivalence_tiny () =
  List.iter
    (fun (d : B.descr) -> assert_drivers_agree (d.id ^ " tiny") (d.make B.Tiny))
    B.all

let test_driver_equivalence_small () =
  List.iter
    (fun (d : B.descr) ->
      assert_drivers_agree (d.id ^ " small") (d.make_n B.Small 2))
    B.all

(* qcheck: for any fuzzer-generated program, all five driver
   configurations produce bit-identical cycles, stats and outputs *)
let prop_drivers_agree_on_fuzzed =
  QCheck.Test.make ~name:"drivers agree on fuzzer-generated programs"
    ~count:12 QCheck.small_nat (fun index ->
      let p = Wsc_harden.Fuzz.generate ~seed:23 ~index in
      assert_drivers_agree (Wsc_harden.Fuzz.describe p) p;
      true)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_deadlock_diagnostic () =
  let p = (B.find "jacobian").make B.Tiny in
  let compiled = Core.Pipeline.compile (P.compile p) in
  let _, program = Core.Pipeline.modules_of compiled in
  List.iter
    (fun driver ->
      let h = Host.load Machine.wse3 program (init_grids p) in
      (* silence PE(1,0): convince its iteration counter it has already
         run every timestep, so it unblocks immediately and never sends;
         its neighbours then starve waiting on the first exchange *)
      Hashtbl.find h.Host.sim.Fabric.pes.(1).(0).Fabric.scalars "iteration" := 1000;
      match Fabric.run_to_completion ~driver h.Host.sim with
      | () -> Alcotest.fail "expected a deadlock"
      | exception Fabric.Sim_error msg ->
          check "report names the condition" true (contains msg "deadlock");
          check "report names the exchange" true
            (contains msg "blocked on exchange (apply_id=");
          check "report names the silent sender" true
            (contains msg "missing sender PE(1,0)"))
    [ Fabric.Polling; Fabric.Event_driven; Fabric.Parallel 2 ]

(* a fault campaign cell must replay bit-identically under the parallel
   driver: same injection decisions, same integer recovery bookkeeping,
   same validity mask, same fault report.  (Only [recovery_cycles] — a
   float summed over PEs in driver-visit order — is exempt from the
   cross-driver contract.) *)
let test_fault_replay_parallel () =
  let module Faults = Wsc_faults.Faults in
  let p = (B.find "jacobian").make_n B.Tiny 3 in
  let compiled = Core.Pipeline.compile (P.compile p) in
  let cfg =
    {
      Faults.default_config with
      seed = 11;
      drop_rate = 0.05;
      corrupt_rate = 0.02;
      resilience = Some Faults.default_resilience;
    }
  in
  let run driver =
    let faults = Faults.create cfg in
    let h = Host.simulate ~driver ~faults Machine.wse3 compiled (init_grids p) in
    let st = Faults.stats faults in
    ( Fabric.elapsed_cycles h.sim,
      Fabric.total_stats h.sim,
      Host.read_all h,
      Host.fault_report h,
      Host.validity h,
      ( st.Faults.drops,
        st.Faults.corrupts,
        st.Faults.stalls,
        st.Faults.halts,
        st.Faults.backpressures,
        st.Faults.retries,
        st.Faults.giveups,
        st.Faults.halt_timeouts ) )
  in
  let ce, se, oe, re, ve, ke = run Fabric.Event_driven in
  check "faults actually fired" true (let d, c, _, _, _, _, _, _ = ke in d + c > 0);
  List.iter
    (fun driver ->
      let name = "faults [" ^ driver_label driver ^ "]" in
      let c, s, o, r, v, k = run driver in
      check (name ^ ": elapsed cycles") true (c = ce);
      (match Fabric.stats_diff se s with
      | None -> ()
      | Some msg -> Alcotest.failf "%s: pe_stats differ: %s" name msg);
      let maxd = List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff oe o) in
      check (name ^ ": outputs bit-identical") true (maxd = 0.0);
      check (name ^ ": fault report identical") true (r = re);
      check (name ^ ": validity mask identical") true (v = ve);
      check (name ^ ": fault counters identical") true (k = ke))
    [ Fabric.Polling; Fabric.Parallel 2; Fabric.Parallel 4 ]

(* regression for the PR 5 slowdown: the parallel driver must spawn its
   worker pool exactly once per run — [domains] domains total, however
   many barrier rounds the run takes — not once per strip per round *)
let test_worker_pool_spawns_once () =
  let p = (B.find "jacobian").make_n B.Tiny 6 in
  let compiled = Core.Pipeline.compile (P.compile p) in
  List.iter
    (fun domains ->
      let before = Fabric.domains_spawned () in
      let h =
        Host.simulate ~driver:(Fabric.Parallel domains) Machine.wse3 compiled
          (init_grids p)
      in
      ignore h;
      let spawned = Fabric.domains_spawned () - before in
      (* Parallel 1 falls back to the sequential event driver: no pool *)
      let expected = if domains <= 1 then 0 else domains in
      if spawned <> expected then
        Alcotest.failf "Parallel %d spawned %d domains, expected %d" domains
          spawned expected)
    [ 1; 2; 4 ]

(* qcheck: when a run exceeds its scan budget, every driver fails with
   the same divergence error at the same shared whole-grid bound — no
   strip gets a private allowance of its own *)
let prop_budget_trips_identically =
  let p = (B.find "jacobian").make_n B.Tiny 32 in
  let compiled = Core.Pipeline.compile (P.compile p) in
  let _, program = Core.Pipeline.modules_of compiled in
  QCheck.Test.make ~name:"shared scan budget trips identically across drivers"
    ~count:3
    QCheck.(int_range 1 3)
    (fun max_rounds ->
      let outcome driver =
        let h = Host.load Machine.wse3 program (init_grids p) in
        match Fabric.run_to_completion ~max_rounds ~driver h.Host.sim with
        | () -> QCheck.Test.fail_report "expected the budget to trip"
        | exception Fabric.Sim_error msg -> msg
      in
      let reference = outcome Fabric.Event_driven in
      if not (contains reference "did not converge") then
        QCheck.Test.fail_reportf "unexpected error: %s" reference;
      List.iter
        (fun driver ->
          let msg = outcome driver in
          if msg <> reference then
            QCheck.Test.fail_reportf "%s: %S <> %S" (driver_label driver) msg
              reference)
        [ Fabric.Polling; Fabric.Parallel 2; Fabric.Parallel 4 ];
      true)

let test_task_order_earliest_first () =
  (* regression for the dispatch-order bug: the hardware scheduler runs
     the queued task with the earliest activation time, not the one that
     was queued first *)
  let module Csl = Core.Csl in
  let module Bld = Wsc_ir.Builder in
  let open Wsc_ir.Ir in
  let module Arith = Wsc_dialects.Arith in
  let b = Bld.create () in
  Bld.insert0 b (Csl.global_scalar ~name:"mark" ~typ:I32 ~init:(Int_attr 0));
  let mark_task name id v =
    Bld.insert0 b
      (Csl.task ~name ~kind:Csl.Local_task ~id (fun tb ->
           let c = Bld.insert tb (Arith.constant_i v) in
           Bld.insert0 tb (Csl.store_scalar ~name:"mark" c);
           Bld.insert0 tb (Csl.return_ ())))
  in
  mark_task "early" 1 7;
  mark_task "late" 2 8;
  let program = Csl.module_ ~kind:Csl.Program ~name:"task_order" (Bld.ops b) in
  List.iter
    (fun (k, v) -> set_attr program k (Int_attr v))
    [
      ("width", 1); ("height", 1); ("memory_bytes", 64);
      ("z_halo", 0); ("zfull", 1); ("nz", 1);
    ];
  let sim = Fabric.create Machine.wse3 program in
  let pe = sim.Fabric.pes.(0).(0) in
  let mark () = !(Hashtbl.find pe.Fabric.scalars "mark") in
  (* two activations queued out of insertion order: "late" was inserted
     first but activates at t=100, "early" second but activates at t=50 *)
  pe.Fabric.task_queue <- [ (100.0, "late"); (50.0, "early") ];
  check "first pop ran" true (Fabric.run_tasks sim pe);
  check "earliest activation dispatched first" true (mark () = 7);
  check "clock did not jump to the later activation" true (pe.Fabric.clock < 100.0);
  check "second pop ran" true (Fabric.run_tasks sim pe);
  check "later activation dispatched second" true (mark () = 8);
  check "queue drained" true (pe.Fabric.task_queue = []);
  check "empty queue pops nothing" true (not (Fabric.run_tasks sim pe))

(* ------------------------------------------------------------------ *)
(* custom initial data (host interface)                                *)
(* ------------------------------------------------------------------ *)

let test_custom_initial_data () =
  (* a constant field is a fixed point of the jacobian average *)
  let p = (B.find "jacobian").make B.Tiny in
  let compiled = Core.Pipeline.compile (P.compile p) in
  let g = I.grid_of_typ (P.field_type p) in
  Array.fill g.I.gdata 0 (Array.length g.I.gdata) 3.5;
  let h = Host.simulate Machine.wse3 compiled [ I.retensorize_grid g ] in
  let out = Host.read_state h 0 in
  Array.iter
    (fun v -> if Float.abs (v -. 3.5) > 1e-5 then Alcotest.fail "not a fixed point")
    out.I.gdata

let () =
  Alcotest.run "sim"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "all benchmarks, both machines" `Quick
            test_all_benchmarks_both_machines;
          Alcotest.test_case "pipeline variants" `Slow test_variants_end_to_end;
          Alcotest.test_case "uvkbe without inlining" `Quick test_uvkbe_no_inlining;
          Alcotest.test_case "multi-output passthrough" `Quick
            test_multi_output_passthrough;
          Alcotest.test_case "iteration counts" `Quick test_more_iterations;
          Alcotest.test_case "rectangular grid" `Quick test_rectangular_grid;
          Alcotest.test_case "dirichlet boundary" `Quick test_boundary_dirichlet;
        ] );
      ( "guards",
        [
          Alcotest.test_case "grid too large" `Quick test_grid_too_large;
          Alcotest.test_case "wrong state count" `Quick test_wrong_state_count;
        ] );
      ( "timing",
        [
          Alcotest.test_case "wse3 faster" `Quick test_wse3_faster_than_wse2;
          Alcotest.test_case "monotone clock" `Quick test_clock_monotone_in_iterations;
          Alcotest.test_case "flop accounting" `Quick test_flops_match_expectation;
          Alcotest.test_case "self-send cost" `Quick test_wse2_sends_cost_more;
          Alcotest.test_case "stats positive" `Quick test_task_activations_positive;
        ] );
      ( "scheduler",
        Alcotest.test_case "driver equivalence (tiny)" `Quick
          test_driver_equivalence_tiny
        :: Alcotest.test_case "driver equivalence (small)" `Slow
             test_driver_equivalence_small
        :: Alcotest.test_case "deadlock diagnostic" `Quick test_deadlock_diagnostic
        :: Alcotest.test_case "fault replay across drivers" `Quick
             test_fault_replay_parallel
        :: Alcotest.test_case "worker pool spawns once" `Quick
             test_worker_pool_spawns_once
        :: Alcotest.test_case "earliest activation first" `Quick
             test_task_order_earliest_first
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_drivers_agree_on_fuzzed; prop_budget_trips_identically ] );
      ( "host",
        [ Alcotest.test_case "custom initial data" `Quick test_custom_initial_data ] );
    ]
