(** The complete lowering pipeline (paper Figure 3).

    Assembles the five transformation groups plus the optimization passes
    into one pass list, parameterized by the options the evaluation's
    ablations toggle. *)

type options = {
  inline_stencils : bool;  (** §5.7 stencil-inlining *)
  use_varith : bool;  (** §5.7 varith conversion + fuse-repeated-operands *)
  promote_coefficients : bool;  (** §5.7 coefficient promotion *)
  one_shot_reduction : bool;  (** §5.7 one-shot reduction off the staging buffer *)
  fuse_fmac : bool;  (** §5.7 multiply-add fusion during bufferization *)
  fuse_fmac_pass : bool;
      (** when direct fusion is off, run the standalone
          linalg-fuse-multiply-add pass instead; turning both off ablates
          the optimization entirely *)
  comm_budget_bytes : int;
  num_chunks_override : int option;
  program_name : string;
}

let default_options =
  {
    inline_stencils = true;
    use_varith = true;
    promote_coefficients = true;
    one_shot_reduction = true;
    fuse_fmac = true;
    fuse_fmac_pass = true;
    comm_budget_bytes = To_csl_stencil.default_options.comm_budget_bytes;
    num_chunks_override = None;
    program_name = "stencil_program";
  }

(** Canonical, total rendering of the options — the configuration half
    of the compile service's content-addressed cache key.  Every field
    appears (adding a field to [options] without extending this is a
    type error via the record pattern), so two option values render
    equally iff they compile identically. *)
let options_to_string (o : options) : string =
  let {
    inline_stencils;
    use_varith;
    promote_coefficients;
    one_shot_reduction;
    fuse_fmac;
    fuse_fmac_pass;
    comm_budget_bytes;
    num_chunks_override;
    program_name;
  } =
    o
  in
  Printf.sprintf
    "inline_stencils=%b;use_varith=%b;promote_coefficients=%b;\
     one_shot_reduction=%b;fuse_fmac=%b;fuse_fmac_pass=%b;\
     comm_budget_bytes=%d;num_chunks_override=%s;program_name=%s"
    inline_stencils use_varith promote_coefficients one_shot_reduction fuse_fmac
    fuse_fmac_pass comm_budget_bytes
    (match num_chunks_override with None -> "none" | Some n -> string_of_int n)
    program_name

(** Group 1 + optimizations: the architecture-independent part, after
    which the module is still executable by the sequential interpreter. *)
let frontend_passes (o : options) : Wsc_ir.Pass.t list =
  (if o.inline_stencils then [ Stencil_inlining.pass ] else [])
  @ [
      (* inlining re-materializes producer bodies per consumer access;
         canonicalization folds the duplicate constants and accesses *)
      Canonicalize.pass;
      Distribute.distribute_pass;
      Distribute.tensorize_pass;
    ]
  @
  if o.use_varith then
    [ Varith_passes.to_varith_pass; Varith_passes.fuse_repeated_pass ]
  else []

(** Groups 2–3: communication realization and bufferization.  The module
    remains interpretable (via the registered csl_stencil handler). *)
let middle_passes (o : options) : Wsc_ir.Pass.t list =
  [
    To_csl_stencil.lower_swaps_pass;
    To_csl_stencil.pass
      ~options:
        {
          To_csl_stencil.comm_budget_bytes = o.comm_budget_bytes;
          promote_coefficients = o.promote_coefficients;
          one_shot_reduction = o.one_shot_reduction;
          num_chunks_override = o.num_chunks_override;
        }
      ();
    Wrap.pass ~name:o.program_name ();
    Bufferize.pass ~options:{ Bufferize.fuse_fmac = o.fuse_fmac } ();
  ]
  @ if (not o.fuse_fmac) && o.fuse_fmac_pass then [ Linalg_fuse.pass ] else []

(** Groups 4–5: actor lowering and csl-ir generation. *)
let backend_passes (_o : options) : Wsc_ir.Pass.t list =
  [ To_actors.pass; To_csl.pass ]

let passes (o : options) : Wsc_ir.Pass.t list =
  frontend_passes o @ middle_passes o @ backend_passes o

(** Compile a module all the way to the pair of csl modules. *)
let compile ?(options = default_options) ?pass_options (m : Wsc_ir.Ir.op) :
    Wsc_ir.Ir.op =
  Csl_stencil_interp.register ();
  match pass_options with
  | Some po -> Wsc_ir.Pass.run_pipeline ~options:po (passes options) m
  | None -> Wsc_ir.Pass.run_pipeline (passes options) m

(** The layout and program csl modules of a compiled result. *)
let modules_of (compiled : Wsc_ir.Ir.op) : Wsc_ir.Ir.op * Wsc_ir.Ir.op =
  match Wsc_dialects.Builtin.body compiled with
  | [ layout; program ] -> (layout, program)
  | _ -> invalid_arg "Pipeline.modules_of: expected layout + program modules"
