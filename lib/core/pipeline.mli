(** The complete lowering pipeline (paper Figure 3): the five
    transformation groups plus the §5.7 optimization passes, assembled
    into one pass list with options for everything the evaluation
    ablates. *)

type options = {
  inline_stencils : bool;  (** §5.7 stencil-inlining *)
  use_varith : bool;  (** §5.7 varith conversion + fuse-repeated-operands *)
  promote_coefficients : bool;  (** §5.7 coefficient promotion *)
  one_shot_reduction : bool;  (** §5.7 one-shot reduction off the staging buffer *)
  fuse_fmac : bool;  (** §5.7 multiply-add fusion during bufferization *)
  fuse_fmac_pass : bool;
      (** when direct fusion is off, run the standalone
          linalg-fuse-multiply-add pass instead; both off ablates the
          optimization entirely *)
  comm_budget_bytes : int;  (** per-PE receive-buffer budget for chunking *)
  num_chunks_override : int option;  (** ablation: force a chunk count *)
  program_name : string;
}

val default_options : options

(** Canonical, total rendering — the configuration half of the compile
    service's cache key.  Covers every field (enforced by a record
    pattern), so equal strings mean identical compilation behavior. *)
val options_to_string : options -> string

(** Group 1 + optimizations (module stays interpretable afterwards). *)
val frontend_passes : options -> Wsc_ir.Pass.t list

(** Groups 2–3: communication realization, wrapping and bufferization
    (still interpretable through the registered csl_stencil handler). *)
val middle_passes : options -> Wsc_ir.Pass.t list

(** Groups 4–5: actor lowering and csl-ir generation. *)
val backend_passes : options -> Wsc_ir.Pass.t list

val passes : options -> Wsc_ir.Pass.t list

(** Compile a stencil-dialect module to the pair of csl modules (inside a
    builtin.module).  Registers the interpreter handlers as a side
    effect. *)
val compile :
  ?options:options -> ?pass_options:Wsc_ir.Pass.options -> Wsc_ir.Ir.op ->
  Wsc_ir.Ir.op

(** The (layout, program) csl modules of a compiled result. *)
val modules_of : Wsc_ir.Ir.op -> Wsc_ir.Ir.op * Wsc_ir.Ir.op
