(** CSL source of the runtime communication library (paper §5.6): the
    partitionable star-pattern exchange of Jacquelin et al., with
    per-direction task state machines, chunked asynchronous sends and
    receives, promoted-coefficient application off the fabric queue, and
    the WSE2 self-send switch variant.  Emitted alongside every generated
    program. *)

(** Replace every occurrence of [pattern] in the string. *)
val replace_all : pattern:string -> by:string -> string -> string

(** One direction's worth of the library (exposed for tests). *)
val direction_section : dir:string -> opp:string -> string

(** The opt-in detection & recovery protocol (per-wavelet sequence
    numbers and checksums, NACK-driven retransmission with bounded
    exponential backoff, giveup with a validity flag the host reads
    back); gated behind the [resilience] param (exposed for tests). *)
val resilience_section : string

val source : string
