(** CSL source of the runtime communication library (paper §5.6).

    A CSL module implementing the partitionable communication strategy of
    Jacquelin et al. for star-shaped stencils: each PE broadcasts its
    column [pattern - 1] hops in each cardinal direction over dedicated
    colors, while receiving and reducing the columns of its neighbours.
    Communication is chunked; each direction runs its own small state
    machine of data/control/local tasks handling chunk completion and
    switch updates, optionally applying a promoted coefficient to data as
    it moves from the input queue to memory ([@fmacs] straight off the
    fabric, §5.7).  User code provides two callbacks: one activated per
    completed chunk, one once the whole exchange has finished.

    The WSE2 variant programs the switch self-transmission workaround
    (every send loops back through the PE's own router); the WSE3 variant
    omits it (§6).

    The text is assembled from a per-direction template — exactly the
    boilerplate a CSL programmer would otherwise write by hand four
    times, which is what the paper's Table 1 "CSL entire" column counts. *)

let header =
  {|// stencil_comms.csl — runtime communication library for star stencils
// Generated alongside every program produced by the wsc pipeline.
//
// Strategy (Jacquelin et al., SC'22): every PE owns one z-column and
// broadcasts the communicated z-range (pattern-1) hops in each cardinal
// direction. Receives are chunked; each chunk is reduced on arrival into
// a per-direction staging buffer with the promoted coefficient applied
// at zero overhead while draining the input queue.

param width: u16;
param height: u16;
param pattern: u16;          // stencil radius + 1
param chunk_size: u16;
param num_chunks: u16;
param wse2_self_send: bool;  // switch workaround for the WSE2 generation
param resilience: bool;      // per-wavelet seq/checksum + retransmission

const directions = 4;
const max_pattern = 8;

// One communication color per direction and hop distance.
const tx_east_color:  color = @get_color(0);
const tx_west_color:  color = @get_color(1);
const tx_north_color: color = @get_color(2);
const tx_south_color: color = @get_color(3);
const rx_east_color:  color = @get_color(4);
const rx_west_color:  color = @get_color(5);
const rx_north_color: color = @get_color(6);
const rx_south_color: color = @get_color(7);
const ctrl_color:     color = @get_color(8);

// Exchange descriptor registered by communicate().
const ExchangeConfig = struct {
    apply: u16,
    z_base: u16,
    nz: u16,
    num_chunks: u16,
    chunk_size: u16,
    chunk_cb: *const fn (i16) void,
    done_cb: *const fn () void,
};

var current: ExchangeConfig = undefined;
var chunks_done: u16 = 0;
var dirs_pending: u16 = 0;
var send_pending: u16 = 0;

// Output queues: one fabric-out DSD per direction, rebuilt per exchange
// with the communicated z-range of the send buffer.
var fabout_east  = @get_dsd(fabout_dsd, .{ .fabric_color = tx_east_color,  .extent = 1 });
var fabout_west  = @get_dsd(fabout_dsd, .{ .fabric_color = tx_west_color,  .extent = 1 });
var fabout_north = @get_dsd(fabout_dsd, .{ .fabric_color = tx_north_color, .extent = 1 });
var fabout_south = @get_dsd(fabout_dsd, .{ .fabric_color = tx_south_color, .extent = 1 });

// Input queues: one fabric-in DSD per direction.
var fabin_east  = @get_dsd(fabin_dsd, .{ .fabric_color = rx_east_color,  .extent = 1 });
var fabin_west  = @get_dsd(fabin_dsd, .{ .fabric_color = rx_west_color,  .extent = 1 });
var fabin_north = @get_dsd(fabin_dsd, .{ .fabric_color = rx_north_color, .extent = 1 });
var fabin_south = @get_dsd(fabin_dsd, .{ .fabric_color = rx_south_color, .extent = 1 });
|}

let direction_template =
  {|
// ----------------------------------------------------------------------
// $CDIR direction: send our column $DIR-ward; receive and reduce columns
// arriving from the $OPP.
// ----------------------------------------------------------------------

var $DIR_chunk: u16 = 0;
var $DIR_hops_seen: u16 = 0;
var $DIR_coeff: [max_pattern]f32 = @zeros([max_pattern]f32);
var $DIR_staging = @zeros([512]f32);

// Reduce one arriving distance-column of the current chunk into the
// staging buffer, applying the promoted coefficient while draining the
// input queue (communication/compute interleaving).
task $DIR_recv_column() void {
    const hop = $DIR_hops_seen;
    var stage_dsd = @get_dsd(mem1d_dsd,
        .{ .tensor_access = |i|{chunk_size} -> $DIR_staging[i] });
    stage_dsd = @set_dsd_length(stage_dsd, current.chunk_size);
    // dest = dest + incoming * coeff, straight off the fabric queue
    @fmacs(stage_dsd, stage_dsd, fabin_$DIR, $DIR_coeff[hop]);
    $DIR_hops_seen += 1;
    if ($DIR_hops_seen == pattern - 1) {
        $DIR_hops_seen = 0;
        @activate($DIR_chunk_done_id);
    } else {
        // re-arm for the next hop distance of this chunk
        @block($DIR_recv_column_id);
        @unblock($DIR_recv_column_id);
    }
}

// All hop distances of the current chunk arrived for this direction.
task $DIR_chunk_done() void {
    $DIR_chunk += 1;
    dirs_pending -= 1;
    if (dirs_pending == 0) {
        @activate(all_dirs_chunk_done_id);
    }
}

// Send one chunk of our own column $DIR-ward.  The router forwards the
// wavelets up to (pattern-1) hops; on the WSE2 the switch configuration
// additionally loops every wavelet back through our own router.
fn $DIR_send_chunk(send_buf: [*]f32, z_off: u16) void {
    var col_dsd = @get_dsd(mem1d_dsd,
        .{ .tensor_access = |i|{chunk_size} -> send_buf[z_off + i] });
    col_dsd = @set_dsd_length(col_dsd, current.chunk_size);
    @fmovs(fabout_$DIR, col_dsd, .{ .async = true });
    if (wse2_self_send) {
        // WSE2 switch workaround: transmit to ourselves as well
        @fmovs(fabout_$DIR, col_dsd, .{ .async = true });
    }
    send_pending += 1;
}

// Completion of the asynchronous $DIR-ward send of one chunk.
task $DIR_send_done() void {
    send_pending -= 1;
    if (send_pending == 0 and $DIR_chunk == current.num_chunks) {
        @activate(exchange_maybe_done_id);
    }
}

// Routing for the $DIR direction: receive from the $OPP, forward with
// decremented hop budget, deliver a copy to the ramp.
fn $DIR_configure_routes() void {
    @set_local_color_config(rx_$DIR_color, .{ .routes = .{
        .rx = .{ .$OPP = true },
        .tx = .{ .ramp = true, .$DIR = true },
    }});
    @set_local_color_config(tx_$DIR_color, .{ .routes = .{
        .rx = .{ .ramp = true },
        .tx = .{ .$DIR = true },
    }});
}
|}

(** Replace every occurrence of [pattern] in [s]. *)
let replace_all ~(pattern : string) ~(by : string) (s : string) : string =
  let plen = String.length pattern in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if !i + plen <= n && String.sub s !i plen = pattern then begin
      Buffer.add_string buf by;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(** Instantiate the per-direction template.  [dir] is the lowercase
    direction name, [opp] the direction wavelets travel to reach us. *)
let direction_section ~(dir : string) ~(opp : string) : string =
  direction_template
  |> replace_all ~pattern:"$CDIR" ~by:(String.capitalize_ascii dir)
  |> replace_all ~pattern:"$DIR" ~by:dir
  |> replace_all ~pattern:"$OPP" ~by:opp

let resilience_section =
  {|
// ----------------------------------------------------------------------
// Resilience protocol (optional, `resilience` param)
//
// Every chunk wavelet train carries a header of (sequence number,
// checksum). The receiver folds arriving payload words into a running
// checksum while draining the queue; a mismatch (payload corrupted on a
// link) or a gap in sequence numbers (wavelets dropped) triggers a NACK
// back to the sender over the dedicated nack color, and the sender's
// router retransmits the chunk. Loss of the train itself is caught by a
// receiver timeout with bounded exponential backoff. After max_retries
// failed attempts the receiver gives up, substitutes zeroes for the
// missing column, and flags its own data invalid so the host can report
// the affected region instead of trusting silently wrong results.
// ----------------------------------------------------------------------

const nack_color: color = @get_color(9);

param timeout_cycles: u32;      // first receiver timeout
param backoff_factor: u32;      // timeout multiplier per failed attempt
param max_backoff_cycles: u32;  // backoff cap
param max_retries: u16;         // retransmissions before giving up

const WaveletHeader = struct {
    seq: u16,       // chunk sequence number within the exchange
    checksum: u32,  // folded over the chunk's payload words
};

var rx_expected_seq: u16 = 0;
var rx_running_checksum: u32 = 0;
var rx_attempt: u16 = 0;
var rx_timeout: u32 = timeout_cycles;
var data_valid: bool = true;   // cleared on giveup; host reads this back

var fabout_nack = @get_dsd(fabout_dsd, .{ .fabric_color = nack_color, .extent = 1 });
var fabin_nack  = @get_dsd(fabin_dsd,  .{ .fabric_color = nack_color, .extent = 1 });

// Fold one payload word into the running checksum while it drains.
fn checksum_step(word: u32) void {
    rx_running_checksum = (rx_running_checksum ^ word) *% 0x9e3779b9;
}

// Header of a completed chunk train: verify integrity and ordering.
// On mismatch, NACK the sender; the chunk's staging contribution is
// discarded and the train replays.
task verify_chunk_header() void {
    const hdr = @as(*const WaveletHeader, &header_words);
    if (hdr.checksum != rx_running_checksum or hdr.seq != rx_expected_seq) {
        @fmovs(fabout_nack, nack_payload_dsd, .{ .async = true });
        return;
    }
    rx_expected_seq += 1;
    rx_running_checksum = 0;
    rx_attempt = 0;
    rx_timeout = timeout_cycles;
}

// A NACK arrived for one of our outstanding chunks: re-inject it.
// The send-side snapshot is still live (sends complete only after the
// last ACKed chunk), so retransmission never re-reads mutated state.
task nack_recv() void {
    @activate(start_next_chunk_id);
}

// Receiver timeout: the expected train never completed (dropped on a
// link, or the sender is stalled). Back off exponentially, bounded, and
// give up after max_retries — zero-fill and mark our data invalid.
task rx_timeout_expired() void {
    if (rx_attempt >= max_retries) {
        data_valid = false;  // graceful degradation: host sees the mask
        rx_expected_seq += 1;
        rx_attempt = 0;
        rx_timeout = timeout_cycles;
        return;
    }
    rx_attempt += 1;
    rx_timeout = rx_timeout * backoff_factor;
    if (rx_timeout > max_backoff_cycles) {
        rx_timeout = max_backoff_cycles;
    }
    @fmovs(fabout_nack, nack_payload_dsd, .{ .async = true });
}

var header_words: [2]u32 = @zeros([2]u32);
var nack_payload_dsd = @get_dsd(mem1d_dsd,
    .{ .tensor_access = |i|{2} -> header_words[i] });

comptime {
    if (resilience) {
        const verify_chunk_header_id = @get_local_task_id(27);
        const rx_timeout_expired_id  = @get_local_task_id(28);
        const nack_recv_id           = @get_data_task_id(nack_color);
        @bind_local_task(verify_chunk_header, verify_chunk_header_id);
        @bind_local_task(rx_timeout_expired, rx_timeout_expired_id);
        @bind_data_task(nack_recv, nack_recv_id);
        // NACKs travel the reverse path of the data they complain about.
        @set_local_color_config(nack_color, .{ .routes = .{
            .rx = .{ .east = true, .west = true, .north = true, .south = true },
            .tx = .{ .ramp = true },
        }});
    }
}
|}

let footer =
  {|
// ----------------------------------------------------------------------
// Exchange driver
// ----------------------------------------------------------------------

// A chunk has been reduced in every direction: hand the staged data to
// the user's chunk callback, then start the next chunk.
task all_dirs_chunk_done() void {
    const off: i16 = @as(i16, chunks_done) * @as(i16, current.chunk_size);
    current.chunk_cb(off);
    chunks_done += 1;
    if (chunks_done < current.num_chunks) {
        dirs_pending = directions;
        // staging buffers are consumed; clear for the next chunk
        east_staging  = @zeros([512]f32);
        west_staging  = @zeros([512]f32);
        north_staging = @zeros([512]f32);
        south_staging = @zeros([512]f32);
        @activate(start_next_chunk_id);
    } else {
        @activate(exchange_maybe_done_id);
    }
}

task start_next_chunk() void {
    const z = current.z_base + chunks_done * current.chunk_size;
    east_send_chunk(current_send_buf, z);
    west_send_chunk(current_send_buf, z);
    north_send_chunk(current_send_buf, z);
    south_send_chunk(current_send_buf, z);
}

// Both our outgoing broadcast and all incoming reductions finished.
task exchange_maybe_done() void {
    if (send_pending == 0 and chunks_done == current.num_chunks) {
        current.done_cb();
    }
}

var current_send_buf: [*]f32 = undefined;

// Entry point: register the exchange and kick off chunk zero.
// The call returns immediately; completion is signalled through the
// callbacks (the continuation-passing boundary of Figure 1).
fn communicate(cfg: ExchangeConfig, send_buf: [*]f32) void {
    current = cfg;
    current_send_buf = send_buf;
    chunks_done = 0;
    dirs_pending = directions;
    send_pending = 0;
    @activate(start_next_chunk_id);
}

comptime {
    const east_recv_column_id      = @get_data_task_id(rx_east_color);
    const west_recv_column_id      = @get_data_task_id(rx_west_color);
    const north_recv_column_id     = @get_data_task_id(rx_north_color);
    const south_recv_column_id     = @get_data_task_id(rx_south_color);
    @bind_data_task(east_recv_column, east_recv_column_id);
    @bind_data_task(west_recv_column, west_recv_column_id);
    @bind_data_task(north_recv_column, north_recv_column_id);
    @bind_data_task(south_recv_column, south_recv_column_id);

    const east_chunk_done_id       = @get_local_task_id(16);
    const west_chunk_done_id       = @get_local_task_id(17);
    const north_chunk_done_id      = @get_local_task_id(18);
    const south_chunk_done_id      = @get_local_task_id(19);
    const east_send_done_id        = @get_local_task_id(20);
    const west_send_done_id        = @get_local_task_id(21);
    const north_send_done_id       = @get_local_task_id(22);
    const south_send_done_id       = @get_local_task_id(23);
    const all_dirs_chunk_done_id   = @get_local_task_id(24);
    const start_next_chunk_id      = @get_local_task_id(25);
    const exchange_maybe_done_id   = @get_local_task_id(26);
    @bind_local_task(east_chunk_done, east_chunk_done_id);
    @bind_local_task(west_chunk_done, west_chunk_done_id);
    @bind_local_task(north_chunk_done, north_chunk_done_id);
    @bind_local_task(south_chunk_done, south_chunk_done_id);
    @bind_local_task(east_send_done, east_send_done_id);
    @bind_local_task(west_send_done, west_send_done_id);
    @bind_local_task(north_send_done, north_send_done_id);
    @bind_local_task(south_send_done, south_send_done_id);
    @bind_local_task(all_dirs_chunk_done, all_dirs_chunk_done_id);
    @bind_local_task(start_next_chunk, start_next_chunk_id);
    @bind_local_task(exchange_maybe_done, exchange_maybe_done_id);

    east_configure_routes();
    west_configure_routes();
    north_configure_routes();
    south_configure_routes();
}
|}

let source : string =
  String.concat ""
    [
      header;
      direction_section ~dir:"east" ~opp:"west";
      direction_section ~dir:"west" ~opp:"east";
      direction_section ~dir:"north" ~opp:"south";
      direction_section ~dir:"south" ~opp:"north";
      resilience_section;
      footer;
    ]
