(** Reference semantics for [csl_stencil.apply], registered into the
    sequential interpreter.

    Models exactly what the fabric does, but in a single address space:
    for every PE (2D point), the receive-chunk region runs once per chunk
    with a view of the neighbours' column slices, then the done region
    combines the accumulator with locally held data.  When coefficients
    are promoted, the view holds per-direction staging buffers — incoming
    columns scaled by their coefficient and reduced over the distances —
    exactly what the communication layer delivers at runtime.

    Handles both the tensor form (post group 2) and the bufferized form
    (post group 3, detected by the [bufferized] attr). *)

open Wsc_ir.Ir
module I = Wsc_dialects.Interp
module Stencil = Wsc_dialects.Stencil

let tensor_slice (col : float array) ~(offset : int) ~(size : int) : float array =
  Array.sub col offset size

(** Column slice of grid [g] at [p + d], or None outside the grid. *)
let neighbour_slice (g : I.grid) (p : int list) (d : int list) ~z_off ~cs :
    float array option =
  let np = List.map2 ( + ) p d in
  let inside = List.for_all2 (fun i (lb, ub) -> i >= lb && i < ub) np g.I.gbounds in
  if not inside then None
  else
    match I.grid_get g np with
    | I.Rtensor col -> Some (tensor_slice col ~offset:z_off ~size:cs)
    | _ -> None

(** Build the per-input received views for one chunk.  [one_shot]: all
    directions reduce into the zero-offset staging position (§5.7). *)
let build_rcv_grids ?(one_shot = false) (cfg : Csl_stencil.apply_config)
    (comm_grids : I.grid list) (p : int list) ~(z_halo : int) ~(off : int)
    ~(radius : int) : I.grid list =
  let cs = cfg.chunk_size in
  let rb = [ (-radius, radius + 1); (-radius, radius + 1) ] in
  List.mapi
    (fun i (g : I.grid) ->
      let rg = I.make_grid rb (Tensor ([ cs ], F32)) in
      if cfg.coeffs <> [] then
        (* promoted: pre-scaled reduction, per direction at the unit
           offset, or into one shared position when one-shot *)
        List.iter
          (fun (i', dx, dy, c) ->
            if i' = i then begin
              match neighbour_slice g p [ dx; dy ] ~z_off:(z_halo + off) ~cs with
              | Some sl ->
                  let pos =
                    if one_shot then [ 0; 0 ]
                    else [ compare dx 0; compare dy 0 ]
                  in
                  (match I.grid_get rg pos with
                  | I.Rtensor acc ->
                      Array.iteri (fun k x -> acc.(k) <- acc.(k) +. (c *. x)) sl;
                      I.grid_set rg pos (I.Rtensor acc)
                  | _ -> ())
              | None -> ()
            end)
          cfg.coeffs
      else
        (* unpromoted: raw column per (dx, dy) *)
        I.iter_points rb (fun d ->
            match d with
            | [ dx; dy ] when dx <> 0 || dy <> 0 -> (
                match neighbour_slice g p d ~z_off:(z_halo + off) ~cs with
                | Some sl -> I.grid_set rg d (I.Rtensor sl)
                | None -> ())
            | _ -> ());
      rg)
    comm_grids

let apply_setup (op : op) (env : I.env) =
  let cfg = Csl_stencil.config_of op in
  let z_halo = int_attr_exn op "z_halo" in
  let cb = Stencil.bounds_of_attr (attr_exn op "compute_bounds") in
  let operand_vals = List.map (I.lookup env) op.operands in
  let comm_grids =
    List.filteri (fun i _ -> i < cfg.comm_count) operand_vals |> List.map I.as_grid
  in
  let acc_init = I.as_tensor (List.nth operand_vals cfg.comm_count) in
  let radius =
    List.fold_left (fun r (s : Wsc_dialects.Dmp.swap_desc) -> max r s.depth) 1 (List.concat cfg.swaps)
  in
  (cfg, z_halo, cb, operand_vals, comm_grids, acc_init, radius)

(** Tensor-form evaluation (post group 2). *)
let tensor_handler (ctx : I.ctx) (op : op) (run_block : I.ctx -> block -> I.rtvalue list)
    : I.rtvalue list =
  let cfg, z_halo, cb, operand_vals, comm_grids, acc_init, radius =
    apply_setup op ctx.env
  in
  let recv_block = entry_block (Csl_stencil.recv_region op) in
  let done_block = entry_block (Csl_stencil.done_region op) in
  let out_grids = List.map (fun _ -> I.copy_grid (List.hd comm_grids)) op.results in
  let saved_point = ctx.point in
  I.iter_points cb (fun p ->
      let acc = ref (Array.copy acc_init) in
      for chunk = 0 to cfg.num_chunks - 1 do
        let off = chunk * cfg.chunk_size in
        let rcv_grids =
          build_rcv_grids ~one_shot:(has_attr op "one_shot") cfg comm_grids p
            ~z_halo ~off ~radius
        in
        ctx.point <- [ 0; 0 ];
        List.iteri
          (fun i a ->
            if i < cfg.comm_count then
              I.bind ctx.env a (I.Rgrid (List.nth rcv_grids i))
            else if i = cfg.comm_count then I.bind ctx.env a (I.Rint off)
            else I.bind ctx.env a (I.Rtensor !acc))
          recv_block.bargs;
        (match run_block ctx recv_block with
        | [ I.Rtensor acc' ] -> acc := acc'
        | _ -> I.fail "csl_stencil.apply: recv region must yield the accumulator")
      done;
      ctx.point <- p;
      List.iteri
        (fun i a ->
          if i = cfg.comm_count then I.bind ctx.env a (I.Rtensor !acc)
          else I.bind ctx.env a (List.nth operand_vals i))
        done_block.bargs;
      let cols = run_block ctx done_block in
      if List.length cols <> List.length out_grids then
        I.fail "csl_stencil.apply: done region must yield one column per result";
      List.iter2 (fun g col -> I.grid_set g p col) out_grids cols);
  ctx.point <- saved_point;
  List.map (fun g -> I.Rgrid g) out_grids

(** Bufferized-form evaluation (post group 3), via {!Buf_eval}. *)
let bufferized_handler (ctx : I.ctx) (op : op) : I.rtvalue list =
  let cfg, z_halo, cb, operand_vals, comm_grids, acc_init, radius =
    apply_setup op ctx.env
  in
  let recv_block = entry_block (Csl_stencil.recv_region op) in
  let done_block = entry_block (Csl_stencil.done_region op) in
  let out_grids = List.map (fun _ -> I.copy_grid (List.hd comm_grids)) op.results in
  I.iter_points cb (fun p ->
      let acc = Array.copy acc_init in
      for chunk = 0 to cfg.num_chunks - 1 do
        let off = chunk * cfg.chunk_size in
        let rcv_grids =
          build_rcv_grids ~one_shot:(has_attr op "one_shot") cfg comm_grids p
            ~z_halo ~off ~radius
        in
        let env = Buf_eval.new_env () in
        env.point <- [ 0; 0 ];
        List.iteri
          (fun i a ->
            if i < cfg.comm_count then
              Buf_eval.bind env a (Buf_eval.Vgrid (List.nth rcv_grids i))
            else if i = cfg.comm_count then Buf_eval.bind env a (Buf_eval.Vint off)
            else Buf_eval.bind env a (Buf_eval.Vbuf (Bufview.of_array acc)))
          recv_block.bargs;
        ignore (Buf_eval.eval_block env recv_block)
      done;
      let env = Buf_eval.new_env () in
      env.point <- p;
      List.iteri
        (fun i a ->
          if i = cfg.comm_count then
            Buf_eval.bind env a (Buf_eval.Vbuf (Bufview.of_array acc))
          else
            match List.nth operand_vals i with
            | I.Rgrid g -> Buf_eval.bind env a (Buf_eval.Vgrid g)
            | _ -> I.fail "csl_stencil.apply: operand %d is not a grid" i)
        done_block.bargs;
      let outs = Buf_eval.eval_block env done_block in
      if List.length outs <> List.length out_grids then
        I.fail "csl_stencil.apply: done region must yield one buffer per result";
      List.iter2
        (fun g out ->
          match out with
          | Buf_eval.Vbuf b -> I.grid_set g p (I.Rtensor (Bufview.to_array b))
          | _ -> I.fail "csl_stencil.apply: done region must yield buffers")
        out_grids outs);
  List.map (fun g -> I.Rgrid g) out_grids

let handler : I.handler =
 fun ctx op run_block ->
  if has_attr op "bufferized" then bufferized_handler ctx op
  else tensor_handler ctx op run_block

(** [csl_stencil.prefetch] marks a fetch; in single-address-space
    semantics it is the identity (like [dmp.swap]). *)
let prefetch_handler : I.handler =
 fun ctx op _ -> [ I.lookup ctx.env (operand op 0) ]

(* [register] is called from [Pipeline.compile] on every compilation;
   under the concurrent compile service that means several domains at
   once, and [Interp.register_handler] mutates a shared Hashtbl.  The
   once-guard makes every call after the first (taken here, at module
   initialization on the main domain) a pure read of the flag. *)
let registered = Atomic.make false

let register () =
  if not (Atomic.exchange registered true) then begin
    I.register_handler "csl_stencil.apply" handler;
    I.register_handler "csl_stencil.prefetch" prefetch_handler
  end

let () = register ()
