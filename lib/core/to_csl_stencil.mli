(** Group 2 (paper §5.2): convert-stencil-to-csl-stencil.

    Replaces each [dmp.swap] + [stencil.apply] pair with one
    [csl_stencil.apply] with explicit chunked communication: the returned
    expression is decomposed into additive terms; remote-pure terms form
    the receive-chunk region (reduced chunk-by-chunk into the
    accumulator, with coefficients promoted into the communication layer
    when every remote term is coefficient × access); the rest forms the
    done region.  Terms mixing local and remote factors fall back to
    pack mode (raw columns staged, all compute in the done region).
    Chunk size is the largest divisor of the communicated z range whose
    receive buffers fit the memory budget. *)

exception Lowering_error of string

type options = {
  comm_budget_bytes : int;  (** receive-buffer budget per PE *)
  promote_coefficients : bool;  (** §5.7 coefficient promotion *)
  one_shot_reduction : bool;
      (** §5.7: reduce all directions into one staging buffer and consume
          it with a single builtin call *)
  num_chunks_override : int option;  (** ablation: force a chunk count *)
}

val default_options : options

(** Chunk counts [k] that are legal as [num_chunks_override] for a
    communicated z range of [len] elements (the divisors of [len], in
    ascending order).  This is the override-feasible space searched by
    the autotuner. *)
val feasible_chunk_counts : len:int -> int list

(** Largest chunk size whose buffers fit, as (num_chunks, chunk_size).
    @raise Lowering_error when nothing fits or the override does not
    divide the range. *)
val choose_chunks :
  options ->
  promoted:bool ->
  len:int ->
  Wsc_dialects.Dmp.swap_desc list list ->
  int * int

(** lower-dmp-swap-to-csl-prefetch: [dmp.swap] ops become
    [csl_stencil.prefetch] markers with the same exchange descriptors. *)
val lower_swaps : Wsc_ir.Ir.op -> Wsc_ir.Ir.op

val lower_swaps_pass : Wsc_ir.Pass.t

val convert : options -> Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val pass : ?options:options -> unit -> Wsc_ir.Pass.t
