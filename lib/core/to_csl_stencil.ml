(** Group 2 (paper §5.2): realize placement and communication.

    Replaces each [dmp.swap] + [stencil.apply] pair with a single
    [csl_stencil.apply] that makes chunked communication explicit:

    - the returned expression is decomposed into additive terms
      (coefficient × product-of-factors);
    - terms whose accesses are all remote form the receive-chunk region,
      reduced chunk-by-chunk into a z-sized accumulator (two-fold partial
      reduction, §4.1);
    - when every remote term is a plain coefficient × access, the
      coefficients are promoted into the communication layer ([coeffs]
      attr) so they apply to incoming data at zero overhead (§5.7), and
      reduction happens straight off the fabric without neighbour receive
      buffers;
    - the remaining terms form the done region, combined with the
      accumulator into the output column;
    - the chunk size is the largest divisor of the communicated z range
      whose receive buffers fit the communication memory budget. *)

open Wsc_ir.Ir
module Stencil = Wsc_dialects.Stencil
module Dmp = Wsc_dialects.Dmp
module Arith = Wsc_dialects.Arith
module Tensor = Wsc_dialects.Tensor_d
module B = Wsc_ir.Builder

exception Lowering_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lowering_error s)) fmt

type options = {
  comm_budget_bytes : int;  (** memory allowed for receive buffers per PE *)
  promote_coefficients : bool;  (** §5.7 coefficient promotion *)
  one_shot_reduction : bool;
      (** §5.7: when the same reduction applies across the whole stencil
          shape (always true once coefficients are promoted), the
          communication layer reduces all directions into a single
          staging buffer and the chunk callback performs one builtin call
          instead of one per direction *)
  num_chunks_override : int option;  (** ablation: force a chunk count *)
}

let default_options =
  {
    comm_budget_bytes = 16 * 1024;
    promote_coefficients = true;
    one_shot_reduction = true;
    num_chunks_override = None;
  }

(** {1 Term decomposition} *)

type term = { coeff : float; factors : value list }
(** A term of the additive decomposition: [coeff * Π factors]. *)

let def_map_of_block (b : block) : (int, op) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun o -> List.iter (fun r -> Hashtbl.replace h r.vid o) o.results) b.bops;
  h

let const_value (defs : (int, op) Hashtbl.t) (v : value) : float option =
  match Hashtbl.find_opt defs v.vid with
  | Some o when Arith.is_constant o -> Arith.constant_value o
  | _ -> None

let rec decompose defs (v : value) (sign : float) : term list =
  match const_value defs v with
  | Some c -> [ { coeff = sign *. c; factors = [] } ]
  | None -> (
      match Hashtbl.find_opt defs v.vid with
      | Some o -> (
          match o.opname with
          | "varith.add" ->
              List.concat_map (fun x -> decompose defs x sign) o.operands
          | "arith.addf" ->
              decompose defs (operand o 0) sign @ decompose defs (operand o 1) sign
          | "arith.subf" ->
              decompose defs (operand o 0) sign
              @ decompose defs (operand o 1) (-.sign)
          | "varith.mul" | "arith.mulf" ->
              let consts, rest =
                List.partition (fun x -> const_value defs x <> None) o.operands
              in
              let k =
                List.fold_left
                  (fun k x -> k *. Option.get (const_value defs x))
                  1.0 consts
              in
              (match rest with
              | [] -> [ { coeff = sign *. k; factors = [] } ]
              | [ x ] ->
                  List.map
                    (fun t -> { t with coeff = t.coeff *. k })
                    (decompose defs x sign)
              | xs -> [ { coeff = sign *. k; factors = xs } ])
          | _ -> [ { coeff = sign; factors = [ v ] } ])
      | None -> [ { coeff = sign; factors = [ v ] } ])

(** All (grid-arg value, xy-offset, z-slice-offset) accesses under the def
    tree of [v]. *)
let rec accesses_of defs (v : value) : (value * int list) list =
  match Hashtbl.find_opt defs v.vid with
  | None -> []
  | Some o -> (
      match o.opname with
      | "stencil.access" -> [ (operand o 0, dense_ints_exn o "offset") ]
      | _ -> List.concat_map (accesses_of defs) o.operands)

let term_accesses defs (t : term) : (value * int list) list =
  List.concat_map (accesses_of defs) t.factors

let is_remote_off = function x :: y :: _ -> x <> 0 || y <> 0 | _ -> false

type term_class = Remote | Local | Mixed | Constant

let classify defs (t : term) : term_class =
  match term_accesses defs t with
  | [] -> Constant
  | accs ->
      let remote = List.for_all (fun (_, off) -> is_remote_off off) accs in
      let local = List.for_all (fun (_, off) -> not (is_remote_off off)) accs in
      if remote then Remote else if local then Local else Mixed

(** {1 Chunk-size selection} *)

(** Receive-buffer bytes per PE for chunk size [cs]:
    with coefficient promotion incoming data reduces straight into the
    accumulator slice, needing one cs-sized staging buffer per direction;
    without it, each of the [depth] distance-columns per direction must be
    held. *)
let recv_bytes ~(promoted : bool) (swaps_by_input : Dmp.swap_desc list list) cs =
  List.fold_left
    (fun acc swaps ->
      acc
      + List.fold_left
          (fun a (s : Dmp.swap_desc) ->
            a + ((if promoted then 1 else s.depth) * cs * 4))
          0 swaps)
    0 swaps_by_input

let divisors_desc n =
  let rec go d acc = if d = 0 then acc else go (d - 1) (if n mod d = 0 then d :: acc else acc) in
  List.rev (go n [])

let feasible_chunk_counts ~(len : int) : int list =
  if len <= 0 then []
  else List.map (fun cs -> len / cs) (divisors_desc len)

let choose_chunks (opts : options) ~(promoted : bool) ~(len : int)
    (swaps_by_input : Dmp.swap_desc list list) : int * int =
  match opts.num_chunks_override with
  | Some k ->
      if len mod k <> 0 then fail "num_chunks %d does not divide z range %d" k len;
      (k, len / k)
  | None -> (
      let fits cs = recv_bytes ~promoted swaps_by_input cs <= opts.comm_budget_bytes in
      match List.find_opt fits (divisors_desc len) with
      | Some cs -> (len / cs, cs)
      | None ->
          fail "communication buffers do not fit: %d bytes needed at chunk size 1"
            (recv_bytes ~promoted swaps_by_input 1))

(** {1 Tree rebuilding} *)

(** Rebuild the def tree of [v] inside a new region, mapping access leaves
    through [leaf].  [retype] adjusts tensor extents (chunk regions work on
    cs-sized tensors). *)
let rec rebuild defs (cache : (int, value) Hashtbl.t) (b : B.t)
    ~(leaf : op -> value option) ~(retype : typ -> typ) (v : value) : value =
  match Hashtbl.find_opt cache v.vid with
  | Some v' -> v'
  | None ->
      let result_v =
        match Hashtbl.find_opt defs v.vid with
        | None -> fail "cannot rebuild value defined outside the apply body"
        | Some o -> (
            match leaf o with
            | Some v' -> v'
            | None -> (
                match o.opname with
                | "arith.constant" ->
                    let c = clone_op (Subst.create ()) o in
                    (result c).vtyp <- retype (result c).vtyp;
                    B.insert b c
                | "tensor.extract_slice" ->
                    let src =
                      rebuild defs cache b ~leaf ~retype (operand o 0)
                    in
                    let c =
                      create_op "tensor.extract_slice" ~operands:[ src ]
                        ~results:[ retype (result o).vtyp ]
                        ~attrs:o.attrs
                    in
                    B.insert b c
                | name
                  when name = "arith.addf" || name = "arith.subf"
                       || name = "arith.mulf" || name = "arith.divf"
                       || name = "varith.add" || name = "varith.mul" ->
                    let ops' =
                      List.map (rebuild defs cache b ~leaf ~retype) o.operands
                    in
                    let c =
                      create_op name ~operands:ops'
                        ~results:[ retype (result o).vtyp ]
                    in
                    B.insert b c
                | name -> fail "cannot rebuild op %s into a csl_stencil region" name))
      in
      Hashtbl.replace cache v.vid result_v;
      result_v

(** {1 The conversion} *)

(** Slice info of a value: Some (grid, dx, dy, zoff) when the value is
    extract_slice(access(grid, [dx, dy])) with slice offset z_halo+zoff. *)
let slice_info defs ~z_halo (v : value) : (value * int * int * int) option =
  match Hashtbl.find_opt defs v.vid with
  | Some o when o.opname = "tensor.extract_slice" -> (
      match Hashtbl.find_opt defs (operand o 0).vid with
      | Some a when a.opname = "stencil.access" -> (
          match dense_ints_exn a "offset" with
          | [ dx; dy ] ->
              Some (operand a 0, dx, dy, int_attr_exn o "offset" - z_halo)
          | _ -> None)
      | _ -> None)
  | _ -> None

let convert_apply (opts : options) (root : op) (blk : block) (apply : op)
    (swaps : op list) : op list =
  let z_halo = int_attr_exn apply "z_halo" in
  let nz = int_attr_exn apply "z_interior" in
  let body = Stencil.apply_body apply in
  let defs = def_map_of_block body in
  (* operands that are swap results are the communicated inputs *)
  let swap_of (v : value) =
    List.find_opt (fun s -> (result s).vid = v.vid) swaps
  in
  let comm_operands, local_operands =
    List.partition (fun v -> swap_of v <> None) apply.operands
  in
  (* an apply with no remote dependencies (e.g. the second UVKBE kernel
     when stencil inlining is off) still lowers through the same op, as a
     degenerate exchange with no directions: the communication layer
     invokes the callbacks immediately *)
  let local_only = comm_operands = [] in
  let comm_operands, local_operands =
    if local_only then ([ List.hd apply.operands ], List.tl apply.operands)
    else (comm_operands, local_operands)
  in
  let comm_swaps = List.filter_map swap_of comm_operands in
  let topology =
    match comm_swaps with
    | s :: _ -> Dmp.topology s
    | [] -> (
        match Stencil.bounds_of_attr (attr_exn apply "compute_bounds") with
        | [ (lx, ux); (ly, uy) ] -> (ux - lx, uy - ly)
        | _ -> fail "local apply without 2-D compute bounds")
  in
  let swaps_by_input =
    if local_only then [ [] ] else List.map Dmp.swaps comm_swaps
  in
  (* communicated z range: union over inputs; all benchmarks use [0, nz) *)
  let z_lo, z_hi =
    List.fold_left
      (fun (lo, hi) swaps ->
        List.fold_left
          (fun (lo, hi) (s : Dmp.swap_desc) -> (min lo s.z_lo, max hi s.z_hi))
          (lo, hi) swaps)
      (0, nz) swaps_by_input
  in
  if z_lo <> 0 || z_hi <> nz then
    fail "communicated z range [%d, %d) does not match the interior [0, %d)" z_lo
      z_hi nz;
  let len = z_hi - z_lo in
  (* decompose the returned interior value *)
  let ret =
    match Wsc_ir.Ir.terminator body with
    | Some t when t.opname = "stencil.return" -> t
    | _ -> fail "apply body has no stencil.return"
  in
  let interior_vals =
    List.map
      (fun rv ->
        match Hashtbl.find_opt defs rv.vid with
        | Some o when o.opname = "tensor.insert_slice" -> operand o 0
        | _ -> fail "apply body does not end in the tensorized insert_slice form")
      ret.operands
  in
  let terms = List.concat_map (fun v -> decompose defs v 1.0) interior_vals in
  let remote_terms, rest =
    List.partition (fun t -> classify defs t = Remote) terms
  in
  (* terms mixing remote and local accesses cannot be reduced on arrival;
     they force pack mode: region 0 stores raw received columns into a
     larger accumulator and region 1 computes everything (§4.1's base
     behaviour, without the reduction optimization).  Multiple results
     (stencil inlining's pass-through outputs) also route through pack
     mode: the reduction optimization targets the single-output shape. *)
  let has_mixed = List.exists (fun t -> classify defs t = Mixed) rest in
  let pack_mode = has_mixed || List.length apply.results > 1 in
  if remote_terms = [] && not (local_only || has_mixed) then
    fail "apply has remote dependencies but no remote terms";
  if (remote_terms <> [] || has_mixed) && local_only then
    fail "apply reads remote data but no halo exchange precedes it";
  (* remote accesses must read the plain z interior (z offset 0) *)
  List.iter
    (fun t ->
      List.iter
        (fun (_, off) ->
          match off with
          | [ _; _ ] -> ()
          | _ -> fail "remote access with unexpected rank")
        (term_accesses defs t))
    remote_terms;
  (* body block args correspond to apply.operands; map arg -> operand *)
  let arg_operand =
    List.map2 (fun arg oper -> (arg.vid, oper)) body.bargs apply.operands
  in
  let operand_of_arg (v : value) =
    match List.assoc_opt v.vid arg_operand with
    | Some o -> o
    | None -> fail "access source is not a block argument"
  in
  (* map: comm grid operand vid -> index among comm inputs *)
  let comm_index v =
    let rec go i = function
      | [] -> fail "access to a grid that is not an apply operand"
      | x :: rest -> if x.vid = v.vid then i else go (i + 1) rest
    in
    go 0 comm_operands
  in
  (* promotion: every remote term is coeff x single-slice-of-access at z 0 *)
  let promoted_coeffs =
    if pack_mode || not opts.promote_coefficients then None
    else
      let rec collect acc = function
        | [] -> Some (List.rev acc)
        | t :: rest -> (
            match t.factors with
            | [ f ] -> (
                match slice_info defs ~z_halo f with
                | Some (g, dx, dy, 0) ->
                    let i = comm_index (operand_of_arg g) in
                    collect ((i, dx, dy, t.coeff) :: acc) rest
                | _ -> None)
            | _ -> None)
      in
      (* several terms may hit the same neighbour offset: their
         coefficients merge into one (the communication layer applies a
         single multiplier per incoming column) *)
      Option.map
        (fun coeffs ->
          List.fold_left
            (fun merged (i, dx, dy, c) ->
              match
                List.partition (fun (i', x, y, _) -> i' = i && x = dx && y = dy) merged
              with
              | [ (_, _, _, c0) ], rest -> rest @ [ (i, dx, dy, c0 +. c) ]
              | _ -> merged @ [ (i, dx, dy, c) ])
            [] coeffs)
        (collect [] remote_terms)
  in
  let promoted = promoted_coeffs <> None in
  let num_chunks, chunk_size = choose_chunks opts ~promoted ~len swaps_by_input in
  (* pattern radius over all comm inputs *)
  let radius =
    List.fold_left
      (fun r swaps ->
        List.fold_left (fun r (s : Dmp.swap_desc) -> max r s.depth) r swaps)
      1 swaps_by_input
  in
  (* pack mode: every received distance-column gets a slot of the (larger)
     accumulator; reduce mode: one z-range accumulator *)
  let slots =
    List.concat
      (List.mapi
         (fun i swaps ->
           List.concat_map
             (fun (sw : Dmp.swap_desc) ->
               let vx, vy =
                 match sw.dir with
                 | Dmp.East -> (1, 0)
                 | Dmp.West -> (-1, 0)
                 | Dmp.North -> (0, 1)
                 | Dmp.South -> (0, -1)
               in
               List.init sw.depth (fun k -> (i, vx * (k + 1), vy * (k + 1))))
             swaps)
         swaps_by_input)
  in
  let slot_of i dx dy =
    let rec go n = function
      | [] -> fail "no receive slot for offset (%d, %d) of input %d" dx dy i
      | (i', x, y) :: rest -> if i' = i && x = dx && y = dy then n else go (n + 1) rest
    in
    go 0 slots
  in
  let acc_len = if pack_mode then List.length slots * len else len in
  let chunk_tensor = Tensor ([ chunk_size ], F32) in
  let rcv_typ = Temp ([ (-radius, radius + 1); (-radius, radius + 1) ], chunk_tensor) in
  let acc_typ = Tensor ([ acc_len ], F32) in
  (* ---- receive-chunk region ---- *)
  let recv_region =
    if pack_mode then begin
      (* pack: copy every received distance-column into its slot *)
      let rcv_args = List.map (fun _ -> new_value ~hint:"rcv" rcv_typ) comm_operands in
      let off_arg = new_value ~hint:"offset" Index in
      let acc_arg = new_value ~hint:"acc" acc_typ in
      let b = B.create () in
      let acc_final =
        List.fold_left
          (fun acc (i, dx, dy) ->
            let v =
              B.insert b
                (Csl_stencil.access (List.nth rcv_args i) ~offset:[ dx; dy ]
                   ~result:chunk_tensor)
            in
            let base =
              B.insert b (Arith.constant_index (slot_of i dx dy * len))
            in
            let off' =
              B.insert b
                (create_op "arith.addi" ~operands:[ base; off_arg ]
                   ~results:[ Index ])
            in
            B.insert b (Tensor.insert_slice ~src:v ~dst:acc ~offset:off'))
          acc_arg slots
      in
      B.insert0 b (Csl_stencil.yield [ acc_final ]);
      new_region [ new_block ~args:(rcv_args @ [ off_arg; acc_arg ]) (B.ops b) ]
    end
    else
    let rcv_args = List.map (fun _ -> new_value ~hint:"rcv" rcv_typ) comm_operands in
    let off_arg = new_value ~hint:"offset" Index in
    let acc_arg = new_value ~hint:"acc" acc_typ in
    let b = B.create () in
    if remote_terms = [] then begin
      (* degenerate local-only apply: nothing arrives, nothing to reduce *)
      B.insert0 b (Csl_stencil.yield [ acc_arg ]);
      new_region [ new_block ~args:(rcv_args @ [ off_arg; acc_arg ]) (B.ops b) ]
    end
    else begin
    let chunk_val =
      match promoted_coeffs with
      | Some coeffs when opts.one_shot_reduction ->
          (* one-shot reduction (Â§5.7): the communication layer reduces
             every direction into one staging buffer per input, read at
             the zero offset; a single builtin consumes it *)
          let inputs_with_data =
            List.sort_uniq compare (List.map (fun (i, _, _, _) -> i) coeffs)
          in
          let vals =
            List.map
              (fun i ->
                B.insert b
                  (Csl_stencil.access (List.nth rcv_args i) ~offset:[ 0; 0 ]
                     ~result:chunk_tensor))
              inputs_with_data
          in
          (match vals with
          | [ v ] -> v
          | vs -> B.insert b (Wsc_dialects.Varith.add vs))
      | Some coeffs ->
          (* the communication layer pre-scales incoming data and reduces
             it per direction; the region adds one staging buffer per
             (input, direction), addressed by the unit offset *)
          let dirs =
            List.sort_uniq compare
              (List.map
                 (fun (i, dx, dy, _) -> (i, compare dx 0, compare dy 0))
                 coeffs)
          in
          let vals =
            List.map
              (fun (i, sx, sy) ->
                B.insert b
                  (Csl_stencil.access (List.nth rcv_args i) ~offset:[ sx; sy ]
                     ~result:chunk_tensor))
              dirs
          in
          (match vals with
          | [ v ] -> v
          | vs -> B.insert b (Wsc_dialects.Varith.add vs))
      | None ->
          (* rebuild each remote term on chunk-sized tensors *)
          let cache = Hashtbl.create 16 in
          let retype = function
            | Tensor (_, e) -> Tensor ([ chunk_size ], e)
            | t -> t
          in
          let leaf (o : op) =
            if o.opname = "tensor.extract_slice" then
              match slice_info defs ~z_halo (result o) with
              | Some (g, dx, dy, 0) when dx <> 0 || dy <> 0 ->
                  let idx = comm_index (operand_of_arg g) in
                  Some
                    (B.insert b
                       (Csl_stencil.access (List.nth rcv_args idx)
                          ~offset:[ dx; dy ] ~result:chunk_tensor))
              | Some (_, dx, dy, zo) when (dx <> 0 || dy <> 0) && zo <> 0 ->
                  fail "remote access at non-zero z offset unsupported"
              | _ -> None
            else None
          in
          let term_vals =
            List.map
              (fun t ->
                let fs =
                  List.map (rebuild defs cache b ~leaf ~retype) t.factors
                in
                let prod =
                  match fs with
                  | [] -> fail "constant remote term"
                  | [ f ] -> f
                  | fs -> B.insert b (Wsc_dialects.Varith.mul fs)
                in
                if t.coeff = 1.0 then prod
                else begin
                  let c =
                    B.insert b (Arith.constant_dense ~shape:[ chunk_size ] t.coeff)
                  in
                  B.insert b (Arith.mulf c prod)
                end)
              remote_terms
          in
          (match term_vals with
          | [ v ] -> v
          | vs -> B.insert b (Wsc_dialects.Varith.add vs))
    in
    let acc' =
      B.insert b (Tensor.insert_slice ~src:chunk_val ~dst:acc_arg ~offset:off_arg)
    in
    B.insert0 b (Csl_stencil.yield [ acc' ]);
    new_region [ new_block ~args:(rcv_args @ [ off_arg; acc_arg ]) (B.ops b) ]
    end
  in
  (* ---- done region: args mirror the new operand list
     (comm..., acc, local...) ---- *)
  let done_region =
    let comm_args = List.map (fun v -> new_value ?hint:v.vhint v.vtyp) comm_operands in
    let acc_arg = new_value ~hint:"acc" acc_typ in
    let local_args = List.map (fun v -> new_value ?hint:v.vhint v.vtyp) local_operands in
    let done_args = comm_args @ [ acc_arg ] @ local_args in
    let operand_arg_pairs =
      List.combine comm_operands comm_args @ List.combine local_operands local_args
    in
    let arg_for_operand (v : value) =
      match List.find_opt (fun (o, _) -> o.vid = v.vid) operand_arg_pairs with
      | Some (_, a) -> a
      | None -> fail "operand not found"
    in
    let b = B.create () in
    let cache = Hashtbl.create 16 in
    let access_cache = Hashtbl.create 8 in
    let get_access grid_operand =
      match Hashtbl.find_opt access_cache grid_operand.vid with
      | Some v -> v
      | None ->
          let col_t =
            match grid_operand.vtyp with
            | Temp (_, e) | Field (_, e) -> e
            | t -> t
          in
          let v =
            B.insert b
              (Csl_stencil.access (arg_for_operand grid_operand) ~offset:[ 0; 0 ]
                 ~result:col_t)
          in
          Hashtbl.replace access_cache grid_operand.vid v;
          v
    in
    let leaf (o : op) =
      if o.opname = "stencil.access" then begin
        match dense_ints_exn o "offset" with
        | [ 0; 0 ] -> Some (get_access (operand_of_arg (operand o 0)))
        | _ -> fail "local term accesses a remote offset"
      end
      else if pack_mode && o.opname = "tensor.extract_slice" then begin
        (* a packed remote column: read it back out of its slot *)
        match slice_info defs ~z_halo (result o) with
        | Some (g, dx, dy, 0) when dx <> 0 || dy <> 0 ->
            let i = comm_index (operand_of_arg g) in
            Some
              (B.insert b
                 (Tensor.extract_slice acc_arg
                    ~offset:(slot_of i dx dy * len)
                    ~size:len))
        | Some (_, dx, dy, zo) when (dx <> 0 || dy <> 0) && zo <> 0 ->
            fail "remote access at non-zero z offset unsupported"
        | _ -> None
      end
      else None
    in
    let retype t = t in
    let local_vals =
      if pack_mode then []
      else
      List.map
        (fun t ->
          match t.factors with
          | [] ->
              B.insert b (Arith.constant_dense ~shape:[ nz ] t.coeff)
          | fs ->
              let fs' = List.map (rebuild defs cache b ~leaf ~retype) fs in
              let prod =
                match fs' with [ f ] -> f | fs -> B.insert b (Wsc_dialects.Varith.mul fs)
              in
              if t.coeff = 1.0 then prod
              else begin
                let c = B.insert b (Arith.constant_dense ~shape:[ nz ] t.coeff) in
                B.insert b (Arith.mulf c prod)
              end)
        rest
    in
    let interiors =
      if pack_mode then
        (* everything, remote terms included, is computable locally from
           the packed accumulator: rebuild each output's expression *)
        List.map (rebuild defs cache b ~leaf ~retype) interior_vals
      else
        [
          (match local_vals with
          | [] -> acc_arg
          | vs -> B.insert b (Wsc_dialects.Varith.add (acc_arg :: vs)));
        ]
    in
    (* wrap into full columns, Dirichlet z boundary from operand 0 *)
    let center = get_access (List.hd apply.operands) in
    let h_ix = B.insert b (Arith.constant_index z_halo) in
    let fulls =
      List.map
        (fun interior ->
          B.insert b (Tensor.insert_slice ~src:interior ~dst:center ~offset:h_ix))
        interiors
    in
    B.insert0 b (Csl_stencil.yield fulls);
    new_region [ new_block ~args:done_args (B.ops b) ]
  in
  (* accumulator init *)
  let acc_empty = Tensor.empty ~shape:[ acc_len ] () in
  let config =
    {
      Csl_stencil.topology;
      swaps = swaps_by_input;
      num_chunks;
      chunk_size;
      comm_count = List.length comm_operands;
      coeffs = Option.value promoted_coeffs ~default:[];
    }
  in
  let comm_input_values =
    (* pre-swap values for exchanged grids; the grid itself when local *)
    List.map
      (fun v -> match swap_of v with Some s -> operand s 0 | None -> v)
      comm_operands
  in
  let csl_apply =
    Csl_stencil.apply ~config ~comm_inputs:comm_input_values
      ~acc:(result acc_empty)
      ~local_inputs:local_operands
      ~result_types:(List.map (fun r -> r.vtyp) apply.results)
      ~recv_region ~done_region
  in
  if promoted && opts.one_shot_reduction then set_attr csl_apply "one_shot" Unit_attr;
  set_attr csl_apply "z_halo" (Int_attr z_halo);
  set_attr csl_apply "z_interior" (Int_attr nz);
  set_attr csl_apply "compute_bounds" (attr_exn apply "compute_bounds");
  (* the new apply's results replace the old apply's results *)
  let subst = Subst.create () in
  List.iter2
    (fun old nw -> Subst.add subst ~from:old ~to_:nw)
    apply.results csl_apply.results;
  Subst.apply_op subst root;
  ignore blk;
  [ acc_empty; csl_apply ]

(** lower-dmp-swap-to-csl-prefetch: each [dmp.swap] becomes a
    [csl_stencil.prefetch] carrying the same topology and exchange
    descriptors — the explicit "fetch remote data into a local buffer"
    marker of §4.1, consumed by the apply conversion below. *)
let lower_swaps (m : op) : op =
  let subst = Subst.create () in
  rewrite_nested
    (fun o ->
      if o.opname = "dmp.swap" then begin
        let pf =
          Csl_stencil.prefetch (operand o 0) ~topology:(Dmp.topology o)
            ~swaps:(Dmp.swaps o)
        in
        Subst.add subst ~from:(result o) ~to_:(result pf);
        Replace [ pf ]
      end
      else Keep)
    m;
  Subst.apply_op subst m;
  m

let lower_swaps_pass =
  Wsc_ir.Pass.make "lower-dmp-swap-to-csl-prefetch" lower_swaps

(** Replace every prefetch+apply group in the module. *)
let convert (opts : options) (m : op) : op =
  walk_op
    (fun container ->
      List.iter
        (fun r ->
          List.iter
            (fun blk ->
              let applies =
                List.filter (fun o -> o.opname = "stencil.apply") blk.bops
              in
              if applies <> [] then begin
                if List.exists (fun o -> o.opname = "dmp.swap") blk.bops then
                  fail
                    "dmp.swap ops present: run lower-dmp-swap-to-csl-prefetch first";
                let swaps =
                  List.filter (fun o -> o.opname = "csl_stencil.prefetch") blk.bops
                in
                if swaps <> [] then begin
                  let replacements =
                    List.map (fun a -> (a.oid, convert_apply opts m blk a swaps)) applies
                  in
                  blk.bops <-
                    List.concat_map
                      (fun o ->
                        if o.opname = "csl_stencil.prefetch" then []
                        else
                          match List.assoc_opt o.oid replacements with
                          | Some ops -> ops
                          | None -> [ o ])
                      blk.bops
                end
              end)
            r.blocks)
        container.regions)
    m;
  m

let pass ?(options = default_options) () =
  Wsc_ir.Pass.make "convert-stencil-to-csl-stencil" (convert options)
