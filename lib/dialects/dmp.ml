(** The [dmp] (distributed-memory parallelism) dialect.

    [dmp.swap] marks the halo exchanges that must complete before a
    [stencil.apply] can run.  The [distribute-stencil] pass inserts these
    with a 2D grid-slice strategy describing the PE topology (paper §5.1,
    Listing 3). *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

type direction = North | South | East | West

let direction_to_string = function
  | North -> "north"
  | South -> "south"
  | East -> "east"
  | West -> "west"

let direction_of_string = function
  | "north" -> North
  | "south" -> South
  | "east" -> East
  | "west" -> West
  | s -> invalid_arg ("dmp: bad direction " ^ s)

let all_directions = [ North; South; East; West ]

(** One halo exchange: receive [depth] cells from [dir], restricted in the
    z dimension to [z_lo, z_hi) (needed-columns-only optimization §6.1). *)
type swap_desc = { dir : direction; depth : int; z_lo : int; z_hi : int }

let swap_attr (swaps : swap_desc list) : attr =
  Array_attr
    (List.map
       (fun s ->
         Dict_attr
           [
             ("dir", String_attr (direction_to_string s.dir));
             ("depth", Int_attr s.depth);
             ("z_lo", Int_attr s.z_lo);
             ("z_hi", Int_attr s.z_hi);
           ])
       swaps)

let swaps_of_attr = function
  | Array_attr l ->
      List.map
        (function
          | Dict_attr d ->
              let geti k =
                match List.assoc k d with
                | Int_attr i -> i
                | _ -> invalid_arg "dmp.swap: bad swap attr"
              in
              let dir =
                match List.assoc "dir" d with
                | String_attr s -> direction_of_string s
                | _ -> invalid_arg "dmp.swap: bad dir"
              in
              { dir; depth = geti "depth"; z_lo = geti "z_lo"; z_hi = geti "z_hi" }
          | _ -> invalid_arg "dmp.swap: bad swap attr")
        l
  | _ -> invalid_arg "dmp.swap: swaps must be an array"

(** [swap input ~topology ~swaps] — exchange halos of [input] over a
    [w × h] PE grid. *)
let swap (input : value) ~(topology : int * int) ~(swaps : swap_desc list) : op =
  let w, h = topology in
  create_op "dmp.swap" ~operands:[ input ] ~results:[ input.vtyp ]
    ~attrs:
      [
        ("topo", Dense_ints [ w; h ]);
        ("strategy", String_attr "grid_slice_2d");
        ("swaps", swap_attr swaps);
      ]

let topology (op : op) : int * int =
  match dense_ints_exn op "topo" with
  | [ w; h ] -> (w, h)
  | _ -> invalid_arg "dmp.swap: bad topo"

let swaps (op : op) : swap_desc list = swaps_of_attr (attr_exn op "swaps")

(** Scalar elements received per exchange, summed over the descriptors:
    each contributes [depth] cell rows restricted to [z_hi - z_lo]
    columns. *)
let sum_volume (swaps : swap_desc list) : int =
  List.fold_left (fun acc s -> acc + (s.depth * (s.z_hi - s.z_lo))) 0 swaps

(** Total number of scalar elements exchanged per PE per swap. *)
let exchange_volume (op : op) : int = sum_volume (swaps op)

(** [wafer_swap input ~topology ~swaps] — the same grid-slice halo
    exchange lifted one level up: [topology] is a [wx × wy] grid of
    wafers and the descriptors name inter-wafer (not inter-PE)
    exchanges.  The multiwafer decomposition pass emits these; volumes
    and z-restriction reuse the intra-wafer machinery unchanged. *)
let wafer_swap (input : value) ~(topology : int * int)
    ~(swaps : swap_desc list) : op =
  let w, h = topology in
  create_op "dmp.wafer_swap" ~operands:[ input ] ~results:[ input.vtyp ]
    ~attrs:
      [
        ("topo", Dense_ints [ w; h ]);
        ("strategy", String_attr "wafer_grid_slice_2d");
        ("swaps", swap_attr swaps);
      ]

let swap_like_verifier (name : string) (op : op) : unit =
  if List.length op.operands <> 1 || List.length op.results <> 1 then
    Verifier.fail "%s: exactly one operand and one result" name;
  ignore (topology op);
  ignore (swaps op)

let () =
  Verifier.register "dmp.swap" (swap_like_verifier "dmp.swap");
  Verifier.register "dmp.wafer_swap" (swap_like_verifier "dmp.wafer_swap")
