(** The [dmp] (distributed-memory parallelism) dialect: [dmp.swap] marks
    the halo exchanges a [stencil.apply] depends on, with a 2-D grid-slice
    strategy over the PE topology (paper §5.1, Listing 3). *)

open Wsc_ir.Ir

type direction = North | South | East | West

val direction_to_string : direction -> string

(** @raise Invalid_argument for unknown names. *)
val direction_of_string : string -> direction

val all_directions : direction list

(** One halo exchange: receive [depth] cells from [dir], restricted in z
    to [z_lo, z_hi) — the needed-columns-only optimization (§6.1). *)
type swap_desc = { dir : direction; depth : int; z_lo : int; z_hi : int }

val swap_attr : swap_desc list -> attr
val swaps_of_attr : attr -> swap_desc list

(** Scalar elements received per exchange: Σ depth × (z_hi − z_lo). *)
val sum_volume : swap_desc list -> int

(** Exchange the halos of a grid over a [w × h] PE topology. *)
val swap : value -> topology:int * int -> swaps:swap_desc list -> op

(** The same exchange lifted to a [wx × wy] grid of *wafers*
    (strategy [wafer_grid_slice_2d]); emitted by the multiwafer
    decomposition.  [topology] / [swaps] / [exchange_volume] read both
    op forms. *)
val wafer_swap : value -> topology:int * int -> swaps:swap_desc list -> op

val topology : op -> int * int
val swaps : op -> swap_desc list

(** Scalar elements exchanged per PE per swap. *)
val exchange_volume : op -> int
