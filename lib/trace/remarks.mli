(** Pass-remarks rendering: the per-pass wall-time / IR-size table and
    compiler-track trace spans, from {!Wsc_ir.Pass.remark} records. *)

(** An [Pass.options.on_remark] callback accumulating into the ref, in
    pipeline order. *)
val collect : Wsc_ir.Pass.remark list ref -> Wsc_ir.Pass.remark -> unit

(** Total pipeline wall time (passes + verification), seconds. *)
val total_wall_s : Wsc_ir.Pass.remark list -> float

(** The pass-remarks table (wall time and op-count delta per pass). *)
val table : Wsc_ir.Pass.remark list -> string

(** Emit the remarks as spans/counters on the trace's compiler track
    (timestamps in µs, passes laid end to end from 0). *)
val emit : Trace.sink -> Wsc_ir.Pass.remark list -> unit
