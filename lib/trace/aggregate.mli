(** Aggregation over a traced run: per-PE busy/blocked breakdowns, the
    hottest PEs, link-utilization histograms, and the simulated-vs-
    analytic deviation report. *)

(** One PE's cycle account, as published by the fabric simulator. *)
type pe_summary = {
  ps_x : int;
  ps_y : int;
  ps_compute : float;  (** busy: DSD builtins, queue drain, callbacks *)
  ps_send : float;  (** fabric injection *)
  ps_wait : float;  (** blocked on neighbour exchanges *)
  ps_clock : float;  (** final local clock *)
  ps_tasks : int;
}

(** PEs ordered hottest-first (largest final clock first). *)
val hottest : int -> pe_summary list -> pe_summary list

type breakdown = {
  bd_pes : int;
  bd_busy_pct : float;  (** mean busy fraction over all PEs *)
  bd_send_pct : float;
  bd_blocked_pct : float;
  bd_max_clock : float;
  bd_min_clock : float;
}

val breakdown : pe_summary list -> breakdown

(** Grid-wide averages followed by the [top] hottest PEs (default 8). *)
val busy_blocked_table : ?top:int -> pe_summary list -> string

(** One fabric link reconstructed from the transfer flow pairs. *)
type link = {
  ln_src : int;  (** sender tid *)
  ln_dst : int;  (** receiver tid *)
  ln_dir : string;
  ln_transfers : int;
  ln_elems : int;
  ln_first_ts : float;
  ln_last_ts : float;
}

(** Per-link traffic from the collected [cat = "link"] flow events. *)
val links : Trace.event list -> link list

(** Occupied cycles over the link's active span, in [0, 1]. *)
val utilization : link -> float

(** Utilization histogram as (bucket label, link count, elems) rows. *)
val link_histogram : ?buckets:int -> Trace.event list -> (string * int * int) list

val link_table : Trace.event list -> string

(** Summary of the [cat = "fault"] events a fault-injection run emitted:
    one row per event name (drop, corrupt, stall, halt, backpressure,
    retry, giveup, halt-timeout) with count, distinct affected PEs and
    the first/last cycle observed. *)
val fault_table : Trace.event list -> string

type deviation = {
  dv_bench : string;
  dv_machine : string;
  dv_simulated_cycles : float;
  dv_predicted_cycles : float;
  dv_pct : float;  (** signed: positive when the simulation ran longer *)
}

val deviation :
  bench:string -> machine:string -> simulated_cycles:float ->
  predicted_cycles:float -> deviation

val deviation_line : deviation -> string
