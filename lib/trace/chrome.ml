(** Chrome Trace Event exporter.

    Renders a collected trace as the JSON Array / Object format consumed
    by Perfetto ([ui.perfetto.dev]) and chrome://tracing: one top-level
    object with a [traceEvents] array, metadata events naming each PE
    track, "B"/"E" duration events for spans, "i" instants, "b"/"e"
    async events (the flow pairs linking a sender's chunk injection to
    its delivery at the receiver), and "C" counters.  Timestamps are the
    sink's track-local times written into [ts] verbatim — simulated
    cycles on the fabric tracks — so one "microsecond" in the viewer is
    one cycle. *)

let phase_string : Trace.phase -> string = function
  | Trace.Span_begin -> "B"
  | Trace.Span_end -> "E"
  | Trace.Instant -> "i"
  | Trace.Flow_begin -> "b"
  | Trace.Flow_end -> "e"
  | Trace.Counter -> "C"

let json_of_arg : Trace.arg -> Json.t = function
  | Trace.Astr s -> Json.String s
  | Trace.Aint i -> Json.Int i
  | Trace.Afloat f -> Json.Float f

let json_of_event (ev : Trace.event) : Json.t =
  let base =
    [
      ("name", Json.String ev.Trace.ev_name);
      ("cat", Json.String ev.Trace.ev_cat);
      ("ph", Json.String (phase_string ev.Trace.ev_phase));
      ("ts", Json.Float ev.Trace.ev_ts);
      ("pid", Json.Int ev.Trace.ev_pid);
      ("tid", Json.Int ev.Trace.ev_tid);
    ]
  in
  let base =
    match ev.Trace.ev_phase with
    | Trace.Flow_begin | Trace.Flow_end ->
        base @ [ ("id", Json.Int ev.Trace.ev_id) ]
    | Trace.Instant -> base @ [ ("s", Json.String "t") ]
    | _ -> base
  in
  let base =
    if ev.Trace.ev_args = [] then base
    else
      base
      @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) ev.Trace.ev_args)) ]
  in
  Json.Obj base

let metadata_events (sink : Trace.sink) : Json.t list =
  let process (pid, name) =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  let thread ((pid, tid), name) =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  List.map process (Trace.process_names sink)
  @ List.map thread (Trace.track_names sink)

(** The whole trace as one JSON document.  Events are sorted by
    timestamp (stable, so a span's "B" stays ahead of a zero-length
    "E"); flow events emitted after the fact land at their recorded
    times. *)
let export (sink : Trace.sink) : Json.t =
  let evs =
    List.stable_sort
      (fun (a : Trace.event) b -> Float.compare a.Trace.ev_ts b.Trace.ev_ts)
      (Trace.events sink)
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (metadata_events sink @ List.map json_of_event evs) );
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("tool", Json.String "wsc trace");
            ("timeUnit", Json.String "cycles (fabric tracks) / us (compiler track)");
          ] );
    ]

let to_string (sink : Trace.sink) : string = Json.to_string (export sink)

let write_file ~(path : string) (sink : Trace.sink) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (export sink))
