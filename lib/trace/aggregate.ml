(** Aggregation over a run's observations: where did the cycles go?

    Consumes the per-PE cycle accounting the simulator publishes as
    {!pe_summary} rows plus the collected link-transfer flow events, and
    produces the evaluation-style breakdowns: busy/blocked fractions per
    PE, the hottest PEs, a link-utilization histogram, and the deviation
    of the simulated run against the analytic (proxy-extrapolated)
    prediction for the same benchmark/machine/size. *)

(** One PE's cycle account, as published by the fabric simulator. *)
type pe_summary = {
  ps_x : int;
  ps_y : int;
  ps_compute : float;  (** busy: DSD builtins, queue drain, callbacks *)
  ps_send : float;  (** fabric injection *)
  ps_wait : float;  (** blocked on neighbour exchanges *)
  ps_clock : float;  (** final local clock *)
  ps_tasks : int;
}

let frac part whole = if whole <= 0.0 then 0.0 else 100.0 *. part /. whole

(** PEs ordered hottest-first (largest final clock, then most compute). *)
let hottest (n : int) (pes : pe_summary list) : pe_summary list =
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare b.ps_clock a.ps_clock with
        | 0 -> Float.compare b.ps_compute a.ps_compute
        | c -> c)
      pes
  in
  List.filteri (fun i _ -> i < n) sorted

(** Grid-wide means of the busy/send/blocked fractions. *)
type breakdown = {
  bd_pes : int;
  bd_busy_pct : float;
  bd_send_pct : float;
  bd_blocked_pct : float;
  bd_max_clock : float;
  bd_min_clock : float;
}

let breakdown (pes : pe_summary list) : breakdown =
  let n = List.length pes in
  let fn = float_of_int (max 1 n) in
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0.0 pes in
  {
    bd_pes = n;
    bd_busy_pct = sum (fun p -> frac p.ps_compute p.ps_clock) /. fn;
    bd_send_pct = sum (fun p -> frac p.ps_send p.ps_clock) /. fn;
    bd_blocked_pct = sum (fun p -> frac p.ps_wait p.ps_clock) /. fn;
    bd_max_clock = List.fold_left (fun acc p -> Float.max acc p.ps_clock) 0.0 pes;
    bd_min_clock =
      List.fold_left (fun acc p -> Float.min acc p.ps_clock) infinity pes;
  }

(** The per-PE busy/blocked table: grid-wide averages followed by the
    [top] hottest PEs. *)
let busy_blocked_table ?(top = 8) (pes : pe_summary list) : string =
  let b = Buffer.create 512 in
  let bd = breakdown pes in
  Buffer.add_string b
    (Printf.sprintf
       "per-PE cycle breakdown (%d PEs): busy %.1f%%  send %.1f%%  blocked \
        %.1f%%  (means; slowest clock %.0f, fastest %.0f)\n"
       bd.bd_pes bd.bd_busy_pct bd.bd_send_pct bd.bd_blocked_pct bd.bd_max_clock
       (if bd.bd_min_clock = infinity then 0.0 else bd.bd_min_clock));
  Buffer.add_string b
    (Printf.sprintf "%-10s %10s %8s %8s %8s %7s\n" "hottest" "clock" "busy%"
       "send%" "blkd%" "tasks");
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "PE(%2d,%2d)  %10.0f %7.1f%% %7.1f%% %7.1f%% %7d\n"
           p.ps_x p.ps_y p.ps_clock
           (frac p.ps_compute p.ps_clock)
           (frac p.ps_send p.ps_clock)
           (frac p.ps_wait p.ps_clock)
           p.ps_tasks))
    (hottest top pes);
  Buffer.contents b

(** {1 Link utilization} *)

(** One fabric link, reconstructed from the transfer flow pairs: the
    (sender track, receiver track) edge with its traffic. *)
type link = {
  ln_src : int;  (** sender tid *)
  ln_dst : int;  (** receiver tid *)
  ln_dir : string;
  ln_transfers : int;
  ln_elems : int;
  ln_first_ts : float;
  ln_last_ts : float;
}

let int_arg (args : (string * Trace.arg) list) (k : string) : int =
  match List.assoc_opt k args with
  | Some (Trace.Aint i) -> i
  | Some (Trace.Afloat f) -> int_of_float f
  | _ -> 0

let str_arg (args : (string * Trace.arg) list) (k : string) : string =
  match List.assoc_opt k args with Some (Trace.Astr s) -> s | _ -> ""

(** Fold the link flow events (cat ["link"]) into per-link traffic. *)
let links (events : Trace.event list) : link list =
  (* flow id -> begin event, waiting for its end *)
  let pending : (int, Trace.event) Hashtbl.t = Hashtbl.create 256 in
  let table : (int * int, link) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.Trace.ev_cat = "link" then
        match ev.Trace.ev_phase with
        | Trace.Flow_begin -> Hashtbl.replace pending ev.Trace.ev_id ev
        | Trace.Flow_end -> (
            match Hashtbl.find_opt pending ev.Trace.ev_id with
            | None -> ()
            | Some b ->
                Hashtbl.remove pending ev.Trace.ev_id;
                let key = (b.Trace.ev_tid, ev.Trace.ev_tid) in
                let elems = int_arg b.Trace.ev_args "elems" in
                let cur =
                  match Hashtbl.find_opt table key with
                  | Some l -> l
                  | None ->
                      {
                        ln_src = b.Trace.ev_tid;
                        ln_dst = ev.Trace.ev_tid;
                        ln_dir = str_arg b.Trace.ev_args "dir";
                        ln_transfers = 0;
                        ln_elems = 0;
                        ln_first_ts = b.Trace.ev_ts;
                        ln_last_ts = ev.Trace.ev_ts;
                      }
                in
                Hashtbl.replace table key
                  {
                    cur with
                    ln_transfers = cur.ln_transfers + 1;
                    ln_elems = cur.ln_elems + elems;
                    ln_first_ts = Float.min cur.ln_first_ts b.Trace.ev_ts;
                    ln_last_ts = Float.max cur.ln_last_ts ev.Trace.ev_ts;
                  })
        | _ -> ())
    events;
  Hashtbl.fold (fun _ l acc -> l :: acc) table []
  |> List.sort (fun a b -> compare (a.ln_src, a.ln_dst) (b.ln_src, b.ln_dst))

(** A link's utilization over the traced window: occupied cycles (one
    wavelet per cycle) over the active span. *)
let utilization (l : link) : float =
  let span = l.ln_last_ts -. l.ln_first_ts in
  if span <= 0.0 then 1.0 else Float.min 1.0 (float_of_int l.ln_elems /. span)

(** Histogram of link utilization in [buckets] equal bins over [0,100%],
    as (bucket label, link count, total elems) rows. *)
let link_histogram ?(buckets = 5) (events : Trace.event list) :
    (string * int * int) list =
  let ls = links events in
  let width = 1.0 /. float_of_int buckets in
  List.init buckets (fun i ->
      let lo = float_of_int i *. width in
      let hi = lo +. width in
      let inside =
        List.filter
          (fun l ->
            let u = utilization l in
            u >= lo && (u < hi || (i = buckets - 1 && u <= hi)))
          ls
      in
      ( Printf.sprintf "%3.0f-%3.0f%%" (100.0 *. lo) (100.0 *. hi),
        List.length inside,
        List.fold_left (fun acc l -> acc + l.ln_elems) 0 inside ))

let link_table (events : Trace.event list) : string =
  let ls = links events in
  let b = Buffer.create 256 in
  let total_elems = List.fold_left (fun acc l -> acc + l.ln_elems) 0 ls in
  Buffer.add_string b
    (Printf.sprintf
       "link utilization (%d active links, %d elems transferred):\n"
       (List.length ls) total_elems);
  List.iter
    (fun (label, n, elems) ->
      Buffer.add_string b
        (Printf.sprintf "  %s %5d link(s) %10d elems  %s\n" label n elems
           (String.make (min 60 n) '#')))
    (link_histogram events);
  Buffer.contents b

(** {1 Fault events} *)

(** Aggregate the [cat = "fault"] events a fault-injection run emitted:
    one row per event name (drop, corrupt, stall, halt, backpressure,
    retry, giveup, halt-timeout), with count, affected-PE count and the
    active time span. *)
let fault_table (events : Trace.event list) : string =
  let table : (string, int * (int, unit) Hashtbl.t * float * float) Hashtbl.t =
    Hashtbl.create 8
  in
  let total = ref 0 in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.Trace.ev_cat = "fault" then begin
        incr total;
        let count, pes, first, last =
          match Hashtbl.find_opt table ev.Trace.ev_name with
          | Some r -> r
          | None -> (0, Hashtbl.create 8, ev.Trace.ev_ts, ev.Trace.ev_ts)
        in
        Hashtbl.replace pes ev.Trace.ev_tid ();
        Hashtbl.replace table ev.Trace.ev_name
          ( count + 1,
            pes,
            Float.min first ev.Trace.ev_ts,
            Float.max last ev.Trace.ev_ts )
      end)
    events;
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "fault events (%d total):\n" !total);
  if !total = 0 then Buffer.add_string b "  (none)\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "  %-14s %8s %8s %12s %12s\n" "event" "count" "PEs"
         "first cycle" "last cycle");
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (name, (count, pes, first, last)) ->
           Buffer.add_string b
             (Printf.sprintf "  %-14s %8d %8d %12.0f %12.0f\n" name count
                (Hashtbl.length pes) first last))
  end;
  Buffer.contents b

(** {1 Simulated vs analytic deviation} *)

type deviation = {
  dv_bench : string;
  dv_machine : string;
  dv_simulated_cycles : float;
  dv_predicted_cycles : float;
  dv_pct : float;  (** signed: positive when the simulation ran longer *)
}

let deviation ~bench ~machine ~(simulated_cycles : float)
    ~(predicted_cycles : float) : deviation =
  {
    dv_bench = bench;
    dv_machine = machine;
    dv_simulated_cycles = simulated_cycles;
    dv_predicted_cycles = predicted_cycles;
    dv_pct =
      (if predicted_cycles <= 0.0 then 0.0
       else 100.0 *. (simulated_cycles -. predicted_cycles) /. predicted_cycles);
  }

let deviation_line (d : deviation) : string =
  Printf.sprintf
    "deviation %s on %s: simulated %.0f cycles vs analytic %.0f cycles \
     (%+.1f%%)"
    d.dv_bench d.dv_machine d.dv_simulated_cycles d.dv_predicted_cycles d.dv_pct
