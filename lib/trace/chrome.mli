(** Chrome Trace Event exporter: renders a collected {!Trace.sink} as
    the JSON object format Perfetto and chrome://tracing accept, with
    PEs as named tracks and link transfers as async flow pairs.
    Fabric-track timestamps are simulated cycles written into [ts]
    verbatim (one viewer-µs = one cycle). *)

(** The whole trace as one JSON document, events sorted by timestamp. *)
val export : Trace.sink -> Json.t

val to_string : Trace.sink -> string
val write_file : path:string -> Trace.sink -> unit
