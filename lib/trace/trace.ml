(** Trace event sink.

    The simulator, the host runtime and the pass manager report what they
    are doing through a {!sink}.  With {!null} every emission is a single
    branch on an immediate value — no event record is ever allocated — so
    tracing can stay compiled into the hot paths.  With a {!collector}
    events accumulate in memory and are exported by {!Chrome}, summarized
    by {!Aggregate}, or inspected directly.

    The event model mirrors the Chrome Trace Event format the exporter
    targets: duration spans (begin/end pairs on a track), instants,
    async flows (begin/end pairs joined by an id, possibly across
    tracks), and counters.  A track is a [(pid, tid)] pair; by
    convention pid {!fabric_pid} carries one track per PE (timestamps in
    simulated cycles), pid {!compiler_pid} carries the pass pipeline
    (timestamps in wall-clock microseconds), pid {!host_pid} the
    host-runtime markers (simulated cycles), and pid {!driver_pid} the
    parallel fabric driver's per-round counters (timestamps are round
    numbers). *)

type phase =
  | Span_begin
  | Span_end
  | Instant
  | Flow_begin
  | Flow_end
  | Counter

type arg = Astr of string | Aint of int | Afloat of float

type event = {
  ev_phase : phase;
  ev_name : string;
  ev_cat : string;
  ev_ts : float;  (** track-local time: cycles on sim tracks, µs on compiler tracks *)
  ev_pid : int;
  ev_tid : int;
  ev_id : int;  (** flow id joining [Flow_begin]/[Flow_end]; 0 otherwise *)
  ev_args : (string * arg) list;
}

type collector = {
  mutable events : event list;  (** newest first *)
  mutable count : int;
  mutable next_flow_id : int;
  track_names : (int * int, string) Hashtbl.t;  (** (pid, tid) -> label *)
  process_names : (int, string) Hashtbl.t;
}

type sink = Null | Collector of collector

(** Track-group conventions (Chrome "processes"). *)
let fabric_pid = 0

let compiler_pid = 1
let host_pid = 2
let driver_pid = 3
let serve_pid = 4

let null : sink = Null

let collector () : sink =
  Collector
    {
      events = [];
      count = 0;
      next_flow_id = 1;
      track_names = Hashtbl.create 64;
      process_names = Hashtbl.create 4;
    }

let enabled = function Null -> false | Collector _ -> true

let events = function
  | Null -> []
  | Collector c -> List.rev c.events

let event_count = function Null -> 0 | Collector c -> c.count

let emit (s : sink) (ev : event) : unit =
  match s with
  | Null -> ()
  | Collector c ->
      c.events <- ev :: c.events;
      c.count <- c.count + 1

(** A fresh id for joining a [Flow_begin]/[Flow_end] pair; 0 on [Null]. *)
let fresh_flow_id (s : sink) : int =
  match s with
  | Null -> 0
  | Collector c ->
      let id = c.next_flow_id in
      c.next_flow_id <- id + 1;
      id

let name_track (s : sink) ~(pid : int) ~(tid : int) (name : string) : unit =
  match s with
  | Null -> ()
  | Collector c ->
      if not (Hashtbl.mem c.track_names (pid, tid)) then
        Hashtbl.replace c.track_names (pid, tid) name

let name_process (s : sink) ~(pid : int) (name : string) : unit =
  match s with
  | Null -> ()
  | Collector c ->
      if not (Hashtbl.mem c.process_names pid) then
        Hashtbl.replace c.process_names pid name

(* the emission helpers below only allocate when the sink collects;
   call sites need no [if enabled] guard of their own *)

let span_begin (s : sink) ~pid ~tid ~cat ~name ?(args = []) (ts : float) : unit =
  match s with
  | Null -> ()
  | Collector _ ->
      emit s
        {
          ev_phase = Span_begin;
          ev_name = name;
          ev_cat = cat;
          ev_ts = ts;
          ev_pid = pid;
          ev_tid = tid;
          ev_id = 0;
          ev_args = args;
        }

let span_end (s : sink) ~pid ~tid ~cat ~name ?(args = []) (ts : float) : unit =
  match s with
  | Null -> ()
  | Collector _ ->
      emit s
        {
          ev_phase = Span_end;
          ev_name = name;
          ev_cat = cat;
          ev_ts = ts;
          ev_pid = pid;
          ev_tid = tid;
          ev_id = 0;
          ev_args = args;
        }

let instant (s : sink) ~pid ~tid ~cat ~name ?(args = []) (ts : float) : unit =
  match s with
  | Null -> ()
  | Collector _ ->
      emit s
        {
          ev_phase = Instant;
          ev_name = name;
          ev_cat = cat;
          ev_ts = ts;
          ev_pid = pid;
          ev_tid = tid;
          ev_id = 0;
          ev_args = args;
        }

let flow_begin (s : sink) ~pid ~tid ~cat ~name ~id ?(args = []) (ts : float) : unit =
  match s with
  | Null -> ()
  | Collector _ ->
      emit s
        {
          ev_phase = Flow_begin;
          ev_name = name;
          ev_cat = cat;
          ev_ts = ts;
          ev_pid = pid;
          ev_tid = tid;
          ev_id = id;
          ev_args = args;
        }

let flow_end (s : sink) ~pid ~tid ~cat ~name ~id ?(args = []) (ts : float) : unit =
  match s with
  | Null -> ()
  | Collector _ ->
      emit s
        {
          ev_phase = Flow_end;
          ev_name = name;
          ev_cat = cat;
          ev_ts = ts;
          ev_pid = pid;
          ev_tid = tid;
          ev_id = id;
          ev_args = args;
        }

let counter (s : sink) ~pid ~tid ~name ~(values : (string * float) list) (ts : float) :
    unit =
  match s with
  | Null -> ()
  | Collector _ ->
      emit s
        {
          ev_phase = Counter;
          ev_name = name;
          ev_cat = "counter";
          ev_ts = ts;
          ev_pid = pid;
          ev_tid = tid;
          ev_id = 0;
          ev_args = List.map (fun (k, v) -> (k, Afloat v)) values;
        }

(** Append each source collector's events into [into], in list order.
    Emission order is preserved within each source; flow ids are
    renumbered from [into]'s counter so pairs from different sources
    never collide.  The result is deterministic in (sources, their
    contents): merging the per-domain collectors of a parallel
    simulation in tile order therefore yields the same trace on every
    run.  Null sinks (on either side) contribute nothing. *)
let merge_into ~(into : sink) (sources : sink list) : unit =
  match into with
  | Null -> ()
  | Collector dst ->
      List.iter
        (function
          | Null -> ()
          | Collector src ->
              (* renumber [1 .. src.next_flow_id) to a fresh range *)
              let offset = dst.next_flow_id - 1 in
              dst.next_flow_id <- dst.next_flow_id + src.next_flow_id - 1;
              let remap ev =
                if ev.ev_id = 0 then ev else { ev with ev_id = ev.ev_id + offset }
              in
              (* both lists are newest-first; prepending the source block
                 keeps source events after everything already collected *)
              dst.events <- List.map remap src.events @ dst.events;
              dst.count <- dst.count + src.count;
              Hashtbl.iter
                (fun k v ->
                  if not (Hashtbl.mem dst.track_names k) then
                    Hashtbl.replace dst.track_names k v)
                src.track_names;
              Hashtbl.iter
                (fun k v ->
                  if not (Hashtbl.mem dst.process_names k) then
                    Hashtbl.replace dst.process_names k v)
                src.process_names)
        sources

let track_names = function
  | Null -> []
  | Collector c ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.track_names []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let process_names = function
  | Null -> []
  | Collector c ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.process_names []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
