(** Pass-remarks: rendering and trace emission for the pass manager's
    per-pass instrumentation ({!Wsc_ir.Pass.remark}).

    The usual wiring: collect remarks through
    [Pass.options.on_remark = Some (collect r)], then print {!table}
    and/or {!emit} them onto the compiler track of a trace sink, where
    each pass becomes a span (timestamps in wall-clock microseconds,
    laid end to end from 0). *)

module Pass = Wsc_ir.Pass

(** An [on_remark] callback accumulating into [acc] (in pipeline
    order). *)
let collect (acc : Pass.remark list ref) : Pass.remark -> unit =
 fun r -> acc := !acc @ [ r ]

let total_wall_s (remarks : Pass.remark list) : float =
  List.fold_left (fun t (r : Pass.remark) -> t +. r.r_wall_s +. r.r_verify_s) 0.0 remarks

(** The pass-remarks table: per pass, wall time (pass + verifier) and
    the op-count delta it caused. *)
let table (remarks : Pass.remark list) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-36s %10s %10s %8s %8s %8s\n" "pass" "wall ms"
       "verify ms" "ops in" "ops out" "delta");
  List.iter
    (fun (r : Pass.remark) ->
      Buffer.add_string b
        (Printf.sprintf "%-36s %10.3f %10.3f %8d %8d %+8d\n" r.Pass.r_pass
           (1e3 *. r.Pass.r_wall_s)
           (1e3 *. r.Pass.r_verify_s)
           r.Pass.r_ops_before r.Pass.r_ops_after
           (r.Pass.r_ops_after - r.Pass.r_ops_before)))
    remarks;
  let final_ops =
    match List.rev remarks with
    | r :: _ -> r.Pass.r_ops_after
    | [] -> 0
  in
  Buffer.add_string b
    (Printf.sprintf "%-36s %10.3f %10s %8s %8d\n" "total"
       (1e3 *. total_wall_s remarks)
       "" "" final_ops);
  Buffer.contents b

(** Emit the remarks as spans on the compiler track: passes laid end to
    end from t=0, verification as a nested span, op counts as a counter
    series. *)
let emit (sink : Trace.sink) (remarks : Pass.remark list) : unit =
  if Trace.enabled sink then begin
    let pid = Trace.compiler_pid and tid = 0 in
    Trace.name_process sink ~pid "compiler";
    Trace.name_track sink ~pid ~tid "pass pipeline";
    let t = ref 0.0 in
    List.iter
      (fun (r : Pass.remark) ->
        let t0 = !t in
        let t_pass = t0 +. (1e6 *. r.Pass.r_wall_s) in
        let t_end = t_pass +. (1e6 *. r.Pass.r_verify_s) in
        Trace.span_begin sink ~pid ~tid ~cat:"pass" ~name:r.Pass.r_pass
          ~args:
            [
              ("ops_before", Trace.Aint r.Pass.r_ops_before);
              ("ops_after", Trace.Aint r.Pass.r_ops_after);
            ]
          t0;
        if r.Pass.r_verify_s > 0.0 then begin
          Trace.span_begin sink ~pid ~tid ~cat:"verify" ~name:"verify" t_pass;
          Trace.span_end sink ~pid ~tid ~cat:"verify" ~name:"verify" t_end
        end;
        Trace.span_end sink ~pid ~tid ~cat:"pass" ~name:r.Pass.r_pass t_end;
        Trace.counter sink ~pid ~tid ~name:"module ops"
          ~values:[ ("ops", float_of_int r.Pass.r_ops_after) ]
          t_end;
        t := t_end)
      remarks
  end
