(** Minimal JSON: a value tree, a printer, and a recursive-descent
    parser.

    The trace exporter builds the Chrome Trace Event file through this
    AST (so emitted files are well-formed by construction), and the test
    suite re-parses exported traces to assert their shape.  Only what a
    trace file needs is implemented — no streaming, no number-precision
    contortions beyond keeping every printed float a valid JSON number. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Printing} *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** A float as a valid JSON number: no [nan]/[inf] tokens, and integral
    values keep a fractional point so they survive a round trip as
    floats. *)
let float_repr (f : float) : string =
  match Float.classify_float f with
  | FP_nan -> "0"
  | FP_infinite -> if f > 0.0 then "1e308" else "-1e308"
  | _ ->
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec write (b : Buffer.t) (v : t) : unit =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string (v : t) : string =
  let b = Buffer.create 4096 in
  write b v;
  Buffer.contents b

let to_channel (oc : out_channel) (v : t) : unit =
  let b = Buffer.create 65536 in
  write b v;
  Buffer.output_buffer oc b

(** {1 Parsing} *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek (c : cursor) : char option =
  if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance (c : cursor) = c.pos <- c.pos + 1

let parse_fail (c : cursor) fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "at %d: %s" c.pos s))) fmt

let skip_ws (c : cursor) : unit =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect (c : cursor) (ch : char) : unit =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_fail c "expected %c, found %c" ch x
  | None -> parse_fail c "expected %c, found end of input" ch

let literal (c : cursor) (word : string) (v : t) : t =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else parse_fail c "bad literal (expected %s)" word

let parse_string_body (c : cursor) : string =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then parse_fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> parse_fail c "bad \\u escape %s" hex
            in
            c.pos <- c.pos + 4;
            (* trace files only escape control characters, so the code
               point always fits one byte; anything else round-trips as
               '?' rather than growing a UTF-8 encoder here *)
            Buffer.add_char b (if code < 0x100 then Char.chr code else '?');
            go ()
        | _ -> parse_fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number (c : cursor) : t =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_fail c "bad number %s" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> parse_fail c "bad number %s" s

let rec parse_value (c : cursor) : t =
  skip_ws c;
  match peek c with
  | None -> parse_fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let member () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let items = ref [ member () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := member () :: !items;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !items)
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_fail c "unexpected character %c" ch

let of_string (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then parse_fail c "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(** {1 Shared CLI summary envelope} *)

let float_or_null (f : float) : t =
  match Float.classify_float f with FP_nan | FP_infinite -> Null | _ -> Float f

(* bump when the envelope shape (or any emitter's results shape) changes
   incompatibly; consumers — including serve-protocol clients — dispatch
   on it before reading results *)
let schema_version = 1

let summary ~(tool : string) ~(config : (string * t) list) ~(results : t list) :
    t =
  Obj
    [
      ("tool", String tool);
      ("schema_version", Int schema_version);
      ("config", Obj config);
      ("results", List results);
    ]

(** {1 Accessors} *)

let member (k : string) (v : t) : t option =
  match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

let to_number_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
