(** Trace event sink: the observation channel between the simulator /
    pass manager and the exporters.  {!null} costs one branch per
    emission site and allocates nothing; a {!collector} accumulates
    events for {!Chrome} export and {!Aggregate} summaries. *)

type phase =
  | Span_begin
  | Span_end
  | Instant
  | Flow_begin
  | Flow_end
  | Counter

type arg = Astr of string | Aint of int | Afloat of float

type event = {
  ev_phase : phase;
  ev_name : string;
  ev_cat : string;
  ev_ts : float;
      (** track-local time: simulated cycles on fabric/host tracks,
          wall-clock microseconds on compiler tracks *)
  ev_pid : int;
  ev_tid : int;
  ev_id : int;  (** flow id joining [Flow_begin]/[Flow_end]; 0 otherwise *)
  ev_args : (string * arg) list;
}

type collector

type sink = Null | Collector of collector

(** Track-group conventions (Chrome "processes"): one track per PE under
    [fabric_pid], the pass pipeline under [compiler_pid], host-runtime
    markers under [host_pid], and the parallel fabric driver's per-round
    counters (scans per round, barrier backlog) under [driver_pid] with
    round numbers as timestamps. *)
val fabric_pid : int

val compiler_pid : int
val host_pid : int
val driver_pid : int

(** The compile service: one track per worker domain, request phases
    (queue wait, parse, per-pass compile, emit) as spans in wall-clock
    microseconds since server start. *)
val serve_pid : int

val null : sink

(** A fresh collecting sink. *)
val collector : unit -> sink

val enabled : sink -> bool

(** Collected events in emission order (empty on [Null]). *)
val events : sink -> event list

val event_count : sink -> int
val emit : sink -> event -> unit

(** A fresh id for joining a flow pair; 0 on [Null]. *)
val fresh_flow_id : sink -> int

(** Label a [(pid, tid)] track / a pid group; first label wins. *)
val name_track : sink -> pid:int -> tid:int -> string -> unit

val name_process : sink -> pid:int -> string -> unit

(** Emission helpers; on [Null] they allocate nothing, so call sites
    need no enabled-guard of their own. *)
val span_begin :
  sink -> pid:int -> tid:int -> cat:string -> name:string ->
  ?args:(string * arg) list -> float -> unit

val span_end :
  sink -> pid:int -> tid:int -> cat:string -> name:string ->
  ?args:(string * arg) list -> float -> unit

val instant :
  sink -> pid:int -> tid:int -> cat:string -> name:string ->
  ?args:(string * arg) list -> float -> unit

val flow_begin :
  sink -> pid:int -> tid:int -> cat:string -> name:string -> id:int ->
  ?args:(string * arg) list -> float -> unit

val flow_end :
  sink -> pid:int -> tid:int -> cat:string -> name:string -> id:int ->
  ?args:(string * arg) list -> float -> unit

val counter :
  sink -> pid:int -> tid:int -> name:string -> values:(string * float) list ->
  float -> unit

(** [merge_into ~into sources] appends every source collector's events
    into [into], in list order, preserving each source's emission order
    and renumbering flow ids so pairs from different sources never
    collide.  Deterministic in the sources and their contents — this is
    how the parallel fabric driver folds its per-domain collectors into
    the caller's sink (tile order), so a traced parallel run exports the
    same timeline every time.  Null sinks contribute nothing. *)
val merge_into : into:sink -> sink list -> unit

val track_names : sink -> ((int * int) * string) list
val process_names : sink -> (int * string) list
