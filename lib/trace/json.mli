(** Minimal JSON value tree with a printer and a parser — enough for the
    Chrome Trace exporter to build well-formed files and for the tests to
    re-parse and inspect them.  No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Serialize; every float is printed as a valid JSON number (no
    [nan]/[inf] tokens). *)
val to_string : t -> string

val to_channel : out_channel -> t -> unit

(** Parse a complete JSON document. *)
val of_string : string -> (t, string) result

(** Object member lookup ([None] on non-objects and missing keys). *)
val member : string -> t -> t option

val to_list_opt : t -> t list option
val to_string_opt : t -> string option

(** Ints and floats, unified. *)
val to_number_opt : t -> float option
