(** Minimal JSON value tree with a printer and a parser — enough for the
    Chrome Trace exporter to build well-formed files and for the tests to
    re-parse and inspect them.  No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Serialize; every float is printed as a valid JSON number (no
    [nan]/[inf] tokens). *)
val to_string : t -> string

val to_channel : out_channel -> t -> unit

(** Parse a complete JSON document. *)
val of_string : string -> (t, string) result

(** {1 Shared CLI summary envelope}

    Every [--json] emitting tool in the repo ([wsc faults], [wsc fuzz],
    [bench]) wraps its output in the same envelope so downstream scripts
    can dispatch on [tool] and rely on one shape:
    [{"tool": ..., "schema_version": 1, "config": {...}, "results": [...]}]. *)

(** [Float f], or [Null] when [f] is nan/infinite — for summary fields
    where "no measurement" must stay distinguishable from a number. *)
val float_or_null : float -> t

(** The envelope's protocol version, stamped into every {!summary} (and
    the serve protocol's responses); consumers dispatch on it before
    reading [results].  Bump on incompatible shape changes. *)
val schema_version : int

val summary : tool:string -> config:(string * t) list -> results:t list -> t

(** Object member lookup ([None] on non-objects and missing keys). *)
val member : string -> t -> t option

val to_list_opt : t -> t list option
val to_string_opt : t -> string option

(** Ints and floats, unified. *)
val to_number_opt : t -> float option
