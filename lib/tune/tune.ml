(** The autotuner — see the interface. *)

module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module Pipeline = Wsc_core.Pipeline
module WP = Wsc_perf.Wse_perf
module Oracle = Wsc_harden.Oracle
module Cache = Wsc_serve.Cache
module Pool = Wsc_serve.Pool
module Tuned = Wsc_serve.Tuned
module J = Wsc_trace.Json

type config = {
  seed : int;
  screen : int;
  top_k : int;
  extent : int;
  domains : int;
  machine : Wsc_wse.Machine.t;
  oracle : bool;
}

let default_config =
  {
    seed = 1;
    screen = 24;
    top_k = 5;
    extent = WP.proxy_extent;
    domains = 1;
    machine = Wsc_wse.Machine.wse3;
    oracle = true;
  }

type candidate = {
  c_options : Pipeline.options;
  c_rendered : string;
  c_predicted : (float, string) Stdlib.result;
  c_confirmed : float option;
}

type result = {
  r_bench : string;
  r_machine : string;
  r_seed : int;
  r_extent : int;
  r_program_key : string;
  r_space_size : int;
  r_screened : int;
  r_confirmed : int;
  r_evals_total : int;
  r_evals_run : int;
  r_evals_saved : int;
  r_default_cycles : float;
  r_tuned_cycles : float;
  r_tuned_options : Pipeline.options;
  r_improvement_pct : float;
  r_oracle_ok : bool option;
  r_oracle_checks : int;
  r_oracle_failure : string option;
  r_candidates : candidate list;
}

(* ------------------------------------------------------------------ *)
(* seeded draws (the faults-module SplitMix64 discipline: pure hashing, *)
(* so replay from the seed is trivially byte-identical)                *)
(* ------------------------------------------------------------------ *)

let sm64 (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

(** [i]-th draw in [0, n) for this seed. *)
let draw ~(seed : int) (i : int) ~(n : int) : int =
  let h =
    sm64 (Int64.add (Int64.mul golden (Int64.of_int (i + 1))) (Int64.of_int seed))
  in
  Int64.to_int (Int64.logand h 0x3fffffffffffffffL) mod n

(* ------------------------------------------------------------------ *)
(* the search space                                                    *)
(* ------------------------------------------------------------------ *)

(** The three meaningful fmac states: fused directly during
    bufferization, fused by the standalone pass, not fused at all.
    (fuse_fmac=true makes fuse_fmac_pass a dead knob.) *)
let fmac_variants = [ (true, true); (false, true); (false, false) ]

let bool_combos : (bool * bool * bool * bool * bool * bool) list =
  List.concat_map
    (fun inline ->
      List.concat_map
        (fun varith ->
          List.concat_map
            (fun promote ->
              List.concat_map
                (fun oneshot ->
                  List.map
                    (fun (fm, fmp) -> (inline, varith, promote, oneshot, fm, fmp))
                    fmac_variants)
                [ true; false ])
            [ true; false ])
        [ true; false ])
    [ true; false ]

let default_budget = Pipeline.default_options.Pipeline.comm_budget_bytes
let budgets = [ default_budget / 2; default_budget; default_budget * 2 ]

(** Chunk-count overrides worth trying: the feasible (dividing) counts
    of the program's z extent, capped to ≤ 32 chunks (per-chunk task
    overhead makes very high counts both slow to simulate and never
    competitive) and thinned to at most five spread across the range. *)
let chunk_candidates ~(nz : int) : int list =
  let all = Wsc_core.To_csl_stencil.feasible_chunk_counts ~len:nz in
  let all = List.filter (fun k -> k <= 32) all in
  let arr = Array.of_list all in
  let n = Array.length arr in
  if n <= 5 then Array.to_list arr
  else
    List.sort_uniq compare
      [ arr.(0); arr.(n / 4); arr.(n / 2); arr.(3 * n / 4); arr.(n - 1) ]

let make_opts (inline, varith, promote, oneshot, fm, fmp) ~(budget : int)
    ~(ov : int option) : Pipeline.options =
  {
    Pipeline.default_options with
    Pipeline.inline_stencils = inline;
    use_varith = varith;
    promote_coefficients = promote;
    one_shot_reduction = oneshot;
    fuse_fmac = fm;
    fuse_fmac_pass = fmp;
    comm_budget_bytes = budget;
    num_chunks_override = ov;
  }

(** The full feasible space, in a fixed enumeration order.  Chunk
    overrides pin the budget (the override wins inside the lowering) so
    the two axes never alias. *)
let space ~(chunks : int list) : Pipeline.options array =
  Array.of_list
    (List.concat_map
       (fun bc ->
         List.map (fun b -> make_opts bc ~budget:b ~ov:None) budgets
         @ List.map
             (fun k -> make_opts bc ~budget:default_budget ~ov:(Some k))
             chunks)
       bool_combos)

(** Always-screened candidates: the default plus every single-knob
    deviation from it — the §5.7 ablation basis. *)
let pinned ~(chunks : int list) : Pipeline.options list =
  let d = Pipeline.default_options in
  d
  :: [
       { d with Pipeline.inline_stencils = false };
       { d with Pipeline.use_varith = false };
       { d with Pipeline.promote_coefficients = false };
       { d with Pipeline.one_shot_reduction = false };
       { d with Pipeline.fuse_fmac = false };
       { d with Pipeline.fuse_fmac = false; Pipeline.fuse_fmac_pass = false };
       { d with Pipeline.comm_budget_bytes = default_budget / 2 };
       { d with Pipeline.comm_budget_bytes = default_budget * 2 };
     ]
  @ List.map (fun k -> { d with Pipeline.num_chunks_override = Some k }) chunks

(** The screening set: pinned candidates first, then seeded draws from
    the full space, deduplicated by rendered options, truncated to the
    screen budget (the default config always survives truncation). *)
let candidates ~(seed : int) ~(screen : int) ~(chunks : int list) :
    Pipeline.options list * int =
  let sp = space ~chunks in
  let n = Array.length sp in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let count = ref 0 in
  let budget = max 1 screen in
  let push o =
    if !count < budget then begin
      let r = Pipeline.options_to_string o in
      if not (Hashtbl.mem seen r) then begin
        Hashtbl.replace seen r ();
        out := o :: !out;
        incr count
      end
    end
  in
  List.iter push (pinned ~chunks);
  (* bounded number of draws so a tiny space cannot loop forever *)
  let attempts = ref 0 in
  while !count < budget && !attempts < budget * 32 do
    push sp.(draw ~seed !attempts ~n);
    incr attempts
  done;
  (List.rev !out, n)

(* ------------------------------------------------------------------ *)
(* memoized proxy runs                                                 *)
(* ------------------------------------------------------------------ *)

(** One tuning session's memo: proxy-run cycles keyed by
    (iters, rendered options) — the benchmark, extent and machine are
    fixed per session.  Values are [result]s so a failing candidate is
    also computed exactly once (single-flight), keeping [evals_run]
    deterministic under parallel fan-out. *)
type session = {
  s_descr : B.descr;
  s_machine : Wsc_wse.Machine.t;
  s_extent : int;
  s_memo : (float, string) Stdlib.result Cache.t;
  s_requests : int Atomic.t;
}

let session_create (d : B.descr) ~(machine : Wsc_wse.Machine.t)
    ~(extent : int) : session =
  {
    s_descr = d;
    s_machine = machine;
    s_extent = extent;
    s_memo = Cache.create ~capacity:4096;
    s_requests = Atomic.make 0;
  }

let run_cycles (s : session) (o : Pipeline.options) ~(iters : int) :
    (float, string) Stdlib.result =
  Atomic.incr s.s_requests;
  let key = Printf.sprintf "%d|%s" iters (Pipeline.options_to_string o) in
  match Cache.acquire s.s_memo key with
  | `Hit r | `Dedup r -> r
  | `Claimed ->
      let r =
        match
          WP.simulate_iters ~pipeline_options:o ~extent:s.s_extent s.s_descr
            ~machine:s.s_machine ~iters
        with
        | c, _, _ -> Ok c
        | exception e -> Error (Printexc.to_string e)
      in
      Cache.release s.s_memo key (Some r);
      r

let ( let* ) = Stdlib.Result.bind

(** Screening score: the analytic predictor's steady-state
    cycles/iteration on the proxy grid — two short runs, per-iteration
    delta (startup-inclusive single run for single-shot programs). *)
let screen_score (s : session) ~(single_shot : bool) (o : Pipeline.options) :
    (float, string) Stdlib.result =
  let* c2 = run_cycles s o ~iters:2 in
  if single_shot then Ok (c2 /. 2.0)
  else
    let* c4 = run_cycles s o ~iters:4 in
    Ok ((c4 -. c2) /. 2.0)

(** Confirmation score: real fabric steady state over a longer window —
    the iters-8 run is new, the iters-2 run replays from the memo. *)
let confirm_score (s : session) ~(single_shot : bool) (o : Pipeline.options) :
    (float, string) Stdlib.result =
  let* c2 = run_cycles s o ~iters:2 in
  if single_shot then Ok (c2 /. 2.0)
  else
    let* c8 = run_cycles s o ~iters:8 in
    Ok ((c8 -. c2) /. 6.0)

(* ------------------------------------------------------------------ *)
(* parallel candidate evaluation                                       *)
(* ------------------------------------------------------------------ *)

(** Fan a scorer over candidates on the worker pool; slot-per-candidate
    writes keep the output order deterministic regardless of which
    domain finishes first. *)
let evaluate (pool : (unit -> unit) Pool.t) (cands : Pipeline.options array)
    (score : Pipeline.options -> (float, string) Stdlib.result) :
    (float, string) Stdlib.result array =
  let out = Array.make (Array.length cands) (Error "not evaluated") in
  Array.iteri
    (fun i o -> ignore (Pool.submit pool (fun () -> out.(i) <- score o)))
    cands;
  Pool.drain pool;
  out

(* ------------------------------------------------------------------ *)
(* program identity                                                    *)
(* ------------------------------------------------------------------ *)

let source_for ?(extent = WP.proxy_extent) (d : B.descr) : string =
  let p = d.B.make_n (B.Proxy (extent, extent)) d.B.default_iterations in
  Wsc_ir.Printer.op_to_string (P.compile p)

let program_key ?extent (d : B.descr) : string =
  Tuned.key_of_canonical (source_for ?extent d)

(* ------------------------------------------------------------------ *)
(* the tuner                                                           *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) (d : B.descr) : result =
  let cfg = config in
  let single_shot = d.B.default_iterations <= 1 in
  let chunks = chunk_candidates ~nz:d.B.z_extent in
  let cands, space_size =
    candidates ~seed:cfg.seed ~screen:cfg.screen ~chunks
  in
  let cands = Array.of_list cands in
  let session = session_create d ~machine:cfg.machine ~extent:cfg.extent in
  let pool = Pool.create ~domains:(max 1 cfg.domains) (fun _wi job -> job ()) in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (* stage 1: screening *)
  let predicted = evaluate pool cands (screen_score session ~single_shot) in
  let rendered = Array.map Pipeline.options_to_string cands in
  let default_rendered = Pipeline.options_to_string Pipeline.default_options in
  (* stage 2: confirmation of the top-K screened (plus the default, which
     rides along for free when already selected) *)
  let ranked =
    Array.to_list (Array.mapi (fun i o -> (i, o)) cands)
    |> List.filter_map (fun (i, o) ->
           match predicted.(i) with
           | Ok s -> Some (s, rendered.(i), i, o)
           | Error _ -> None)
    |> List.sort compare
  in
  let top =
    List.filteri (fun rank _ -> rank < max 1 cfg.top_k) ranked
  in
  let top =
    if List.exists (fun (_, r, _, _) -> r = default_rendered) top then top
    else
      top
      @ List.filter (fun (_, r, _, _) -> r = default_rendered) ranked
  in
  let confirm_idx = Array.of_list (List.map (fun (_, _, i, _) -> i) top) in
  let confirm_opts = Array.of_list (List.map (fun (_, _, _, o) -> o) top) in
  let confirmed_scores =
    evaluate pool confirm_opts (confirm_score session ~single_shot)
  in
  let confirmed_of_idx = Hashtbl.create 16 in
  Array.iteri
    (fun j i ->
      match confirmed_scores.(j) with
      | Ok s -> Hashtbl.replace confirmed_of_idx i s
      | Error _ -> ())
    confirm_idx;
  let default_cycles =
    match
      Array.to_list confirm_idx
      |> List.find_opt (fun i -> rendered.(i) = default_rendered)
      |> Option.map (fun i -> Hashtbl.find_opt confirmed_of_idx i)
    with
    | Some (Some c) -> c
    | _ -> failwith "tune: default configuration failed to simulate"
  in
  (* stage 3: the oracle gate, best-first over the confirmed ranking *)
  let confirmed_ranked =
    Array.to_list confirm_idx
    |> List.filter_map (fun i ->
           Option.map
             (fun s -> (s, rendered.(i), cands.(i)))
             (Hashtbl.find_opt confirmed_of_idx i))
    |> List.sort compare
  in
  let gate_iters = if single_shot then 1 else 2 in
  let gate_program = d.B.make_n (B.Proxy (cfg.extent, cfg.extent)) gate_iters in
  let winner, oracle_ok, oracle_checks, oracle_failure =
    if not cfg.oracle then
      match confirmed_ranked with
      | (s, _, o) :: _ -> ((o, s), None, 0, None)
      | [] -> failwith "tune: no candidate survived confirmation"
    else
      let rec walk checks first_failure = function
        | [] ->
            (* nothing passed — fall back to the default config and
               report the gate failure; register will refuse to ship *)
            ( (Pipeline.default_options, default_cycles),
              Some false,
              checks,
              first_failure )
        | (s, _, o) :: rest -> (
            let rep = Oracle.check ~machine:cfg.machine ~options:o gate_program in
            match rep.Oracle.failure with
            | None -> ((o, s), Some true, checks + 1, first_failure)
            | Some f ->
                let msg = Oracle.failure_to_string f in
                let first_failure =
                  match first_failure with Some _ -> first_failure | None -> Some msg
                in
                walk (checks + 1) first_failure rest)
      in
      walk 0 None confirmed_ranked
  in
  let (tuned_options, tuned_cycles) = winner in
  let memo_stats = Cache.stats session.s_memo in
  let evals_total = Atomic.get session.s_requests in
  let evals_run = memo_stats.Cache.insertions in
  let cand_list =
    Array.to_list
      (Array.mapi
         (fun i o ->
           {
             c_options = o;
             c_rendered = rendered.(i);
             c_predicted = predicted.(i);
             c_confirmed = Hashtbl.find_opt confirmed_of_idx i;
           })
         cands)
  in
  {
    r_bench = d.B.id;
    r_machine = cfg.machine.Wsc_wse.Machine.name;
    r_seed = cfg.seed;
    r_extent = cfg.extent;
    r_program_key = program_key ~extent:cfg.extent d;
    r_space_size = space_size;
    r_screened = Array.length cands;
    r_confirmed = Array.length confirm_idx;
    r_evals_total = evals_total;
    r_evals_run = evals_run;
    r_evals_saved = evals_total - evals_run;
    r_default_cycles = default_cycles;
    r_tuned_cycles = tuned_cycles;
    r_tuned_options = tuned_options;
    r_improvement_pct =
      (if default_cycles > 0.0 then
         100.0 *. (default_cycles -. tuned_cycles) /. default_cycles
       else 0.0);
    r_oracle_ok = oracle_ok;
    r_oracle_checks = oracle_checks;
    r_oracle_failure = oracle_failure;
    r_candidates = cand_list;
  }

(* ------------------------------------------------------------------ *)
(* shipping and reporting                                              *)
(* ------------------------------------------------------------------ *)

let register (store : Tuned.t) (r : result) : bool =
  match r.r_oracle_ok with
  | Some true when r.r_tuned_cycles <= r.r_default_cycles ->
      Tuned.add store ~key:r.r_program_key r.r_tuned_options;
      true
  | _ -> false

let to_json (r : result) : J.t =
  let candidate_row (c : candidate) : J.t =
    J.Obj
      ([ ("config", J.String c.c_rendered) ]
      @ (match c.c_predicted with
        | Ok f -> [ ("predicted_cycles_per_iter", J.Float f) ]
        | Error m -> [ ("infeasible", J.String m) ])
      @
      match c.c_confirmed with
      | Some f -> [ ("confirmed_cycles_per_iter", J.Float f) ]
      | None -> [])
  in
  J.summary ~tool:"tune"
    ~config:
      [
        ("bench", J.String r.r_bench);
        ("machine", J.String r.r_machine);
        ("seed", J.Int r.r_seed);
        ("extent", J.Int r.r_extent);
      ]
    ~results:
      [
        J.Obj
          [
            ("program_key", J.String r.r_program_key);
            ("space_size", J.Int r.r_space_size);
            ("screened", J.Int r.r_screened);
            ("confirmed", J.Int r.r_confirmed);
            ( "evals",
              J.Obj
                [
                  ("total", J.Int r.r_evals_total);
                  ("run", J.Int r.r_evals_run);
                  ("saved", J.Int r.r_evals_saved);
                ] );
            ("default_cycles_per_iter", J.Float r.r_default_cycles);
            ("tuned_cycles_per_iter", J.Float r.r_tuned_cycles);
            ("improvement_pct", J.Float r.r_improvement_pct);
            ("tuned_config", Tuned.config_of_options r.r_tuned_options);
            ( "oracle",
              J.Obj
                ([
                   ( "ok",
                     match r.r_oracle_ok with
                     | Some b -> J.Bool b
                     | None -> J.Null );
                   ("checks", J.Int r.r_oracle_checks);
                 ]
                @
                match r.r_oracle_failure with
                | Some m -> [ ("failure", J.String m) ]
                | None -> []) );
            ("candidates", J.List (List.map candidate_row r.r_candidates));
          ];
      ]
