(** Trace/oracle-guided autotuning of the lowering pipeline (closes the
    ROADMAP loop: predictor → measurer → correctness gate).

    For one benchmark program the tuner searches the
    {!Wsc_core.Pipeline.options} space — the six §5.7 ablation booleans,
    [num_chunks_override] over the feasible chunk counts
    ({!Wsc_core.To_csl_stencil.feasible_chunk_counts} of the program's z
    extent) and [comm_budget_bytes] steps — with a two-stage search:

    + {b Screening}: every candidate is scored by the analytic
      predictor's per-iteration cycles on the proxy grid (the
      [predict_cycles] two-short-runs formula, routed through a
      per-session memo so each distinct proxy run executes once).
    + {b Confirmation}: the top-K screened candidates (the default
      config always among them) are re-scored by real fabric simulation
      — longer [simulate_proxy] runs whose steady-state delta shakes out
      warmup effects the screening runs share.
    + {b Oracle gate}: walking the confirmed ranking best-first, a
      candidate only becomes the winner once the full differential
      oracle ({!Wsc_harden.Oracle.check} with the candidate's options,
      multiwafer bit-identity tiers included) passes on the program.

    The search is deterministic from [seed]: candidate enumeration uses
    pure SplitMix64 draws, candidate evaluation fans out across a
    {!Wsc_serve.Pool} of domains into per-candidate slots, and the memo
    is single-flight — so a rerun with the same config replays
    byte-for-byte (same winners, same JSON).

    Winners ship through {!register} into a {!Wsc_serve.Tuned} store —
    content-addressed by the program's canonical text — which
    [wsc serve] / [wsc batch] consult per request. *)

module B = Wsc_benchmarks.Benchmarks

type config = {
  seed : int;
  screen : int;  (** max candidates entering screening (clamped ≥ 1) *)
  top_k : int;  (** candidates confirmed by simulation (clamped ≥ 1) *)
  extent : int;  (** proxy-grid PE extent per side *)
  domains : int;  (** worker domains for candidate fan-out *)
  machine : Wsc_wse.Machine.t;
  oracle : bool;  (** run the differential-oracle gate (default on) *)
}

val default_config : config

type candidate = {
  c_options : Wsc_core.Pipeline.options;
  c_rendered : string;  (** [Pipeline.options_to_string] of the options *)
  c_predicted : (float, string) Stdlib.result;
      (** screening score: predicted steady-state cycles/iteration, or
          why the candidate failed to compile/simulate *)
  c_confirmed : float option;
      (** confirmation score when the candidate reached stage two *)
}

type result = {
  r_bench : string;
  r_machine : string;
  r_seed : int;
  r_extent : int;
  r_program_key : string;
      (** program-only canonical digest — the tuned-config store key *)
  r_space_size : int;  (** full feasible search space *)
  r_screened : int;
  r_confirmed : int;
  r_evals_total : int;  (** proxy runs requested (before memoization) *)
  r_evals_run : int;  (** distinct proxy runs actually simulated *)
  r_evals_saved : int;
  r_default_cycles : float;  (** confirmed cycles/iter, default config *)
  r_tuned_cycles : float;  (** confirmed cycles/iter, winning config *)
  r_tuned_options : Wsc_core.Pipeline.options;
  r_improvement_pct : float;
  r_oracle_ok : bool option;  (** [None] when the gate was disabled *)
  r_oracle_checks : int;  (** oracle runs the gate performed *)
  r_oracle_failure : string option;
      (** first gate failure encountered, for the report *)
  r_candidates : candidate list;  (** screening order, for the report *)
}

(** Tune one benchmark.  Deterministic: same config, same result
    (including the JSON rendering). *)
val run : ?config:config -> B.descr -> result

(** The canonical source text of the program the tuner keys — the
    benchmark at the proxy grid with its default iteration count, as a
    serve client would submit it. *)
val source_for : ?extent:int -> B.descr -> string

(** [Tuned.key_of_canonical (source_for d)]. *)
val program_key : ?extent:int -> B.descr -> string

(** Ship a winner into a tuned-config store.  Refuses ([false], store
    untouched) unless the oracle gate passed ([r_oracle_ok = Some true])
    and the tuned config is no slower than the default — tuned configs
    never ship without an oracle pass. *)
val register : Wsc_serve.Tuned.t -> result -> bool

(** The result on the shared summary envelope ([tool = "tune"]).
    Deterministic — no wall-clock stamps — so seeded replays compare
    byte-for-byte. *)
val to_json : result -> Wsc_trace.Json.t
