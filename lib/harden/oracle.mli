(** Differential oracle: one fuzzer program, three executions that must
    agree — the sequential reference interpreter, the mid-level
    [csl_stencil] interpretation after groups 1–3, and the fabric
    simulation of the fully lowered program — plus a
    print→parse→print fixpoint check of the IR at every pass boundary
    (hung off {!Wsc_ir.Pass.options.on_ir}). *)

(** Why a program failed the oracle.  {!failure_key} buckets these so
    the reducer can insist a candidate reproduces the *same* defect. *)
type failure =
  | Pass_crash of { pass : string; msg : string }
      (** a pass (or the verifier after it) raised *)
  | Roundtrip of { pass : string; msg : string }
      (** the IR after [pass] is not a printer/parser fixpoint *)
  | Mismatch of { tier : string; diff : float }
      (** executions disagree beyond {!tolerance}; [tier] is ["interp"]
          or ["fabric"] *)
  | Multiwafer of { wafers : string; diff : float }
      (** the multi-wafer co-simulation is not *bit-identical* to the
          single-wafer fabric ([wafers] is e.g. ["2x1"]) *)
  | Mwfault of { kind : string; wafers : string; diff : float }
      (** the co-simulation under injected wafer faults ([kind] is e.g.
          ["crash"]) recovered but is not bit-identical *)
  | Crash of { stage : string; msg : string }
      (** a non-pass stage raised: reference, interpreter, simulator *)

(** Stable bucket for "the same defect": the constructor plus the pass /
    tier / stage name, never the message or the numeric diff. *)
val failure_key : failure -> string

val failure_to_string : failure -> string

type report = {
  failure : failure option;  (** [None]: all three executions agree *)
  ir_before : string option;
      (** IR entering the failing pass (crash/round-trip failures) or
          the executed module (mismatches) *)
  ir_after : string option;  (** IR after the failing pass, when it exists *)
}

val ok : report -> bool

(** Max |difference| the executions may disagree by: the simulator's
    usual acceptance threshold. *)
val tolerance : float

(** Run all tiers.  [inject_bug] splices a deliberately wrong pass
    (["harden-test-bug"], perturbs the first float constant) between
    pipeline groups — test-only, for proving the harness catches
    defects.  [multiwafer] (default on) adds the final tier: the
    program co-simulated on 1×1 and 2×1 wafer grids must drain fields
    bit-identical to the single-wafer fabric.  [mwfaults] (default off:
    each fault kind costs one more co-simulation) adds the chaos tier —
    the 2×1 co-simulation under low-rate seeded halo-drop /
    halo-corrupt / crash faults with the resilience protocol on must
    *recover* bit-identically (degraded runs are excused: exhausting
    the retry budget is by design, not a miscompile).  [options]
    (default {!Wsc_core.Pipeline.default_options}) selects the pipeline
    configuration every tier compiles under — the autotuner's gate: a
    candidate config only ships once [check ~options] comes back clean.
    Never raises: every exception becomes a {!failure}. *)
val check :
  ?inject_bug:bool ->
  ?multiwafer:bool ->
  ?mwfaults:bool ->
  ?machine:Wsc_wse.Machine.t ->
  ?options:Wsc_core.Pipeline.options ->
  Wsc_frontends.Stencil_program.t ->
  report
