(** Fuzzing campaign: [count] seeded programs through the differential
    oracle; failures are reduced and dumped as crash artifacts.

    Determinism: case [i] only depends on (seed, i), and the report
    carries no wall-clock times, so the same configuration produces a
    byte-identical JSON summary. *)

type config = {
  seed : int;
  count : int;
  machine : Wsc_wse.Machine.t;
  crash_dir : string;
  inject_bug : bool;  (** splice the test-only bug pass into every case *)
  mwfaults : bool;
      (** add the chaos tier: co-simulate each case under low-rate
          wafer faults with resilience on, demanding post-recovery
          bit-identity (failure key [mwfaults:<kind>]) *)
  reduce_budget : int;  (** max oracle re-runs while reducing one crash;
                            0 disables reduction *)
}

val default_config : config

type case = {
  c_index : int;
  c_descr : string;  (** one-line program description *)
  c_size : int;  (** {!Fuzz.program_size} *)
  c_failure : string option;  (** {!Oracle.failure_key}; [None] = agreed *)
  c_detail : string option;
  c_reduced_size : int option;  (** after reduction, when it ran *)
  c_checks : int;  (** oracle re-runs the reducer spent *)
  c_artifact : string option;  (** crash directory path *)
}

type report = { cfg : config; cases : case list }

val crashes : report -> int

(** Run the campaign.  [on_case] fires after each case (progress
    reporting). *)
val run : ?on_case:(case -> unit) -> config -> report

(** Human-readable summary table. *)
val to_string : report -> string

(** Shared [--json] envelope ({!Wsc_trace.Json.summary}, tool ["fuzz"]). *)
val to_json : report -> Wsc_trace.Json.t
