(** Automatic test-case reducer: greedy delta debugging over
    {!Wsc_frontends.Stencil_program.t}.

    Given a failing program and a predicate that re-runs the oracle and
    answers "does this candidate still fail the same way?", repeatedly
    applies the smallest-first shrink steps (fewer iterations, smaller
    extents, dropped kernels and state grids, trimmed halo, pruned
    expression nodes, zeroed constants, shortened offsets).  Every
    candidate is {!Fuzz.well_formed} and strictly smaller under
    {!Fuzz.program_size}, so reduction always terminates. *)

type result = {
  reduced : Wsc_frontends.Stencil_program.t;
  checks : int;  (** oracle re-runs spent *)
  steps : int;  (** accepted shrink steps *)
}

(** Shrink candidates of one program, strictly smaller and well-formed,
    in the order the reducer tries them; exposed for tests. *)
val candidates :
  Wsc_frontends.Stencil_program.t -> Wsc_frontends.Stencil_program.t list

(** [reduce ~max_checks ~still_fails p] — greedy fixpoint: take the
    first candidate that still fails, restart from it; stop when no
    candidate reproduces or the budget is spent.  [p] itself is assumed
    failing. *)
val reduce :
  ?max_checks:int ->
  still_fails:(Wsc_frontends.Stencil_program.t -> bool) ->
  Wsc_frontends.Stencil_program.t ->
  result
