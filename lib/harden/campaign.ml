(** Fuzzing campaign runner — see the interface. *)

module P = Wsc_frontends.Stencil_program
module Json = Wsc_trace.Json

type config = {
  seed : int;
  count : int;
  machine : Wsc_wse.Machine.t;
  crash_dir : string;
  inject_bug : bool;
  mwfaults : bool;
  reduce_budget : int;
}

let default_config =
  {
    seed = 1;
    count = 20;
    machine = Wsc_wse.Machine.wse3;
    crash_dir = "crashes";
    inject_bug = false;
    mwfaults = false;
    reduce_budget = 150;
  }

type case = {
  c_index : int;
  c_descr : string;
  c_size : int;
  c_failure : string option;
  c_detail : string option;
  c_reduced_size : int option;
  c_checks : int;
  c_artifact : string option;
}

type report = { cfg : config; cases : case list }

let crashes (r : report) : int =
  List.length (List.filter (fun c -> c.c_failure <> None) r.cases)

let run_case (cfg : config) (index : int) : case =
  let p = Fuzz.generate ~seed:cfg.seed ~index in
  let base =
    {
      c_index = index;
      c_descr = Fuzz.describe p;
      c_size = Fuzz.program_size p;
      c_failure = None;
      c_detail = None;
      c_reduced_size = None;
      c_checks = 0;
      c_artifact = None;
    }
  in
  match
    Oracle.check ~inject_bug:cfg.inject_bug ~mwfaults:cfg.mwfaults
      ~machine:cfg.machine p
  with
  | { Oracle.failure = None; _ } -> base
  | { Oracle.failure = Some f; ir_before; ir_after } ->
      let key = Oracle.failure_key f in
      let reduced, checks =
        if cfg.reduce_budget <= 0 then (None, 0)
        else begin
          let still_fails q =
            match
              Oracle.check ~inject_bug:cfg.inject_bug ~mwfaults:cfg.mwfaults
                ~machine:cfg.machine q
            with
            | { Oracle.failure = Some f'; _ } -> Oracle.failure_key f' = key
            | _ -> false
          in
          let r = Reduce.reduce ~max_checks:cfg.reduce_budget ~still_fails p in
          ((if r.Reduce.steps > 0 then Some r.Reduce.reduced else None),
           r.Reduce.checks)
        end
      in
      let artifact =
        Artifact.save ~dir:cfg.crash_dir
          {
            Artifact.seed = cfg.seed;
            index;
            inject_bug = cfg.inject_bug;
            key;
            detail = Oracle.failure_to_string f;
            program = p;
            reduced;
            ir_before;
            ir_after;
          }
      in
      {
        base with
        c_failure = Some key;
        c_detail = Some (Oracle.failure_to_string f);
        c_reduced_size = Option.map Fuzz.program_size reduced;
        c_checks = checks;
        c_artifact = Some artifact;
      }

let run ?(on_case = fun _ -> ()) (cfg : config) : report =
  let rec go i acc =
    if i >= cfg.count then List.rev acc
    else begin
      let c = run_case cfg i in
      on_case c;
      go (i + 1) (c :: acc)
    end
  in
  { cfg; cases = go 0 [] }

(* ------------------------------------------------------------------ *)
(* reporting                                                           *)
(* ------------------------------------------------------------------ *)

let to_string (r : report) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "fuzz campaign: %d programs, seed %d, machine %s%s\n" r.cfg.count
       r.cfg.seed r.cfg.machine.Wsc_wse.Machine.name
       (if r.cfg.inject_bug then " (test bug injected)" else ""));
  List.iter
    (fun c ->
      match c.c_failure with
      | None -> ()
      | Some key ->
          Buffer.add_string buf
            (Printf.sprintf "  case %d FAILED [%s] size %d%s\n    %s\n    -> %s\n"
               c.c_index key c.c_size
               (match c.c_reduced_size with
               | Some s -> Printf.sprintf " (reduced to %d in %d checks)" s c.c_checks
               | None -> "")
               (Option.value ~default:"" c.c_detail)
               (Option.value ~default:"" c.c_artifact)))
    r.cases;
  Buffer.add_string buf
    (Printf.sprintf "crashes: %d/%d\n" (crashes r) (List.length r.cases));
  Buffer.contents buf

let case_to_json (c : case) : Json.t =
  Json.Obj
    [
      ("index", Json.Int c.c_index);
      ("program", Json.String c.c_descr);
      ("size", Json.Int c.c_size);
      ( "failure",
        match c.c_failure with None -> Json.Null | Some k -> Json.String k );
      ( "detail",
        match c.c_detail with None -> Json.Null | Some d -> Json.String d );
      ( "reduced_size",
        match c.c_reduced_size with None -> Json.Null | Some s -> Json.Int s );
      ("reduce_checks", Json.Int c.c_checks);
      ( "artifact",
        match c.c_artifact with None -> Json.Null | Some p -> Json.String p );
    ]

let to_json (r : report) : Json.t =
  Json.summary ~tool:"fuzz"
    ~config:
      [
        ("seed", Json.Int r.cfg.seed);
        ("count", Json.Int r.cfg.count);
        ("machine", Json.String r.cfg.machine.Wsc_wse.Machine.name);
        ("crash_dir", Json.String r.cfg.crash_dir);
        ("inject_bug", Json.Bool r.cfg.inject_bug);
        ("mwfaults", Json.Bool r.cfg.mwfaults);
        ("reduce_budget", Json.Int r.cfg.reduce_budget);
        ("crashes", Json.Int (crashes r));
      ]
    ~results:(List.map case_to_json r.cases)
