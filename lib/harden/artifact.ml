(** Crash artifact dump/load — see the interface for the layout. *)

module P = Wsc_frontends.Stencil_program
module Json = Wsc_trace.Json

type t = {
  seed : int;
  index : int;
  inject_bug : bool;
  key : string;
  detail : string;
  program : P.t;
  reduced : P.t option;
  ir_before : string option;
  ir_after : string option;
}

let name (a : t) : string = Printf.sprintf "crash-s%d-c%d" a.seed a.index

let rec mkdir_p (dir : string) : unit =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (* tolerate a concurrent create *)
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file (path : string) (contents : string) : unit =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let to_json (a : t) : Json.t =
  Json.Obj
    [
      ("tool", Json.String "fuzz-crash");
      ("schema_version", Json.Int Json.schema_version);
      ("seed", Json.Int a.seed);
      ("index", Json.Int a.index);
      ("inject_bug", Json.Bool a.inject_bug);
      ("key", Json.String a.key);
      ("detail", Json.String a.detail);
      ("program", Fuzz.program_to_json a.program);
      ( "reduced",
        match a.reduced with None -> Json.Null | Some r -> Fuzz.program_to_json r );
    ]

let save ~(dir : string) (a : t) : string =
  let crash_dir = Filename.concat dir (name a) in
  mkdir_p crash_dir;
  write_file
    (Filename.concat crash_dir "report.json")
    (Json.to_string (to_json a) ^ "\n");
  (match a.ir_before with
  | Some ir -> write_file (Filename.concat crash_dir "before.mlir") ir
  | None -> ());
  (match a.ir_after with
  | Some ir -> write_file (Filename.concat crash_dir "after.mlir") ir
  | None -> ());
  crash_dir

let read_file (path : string) : (string, string) result =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s

let ( let* ) = Result.bind

let load (path : string) : (t, string) result =
  let report =
    if Sys.file_exists path && Sys.is_directory path then
      Filename.concat path "report.json"
    else path
  in
  let* text = read_file report in
  let* v = Json.of_string text in
  let int k =
    match Json.member k v with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "%s: missing integer field '%s'" report k)
  in
  let str k =
    match Json.member k v with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "%s: missing string field '%s'" report k)
  in
  let* seed = int "seed" in
  let* index = int "index" in
  let inject_bug =
    match Json.member "inject_bug" v with Some (Json.Bool b) -> b | _ -> false
  in
  let* key = str "key" in
  let* detail = str "detail" in
  let* program =
    match Json.member "program" v with
    | Some pv -> Fuzz.program_of_json pv
    | None -> Error (report ^ ": missing field 'program'")
  in
  let* reduced =
    match Json.member "reduced" v with
    | None | Some Json.Null -> Ok None
    | Some rv -> Result.map Option.some (Fuzz.program_of_json rv)
  in
  Ok
    {
      seed;
      index;
      inject_bug;
      key;
      detail;
      program;
      reduced;
      ir_before = None;
      ir_after = None;
    }
