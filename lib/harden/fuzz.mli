(** Seeded stencil-program fuzzer: random-but-well-formed
    {!Wsc_frontends.Stencil_program.t} values drawn from the pipeline's
    supported envelope (star stencils on cross offsets, remote reads on
    state grids only, chained kernels reading intermediates point-wise).

    Determinism follows the {!Wsc_faults.Faults} discipline: every draw
    is a pure hash of the campaign seed and the case index — there is no
    mutable PRNG stream — so case [i] of a campaign is the same program
    no matter how many cases ran before it, and a campaign replays
    bit-identically from its seed. *)

(** [generate ~seed ~index] — the [index]-th program of campaign
    [seed].  Always {!well_formed}; coefficients are multiples of 1/64
    so they print, parse and serialize exactly. *)
val generate : seed:int -> index:int -> Wsc_frontends.Stencil_program.t

(** Is the program inside the envelope the pipeline (and the
    differential oracle) supports?  Checked by the generator's output
    and required of every reducer candidate: extents ≥ 3×3×4, halo ≥
    every |offset|, cross-shaped offsets, remote accesses on state grids
    only, intermediates read point-wise, [use_loop] whenever
    [iterations > 1], constant divisors bounded away from zero. *)
val well_formed : Wsc_frontends.Stencil_program.t -> bool

(** Reduction metric: strictly decreasing under every shrink step the
    reducer proposes (node counts, extents, halo, iterations, offset
    magnitudes, nonzero constants). *)
val program_size : Wsc_frontends.Stencil_program.t -> int

(** One-line description for reports: extents, iterations and kernels. *)
val describe : Wsc_frontends.Stencil_program.t -> string

(** {1 Serialization (crash artifacts)} *)

val program_to_json : Wsc_frontends.Stencil_program.t -> Wsc_trace.Json.t

val program_of_json :
  Wsc_trace.Json.t -> (Wsc_frontends.Stencil_program.t, string) result
