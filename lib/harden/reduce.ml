(** Greedy delta-debugging reducer — see the interface.

    Termination: every candidate is strictly smaller under
    {!Fuzz.program_size} (the well-formedness filter also rejects
    anything outside the supported envelope, so the oracle never sees an
    unsupported reproducer), and the check budget bounds the oracle
    re-runs. *)

module P = Wsc_frontends.Stencil_program

type result = { reduced : P.t; checks : int; steps : int }

(* ------------------------------------------------------------------ *)
(* expression shrinks                                                  *)
(* ------------------------------------------------------------------ *)

let step_toward_zero (d : int) : int = if d > 0 then d - 1 else if d < 0 then d + 1 else 0

(** One-step shrinks of an expression: replace a binary node by a child,
    zero a constant, step an offset toward zero.  Divisors are never
    shrunk (a zero or vanished divisor would change the failure into a
    trivial division blow-up). *)
let rec shrink_expr (e : P.expr) : P.expr list =
  match e with
  | P.Const c -> if c <> 0.0 then [ P.Const 0.0 ] else []
  | P.Access (g, off) ->
      if List.exists (fun d -> d <> 0) off then
        [ P.Access (g, List.map step_toward_zero off) ]
      else []
  | P.Add (a, b) ->
      (a :: b :: List.map (fun a' -> P.Add (a', b)) (shrink_expr a))
      @ List.map (fun b' -> P.Add (a, b')) (shrink_expr b)
  | P.Sub (a, b) ->
      (a :: b :: List.map (fun a' -> P.Sub (a', b)) (shrink_expr a))
      @ List.map (fun b' -> P.Sub (a, b')) (shrink_expr b)
  | P.Mul (a, b) ->
      (a :: b :: List.map (fun a' -> P.Mul (a', b)) (shrink_expr a))
      @ List.map (fun b' -> P.Mul (a, b')) (shrink_expr b)
  | P.Div (a, b) -> a :: List.map (fun a' -> P.Div (a', b)) (shrink_expr a)

(* ------------------------------------------------------------------ *)
(* program-level candidates                                            *)
(* ------------------------------------------------------------------ *)

let remove_nth (i : int) (l : 'a list) : 'a list =
  List.filteri (fun j _ -> j <> i) l

let candidates (p : P.t) : P.t list =
  let sz = Fuzz.program_size p in
  let keep q = Fuzz.well_formed q && Fuzz.program_size q < sz in
  let half v = max 3 ((v + 1) / 2) in
  let nx, ny, nz = p.P.extents in
  let structural =
    [
      (* big cuts first: the greedy loop restarts from the first hit *)
      { p with P.iterations = 1 };
      { p with P.extents = (half nx, half ny, max 4 ((nz + 1) / 2)) };
    ]
    (* drop a kernel; next-state slots that named its output fall back
       to the first state grid (later kernels that read it are rejected
       by the well-formedness filter) *)
    @ List.concat
        (List.mapi
           (fun i (k : P.kernel) ->
             [
               {
                 p with
                 P.kernels = remove_nth i p.P.kernels;
                 next_state =
                   List.map
                     (fun n -> if n = k.P.output then List.hd p.P.state else n)
                     p.P.next_state;
               };
             ])
           p.P.kernels)
    (* drop a state grid together with its next-state slot *)
    @ List.concat
        (List.mapi
           (fun j _ ->
             [
               {
                 p with
                 P.state = remove_nth j p.P.state;
                 next_state = remove_nth j p.P.next_state;
               };
             ])
           p.P.state)
    @ [
        { p with P.extents = (half nx, ny, nz) };
        { p with P.extents = (nx, half ny, nz) };
        { p with P.extents = (nx, ny, max 4 ((nz + 1) / 2)) };
        { p with P.halo = max 1 (P.program_radius p) };
      ]
  in
  let exprs =
    List.concat
      (List.mapi
         (fun i (k : P.kernel) ->
           List.map
             (fun e ->
               {
                 p with
                 P.kernels =
                   List.mapi
                     (fun j k' -> if j = i then { k with P.expr = e } else k')
                     p.P.kernels;
               })
             (shrink_expr k.P.expr))
         p.P.kernels)
  in
  List.filter keep (structural @ exprs)

(* ------------------------------------------------------------------ *)
(* greedy loop                                                         *)
(* ------------------------------------------------------------------ *)

let reduce ?(max_checks = 150) ~still_fails (p0 : P.t) : result =
  let checks = ref 0 in
  let steps = ref 0 in
  let rec go p =
    let rec try_ = function
      | [] -> p
      | q :: rest ->
          if !checks >= max_checks then p
          else begin
            incr checks;
            if still_fails q then begin
              incr steps;
              go q
            end
            else try_ rest
          end
    in
    try_ (candidates p)
  in
  let reduced = go p0 in
  { reduced; checks = !checks; steps = !steps }
