(** Seeded stencil-program fuzzer — see the interface for the envelope.

    Determinism: draws come from {!Wsc_faults.Faults.uniform}, a pure
    hash of (campaign seed, case index, draw counter).  Draw order
    inside one case is fixed by explicit sequencing below (no [let ...
    and], no [List.init] over an effectful function), so the same
    (seed, index) always yields the same program. *)

module P = Wsc_frontends.Stencil_program
module Faults = Wsc_faults.Faults
module Json = Wsc_trace.Json

(* ------------------------------------------------------------------ *)
(* deterministic draws                                                 *)
(* ------------------------------------------------------------------ *)

type rng = { seed : int; site : int; mutable n : int }

let draw (r : rng) : float =
  let u = Faults.uniform ~seed:r.seed ~site:r.site ~keys:[ r.n ] in
  r.n <- r.n + 1;
  u

(** Uniform integer in [lo, hi] inclusive. *)
let int_in (r : rng) (lo : int) (hi : int) : int =
  lo + min (hi - lo) (int_of_float (draw r *. float_of_int (hi - lo + 1)))

let choose (r : rng) (xs : 'a list) : 'a = List.nth xs (int_in r 0 (List.length xs - 1))

(** Nonzero multiple of 1/64 in [-2, 2]: exact in binary, so it prints,
    parses and serializes without rounding. *)
let coeff (r : rng) : float =
  let k = int_in r (-128) 128 in
  let k = if k = 0 then 7 else k in
  float_of_int k /. 64.0

(* ------------------------------------------------------------------ *)
(* expression generation                                               *)
(* ------------------------------------------------------------------ *)

(** One term over [grid]: coefficient x access.  Remote accesses stay on
    the cross (one nonzero offset component, |offset| <= halo); only
    local accesses appear non-linearly (squared) or as dividends. *)
let term (r : rng) ~(halo : int) ~(remote : bool) ~(grid : string) : P.expr =
  let u = draw r in
  if (not remote) || u < 0.35 then begin
    let acc = P.Access (grid, [ 0; 0; 0 ]) in
    let v = draw r in
    if v < 0.2 then P.Mul (acc, acc)
    else if v < 0.35 then P.Div (acc, P.Const (choose r [ 2.0; 4.0; 8.0 ]))
    else P.Mul (P.Const (coeff r), acc)
  end
  else begin
    let axis = int_in r 0 2 in
    let mag = int_in r 1 halo in
    let mag = if draw r < 0.5 then mag else -mag in
    let off = List.mapi (fun i z -> if i = axis then mag else z) [ 0; 0; 0 ] in
    P.Mul (P.Const (coeff r), P.Access (grid, off))
  end

let rec terms_of (r : rng) ~halo ~remote ~grid (k : int) (acc : P.expr list) :
    P.expr list =
  if k = 0 then List.rev acc
  else terms_of r ~halo ~remote ~grid (k - 1) (term r ~halo ~remote ~grid :: acc)

(** Fold terms with Add/Sub (Sub with probability 1/4). *)
let combine (r : rng) (ts : P.expr list) : P.expr =
  List.fold_left
    (fun acc t -> if draw r < 0.25 then P.Sub (acc, t) else P.Add (acc, t))
    (List.hd ts) (List.tl ts)

(** A star expression over [grid] with one guaranteed remote x-term (so
    the kernel communicates) plus [n] random terms. *)
let star (r : rng) ~halo ~grid ~(n : int) : P.expr =
  let s = if draw r < 0.5 then 1 else -1 in
  let guaranteed = P.Mul (P.Const (coeff r), P.Access (grid, [ s; 0; 0 ])) in
  combine r (guaranteed :: terms_of r ~halo ~remote:true ~grid n [])

(* ------------------------------------------------------------------ *)
(* program generation                                                  *)
(* ------------------------------------------------------------------ *)

let generate ~(seed : int) ~(index : int) : P.t =
  let r = { seed; site = index; n = 0 } in
  let nx = int_in r 3 5 in
  let ny = int_in r 3 5 in
  let nz = int_in r 4 8 in
  let iterations = int_in r 1 3 in
  let halo = 2 in
  let n_terms = int_in r 2 5 in
  let variant = int_in r 0 3 in
  let base =
    {
      P.pname = Printf.sprintf "fuzz-s%d-c%d" seed index;
      frontend = "fuzz";
      extents = (nx, ny, nz);
      halo;
      state = [ "u" ];
      kernels = [];
      next_state = [];
      iterations;
      use_loop = true;
      dsl_loc = 0;
    }
  in
  match variant with
  | 0 ->
      (* plain single-state star stencil *)
      let expr = star r ~halo ~grid:"u" ~n:n_terms in
      {
        base with
        P.kernels = [ { P.kname = "k"; output = "w"; expr } ];
        next_state = [ "w" ];
      }
  | 1 ->
      (* masked: gate the whole expression by a locally held field,
         forcing the backend's pack mode *)
      let expr = star r ~halo ~grid:"u" ~n:n_terms in
      let expr = P.Mul (P.Access ("mask", [ 0; 0; 0 ]), expr) in
      {
        base with
        P.state = [ "u"; "mask" ];
        kernels = [ { P.kname = "k"; output = "w"; expr } ];
        next_state = [ "w"; "mask" ];
      }
  | 2 ->
      (* two-state rotation (wave-equation shape): w reads u remotely
         and u_prev point-wise; next state is [u; w] *)
      let su = star r ~halo ~grid:"u" ~n:n_terms in
      let prev = P.Mul (P.Const (coeff r), P.Access ("u_prev", [ 0; 0; 0 ])) in
      let expr = if draw r < 0.5 then P.Sub (su, prev) else P.Add (su, prev) in
      {
        base with
        P.state = [ "u_prev"; "u" ];
        kernels = [ { P.kname = "k"; output = "w"; expr } ];
        next_state = [ "u"; "w" ];
      }
  | _ ->
      (* chained kernels: k2 reads the intermediate t point-wise only
         (the uvkbe pattern) and may still read the state grid remotely *)
      let e1 = star r ~halo ~grid:"u" ~n:n_terms in
      let n2 = int_in r 1 3 in
      let t_term = P.Mul (P.Const (coeff r), P.Access ("t", [ 0; 0; 0 ])) in
      let e2 = combine r (t_term :: terms_of r ~halo ~remote:true ~grid:"u" n2 []) in
      {
        base with
        P.kernels =
          [
            { P.kname = "k1"; output = "t"; expr = e1 };
            { P.kname = "k2"; output = "w"; expr = e2 };
          ];
        next_state = [ "w" ];
      }

(* ------------------------------------------------------------------ *)
(* envelope check                                                      *)
(* ------------------------------------------------------------------ *)

let on_cross (off : int list) : bool =
  List.length (List.filter (fun d -> d <> 0) off) <= 1

let rec divisors_ok : P.expr -> bool = function
  | P.Const _ | P.Access _ -> true
  | P.Add (a, b) | P.Sub (a, b) | P.Mul (a, b) -> divisors_ok a && divisors_ok b
  | P.Div (a, P.Const c) -> Float.abs c >= 0.5 && divisors_ok a
  | P.Div _ -> false

let well_formed (p : P.t) : bool =
  let nx, ny, nz = p.P.extents in
  let outputs = List.map (fun (k : P.kernel) -> k.P.output) p.P.kernels in
  let distinct l = List.length (List.sort_uniq compare l) = List.length l in
  nx >= 3 && ny >= 3 && nz >= 4 && p.P.halo >= 1 && p.P.iterations >= 1
  && (p.P.iterations = 1 || p.P.use_loop)
  && p.P.state <> [] && p.P.kernels <> []
  && distinct (p.P.state @ outputs)
  && List.length p.P.next_state = List.length p.P.state
  && List.for_all
       (fun n -> List.mem n p.P.state || List.mem n outputs)
       p.P.next_state
  && P.program_radius p <= p.P.halo
  &&
  let ok = ref true in
  let seen = ref p.P.state in
  List.iter
    (fun (k : P.kernel) ->
      let accs = P.accesses k.P.expr in
      if accs = [] then ok := false;
      List.iter
        (fun (g, off) ->
          let local = List.for_all (( = ) 0) off in
          if List.length off <> 3 then ok := false;
          if not (List.mem g !seen) then ok := false;
          if not (on_cross off) then ok := false;
          (* remote reads need communication, which only state grids
             (loaded before the step) support *)
          if (not local) && not (List.mem g p.P.state) then ok := false)
        accs;
      if not (divisors_ok k.P.expr) then ok := false;
      seen := k.P.output :: !seen)
    p.P.kernels;
  !ok

(* ------------------------------------------------------------------ *)
(* reduction metric                                                    *)
(* ------------------------------------------------------------------ *)

let rec expr_nodes : P.expr -> int = function
  | P.Const _ | P.Access _ -> 1
  | P.Add (a, b) | P.Sub (a, b) | P.Mul (a, b) | P.Div (a, b) ->
      1 + expr_nodes a + expr_nodes b

let rec nonzero_consts : P.expr -> int = function
  | P.Const c -> if c <> 0.0 then 1 else 0
  | P.Access _ -> 0
  | P.Add (a, b) | P.Sub (a, b) | P.Mul (a, b) | P.Div (a, b) ->
      nonzero_consts a + nonzero_consts b

let offset_mass (e : P.expr) : int =
  List.fold_left
    (fun acc (_, off) -> acc + List.fold_left (fun a d -> a + abs d) 0 off)
    0 (P.accesses e)

(** Every shrink the reducer proposes (dropping a kernel or a state
    grid, halving an extent, trimming the halo or the iteration count,
    replacing a node by a child, zeroing a constant, stepping an offset
    toward zero) strictly decreases this. *)
let program_size (p : P.t) : int =
  let nx, ny, nz = p.P.extents in
  nx + ny + nz + p.P.halo + p.P.iterations
  + (2 * List.length p.P.state)
  + List.fold_left
      (fun acc (k : P.kernel) ->
        acc + 1 + expr_nodes k.P.expr + nonzero_consts k.P.expr
        + offset_mass k.P.expr)
      0 p.P.kernels

(* ------------------------------------------------------------------ *)
(* description                                                         *)
(* ------------------------------------------------------------------ *)

let rec expr_to_string : P.expr -> string = function
  | P.Const c -> Printf.sprintf "%g" c
  | P.Access (g, off) ->
      Printf.sprintf "%s[%s]" g (String.concat "," (List.map string_of_int off))
  | P.Add (a, b) -> Printf.sprintf "(%s + %s)" (expr_to_string a) (expr_to_string b)
  | P.Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr_to_string a) (expr_to_string b)
  | P.Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr_to_string a) (expr_to_string b)
  | P.Div (a, b) -> Printf.sprintf "(%s / %s)" (expr_to_string a) (expr_to_string b)

let describe (p : P.t) : string =
  let nx, ny, nz = p.P.extents in
  Printf.sprintf "%dx%dx%d h%d x%d [%s]: %s" nx ny nz p.P.halo p.P.iterations
    (String.concat "," p.P.state)
    (String.concat "; "
       (List.map
          (fun (k : P.kernel) -> k.P.output ^ " = " ^ expr_to_string k.P.expr)
          p.P.kernels))

(* ------------------------------------------------------------------ *)
(* serialization                                                       *)
(* ------------------------------------------------------------------ *)

let rec expr_to_json : P.expr -> Json.t = function
  | P.Const c -> Json.Obj [ ("const", Json.Float c) ]
  | P.Access (g, off) ->
      Json.Obj
        [
          ("access", Json.String g);
          ("off", Json.List (List.map (fun d -> Json.Int d) off));
        ]
  | P.Add (a, b) -> Json.Obj [ ("add", Json.List [ expr_to_json a; expr_to_json b ]) ]
  | P.Sub (a, b) -> Json.Obj [ ("sub", Json.List [ expr_to_json a; expr_to_json b ]) ]
  | P.Mul (a, b) -> Json.Obj [ ("mul", Json.List [ expr_to_json a; expr_to_json b ]) ]
  | P.Div (a, b) -> Json.Obj [ ("div", Json.List [ expr_to_json a; expr_to_json b ]) ]

let program_to_json (p : P.t) : Json.t =
  let nx, ny, nz = p.P.extents in
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  Json.Obj
    [
      ("pname", Json.String p.P.pname);
      ("frontend", Json.String p.P.frontend);
      ("extents", Json.List [ Json.Int nx; Json.Int ny; Json.Int nz ]);
      ("halo", Json.Int p.P.halo);
      ("state", strings p.P.state);
      ( "kernels",
        Json.List
          (List.map
             (fun (k : P.kernel) ->
               Json.Obj
                 [
                   ("kname", Json.String k.P.kname);
                   ("output", Json.String k.P.output);
                   ("expr", expr_to_json k.P.expr);
                 ])
             p.P.kernels) );
      ("next_state", strings p.P.next_state);
      ("iterations", Json.Int p.P.iterations);
      ("use_loop", Json.Bool p.P.use_loop);
      ("dsl_loc", Json.Int p.P.dsl_loc);
    ]

let ( let* ) = Result.bind

let field (k : string) (v : Json.t) : (Json.t, string) result =
  match Json.member k v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing field '%s'" k)

let as_int = function
  | Json.Int i -> Ok i
  | _ -> Error "expected an integer"

let as_float = function
  | Json.Int i -> Ok (float_of_int i)
  | Json.Float f -> Ok f
  | _ -> Error "expected a number"

let as_string = function
  | Json.String s -> Ok s
  | _ -> Error "expected a string"

let as_bool = function Json.Bool b -> Ok b | _ -> Error "expected a bool"
let as_list = function Json.List l -> Ok l | _ -> Error "expected a list"

let map_m (f : 'a -> ('b, string) result) (l : 'a list) : ('b list, string) result =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let rec expr_of_json (v : Json.t) : (P.expr, string) result =
  let binop k v =
    let* l = as_list v in
    match l with
    | [ a; b ] ->
        let* a = expr_of_json a in
        let* b = expr_of_json b in
        Ok
          (match k with
          | "add" -> P.Add (a, b)
          | "sub" -> P.Sub (a, b)
          | "mul" -> P.Mul (a, b)
          | _ -> P.Div (a, b))
    | _ -> Error (Printf.sprintf "'%s' expects two children" k)
  in
  match v with
  | Json.Obj [ ("const", c) ] ->
      let* c = as_float c in
      Ok (P.Const c)
  | Json.Obj (("access", g) :: _) ->
      let* g = as_string g in
      let* off = field "off" v in
      let* off = as_list off in
      let* off = map_m as_int off in
      Ok (P.Access (g, off))
  | Json.Obj [ ((("add" | "sub" | "mul" | "div") as k), c) ] -> binop k c
  | _ -> Error "unrecognized expression node"

let program_of_json (v : Json.t) : (P.t, string) result =
  let* pname = Result.bind (field "pname" v) as_string in
  let* frontend = Result.bind (field "frontend" v) as_string in
  let* extents = Result.bind (field "extents" v) as_list in
  let* extents = map_m as_int extents in
  let* extents =
    match extents with
    | [ nx; ny; nz ] -> Ok (nx, ny, nz)
    | _ -> Error "extents must have three entries"
  in
  let* halo = Result.bind (field "halo" v) as_int in
  let* state = Result.bind (field "state" v) as_list in
  let* state = map_m as_string state in
  let* kernels = Result.bind (field "kernels" v) as_list in
  let* kernels =
    map_m
      (fun k ->
        let* kname = Result.bind (field "kname" k) as_string in
        let* output = Result.bind (field "output" k) as_string in
        let* expr = Result.bind (field "expr" k) expr_of_json in
        Ok { P.kname; output; expr })
      kernels
  in
  let* next_state = Result.bind (field "next_state" v) as_list in
  let* next_state = map_m as_string next_state in
  let* iterations = Result.bind (field "iterations" v) as_int in
  let* use_loop = Result.bind (field "use_loop" v) as_bool in
  let* dsl_loc = Result.bind (field "dsl_loc" v) as_int in
  Ok
    {
      P.pname;
      frontend;
      extents;
      halo;
      state;
      kernels;
      next_state;
      iterations;
      use_loop;
      dsl_loc;
    }
