(** Structured crash artifacts: when the oracle rejects a program, the
    campaign dumps everything a developer (or [wsc reduce]) needs to
    replay the defect into one directory —

    {v
    <crash_dir>/<name>/report.json   seed, case index, failure key and
                                     detail, the program and (when
                                     reduction ran) the reduced program
    <crash_dir>/<name>/before.mlir   IR entering the failing pass, or
                                     the executed module on mismatches
    <crash_dir>/<name>/after.mlir    IR after the failing pass (absent
                                     when the pass crashed)
    v} *)

type t = {
  seed : int;
  index : int;
  inject_bug : bool;  (** the crash was produced with the test-only bug pass *)
  key : string;  (** {!Oracle.failure_key} bucket *)
  detail : string;  (** human-readable failure description *)
  program : Wsc_frontends.Stencil_program.t;
  reduced : Wsc_frontends.Stencil_program.t option;
  ir_before : string option;
  ir_after : string option;
}

(** The crash's directory name: [crash-s<seed>-c<index>]. *)
val name : t -> string

(** Write the artifact under [dir] (created as needed); returns the
    crash directory path. *)
val save : dir:string -> t -> string

(** Load an artifact from a crash directory or a [report.json] path
    (the IR files are not read back — reduction only needs the
    program). *)
val load : string -> (t, string) result
