(** Corpus emission — see the interface. *)

module P = Wsc_frontends.Stencil_program

let filename ~seed ~index = Printf.sprintf "fuzz-s%d-c%d.mlir" seed index

let case_contents ~seed ~index =
  let program = Fuzz.generate ~seed ~index in
  let m = P.compile program in
  Printf.sprintf "// wsc fuzz corpus: seed %d, case %d — %s\n%s" seed index
    (Fuzz.describe program)
    (Wsc_ir.Printer.op_to_string m)

let emit ~dir ~seed ~count =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.init count (fun index ->
      let path = Filename.concat dir (filename ~seed ~index) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (case_contents ~seed ~index));
      path)
