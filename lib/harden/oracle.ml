(** Differential oracle — see the interface for the tiers.

    The pipeline runs staged (groups 1–3, then 4–5) exactly as
    [Pipeline.compile] would, so the interpreter tier can execute the
    intermediate module through the registered [csl_stencil] handler
    before lowering continues to the fabric program. *)

module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp
module Pass = Wsc_ir.Pass
module Printer = Wsc_ir.Printer
module Parser = Wsc_ir.Parser
module Pipeline = Wsc_core.Pipeline

type failure =
  | Pass_crash of { pass : string; msg : string }
  | Roundtrip of { pass : string; msg : string }
  | Mismatch of { tier : string; diff : float }
  | Multiwafer of { wafers : string; diff : float }
  | Mwfault of { kind : string; wafers : string; diff : float }
  | Crash of { stage : string; msg : string }

let failure_key = function
  | Pass_crash { pass; _ } -> "pass-crash:" ^ pass
  | Roundtrip { pass; _ } -> "roundtrip:" ^ pass
  | Mismatch { tier; _ } -> "mismatch:" ^ tier
  | Multiwafer { wafers; _ } -> "multiwafer:" ^ wafers
  | Mwfault { kind; _ } -> "mwfaults:" ^ kind
  | Crash { stage; _ } -> "crash:" ^ stage

let failure_to_string = function
  | Pass_crash { pass; msg } -> Printf.sprintf "pass %s crashed: %s" pass msg
  | Roundtrip { pass; msg } -> Printf.sprintf "round-trip after %s: %s" pass msg
  | Mismatch { tier; diff } ->
      Printf.sprintf "%s tier disagrees with the reference: max |diff| = %.3e"
        tier diff
  | Multiwafer { wafers; diff } ->
      Printf.sprintf
        "%s-wafer co-simulation is not bit-identical to the single-wafer \
         fabric: max |diff| = %.3e"
        wafers diff
  | Mwfault { kind; wafers; diff } ->
      Printf.sprintf
        "%s-wafer co-simulation under %s faults did not recover \
         bit-identically: max |diff| = %.3e"
        wafers kind diff
  | Crash { stage; msg } -> Printf.sprintf "%s stage crashed: %s" stage msg

type report = {
  failure : failure option;
  ir_before : string option;
  ir_after : string option;
}

let ok (r : report) : bool = r.failure = None
let tolerance = 1e-4

(* ------------------------------------------------------------------ *)
(* the deliberately wrong pass (test-only)                             *)
(* ------------------------------------------------------------------ *)

(** Perturbs the first [arith.constant] float in the module — a stand-in
    for a real miscompile, used to prove the harness catches one. *)
let bug_pass : Pass.t =
  Pass.make_inplace "harden-test-bug" (fun m ->
      let hit = ref false in
      Wsc_ir.Ir.walk_op
        (fun op ->
          if (not !hit) && op.Wsc_ir.Ir.opname = "arith.constant" then
            match Wsc_ir.Ir.attr op "value" with
            | Some (Wsc_ir.Ir.Float_attr v) ->
                Wsc_ir.Ir.set_attr op "value" (Wsc_ir.Ir.Float_attr (v +. 0.5));
                hit := true
            | _ -> ())
        m)

(* ------------------------------------------------------------------ *)
(* round-trip fixpoint hook                                            *)
(* ------------------------------------------------------------------ *)

(** Raised out of the [on_ir] hook (which propagates unwrapped). *)
exception Roundtrip_exn of string * string * string  (** pass, msg, printed IR *)

let roundtrip_hook (last : (string * string) ref) (pass : string)
    (m : Wsc_ir.Ir.op) : unit =
  let s1 = Printer.op_to_string m in
  (match Parser.parse_string s1 with
  | exception Parser.Parse_error (_, msg) ->
      raise (Roundtrip_exn (pass, "printed IR does not parse back: " ^ msg, s1))
  | exception e ->
      raise
        (Roundtrip_exn
           (pass, "printed IR does not parse back: " ^ Printexc.to_string e, s1))
  | m2 ->
      let s2 = Printer.op_to_string m2 in
      if not (String.equal s1 s2) then
        raise (Roundtrip_exn (pass, "print->parse->print is not a fixpoint", s1)));
  last := (pass, s1)

let run_stage ~(last : (string * string) ref) (passes : Pass.t list)
    (m : Wsc_ir.Ir.op) : Wsc_ir.Ir.op =
  let options =
    { Pass.default_options with verify_each = true; on_ir = Some (roundtrip_hook last) }
  in
  Pass.run_pipeline ~options passes m

(* ------------------------------------------------------------------ *)
(* the check                                                           *)
(* ------------------------------------------------------------------ *)

(** Freshly initialized state grids (same init as the CLI / tests). *)
let init_grids (p : P.t) : I.grid list =
  let ft = P.field_type p in
  List.map
    (fun _ ->
      let g3 = I.grid_of_typ ft in
      I.init_grid g3;
      I.retensorize_grid g3)
    p.P.state

(** Max |difference| across all state grids (the reference grids are 3-D
    scalar, the others 2-D tensor with the identical flattened layout). *)
let max_diff (refs : I.grid list) (outs : I.grid list) : float =
  List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff refs outs)

(* ------------------------------------------------------------------ *)
(* the multi-wafer tier                                                *)
(* ------------------------------------------------------------------ *)

module MW = Wsc_multiwafer.Cosim

(** Run the program decomposed over [wafers] and demand the gathered
    fields are *bit-identical* (not merely within tolerance) to the
    single-wafer fabric's drained fields [outs]. *)
let multiwafer_tier ~(machine : Wsc_wse.Machine.t)
    ~(engine : Wsc_serve.Engine.t) (p : P.t) (outs : I.grid list)
    (wafers : int * int) : failure option =
  let wx, wy = wafers in
  let name = Printf.sprintf "%dx%d" wx wy in
  match MW.run ~engine ~machine ~wafers p with
  | exception e ->
      Some (Crash { stage = "multiwafer-" ^ name; msg = Printexc.to_string e })
  | r ->
      if MW.grids_bit_identical outs r.MW.grids then None
      else Some (Multiwafer { wafers = name; diff = max_diff outs r.MW.grids })

(** The wafer grids worth fuzzing: the degenerate 1×1 (the decomposition
    round-trips through the engine but nothing is sliced) and 2×1 when
    the interior is wide enough to slice. *)
let multiwafer_grids (p : P.t) : (int * int) list =
  let nx, _, _ = p.P.extents in
  (1, 1) :: (if nx >= 2 then [ (2, 1) ] else [])

module Wf = Wsc_faults.Faults.Wafer

(** The chaos tier: co-simulate at 2×1 under a low-rate seeded wafer
    fault injector with the resilience protocol on, and demand the
    *recovered* fields are still bit-identical to the single-wafer
    fabric.  [Loss] is excluded: a permanently lost wafer degrades the
    run by design, which is not a miscompile. *)
let mwfaults_tier ~(machine : Wsc_wse.Machine.t)
    ~(engine : Wsc_serve.Engine.t) (p : P.t) (outs : I.grid list) :
    failure option =
  let nx, _, _ = p.P.extents in
  if nx < 2 then None
  else
    List.fold_left
      (fun acc kind ->
        match acc with
        | Some _ -> acc
        | None -> (
            let kname = Wf.kind_to_string kind in
            let faults =
              Wf.create (Wf.config_for kind ~rate:0.1 ~seed:1 ~resilient:true)
            in
            match MW.run ~engine ~machine ~faults ~wafers:(2, 1) p with
            | exception e ->
                Some
                  (Crash
                     {
                       stage = "mwfaults-" ^ kname;
                       msg = Printexc.to_string e;
                     })
            | r ->
                let degraded =
                  match r.MW.recovery with
                  | Some rc -> rc.MW.degraded
                  | None -> false
                in
                if degraded then acc
                else if MW.grids_bit_identical outs r.MW.grids then None
                else
                  Some
                    (Mwfault
                       {
                         kind = kname;
                         wafers = "2x1";
                         diff = max_diff outs r.MW.grids;
                       })))
      None
      [ Wf.Halo_drop; Wf.Halo_corrupt; Wf.Crash ]

let check ?(inject_bug = false) ?(multiwafer = true) ?(mwfaults = false)
    ?(machine = Wsc_wse.Machine.wse3)
    ?(options = Pipeline.default_options) (p : P.t) : report =
  Wsc_core.Csl_stencil_interp.register ();
  let fail ?ir_before ?ir_after f =
    { failure = Some f; ir_before; ir_after }
  in
  match P.run_reference p with
  | exception e ->
      fail (Crash { stage = "reference"; msg = Printexc.to_string e })
  | refs -> (
      match P.compile p with
      | exception e ->
          fail (Crash { stage = "stencil-compile"; msg = Printexc.to_string e })
      | m0 -> (
          let last = ref ("stencil-compile", Printer.op_to_string m0) in
          let o = options in
          let stage1 =
            Pipeline.frontend_passes o
            @ (if inject_bug then [ bug_pass ] else [])
            @ Pipeline.middle_passes o
          in
          match run_stage ~last stage1 m0 with
          | exception Pass.Pass_failed (pass, exn) ->
              fail ~ir_before:(snd !last)
                (Pass_crash { pass; msg = Printexc.to_string exn })
          | exception Roundtrip_exn (pass, msg, after) ->
              fail ~ir_before:(snd !last) ~ir_after:after (Roundtrip { pass; msg })
          | m1 -> (
              let grids = init_grids p in
              match
                I.run_func m1 ~name:"main" (List.map (fun g -> I.Rgrid g) grids)
              with
              | exception e ->
                  fail ~ir_before:(Printer.op_to_string m1)
                    (Crash { stage = "interp"; msg = Printexc.to_string e })
              | _ -> (
                  let diff = max_diff refs grids in
                  if Float.is_nan diff || diff >= tolerance then
                    fail ~ir_before:(Printer.op_to_string m1)
                      (Mismatch { tier = "interp"; diff })
                  else
                    match run_stage ~last (Pipeline.backend_passes o) m1 with
                    | exception Pass.Pass_failed (pass, exn) ->
                        fail ~ir_before:(snd !last)
                          (Pass_crash { pass; msg = Printexc.to_string exn })
                    | exception Roundtrip_exn (pass, msg, after) ->
                        fail ~ir_before:(snd !last) ~ir_after:after
                          (Roundtrip { pass; msg })
                    | m2 -> (
                        match
                          let h = Wsc_wse.Host.simulate machine m2 (init_grids p) in
                          Wsc_wse.Host.read_all h
                        with
                        | exception e ->
                            fail ~ir_before:(Printer.op_to_string m2)
                              (Crash { stage = "fabric"; msg = Printexc.to_string e })
                        | outs ->
                            let diff = max_diff refs outs in
                            if Float.is_nan diff || diff >= tolerance then
                              fail ~ir_before:(Printer.op_to_string m2)
                                (Mismatch { tier = "fabric"; diff })
                            else
                              (* final tier: the multi-wafer path must
                                 reproduce the single-wafer fabric bit
                                 for bit (fuzzer programs are always
                                 decomposable by construction) *)
                              (* the co-simulated wafers must compile
                                 under the same pipeline options as the
                                 single-wafer fabric they are compared
                                 against bit for bit *)
                              let engine =
                                Wsc_serve.Engine.create ~options ()
                              in
                              let mw_failure =
                                if not multiwafer then None
                                else
                                  List.fold_left
                                    (fun acc wafers ->
                                      match acc with
                                      | Some _ -> acc
                                      | None ->
                                          multiwafer_tier ~machine ~engine p
                                            outs wafers)
                                    None (multiwafer_grids p)
                              in
                              let mw_failure =
                                match mw_failure with
                                | Some _ -> mw_failure
                                | None ->
                                    if mwfaults then
                                      mwfaults_tier ~machine ~engine p outs
                                    else None
                              in
                              (match mw_failure with
                              | Some f ->
                                  fail ~ir_before:(Printer.op_to_string m2) f
                              | None ->
                                  { failure = None; ir_before = None; ir_after = None }))))))
