(** Corpus emission: materialize fuzzer cases as standalone [.mlir]
    files — [wsc fuzz --emit-corpus DIR].

    Each case is {!Fuzz.generate}d, compiled to stencil-dialect IR and
    printed; the file is the printed module preceded by a provenance
    comment stamping the seed and index.  Because the fuzzer is a pure
    hash of [(seed, index)] and the printer is deterministic, emitting
    the same seed twice writes byte-identical files — the CI smoke leg
    and the serve bench both rely on this to build reproducible request
    streams. *)

(** One emitted file: [fuzz-s<seed>-c<index>.mlir]. *)
val filename : seed:int -> index:int -> string

(** The file's full contents (provenance comment + printed module). *)
val case_contents : seed:int -> index:int -> string

(** [emit ~dir ~seed ~count] writes cases [0 .. count-1] into [dir]
    (created if missing); returns the paths in index order. *)
val emit : dir:string -> seed:int -> count:int -> string list
