(** WSE performance measurement: run the actually-compiled program on the
    fabric simulator on a small proxy grid for two iteration counts, take
    the steady-state per-iteration cycles, and extrapolate to the
    requested PE grid (valid because the program is SPMD with
    bounded-radius neighbour communication). *)

module B = Wsc_benchmarks.Benchmarks
module Machine = Wsc_wse.Machine

type measurement = {
  bench : string;
  machine : string;
  size : B.size;
  nx : int;
  ny : int;
  nz : int;
  iterations : int;
  cycles_per_iter : float;  (** steady-state, slowest PE *)
  time_to_solution_s : float;
  gpts_per_s : float;  (** the paper's GPts/s a.k.a. GCells/s *)
  tflops : float;
  pct_of_peak : float;
  flops_per_pt : float;  (** measured on the simulator *)
  mem_bytes_per_pt : float;  (** SRAM traffic of the DSD builtins *)
  fabric_bytes_per_pt : float;  (** injected wavelet payload *)
  tasks_per_pe_per_iter : float;
  chunks : int;  (** communication chunks the compiler chose *)
}

(** Extent of the square proxy grid the measurement simulates. *)
val proxy_extent : int

(** Compile and simulate [iters] timesteps of a benchmark on an
    [extent]x[extent] proxy grid (default {!proxy_extent}) with the real
    z extent, under the chosen fabric driver; returns the finished host
    handle and the chunk count the compiler chose.  This is the
    proxy-grid driver behind {!measure}, exposed for the scheduler
    microbenchmark. *)
val simulate_proxy :
  ?pipeline_options:Wsc_core.Pipeline.options ->
  ?driver:Wsc_wse.Fabric.driver ->
  ?extent:int ->
  B.descr -> machine:Machine.t -> iters:int -> Wsc_wse.Host.t * int

(** Like {!simulate_proxy}, but returns the elapsed cycles, the
    aggregated PE stats and the chunk count instead of the host handle.
    The raw primitive behind {!measure}; the autotuner memoizes calls to
    it so each distinct (program, options, iters) proxy run executes
    once per tuning session. *)
val simulate_iters :
  ?pipeline_options:Wsc_core.Pipeline.options ->
  ?driver:Wsc_wse.Fabric.driver ->
  ?extent:int ->
  B.descr ->
  machine:Machine.t ->
  iters:int ->
  float * Wsc_wse.Fabric.pe_stats * int

(** Steady-state cycle prediction for [iterations] timesteps at [size]:
    two short runs at the same size (so the same z extent), per-iteration
    delta, scaled.  Comparable with a full simulation of that exact grid;
    feeds the trace deviation report. *)
val predict_cycles :
  ?pipeline_options:Wsc_core.Pipeline.options ->
  ?driver:Wsc_wse.Fabric.driver ->
  B.descr -> machine:Machine.t -> size:B.size -> iterations:int -> float

val measure :
  ?pipeline_options:Wsc_core.Pipeline.options ->
  ?driver:Wsc_wse.Fabric.driver ->
  machine:Machine.t -> size:B.size -> B.descr -> measurement

val pp_measurement : Format.formatter -> measurement -> unit
