(** WSE performance measurement.

    Throughput for the paper's problem sizes is obtained by running the
    actually-compiled program on the fabric simulator.  Because the
    program is SPMD and communication is bounded-radius nearest-neighbour,
    an interior PE's steady-state per-iteration cycle count is independent
    of the grid extent; we therefore simulate a small proxy grid with the
    benchmark's real z extent for two iteration counts and take the
    difference, then scale to the requested PE grid (the standard
    weak-scaling extrapolation for wafer SPMD codes).

    Reported metrics mirror the paper: GPts/s (a.k.a. GCells/s) over the
    whole grid, TFLOP/s, and time to solution. *)

module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp
module Machine = Wsc_wse.Machine

type measurement = {
  bench : string;
  machine : string;
  size : B.size;
  nx : int;
  ny : int;
  nz : int;
  iterations : int;
  cycles_per_iter : float;  (** steady-state, slowest-PE *)
  time_to_solution_s : float;
  gpts_per_s : float;
  tflops : float;
  pct_of_peak : float;
  flops_per_pt : float;  (** measured on the simulator *)
  mem_bytes_per_pt : float;
  fabric_bytes_per_pt : float;
  tasks_per_pe_per_iter : float;
  chunks : int;
}

let proxy_extent = 6

(** Simulate the compiled program for [iters] timesteps on a proxy grid
    of [extent]x[extent] PEs with the benchmark's real z extent; returns
    the host handle after completion plus the chunk count the compiler
    chose.  Exposed (with [driver]) for the scheduler microbenchmark. *)
let simulate_proxy ?(pipeline_options = Wsc_core.Pipeline.default_options)
    ?driver ?(extent = proxy_extent) (d : B.descr) ~(machine : Machine.t)
    ~(iters : int) : Wsc_wse.Host.t * int =
  let size = B.Proxy (extent, extent) in
  let p = d.make_n size iters in
  let m = Wsc_core.Pipeline.compile ~options:pipeline_options (P.compile p) in
  let ft = P.field_type p in
  let init =
    List.map
      (fun _ ->
        let g3 = I.grid_of_typ ft in
        I.init_grid g3;
        I.retensorize_grid g3)
      p.P.state
  in
  let h = Wsc_wse.Host.simulate ?driver machine m init in
  let _, program = Wsc_core.Pipeline.modules_of m in
  let chunks =
    match Wsc_ir.Ir.find_op_by_name "csl_stencil.apply" m with
    | Some _ -> 0 (* already lowered away *)
    | None -> (
        (* recover from the communicate config *)
        match
          Wsc_ir.Ir.find_op
            (fun o ->
              o.Wsc_ir.Ir.opname = "csl.member_call"
              && Wsc_ir.Ir.has_attr o "config")
            program
        with
        | Some o -> (
            match Wsc_ir.Ir.attr_exn o "config" with
            | Wsc_ir.Ir.Dict_attr dict -> (
                match List.assoc_opt "num_chunks" dict with
                | Some (Wsc_ir.Ir.Int_attr n) -> n
                | _ -> 1)
            | _ -> 1)
        | None -> 1)
  in
  (h, chunks)

(** Simulate for [iters] timesteps on the proxy grid; returns elapsed
    cycles and aggregate stats.  The raw primitive behind {!measure} and
    the autotuner's memoized candidate evaluation. *)
let simulate_iters ?pipeline_options ?driver ?extent (d : B.descr)
    ~(machine : Machine.t) ~(iters : int) :
    float * Wsc_wse.Fabric.pe_stats * int =
  let h, chunks =
    simulate_proxy ?pipeline_options ?driver ?extent d ~machine ~iters
  in
  (Wsc_wse.Fabric.elapsed_cycles h.sim, Wsc_wse.Fabric.total_stats h.sim, chunks)

(** Analytic cycle prediction for a full run at [size]: steady-state
    per-iteration cycles measured by two short runs of the same program
    at the same size, scaled to [iterations].  Unlike {!measure} the
    short runs use [size]'s own extents (including its z extent), so the
    prediction is directly comparable with a simulation of that exact
    grid — the basis of the trace deviation report. *)
let predict_cycles ?(pipeline_options = Wsc_core.Pipeline.default_options)
    ?driver (d : B.descr) ~(machine : Machine.t) ~(size : B.size)
    ~(iterations : int) : float =
  let run iters =
    let p = d.make_n size iters in
    let m = Wsc_core.Pipeline.compile ~options:pipeline_options (P.compile p) in
    let ft = P.field_type p in
    let init =
      List.map
        (fun _ ->
          let g3 = I.grid_of_typ ft in
          I.init_grid g3;
          I.retensorize_grid g3)
        p.P.state
    in
    let h = Wsc_wse.Host.simulate ?driver machine m init in
    Wsc_wse.Fabric.elapsed_cycles h.sim
  in
  let i1 = 2 and i2 = 4 in
  let c1 = run i1 in
  if iterations <= 1 then c1 /. float_of_int i1
  else
    let c2 = run i2 in
    (c2 -. c1) /. float_of_int (i2 - i1) *. float_of_int iterations

(** Steady-state measurement via two runs. *)
let measure ?(pipeline_options = Wsc_core.Pipeline.default_options) ?driver
    ~(machine : Machine.t) ~(size : B.size) (d : B.descr) : measurement =
  let nx, ny = B.xy_extents size in
  let nz = match size with B.Tiny -> 6 | _ -> d.z_extent in
  let iterations = d.default_iterations in
  let i1 = 2 and i2 = 4 in
  let c1, _, _ = simulate_iters ~pipeline_options ?driver d ~machine ~iters:i1 in
  let c2, stats2, chunks =
    simulate_iters ~pipeline_options ?driver d ~machine ~iters:i2
  in
  let cycles_per_iter = (c2 -. c1) /. float_of_int (i2 - i1) in
  (* handle single-shot benchmarks (UVKBE): startup-inclusive cost *)
  let cycles_per_iter =
    if iterations <= 1 then c1 /. float_of_int i1 else cycles_per_iter
  in
  let n_proxy_pes = float_of_int (proxy_extent * proxy_extent) in
  let proxy_points = n_proxy_pes *. float_of_int nz in
  let proxy_iters = float_of_int i2 in
  let flops_per_pt = stats2.flops /. (proxy_points *. proxy_iters) in
  let mem_bytes_per_pt = stats2.mem_bytes /. (proxy_points *. proxy_iters) in
  let fabric_bytes_per_pt =
    (* both injected and drained wavelets cross the PE's ramp *)
    4.0
    *. float_of_int (stats2.elems_sent + stats2.elems_drained)
    /. (proxy_points *. proxy_iters)
  in
  let tasks_per_pe_per_iter =
    float_of_int stats2.task_activations /. n_proxy_pes /. proxy_iters
  in
  let time = float_of_int iterations *. cycles_per_iter /. machine.clock_hz in
  let points = float_of_int nx *. float_of_int ny *. float_of_int nz in
  let gpts = points *. float_of_int iterations /. time /. 1e9 in
  let flops_total = points *. float_of_int iterations *. flops_per_pt in
  let tflops = flops_total /. time /. 1e12 in
  let peak =
    float_of_int (nx * ny) *. machine.flops_per_pe_per_cycle *. machine.clock_hz
  in
  {
    bench = d.id;
    machine = machine.name;
    size;
    nx;
    ny;
    nz;
    iterations;
    cycles_per_iter;
    time_to_solution_s = time;
    gpts_per_s = gpts;
    tflops;
    pct_of_peak = 100.0 *. flops_total /. time /. peak;
    flops_per_pt;
    mem_bytes_per_pt;
    fabric_bytes_per_pt;
    tasks_per_pe_per_iter;
    chunks;
  }

let pp_measurement fmt (m : measurement) =
  Format.fprintf fmt
    "%-10s %-5s %-7s %4dx%-4d z=%-4d  %8.2f GPts/s  %7.1f TFLOP/s  %5.1f%% peak  \
     %6.0f cyc/it  %d chunk(s)"
    m.bench m.machine
    (B.size_to_string m.size)
    m.nx m.ny m.nz m.gpts_per_s m.tflops m.pct_of_peak m.cycles_per_iter m.chunks
