(** Fault injection for the WSE fabric simulator: a seeded, fully
    deterministic source of transient link faults (wavelet drop /
    corruption), PE stalls, permanent PE halts and router backpressure
    spikes, plus the opt-in resilience-protocol parameters the simulated
    communication layer uses to detect and recover from them.

    Mirrors {!Wsc_trace.Trace.sink}: the {!null} injector costs one
    branch per injection site and keeps every fault-free run
    bit-identical to an uninstrumented simulator.

    Determinism: every decision is a pure hash of the campaign seed and
    the site's own coordinates (PE position, exchange id, chunk index,
    retransmission attempt, ...) — there is no mutable PRNG stream — so
    decisions are independent of the order in which the driver visits
    PEs.  A campaign therefore replays bit-identically from its seed
    under the polling, event-driven and domain-parallel fabric drivers
    (the bookkeeping tables are mutex-protected so the parallel
    driver's domains can share one injector). *)

(** Which fault mechanism a decision or an event belongs to. *)
type kind =
  | Drop  (** transient loss of one chunk's wavelets on one link *)
  | Corrupt  (** transient payload corruption of one chunk on one link *)
  | Stall  (** a PE freezes for a fixed number of cycles *)
  | Halt  (** a PE stops executing permanently *)
  | Backpressure  (** a router delays one chunk's delivery *)

val kind_to_string : kind -> string
val all_kinds : kind list

(** Detection & recovery parameters of the simulated comms protocol:
    per-wavelet sequence numbers and checksums let the receiver detect
    corruption, a receiver timeout detects loss, and each retransmission
    attempt backs off exponentially (bounded by [max_backoff_cycles]) up
    to [max_retries] before the receiver gives up and marks its data
    invalid. *)
type resilience = {
  timeout_cycles : float;  (** first receiver timeout, in cycles *)
  backoff_factor : float;  (** timeout multiplier per failed attempt *)
  max_backoff_cycles : float;  (** backoff cap *)
  max_retries : int;  (** retransmissions before giving up *)
  halt_timeout_cycles : float;
      (** how long a receiver waits on a silent neighbour before
          declaring it halted and degrading gracefully *)
}

val default_resilience : resilience

type config = {
  seed : int;
  drop_rate : float;  (** per chunk-column delivery, per attempt *)
  corrupt_rate : float;  (** per chunk-column delivery, per attempt *)
  stall_rate : float;  (** per task dispatch *)
  stall_cycles : float;
  halt_rate : float;  (** per task dispatch *)
  backpressure_rate : float;  (** per chunk-column delivery *)
  backpressure_cycles : float;
  resilience : resilience option;  (** [None]: faults land undetected *)
}

(** All rates zero; seed 0; no resilience. *)
val default_config : config

(** [config_for kind ~rate ~seed ~resilience] — a campaign cell: only
    [kind]'s rate is set to [rate], everything else is fault-free. *)
val config_for : kind -> rate:float -> seed:int -> resilient:bool -> config

type stats = {
  mutable drops : int;
  mutable corrupts : int;
  mutable stalls : int;
  mutable halts : int;
  mutable backpressures : int;
  mutable retries : int;  (** retransmissions triggered by the protocol *)
  mutable giveups : int;  (** deliveries abandoned after [max_retries] *)
  mutable halt_timeouts : int;  (** exchanges degraded past a halted PE *)
  mutable recovery_cycles : float;
      (** total cycles spent on timeouts, retransmissions and halt
          detection, summed over all PEs *)
}

type injector

type t = Null | Injector of injector

val null : t

(** A fresh injector for one simulation run.  Two injectors created from
    equal configs make identical decisions. *)
val create : config -> t

val enabled : t -> bool
val config : t -> config  (** @raise Invalid_argument on [Null] *)

val stats : t -> stats  (** zeroes on [Null] *)

(** Run [f] under the injector's bookkeeping lock (on [Null], just
    [f ()]).  The fabric simulator wraps its updates of the {!stats}
    counters in this so the parallel driver's domains never race on
    them.  [f] must not call back into the locking bookkeeping
    accessors below (the lock is not reentrant).  Decisions need no
    lock — they are pure in seed and site. *)
val locked : t -> (unit -> 'a) -> 'a

(** {1 Decisions (pure in seed and site coordinates)} *)

(** Uniform draw in [0, 1) for an explicit site key; exposed for tests. *)
val uniform : seed:int -> site:int -> keys:int list -> float

(** Next value of the per-PE dispatch counter — the activation index the
    stall/halt decisions key on.  Per-PE task order is deterministic, so
    the counter sequence (and hence every decision) is identical under
    both fabric drivers. *)
val next_dispatch : t -> x:int -> y:int -> int

(** Should this task dispatch stall? (site: PE + per-PE activation no.) *)
val stall_here : t -> x:int -> y:int -> activation:int -> bool

(** Should this task dispatch halt the PE permanently? *)
val halt_here : t -> x:int -> y:int -> activation:int -> bool

(** Should this chunk-column delivery suffer a backpressure spike? *)
val backpressure_here :
  t -> apply:int -> seq:int -> chunk:int -> input:int ->
  sx:int -> sy:int -> dx:int -> dy:int -> bool

(** Is attempt [attempt] of this chunk-column delivery dropped on the
    link? (attempt 0 is the original transmission) *)
val drop_here :
  t -> apply:int -> seq:int -> chunk:int -> input:int ->
  sx:int -> sy:int -> dx:int -> dy:int -> attempt:int -> bool

(** Is attempt [attempt] of this chunk-column delivery corrupted? *)
val corrupt_here :
  t -> apply:int -> seq:int -> chunk:int -> input:int ->
  sx:int -> sy:int -> dx:int -> dy:int -> attempt:int -> bool

(** Deterministic payload perturbation for a corrupted delivery:
    the element index to damage (within [len]) and the additive noise. *)
val corruption :
  t -> apply:int -> seq:int -> chunk:int -> input:int ->
  sx:int -> sy:int -> dx:int -> dy:int -> attempt:int -> len:int ->
  int * float

(** Receiver timeout before retransmission [attempt] (1-based), with
    exponential backoff bounded by [max_backoff_cycles]. *)
val backoff : resilience -> attempt:int -> float

(** {1 Protocol bookkeeping (shared by both fabric drivers)} *)

(** Per-wavelet checksum of a payload slice, as the simulated protocol
    computes it on both ends of a link. *)
val checksum : float array -> off:int -> len:int -> int64

(** Mark / query a permanently halted PE. *)
val record_halt : t -> x:int -> y:int -> unit

val is_halted : t -> x:int -> y:int -> bool
val halted_count : t -> int

(** Mark / query a PE whose readback data is invalid (it consumed
    substituted or unrecoverable data, or data derived from such). *)
val taint : t -> x:int -> y:int -> unit

val is_tainted : t -> x:int -> y:int -> bool

(** Mark / query a send the resilience layer has given up waiting for
    (its sender halted): receivers substitute zeroes and carry on. *)
val skip_send : t -> apply:int -> seq:int -> x:int -> y:int -> unit

val is_skipped : t -> apply:int -> seq:int -> x:int -> y:int -> bool

(** Mark / query a send whose payload was produced by a tainted PE, so
    taint propagates to every receiver that reduces it. *)
val taint_send : t -> apply:int -> seq:int -> x:int -> y:int -> unit

val is_tainted_send : t -> apply:int -> seq:int -> x:int -> y:int -> bool

(** {1 Wafer-granularity sites}

    The multi-wafer co-simulator's fault models, one level up from the
    intra-wafer sites above: inter-wafer halo exchanges dropped or
    corrupted on the interconnect, whole-wafer transient crashes and
    permanent losses, and interconnect latency spikes.  Same
    discipline — a two-constructor injector whose [Null] arm costs one
    branch per site, and every decision a pure SplitMix64 hash of
    [(seed, epoch, wafer, direction, attempt)] — so a fault-free
    multiwafer run stays bit-identical to an uninstrumented one and a
    campaign replays byte-for-byte from its seed. *)
module Wafer : sig
  type kind =
    | Halo_drop  (** an inter-wafer halo transfer never arrives *)
    | Halo_corrupt  (** one element of a halo transfer is damaged *)
    | Crash  (** a wafer dies mid-epoch; a respawn can recover it *)
    | Loss  (** a wafer dies permanently: every retry fails *)
    | Spike  (** an interconnect latency spike (charges time only) *)

  val kind_to_string : kind -> string
  val all_kinds : kind list

  (** Recovery parameters of the co-simulator's checkpoint/restart
      protocol: how often the gathered global state is snapshotted, and
      how many times one epoch may be re-executed before the offending
      wafer is declared dead and the run degrades gracefully. *)
  type resilience = { checkpoint_cadence : int; max_retries : int }

  val default_resilience : resilience

  type config = {
    seed : int;
    halo_drop_rate : float;  (** per (epoch, wafer, direction, attempt) *)
    halo_corrupt_rate : float;  (** per (epoch, wafer, direction, attempt) *)
    crash_rate : float;  (** per (epoch, wafer, attempt) *)
    loss_rate : float;  (** per (epoch, wafer) — sticky once fired *)
    spike_rate : float;  (** per (epoch, wafer) *)
    spike_factor : float;  (** exchange-time multiplier on a spike *)
    resilience : resilience option;  (** [None]: faults land undetected *)
  }

  (** All rates zero; seed 0; no resilience. *)
  val default_config : config

  (** One campaign cell: only [kind]'s rate is [rate]. *)
  val config_for : kind -> rate:float -> seed:int -> resilient:bool -> config

  type stats = {
    mutable halo_drops : int;
    mutable halo_corrupts : int;
    mutable crashes : int;
    mutable losses : int;  (** lost-wafer decisions consulted, not wafers *)
    mutable spikes : int;
    mutable detected : int;  (** checksum / liveness detections *)
  }

  type injector
  type t = Null | Injector of injector

  val null : t

  (** Two injectors created from equal configs make identical
      decisions. *)
  val create : config -> t

  val enabled : t -> bool

  (** @raise Invalid_argument on [Null] *)
  val config : t -> config

  (** Zeroes on [Null]. *)
  val stats : t -> stats

  (** Does wafer [wafer] crash during execution [attempt] of [epoch]?
      Transient: the next attempt draws a fresh decision. *)
  val crash_here : t -> epoch:int -> wafer:int -> attempt:int -> bool

  (** Is wafer [wafer] permanently lost by [epoch]?  No attempt key, and
      sticky: once the decision fires at some epoch [e] it holds for
      every [epoch >= e] and every replay. *)
  val lost_here : t -> epoch:int -> wafer:int -> bool

  (** Does the halo arriving at [wafer] from direction [dir] get dropped
      (resp. corrupted) during execution [attempt] of [epoch]? *)
  val drop_halo : t -> epoch:int -> wafer:int -> dir:int -> attempt:int -> bool

  val corrupt_halo :
    t -> epoch:int -> wafer:int -> dir:int -> attempt:int -> bool

  (** Deterministic damage for a corrupted halo: the element index to
      perturb (within [len]) and the additive noise. *)
  val halo_corruption :
    t -> epoch:int -> wafer:int -> dir:int -> attempt:int -> len:int ->
    int * float

  (** Does wafer [wafer]'s exchange suffer a latency spike this epoch? *)
  val spike_here : t -> epoch:int -> wafer:int -> bool

  (** Count one checksum / liveness detection (thread-safe). *)
  val record_detection : t -> unit
end
