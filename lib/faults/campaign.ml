(** Fault-injection campaign runner: see the interface for the model.

    Each cell compiles nothing new — the benchmark is compiled once, the
    reference is interpreted once, the fault-free baseline is simulated
    once per campaign — so the sweep cost is one fabric simulation per
    (kind, rate, seed) cell. *)

module Faults = Wsc_faults.Faults
module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp
module Fabric = Wsc_wse.Fabric
module Host = Wsc_wse.Host
module Machine = Wsc_wse.Machine
module Json = Wsc_trace.Json

type cell = {
  kind : Faults.kind;
  rate : float;
  seed : int;
  completed : bool;
  survived : bool;
  divergence : float;
  valid_pes : int;
  total_pes : int;
  elapsed_cycles : float;
  overhead_cycles : float;
  recovery_cycles : float;
  injected : int;
  retries : int;
  giveups : int;
  halt_timeouts : int;
  error : string option;
}

type report = {
  bench : string;
  machine : string;
  size : string;
  iterations : int;
  driver : string;
  resilient : bool;
  baseline_cycles : float;
  cells : cell list;
}

let survival_rate (r : report) : float =
  match r.cells with
  | [] -> 1.0
  | cs ->
      float_of_int (List.length (List.filter (fun c -> c.survived) cs))
      /. float_of_int (List.length cs)

(** The simulator's usual acceptance threshold vs the reference. *)
let match_tolerance = 1e-4

let driver_to_string = Fabric.driver_name

(** Freshly initialized state grids (same init as the CLI / tests). *)
let init_grids_of (p : P.t) : I.grid list =
  let ft = P.field_type p in
  List.map
    (fun _ ->
      let g3 = I.grid_of_typ ft in
      I.init_grid g3;
      I.retensorize_grid g3)
    p.P.state

(** Max |difference| vs the reference over the PEs the validity mask
    accepts; halted or tainted PEs hold substituted data by design and
    are excluded (the host reports them as affected regions instead). *)
let divergence_over_valid (valid : bool array array) (refs : I.grid list)
    (outs : I.grid list) : float =
  let width = Array.length valid in
  let height = if width = 0 then 0 else Array.length valid.(0) in
  let d = ref 0.0 in
  List.iter2
    (fun rg og ->
      for x = 0 to width - 1 do
        for y = 0 to height - 1 do
          if valid.(x).(y) then
            match (I.grid_get rg [ x; y ], I.grid_get og [ x; y ]) with
            | I.Rtensor a, I.Rtensor b when Array.length a = Array.length b ->
                Array.iteri
                  (fun i v -> d := Float.max !d (Float.abs (v -. b.(i))))
                  a
            | _ -> d := infinity
        done
      done)
    refs outs;
  !d

let run ?(driver = Fabric.Event_driven) ?(machine = Machine.wse3) ?iterations
    ?(kinds = Faults.all_kinds) ?trace ~(bench : string)
    ~(size : B.size) ~(resilient : bool) ~(rates : float list)
    ~(seeds : int list) () : report =
  let d = B.find bench in
  let p =
    match iterations with Some n -> d.B.make_n size n | None -> d.B.make size
  in
  let compiled =
    Wsc_core.Pipeline.compile ~options:Wsc_core.Pipeline.default_options
      (P.compile p)
  in
  let refs = List.map I.retensorize_grid (P.run_reference p) in
  (* fault-free baseline under the same driver: recovery overhead is
     measured against it *)
  let baseline =
    let h = Host.simulate ~driver machine compiled (init_grids_of p) in
    Fabric.elapsed_cycles h.Host.sim
  in
  let run_cell kind rate seed : cell =
    let cfg = Faults.config_for kind ~rate ~seed ~resilient in
    let faults = Faults.create cfg in
    let outcome =
      match Host.simulate ?trace ~driver ~faults machine compiled (init_grids_of p) with
      | h -> Ok h
      | exception Fabric.Sim_error msg -> Error msg
      | exception Host.Host_error msg -> Error msg
    in
    let st = Faults.stats faults in
    let injected =
      st.Faults.drops + st.Faults.corrupts + st.Faults.stalls + st.Faults.halts
      + st.Faults.backpressures
    in
    let base =
      {
        kind;
        rate;
        seed;
        completed = false;
        survived = false;
        divergence = Float.nan;
        valid_pes = 0;
        total_pes = 0;
        elapsed_cycles = Float.nan;
        overhead_cycles = Float.nan;
        recovery_cycles = st.Faults.recovery_cycles;
        injected;
        retries = st.Faults.retries;
        giveups = st.Faults.giveups;
        halt_timeouts = st.Faults.halt_timeouts;
        error = None;
      }
    in
    match outcome with
    | Error msg -> { base with error = Some msg }
    | Ok h ->
        let sim = h.Host.sim in
        let valid = Fabric.validity sim in
        let valid_pes =
          Array.fold_left
            (fun acc col ->
              Array.fold_left (fun a ok -> if ok then a + 1 else a) acc col)
            0 valid
        in
        let total_pes = sim.Fabric.width * sim.Fabric.height in
        let div = divergence_over_valid valid refs (Host.read_all h) in
        let elapsed = Fabric.elapsed_cycles sim in
        {
          base with
          completed = true;
          survived = div < match_tolerance;
          divergence = div;
          valid_pes;
          total_pes;
          elapsed_cycles = elapsed;
          overhead_cycles = elapsed -. baseline;
        }
  in
  let cells =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun rate -> List.map (fun seed -> run_cell kind rate seed) seeds)
          rates)
      kinds
  in
  {
    bench;
    machine = machine.Machine.name;
    size = B.size_to_string size;
    iterations = p.P.iterations;
    driver = driver_to_string driver;
    resilient;
    baseline_cycles = baseline;
    cells;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(** Fixed formats throughout so a replayed campaign renders the same
    bytes. *)
let div_to_string (d : float) : string =
  if Float.is_nan d then "-" else Printf.sprintf "%.3e" d

let to_string (r : report) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "fault campaign: %s on %s (%s, %d iterations, %s driver, resilience \
        %s)\n"
       r.bench r.machine r.size r.iterations r.driver
       (if r.resilient then "on" else "off"));
  Buffer.add_string buf
    (Printf.sprintf "fault-free baseline: %.0f cycles\n" r.baseline_cycles);
  Buffer.add_string buf
    (Printf.sprintf "survival: %d/%d cells (%.0f%%)\n"
       (List.length (List.filter (fun c -> c.survived) r.cells))
       (List.length r.cells)
       (100.0 *. survival_rate r));
  Buffer.add_string buf
    "kind          rate    seed  ok  injected  retries  giveups  degraded  \
     valid      overhead   recovery  divergence\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-12s  %-6g  %-4d  %-2s  %8d  %7d  %7d  %8d  %4d/%-4d %9.0f  %9.0f  %s%s\n"
           (Faults.kind_to_string c.kind)
           c.rate c.seed
           (if c.survived then "y" else "n")
           c.injected c.retries c.giveups c.halt_timeouts c.valid_pes
           c.total_pes
           (if Float.is_nan c.overhead_cycles then 0.0 else c.overhead_cycles)
           c.recovery_cycles (div_to_string c.divergence)
           (match c.error with None -> "" | Some e -> "  ! " ^ e)))
    r.cells;
  Buffer.contents buf

let cell_to_json (c : cell) : Json.t =
  Json.Obj
    [
      ("kind", Json.String (Faults.kind_to_string c.kind));
      ("rate", Json.Float c.rate);
      ("seed", Json.Int c.seed);
      ("completed", Json.Bool c.completed);
      ("survived", Json.Bool c.survived);
      ("divergence", Json.float_or_null c.divergence);
      ("valid_pes", Json.Int c.valid_pes);
      ("total_pes", Json.Int c.total_pes);
      ("elapsed_cycles", Json.float_or_null c.elapsed_cycles);
      ("overhead_cycles", Json.float_or_null c.overhead_cycles);
      ("recovery_cycles", Json.Float c.recovery_cycles);
      ("injected", Json.Int c.injected);
      ("retries", Json.Int c.retries);
      ("giveups", Json.Int c.giveups);
      ("halt_timeouts", Json.Int c.halt_timeouts);
      ( "error",
        match c.error with None -> Json.Null | Some e -> Json.String e );
    ]

(** Shared [--json] envelope (see {!Wsc_trace.Json.summary}): campaign
    parameters and campaign-level aggregates under ["config"], one cell
    per entry of ["results"]. *)
let to_json (r : report) : Json.t =
  Json.summary ~tool:"faults"
    ~config:
      [
        ("bench", Json.String r.bench);
        ("machine", Json.String r.machine);
        ("size", Json.String r.size);
        ("iterations", Json.Int r.iterations);
        ("driver", Json.String r.driver);
        ("resilient", Json.Bool r.resilient);
        ("baseline_cycles", Json.Float r.baseline_cycles);
        ("survival_rate", Json.Float (survival_rate r));
      ]
    ~results:(List.map cell_to_json r.cells)
