(** Fault-injection campaign runner: sweep fault model × rate × seed
    over a benchmark, measuring for every cell whether the run survived,
    what the recovery overhead was relative to the fault-free baseline,
    and how far the (valid part of the) result diverged from the
    sequential reference interpreter.

    Every cell is fully deterministic in its (model, rate, seed)
    coordinates — rerunning a campaign reproduces its report
    byte-for-byte (see {!Faults}). *)

module Faults = Wsc_faults.Faults

(** Outcome of one campaign cell. *)
type cell = {
  kind : Faults.kind;
  rate : float;
  seed : int;
  completed : bool;  (** the run finished (possibly degraded) *)
  survived : bool;
      (** completed and every valid PE matches the reference (max
          |difference| below the simulator's usual 1e-4 threshold) *)
  divergence : float;
      (** max |difference| vs the reference over valid PEs (nan when the
          run did not complete) *)
  valid_pes : int;  (** PEs whose readback data is valid *)
  total_pes : int;
  elapsed_cycles : float;
  overhead_cycles : float;  (** elapsed minus the fault-free baseline *)
  recovery_cycles : float;  (** cycles spent in detection & recovery *)
  injected : int;  (** faults the schedule actually fired *)
  retries : int;
  giveups : int;
  halt_timeouts : int;
  error : string option;  (** simulator error when not [completed] *)
}

type report = {
  bench : string;
  machine : string;
  size : string;
  iterations : int;
  driver : string;
  resilient : bool;
  baseline_cycles : float;  (** fault-free elapsed cycles, same driver *)
  cells : cell list;  (** in sweep order: kind, then rate, then seed *)
}

(** Fraction of cells that survived, in [0, 1]. *)
val survival_rate : report -> float

(** Run the sweep.  [trace] (optional) receives the events of every
    cell's simulation on one shared timeline — fault, retry and halt
    instants included — for Perfetto inspection.  [kinds] defaults to
    every fault model; cells are run in deterministic sweep order.
    @raise Invalid_argument for an unknown benchmark id. *)
val run :
  ?driver:Wsc_wse.Fabric.driver ->
  ?machine:Wsc_wse.Machine.t ->
  ?iterations:int ->
  ?kinds:Faults.kind list ->
  ?trace:Wsc_trace.Trace.sink ->
  bench:string ->
  size:Wsc_benchmarks.Benchmarks.size ->
  resilient:bool ->
  rates:float list ->
  seeds:int list ->
  unit ->
  report

(** Render the report as the fixed-width table the [wsc faults]
    subcommand prints; byte-identical across replays of the same
    campaign. *)
val to_string : report -> string

(** Machine-readable form of the report. *)
val to_json : report -> Wsc_trace.Json.t
