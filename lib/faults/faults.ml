(** Fault injection for the WSE fabric simulator.

    The injector is a deterministic function from (campaign seed, site
    coordinates) to fault decisions, plus the mutable bookkeeping both
    fabric drivers share (fault counters, the halted / tainted PE sets,
    the sends the resilience layer has given up on).

    Decisions are hashes, not draws from a mutable PRNG stream: a
    stateful generator would hand out different values depending on the
    order in which the driver visits PEs, and the whole point of the
    subsystem is that the polling and event-driven drivers agree
    bit-for-bit on every fault.  The hash is SplitMix64 over the seed
    and the site key (PE position, exchange id, chunk index, attempt
    number), whose output is mapped to a uniform in [0, 1). *)

type kind = Drop | Corrupt | Stall | Halt | Backpressure

let kind_to_string = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Stall -> "stall"
  | Halt -> "halt"
  | Backpressure -> "backpressure"

let all_kinds = [ Drop; Corrupt; Stall; Halt; Backpressure ]

type resilience = {
  timeout_cycles : float;
  backoff_factor : float;
  max_backoff_cycles : float;
  max_retries : int;
  halt_timeout_cycles : float;
}

let default_resilience =
  {
    timeout_cycles = 64.0;
    backoff_factor = 2.0;
    max_backoff_cycles = 1024.0;
    max_retries = 8;
    halt_timeout_cycles = 4096.0;
  }

type config = {
  seed : int;
  drop_rate : float;
  corrupt_rate : float;
  stall_rate : float;
  stall_cycles : float;
  halt_rate : float;
  backpressure_rate : float;
  backpressure_cycles : float;
  resilience : resilience option;
}

let default_config =
  {
    seed = 0;
    drop_rate = 0.0;
    corrupt_rate = 0.0;
    stall_rate = 0.0;
    stall_cycles = 200.0;
    halt_rate = 0.0;
    backpressure_rate = 0.0;
    backpressure_cycles = 400.0;
    resilience = None;
  }

let config_for (k : kind) ~(rate : float) ~(seed : int) ~(resilient : bool) :
    config =
  let base =
    {
      default_config with
      seed;
      resilience = (if resilient then Some default_resilience else None);
    }
  in
  match k with
  | Drop -> { base with drop_rate = rate }
  | Corrupt -> { base with corrupt_rate = rate }
  | Stall -> { base with stall_rate = rate }
  | Halt -> { base with halt_rate = rate }
  | Backpressure -> { base with backpressure_rate = rate }

type stats = {
  mutable drops : int;
  mutable corrupts : int;
  mutable stalls : int;
  mutable halts : int;
  mutable backpressures : int;
  mutable retries : int;
  mutable giveups : int;
  mutable halt_timeouts : int;
  mutable recovery_cycles : float;
}

let fresh_stats () =
  {
    drops = 0;
    corrupts = 0;
    stalls = 0;
    halts = 0;
    backpressures = 0;
    retries = 0;
    giveups = 0;
    halt_timeouts = 0;
    recovery_cycles = 0.0;
  }

type injector = {
  cfg : config;
  st : stats;
  lock : Mutex.t;
      (** serializes the mutable bookkeeping tables below (and, via
          {!locked}, the stats counters): the parallel fabric driver
          reaches them from several domains at once.  Decisions stay
          lock-free — they are pure hashes of seed and site. *)
  dispatches : (int * int, int ref) Hashtbl.t;  (** per-PE dispatch counts *)
  halted : (int * int, unit) Hashtbl.t;
  tainted : (int * int, unit) Hashtbl.t;
  skipped : (int * int * int * int, unit) Hashtbl.t;
  tainted_sends : (int * int * int * int, unit) Hashtbl.t;
}

type t = Null | Injector of injector

let null = Null

let create (cfg : config) : t =
  Injector
    {
      cfg;
      st = fresh_stats ();
      lock = Mutex.create ();
      dispatches = Hashtbl.create 64;
      halted = Hashtbl.create 8;
      tainted = Hashtbl.create 8;
      skipped = Hashtbl.create 8;
      tainted_sends = Hashtbl.create 8;
    }

let enabled = function Null -> false | Injector _ -> true

let config = function
  | Null -> invalid_arg "Faults.config: null injector"
  | Injector i -> i.cfg

let stats = function Null -> fresh_stats () | Injector i -> i.st

(** Run [f] under the injector's bookkeeping lock ([f ()] directly on
    [Null]).  The fabric simulator wraps its fault-counter updates in
    this so the parallel driver's domains never race on them; [f] must
    not call back into the locking accessors below. *)
let locked (t : t) (f : unit -> 'a) : 'a =
  match t with Null -> f () | Injector i -> Mutex.protect i.lock f

(* ------------------------------------------------------------------ *)
(* SplitMix64 site hashing                                             *)
(* ------------------------------------------------------------------ *)

let sm64 (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let hash ~(seed : int) ~(site : int) ~(keys : int list) : int64 =
  let step acc k = sm64 (Int64.add (Int64.logxor acc (Int64.of_int k)) golden) in
  List.fold_left step (step (step (Int64.of_int seed) site) 0x5157) keys

(* top 53 bits -> [0, 1) *)
let to_unit (h : int64) : float =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

let uniform ~seed ~site ~keys : float = to_unit (hash ~seed ~site ~keys)

(* distinct site tags per decision family *)
let site_stall = 1
let site_halt = 2
let site_backpressure = 3
let site_drop = 4
let site_corrupt = 5
let site_corruption_where = 6
let site_corruption_noise = 7

let flip (inj : injector) ~(rate : float) ~(site : int) ~(keys : int list) : bool =
  rate > 0.0 && uniform ~seed:inj.cfg.seed ~site ~keys < rate

let next_dispatch (t : t) ~x ~y : int =
  match t with
  | Null -> 0
  | Injector i ->
      Mutex.protect i.lock (fun () ->
          let r =
            match Hashtbl.find_opt i.dispatches (x, y) with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.replace i.dispatches (x, y) r;
                r
          in
          incr r;
          !r)

let stall_here (t : t) ~x ~y ~activation : bool =
  match t with
  | Null -> false
  | Injector i ->
      flip i ~rate:i.cfg.stall_rate ~site:site_stall ~keys:[ x; y; activation ]

let halt_here (t : t) ~x ~y ~activation : bool =
  match t with
  | Null -> false
  | Injector i ->
      flip i ~rate:i.cfg.halt_rate ~site:site_halt ~keys:[ x; y; activation ]

let link_keys ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy =
  [ apply; seq; chunk; input; sx; sy; dx; dy ]

let backpressure_here (t : t) ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy : bool =
  match t with
  | Null -> false
  | Injector i ->
      flip i ~rate:i.cfg.backpressure_rate ~site:site_backpressure
        ~keys:(link_keys ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy)

let drop_here (t : t) ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy ~attempt : bool =
  match t with
  | Null -> false
  | Injector i ->
      flip i ~rate:i.cfg.drop_rate ~site:site_drop
        ~keys:(link_keys ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy @ [ attempt ])

let corrupt_here (t : t) ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy ~attempt :
    bool =
  match t with
  | Null -> false
  | Injector i ->
      flip i ~rate:i.cfg.corrupt_rate ~site:site_corrupt
        ~keys:(link_keys ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy @ [ attempt ])

let corruption (t : t) ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy ~attempt ~len :
    int * float =
  match t with
  | Null -> (0, 0.0)
  | Injector i ->
      let keys =
        link_keys ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy @ [ attempt ]
      in
      let where =
        uniform ~seed:i.cfg.seed ~site:site_corruption_where ~keys
      in
      let noise = uniform ~seed:i.cfg.seed ~site:site_corruption_noise ~keys in
      let idx = min (len - 1) (int_of_float (where *. float_of_int len)) in
      (* bit-flip-like damage: a bounded, sign-varying additive error *)
      (max 0 idx, (noise *. 2.0) -. 1.0)

let backoff (r : resilience) ~(attempt : int) : float =
  let t = r.timeout_cycles *. (r.backoff_factor ** float_of_int (attempt - 1)) in
  Float.min t r.max_backoff_cycles

(* ------------------------------------------------------------------ *)
(* Protocol bookkeeping                                                *)
(* ------------------------------------------------------------------ *)

(** The simulated per-wavelet checksum: fold the payload's IEEE-754 bit
    patterns through the same mixer as the site hash.  Both ends of a
    link compute it over their copy of the slice, so corruption applied
    on the wire is detected exactly. *)
let checksum (a : float array) ~(off : int) ~(len : int) : int64 =
  let acc = ref 0x435355304b53554dL in
  for i = off to off + len - 1 do
    acc := sm64 (Int64.add (Int64.logxor !acc (Int64.bits_of_float a.(i))) golden)
  done;
  !acc

let record_halt (t : t) ~x ~y : unit =
  match t with
  | Null -> ()
  | Injector i ->
      Mutex.protect i.lock (fun () ->
          if not (Hashtbl.mem i.halted (x, y)) then begin
            Hashtbl.replace i.halted (x, y) ();
            i.st.halts <- i.st.halts + 1
          end)

let is_halted (t : t) ~x ~y : bool =
  match t with
  | Null -> false
  | Injector i -> Mutex.protect i.lock (fun () -> Hashtbl.mem i.halted (x, y))

let halted_count = function
  | Null -> 0
  | Injector i -> Mutex.protect i.lock (fun () -> Hashtbl.length i.halted)

let taint (t : t) ~x ~y : unit =
  match t with
  | Null -> ()
  | Injector i ->
      Mutex.protect i.lock (fun () -> Hashtbl.replace i.tainted (x, y) ())

let is_tainted (t : t) ~x ~y : bool =
  match t with
  | Null -> false
  | Injector i -> Mutex.protect i.lock (fun () -> Hashtbl.mem i.tainted (x, y))

let skip_send (t : t) ~apply ~seq ~x ~y : unit =
  match t with
  | Null -> ()
  | Injector i ->
      Mutex.protect i.lock (fun () ->
          Hashtbl.replace i.skipped (apply, seq, x, y) ())

let is_skipped (t : t) ~apply ~seq ~x ~y : bool =
  match t with
  | Null -> false
  | Injector i ->
      Mutex.protect i.lock (fun () -> Hashtbl.mem i.skipped (apply, seq, x, y))

let taint_send (t : t) ~apply ~seq ~x ~y : unit =
  match t with
  | Null -> ()
  | Injector i ->
      Mutex.protect i.lock (fun () ->
          Hashtbl.replace i.tainted_sends (apply, seq, x, y) ())

let is_tainted_send (t : t) ~apply ~seq ~x ~y : bool =
  match t with
  | Null -> false
  | Injector i ->
      Mutex.protect i.lock (fun () ->
          Hashtbl.mem i.tainted_sends (apply, seq, x, y))

(* ------------------------------------------------------------------ *)
(* Wafer-granularity sites                                             *)
(* ------------------------------------------------------------------ *)

module Wafer = struct
  type kind = Halo_drop | Halo_corrupt | Crash | Loss | Spike

  let kind_to_string = function
    | Halo_drop -> "halo-drop"
    | Halo_corrupt -> "halo-corrupt"
    | Crash -> "crash"
    | Loss -> "loss"
    | Spike -> "spike"

  let all_kinds = [ Halo_drop; Halo_corrupt; Crash; Loss; Spike ]

  type resilience = { checkpoint_cadence : int; max_retries : int }

  let default_resilience = { checkpoint_cadence = 2; max_retries = 8 }

  type config = {
    seed : int;
    halo_drop_rate : float;
    halo_corrupt_rate : float;
    crash_rate : float;
    loss_rate : float;
    spike_rate : float;
    spike_factor : float;
    resilience : resilience option;
  }

  let default_config =
    {
      seed = 0;
      halo_drop_rate = 0.0;
      halo_corrupt_rate = 0.0;
      crash_rate = 0.0;
      loss_rate = 0.0;
      spike_rate = 0.0;
      spike_factor = 8.0;
      resilience = None;
    }

  let config_for (k : kind) ~(rate : float) ~(seed : int) ~(resilient : bool) :
      config =
    let base =
      {
        default_config with
        seed;
        resilience = (if resilient then Some default_resilience else None);
      }
    in
    match k with
    | Halo_drop -> { base with halo_drop_rate = rate }
    | Halo_corrupt -> { base with halo_corrupt_rate = rate }
    | Crash -> { base with crash_rate = rate }
    | Loss -> { base with loss_rate = rate }
    | Spike -> { base with spike_rate = rate }

  type stats = {
    mutable halo_drops : int;
    mutable halo_corrupts : int;
    mutable crashes : int;
    mutable losses : int;
    mutable spikes : int;
    mutable detected : int;
  }

  let fresh_stats () =
    {
      halo_drops = 0;
      halo_corrupts = 0;
      crashes = 0;
      losses = 0;
      spikes = 0;
      detected = 0;
    }

  type injector = { cfg : config; st : stats; lock : Mutex.t }
  type t = Null | Injector of injector

  let null = Null

  let create (cfg : config) : t =
    Injector { cfg; st = fresh_stats (); lock = Mutex.create () }

  let enabled = function Null -> false | Injector _ -> true

  let config = function
    | Null -> invalid_arg "Faults.Wafer.config: null injector"
    | Injector i -> i.cfg

  let stats = function Null -> fresh_stats () | Injector i -> i.st

  (* site tags continue the intra-wafer numbering above *)
  let site_crash = 8
  let site_loss = 9
  let site_halo_drop = 10
  let site_halo_corrupt = 11
  let site_halo_where = 12
  let site_halo_noise = 13
  let site_spike = 14

  let flip (i : injector) ~rate ~site ~keys : bool =
    rate > 0.0 && uniform ~seed:i.cfg.seed ~site ~keys < rate

  (* the counter bumps are additive and order-independent, so campaign
     stats replay identically however the cosim's domains interleave *)
  let bump (i : injector) (f : stats -> unit) : bool =
    Mutex.protect i.lock (fun () -> f i.st);
    true

  let crash_here (t : t) ~epoch ~wafer ~attempt : bool =
    match t with
    | Null -> false
    | Injector i ->
        flip i ~rate:i.cfg.crash_rate ~site:site_crash
          ~keys:[ epoch; wafer; attempt ]
        && bump i (fun s -> s.crashes <- s.crashes + 1)

  (* permanent: no attempt key, and sticky over epochs — once a wafer is
     lost at epoch e it stays lost for every later epoch and replay *)
  let lost_here (t : t) ~epoch ~wafer : bool =
    match t with
    | Null -> false
    | Injector i ->
        i.cfg.loss_rate > 0.0
        &&
        let rec fired e =
          e >= 1
          && (flip i ~rate:i.cfg.loss_rate ~site:site_loss ~keys:[ e; wafer ]
             || fired (e - 1))
        in
        fired epoch
        && bump i (fun s -> s.losses <- s.losses + 1)

  let drop_halo (t : t) ~epoch ~wafer ~dir ~attempt : bool =
    match t with
    | Null -> false
    | Injector i ->
        flip i ~rate:i.cfg.halo_drop_rate ~site:site_halo_drop
          ~keys:[ epoch; wafer; dir; attempt ]
        && bump i (fun s -> s.halo_drops <- s.halo_drops + 1)

  let corrupt_halo (t : t) ~epoch ~wafer ~dir ~attempt : bool =
    match t with
    | Null -> false
    | Injector i ->
        flip i ~rate:i.cfg.halo_corrupt_rate ~site:site_halo_corrupt
          ~keys:[ epoch; wafer; dir; attempt ]
        && bump i (fun s -> s.halo_corrupts <- s.halo_corrupts + 1)

  let halo_corruption (t : t) ~epoch ~wafer ~dir ~attempt ~len : int * float =
    match t with
    | Null -> (0, 0.0)
    | Injector i ->
        let keys = [ epoch; wafer; dir; attempt ] in
        let where = uniform ~seed:i.cfg.seed ~site:site_halo_where ~keys in
        let noise = uniform ~seed:i.cfg.seed ~site:site_halo_noise ~keys in
        let idx = min (len - 1) (int_of_float (where *. float_of_int len)) in
        (max 0 idx, (noise *. 2.0) -. 1.0)

  let spike_here (t : t) ~epoch ~wafer : bool =
    match t with
    | Null -> false
    | Injector i ->
        flip i ~rate:i.cfg.spike_rate ~site:site_spike ~keys:[ epoch; wafer ]
        && bump i (fun s -> s.spikes <- s.spikes + 1)

  let record_detection (t : t) : unit =
    match t with
    | Null -> ()
    | Injector i ->
        Mutex.protect i.lock (fun () -> i.st.detected <- i.st.detected + 1)
end
