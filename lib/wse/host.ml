(** Host runtime: the memcpy-style interface between field data and the
    simulated fabric (paper §4.2's host interaction, simulator-side).

    Loads one z-column per PE per state grid, keeps the global Dirichlet
    boundary columns host-side (delivered by the communication engine as
    virtual neighbours of edge PEs), runs the program, and reads the
    results back through the module's result pointers. *)

open Wsc_ir.Ir
module I = Wsc_dialects.Interp
module Trace = Wsc_trace.Trace

exception Host_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Host_error s)) fmt

type t = {
  sim : Fabric.t;
  program : op;
  init_grids : I.grid list;  (** kept for boundary columns and halo readback *)
  result_ptrs : string list;
}

let column_of_grid (g : I.grid) (x : int) (y : int) : float array =
  match I.grid_get g [ x; y ] with
  | I.Rtensor col -> col
  | _ -> fail "grid element is not a z-column"

(** Create the simulator and copy the initial state in; [trace] is
    handed to the fabric and also carries host-side markers (load,
    run completion, readback) on its own track. *)
let load ?(trace = Trace.null) ?(faults = Wsc_faults.Faults.null)
    (machine : Machine.t) (program : op) (init_grids : I.grid list) : t =
  let sim = Fabric.create ~trace ~faults machine program in
  if Trace.enabled trace then begin
    Trace.name_process trace ~pid:Trace.host_pid "host";
    Trace.name_track trace ~pid:Trace.host_pid ~tid:0 "host runtime";
    Trace.instant trace ~pid:Trace.host_pid ~tid:0 ~cat:"host" ~name:"load" 0.0
  end;
  let n_state = int_attr_exn program "n_state" in
  if List.length init_grids <> n_state then
    fail "expected %d state grids, got %d" n_state (List.length init_grids);
  let result_ptrs =
    match attr_exn program "result_ptrs" with
    | Array_attr l ->
        List.map (function String_attr s -> s | _ -> fail "bad result_ptrs") l
    | _ -> fail "bad result_ptrs"
  in
  let zfull = sim.Fabric.zfull in
  (* interior columns into PE buffers *)
  for x = 0 to sim.Fabric.width - 1 do
    for y = 0 to sim.Fabric.height - 1 do
      let pe = sim.Fabric.pes.(x).(y) in
      List.iteri
        (fun j g ->
          let col = column_of_grid g x y in
          if Array.length col <> zfull then
            fail "column length %d does not match zfull %d" (Array.length col) zfull;
          let buf = Fabric.deref pe (Printf.sprintf "ptr_state%d" j) in
          Array.blit col 0 buf 0 zfull)
        init_grids
    done
  done;
  (* boundary columns host-side: all points of the full bounds outside the
     PE grid, concatenated across state slots *)
  (match init_grids with
  | g0 :: _ ->
      I.iter_points g0.I.gbounds (fun p ->
          match p with
          | [ x; y ] when not (Fabric.in_grid sim x y) ->
              let col =
                Array.concat (List.map (fun g -> column_of_grid g x y) init_grids)
              in
              Hashtbl.replace sim.Fabric.halo (x, y) col
          | _ -> ())
  | [] -> fail "no state grids");
  { sim; program; init_grids; result_ptrs }

(** Run the device program to completion. *)
let run ?driver (h : t) : unit =
  let trace = h.sim.Fabric.trace in
  if Trace.enabled trace then
    Trace.span_begin trace ~pid:Trace.host_pid ~tid:0 ~cat:"host" ~name:"run" 0.0;
  Fabric.run_to_completion ?driver h.sim;
  if Trace.enabled trace then
    Trace.span_end trace ~pid:Trace.host_pid ~tid:0 ~cat:"host" ~name:"run"
      (Fabric.elapsed_cycles h.sim)

(** Read state grid [j] back: interior columns from the PEs (through the
    final pointer assignment), halo columns unchanged from the initial
    data. *)
let read_state (h : t) (j : int) : I.grid =
  let init = List.nth h.init_grids j in
  let out = I.copy_grid init in
  let ptr = List.nth h.result_ptrs j in
  for x = 0 to h.sim.Fabric.width - 1 do
    for y = 0 to h.sim.Fabric.height - 1 do
      let pe = h.sim.Fabric.pes.(x).(y) in
      let buf = Fabric.deref pe ptr in
      I.grid_set out [ x; y ] (I.Rtensor (Array.copy buf))
    done
  done;
  out

let read_all (h : t) : I.grid list =
  List.mapi (fun j _ -> read_state h j) h.init_grids

(** {1 Graceful degradation reporting} *)

let validity (h : t) : bool array array = Fabric.validity h.sim

(** Human-readable account of the regions fault injection invalidated:
    [None] when every PE's data is valid, otherwise the number of
    affected PEs, their bounding box, and the first few coordinates —
    what the host prints instead of crashing when a run degraded past
    halted or unrecoverable PEs. *)
let fault_report (h : t) : string option =
  let mask = validity h in
  let bad = ref [] and n = ref 0 in
  let x0 = ref max_int and y0 = ref max_int and x1 = ref (-1) and y1 = ref (-1) in
  Array.iteri
    (fun x col ->
      Array.iteri
        (fun y ok ->
          if not ok then begin
            incr n;
            if !n <= 8 then bad := (x, y) :: !bad;
            x0 := min !x0 x;
            y0 := min !y0 y;
            x1 := max !x1 x;
            y1 := max !y1 y
          end)
        col)
    mask;
  if !n = 0 then None
  else
    Some
      (Printf.sprintf
         "%d of %d PEs hold invalid data (region x:%d-%d y:%d-%d): %s%s" !n
         (h.sim.Fabric.width * h.sim.Fabric.height)
         !x0 !x1 !y0 !y1
         (String.concat ", "
            (List.rev_map (fun (x, y) -> Printf.sprintf "PE(%d,%d)" x y) !bad))
         (if !n > 8 then ", ..." else ""))

(** {1 Convenience: compile + run + compare} *)

(** Simulate a compiled program on freshly initialized grids; returns the
    host handle after completion. *)
let simulate ?driver ?trace ?faults (machine : Machine.t) (compiled : op)
    (init_grids : I.grid list) : t =
  let _, program = Wsc_core.Pipeline.modules_of compiled in
  let h = load ?trace ?faults machine program init_grids in
  run ?driver h;
  let tr = h.sim.Fabric.trace in
  if Trace.enabled tr then
    Trace.instant tr ~pid:Trace.host_pid ~tid:0 ~cat:"host" ~name:"readback"
      (Fabric.elapsed_cycles h.sim);
  h
