(** Host runtime: the memcpy-style interface between field data and the
    simulated fabric — load one z-column per PE per state grid, keep the
    global Dirichlet boundary columns host-side, run the device program,
    read results back through the module's result pointers. *)

exception Host_error of string

type t = {
  sim : Fabric.t;
  program : Wsc_ir.Ir.op;
  init_grids : Wsc_dialects.Interp.grid list;
  result_ptrs : string list;
}

(** Create the simulator for [program] and copy the initial state grids
    (2-D grids of z-column tensors, full halo bounds) onto the PEs.
    [trace] is handed to the fabric and also carries host-side markers;
    [faults] is handed to the fabric's injection sites.
    @raise Host_error on state-count or column-length mismatch. *)
val load :
  ?trace:Wsc_trace.Trace.sink ->
  ?faults:Wsc_faults.Faults.t ->
  Machine.t -> Wsc_ir.Ir.op -> Wsc_dialects.Interp.grid list -> t

(** Run the device program to completion (host calls the exported
    [run]); [driver] selects the fabric scheduler (default
    event-driven). *)
val run : ?driver:Fabric.driver -> t -> unit

(** Read state grid [j] back: interior columns from the PEs through the
    final pointer assignment, halo columns unchanged. *)
val read_state : t -> int -> Wsc_dialects.Interp.grid

val read_all : t -> Wsc_dialects.Interp.grid list

(** Per-PE validity mask of the completed run, indexed [x][y]: false
    where fault injection left the PE's readback data invalid (the PE
    halted, or it consumed substituted / unrecoverable data). *)
val validity : t -> bool array array

(** Human-readable account of the regions fault injection invalidated:
    [None] when every PE's data is valid, otherwise the affected PE
    count, bounding box and first few coordinates — what the host
    reports instead of crashing when a run degraded gracefully. *)
val fault_report : t -> string option

(** [simulate machine compiled grids] — extract the program module from a
    compiled result, load, and run to completion. *)
val simulate :
  ?driver:Fabric.driver ->
  ?trace:Wsc_trace.Trace.sink ->
  ?faults:Wsc_faults.Faults.t ->
  Machine.t -> Wsc_ir.Ir.op -> Wsc_dialects.Interp.grid list -> t
