(** Machine models of the Cerebras WSE generations (paper §2, §6),
    calibrated against published figures; the WSE2/WSE3 difference the
    paper exploits is the WSE2's self-send switch workaround. *)

type generation = WSE2 | WSE3

type t = {
  gen : generation;
  name : string;
  clock_hz : float;
  max_width : int;
  max_height : int;
  pe_memory_bytes : int;  (** 48 kB of SRAM per PE *)
  self_send : bool;  (** WSE2: every send also loops back through the PE *)
  dsd_overhead_cycles : int;
  dsd_elems_per_cycle : float;
  send_cycles_per_elem : float;
  drain_cycles_per_elem : float;
  hop_cycles : int;
  task_activate_cycles : int;
  call_cycles : int;
  flops_per_pe_per_cycle : float;  (** peak: one f32 FMA per cycle *)
  sim_max_rounds : int;
      (** simulator divergence guard: max whole-grid scan rounds before a
          run is declared non-converging *)
}

val wse2 : t
val wse3 : t
val of_generation : generation -> t

val total_pes : t -> int

(** Peak f32 compute of the full wafer, FLOP/s. *)
val peak_flops : t -> float

(** Local SRAM bandwidth per PE: 128-bit read + 64-bit write per cycle. *)
val mem_bandwidth_per_pe : t -> float

(** Aggregate link bandwidth per PE (the headline fabric figure). *)
val fabric_bandwidth_per_pe : t -> float

(** Usable per-PE fabric bandwidth: the core-to-router ramp moves one
    32-bit wavelet per cycle — what bounds a stencil's injection/drain. *)
val ramp_bandwidth_per_pe : t -> float
