(** Fabric simulator: executes a compiled csl program on a simulated grid
    of PEs.

    Each PE holds its own buffers, scalars and pointer globals, executes
    tasks one at a time (single-threaded, as on the hardware), and counts
    cycles according to the {!Machine} model.  The runtime communication
    library (paper §5.6) is implemented natively here: [communicate]
    registers an asynchronous neighbour exchange — the sender pushes its
    column slices in chunks in all needed directions, receivers reduce or
    stage incoming chunks (applying promoted coefficients at delivery,
    §5.7) and activate the chunk callback per chunk and the done callback
    once all chunks from all neighbours have arrived, continuing the
    control-flow task graph.

    Scheduling is dependency-driven: a PE advances until it waits on
    senders that have not yet reached their matching [communicate]; the
    driver loop repeatedly picks PEs that can progress.  Local clocks
    advance by op costs; message arrival times combine the sender's chunk
    injection completion with per-hop router latency.  On the WSE2 every
    injection is doubled by the self-send switch workaround (§6). *)

open Wsc_ir.Ir
module Csl = Wsc_core.Csl
module Bufview = Wsc_core.Bufview
module Dmp = Wsc_dialects.Dmp
module Trace = Wsc_trace.Trace
module Faults = Wsc_faults.Faults

exception Sim_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

(** {1 Communicate-call configuration (parsed from the config attr)} *)

type input_cfg = {
  send_ptr : string;
  swaps : Dmp.swap_desc list;
  rcv_bufs : (Dmp.direction * string) list;
}

type comm_cfg = {
  apply_id : int;
  inputs : input_cfg list;
  coeffs : (int * int * int * float) list;
  z_base : int;
  c_nz : int;
  num_chunks : int;
  chunk_size : int;
  chunk_cb : string;
  done_cb : string;
}

let parse_comm_cfg (a : attr) : comm_cfg =
  let dict = match a with Dict_attr d -> d | _ -> fail "communicate: bad config" in
  let geti k =
    match List.assoc_opt k dict with Some (Int_attr i) -> i | _ -> fail "cfg int %s" k
  in
  let gets k =
    match List.assoc_opt k dict with
    | Some (String_attr s) -> s
    | _ -> fail "cfg string %s" k
  in
  let inputs =
    match List.assoc_opt "inputs" dict with
    | Some (Array_attr l) ->
        List.map
          (function
            | Dict_attr d ->
                let send_ptr =
                  match List.assoc_opt "send_ptr" d with
                  | Some (String_attr s) -> s
                  | _ -> fail "cfg send_ptr"
                in
                let swaps =
                  match List.assoc_opt "swaps" d with
                  | Some a -> Dmp.swaps_of_attr a
                  | None -> fail "cfg swaps"
                in
                let rcv_bufs =
                  match List.assoc_opt "rcv_bufs" d with
                  | Some (Array_attr bl) ->
                      List.map2
                        (fun (sw : Dmp.swap_desc) b ->
                          match b with
                          | String_attr s -> (sw.dir, s)
                          | _ -> fail "cfg rcv buf")
                        swaps bl
                  | _ -> fail "cfg rcv_bufs"
                in
                { send_ptr; swaps; rcv_bufs }
            | _ -> fail "cfg input")
          l
    | _ -> fail "cfg inputs"
  in
  let coeffs =
    match List.assoc_opt "coeffs" dict with
    | Some (Array_attr l) ->
        List.map
          (function
            | Dict_attr d ->
                let gi k = match List.assoc_opt k d with Some (Int_attr i) -> i | _ -> 0 in
                let gf k =
                  match List.assoc_opt k d with
                  | Some (Float_attr f) -> f
                  | Some (Int_attr i) -> float_of_int i
                  | _ -> 0.0
                in
                (gi "i", gi "dx", gi "dy", gf "c")
            | _ -> fail "cfg coeff")
          l
    | _ -> []
  in
  {
    apply_id = geti "apply_id";
    inputs;
    coeffs;
    z_base = geti "z_base";
    c_nz = geti "nz";
    num_chunks = geti "num_chunks";
    chunk_size = geti "chunk_size";
    chunk_cb = gets "chunk_cb";
    done_cb = gets "done_cb";
  }

(** {1 PE state} *)

type pe_stats = {
  mutable compute_cycles : float;
  mutable send_cycles : float;
  mutable wait_cycles : float;
  mutable task_activations : int;
  mutable flops : float;
  mutable elems_sent : int;
  mutable elems_drained : int;  (** wavelets received over the ramp *)
  mutable mem_bytes : float;  (** local SRAM traffic of the DSD builtins *)
}

(** First field in which two per-PE stat records differ, with both
    values; [None] when equal.  The cross-driver bit-identity
    assertions in the benchmark harness and the tests share this, so
    every mismatch names the culprit field instead of printing two
    opaque tuples. *)
let stats_diff (a : pe_stats) (b : pe_stats) : string option =
  let fl name av bv =
    if (av : float) <> bv then Some (Printf.sprintf "%s: %.17g <> %.17g" name av bv)
    else None
  in
  let it name av bv =
    if (av : int) <> bv then Some (Printf.sprintf "%s: %d <> %d" name av bv)
    else None
  in
  List.fold_left
    (fun acc d -> match acc with Some _ -> acc | None -> d ())
    None
    [
      (fun () -> fl "compute_cycles" a.compute_cycles b.compute_cycles);
      (fun () -> fl "send_cycles" a.send_cycles b.send_cycles);
      (fun () -> fl "wait_cycles" a.wait_cycles b.wait_cycles);
      (fun () -> it "task_activations" a.task_activations b.task_activations);
      (fun () -> fl "flops" a.flops b.flops);
      (fun () -> it "elems_sent" a.elems_sent b.elems_sent);
      (fun () -> it "elems_drained" a.elems_drained b.elems_drained);
      (fun () -> fl "mem_bytes" a.mem_bytes b.mem_bytes);
    ]

let stats_equal (a : pe_stats) (b : pe_stats) : bool = stats_diff a b = None

type send_record = {
  sr_chunk_ready : float array;  (** completion time of each chunk injection *)
  sr_data : float array list;  (** snapshot of the sent z-range, per input *)
}

type waiting = {
  w_cfg : comm_cfg;
  w_seq : int;
  w_registered_at : float;
}

type pe = {
  px : int;
  py : int;
  globals : (string, float array) Hashtbl.t;
  scalars : (string, int ref) Hashtbl.t;
  ptrs : (string, string ref) Hashtbl.t;
  mutable clock : float;
  mutable finished : bool;
  mutable task_queue : (float * string) list;  (** activation time, task name *)
  mutable waiting : waiting option;
  mutable seq : (int, int) Hashtbl.t;  (** apply_id -> communicate count *)
  stats : pe_stats;
}

(** {1 Scheduler core}

    The event-driven driver keeps a FIFO ready queue of PE coordinates
    plus per-send wake lists: a PE blocked on a neighbour exchange is
    parked on the key of the first sender that has not yet registered,
    and is re-enqueued exactly when that [register_send] lands, instead
    of being re-polled every round over the whole grid.  Counters let
    the benchmark harness compare the two drivers. *)

module Sched = struct
  (** A pending send: (apply_id, seq, sender x, sender y) — the same key
      as the simulator's send table. *)
  type key = int * int * int * int

  type stats = {
    mutable scans : int;  (** PE visits by the driver ([step_pe] calls) *)
    mutable probes : int;  (** finished-flag probes by quiescence sweeps *)
    mutable wakeups : int;  (** parked PEs re-enqueued by a landing send *)
    mutable parks : int;  (** times a PE was parked on a wake list *)
    mutable max_queue_depth : int;  (** high-water mark of the ready queue *)
  }

  type t = {
    stats : stats;
    ring : int array;
        (** ready queue as a flat ring of PE indices [y * width + x]:
            capacity [width * height] (the membership bitset caps
            occupancy at one entry per PE), no box per element and no
            allocation on the enqueue/pop hot path *)
    mutable head : int;  (** next pop position in [ring] *)
    mutable count : int;  (** live entries in [ring] *)
    width : int;  (** grid width, for index encoding *)
    enqueued : Bytes.t;
        (** membership bitset of the ready ring, bit [y * width + x]:
            one flat byte per 8 PEs instead of hashing a coordinate pair
            on every enqueue and pop *)
    waiters : (key, int list) Hashtbl.t;
        (** per-send wake lists of parked PE indices *)
    mutable quota : int;
        (** scan allowance pre-acquired from the run's shared divergence
            budget, so the hot loop touches the shared atomic only once
            per {!budget_batch} scans *)
  }

  let create ~(width : int) ~(height : int) =
    {
      stats = { scans = 0; probes = 0; wakeups = 0; parks = 0; max_queue_depth = 0 };
      ring = Array.make (max 1 (width * height)) 0;
      head = 0;
      count = 0;
      width;
      enqueued = Bytes.make (((width * height) + 7) / 8) '\000';
      waiters = Hashtbl.create 64;
      quota = 0;
    }

  let stats (s : t) = s.stats

  let mem_idx (s : t) (i : int) : bool =
    Char.code (Bytes.get s.enqueued (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set_mem_idx (s : t) (i : int) : unit =
    Bytes.set s.enqueued (i lsr 3)
      (Char.chr (Char.code (Bytes.get s.enqueued (i lsr 3)) lor (1 lsl (i land 7))))

  let clear_mem_idx (s : t) (i : int) : unit =
    Bytes.set s.enqueued (i lsr 3)
      (Char.chr
         (Char.code (Bytes.get s.enqueued (i lsr 3))
         land (lnot (1 lsl (i land 7)) land 0xff)))

  let enqueue_idx (s : t) (i : int) : unit =
    if not (mem_idx s i) then begin
      set_mem_idx s i;
      let cap = Array.length s.ring in
      let p = s.head + s.count in
      s.ring.(if p >= cap then p - cap else p) <- i;
      s.count <- s.count + 1;
      if s.count > s.stats.max_queue_depth then s.stats.max_queue_depth <- s.count
    end

  let enqueue (s : t) (x : int) (y : int) : unit = enqueue_idx s ((y * s.width) + x)

  (** Next ready PE index, or -1 when the ring is empty. *)
  let pop (s : t) : int =
    if s.count = 0 then -1
    else begin
      let i = s.ring.(s.head) in
      let h = s.head + 1 in
      s.head <- (if h >= Array.length s.ring then 0 else h);
      s.count <- s.count - 1;
      clear_mem_idx s i;
      i
    end

  let is_empty (s : t) : bool = s.count = 0

  let park (s : t) (k : key) (idx : int) : unit =
    s.stats.parks <- s.stats.parks + 1;
    let cur = Option.value (Hashtbl.find_opt s.waiters k) ~default:[] in
    Hashtbl.replace s.waiters k (idx :: cur)

  (** A send landed: wake every PE parked on its key; returns the woken
      PE indices (the stored wake list itself — no fresh allocation — so
      the caller can trace the wakeups). *)
  let notify (s : t) (k : key) : int list =
    match Hashtbl.find_opt s.waiters k with
    | None -> []
    | Some idxs ->
        Hashtbl.remove s.waiters k;
        List.iter
          (fun i ->
            s.stats.wakeups <- s.stats.wakeups + 1;
            enqueue_idx s i)
          idxs;
        idxs
end

(** {1 Simulator} *)

type t = {
  machine : Machine.t;
  program : op;
  width : int;
  height : int;
  pes : pe array array;
  funcs : (string, op) Hashtbl.t;
  tasks : (string, op) Hashtbl.t;
  sends : (int * int * int * int, send_record) Hashtbl.t;
      (** (apply, seq, x, y) -> record *)
  halo : (int * int, float array) Hashtbl.t;
      (** host-resident boundary columns (x, y outside the PE grid) *)
  z_halo : int;
  zfull : int;
  nz : int;
  sched : Sched.t;
  trace : Trace.sink;
      (** where the simulator reports spans and link transfers; with
          {!Trace.null} (the default) every site is a dead branch and
          results are bit-identical to an untraced run *)
  faults : Faults.t;
      (** fault-injection schedule and resilience bookkeeping; with
          {!Faults.null} (the default) every injection site is a dead
          branch, exactly like the trace sink *)
  mutable on_send : (Sched.key -> send_record -> unit) option;
      (** observation hook run by the send-registration path right after
          a record is stored: the parallel driver exports boundary sends
          to its per-edge mailboxes through it.  [None] (the sequential
          drivers) costs one branch per send. *)
}

let new_pe (program : op) x y : pe =
  let globals = Hashtbl.create 16 in
  let scalars = Hashtbl.create 4 in
  let ptrs = Hashtbl.create 8 in
  List.iter
    (fun o ->
      match o.opname with
      | "csl.global_buffer" ->
          let name = string_attr_exn o "sym_name" in
          let size =
            match attr_exn o "type" with
            | Type_attr t -> num_elements t
            | _ -> fail "bad buffer type"
          in
          Hashtbl.replace globals name (Array.make size 0.0)
      | "csl.global_scalar" ->
          let name = string_attr_exn o "sym_name" in
          let init = match attr o "init" with Some (Int_attr i) -> i | _ -> 0 in
          Hashtbl.replace scalars name (ref init)
      | "csl.ptr_global" ->
          Hashtbl.replace ptrs (string_attr_exn o "sym_name")
            (ref (string_attr_exn o "target"))
      | _ -> ())
    (Csl.module_body program);
  {
    px = x;
    py = y;
    globals;
    scalars;
    ptrs;
    clock = 0.0;
    finished = false;
    task_queue = [];
    waiting = None;
    seq = Hashtbl.create 4;
    stats =
      {
        compute_cycles = 0.0;
        send_cycles = 0.0;
        wait_cycles = 0.0;
        task_activations = 0;
        flops = 0.0;
        elems_sent = 0;
        elems_drained = 0;
        mem_bytes = 0.0;
      };
  }

(** Largest PE grid the simulator will instantiate in one process.  Full
    wafers are measured through the proxy-grid extrapolation in
    [Wsc_perf.Wse_perf] instead of being simulated whole. *)
let max_simulated_pes = 64 * 1024

let create ?(trace = Trace.null) ?(faults = Faults.null) (machine : Machine.t)
    (program : op) : t =
  let width = int_attr_exn program "width" in
  let height = int_attr_exn program "height" in
  if width > machine.max_width || height > machine.max_height then
    fail "PE grid %dx%d exceeds %s fabric %dx%d" width height machine.name
      machine.max_width machine.max_height;
  if width * height > max_simulated_pes then
    fail
      "PE grid %dx%d is too large to simulate in-process (max %d PEs); use a \
       proxy grid and the perf harness for full-wafer measurements"
      width height max_simulated_pes;
  let mem = int_attr_exn program "memory_bytes" in
  if mem > machine.pe_memory_bytes then
    fail "program needs %d bytes per PE; %s provides %d" mem machine.name
      machine.pe_memory_bytes;
  let funcs = Hashtbl.create 16 and tasks = Hashtbl.create 4 in
  List.iter
    (fun o ->
      match o.opname with
      | "csl.func" -> Hashtbl.replace funcs (string_attr_exn o "sym_name") o
      | "csl.task" -> Hashtbl.replace tasks (string_attr_exn o "sym_name") o
      | _ -> ())
    (Csl.module_body program);
  if Trace.enabled trace then begin
    Trace.name_process trace ~pid:Trace.fabric_pid "fabric";
    for x = 0 to width - 1 do
      for y = 0 to height - 1 do
        Trace.name_track trace ~pid:Trace.fabric_pid ~tid:((y * width) + x)
          (Printf.sprintf "PE(%d,%d)" x y)
      done
    done
  end;
  {
    machine;
    program;
    width;
    height;
    pes = Array.init width (fun x -> Array.init height (fun y -> new_pe program x y));
    funcs;
    tasks;
    sends = Hashtbl.create 1024;
    halo = Hashtbl.create 64;
    z_halo = int_attr_exn program "z_halo";
    zfull = int_attr_exn program "zfull";
    nz = int_attr_exn program "nz";
    sched = Sched.create ~width ~height;
    trace;
    faults;
    on_send = None;
  }

(** {1 Trace emission}

    All emission is observation-only: helpers read PE clocks and send
    records but never touch simulation state, and every allocation
    (names, args) sits behind a {!Trace.enabled} branch, so with the
    null sink a traced build is bit-identical to the seed simulator. *)

let tid_of (sim : t) (pe : pe) : int = (pe.py * sim.width) + pe.px

(** A completed [t0, t1] span on [pe]'s track. *)
let trace_span (sim : t) (pe : pe) ~(cat : string) ~(name : string) (t0 : float)
    (t1 : float) : unit =
  if Trace.enabled sim.trace then begin
    let tid = tid_of sim pe in
    Trace.span_begin sim.trace ~pid:Trace.fabric_pid ~tid ~cat ~name t0;
    Trace.span_end sim.trace ~pid:Trace.fabric_pid ~tid ~cat ~name t1
  end

let trace_instant (sim : t) (pe : pe) ~(cat : string) ~(name : string)
    (ts : float) : unit =
  if Trace.enabled sim.trace then
    Trace.instant sim.trace ~pid:Trace.fabric_pid ~tid:(tid_of sim pe) ~cat ~name
      ts

(** One chunk's journey over a link, as an async flow: begins on the
    sender's track when the chunk's injection completes, ends on the
    receiver's track at delivery. *)
let trace_link (sim : t) ~(src : pe) ~(dst : pe) ~(dir : Dmp.direction)
    ~(chunk : int) ~(elems : int) ~(ready : float) ~(arrival : float) : unit =
  if Trace.enabled sim.trace then begin
    let id = Trace.fresh_flow_id sim.trace in
    let dir_name = Dmp.direction_to_string dir in
    Trace.flow_begin sim.trace ~pid:Trace.fabric_pid ~tid:(tid_of sim src)
      ~cat:"link" ~name:"xfer" ~id
      ~args:
        [
          ("dir", Trace.Astr dir_name);
          ("chunk", Trace.Aint chunk);
          ("elems", Trace.Aint elems);
        ]
      ready;
    Trace.flow_end sim.trace ~pid:Trace.fabric_pid ~tid:(tid_of sim dst)
      ~cat:"link" ~name:"xfer" ~id arrival
  end

(** {1 Fault injection}

    Injection sites mirror the trace sites: every decision sits behind a
    {!Faults.enabled} branch so the {!Faults.null} injector (and any
    injector with all rates zero) leaves the simulation bit-identical to
    the seed simulator.  Decisions are pure hashes of the campaign seed
    and the site's coordinates, never of execution order, so both
    drivers agree on every fault (see {!Wsc_faults.Faults}). *)

let trace_fault (sim : t) (pe : pe) ~(name : string) (ts : float) : unit =
  if Trace.enabled sim.trace then
    Trace.instant sim.trace ~pid:Trace.fabric_pid ~tid:(tid_of sim pe)
      ~cat:"fault" ~name ts

(** What a chunk-column delivery amounts to after the link's faults and
    (when enabled) the recovery protocol have run their course. *)
type delivery =
  | Clean  (** payload intact *)
  | Damaged of int * float  (** element index hit, additive noise *)
  | Lost  (** wavelets never delivered: the slot reads as zeroes *)

(** Resolve the fate of one chunk-column crossing the link from the
    sender at hop distance [d]: apply a backpressure spike, then either
    let a transient drop/corruption land undetected (no resilience) or
    drive the detection & recovery protocol — per-wavelet checksums
    catch corruption on arrival, a receiver timeout with bounded
    exponential backoff catches loss, and each retransmission re-pays
    the NACK round trip plus chunk re-injection — until a clean copy
    lands or the receiver exhausts [max_retries] and gives up.  Returns
    the delivery time and the payload outcome.  All costs are charged
    receiver-side (the sender's router retransmits autonomously), so no
    other PE's state is touched and driver bit-identity is preserved. *)
let link_outcome (sim : t) (pe : pe) ~(apply : int) ~(seq : int) ~(chunk : int)
    ~(input : int) ~(sx : int) ~(sy : int) ~(d : int) ~(col : float array)
    ~(off : int) ~(cs : int) (at : float) : float * delivery =
  let f = sim.faults in
  let st = Faults.stats f in
  let m = sim.machine in
  let dx = pe.px and dy = pe.py in
  let at = ref at in
  (* the counters in [st] are shared by every domain of the parallel
     driver, so every update goes through the injector's lock; the
     decisions themselves are pure and need none *)
  if Faults.backpressure_here f ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy then begin
    Faults.locked f (fun () -> st.backpressures <- st.backpressures + 1);
    at := !at +. (Faults.config f).backpressure_cycles;
    trace_fault sim pe ~name:"backpressure" !at
  end;
  let fault attempt =
    if Faults.drop_here f ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy ~attempt
    then Some Lost
    else if
      Faults.corrupt_here f ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy ~attempt
    then
      let idx, noise =
        Faults.corruption f ~apply ~seq ~chunk ~input ~sx ~sy ~dx ~dy ~attempt
          ~len:cs
      in
      Some (Damaged (idx, noise))
    else None
  in
  match (Faults.config f).resilience with
  | None -> (
      (* no protocol: whatever the link did is what the PE computes on *)
      match fault 0 with
      | None -> (!at, Clean)
      | Some Lost ->
          Faults.locked f (fun () -> st.drops <- st.drops + 1);
          trace_fault sim pe ~name:"drop" !at;
          (!at, Lost)
      | Some (Damaged _ as dmg) ->
          Faults.locked f (fun () -> st.corrupts <- st.corrupts + 1);
          trace_fault sim pe ~name:"corrupt" !at;
          (!at, dmg)
      | Some Clean -> assert false)
  | Some r ->
      let self_mul = if m.self_send then 2.0 else 1.0 in
      let reinject = float_of_int cs *. m.send_cycles_per_elem *. self_mul in
      let rtt = float_of_int (2 * d * m.hop_cycles) in
      let rec attempt a =
        match fault a with
        | None ->
            (* on the wire intact; the receiver-side checksum agrees
               with the one carried in the wavelet header, so accept *)
            (!at, Clean)
        | Some outcome ->
            let detected =
              match outcome with
              | Lost ->
                  Faults.locked f (fun () -> st.drops <- st.drops + 1);
                  trace_fault sim pe ~name:"drop" !at;
                  (* loss is always detected: the sequence number never
                     arrives and the receiver timeout fires *)
                  true
              | Damaged (idx, noise) ->
                  Faults.locked f (fun () -> st.corrupts <- st.corrupts + 1);
                  trace_fault sim pe ~name:"corrupt" !at;
                  (* receiver-side integrity check: recompute the
                     checksum over the damaged copy and compare against
                     the sender's (computed over the snapshot); only a
                     checksum collision goes undetected *)
                  let damaged = Array.sub col off cs in
                  damaged.(idx) <- damaged.(idx) +. noise;
                  Faults.checksum damaged ~off:0 ~len:cs
                  <> Faults.checksum col ~off ~len:cs
              | Clean -> assert false
            in
            if not detected then
              (!at, outcome) (* undetected corruption: delivered as-is *)
            else if a >= r.Faults.max_retries then begin
              Faults.locked f (fun () -> st.giveups <- st.giveups + 1);
              Faults.taint f ~x:pe.px ~y:pe.py;
              trace_fault sim pe ~name:"giveup" !at;
              (!at, Lost)
            end
            else begin
              (* loss is detected by the sequence-number timeout (with
                 exponential backoff); corruption by the checksum, which
                 NACKs immediately *)
              let wait =
                match outcome with
                | Lost -> Faults.backoff r ~attempt:(a + 1)
                | _ -> 0.0
              in
              let cost = wait +. rtt +. reinject in
              at := !at +. cost;
              Faults.locked f (fun () ->
                  st.retries <- st.retries + 1;
                  st.recovery_cycles <- st.recovery_cycles +. cost);
              trace_fault sim pe ~name:"retry" !at;
              attempt (a + 1)
            end
      in
      attempt 0

(** {1 csl-op execution on one PE} *)

type cell = Cbuf of Bufview.t | Cdsd of Bufview.t | Cint of int | Cfloat of float

let buffer_of (pe : pe) name : float array =
  match Hashtbl.find_opt pe.globals name with
  | Some a -> a
  | None -> fail "PE(%d,%d): no buffer %s" pe.px pe.py name

let deref (pe : pe) ptr : float array =
  match Hashtbl.find_opt pe.ptrs ptr with
  | Some target -> buffer_of pe !target
  | None -> fail "PE(%d,%d): no pointer %s" pe.px pe.py ptr

(** Execute a function/task body; accumulates cycle cost on the PE.
    Returns the communicate configs encountered (registered by caller). *)
let rec exec_block (sim : t) (pe : pe) (env : (int, cell) Hashtbl.t) (blk : block) :
    comm_cfg list =
  let m = sim.machine in
  let lookup v =
    match Hashtbl.find_opt env v.vid with
    | Some c -> c
    | None -> fail "exec: unbound value %%%d" v.vid
  in
  let as_view v =
    match lookup v with
    | Cdsd b | Cbuf b -> b
    | _ -> fail "exec: expected DSD/buffer"
  in
  let as_int v =
    match lookup v with Cint i -> i | _ -> fail "exec: expected int"
  in
  let as_float v =
    match lookup v with
    | Cfloat f -> f
    | Cint i -> float_of_int i
    | _ -> fail "exec: expected float"
  in
  let cost c = pe.clock <- pe.clock +. c in
  let builtin_cost ?(bytes_per_elem = 12.0) len =
    cost (float_of_int m.dsd_overhead_cycles +. (float_of_int len /. m.dsd_elems_per_cycle));
    pe.stats.compute_cycles <-
      pe.stats.compute_cycles +. float_of_int m.dsd_overhead_cycles
      +. (float_of_int len /. m.dsd_elems_per_cycle);
    (* two operand reads + one destination write of 4 bytes per element
       for the arithmetic builtins; a move reads one and writes one *)
    pe.stats.mem_bytes <- pe.stats.mem_bytes +. (bytes_per_elem *. float_of_int len)
  in
  let comms = ref [] in
  List.iter
    (fun o ->
      match o.opname with
      | "csl.get_global" ->
          cost 1.0;
          Hashtbl.replace env (result o).vid
            (Cbuf (Bufview.of_array (buffer_of pe (string_attr_exn o "gname"))))
      | "csl.deref_ptr" ->
          cost 1.0;
          Hashtbl.replace env (result o).vid
            (Cbuf (Bufview.of_array (deref pe (string_attr_exn o "gname"))))
      | "csl.load_scalar" ->
          cost 1.0;
          Hashtbl.replace env (result o).vid
            (Cint !(Hashtbl.find pe.scalars (string_attr_exn o "gname")))
      | "csl.store_scalar" ->
          cost 1.0;
          Hashtbl.find pe.scalars (string_attr_exn o "gname") := as_int (operand o 0)
      | "csl.get_mem_dsd" ->
          cost 2.0;
          let b = as_view (operand o 0) in
          let off = int_attr_exn o "offset" and len = int_attr_exn o "length" in
          let stride =
            match int_attr o "stride" with Some s -> s | None -> 1
          in
          Hashtbl.replace env (result o).vid
            (Cdsd (Bufview.make b.Bufview.data ~off:(b.Bufview.off + off) ~len ~stride ()))
      | "csl.increment_dsd_offset" ->
          cost 2.0;
          let b = as_view (operand o 0) in
          let by =
            match (int_attr o "by", o.operands) with
            | Some k, _ -> k
            | None, [ _; v ] -> as_int v
            | _ -> fail "increment_dsd_offset: no offset"
          in
          Hashtbl.replace env (result o).vid
            (Cdsd { b with Bufview.off = b.Bufview.off + (by * b.Bufview.stride) })
      | "csl.set_dsd_length" ->
          cost 2.0;
          let b = as_view (operand o 0) in
          Hashtbl.replace env (result o).vid
            (Cdsd { b with Bufview.len = int_attr_exn o "length" })
      | "csl.set_dsd_base_addr" ->
          cost 2.0;
          let b = as_view (operand o 0) in
          let base = as_view (operand o 1) in
          Hashtbl.replace env (result o).vid
            (Cdsd { b with Bufview.data = base.Bufview.data; off = base.Bufview.off })
      | "csl.fadds" | "csl.fsubs" | "csl.fmuls" ->
          let dest = as_view (operand o 0) in
          let src1 = lookup (operand o 1) and src2 = lookup (operand o 2) in
          let f =
            match o.opname with
            | "csl.fadds" -> ( +. )
            | "csl.fsubs" -> ( -. )
            | _ -> ( *. )
          in
          (match (src1, src2) with
          | (Cdsd a | Cbuf a), (Cdsd b | Cbuf b) -> Bufview.map2_into f a b dest
          | (Cdsd a | Cbuf a), Cfloat k -> Bufview.map_into (fun x -> f x k) a dest
          | (Cdsd a | Cbuf a), Cint i ->
              Bufview.map_into (fun x -> f x (float_of_int i)) a dest
          | Cfloat k, (Cdsd b | Cbuf b) -> Bufview.map_into (fun x -> f k x) b dest
          | _ -> fail "%s: bad operands" o.opname);
          builtin_cost dest.Bufview.len;
          pe.stats.flops <- pe.stats.flops +. float_of_int dest.Bufview.len
      | "csl.fmacs" ->
          let dest = as_view (operand o 0) in
          let a = as_view (operand o 1) and b = as_view (operand o 2) in
          let k = as_float (operand o 3) in
          Bufview.fmac_into a b k dest;
          builtin_cost dest.Bufview.len;
          pe.stats.flops <- pe.stats.flops +. (2.0 *. float_of_int dest.Bufview.len)
      | "csl.fmovs" ->
          let dest = as_view (operand o 0) in
          (match lookup (operand o 1) with
          | Cdsd a | Cbuf a -> Bufview.blit ~src:a ~dst:dest
          | Cfloat k -> Bufview.fill dest k
          | _ -> fail "fmovs: bad source");
          builtin_cost ~bytes_per_elem:8.0 dest.Bufview.len
      | "arith.constant" -> (
          match (attr o "value", (result o).vtyp) with
          | Some (Int_attr i), _ -> Hashtbl.replace env (result o).vid (Cint i)
          | Some (Float_attr f), _ -> Hashtbl.replace env (result o).vid (Cfloat f)
          | _ -> fail "exec: bad constant")
      | "arith.addi" ->
          Hashtbl.replace env (result o).vid
            (Cint (as_int (operand o 0) + as_int (operand o 1)))
      | "arith.cmpi" ->
          let a = as_int (operand o 0) and b = as_int (operand o 1) in
          let r =
            match string_attr_exn o "predicate" with
            | "slt" -> a < b
            | "sle" -> a <= b
            | "sgt" -> a > b
            | "sge" -> a >= b
            | "eq" -> a = b
            | "ne" -> a <> b
            | p -> fail "cmpi: %s" p
          in
          Hashtbl.replace env (result o).vid (Cint (if r then 1 else 0))
      | "scf.if" ->
          cost 2.0;
          let c = as_int (operand o 0) in
          let r = region o (if c <> 0 then 0 else 1) in
          comms := !comms @ exec_block sim pe env (entry_block r)
      | "csl.call" ->
          cost (float_of_int m.call_cycles);
          comms := !comms @ exec_func sim pe (string_attr_exn o "callee") []
      | "csl.activate" ->
          cost 2.0;
          pe.stats.task_activations <- pe.stats.task_activations + 1;
          pe.task_queue <-
            pe.task_queue
            @ [ (pe.clock +. float_of_int m.task_activate_cycles, string_attr_exn o "task") ]
      | "csl.assign_ptrs" ->
          cost 4.0;
          let dests = Csl.string_list_attr o "dests" in
          let srcs = Csl.string_list_attr o "srcs" in
          let olds = List.map (fun s -> !(Hashtbl.find pe.ptrs s)) srcs in
          List.iter2 (fun d v -> Hashtbl.find pe.ptrs d := v) dests olds
      | "csl.member_call" -> (
          match string_attr_exn o "field" with
          | "communicate" ->
              cost (float_of_int m.call_cycles);
              comms := !comms @ [ parse_comm_cfg (attr_exn o "config") ]
          | f -> fail "member_call: unknown library function %s" f)
      | "csl.unblock_cmd_stream" -> pe.finished <- true
      | "csl.return" -> ()
      | name -> fail "exec: unsupported op %s" name)
    blk.bops;
  !comms

and exec_func (sim : t) (pe : pe) (name : string) (args : cell list) : comm_cfg list =
  let f =
    match Hashtbl.find_opt sim.funcs name with
    | Some f -> f
    | None -> (
        match Hashtbl.find_opt sim.tasks name with
        | Some t -> t
        | None -> fail "no function or task %s" name)
  in
  let blk = entry_block (List.hd f.regions) in
  let env = Hashtbl.create 32 in
  List.iteri
    (fun i a ->
      match List.nth_opt args i with
      | Some c -> Hashtbl.replace env a.vid c
      | None -> fail "missing argument %d of %s" i name)
    blk.bargs;
  exec_block sim pe env blk

(** {1 Communication engine} *)

let dir_vector = function
  | Dmp.East -> (1, 0)
  | Dmp.West -> (-1, 0)
  | Dmp.North -> (0, 1)
  | Dmp.South -> (0, -1)

let in_grid sim x y = x >= 0 && x < sim.width && y >= 0 && y < sim.height

(** Register this PE's send for an exchange: snapshot the z range of each
    send buffer, charge injection cost, record chunk completion times. *)
let register_send (sim : t) (pe : pe) (cfg : comm_cfg) (seq : int) : unit =
  let m = sim.machine in
  let data =
    List.map
      (fun inp ->
        let buf = deref pe inp.send_ptr in
        Array.sub buf cfg.z_base cfg.c_nz)
      cfg.inputs
  in
  let dirs_per_input =
    List.map (fun inp -> List.length inp.swaps) cfg.inputs
  in
  let total_dirs = List.fold_left ( + ) 0 dirs_per_input in
  let self_mul = if m.self_send then 2.0 else 1.0 in
  let chunk_cost =
    float_of_int (total_dirs * cfg.chunk_size) *. m.send_cycles_per_elem *. self_mul
  in
  let ready =
    Array.init cfg.num_chunks (fun k ->
        pe.clock +. (float_of_int (k + 1) *. chunk_cost))
  in
  pe.stats.send_cycles <- pe.stats.send_cycles +. (float_of_int cfg.num_chunks *. chunk_cost);
  pe.stats.elems_sent <-
    pe.stats.elems_sent + (total_dirs * cfg.num_chunks * cfg.chunk_size);
  (* injection overlaps with waiting: model sender as busy for the first
     chunk only; the rest stream out asynchronously *)
  let inject_start = pe.clock in
  pe.clock <- pe.clock +. chunk_cost;
  if Trace.enabled sim.trace then
    trace_span sim pe ~cat:"send"
      ~name:(Printf.sprintf "inject a%d#%d" cfg.apply_id seq)
      inject_start pe.clock;
  let record = { sr_chunk_ready = ready; sr_data = data } in
  Hashtbl.replace sim.sends (cfg.apply_id, seq, pe.px, pe.py) record;
  (match sim.on_send with
  | None -> ()
  | Some export -> export (cfg.apply_id, seq, pe.px, pe.py) record);
  (* taint propagation: data computed from substituted or unrecoverable
     inputs invalidates every receiver that reduces this send *)
  if Faults.enabled sim.faults && Faults.is_tainted sim.faults ~x:pe.px ~y:pe.py
  then Faults.taint_send sim.faults ~apply:cfg.apply_id ~seq ~x:pe.px ~y:pe.py;
  (* wake any neighbour parked on this send *)
  let woken = Sched.notify sim.sched (cfg.apply_id, seq, pe.px, pe.py) in
  if Trace.enabled sim.trace then
    List.iter
      (fun idx ->
        let wpe = sim.pes.(idx mod sim.width).(idx / sim.width) in
        trace_instant sim wpe ~cat:"sched" ~name:"wake" wpe.clock)
      woken

(** State slot a communicated input corresponds to, for boundary-column
    lookup: the Dirichlet halo is the initial value of that logical grid. *)
let halo_slot (inp : input_cfg) : int =
  let p = inp.send_ptr in
  if String.length p > 9 && String.sub p 0 9 = "ptr_state" then
    Option.value (int_of_string_opt (String.sub p 9 (String.length p - 9))) ~default:0
  else 0

(** Where a receiver's column comes from. *)
type source =
  | Src_fabric of float array * float array
      (** neighbour's snapshot and per-chunk injection-ready times *)
  | Src_halo of float array  (** host-resident boundary column *)
  | Src_skipped
      (** the sender halted and the resilience layer degraded past it:
          receivers substitute zeroes and mark their data invalid *)

(** The column a receiver gets from offset (dx, dy): either a fabric
    neighbour's snapshot or the host-resident boundary column. *)
let source_column (sim : t) (pe : pe) (cfg : comm_cfg) (seq : int) ~(input : int)
    ~(dx : int) ~(dy : int) : source option =
  let sx = pe.px + dx and sy = pe.py + dy in
  if in_grid sim sx sy then
    match Hashtbl.find_opt sim.sends (cfg.apply_id, seq, sx, sy) with
    | Some sr -> Some (Src_fabric (List.nth sr.sr_data input, sr.sr_chunk_ready))
    | None ->
        if
          Faults.enabled sim.faults
          && Faults.is_skipped sim.faults ~apply:cfg.apply_id ~seq ~x:sx ~y:sy
        then Some Src_skipped
        else None (* sender not ready: caller retries later *)
  else begin
    (* boundary: Dirichlet column held host-side, always available *)
    let slot = halo_slot (List.nth cfg.inputs input) in
    match Hashtbl.find_opt sim.halo (sx, sy) with
    | Some col ->
        Some (Src_halo (Array.sub col ((slot * sim.zfull) + cfg.z_base) cfg.c_nz))
    | None -> fail "no boundary column for (%d,%d)" sx sy
  end

(** Check whether all senders this PE depends on have registered. *)
let exchange_ready (sim : t) (pe : pe) (w : waiting) : bool =
  List.for_all
    (fun (i, inp) ->
      List.for_all
        (fun (sw : Dmp.swap_desc) ->
          let vx, vy = dir_vector sw.dir in
          List.for_all
            (fun d ->
              source_column sim pe w.w_cfg w.w_seq ~input:i ~dx:(vx * d) ~dy:(vy * d)
              <> None)
            (List.init sw.depth (fun k -> k + 1)))
        inp.swaps)
    (List.mapi (fun i inp -> (i, inp)) w.w_cfg.inputs)

(** Deliver all chunks and run the callbacks; assumes {!exchange_ready}. *)
let rec complete_exchange (sim : t) (pe : pe) (w : waiting) : unit =
  let m = sim.machine in
  let cfg = w.w_cfg in
  let cs = cfg.chunk_size in
  let promoted = cfg.coeffs <> [] in
  for k = 0 to cfg.num_chunks - 1 do
    let off = k * cs in
    let arrival = ref w.w_registered_at in
    (* promoted staging buffers accumulate; clear once per chunk (with
       the one-shot reduction several directions share one buffer) *)
    if promoted then begin
      let seen = Hashtbl.create 4 in
      List.iter
        (fun inp ->
          List.iter
            (fun (_, name) ->
              if not (Hashtbl.mem seen name) then begin
                Hashtbl.replace seen name ();
                let rcv = buffer_of pe name in
                Array.fill rcv 0 (Array.length rcv) 0.0
              end)
            inp.rcv_bufs)
        cfg.inputs
    end;
    (* deliver into receive buffers *)
    List.iteri
      (fun i inp ->
        List.iter
          (fun (sw : Dmp.swap_desc) ->
            let vx, vy = dir_vector sw.dir in
            let rcv = buffer_of pe (List.assoc sw.dir inp.rcv_bufs) in
            for d = 1 to sw.depth do
              (* write [col] into this source's slot of the receive
                 buffer, as damaged (or lost) by the link's outcome *)
              let deliver (col : float array) (outcome : delivery) : unit =
                if promoted then begin
                  let c =
                    match
                      List.find_opt
                        (fun (ci, cdx, cdy, _) ->
                          ci = i && cdx = vx * d && cdy = vy * d)
                        cfg.coeffs
                    with
                    | Some (_, _, _, c) -> c
                    | None -> 0.0
                  in
                  match outcome with
                  | Lost -> () (* the missing contribution reads as zero *)
                  | Clean ->
                      for z = 0 to cs - 1 do
                        rcv.(z) <- rcv.(z) +. (c *. col.(off + z))
                      done
                  | Damaged (idx, noise) ->
                      for z = 0 to cs - 1 do
                        let v = col.(off + z) in
                        let v = if z = idx then v +. noise else v in
                        rcv.(z) <- rcv.(z) +. (c *. v)
                      done
                end
                else
                  match outcome with
                  | Lost -> Array.fill rcv ((d - 1) * cs) cs 0.0
                  | Clean -> Array.blit col off rcv ((d - 1) * cs) cs
                  | Damaged (idx, noise) ->
                      Array.blit col off rcv ((d - 1) * cs) cs;
                      rcv.(((d - 1) * cs) + idx) <-
                        rcv.(((d - 1) * cs) + idx) +. noise
              in
              match
                source_column sim pe cfg w.w_seq ~input:i ~dx:(vx * d) ~dy:(vy * d)
              with
              | Some (Src_halo col) ->
                  (* host links are outside the fault model *)
                  deliver col Clean
              | Some (Src_fabric (col, r)) ->
                  let sx = pe.px + (vx * d) and sy = pe.py + (vy * d) in
                  let at0 = r.(k) +. float_of_int (d * m.hop_cycles) in
                  let at, outcome =
                    if Faults.enabled sim.faults then
                      link_outcome sim pe ~apply:cfg.apply_id ~seq:w.w_seq
                        ~chunk:k ~input:i ~sx ~sy ~d ~col ~off ~cs at0
                    else (at0, Clean)
                  in
                  arrival := Float.max !arrival at;
                  trace_link sim ~src:sim.pes.(sx).(sy) ~dst:pe ~dir:sw.dir
                    ~chunk:k ~elems:cs ~ready:r.(k) ~arrival:at;
                  if
                    Faults.enabled sim.faults
                    && Faults.is_tainted_send sim.faults ~apply:cfg.apply_id
                         ~seq:w.w_seq ~x:sx ~y:sy
                  then Faults.taint sim.faults ~x:pe.px ~y:pe.py;
                  deliver col outcome
              | Some Src_skipped ->
                  (* sender halted: the receiver waited out the halt
                     timeout, substitutes zeroes and marks itself *)
                  (match (Faults.config sim.faults).resilience with
                  | Some r ->
                      arrival :=
                        Float.max !arrival
                          (w.w_registered_at +. r.Faults.halt_timeout_cycles)
                  | None -> ());
                  Faults.taint sim.faults ~x:pe.px ~y:pe.py;
                  deliver [||] Lost
              | None -> fail "complete_exchange: sender disappeared"
            done)
          inp.swaps)
      cfg.inputs;
    (* run the chunk callback once data for this chunk has arrived *)
    if !arrival > pe.clock then begin
      trace_span sim pe ~cat:"wait" ~name:"parked-on-exchange" pe.clock !arrival;
      pe.stats.wait_cycles <- pe.stats.wait_cycles +. (!arrival -. pe.clock);
      pe.clock <- !arrival
    end;
    (* queue-drain cost: every incoming wavelet is moved (and, with
       promoted coefficients, reduced) from the input queue to memory by
       the communication library; on the WSE2 the self-send workaround
       makes the PE drain its own looped-back wavelets as well *)
    let incoming =
      List.fold_left
        (fun acc inp ->
          List.fold_left (fun a (sw : Dmp.swap_desc) -> a + (sw.depth * cs)) acc
            inp.swaps)
        0 cfg.inputs
    in
    let self_loopback =
      if m.self_send then
        List.fold_left
          (fun acc inp -> acc + (List.length inp.swaps * cs))
          0 cfg.inputs
      else 0
    in
    let drain =
      float_of_int (incoming + self_loopback) *. m.drain_cycles_per_elem
    in
    trace_span sim pe ~cat:"recv" ~name:"drain" pe.clock (pe.clock +. drain);
    pe.clock <- pe.clock +. drain;
    pe.stats.compute_cycles <- pe.stats.compute_cycles +. drain;
    pe.stats.elems_drained <- pe.stats.elems_drained + incoming;
    (* with promoted coefficients the drain IS the algorithmic multiply
       and accumulate (@fmacs off the fabric queue, SS5.7) *)
    if promoted then pe.stats.flops <- pe.stats.flops +. (2.0 *. float_of_int incoming);
    pe.stats.task_activations <- pe.stats.task_activations + 1;
    pe.clock <- pe.clock +. float_of_int m.task_activate_cycles;
    let cb_start = pe.clock in
    ignore (exec_func sim pe cfg.chunk_cb [ Cint off ]);
    trace_span sim pe ~cat:"compute" ~name:cfg.chunk_cb cb_start pe.clock
  done;
  (* done callback: one final task activation *)
  pe.stats.task_activations <- pe.stats.task_activations + 1;
  pe.clock <- pe.clock +. float_of_int m.task_activate_cycles;
  let done_start = pe.clock in
  let new_comms = exec_func sim pe cfg.done_cb [] in
  trace_span sim pe ~cat:"compute" ~name:cfg.done_cb done_start pe.clock;
  (* the done callback may start the next exchange *)
  List.iter (start_exchange sim pe) new_comms

and start_exchange (sim : t) (pe : pe) (cfg : comm_cfg) : unit =
  let seq =
    let s = Option.value (Hashtbl.find_opt pe.seq cfg.apply_id) ~default:0 in
    Hashtbl.replace pe.seq cfg.apply_id (s + 1);
    s
  in
  register_send sim pe cfg seq;
  if pe.waiting <> None then fail "PE(%d,%d): overlapping exchanges" pe.px pe.py;
  pe.waiting <- Some { w_cfg = cfg; w_seq = seq; w_registered_at = pe.clock }

(** {1 Driver} *)

(** Run one queued task; returns true if anything executed.  The hardware
    scheduler dispatches the earliest-activated task, not the most
    recently queued one, so pop the entry with the smallest activation
    timestamp (ties resolve in insertion order). *)
let run_tasks (sim : t) (pe : pe) : bool =
  match pe.task_queue with
  | [] -> false
  | q ->
      let earliest = List.fold_left (fun acc (t, _) -> Float.min acc t) infinity q in
      let rec extract acc = function
        | (t, name) :: rest when t = earliest -> ((t, name), List.rev_append acc rest)
        | e :: rest -> extract (e :: acc) rest
        | [] ->
            fail
              "PE(%d,%d): task-queue invariant violated: earliest activation \
               %g vanished while dispatching (queue: [%s])"
              pe.px pe.py earliest
              (String.concat "; "
                 (List.map (fun (at, n) -> Printf.sprintf "%s@%g" n at) q))
      in
      (* fault injection at the dispatch point: the hardware scheduler is
         where a stuck or dead PE stops taking work *)
      let halted =
        Faults.enabled sim.faults
        && begin
             let n = Faults.next_dispatch sim.faults ~x:pe.px ~y:pe.py in
             if Faults.halt_here sim.faults ~x:pe.px ~y:pe.py ~activation:n
             then begin
               Faults.record_halt sim.faults ~x:pe.px ~y:pe.py;
               trace_fault sim pe ~name:"halt" pe.clock;
               true
             end
             else begin
               if Faults.stall_here sim.faults ~x:pe.px ~y:pe.py ~activation:n
               then begin
                 let cycles = (Faults.config sim.faults).stall_cycles in
                 Faults.locked sim.faults (fun () ->
                     let st = Faults.stats sim.faults in
                     st.stalls <- st.stalls + 1);
                 trace_span sim pe ~cat:"fault" ~name:"stall" pe.clock
                   (pe.clock +. cycles);
                 pe.clock <- pe.clock +. cycles;
                 pe.stats.wait_cycles <- pe.stats.wait_cycles +. cycles
               end;
               false
             end
           end
      in
      if halted then false
      else begin
        let (t, name), rest = extract [] q in
        pe.task_queue <- rest;
        pe.clock <- Float.max pe.clock t;
        let task_start = pe.clock in
        let comms = exec_func sim pe name [] in
        trace_span sim pe ~cat:"compute" ~name task_start pe.clock;
        List.iter (start_exchange sim pe) comms;
        true
      end

(** Advance one PE as far as possible; returns true on progress. *)
let step_pe (sim : t) (pe : pe) : bool =
  if
    pe.finished
    || Faults.enabled sim.faults
       && Faults.is_halted sim.faults ~x:pe.px ~y:pe.py
  then false
  else begin
    let progressed = ref false in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      (match pe.waiting with
      | Some w when exchange_ready sim pe w ->
          pe.waiting <- None;
          complete_exchange sim pe w;
          progressed := true;
          continue_ := true
      | _ -> ());
      if pe.waiting = None && run_tasks sim pe then begin
        progressed := true;
        continue_ := true
      end;
      if pe.finished then continue_ := false
    done;
    !progressed
  end

(** Start the program on the PEs of columns [x0..x1] (the parallel
    driver launches each strip from its own domain). *)
let launch_cols (sim : t) (x0 : int) (x1 : int) : unit =
  for x = x0 to x1 do
    Array.iter
      (fun pe ->
        let run_start = pe.clock in
        let comms = exec_func sim pe "run" [] in
        trace_span sim pe ~cat:"compute" ~name:"run" run_start pe.clock;
        List.iter (start_exchange sim pe) comms)
      sim.pes.(x)
  done

(** Start the program on every PE (host calls the exported [run]). *)
let launch (sim : t) : unit = launch_cols sim 0 (sim.width - 1)

(** {2 Deadlock diagnostics} *)

(** In-grid senders of [w] that have not registered their send yet. *)
let missing_senders (sim : t) (pe : pe) (w : waiting) : (int * int) list =
  let missing = ref [] in
  List.iter
    (fun inp ->
      List.iter
        (fun (sw : Dmp.swap_desc) ->
          let vx, vy = dir_vector sw.dir in
          for d = 1 to sw.depth do
            let sx = pe.px + (vx * d) and sy = pe.py + (vy * d) in
            if
              in_grid sim sx sy
              && (not (Hashtbl.mem sim.sends (w.w_cfg.apply_id, w.w_seq, sx, sy)))
              && (not
                    (Faults.enabled sim.faults
                    && Faults.is_skipped sim.faults ~apply:w.w_cfg.apply_id
                         ~seq:w.w_seq ~x:sx ~y:sy))
              && not (List.mem (sx, sy) !missing)
            then missing := (sx, sy) :: !missing
          done)
        inp.swaps)
    w.w_cfg.inputs;
  List.rev !missing

(** Quiescence sweep; probes finished flags until the first unfinished
    PE, counting each probe — the polling driver pays this sweep every
    round, the event-driven driver only at the very end. *)
let all_done (sim : t) : bool =
  let st = sim.sched.Sched.stats in
  let done_ = ref true in
  (try
     Array.iter
       (fun col ->
         Array.iter
           (fun pe ->
             st.probes <- st.probes + 1;
             (* a permanently halted PE will never unblock the command
                stream; it is accounted for by the validity mask *)
             if
               (not pe.finished)
               && not
                    (Faults.enabled sim.faults
                    && Faults.is_halted sim.faults ~x:pe.px ~y:pe.py)
             then begin
               done_ := false;
               raise Exit
             end)
           col)
       sim.pes
   with Exit -> ());
  !done_

(** Per-PE report of who is stuck on what: blocked PEs with their
    exchange id and the neighbours that never sent, plus PEs that are
    idle with no runnable work.  Capped so a wafer-scale deadlock does
    not produce a megabyte of text. *)
let deadlock_report (sim : t) : string =
  let max_detail = 16 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "deadlock: no PE can progress\n";
  let blocked = ref 0 and idle = ref 0 in
  Array.iter
    (fun col ->
      Array.iter
        (fun pe ->
          if
            (not pe.finished)
            && not
                 (Faults.enabled sim.faults
                 && Faults.is_halted sim.faults ~x:pe.px ~y:pe.py)
          then
            match pe.waiting with
            | Some w ->
                incr blocked;
                if !blocked <= max_detail then begin
                  let miss = missing_senders sim pe w in
                  Buffer.add_string buf
                    (Printf.sprintf
                       "  PE(%d,%d) blocked on exchange (apply_id=%d, seq=%d): \
                        missing sender%s %s\n"
                       pe.px pe.py w.w_cfg.apply_id w.w_seq
                       (if List.length miss = 1 then "" else "s")
                       (if miss = [] then "<none: exchange ready but unscheduled>"
                        else
                          String.concat ", "
                            (List.map
                               (fun (x, y) -> Printf.sprintf "PE(%d,%d)" x y)
                               miss)))
                end
            | None ->
                incr idle;
                if !idle <= max_detail then
                  Buffer.add_string buf
                    (Printf.sprintf
                       "  PE(%d,%d) idle: not finished but has no queued task or \
                        pending exchange\n"
                       pe.px pe.py))
        col)
    sim.pes;
  if !blocked > max_detail then
    Buffer.add_string buf
      (Printf.sprintf "  ... and %d more blocked PEs\n" (!blocked - max_detail));
  if !idle > max_detail then
    Buffer.add_string buf
      (Printf.sprintf "  ... and %d more idle PEs\n" (!idle - max_detail));
  Buffer.add_string buf
    (Printf.sprintf "  total: %d blocked, %d idle, of %dx%d PEs" !blocked !idle
       sim.width sim.height);
  let halted = Faults.halted_count sim.faults in
  if halted > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "\n  %d PE%s permanently halted by fault injection (enable resilience \
          to degrade gracefully past them)"
         halted
         (if halted = 1 then "" else "s"));
  Buffer.contents buf

(** Graceful degradation past halted PEs, run when the fabric has gone
    quiescent without finishing: every live receiver blocked on a sender
    that is permanently halted gives up after the resilience layer's
    halt timeout — the pending send is marked skipped (receivers then
    substitute zeroes and taint themselves at delivery) and any PE
    parked on it is woken.  Returns whether anything new was marked; the
    drivers alternate run / degrade rounds until either everything
    finishes or degradation stops making progress (a true deadlock).
    Without resilience (or with no injector) this is a no-op and the
    quiescent fabric is reported as deadlocked, as in the seed.
    [notify] overrides where wakes are delivered: the parallel driver
    passes a broadcast into its per-strip schedulers, since that is
    where the receivers are parked. *)
let degrade ?notify (sim : t) : bool =
  let notify =
    match notify with
    | Some f -> f
    | None -> fun k -> ignore (Sched.notify sim.sched k)
  in
  let f = sim.faults in
  if not (Faults.enabled f) then false
  else
    match (Faults.config f).resilience with
    | None -> false
    | Some r ->
        let marked = ref false in
        Array.iter
          (fun col ->
            Array.iter
              (fun pe ->
                if
                  (not pe.finished)
                  && not (Faults.is_halted f ~x:pe.px ~y:pe.py)
                then
                  match pe.waiting with
                  | None -> ()
                  | Some w ->
                      List.iter
                        (fun (sx, sy) ->
                          if Faults.is_halted f ~x:sx ~y:sy then begin
                            Faults.skip_send f ~apply:w.w_cfg.apply_id
                              ~seq:w.w_seq ~x:sx ~y:sy;
                            Faults.locked f (fun () ->
                                let st = Faults.stats f in
                                st.halt_timeouts <- st.halt_timeouts + 1;
                                st.recovery_cycles <-
                                  st.recovery_cycles
                                  +. r.Faults.halt_timeout_cycles);
                            trace_fault sim pe ~name:"halt-timeout"
                              (w.w_registered_at +. r.Faults.halt_timeout_cycles);
                            marked := true;
                            notify (w.w_cfg.apply_id, w.w_seq, sx, sy)
                          end)
                        (missing_senders sim pe w))
              col)
          sim.pes;
        !marked

(** {2 Drivers} *)

type driver = Polling | Event_driven | Parallel of int

(** The seed driver: rescan every PE of the grid each round until no PE
    makes progress.  Kept for scheduler-equivalence testing and the
    [sched] microbenchmark; the event-driven driver below is the default. *)
let run_polling ~(max_rounds : int) (sim : t) : unit =
  let rounds = ref 0 in
  let rec drive () =
    let any = ref true in
    while (not (all_done sim)) && !any do
      incr rounds;
      if !rounds > max_rounds then fail "simulation did not converge";
      any := false;
      Array.iter
        (fun col ->
          Array.iter
            (fun pe ->
              sim.sched.Sched.stats.scans <- sim.sched.Sched.stats.scans + 1;
              if step_pe sim pe then any := true)
            col)
        sim.pes
    done;
    if not (all_done sim) then
      (* quiescent but unfinished: degrade past halted PEs and rerun *)
      if degrade sim then drive ()
      else raise (Sim_error (deadlock_report sim))
  in
  drive ()

(** Scans a scheduler pre-acquires from the run's shared divergence
    budget in one atomic operation: large enough that the shared counter
    stays off the hot path, small enough (versus any realistic budget of
    [max_rounds * width * height]) that the guard still trips within a
    sliver of the sequential bound. *)
let budget_batch = 256

(** Charge one PE scan against the run-wide budget shared by every
    strip of the parallel driver (and trivially owned by the sequential
    event driver).  Refills the scheduler's local quota in batches so a
    livelocked program fails at (essentially) the same scan bound under
    every driver, instead of each strip separately enjoying the whole
    grid's allowance. *)
let charge_scan (s : Sched.t) (budget : int Atomic.t) : unit =
  if s.Sched.quota <= 0 then begin
    if Atomic.fetch_and_add budget (-budget_batch) <= 0 then
      fail "simulation did not converge";
    s.Sched.quota <- budget_batch
  end;
  s.Sched.quota <- s.Sched.quota - 1

(** Pop runnable PEs off [sim]'s ready ring until it drains; a PE that
    blocks on an exchange parks on the wake list of its first missing
    sender and is re-enqueued by that sender's [register_send] (see
    {!Sched}).  Shared by the event-driven driver (whole grid) and the
    parallel driver (per strip, interleaved with inbox deliveries).
    [budget] is the run-wide scan allowance; see {!charge_scan}. *)
let drain_ready ~(budget : int Atomic.t) (sim : t) : unit =
  let s = sim.sched in
  let width = sim.width in
  let rec loop () =
    let idx = Sched.pop s in
    if idx >= 0 then begin
      let x = idx mod width and y = idx / width in
      let pe = sim.pes.(x).(y) in
      s.Sched.stats.scans <- s.Sched.stats.scans + 1;
      charge_scan s budget;
      ignore (step_pe sim pe);
      let halted =
        Faults.enabled sim.faults && Faults.is_halted sim.faults ~x ~y
      in
      if (not pe.finished) && not halted then begin
        match pe.waiting with
        | Some w -> (
            match missing_senders sim pe w with
            | (sx, sy) :: _ ->
                trace_instant sim pe ~cat:"sched" ~name:"park" pe.clock;
                Sched.park s (w.w_cfg.apply_id, w.w_seq, sx, sy) idx
            | [] ->
                (* all senders landed between the readiness check and
                   here; cannot normally happen, but never strand it *)
                Sched.enqueue s x y)
        | None ->
            (* no pending exchange: runnable iff tasks remain (step_pe
               drains them, so this is defensive); otherwise the PE is
               terminally idle and is diagnosed at the end *)
            if pe.task_queue <> [] then Sched.enqueue s x y
      end;
      loop ()
    end
  in
  loop ()

(** Event-driven driver.  Execution order differs from the polling
    driver but per-PE results are identical: a PE's behaviour depends
    only on its own state and on send records, which are immutable once
    registered. *)
let run_event ~(max_rounds : int) (sim : t) : unit =
  (* same divergence guard as the polling driver: it allowed up to
     [max_rounds] whole-grid rescans *)
  let budget = Atomic.make (max_rounds * sim.width * sim.height) in
  Array.iter
    (fun col -> Array.iter (fun pe -> Sched.enqueue sim.sched pe.px pe.py) col)
    sim.pes;
  let rec drive () =
    drain_ready ~budget sim;
    if not (all_done sim) then
      (* the queue drained but PEs are still blocked: degrade past any
         halted senders (which wakes their parked receivers) and rerun *)
      if degrade sim then drive ()
      else raise (Sim_error (deadlock_report sim))
  in
  drive ()

(** {2 Parallel driver (conservative PDES on a persistent worker pool)}

    The grid is cut into contiguous vertical strips, one per worker
    domain; each strip runs {!drain_ready} over a private view of the
    simulator — its own send table, scheduler and trace collector, while
    PE state is only ever touched by the strip that owns the PE.

    Workers are {e persistent}: [run_parallel] spawns exactly [n]
    domains once, parks them on a Mutex/Condition barrier, and releases
    them per round — each strip's scheduler, inbox and trace collector
    stay domain-resident for the whole run, and no spawn/join cost is
    paid per round.  (PR 5 spawned and joined every strip every round,
    thousands of times per run, which swamped the strip work; the
    spawn-counter regression test pins the new behaviour.)

    Cross-strip sends stream {e during} the round: a send registered
    within [reach] columns of a strip edge is pushed, by the sending
    worker, into a mutex-protected inbox of every strip the sender can
    reach ([reach] — the lookahead — is the maximum swap depth any
    communicate config uses, i.e. the farthest a wavelet travels in one
    exchange).  When a strip's ready ring drains, it takes its whole
    inbox in one lock exchange and batches it into its own send table —
    delivery is exactly-once by construction, so no per-entry membership
    probe — and keeps draining if anything woke.  A strip therefore runs
    as many exchange generations per round as its neighbours can feed
    it, instead of exactly one per barrier; the barrier only lands when
    no strip can progress without the coordinator (termination check,
    resilience degrade) — rounds are few and long rather than
    per-generation.

    Bit-identity with the sequential drivers: arrival times are
    computed from the immutable send record ([sr_chunk_ready] plus hop
    latency), never from when the record became visible, and fault
    decisions are pure site hashes — so when a record becomes visible
    (mid-round or at a barrier) shifts *when* a receiver resumes, not
    *what* it computes.  Per-PE execution sequences are therefore
    identical, and so are pe_stats, drained fields and fault reports.
    Per-strip trace collectors are folded into the caller's sink in
    strip order: span sets and timestamps match the sequential drivers
    exactly; only the within-strip emission order and the
    driver-specific "sched" park/wake instants depend on cross-domain
    timing (as park/wake instants already did versus polling). *)

(** Farthest hop distance any communicate config of the program reaches:
    the lookahead of the round barrier. *)
let max_swap_depth (sim : t) : int =
  find_ops
    (fun o ->
      o.opname = "csl.member_call"
      &&
      match attr o "field" with
      | Some (String_attr "communicate") -> true
      | _ -> false)
    sim.program
  |> List.fold_left
       (fun acc o ->
         let cfg = parse_comm_cfg (attr_exn o "config") in
         List.fold_left
           (fun acc inp ->
             List.fold_left
               (fun acc (sw : Dmp.swap_desc) -> max acc sw.depth)
               acc inp.swaps)
           acc cfg.inputs)
       1

(* Test-visible count of worker domains ever spawned by [run_parallel]:
   the regression test asserts one run raises it by exactly the domain
   count, however many rounds the run takes. *)
let spawn_counter : int Atomic.t = Atomic.make 0

let domains_spawned () : int = Atomic.get spawn_counter

(** Worker domains a driver actually uses on a [width]-column grid: the
    sequential drivers use none, and [Parallel n] clamps to at least one
    strip and at most one strip per column.  This is the clamp
    [run_parallel] itself applies, so JSON summaries and bench artifacts
    that report it stay truthful even for requests the CLI expanded
    ([--domains 0]) or that exceed the grid ([n > width]). *)
let effective_domains (d : driver) ~(width : int) : int =
  match d with
  | Polling | Event_driven -> 0
  | Parallel n -> max 1 (min n width)

type tile = {
  t_sim : t;  (** private view: own sends / sched / trace, shared PEs *)
  t_x0 : int;
  t_x1 : int;
  t_inbox_lock : Mutex.t;
  mutable t_inbox : (Sched.key * send_record) list;
      (** cross-strip sends posted by neighbouring workers mid-round,
          newest first; the owning strip takes the whole list in one
          lock exchange whenever its ready ring drains *)
}

let run_parallel ~(max_rounds : int) ~(domains : int) (sim : t) : unit =
  let n = effective_domains (Parallel domains) ~width:sim.width in
  if n = 1 then begin
    launch sim;
    run_event ~max_rounds sim
  end
  else begin
    let reach = max_swap_depth sim in
    let tiles =
      Array.init n (fun i ->
          let x0 = i * sim.width / n and x1 = (((i + 1) * sim.width) / n) - 1 in
          let t_sim =
            {
              sim with
              sends = Hashtbl.create 1024;
              sched = Sched.create ~width:sim.width ~height:sim.height;
              trace =
                (if Trace.enabled sim.trace then Trace.collector ()
                 else Trace.null);
              on_send = None;
            }
          in
          {
            t_sim;
            t_x0 = x0;
            t_x1 = x1;
            t_inbox_lock = Mutex.create ();
            t_inbox = [];
          })
    in
    (* wire the send hooks second — each needs the finished [tiles]
       array: a boundary send is pushed straight into the inbox of every
       strip within lookahead reach, so receivers can consume it in the
       same round instead of waiting for a barrier *)
    Array.iteri
      (fun i tl ->
        let x0 = tl.t_x0 and x1 = tl.t_x1 in
        let post j entry =
          let dst = tiles.(j) in
          Mutex.lock dst.t_inbox_lock;
          dst.t_inbox <- entry :: dst.t_inbox;
          Mutex.unlock dst.t_inbox_lock
        in
        let export ((_, _, sx, _) as k : Sched.key) (r : send_record) : unit =
          let entry = (k, r) in
          if x1 - sx < reach then begin
            let j = ref (i + 1) in
            while !j < n && tiles.(!j).t_x0 - sx <= reach do
              post !j entry;
              incr j
            done
          end;
          if sx - x0 < reach then begin
            let j = ref (i - 1) in
            while !j >= 0 && sx - tiles.(!j).t_x1 <= reach do
              post !j entry;
              decr j
            done
          end
        in
        tl.t_sim.on_send <- Some export)
      tiles;
    (* one shared divergence budget for the whole run: non-convergence
       fails at the same whole-grid bound as the sequential drivers,
       instead of each strip separately enjoying the full allowance *)
    let budget = Atomic.make (max_rounds * sim.width * sim.height) in
    (* take the strip's inbox in one lock exchange and batch it into its
       send table.  Delivery is exactly-once by construction (a sender
       posts a record to each reachable strip exactly once, and the
       left/right sweeps cover disjoint strips), so there is no
       per-entry membership probe.  Returns whether any parked PE woke. *)
    let drain_inbox (tl : tile) : bool =
      Mutex.lock tl.t_inbox_lock;
      let batch = tl.t_inbox in
      tl.t_inbox <- [];
      Mutex.unlock tl.t_inbox_lock;
      let woke = ref false in
      List.iter
        (fun (k, r) ->
          Hashtbl.replace tl.t_sim.sends k r;
          if Sched.notify tl.t_sim.sched k <> [] then woke := true)
        batch;
      !woke
    in
    (* a round runs as many exchange generations as neighbours can feed
       this strip: drain the ready ring, absorb whatever landed in the
       inbox meanwhile, and go again until neither side has work.  The
       barrier only lands when no strip can progress on its own. *)
    let tile_round (tl : tile) ~(first : bool) : unit =
      if first then begin
        launch_cols tl.t_sim tl.t_x0 tl.t_x1;
        for x = tl.t_x0 to tl.t_x1 do
          for y = 0 to sim.height - 1 do
            Sched.enqueue tl.t_sim.sched x y
          done
        done
      end;
      let continue_ = ref true in
      while !continue_ do
        drain_ready ~budget tl.t_sim;
        continue_ := drain_inbox tl
      done
    in
    (* persistent worker pool: [n] domains spawned once for the whole
       run and parked on a Mutex/Condition barrier between rounds — a
       round is released by bumping [epoch] and is over when every
       worker has checked back in.  Strip state (scheduler, inbox,
       trace collector) stays domain-resident; nothing is spawned or
       joined per round. *)
    let pool_lock = Mutex.create () in
    let work_ready = Condition.create () in
    let round_done = Condition.create () in
    let epoch = ref 0 in
    let running = ref 0 in
    let stop = ref false in
    let failures : exn option array = Array.make n None in
    let worker i () =
      let tl = tiles.(i) in
      let seen = ref 0 in
      let live = ref true in
      while !live do
        Mutex.lock pool_lock;
        while !epoch = !seen && not !stop do
          Condition.wait work_ready pool_lock
        done;
        if !stop then begin
          Mutex.unlock pool_lock;
          live := false
        end
        else begin
          seen := !epoch;
          Mutex.unlock pool_lock;
          (try tile_round tl ~first:(!seen = 1)
           with e -> failures.(i) <- Some e);
          Mutex.lock pool_lock;
          decr running;
          if !running = 0 then Condition.signal round_done;
          Mutex.unlock pool_lock
        end
      done
    in
    let pool =
      Array.init n (fun i ->
          Atomic.incr spawn_counter;
          Domain.spawn (worker i))
    in
    let shutdown () =
      Mutex.lock pool_lock;
      stop := true;
      Condition.broadcast work_ready;
      Mutex.unlock pool_lock;
      Array.iter Domain.join pool
    in
    (* release one round and wait for the barrier; worker failures are
       re-raised lowest strip first, deterministically *)
    let round () : unit =
      Mutex.lock pool_lock;
      running := n;
      incr epoch;
      Condition.broadcast work_ready;
      while !running > 0 do
        Condition.wait round_done pool_lock
      done;
      Mutex.unlock pool_lock;
      Array.iter (function Some e -> raise e | None -> ()) failures
    in
    let pending () =
      Array.exists
        (fun tl ->
          (not (Sched.is_empty tl.t_sim.sched))
          ||
          (Mutex.lock tl.t_inbox_lock;
           let nonempty = tl.t_inbox <> [] in
           Mutex.unlock tl.t_inbox_lock;
           nonempty))
        tiles
    in
    (* driver-level profiling: one counter sample per barrier under
       [Trace.driver_pid], timestamped by round number and sampled with
       every worker parked *)
    let round_idx = ref 0 in
    let trace_round () =
      if Trace.enabled sim.trace then begin
        let ready = ref 0 in
        Array.iter (fun tl -> ready := !ready + tl.t_sim.sched.Sched.count) tiles;
        Trace.counter sim.trace ~pid:Trace.driver_pid ~tid:0 ~name:"round"
          ~values:[ ("ready_backlog", float_of_int !ready) ]
          (float_of_int !round_idx)
      end
    in
    let rec rounds () : unit =
      round ();
      incr round_idx;
      trace_round ();
      if pending () then rounds ()
    in
    (* global diagnostics (all_done / degrade / deadlock_report) run on
       the caller's view, which needs every strip's sends *)
    let merge_sends () =
      Array.iter
        (fun tl ->
          Hashtbl.iter (fun k r -> Hashtbl.replace sim.sends k r) tl.t_sim.sends)
        tiles
    in
    let notify_tiles k =
      Array.iter (fun tl -> ignore (Sched.notify tl.t_sim.sched k)) tiles
    in
    let rec finish () =
      merge_sends ();
      if not (all_done sim) then
        if degrade ~notify:notify_tiles sim then begin
          rounds ();
          finish ()
        end
        else raise (Sim_error (deadlock_report sim))
    in
    Fun.protect ~finally:shutdown (fun () ->
        if Trace.enabled sim.trace then begin
          Trace.name_process sim.trace ~pid:Trace.driver_pid "driver";
          Trace.name_track sim.trace ~pid:Trace.driver_pid ~tid:0
            "parallel rounds"
        end;
        rounds ();
        finish ());
    (* fold per-strip observations into the caller's view: traces merged
       in strip order (deterministic), scheduler counters summed *)
    if Trace.enabled sim.trace then
      Trace.merge_into ~into:sim.trace
        (Array.to_list (Array.map (fun tl -> tl.t_sim.trace) tiles));
    let mst = sim.sched.Sched.stats in
    Array.iter
      (fun tl ->
        let st = Sched.stats tl.t_sim.sched in
        mst.Sched.scans <- mst.Sched.scans + st.Sched.scans;
        mst.Sched.probes <- mst.Sched.probes + st.Sched.probes;
        mst.Sched.wakeups <- mst.Sched.wakeups + st.Sched.wakeups;
        mst.Sched.parks <- mst.Sched.parks + st.Sched.parks;
        if st.Sched.max_queue_depth > mst.Sched.max_queue_depth then
          mst.Sched.max_queue_depth <- st.Sched.max_queue_depth)
      tiles
  end

(** Short name for reports and JSON summaries; the domain count of
    [Parallel] is reported separately by its consumers. *)
let driver_name = function
  | Polling -> "polling"
  | Event_driven -> "event"
  | Parallel _ -> "parallel"

(** Domain count a driver asks for (0 for the sequential drivers). *)
let driver_domains = function
  | Polling | Event_driven -> 0
  | Parallel n -> n

(** Drive until every PE unblocks the command stream. *)
let run_to_completion ?max_rounds ?(driver = Event_driven) (sim : t) : unit =
  let max_rounds =
    match max_rounds with Some r -> r | None -> sim.machine.sim_max_rounds
  in
  match driver with
  | Polling ->
      launch sim;
      run_polling ~max_rounds sim
  | Event_driven ->
      launch sim;
      run_event ~max_rounds sim
  | Parallel domains -> run_parallel ~max_rounds ~domains sim

(** Scheduler counters of the last run. *)
let sched_stats (sim : t) : Sched.stats = Sched.stats sim.sched

(** Fault and recovery counters of the last run (all zero with the null
    injector). *)
let fault_stats (sim : t) : Faults.stats = Faults.stats sim.faults

(** Per-PE validity mask, indexed [x][y]: false where the PE halted or
    consumed substituted / unrecoverable data (directly or transitively
    through a tainted neighbour's send).  All-true with the null
    injector. *)
let validity (sim : t) : bool array array =
  Array.init sim.width (fun x ->
      Array.init sim.height (fun y ->
          not
            (Faults.is_halted sim.faults ~x ~y
            || Faults.is_tainted sim.faults ~x ~y)))

(** Wall-clock of the slowest PE, in cycles and seconds. *)
let elapsed_cycles (sim : t) : float =
  Array.fold_left
    (fun acc col -> Array.fold_left (fun acc pe -> Float.max acc pe.clock) acc col)
    0.0 sim.pes

let elapsed_seconds (sim : t) : float = elapsed_cycles sim /. sim.machine.clock_hz

(** Per-PE cycle accounts in the shape the trace aggregation consumes
    (row-major: y varies fastest within a column of constant x). *)
let pe_summaries (sim : t) : Wsc_trace.Aggregate.pe_summary list =
  let acc = ref [] in
  Array.iter
    (fun col ->
      Array.iter
        (fun pe ->
          acc :=
            {
              Wsc_trace.Aggregate.ps_x = pe.px;
              ps_y = pe.py;
              ps_compute = pe.stats.compute_cycles;
              ps_send = pe.stats.send_cycles;
              ps_wait = pe.stats.wait_cycles;
              ps_clock = pe.clock;
              ps_tasks = pe.stats.task_activations;
            }
            :: !acc)
        col)
    sim.pes;
  List.rev !acc

(** Aggregate statistics over all PEs. *)
let total_stats (sim : t) : pe_stats =
  let acc =
    {
      compute_cycles = 0.0;
      send_cycles = 0.0;
      wait_cycles = 0.0;
      task_activations = 0;
      flops = 0.0;
      elems_sent = 0;
      elems_drained = 0;
      mem_bytes = 0.0;
    }
  in
  Array.iter
    (fun col ->
      Array.iter
        (fun pe ->
          acc.compute_cycles <- acc.compute_cycles +. pe.stats.compute_cycles;
          acc.send_cycles <- acc.send_cycles +. pe.stats.send_cycles;
          acc.wait_cycles <- acc.wait_cycles +. pe.stats.wait_cycles;
          acc.task_activations <- acc.task_activations + pe.stats.task_activations;
          acc.flops <- acc.flops +. pe.stats.flops;
          acc.elems_sent <- acc.elems_sent + pe.stats.elems_sent;
          acc.elems_drained <- acc.elems_drained + pe.stats.elems_drained;
          acc.mem_bytes <- acc.mem_bytes +. pe.stats.mem_bytes)
        col)
    sim.pes;
  acc
