(** Fabric simulator: executes a compiled csl program on a simulated grid
    of PEs with per-PE cycle accounting, a native implementation of the
    runtime communication library (paper §5.6), and the WSE2 self-send
    switch behaviour.  See {!Host} for the data-loading front door. *)

exception Sim_error of string

type input_cfg = {
  send_ptr : string;
  swaps : Wsc_dialects.Dmp.swap_desc list;
  rcv_bufs : (Wsc_dialects.Dmp.direction * string) list;
}

type comm_cfg = {
  apply_id : int;
  inputs : input_cfg list;
  coeffs : (int * int * int * float) list;
  z_base : int;
  c_nz : int;
  num_chunks : int;
  chunk_size : int;
  chunk_cb : string;
  done_cb : string;
}

type pe_stats = {
  mutable compute_cycles : float;
  mutable send_cycles : float;
  mutable wait_cycles : float;
  mutable task_activations : int;
  mutable flops : float;
      (** algorithmic FLOPs, including promoted-coefficient reductions
          performed while draining the input queue *)
  mutable elems_sent : int;
  mutable elems_drained : int;  (** wavelets received over the ramp *)
  mutable mem_bytes : float;  (** SRAM traffic of the DSD builtins *)
}

(** First field in which two per-PE stat records differ, with both
    values (e.g. ["elems_sent: 128 <> 130"]); [None] when equal.  The
    cross-driver bit-identity assertions in the benchmark harness and
    the tests share this, so every mismatch names the culprit field. *)
val stats_diff : pe_stats -> pe_stats -> string option

(** [stats_diff a b = None]. *)
val stats_equal : pe_stats -> pe_stats -> bool

(** Event-driven scheduler: a ready queue of runnable PEs plus per-send
    wake lists, so a PE blocked on a neighbour exchange is woken exactly
    when the matching send registers instead of being re-polled every
    round.  The ready queue is a flat int ring buffer of PE indices
    [y * width + x] — no box per element, nothing allocated on the
    enqueue/pop hot path — and membership is a flat [Bytes.t] bitset
    over the same index, so nothing hashes a coordinate pair per step.
    Counters feed the [sched] microbenchmark. *)
module Sched : sig
  (** A pending send: (apply_id, seq, sender x, sender y). *)
  type key = int * int * int * int

  type stats = {
    mutable scans : int;  (** PE visits by the driver ([step_pe] calls) *)
    mutable probes : int;  (** finished-flag probes by quiescence sweeps *)
    mutable wakeups : int;  (** parked PEs re-enqueued by a landing send *)
    mutable parks : int;  (** times a PE was parked on a wake list *)
    mutable max_queue_depth : int;  (** ready-queue high-water mark *)
  }

  type t

  (** A scheduler for a [width] x [height] grid (the dimensions size the
      membership bitset). *)
  val create : width:int -> height:int -> t

  val stats : t -> stats
end

type pe = {
  px : int;
  py : int;
  globals : (string, float array) Hashtbl.t;
  scalars : (string, int ref) Hashtbl.t;
  ptrs : (string, string ref) Hashtbl.t;
  mutable clock : float;  (** local cycle count *)
  mutable finished : bool;
  mutable task_queue : (float * string) list;
  mutable waiting : waiting option;
  mutable seq : (int, int) Hashtbl.t;
  stats : pe_stats;
}

and waiting

type t = {
  machine : Machine.t;
  program : Wsc_ir.Ir.op;
  width : int;
  height : int;
  pes : pe array array;
  funcs : (string, Wsc_ir.Ir.op) Hashtbl.t;
  tasks : (string, Wsc_ir.Ir.op) Hashtbl.t;
  sends : (int * int * int * int, send_record) Hashtbl.t;
  halo : (int * int, float array) Hashtbl.t;
      (** host-resident Dirichlet boundary columns *)
  z_halo : int;
  zfull : int;
  nz : int;
  sched : Sched.t;
  trace : Wsc_trace.Trace.sink;
      (** where the simulator reports spans and link transfers; with
          {!Wsc_trace.Trace.null} every emission site is a dead branch
          and results are bit-identical to an untraced run *)
  faults : Wsc_faults.Faults.t;
      (** fault-injection schedule and resilience bookkeeping; with
          {!Wsc_faults.Faults.null} (the default) every injection site
          is a dead branch, exactly like the trace sink *)
  mutable on_send : (Sched.key -> send_record -> unit) option;
      (** observation hook run by the send-registration path right after
          a record is stored: the parallel driver streams boundary sends
          into neighbouring strips' inboxes through it.  [None] (the
          sequential drivers) costs one branch per send. *)
}

and send_record

(** Largest PE grid the simulator instantiates in one process; full
    wafers are measured via proxy-grid extrapolation. *)
val max_simulated_pes : int

(** Instantiate the PE grid for a program module.  [trace] (default
    {!Wsc_trace.Trace.null}) receives per-PE spans (compute, send,
    parked-on-exchange, drain), scheduler wake/park instants and
    per-link transfer flows as the simulation runs.  [faults] (default
    {!Wsc_faults.Faults.null}) injects the configured fault schedule
    into task dispatch and link delivery, and — when its config enables
    resilience — drives the detection & recovery protocol of the
    simulated comms layer.
    @raise Sim_error when the grid exceeds the fabric, is too large to
    simulate in-process, or the program's per-PE memory exceeds 48 kB. *)
val create :
  ?trace:Wsc_trace.Trace.sink ->
  ?faults:Wsc_faults.Faults.t ->
  Machine.t ->
  Wsc_ir.Ir.op ->
  t

val in_grid : t -> int -> int -> bool

(** The buffer a pointer global of a PE currently targets. *)
val deref : pe -> string -> float array

(** Run one queued task of a PE — the entry with the earliest activation
    timestamp, as the hardware scheduler would dispatch it.  Returns
    false when the queue is empty.  Exposed for scheduler tests. *)
val run_tasks : t -> pe -> bool

(** How {!run_to_completion} drives the grid: [Polling] is the seed
    driver (rescan every PE each round); [Event_driven] (the default) is
    the ready-queue/wake-list scheduler; [Parallel n] cuts the grid into
    [n] contiguous vertical strips, each driven by the event scheduler
    on a worker [Domain.t] from a pool spawned once per run, with
    boundary sends streamed into neighbouring strips' inboxes mid-round
    and a reusable barrier whose lookahead is the program's maximum
    exchange hop distance.  Elapsed cycles, per-PE statistics, drained
    fields and fault reports are bit-identical across all three — a
    PE's behaviour depends only on its own state and on immutable send
    records, whose arrival times are computed from record contents
    rather than from when the driver made them visible.  [Parallel n]
    with [n <= 1] (or a one-column grid) falls back to [Event_driven]. *)
type driver = Polling | Event_driven | Parallel of int

(** ["polling"], ["event"] or ["parallel"], for reports and JSON
    summaries (the domain count is reported separately). *)
val driver_name : driver -> string

(** Domain count a driver asks for (0 for the sequential drivers). *)
val driver_domains : driver -> int

(** Worker domains the driver actually uses on a [width]-column grid —
    the clamp [Parallel] applies internally ([max 1 (min n width)]; 0
    for the sequential drivers).  Report this, not the requested count,
    in summaries and bench artifacts. *)
val effective_domains : driver -> width:int -> int

(** Total worker domains spawned by parallel runs since program start.
    Test hook: the delta across one run must equal the effective domain
    count — the pool is spawned once, never per round. *)
val domains_spawned : unit -> int

(** Start the program on every PE and drive the dependency-directed
    scheduler until every PE has unblocked the command stream.
    [max_rounds] defaults to the machine's [sim_max_rounds].
    @raise Sim_error on divergence, or on deadlock with a report of
    which PEs are blocked, on which (apply_id, seq) exchange, and which
    neighbour never sent. *)
val run_to_completion : ?max_rounds:int -> ?driver:driver -> t -> unit

(** Scheduler counters of the last run (scans, wakeups, parks, queue
    depth); the polling driver only advances [scans]. *)
val sched_stats : t -> Sched.stats

(** Fault and recovery counters of the last run (all zero with the null
    injector). *)
val fault_stats : t -> Wsc_faults.Faults.stats

(** Per-PE validity mask, indexed [x][y]: false where the PE halted or
    consumed substituted / unrecoverable data (directly or transitively
    through a tainted neighbour's send).  All-true with the null
    injector. *)
val validity : t -> bool array array

(** Wall-clock of the slowest PE. *)
val elapsed_cycles : t -> float

val elapsed_seconds : t -> float

(** Per-PE cycle accounts in the shape the trace aggregation consumes. *)
val pe_summaries : t -> Wsc_trace.Aggregate.pe_summary list

(** Aggregate statistics over all PEs. *)
val total_stats : t -> pe_stats
