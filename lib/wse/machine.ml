(** Machine models of the Cerebras WSE generations (paper §2, §6).

    Parameters are calibrated against published figures: each PE performs
    one 32-bit fused multiply-accumulate per cycle through the DSD
    builtins (so the hand-tuned 25-point seismic kernel's 28.2% of peak on
    WSE2 reproduces Jacquelin et al.'s numbers), wavelets move one hop per
    cycle, and — the key WSE2/WSE3 difference the paper exploits — the
    WSE2's switch configuration requires each PE to transmit data to
    itself as well as to its neighbours, doubling injection cost, which
    the WSE3's upgraded switching logic removes (§6). *)

type generation = WSE2 | WSE3

type t = {
  gen : generation;
  name : string;
  clock_hz : float;
  max_width : int;
  max_height : int;
  pe_memory_bytes : int;
  self_send : bool;  (** WSE2 switch workaround: every send also loops back *)
  dsd_overhead_cycles : int;  (** fixed cost to issue one DSD builtin *)
  dsd_elems_per_cycle : float;  (** f32 throughput of DSD builtins *)
  send_cycles_per_elem : float;  (** fabric injection cost per 32-bit wavelet *)
  drain_cycles_per_elem : float;
      (** cost of moving/reducing one incoming wavelet from the input
          queue to memory (the communication library's @fmacs off the
          fabric, §5.7) *)
  hop_cycles : int;  (** per-hop router latency *)
  task_activate_cycles : int;  (** hardware task scheduling overhead *)
  call_cycles : int;  (** function call overhead *)
  flops_per_pe_per_cycle : float;  (** peak: one f32 FMA per cycle *)
  sim_max_rounds : int;
      (** simulator divergence guard: max whole-grid scan rounds (or the
          per-PE-scan equivalent for the event-driven driver) before the
          run is declared non-converging *)
}

let wse2 : t =
  {
    gen = WSE2;
    name = "WSE2";
    clock_hz = 1.1e9;
    max_width = 750;
    max_height = 994;
    pe_memory_bytes = 48 * 1024;
    self_send = true;
    dsd_overhead_cycles = 6;
    dsd_elems_per_cycle = 0.5;
    send_cycles_per_elem = 2.0;
    drain_cycles_per_elem = 2.0;
    hop_cycles = 1;
    task_activate_cycles = 60;
    call_cycles = 10;
    flops_per_pe_per_cycle = 2.0;
    sim_max_rounds = 1_000_000;
  }

let wse3 : t =
  {
    wse2 with
    gen = WSE3;
    name = "WSE3";
    max_width = 762;
    max_height = 1176;
    self_send = false;
    task_activate_cycles = 50;
  }

let of_generation = function WSE2 -> wse2 | WSE3 -> wse3

(** Total PEs of the full wafer. *)
let total_pes (m : t) = m.max_width * m.max_height

(** Peak f32 compute of the wafer in FLOP/s. *)
let peak_flops (m : t) = float_of_int (total_pes m) *. m.flops_per_pe_per_cycle *. m.clock_hz

(** Peak local memory bandwidth per PE: 128-bit read + 64-bit write per
    cycle (paper §2). *)
let mem_bandwidth_per_pe (m : t) = 24.0 *. m.clock_hz

(** Aggregate link bandwidth: 32-bit in each of 4 directions per cycle
    per PE (the headline "214 Pb/s" class figure). *)
let fabric_bandwidth_per_pe (m : t) = 16.0 *. m.clock_hz

(** Usable fabric bandwidth for a PE's own data: the ramp moves one
    32-bit wavelet per cycle between core and router, which is what
    bounds a stencil's injection and drain rates. *)
let ramp_bandwidth_per_pe (m : t) = 4.0 *. m.clock_hz
