(** The compile service's wire format — see the interface. *)

module J = Wsc_trace.Json
module Pipeline = Wsc_core.Pipeline

type compile_request = {
  rq_id : int;
  rq_source : string;
  rq_options : Pipeline.options;
  rq_timeout_s : float option;
}

type request = Compile of compile_request | Stats of int | Shutdown of int

(* ------------------------------------------------------------------ *)
(* config <-> options                                                  *)
(* ------------------------------------------------------------------ *)

(* Shared with the persisted tuned-config store: one serializer keys
   both surfaces, so a config that round-trips on the wire round-trips
   on disk. *)
let options_of_config = Tuned.options_of_config
let config_of_options = Tuned.config_of_options

(* ------------------------------------------------------------------ *)
(* requests                                                            *)
(* ------------------------------------------------------------------ *)

let request_of_string ~(defaults : Pipeline.options) (line : string) :
    (request, int option * string) Stdlib.result =
  match J.of_string line with
  | Error msg -> Error (None, "request is not valid JSON: " ^ msg)
  | Ok doc -> (
      let id =
        match J.member "id" doc with Some (J.Int i) -> Some i | _ -> None
      in
      let fail msg = Error (id, msg) in
      match id with
      | None -> fail "request has no integer \"id\""
      | Some id -> (
          match Option.bind (J.member "op" doc) J.to_string_opt with
          | None -> fail "request has no string \"op\""
          | Some "stats" -> Ok (Stats id)
          | Some "shutdown" -> Ok (Shutdown id)
          | Some "compile" -> (
              match Option.bind (J.member "source" doc) J.to_string_opt with
              | None -> fail "compile request has no string \"source\""
              | Some source -> (
                  let timeout_s =
                    Option.bind (J.member "timeout_s" doc) J.to_number_opt
                  in
                  match J.member "config" doc with
                  | None | Some J.Null ->
                      Ok
                        (Compile
                           {
                             rq_id = id;
                             rq_source = source;
                             rq_options = defaults;
                             rq_timeout_s = timeout_s;
                           })
                  | Some (J.Obj kvs) -> (
                      match options_of_config defaults kvs with
                      | Ok rq_options ->
                          Ok
                            (Compile
                               {
                                 rq_id = id;
                                 rq_source = source;
                                 rq_options;
                                 rq_timeout_s = timeout_s;
                               })
                      | Error msg -> fail msg)
                  | Some _ -> fail "config: expected an object"))
          | Some op -> fail (Printf.sprintf "unknown op %S" op)))

let request_to_string (r : request) : string =
  let doc =
    match r with
    | Stats id -> J.Obj [ ("id", J.Int id); ("op", J.String "stats") ]
    | Shutdown id -> J.Obj [ ("id", J.Int id); ("op", J.String "shutdown") ]
    | Compile c ->
        J.Obj
          ([
             ("id", J.Int c.rq_id);
             ("op", J.String "compile");
             ("source", J.String c.rq_source);
             ("config", config_of_options c.rq_options);
           ]
          @
          match c.rq_timeout_s with
          | None -> []
          | Some s -> [ ("timeout_s", J.Float s) ])
  in
  J.to_string doc

let compile_line ~(id : int) ~(source : string) : string =
  J.to_string
    (J.Obj
       [ ("id", J.Int id); ("op", J.String "compile"); ("source", J.String source) ])

(* ------------------------------------------------------------------ *)
(* responses                                                           *)
(* ------------------------------------------------------------------ *)

let envelope ~(id : int option) ~(op : string) (results : J.t list) : J.t =
  J.summary ~tool:"serve"
    ~config:
      [
        ("id", match id with Some i -> J.Int i | None -> J.Null);
        ("op", J.String op);
      ]
    ~results

let timing_obj (tm : Engine.timing) : J.t =
  J.Obj
    [
      ("queue_s", J.Float (Engine.queue_s tm));
      ("parse_s", J.Float (Engine.parse_s tm));
      ("compile_s", J.Float (Engine.compile_s tm));
      ("emit_s", J.Float (Engine.emit_s tm));
      ("total_s", J.Float (Engine.total_s tm));
    ]

(** The cacheable payload: everything here comes from the cached
    [Engine.compiled] record, so a hit renders it byte-identically to
    the cold compile that populated the entry. *)
let compiled_members (c : Engine.compiled) : (string * J.t) list =
  [
    ( "files",
      J.List
        (List.map
           (fun (filename, contents) ->
             J.Obj
               [
                 ("filename", J.String filename);
                 ("contents", J.String contents);
               ])
           c.Engine.files) );
    ( "compile",
      J.Obj
        [
          ("canonical_bytes", J.Int c.Engine.canonical_bytes);
          ("ops_in", J.Int c.Engine.ops_in);
          ("ops_out", J.Int c.Engine.ops_out);
          ("cold_wall_s", J.Float c.Engine.cold_wall_s);
          ( "passes",
            J.List
              (List.map
                 (fun (r : Wsc_ir.Pass.remark) ->
                   J.Obj
                     [
                       ("pass", J.String r.r_pass);
                       ("wall_s", J.Float r.r_wall_s);
                       ("verify_s", J.Float r.r_verify_s);
                       ("ops_before", J.Int r.r_ops_before);
                       ("ops_after", J.Int r.r_ops_after);
                     ])
                 c.Engine.remarks) );
        ] );
  ]

let compile_response ~(id : int) (r : Engine.result) : J.t =
  let cache_member =
    match r.Engine.cache with
    | Some `Hit -> [ ("cache", J.String "hit") ]
    | Some `Miss -> [ ("cache", J.String "miss") ]
    | None -> []
  in
  (* only rendered when a tuned-config override fired, so responses from
     engines without a store are byte-identical to the pre-tuning wire *)
  let cache_member =
    cache_member @ if r.Engine.tuned then [ ("tuned", J.Bool true) ] else []
  in
  let result =
    match r.Engine.outcome with
    | Ok c ->
        J.Obj
          ([ ("status", J.String "ok"); ("key", J.String c.Engine.key) ]
          @ cache_member
          @ compiled_members c
          @ [ ("timing", timing_obj r.Engine.timing) ])
    | Error e ->
        J.Obj
          ([
             ("status", J.String "error");
             ("kind", J.String (Engine.error_kind_to_string e.Engine.e_kind));
             ("message", J.String e.Engine.e_message);
           ]
          @ cache_member
          @ [ ("timing", timing_obj r.Engine.timing) ])
  in
  envelope ~id:(Some id) ~op:"compile" [ result ]

let protocol_error_response ~(id : int option) (msg : string) : J.t =
  envelope ~id ~op:"error"
    [
      J.Obj
        [
          ("status", J.String "error");
          ("kind", J.String "protocol");
          ("message", J.String msg);
        ];
    ]

let stats_response ~(id : int) ~(engine : Engine.t) ?(retries = 0)
    ?(worker_restarts = 0) ~(uptime_s : float) () : J.t =
  let s = Engine.cache_stats engine in
  let requests, ok, errors = Engine.counters engine in
  let tuned_hits, tuned_misses = Engine.tuned_counters engine in
  envelope ~id:(Some id) ~op:"stats"
    [
      J.Obj
        [
          ("status", J.String "ok");
          ("uptime_s", J.Float uptime_s);
          ("requests", J.Int requests);
          ("ok", J.Int ok);
          ("errors", J.Int errors);
          ("retries", J.Int retries);
          ("worker_restarts", J.Int worker_restarts);
          ( "cache",
            J.Obj
              [
                ("hits", J.Int s.Cache.hits);
                ("misses", J.Int s.Cache.misses);
                ("dedup_hits", J.Int s.Cache.dedup_hits);
                ("tuned_hits", J.Int tuned_hits);
                ("tuned_misses", J.Int tuned_misses);
                ("insertions", J.Int s.Cache.insertions);
                ("evictions", J.Int s.Cache.evictions);
                ("entries", J.Int s.Cache.entries);
                ("capacity", J.Int s.Cache.capacity);
                ("hit_rate", J.Float (Cache.hit_rate s));
              ] );
        ];
    ]

let shutdown_response ~(id : int) : J.t =
  envelope ~id:(Some id) ~op:"shutdown"
    [ J.Obj [ ("status", J.String "ok"); ("draining", J.Bool true) ] ]

(* ------------------------------------------------------------------ *)
(* response inspection                                                 *)
(* ------------------------------------------------------------------ *)

let first_result (doc : J.t) : J.t option =
  match Option.bind (J.member "results" doc) J.to_list_opt with
  | Some (r :: _) -> Some r
  | _ -> None

let response_id (doc : J.t) : int option =
  match Option.bind (J.member "config" doc) (J.member "id") with
  | Some (J.Int i) -> Some i
  | _ -> None

let response_status (doc : J.t) : string option =
  Option.bind (first_result doc) (fun r ->
      Option.bind (J.member "status" r) J.to_string_opt)

let response_cache (doc : J.t) : string option =
  Option.bind (first_result doc) (fun r ->
      Option.bind (J.member "cache" r) J.to_string_opt)

let response_payload (doc : J.t) : string option =
  Option.bind (first_result doc) (fun r ->
      match (J.member "files" r, J.member "compile" r) with
      | Some files, Some compile ->
          Some (J.to_string (J.Obj [ ("files", files); ("compile", compile) ]))
      | _ -> None)
