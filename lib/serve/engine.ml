(** The compile engine — see the interface. *)

module Pipeline = Wsc_core.Pipeline
module Pass = Wsc_ir.Pass
module Parser = Wsc_ir.Parser
module Printer = Wsc_ir.Printer
module Fingerprint = Wsc_ir.Fingerprint
module T = Wsc_trace.Trace

type error_kind =
  | Bad_request
  | Parse_failure
  | Pass_failure
  | Verify_failure
  | Timeout
  | Internal

let error_kind_to_string = function
  | Bad_request -> "bad-request"
  | Parse_failure -> "parse"
  | Pass_failure -> "pass"
  | Verify_failure -> "verify"
  | Timeout -> "timeout"
  | Internal -> "internal"

type error = { e_kind : error_kind; e_message : string }

type compiled = {
  key : string;
  canonical_bytes : int;
  files : (string * string) list;
  lowered : Wsc_ir.Ir.op;
  remarks : Pass.remark list;
  ops_in : int;
  ops_out : int;
  cold_wall_s : float;
}

type timing = {
  t_submit : float;
  t_start : float;
  t_parsed : float;
  t_compiled : float;
  t_done : float;
}

let queue_s (t : timing) = Float.max 0.0 (t.t_start -. t.t_submit)
let parse_s (t : timing) = Float.max 0.0 (t.t_parsed -. t.t_start)
let compile_s (t : timing) = Float.max 0.0 (t.t_compiled -. t.t_parsed)
let emit_s (t : timing) = Float.max 0.0 (t.t_done -. t.t_compiled)
let total_s (t : timing) = Float.max 0.0 (t.t_done -. t.t_submit)

type result = {
  outcome : (compiled, error) Stdlib.result;
  cache : [ `Hit | `Miss ] option;
  tuned : bool;
  timing : timing;
}

type t = {
  cache : compiled Cache.t;
  eng_options : Pipeline.options;
  tuned_store : Tuned.t option;
  timeout_s : float;
  requests : int Atomic.t;
  ok : int Atomic.t;
  errors : int Atomic.t;
}

let default_capacity = 512
let default_timeout_s = 30.0

let create ?(capacity = default_capacity) ?(timeout_s = default_timeout_s)
    ?(options = Pipeline.default_options) ?tuned () : t =
  (* registration mutates a shared handler table; doing it here, before
     any worker domain exists, keeps [Pipeline.compile]'s own register
     call a pure flag read under concurrency *)
  Wsc_core.Csl_stencil_interp.register ();
  {
    cache = Cache.create ~capacity;
    eng_options = options;
    tuned_store = tuned;
    timeout_s;
    requests = Atomic.make 0;
    ok = Atomic.make 0;
    errors = Atomic.make 0;
  }

let options (t : t) : Pipeline.options = t.eng_options
let cache_stats (t : t) : Cache.stats = Cache.stats t.cache

let counters (t : t) : int * int * int =
  (Atomic.get t.requests, Atomic.get t.ok, Atomic.get t.errors)

let tuned_counters (t : t) : int * int =
  match t.tuned_store with None -> (0, 0) | Some s -> Tuned.counters s

(* ------------------------------------------------------------------ *)
(* keying                                                              *)
(* ------------------------------------------------------------------ *)

(** Raised by the per-pass deadline hook; [Pass.options.on_ir]
    exceptions propagate out of the pipeline unwrapped. *)
exception Timed_out

(** The tuned-config store is consulted on the *program-only* digest of
    the canonical text, before the compile key is formed — so a tuned
    program's compile key is the one its tuned options produce, and hits
    in the compile cache stay byte-identical by construction.  The
    request's [program_name] survives the override: it names the emitted
    module, which is identification, not a tuned knob. *)
let resolve_tuned (t : t) ~(count : bool) ~(opts : Pipeline.options)
    (canonical : string) : Pipeline.options * bool =
  match t.tuned_store with
  | None -> (opts, false)
  | Some store -> (
      let pk = Tuned.key_of_canonical canonical in
      let lookup = if count then Tuned.find else Tuned.peek in
      match lookup store pk with
      | Some tuned_o ->
          ({ tuned_o with Pipeline.program_name = opts.Pipeline.program_name },
           true)
      | None -> (opts, false))

let parse_and_key (t : t) ~(count_tuned : bool) ~(opts : Pipeline.options)
    (source : string) : Wsc_ir.Ir.op * string * string * Pipeline.options * bool =
  let m = Parser.parse_string source in
  let canonical = Printer.op_to_string m in
  let opts, tuned = resolve_tuned t ~count:count_tuned ~opts canonical in
  let key =
    Fingerprint.digest_hex
      (canonical ^ "\x00" ^ Pipeline.options_to_string opts)
  in
  (m, key, canonical, opts, tuned)

let error_of_exn (e : exn) : error =
  match e with
  | Timed_out -> { e_kind = Timeout; e_message = "compile deadline exceeded" }
  | Parser.Parse_error (_, msg) -> { e_kind = Parse_failure; e_message = msg }
  | Pass.Pass_failed (pass, Wsc_ir.Verifier.Verification_error msg) ->
      {
        e_kind = Verify_failure;
        e_message = Printf.sprintf "verifier rejected module after %s: %s" pass msg;
      }
  | Pass.Pass_failed (pass, inner) ->
      {
        e_kind = Pass_failure;
        e_message = Printf.sprintf "pass %s failed: %s" pass (Printexc.to_string inner);
      }
  | e -> { e_kind = Internal; e_message = Printexc.to_string e }

let key_of_source (t : t) ?options (source : string) :
    (string, error) Stdlib.result =
  let opts = Option.value options ~default:t.eng_options in
  if String.trim source = "" then
    Error { e_kind = Bad_request; e_message = "empty source" }
  else
    match parse_and_key t ~count_tuned:false ~opts source with
    | _, key, _, _, _ -> Ok key
    | exception e -> Error (error_of_exn e)

(* ------------------------------------------------------------------ *)
(* compiling                                                           *)
(* ------------------------------------------------------------------ *)

let compile_source (t : t) ?options ?timeout_s ?submitted_at (source : string) :
    result =
  let opts = Option.value options ~default:t.eng_options in
  let timeout_s = Option.value timeout_s ~default:t.timeout_s in
  let t_start = Unix.gettimeofday () in
  let t_submit = Option.value submitted_at ~default:t_start in
  let deadline = t_start +. timeout_s in
  Atomic.incr t.requests;
  let finish ~cache ?(tuned = false) ~t_parsed ~t_compiled outcome =
    let t_done = Unix.gettimeofday () in
    (match outcome with
    | Ok _ -> Atomic.incr t.ok
    | Error _ -> Atomic.incr t.errors);
    {
      outcome;
      cache;
      tuned;
      timing = { t_submit; t_start; t_parsed; t_compiled; t_done };
    }
  in
  if String.trim source = "" then
    finish ~cache:None ~t_parsed:t_start ~t_compiled:t_start
      (Error { e_kind = Bad_request; e_message = "empty source" })
  else
    match parse_and_key t ~count_tuned:true ~opts source with
    | exception e ->
        let now = Unix.gettimeofday () in
        finish ~cache:None ~t_parsed:now ~t_compiled:now (Error (error_of_exn e))
    | m, key, canonical, opts, tuned -> (
        let finish ~cache ~t_parsed ~t_compiled outcome =
          finish ~cache ~tuned ~t_parsed ~t_compiled outcome
        in
        let t_parsed = Unix.gettimeofday () in
        if t_parsed > deadline then
          finish ~cache:None ~t_parsed ~t_compiled:t_parsed
            (Error
               { e_kind = Timeout; e_message = "compile deadline exceeded" })
        else
          match Cache.acquire t.cache key with
          | `Hit c | `Dedup c ->
              (* a dedup hit blocked on another worker's in-flight compile
                 and got its bytes — to the requester it is a plain hit *)
              let t_compiled = Unix.gettimeofday () in
              finish ~cache:(Some `Hit) ~t_parsed ~t_compiled (Ok c)
          | `Claimed ->
              (* single-flight: this worker owns the key until release.
                 Release exactly once on EVERY exit path — an exception
                 escaping with the claim held would park the key's dedup
                 waiters forever (the mid-request-death regression) *)
              let released = ref false in
              let release v =
                released := true;
                Cache.release t.cache key v
              in
              Fun.protect ~finally:(fun () ->
                  if not !released then Cache.release t.cache key None)
              @@ fun () ->
              (
              let fail_released e =
                release None;
                let t_compiled = Unix.gettimeofday () in
                finish ~cache:(Some `Miss) ~t_parsed ~t_compiled
                  (Error (error_of_exn e))
              in
              let remarks = ref [] in
              let pass_options =
                {
                  Pass.default_options with
                  verify_each = true;
                  on_remark = Some (fun r -> remarks := r :: !remarks);
                  on_ir =
                    Some
                      (fun _pass _m ->
                        if Unix.gettimeofday () > deadline then raise Timed_out);
                }
              in
              match Pipeline.compile ~options:opts ~pass_options m with
              | exception e -> fail_released e
              | lowered -> (
                  let t_compiled = Unix.gettimeofday () in
                  match Wsc_core.Csl_printer.print_files lowered with
                  | exception e -> fail_released e
                  | files ->
                      let files =
                        List.map
                          (fun (f : Wsc_core.Csl_printer.file) ->
                            (f.filename, f.contents))
                          files
                      in
                      let remarks = List.rev !remarks in
                      let ops_in =
                        match remarks with
                        | r :: _ -> r.Pass.r_ops_before
                        | [] -> 0
                      in
                      let ops_out =
                        match List.rev remarks with
                        | r :: _ -> r.Pass.r_ops_after
                        | [] -> 0
                      in
                      let t_emitted = Unix.gettimeofday () in
                      let c =
                        {
                          key;
                          canonical_bytes = String.length canonical;
                          files;
                          lowered;
                          remarks;
                          ops_in;
                          ops_out;
                          cold_wall_s = t_emitted -. t_start;
                        }
                      in
                      release (Some c);
                      finish ~cache:(Some `Miss) ~t_parsed ~t_compiled (Ok c))))

(* ------------------------------------------------------------------ *)
(* tracing                                                             *)
(* ------------------------------------------------------------------ *)

let emit_spans (sink : T.sink) ~(tid : int) ~(epoch : float) ~(id : int)
    (r : result) : unit =
  if T.enabled sink then begin
    let us t = (t -. epoch) *. 1e6 in
    let tm = r.timing in
    let args = [ ("id", T.Aint id) ] in
    let span name a b extra =
      (* zero-length spans confuse Perfetto's track layout; clamp *)
      let b = if b > a then b else a +. 1e-7 in
      T.span_begin sink ~pid:T.serve_pid ~tid ~cat:"serve" ~name
        ~args:(args @ extra) (us a);
      T.span_end sink ~pid:T.serve_pid ~tid ~cat:"serve" ~name (us b)
    in
    if tm.t_start > tm.t_submit then span "queue" tm.t_submit tm.t_start [];
    span "parse" tm.t_start tm.t_parsed [];
    (match (r.outcome, r.cache) with
    | Ok c, Some `Hit ->
        span "lookup" tm.t_parsed tm.t_compiled
          [ ("cache", T.Astr "hit"); ("key", T.Astr c.key) ]
    | Ok c, _ ->
        T.span_begin sink ~pid:T.serve_pid ~tid ~cat:"serve" ~name:"compile"
          ~args:(args @ [ ("cache", T.Astr "miss"); ("key", T.Astr c.key) ])
          (us tm.t_parsed);
        (* per-pass child spans, laid end to end from the compile start;
           remark wall times are the pass manager's own measurements *)
        let acc = ref tm.t_parsed in
        List.iter
          (fun (rm : Wsc_ir.Pass.remark) ->
            let b = !acc in
            let e = b +. rm.r_wall_s +. rm.r_verify_s in
            span rm.r_pass b e [];
            acc := e)
          c.remarks;
        T.span_end sink ~pid:T.serve_pid ~tid ~cat:"serve" ~name:"compile"
          (us tm.t_compiled)
    | Error err, _ ->
        span "compile" tm.t_parsed tm.t_compiled
          [
            ("status", T.Astr "error");
            ("kind", T.Astr (error_kind_to_string err.e_kind));
          ]);
    span "emit" tm.t_compiled tm.t_done []
  end
