(** The long-running compilation server behind [wsc serve].

    Reads JSON-lines requests from stdin (default) or a Unix-domain
    socket, fans compile work out across the persistent {!Pool} of
    worker domains, and writes one JSON-lines response per request —
    out of order; clients match on the echoed [id].  All writing happens
    on the main thread, so response lines never interleave.

    Shutdown is graceful on every path — SIGINT/SIGTERM, a [shutdown]
    request, or EOF on stdin: the server stops reading, drains every
    accepted request, flushes all responses, prints the cache/request
    counters to stderr and returns normally (exit 0).  No partial JSON
    is ever left on stdout. *)

type transport =
  | Stdio  (** requests on stdin, responses on stdout; EOF = shutdown *)
  | Unix_socket of string  (** path; concurrent clients are multiplexed *)

type config = {
  domains : int;  (** worker domains (clamped to ≥ 1) *)
  capacity : int;  (** compile-cache capacity, entries *)
  timeout_s : float;  (** default per-request compile deadline *)
  options : Wsc_core.Pipeline.options;  (** default pipeline config *)
  transport : transport;
  trace_path : string option;
      (** write a Chrome trace of every request's phase spans here at
          shutdown (one track per worker domain under [Trace.serve_pid]) *)
  tuned : Tuned.t option;
      (** tuned-config store the engine consults per program; hit/miss
          counters surface in [stats] responses and the shutdown line *)
}

val default_config : config

(** {1 Cooperative stop flag}

    Shared by [wsc serve] and [wsc batch]: the signal handlers only set
    an atomic flag; the main loops poll it and run their drain path. *)

(** Install SIGINT/SIGTERM handlers that set the stop flag. *)
val install_signal_handlers : unit -> unit

val stop_requested : unit -> bool

(** Set the flag programmatically (tests; the [shutdown] op uses the
    server's own internal path instead). *)
val request_stop : unit -> unit

(** Reset the flag (tests that reuse the process). *)
val reset_stop : unit -> unit

(** Run the server until shutdown; returns the number of requests
    served.  Prints final counters to stderr. *)
val run : config -> int
