(** Persistent worker pool — see the interface.

    One mutex guards the queue and all bookkeeping; [work] wakes parked
    workers when a job or the stop flag arrives, [idle] wakes waiters in
    {!drain} when the last outstanding job completes. *)

let spawned = Atomic.make 0
let domains_spawned () = Atomic.get spawned

type 'a t = {
  lock : Mutex.t;
  work : Condition.t;
  idle : Condition.t;
  queue : ('a * int) Queue.t;  (** (job, attempts so far) *)
  max_retries : int;
  on_exhausted : (int -> 'a -> exn -> unit) option;
  mutable stop : bool;
  mutable in_flight : int;
  mutable failures : (int * exn) list;  (** (worker index, exn), unordered *)
  mutable n_retries : int;
  mutable n_restarts : int;
  mutable joined : bool;
  mutable workers : unit Domain.t array;  (** set once, right after create *)
}

(* bounded exponential backoff before a retry: 1 ms, 2 ms, 4 ms … capped
   at 20 ms — enough to let a transient (a full cache, a busy peer)
   clear, small enough for tests *)
let backoff_s (attempts : int) : float =
  Float.min 0.02 (0.001 *. Float.pow 2.0 (float_of_int attempts))

let record_failure (t : 'a t) (i : int) (e : exn) : unit =
  Mutex.lock t.lock;
  t.failures <- (i, e) :: t.failures;
  Mutex.unlock t.lock

let worker_loop (t : 'a t) (f : int -> 'a -> unit) (i : int) () : unit =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.work t.lock
    done;
    if Queue.is_empty t.queue then (* stop, and nothing left: exit *)
      Mutex.unlock t.lock
    else begin
      let job, attempts = Queue.pop t.queue in
      t.in_flight <- t.in_flight + 1;
      Mutex.unlock t.lock;
      (try f i job
       with e ->
         if t.max_retries = 0 then record_failure t i e
         else begin
           (* the worker survives the escaped exception (a restart in
              all but the Domain.spawn): requeue the job with backoff
              until its retry budget runs out.  in_flight still counts
              this job, so drain cannot release during the backoff. *)
           Mutex.lock t.lock;
           t.n_restarts <- t.n_restarts + 1;
           let retry = attempts < t.max_retries in
           if retry then t.n_retries <- t.n_retries + 1;
           Mutex.unlock t.lock;
           if retry then begin
             Unix.sleepf (backoff_s attempts);
             Mutex.lock t.lock;
             Queue.push (job, attempts + 1) t.queue;
             Condition.signal t.work;
             Mutex.unlock t.lock
           end
           else
             match t.on_exhausted with
             | Some g -> ( try g i job e with e2 -> record_failure t i e2)
             | None -> record_failure t i e
         end);
      Mutex.lock t.lock;
      t.in_flight <- t.in_flight - 1;
      if Queue.is_empty t.queue && t.in_flight = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ?(max_retries = 0) ?on_exhausted ~domains (f : int -> 'a -> unit) :
    'a t =
  let n = max 1 domains in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      max_retries = max 0 max_retries;
      on_exhausted;
      stop = false;
      in_flight = 0;
      failures = [];
      n_retries = 0;
      n_restarts = 0;
      joined = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init n (fun i ->
        Atomic.incr spawned;
        Domain.spawn (worker_loop t f i));
  t

let domains (t : 'a t) : int = Array.length t.workers

let submit (t : 'a t) (job : 'a) : bool =
  Mutex.lock t.lock;
  let accepted = not t.stop in
  if accepted then begin
    Queue.push (job, 0) t.queue;
    Condition.signal t.work
  end;
  Mutex.unlock t.lock;
  accepted

let retries (t : 'a t) : int =
  Mutex.lock t.lock;
  let n = t.n_retries in
  Mutex.unlock t.lock;
  n

let worker_restarts (t : 'a t) : int =
  Mutex.lock t.lock;
  let n = t.n_restarts in
  Mutex.unlock t.lock;
  n

let pending (t : 'a t) : int =
  Mutex.lock t.lock;
  let n = Queue.length t.queue + t.in_flight in
  Mutex.unlock t.lock;
  n

let cancel_pending (t : 'a t) : int =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Queue.clear t.queue;
  if t.in_flight = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.lock;
  n

let drain (t : 'a t) : unit =
  Mutex.lock t.lock;
  while not (Queue.is_empty t.queue && t.in_flight = 0) do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

let shutdown (t : 'a t) : unit =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  let already = t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if not already then begin
    Array.iter Domain.join t.workers;
    (* deterministic re-raise: lowest worker index first *)
    match List.sort (fun (a, _) (b, _) -> compare a b) t.failures with
    | (_, e) :: _ -> raise e
    | [] -> ()
  end
