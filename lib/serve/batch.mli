(** One-shot batch driver behind [wsc batch]: run the same engine the
    server uses over a manifest of [.mlir] files, concurrently across
    the worker pool, and report per-file outcomes plus cache totals.

    [repeat] resubmits the whole manifest that many times — repeats
    after the first hit the compile cache, which is how the CI smoke leg
    and the bench demonstrate a non-zero hit-rate deterministically.

    Honors the shared {!Server.stop_requested} flag: on SIGINT/SIGTERM
    the queued-but-unstarted jobs are cancelled (reported as
    ["cancelled"]), in-flight compiles finish, and the report still
    renders completely — no partial JSON. *)

type config = {
  domains : int;  (** worker domains (clamped to ≥ 1) *)
  capacity : int;  (** compile-cache capacity, entries *)
  timeout_s : float;  (** per-file compile deadline *)
  options : Wsc_core.Pipeline.options;
  repeat : int;  (** times to submit the manifest (clamped to ≥ 1) *)
  trace_path : string option;  (** Chrome trace of every job's spans *)
  tuned : Tuned.t option;  (** tuned-config store the engine consults *)
}

val default_config : config

(** One job's outcome, in submission order (manifest order, repeats
    appended). *)
type entry = {
  en_path : string;
  en_round : int;  (** 0-based repeat round *)
  en_status : string;  (** ["ok"], an {!Engine.error_kind} string,
                           ["io"] (unreadable file) or ["cancelled"] *)
  en_cache : string option;  (** ["hit"] / ["miss"] when compiled *)
  en_key : string option;
  en_wall_s : float;
  en_message : string option;  (** error detail *)
}

type report = {
  rp_total : int;
  rp_ok : int;
  rp_errors : int;
  rp_cancelled : int;
  rp_wall_s : float;
  rp_cache : Cache.stats;
  rp_tuned_hits : int;  (** tuned-config store hits (0 without a store) *)
  rp_tuned_misses : int;
  rp_entries : entry list;
}

(** Read a manifest: one path per line, [#] comments and blank lines
    skipped, relative paths resolved against the manifest's directory. *)
val manifest_paths : string -> string list

val run : config -> string list -> report

(** The report as the shared summary envelope ([tool = "batch"]). *)
val report_to_json : config -> report -> Wsc_trace.Json.t

(** Render each file as a serve-protocol compile request line (ids are
    1-based submission order) — [wsc batch --dump-requests], for piping
    straight into [wsc serve]. *)
val dump_requests : out_channel -> string list -> unit
