(** The compile engine: one stencil-dialect source in, cached-or-fresh
    CSL out.  Shared by [wsc serve], [wsc batch] and the bench harness.

    Keying: the source is parsed, reprinted into canonical form (the
    print→parse→print fixpoint makes that form unique per module), and
    digested together with the pipeline configuration
    ([Wsc_core.Pipeline.options_to_string]) — so a repeat submission
    with different whitespace, comments or value names is still a cache
    hit, and the same module under a different configuration is not.

    A hit returns the *exact* record the cold compile produced — same
    CSL bytes, same pass remarks, same op counts, same cold wall time —
    so cached responses are byte-identical to cold ones by construction.
    Failures are never cached: every error response is recomputed.

    Concurrent misses on one key are single-flight ({!Cache.acquire}):
    one worker compiles, the others block and are served its record —
    reported to them as a plain cache hit, counted separately in
    [Cache.stats.dedup_hits].

    Timeouts are cooperative: the deadline is checked after parsing and
    at every pass boundary (via [Pass.options.on_ir]), bounding a
    pathological request to roughly one pass beyond its budget rather
    than wedging a worker forever. *)

type error_kind =
  | Bad_request  (** malformed protocol input (empty source, bad config) *)
  | Parse_failure
  | Pass_failure  (** a pass raised *)
  | Verify_failure  (** the post-pass verifier rejected the module *)
  | Timeout
  | Internal

val error_kind_to_string : error_kind -> string

type error = { e_kind : error_kind; e_message : string }

(** The cacheable result of one cold compile. *)
type compiled = {
  key : string;  (** content-addressed cache key (hex digest) *)
  canonical_bytes : int;  (** length of the canonical module text *)
  files : (string * string) list;  (** CSL output: filename, contents *)
  lowered : Wsc_ir.Ir.op;
      (** the fully lowered module (layout + program csl modules) — kept
          so simulation clients (the multiwafer co-simulator) can run a
          cached compile without reparsing; treat as read-only, it is
          shared across every hit for the key *)
  remarks : Wsc_ir.Pass.remark list;  (** per-pass wall time and op deltas *)
  ops_in : int;  (** module ops entering the pipeline *)
  ops_out : int;  (** ops in the fully lowered module *)
  cold_wall_s : float;  (** parse→emit wall time of the cold compile *)
}

(** Absolute [Unix.gettimeofday] stamps of one request's phases; the
    derived accessors give the span lengths the protocol reports. *)
type timing = {
  t_submit : float;  (** enqueued (equals [t_start] when never queued) *)
  t_start : float;  (** a worker picked it up *)
  t_parsed : float;
  t_compiled : float;  (** pipeline done, or cache lookup resolved *)
  t_done : float;  (** CSL printed / response payload ready *)
}

val queue_s : timing -> float
val parse_s : timing -> float
val compile_s : timing -> float
val emit_s : timing -> float
val total_s : timing -> float

type result = {
  outcome : (compiled, error) Stdlib.result;
  cache : [ `Hit | `Miss ] option;
      (** [None] when the request failed before it could be keyed *)
  tuned : bool;
      (** the request hit the attached tuned-config store and was
          compiled under its tuned options *)
  timing : timing;
}

type t

val default_capacity : int
val default_timeout_s : float

(** [create ()] also registers the interpreter handlers once, so worker
    domains never touch that global table.  [tuned] attaches a
    tuned-config store: requests whose program-only canonical digest has
    an entry compile under the stored options instead of their own
    (opt-in — engines without a store behave exactly as before).  The
    request's [program_name] is preserved across the override. *)
val create :
  ?capacity:int ->
  ?timeout_s:float ->
  ?options:Wsc_core.Pipeline.options ->
  ?tuned:Tuned.t ->
  unit ->
  t

val options : t -> Wsc_core.Pipeline.options

(** Compile one source.  [options] overrides the engine default for this
    request (a different configuration is a different cache key);
    [timeout_s] likewise; [submitted_at] is the enqueue stamp for queue
    accounting.  Thread-safe: called concurrently from worker domains. *)
val compile_source :
  t ->
  ?options:Wsc_core.Pipeline.options ->
  ?timeout_s:float ->
  ?submitted_at:float ->
  string ->
  result

(** The cache key this engine would use for a source (parse + canonical
    reprint + tuned-store consultation + digest), without compiling and
    without bumping the tuned counters. *)
val key_of_source :
  t -> ?options:Wsc_core.Pipeline.options -> string -> (string, error) Stdlib.result

val cache_stats : t -> Cache.stats

(** Lifetime request counters: total, ok, errored. *)
val counters : t -> int * int * int

(** [(tuned_hits, tuned_misses)] of the attached tuned-config store;
    [(0, 0)] when none is attached. *)
val tuned_counters : t -> int * int

(** Emit the request's phase spans (queue wait, parse, per-pass compile,
    emit) onto [sink] under [Trace.serve_pid], track [tid], timestamps
    in wall-clock microseconds relative to [epoch].  Null sinks cost
    nothing. *)
val emit_spans :
  Wsc_trace.Trace.sink -> tid:int -> epoch:float -> id:int -> result -> unit
