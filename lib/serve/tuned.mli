(** The tuned-config cache: autotuned pipeline options, content-addressed
    by program.

    Keys are the MD5 digest of the program's canonical print→parse→print
    text *alone* (no options suffix) — the same canonical text that
    prefixes the compile-cache key, so "the same program" means exactly
    what it means for compile-cache hits.  The value is the full
    {!Wsc_core.Pipeline.options} record the tuner validated for that
    program.  {!Engine} consults an attached store after parsing and,
    on a hit, compiles the request under the tuned options instead of
    the request's (counted as [tuned_hits] / [tuned_misses]).

    The store is thread-safe: lookups and insertions may race from the
    serve pool's worker domains.

    This module also owns the JSON rendering of pipeline options
    ([config_of_options] / [options_of_config]), shared with the wire
    protocol, so a persisted store round-trips through the same
    serializer that validates request configs. *)

module J = Wsc_trace.Json

type t

(** {1 Options <-> JSON} *)

(** Parse a config object's key/value pairs over [defaults].  Unknown
    keys and ill-typed values are fatal: accepting one silently would
    hand two behaviorally different configs one cache key. *)
val options_of_config :
  Wsc_core.Pipeline.options ->
  (string * J.t) list ->
  (Wsc_core.Pipeline.options, string) result

(** Total rendering of an options record as a JSON object; the inverse
    of {!options_of_config} over defaults. *)
val config_of_options : Wsc_core.Pipeline.options -> J.t

(** {1 The store} *)

val create : unit -> t

(** Key for a canonical module text: [Fingerprint.digest_hex] of the
    text alone. *)
val key_of_canonical : string -> string

(** Insert (or replace) the tuned options for a program key. *)
val add : t -> key:string -> Wsc_core.Pipeline.options -> unit

(** Look up a program key, bumping the hit or miss counter. *)
val find : t -> string -> Wsc_core.Pipeline.options option

(** Like {!find} but without touching the counters (for keying previews
    that are not compile requests). *)
val peek : t -> string -> Wsc_core.Pipeline.options option

val size : t -> int

(** [(tuned_hits, tuned_misses)] since creation. *)
val counters : t -> int * int

(** {1 Persistence} *)

(** Deterministic rendering on the shared summary envelope
    (tool ["tuned-configs"], one result row per entry, sorted by key). *)
val to_json : t -> J.t

val of_json : J.t -> (t, string) result

(** Write the store as JSON to [path]. *)
val save_file : t -> string -> unit

(** Load a store previously written by {!save_file}. *)
val load_file : string -> (t, string) result
