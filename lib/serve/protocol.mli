(** The compile service's wire format: JSON-lines, one request and one
    response per line.

    Requests:
    {v
    {"id": 1, "op": "compile", "source": "<stencil-dialect IR>",
     "config": {"inline_stencils": false, ...}, "timeout_s": 5.0}
    {"id": 2, "op": "stats"}
    {"id": 3, "op": "shutdown"}
    v}
    [config] keys mirror [Wsc_core.Pipeline.options] fields (all
    optional, defaults from the server); unknown keys are a protocol
    error — a silently ignored knob would poison the cache key.

    Responses reuse the shared {!Wsc_trace.Json.summary} envelope
    ([tool = "serve"], [schema_version] from {!Wsc_trace.Json}); [config]
    echoes the request id and op, [results] carries exactly one object
    whose [status] is ["ok"] or ["error"].  Responses are not ordered:
    concurrent workers finish in any order, so clients match on [id]. *)

type compile_request = {
  rq_id : int;
  rq_source : string;
  rq_options : Wsc_core.Pipeline.options;  (** resolved over the defaults *)
  rq_timeout_s : float option;
}

type request =
  | Compile of compile_request
  | Stats of int  (** cache/engine counters; id echoed *)
  | Shutdown of int  (** drain in-flight work, then exit cleanly *)

(** Parse one request line.  The error carries the request id when one
    was readable (so the error response can echo it) and a message. *)
val request_of_string :
  defaults:Wsc_core.Pipeline.options ->
  string ->
  (request, int option * string) Stdlib.result

(** Render a request back to one wire line (no trailing newline).
    [request_of_string] of the result is the identity on the id, op,
    source and resolved options. *)
val request_to_string : request -> string

(** A compile request line with default config — what
    [wsc batch --dump-requests] writes. *)
val compile_line : id:int -> source:string -> string

(** {1 Responses} *)

(** The response for a finished compile request (ok or error). *)
val compile_response : id:int -> Engine.result -> Wsc_trace.Json.t

(** A protocol-level failure (unparsable line, bad config, unknown op). *)
val protocol_error_response : id:int option -> string -> Wsc_trace.Json.t

(** [retries] / [worker_restarts] are the pool's resilience counters
    (jobs requeued after a worker death, and worker recoveries). *)
val stats_response :
  id:int ->
  engine:Engine.t ->
  ?retries:int ->
  ?worker_restarts:int ->
  uptime_s:float ->
  unit ->
  Wsc_trace.Json.t

val shutdown_response : id:int -> Wsc_trace.Json.t

(** {1 Response inspection (clients, tests, bench)} *)

val response_id : Wsc_trace.Json.t -> int option

val response_status : Wsc_trace.Json.t -> string option

(** ["hit"] / ["miss"] of a compile response. *)
val response_cache : Wsc_trace.Json.t -> string option

(** The rendered cacheable payload of an ok compile response — the
    [files] and [compile] members, exactly the parts a cache hit must
    reproduce byte-identically.  [None] on errors. *)
val response_payload : Wsc_trace.Json.t -> string option
