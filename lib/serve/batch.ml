(** Batch driver — see the interface. *)

module J = Wsc_trace.Json
module T = Wsc_trace.Trace

type config = {
  domains : int;
  capacity : int;
  timeout_s : float;
  options : Wsc_core.Pipeline.options;
  repeat : int;
  trace_path : string option;
  tuned : Tuned.t option;
}

let default_config =
  {
    domains = 1;
    capacity = Engine.default_capacity;
    timeout_s = Engine.default_timeout_s;
    options = Wsc_core.Pipeline.default_options;
    repeat = 1;
    trace_path = None;
    tuned = None;
  }

type entry = {
  en_path : string;
  en_round : int;
  en_status : string;
  en_cache : string option;
  en_key : string option;
  en_wall_s : float;
  en_message : string option;
}

type report = {
  rp_total : int;
  rp_ok : int;
  rp_errors : int;
  rp_cancelled : int;
  rp_wall_s : float;
  rp_cache : Cache.stats;
  rp_tuned_hits : int;
  rp_tuned_misses : int;
  rp_entries : entry list;
}

let read_file (path : string) : (string, string) Stdlib.result =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let manifest_paths (manifest : string) : string list =
  let dir = Filename.dirname manifest in
  In_channel.with_open_text manifest In_channel.input_lines
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || String.length line > 0 && line.[0] = '#' then None
         else if Filename.is_relative line then Some (Filename.concat dir line)
         else Some line)

type job = {
  j_index : int;  (** slot in the results array *)
  j_round : int;
  j_path : string;
  j_source : string;
  j_submit : float;
}

let entry_of_result ~(path : string) ~(round : int) (r : Engine.result) : entry
    =
  let cache =
    match r.Engine.cache with
    | Some `Hit -> Some "hit"
    | Some `Miss -> Some "miss"
    | None -> None
  in
  match r.Engine.outcome with
  | Ok c ->
      {
        en_path = path;
        en_round = round;
        en_status = "ok";
        en_cache = cache;
        en_key = Some c.Engine.key;
        en_wall_s = Engine.total_s r.Engine.timing;
        en_message = None;
      }
  | Error e ->
      {
        en_path = path;
        en_round = round;
        en_status = Engine.error_kind_to_string e.Engine.e_kind;
        en_cache = cache;
        en_key = None;
        en_wall_s = Engine.total_s r.Engine.timing;
        en_message = Some e.Engine.e_message;
      }

let run (cfg : config) (paths : string list) : report =
  let engine =
    Engine.create ~capacity:cfg.capacity ~timeout_s:cfg.timeout_s
      ~options:cfg.options ?tuned:cfg.tuned ()
  in
  let domains = max 1 cfg.domains in
  let repeat = max 1 cfg.repeat in
  let epoch = Unix.gettimeofday () in
  let sinks =
    Array.init domains (fun _ ->
        match cfg.trace_path with Some _ -> T.collector () | None -> T.null)
  in
  (* sources are read once on the main thread; an unreadable file is an
     ["io"] entry and never becomes a job *)
  let slots : entry option array =
    Array.make (List.length paths * repeat) None
  in
  let jobs = ref [] in
  let idx = ref 0 in
  for round = 0 to repeat - 1 do
    List.iter
      (fun path ->
        let i = !idx in
        incr idx;
        match read_file path with
        | Error msg ->
            slots.(i) <-
              Some
                {
                  en_path = path;
                  en_round = round;
                  en_status = "io";
                  en_cache = None;
                  en_key = None;
                  en_wall_s = 0.0;
                  en_message = Some msg;
                }
        | Ok source ->
            jobs :=
              {
                j_index = i;
                j_round = round;
                j_path = path;
                j_source = source;
                j_submit = 0.0;
              }
              :: !jobs)
      paths
  done;
  let jobs = List.rev !jobs in
  let worker wi (job : job) : unit =
    let r =
      Engine.compile_source engine ~submitted_at:job.j_submit job.j_source
    in
    Engine.emit_spans sinks.(wi) ~tid:wi ~epoch ~id:(job.j_index + 1) r;
    slots.(job.j_index) <-
      Some (entry_of_result ~path:job.j_path ~round:job.j_round r)
  in
  let pool = Pool.create ~domains worker in
  List.iter
    (fun job ->
      ignore (Pool.submit pool { job with j_submit = Unix.gettimeofday () }))
    jobs;
  (* poll (not block) so the signal flag stays observable *)
  let cancelled = ref 0 in
  while Pool.pending pool > 0 do
    if Server.stop_requested () && !cancelled = 0 then
      cancelled := Pool.cancel_pending pool
    else Unix.sleepf 0.01
  done;
  Pool.shutdown pool;
  (match cfg.trace_path with
  | Some path ->
      let into = T.collector () in
      Array.iteri
        (fun i _sink ->
          T.name_track into ~pid:T.serve_pid ~tid:i
            (Printf.sprintf "worker %d" i))
        sinks;
      T.name_process into ~pid:T.serve_pid "compile service";
      T.merge_into ~into (Array.to_list sinks);
      Wsc_trace.Chrome.write_file ~path into
  | None -> ());
  let entries =
    Array.to_list slots
    |> List.mapi (fun i slot ->
           match slot with
           | Some e -> e
           | None ->
               (* cancelled before a worker picked it up *)
               let paths_arr = Array.of_list paths in
               let n = Array.length paths_arr in
               {
                 en_path = paths_arr.(i mod n);
                 en_round = i / n;
                 en_status = "cancelled";
                 en_cache = None;
                 en_key = None;
                 en_wall_s = 0.0;
                 en_message = None;
               })
  in
  let count p = List.length (List.filter p entries) in
  {
    rp_total = List.length entries;
    rp_ok = count (fun e -> e.en_status = "ok");
    rp_errors =
      count (fun e -> e.en_status <> "ok" && e.en_status <> "cancelled");
    rp_cancelled = count (fun e -> e.en_status = "cancelled");
    rp_wall_s = Unix.gettimeofday () -. epoch;
    rp_cache = Engine.cache_stats engine;
    rp_tuned_hits = fst (Engine.tuned_counters engine);
    rp_tuned_misses = snd (Engine.tuned_counters engine);
    rp_entries = entries;
  }

let report_to_json (cfg : config) (r : report) : J.t =
  let s = r.rp_cache in
  J.summary ~tool:"batch"
    ~config:
      [
        ("domains", J.Int (max 1 cfg.domains));
        ("repeat", J.Int (max 1 cfg.repeat));
        ("cache_capacity", J.Int cfg.capacity);
        ("timeout_s", J.Float cfg.timeout_s);
      ]
    ~results:
      [
        J.Obj
          [
            ("total", J.Int r.rp_total);
            ("ok", J.Int r.rp_ok);
            ("errors", J.Int r.rp_errors);
            ("cancelled", J.Int r.rp_cancelled);
            ("wall_s", J.Float r.rp_wall_s);
            ( "cache",
              J.Obj
                [
                  ("hits", J.Int s.Cache.hits);
                  ("misses", J.Int s.Cache.misses);
                  ("tuned_hits", J.Int r.rp_tuned_hits);
                  ("tuned_misses", J.Int r.rp_tuned_misses);
                  ("insertions", J.Int s.Cache.insertions);
                  ("evictions", J.Int s.Cache.evictions);
                  ("entries", J.Int s.Cache.entries);
                  ("capacity", J.Int s.Cache.capacity);
                  ("hit_rate", J.Float (Cache.hit_rate s));
                ] );
            ( "files",
              J.List
                (List.map
                   (fun e ->
                     J.Obj
                       ([
                          ("path", J.String e.en_path);
                          ("round", J.Int e.en_round);
                          ("status", J.String e.en_status);
                        ]
                       @ (match e.en_cache with
                         | Some c -> [ ("cache", J.String c) ]
                         | None -> [])
                       @ (match e.en_key with
                         | Some k -> [ ("key", J.String k) ]
                         | None -> [])
                       @ [ ("wall_s", J.Float e.en_wall_s) ]
                       @
                       match e.en_message with
                       | Some m -> [ ("message", J.String m) ]
                       | None -> []))
                   r.rp_entries) );
          ];
      ]

let dump_requests (oc : out_channel) (paths : string list) : unit =
  List.iteri
    (fun i path ->
      match read_file path with
      | Error msg ->
          Printf.eprintf "wsc batch: skipping %s: %s\n%!" path msg
      | Ok source ->
          output_string oc (Protocol.compile_line ~id:(i + 1) ~source);
          output_char oc '\n')
    paths
