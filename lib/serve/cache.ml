(** Content-addressed LRU cache — see the interface.

    Classic doubly-linked recency list over a hash table: [first] is the
    most recently used entry, [last] the eviction candidate.  All
    structure mutation happens under [lock]; the list never holds an
    unlinked node, so eviction is O(1) and bumping is unlink + push. *)

type ('v) node = {
  n_key : string;
  mutable n_value : 'v;
  mutable n_prev : 'v node option;  (** towards [first] (more recent) *)
  mutable n_next : 'v node option;  (** towards [last] (less recent) *)
}

type 'v t = {
  lock : Mutex.t;
  resolved : Condition.t;  (** an in-flight key was released *)
  inflight : (string, unit) Hashtbl.t;  (** keys claimed, not yet released *)
  table : (string, 'v node) Hashtbl.t;
  capacity : int;
  mutable first : 'v node option;
  mutable last : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable dedup_hits : int;
  mutable waiters : int;
  mutable insertions : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  dedup_hits : int;
  insertions : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let create ~capacity =
  {
    lock = Mutex.create ();
    resolved = Condition.create ();
    inflight = Hashtbl.create 8;
    table = Hashtbl.create 64;
    capacity = max 1 capacity;
    first = None;
    last = None;
    hits = 0;
    misses = 0;
    dedup_hits = 0;
    waiters = 0;
    insertions = 0;
    evictions = 0;
  }

let locked (t : 'v t) (f : unit -> 'a) : 'a =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- recency list primitives (call only under the lock) ---- *)

let unlink (t : 'v t) (n : 'v node) : unit =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> t.first <- n.n_next);
  (match n.n_next with
  | Some s -> s.n_prev <- n.n_prev
  | None -> t.last <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front (t : 'v t) (n : 'v node) : unit =
  n.n_next <- t.first;
  (match t.first with Some f -> f.n_prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let evict_to_capacity (t : 'v t) : unit =
  while Hashtbl.length t.table > t.capacity do
    match t.last with
    | None -> assert false (* population > 0 implies a last entry *)
    | Some n ->
        unlink t n;
        Hashtbl.remove t.table n.n_key;
        t.evictions <- t.evictions + 1
  done

(* ---- public operations ---- *)

let find (t : 'v t) (key : string) : 'v option =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.n_value
      | None ->
          t.misses <- t.misses + 1;
          None)

(* insert-or-replace under the lock (shared by [add] and [release]) *)
let insert_locked (t : 'v t) (key : string) (value : 'v) : unit =
  (match Hashtbl.find_opt t.table key with
  | Some n ->
      (* replacement: same key, fresher value (two workers racing on
         the same miss land here; both computed the same bytes) *)
      n.n_value <- value;
      unlink t n;
      push_front t n
  | None ->
      let n = { n_key = key; n_value = value; n_prev = None; n_next = None } in
      Hashtbl.replace t.table key n;
      push_front t n);
  t.insertions <- t.insertions + 1;
  evict_to_capacity t

let add (t : 'v t) (key : string) (value : 'v) : unit =
  locked t (fun () -> insert_locked t key value)

(* ---- single-flight protocol ---- *)

let acquire (t : 'v t) (key : string) : [ `Hit of 'v | `Dedup of 'v | `Claimed ] =
  locked t (fun () ->
      let rec loop ~deduped =
        match Hashtbl.find_opt t.table key with
        | Some n ->
            t.hits <- t.hits + 1;
            if deduped then t.dedup_hits <- t.dedup_hits + 1;
            unlink t n;
            push_front t n;
            if deduped then `Dedup n.n_value else `Hit n.n_value
        | None ->
            if Hashtbl.mem t.inflight key then begin
              (* someone else is compiling this key: block until they
                 release, then re-examine (their success is our dedup
                 hit; their failure sends us back to claim) *)
              t.waiters <- t.waiters + 1;
              Condition.wait t.resolved t.lock;
              t.waiters <- t.waiters - 1;
              loop ~deduped:true
            end
            else begin
              t.misses <- t.misses + 1;
              Hashtbl.replace t.inflight key ();
              `Claimed
            end
      in
      loop ~deduped:false)

let release (t : 'v t) (key : string) (value : 'v option) : unit =
  locked t (fun () ->
      Hashtbl.remove t.inflight key;
      (match value with Some v -> insert_locked t key v | None -> ());
      Condition.broadcast t.resolved)

let waiters (t : 'v t) : int = locked t (fun () -> t.waiters)

let stats (t : 'v t) : stats =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        dedup_hits = t.dedup_hits;
        insertions = t.insertions;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let hit_rate (s : stats) : float =
  let looked = s.hits + s.misses in
  if looked = 0 then 0.0 else float_of_int s.hits /. float_of_int looked
