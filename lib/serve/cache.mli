(** Content-addressed LRU cache: the compile service's memory of past
    work.  Keys are stable content hashes ([Wsc_ir.Fingerprint] of the
    canonical module text plus the pipeline configuration); values are
    whatever the engine chooses to remember (CSL output, pass remarks,
    perf stats).

    Thread-safe: every operation takes the cache's own mutex, so worker
    domains share one cache directly.  A lookup bumps recency; when an
    insertion pushes the population past [capacity], least-recently-used
    entries are evicted.  Hit / miss / insertion / eviction counters are
    monotonic over the cache's lifetime and survive evictions. *)

type 'v t

(** Monotonic counters plus the current population.  [entries] ≤
    [capacity] always holds after every operation. *)
type stats = {
  hits : int;
  misses : int;
  insertions : int;  (** includes replacements of a live key *)
  evictions : int;  (** LRU entries dropped by capacity pressure *)
  entries : int;
  capacity : int;
}

(** [create ~capacity] — capacity is clamped to at least 1. *)
val create : capacity:int -> 'v t

(** Bumps the entry to most-recent on a hit; counts a hit or a miss. *)
val find : 'v t -> string -> 'v option

(** Insert (or replace) and make most-recent, evicting from the LRU end
    until the population fits. *)
val add : 'v t -> string -> 'v -> unit

val stats : 'v t -> stats

(** [hit_rate s] — hits / (hits + misses), 0 when no lookups ran. *)
val hit_rate : stats -> float
