(** Content-addressed LRU cache: the compile service's memory of past
    work.  Keys are stable content hashes ([Wsc_ir.Fingerprint] of the
    canonical module text plus the pipeline configuration); values are
    whatever the engine chooses to remember (CSL output, pass remarks,
    perf stats).

    Thread-safe: every operation takes the cache's own mutex, so worker
    domains share one cache directly.  A lookup bumps recency; when an
    insertion pushes the population past [capacity], least-recently-used
    entries are evicted.  Hit / miss / insertion / eviction counters are
    monotonic over the cache's lifetime and survive evictions.

    Single-flight: {!acquire} / {!release} collapse concurrent misses on
    one key into a single compile — the first caller claims the key and
    computes, later callers block on the cache's condition variable and
    are served the claimer's result ([dedup_hits] counts those).  A
    claimer that fails releases [None], waking the waiters to re-claim,
    so a transient failure never wedges a key. *)

type 'v t

(** Monotonic counters plus the current population.  [entries] ≤
    [capacity] always holds after every operation. *)
type stats = {
  hits : int;
  misses : int;  (** lookups that went on to compute (claims included) *)
  dedup_hits : int;
      (** hits served by blocking on another caller's in-flight compute;
          every dedup hit is also counted in [hits] *)
  insertions : int;  (** includes replacements of a live key *)
  evictions : int;  (** LRU entries dropped by capacity pressure *)
  entries : int;
  capacity : int;
}

(** [create ~capacity] — capacity is clamped to at least 1. *)
val create : capacity:int -> 'v t

(** Bumps the entry to most-recent on a hit; counts a hit or a miss. *)
val find : 'v t -> string -> 'v option

(** Insert (or replace) and make most-recent, evicting from the LRU end
    until the population fits. *)
val add : 'v t -> string -> 'v -> unit

(** Single-flight lookup.  [`Hit v] — cached, counted as a hit.
    [`Claimed] — a miss this caller now owns: it must compute the value
    and call {!release} exactly once (on every path, including
    exceptions).  [`Dedup v] — this caller blocked on another's claim
    and got its value; counted as a hit and a dedup hit. *)
val acquire : 'v t -> string -> [ `Hit of 'v | `Dedup of 'v | `Claimed ]

(** End a claim: [Some v] inserts the value and serves every waiter,
    [None] (the compute failed) wakes them to re-claim.  Without a
    matching {!acquire} claim this still inserts/wakes, making it safe
    to call from cleanup handlers. *)
val release : 'v t -> string -> 'v option -> unit

(** Callers currently blocked inside {!acquire} — observability for the
    deterministic single-flight tests. *)
val waiters : 'v t -> int

val stats : 'v t -> stats

(** [hit_rate s] — hits / (hits + misses), 0 when no lookups ran. *)
val hit_rate : stats -> float
