(** Persistent worker pool: [domains] OCaml 5 domains spawned exactly
    once per pool (the PR 6 fabric worker-pool discipline — never
    spawn-per-request), pulling jobs from a shared queue until shutdown.

    Jobs run on worker domains; the job function receives the worker's
    index (0-based) so per-worker state — e.g. a private trace collector
    — needs no locking.  A job that raises does not kill the pool: the
    exception is recorded and re-raised from {!shutdown},
    lowest-worker-index first, after every domain has been joined.

    With [max_retries > 0] the pool is resilient instead: a job whose
    worker dies mid-request (an escaped exception) is requeued with
    bounded exponential backoff up to [max_retries] times, counted by
    {!retries} / {!worker_restarts}; a job that exhausts its budget goes
    to [on_exhausted] (or, absent that, to the {!shutdown} re-raise). *)

type 'a t

(** Total worker domains ever spawned by this module — pinned by a
    regression test so a spawn-per-request bug cannot creep back in. *)
val domains_spawned : unit -> int

(** [create ~domains f] spawns exactly [domains] workers (clamped to at
    least 1) that each run [f worker_index job] on dequeued jobs.
    [max_retries] (default 0: record-and-reraise, the historical
    behavior) bounds per-job requeues after an escaped exception;
    [on_exhausted worker job exn] is called when a job's budget runs
    out (it must not raise — an exception from it is recorded like a
    job failure). *)
val create :
  ?max_retries:int ->
  ?on_exhausted:(int -> 'a -> exn -> unit) ->
  domains:int ->
  (int -> 'a -> unit) ->
  'a t

val domains : 'a t -> int

(** Jobs requeued after a worker died mid-request (0 unless
    [max_retries > 0]). *)
val retries : 'a t -> int

(** Worker recoveries from an escaped exception — one per failed
    attempt, so [worker_restarts >= retries]; the surplus is attempts
    that exhausted the budget. *)
val worker_restarts : 'a t -> int

(** Enqueue a job; [false] once {!shutdown} has begun (the job is
    dropped). *)
val submit : 'a t -> 'a -> bool

(** Jobs not yet finished: queued plus in-flight.  Poll this (instead of
    blocking in {!drain}) in loops that must stay responsive to a signal
    flag. *)
val pending : 'a t -> int

(** Drop every queued-but-unstarted job; returns how many were dropped.
    In-flight jobs are unaffected. *)
val cancel_pending : 'a t -> int

(** Block until the queue is empty and no job is in flight. *)
val drain : 'a t -> unit

(** Graceful: workers finish everything still queued, then exit and are
    joined.  Re-raises the first recorded job exception (lowest worker
    index) after the join.  Idempotent. *)
val shutdown : 'a t -> unit
