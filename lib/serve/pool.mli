(** Persistent worker pool: [domains] OCaml 5 domains spawned exactly
    once per pool (the PR 6 fabric worker-pool discipline — never
    spawn-per-request), pulling jobs from a shared queue until shutdown.

    Jobs run on worker domains; the job function receives the worker's
    index (0-based) so per-worker state — e.g. a private trace collector
    — needs no locking.  A job that raises does not kill the pool: the
    exception is recorded and re-raised from {!shutdown},
    lowest-worker-index first, after every domain has been joined. *)

type 'a t

(** Total worker domains ever spawned by this module — pinned by a
    regression test so a spawn-per-request bug cannot creep back in. *)
val domains_spawned : unit -> int

(** [create ~domains f] spawns exactly [domains] workers (clamped to at
    least 1) that each run [f worker_index job] on dequeued jobs. *)
val create : domains:int -> (int -> 'a -> unit) -> 'a t

val domains : 'a t -> int

(** Enqueue a job; [false] once {!shutdown} has begun (the job is
    dropped). *)
val submit : 'a t -> 'a -> bool

(** Jobs not yet finished: queued plus in-flight.  Poll this (instead of
    blocking in {!drain}) in loops that must stay responsive to a signal
    flag. *)
val pending : 'a t -> int

(** Drop every queued-but-unstarted job; returns how many were dropped.
    In-flight jobs are unaffected. *)
val cancel_pending : 'a t -> int

(** Block until the queue is empty and no job is in flight. *)
val drain : 'a t -> unit

(** Graceful: workers finish everything still queued, then exit and are
    joined.  Re-raises the first recorded job exception (lowest worker
    index) after the join.  Idempotent. *)
val shutdown : 'a t -> unit
