(** The tuned-config cache — see the interface. *)

module J = Wsc_trace.Json
module Pipeline = Wsc_core.Pipeline
module Fingerprint = Wsc_ir.Fingerprint

(* ------------------------------------------------------------------ *)
(* options <-> JSON                                                    *)
(* ------------------------------------------------------------------ *)

let options_of_config (defaults : Pipeline.options) (kvs : (string * J.t) list) :
    (Pipeline.options, string) Stdlib.result =
  let bool_field k v =
    match v with
    | J.Bool b -> Ok b
    | _ -> Error (Printf.sprintf "config.%s: expected a bool" k)
  in
  let rec go (o : Pipeline.options) = function
    | [] -> Ok o
    | (k, v) :: rest -> (
        let set =
          match k with
          | "inline_stencils" ->
              Result.map
                (fun b -> { o with Pipeline.inline_stencils = b })
                (bool_field k v)
          | "use_varith" ->
              Result.map (fun b -> { o with Pipeline.use_varith = b }) (bool_field k v)
          | "promote_coefficients" ->
              Result.map
                (fun b -> { o with Pipeline.promote_coefficients = b })
                (bool_field k v)
          | "one_shot_reduction" ->
              Result.map
                (fun b -> { o with Pipeline.one_shot_reduction = b })
                (bool_field k v)
          | "fuse_fmac" ->
              Result.map (fun b -> { o with Pipeline.fuse_fmac = b }) (bool_field k v)
          | "fuse_fmac_pass" ->
              Result.map
                (fun b -> { o with Pipeline.fuse_fmac_pass = b })
                (bool_field k v)
          | "comm_budget_bytes" -> (
              match v with
              | J.Int n when n > 0 -> Ok { o with Pipeline.comm_budget_bytes = n }
              | _ -> Error "config.comm_budget_bytes: expected a positive int")
          | "num_chunks_override" -> (
              match v with
              | J.Null -> Ok { o with Pipeline.num_chunks_override = None }
              | J.Int n when n > 0 ->
                  Ok { o with Pipeline.num_chunks_override = Some n }
              | _ ->
                  Error "config.num_chunks_override: expected a positive int or null")
          | "program_name" -> (
              match v with
              | J.String s when s <> "" -> Ok { o with Pipeline.program_name = s }
              | _ -> Error "config.program_name: expected a non-empty string")
          | k ->
              (* unknown knobs are fatal: accepting one silently would
                 hand two behaviorally different requests one cache key *)
              Error (Printf.sprintf "config.%s: unknown option" k)
        in
        match set with Ok o -> go o rest | Error _ as e -> e)
  in
  go defaults kvs

let config_of_options (o : Pipeline.options) : J.t =
  J.Obj
    [
      ("inline_stencils", J.Bool o.Pipeline.inline_stencils);
      ("use_varith", J.Bool o.Pipeline.use_varith);
      ("promote_coefficients", J.Bool o.Pipeline.promote_coefficients);
      ("one_shot_reduction", J.Bool o.Pipeline.one_shot_reduction);
      ("fuse_fmac", J.Bool o.Pipeline.fuse_fmac);
      ("fuse_fmac_pass", J.Bool o.Pipeline.fuse_fmac_pass);
      ("comm_budget_bytes", J.Int o.Pipeline.comm_budget_bytes);
      ( "num_chunks_override",
        match o.Pipeline.num_chunks_override with
        | None -> J.Null
        | Some n -> J.Int n );
      ("program_name", J.String o.Pipeline.program_name);
    ]

(* ------------------------------------------------------------------ *)
(* the store                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  lock : Mutex.t;
  tbl : (string, Pipeline.options) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create () : t =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let key_of_canonical (canonical : string) : string =
  Fingerprint.digest_hex canonical

let with_lock (t : t) f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add (t : t) ~(key : string) (o : Pipeline.options) : unit =
  with_lock t (fun () -> Hashtbl.replace t.tbl key o)

let peek (t : t) (key : string) : Pipeline.options option =
  with_lock t (fun () -> Hashtbl.find_opt t.tbl key)

let find (t : t) (key : string) : Pipeline.options option =
  match peek t key with
  | Some _ as r ->
      Atomic.incr t.hits;
      r
  | None ->
      Atomic.incr t.misses;
      None

let size (t : t) : int = with_lock t (fun () -> Hashtbl.length t.tbl)

let counters (t : t) : int * int =
  (Atomic.get t.hits, Atomic.get t.misses)

(* ------------------------------------------------------------------ *)
(* persistence                                                         *)
(* ------------------------------------------------------------------ *)

let to_json (t : t) : J.t =
  let entries =
    with_lock t (fun () ->
        Hashtbl.fold (fun key o acc -> (key, o) :: acc) t.tbl [])
  in
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries
  in
  J.summary ~tool:"tuned-configs"
    ~config:[ ("entries", J.Int (List.length entries)) ]
    ~results:
      (List.map
         (fun (key, o) ->
           J.Obj [ ("key", J.String key); ("config", config_of_options o) ])
         entries)

let of_json (doc : J.t) : (t, string) Stdlib.result =
  match Option.bind (J.member "results" doc) J.to_list_opt with
  | None -> Error "tuned-config store: no results array"
  | Some rows ->
      let t = create () in
      let rec go = function
        | [] -> Ok t
        | row :: rest -> (
            match
              ( Option.bind (J.member "key" row) J.to_string_opt,
                J.member "config" row )
            with
            | Some key, Some (J.Obj kvs) -> (
                match options_of_config Pipeline.default_options kvs with
                | Ok o ->
                    add t ~key o;
                    go rest
                | Error msg ->
                    Error (Printf.sprintf "tuned-config %s: %s" key msg))
            | _ -> Error "tuned-config store: entry needs key + config object")
      in
      go rows

let save_file (t : t) (path : string) : unit =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  J.to_channel oc (to_json t);
  output_char oc '\n'

let load_file (path : string) : (t, string) Stdlib.result =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match J.of_string text with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok doc -> of_json doc)
