(** The long-running compilation server — see the interface.

    Structure: the main thread owns every file descriptor and multiplexes
    them with [Unix.select] under a short timeout (so the stop flag is
    polled even when idle).  Worker domains never touch an fd: finished
    responses go through a mutex-protected outbox that the main loop
    drains after every select round.  Line framing is byte-accurate —
    a request split across reads is reassembled, and responses are
    written as complete lines only. *)

module J = Wsc_trace.Json
module T = Wsc_trace.Trace

type transport = Stdio | Unix_socket of string

type config = {
  domains : int;
  capacity : int;
  timeout_s : float;
  options : Wsc_core.Pipeline.options;
  transport : transport;
  trace_path : string option;
  tuned : Tuned.t option;
}

let default_config =
  {
    domains = 1;
    capacity = Engine.default_capacity;
    timeout_s = Engine.default_timeout_s;
    options = Wsc_core.Pipeline.default_options;
    transport = Stdio;
    trace_path = None;
    tuned = None;
  }

(* ------------------------------------------------------------------ *)
(* cooperative stop flag                                               *)
(* ------------------------------------------------------------------ *)

let stop_flag = Atomic.make false
let request_stop () = Atomic.set stop_flag true
let reset_stop () = Atomic.set stop_flag false
let stop_requested () = Atomic.get stop_flag

let install_signal_handlers () =
  let handle = Sys.Signal_handle (fun _ -> request_stop ()) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle;
  (* a client vanishing mid-write must not kill the server: EPIPE is
     reported by the write call instead *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_id : int;
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_buf : Buffer.t;  (** bytes read but not yet terminated by '\n' *)
  mutable c_eof : bool;  (** read side closed; writes may still drain *)
  mutable c_dead : bool;  (** write side failed; drop silently *)
  c_close_fds : bool;  (** sockets: close on removal (never for stdio) *)
}

(** Split [buf ^ chunk] into complete lines; the tail stays buffered. *)
let push_chunk (c : conn) (chunk : string) : string list =
  Buffer.add_string c.c_buf chunk;
  let s = Buffer.contents c.c_buf in
  Buffer.clear c.c_buf;
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i ch ->
      if ch = '\n' then begin
        lines := String.sub s !start (i - !start) :: !lines;
        start := i + 1
      end)
    s;
  Buffer.add_substring c.c_buf s !start (String.length s - !start);
  List.rev !lines

let write_all (c : conn) (s : string) : unit =
  if not c.c_dead then begin
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let pos = ref 0 in
    try
      while !pos < n do
        pos := !pos + Unix.write c.c_out b !pos (n - !pos)
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      c.c_dead <- true
  end

(* ------------------------------------------------------------------ *)
(* the server                                                          *)
(* ------------------------------------------------------------------ *)

type job = {
  j_conn : int;
  j_req : Protocol.compile_request;
  j_submit : float;
}

let run (cfg : config) : int =
  let engine =
    Engine.create ~capacity:cfg.capacity ~timeout_s:cfg.timeout_s
      ~options:cfg.options ?tuned:cfg.tuned ()
  in
  let domains = max 1 cfg.domains in
  let epoch = Unix.gettimeofday () in
  let sinks =
    Array.init domains (fun _ ->
        match cfg.trace_path with Some _ -> T.collector () | None -> T.null)
  in
  (* outbox: workers push (conn id, response line); only the main loop
     writes fds *)
  let out_lock = Mutex.create () in
  let outbox : (int * string) Queue.t = Queue.create () in
  let respond conn_id (doc : J.t) : unit =
    let line = J.to_string doc ^ "\n" in
    Mutex.lock out_lock;
    Queue.push (conn_id, line) outbox;
    Mutex.unlock out_lock
  in
  let worker i (job : job) : unit =
    let r =
      Engine.compile_source engine ~options:job.j_req.Protocol.rq_options
        ?timeout_s:job.j_req.Protocol.rq_timeout_s ~submitted_at:job.j_submit
        job.j_req.Protocol.rq_source
    in
    Engine.emit_spans sinks.(i) ~tid:i ~epoch ~id:job.j_req.Protocol.rq_id r;
    respond job.j_conn (Protocol.compile_response ~id:job.j_req.Protocol.rq_id r)
  in
  (* a worker dying mid-request (an escaped exception — compile errors
     are values, so this is a harness bug or resource blip) retries the
     request with backoff instead of tearing the server down; a request
     that exhausts its budget gets a structured error response *)
  let on_exhausted _i (job : job) (e : exn) : unit =
    respond job.j_conn
      (Protocol.protocol_error_response ~id:(Some job.j_req.Protocol.rq_id)
         (Printf.sprintf "worker failed after retries: %s"
            (Printexc.to_string e)))
  in
  let pool = Pool.create ~max_retries:2 ~on_exhausted ~domains worker in
  (* --- transport setup --- *)
  let next_conn = ref 0 in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  let add_conn ~close_fds fd_in fd_out =
    let id = !next_conn in
    incr next_conn;
    Hashtbl.replace conns id
      {
        c_id = id;
        c_in = fd_in;
        c_out = fd_out;
        c_buf = Buffer.create 4096;
        c_eof = false;
        c_dead = false;
        c_close_fds = close_fds;
      }
  in
  let listen_fd, socket_path =
    match cfg.transport with
    | Stdio ->
        add_conn ~close_fds:false Unix.stdin Unix.stdout;
        (None, None)
    | Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        (Some fd, Some path)
  in
  let served = ref 0 in
  let draining = ref false in
  let flush_outbox () =
    let batch = ref [] in
    Mutex.lock out_lock;
    while not (Queue.is_empty outbox) do
      batch := Queue.pop outbox :: !batch
    done;
    Mutex.unlock out_lock;
    List.iter
      (fun (conn_id, line) ->
        match Hashtbl.find_opt conns conn_id with
        | Some c -> write_all c line
        | None -> () (* client went away; drop *))
      (List.rev !batch)
  in
  let outbox_empty () =
    Mutex.lock out_lock;
    let e = Queue.is_empty outbox in
    Mutex.unlock out_lock;
    e
  in
  let handle_line (c : conn) (line : string) : unit =
    if String.trim line <> "" then begin
      incr served;
      match Protocol.request_of_string ~defaults:cfg.options line with
      | Error (id, msg) -> respond c.c_id (Protocol.protocol_error_response ~id msg)
      | Ok (Protocol.Stats id) ->
          respond c.c_id
            (Protocol.stats_response ~id ~engine ~retries:(Pool.retries pool)
               ~worker_restarts:(Pool.worker_restarts pool)
               ~uptime_s:(Unix.gettimeofday () -. epoch) ())
      | Ok (Protocol.Shutdown id) ->
          respond c.c_id (Protocol.shutdown_response ~id);
          draining := true
      | Ok (Protocol.Compile rq) ->
          let job = { j_conn = c.c_id; j_req = rq; j_submit = Unix.gettimeofday () } in
          if not (Pool.submit pool job) then
            respond c.c_id
              (Protocol.protocol_error_response ~id:(Some rq.Protocol.rq_id)
                 "server is shutting down")
    end
  in
  let read_chunk (c : conn) : unit =
    let buf = Bytes.create 65536 in
    match Unix.read c.c_in buf 0 (Bytes.length buf) with
    | 0 -> c.c_eof <- true
    | n -> List.iter (handle_line c) (push_chunk c (Bytes.sub_string buf 0 n))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
        c.c_eof <- true
  in
  let remove_closed () =
    let dead =
      Hashtbl.fold
        (fun id c acc -> if c.c_eof || c.c_dead then (id, c) :: acc else acc)
        conns []
    in
    List.iter
      (fun (id, c) ->
        (* a read-closed conn may still owe responses for in-flight
           work; only drop it once nothing can be pending for anyone.
           Dead (write-failed) conns are dropped immediately. *)
        if c.c_dead || (c.c_eof && Pool.pending pool = 0 && outbox_empty ()) then begin
          Hashtbl.remove conns id;
          if c.c_close_fds then (
            try Unix.close c.c_in with Unix.Unix_error _ -> ())
        end)
      dead
  in
  let finally () =
    (* graceful teardown on every exit path: finish accepted work, get
       every response out, then tear the pool down and report *)
    draining := true;
    (try
       while Pool.pending pool > 0 do
         flush_outbox ();
         Unix.sleepf 0.01
       done
     with _ -> ());
    Pool.shutdown pool;
    flush_outbox ();
    (match listen_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (match socket_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ());
    (match cfg.trace_path with
    | Some path ->
        let into = T.collector () in
        Array.iteri
          (fun i _sink ->
            T.name_track into ~pid:T.serve_pid ~tid:i
              (Printf.sprintf "worker %d" i))
          sinks;
        T.name_process into ~pid:T.serve_pid "compile service";
        T.merge_into ~into (Array.to_list sinks);
        Wsc_trace.Chrome.write_file ~path into
    | None -> ());
    let requests, ok, errors = Engine.counters engine in
    let s = Engine.cache_stats engine in
    let tuned_hits, tuned_misses = Engine.tuned_counters engine in
    Printf.eprintf
      "wsc serve: %d request(s) read, %d compiled ok, %d error(s); %d \
       retried, %d worker restart(s); cache %d hit (%d dedup) / %d miss / \
       %d evicted (hit-rate %.1f%%, %d/%d entries); tuned %d hit / %d \
       miss; uptime %.1f s\n\
       %!"
      !served ok errors (Pool.retries pool)
      (Pool.worker_restarts pool) s.Cache.hits s.Cache.dedup_hits
      s.Cache.misses s.Cache.evictions
      (100.0 *. Cache.hit_rate s)
      s.Cache.entries s.Cache.capacity tuned_hits tuned_misses
      (Unix.gettimeofday () -. epoch);
    ignore requests
  in
  Fun.protect ~finally (fun () ->
      let stdio_eof_done () =
        (* stdin closed, everything compiled and written: normal exit *)
        cfg.transport = Stdio
        && Hashtbl.fold (fun _ c acc -> acc && c.c_eof) conns true
        && Pool.pending pool = 0
        && outbox_empty ()
      in
      while
        not (stop_requested () || !draining)
        && not (stdio_eof_done ())
      do
        let read_fds =
          (match listen_fd with Some fd -> [ fd ] | None -> [])
          @ Hashtbl.fold
              (fun _ c acc -> if c.c_eof then acc else c.c_in :: acc)
              conns []
        in
        let readable =
          match Unix.select read_fds [] [] 0.1 with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            match listen_fd with
            | Some lfd when fd = lfd ->
                let client, _ = Unix.accept lfd in
                add_conn ~close_fds:true client client
            | _ -> (
                match
                  Hashtbl.fold
                    (fun _ c acc -> if c.c_in = fd then Some c else acc)
                    conns None
                with
                | Some c -> read_chunk c
                | None -> ()))
          readable;
        flush_outbox ();
        remove_closed ()
      done);
  !served
