(** Epoch-granular checkpoints of the co-simulation's gathered global
    state: a deep snapshot of every state grid plus the epoch counter it
    was taken after.  [restore] writes the snapshot back into live grids
    bit-for-bit, so rollback + deterministic re-execution reproduces the
    fault-free fields exactly (pinned by a qcheck round-trip property). *)

module I = Wsc_dialects.Interp

type t

(** The epoch the snapshot was taken after (0 = initial state). *)
val epoch : t -> int

(** Deep-copy [grids] as the state at the end of [epoch]. *)
val take : epoch:int -> I.grid list -> t

(** Blit the snapshot back into [into] (same shapes required).
    @raise Invalid_argument on a shape or count mismatch. *)
val restore : t -> into:I.grid list -> unit

(** Snapshot size as a real machine would persist it (f32 scalars,
    [Interconnect.bytes_per_scalar] each). *)
val bytes : t -> int
