(** Wafer-level fault campaign runner — see the interface.

    Cost model: one single-wafer reference and one fault-free
    co-simulation per campaign, then one co-simulation per
    (kind, rate, seed) cell.  Every cell shares one compile engine, so
    a whole sweep compiles each slice shape exactly once. *)

module Wf = Wsc_faults.Faults.Wafer
module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp
module Fabric = Wsc_wse.Fabric
module Machine = Wsc_wse.Machine
module Engine = Wsc_serve.Engine
module Json = Wsc_trace.Json

type cell = {
  kind : Wf.kind;
  rate : float;
  seed : int;
  completed : bool;
  survived : bool;
  bit_identical : bool;
  degraded : bool;
  divergence : float;
  injected : int;
  detections : int;
  rollbacks : int;
  replayed_epochs : int;
  respawns : int;
  checkpoints : int;
  checkpoint_bytes : int;
  lost_wafers : int;
  tainted_wafers : int;
  device_cycles : float;
  overhead_cycles : float;
  error : string option;
}

type report = {
  bench : string;
  machine : string;
  size : string;
  iterations : int;
  wafers : int * int;
  driver : string;
  resilient : bool;
  cadence : int;
  max_retries : int;
  baseline_cycles : float;
  cells : cell list;
}

let survival_rate (r : report) : float =
  match r.cells with
  | [] -> 1.0
  | cs ->
      float_of_int (List.length (List.filter (fun c -> c.survived) cs))
      /. float_of_int (List.length cs)

let max_abs_diff (a : I.grid list) (b : I.grid list) : float =
  List.fold_left2
    (fun acc (x : I.grid) (y : I.grid) ->
      if Array.length x.I.gdata <> Array.length y.I.gdata then infinity
      else begin
        let d = ref acc in
        Array.iteri
          (fun i v -> d := Float.max !d (Float.abs (v -. y.I.gdata.(i))))
          x.I.gdata;
        !d
      end)
    0.0 a b

let run ?engine ?(machine = Machine.wse3) ?driver ?iterations
    ?(kinds = Wf.all_kinds) ?(resilience = Wf.default_resilience)
    ~(bench : string) ~(size : B.size) ~(wafers : int * int)
    ~(resilient : bool) ~(rates : float list) ~(seeds : int list) () : report
    =
  let d = B.find bench in
  let p =
    match iterations with Some n -> d.B.make_n size n | None -> d.B.make size
  in
  let engine = match engine with Some e -> e | None -> Engine.create () in
  (* the bit-identity yardstick: the undecomposed single-wafer run *)
  let reference = Cosim.reference ?driver ~machine p in
  (* fault-free co-simulation under the same plan: recovery overhead is
     measured in device cycles against it *)
  let baseline = Cosim.run ~engine ~machine ?driver ~wafers p in
  let run_cell kind rate seed : cell =
    let cfg = Wf.config_for kind ~rate ~seed ~resilient in
    let cfg = { cfg with Wf.resilience = Option.map (fun _ -> resilience) cfg.Wf.resilience } in
    let faults = Wf.create cfg in
    let outcome =
      match Cosim.run ~engine ~machine ?driver ~faults ~wafers p with
      | r -> Ok r
      | exception Cosim.Cosim_error msg -> Error msg
      | exception Fabric.Sim_error msg -> Error msg
    in
    let st = Wf.stats faults in
    let injected =
      st.Wf.halo_drops + st.Wf.halo_corrupts + st.Wf.crashes + st.Wf.losses
      + st.Wf.spikes
    in
    let base =
      {
        kind;
        rate;
        seed;
        completed = false;
        survived = false;
        bit_identical = false;
        degraded = false;
        divergence = Float.nan;
        injected;
        detections = st.Wf.detected;
        rollbacks = 0;
        replayed_epochs = 0;
        respawns = 0;
        checkpoints = 0;
        checkpoint_bytes = 0;
        lost_wafers = 0;
        tainted_wafers = 0;
        device_cycles = Float.nan;
        overhead_cycles = Float.nan;
        error = None;
      }
    in
    match outcome with
    | Error msg -> { base with error = Some msg }
    | Ok r ->
        let rec_ =
          match r.Cosim.recovery with
          | Some rc -> rc
          | None -> assert false (* the injector was enabled *)
        in
        let identical = Cosim.grids_bit_identical r.Cosim.grids reference in
        {
          base with
          completed = true;
          survived = identical && not rec_.Cosim.degraded;
          bit_identical = identical;
          degraded = rec_.Cosim.degraded;
          divergence = max_abs_diff r.Cosim.grids reference;
          detections = rec_.Cosim.detections;
          rollbacks = rec_.Cosim.rollbacks;
          replayed_epochs = rec_.Cosim.replayed_epochs;
          respawns = rec_.Cosim.respawns;
          checkpoints = rec_.Cosim.checkpoints;
          checkpoint_bytes = rec_.Cosim.checkpoint_bytes;
          lost_wafers = List.length rec_.Cosim.lost;
          tainted_wafers = List.length rec_.Cosim.tainted;
          device_cycles = r.Cosim.device_cycles;
          overhead_cycles = r.Cosim.device_cycles -. baseline.Cosim.device_cycles;
        }
  in
  let cells =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun rate -> List.map (fun seed -> run_cell kind rate seed) seeds)
          rates)
      kinds
  in
  let wx, wy = wafers in
  {
    bench;
    machine = machine.Machine.name;
    size = B.size_to_string size;
    iterations = p.P.iterations;
    wafers = (wx, wy);
    driver =
      Fabric.driver_name (Option.value driver ~default:Fabric.Event_driven);
    resilient;
    cadence = resilience.Wf.checkpoint_cadence;
    max_retries = resilience.Wf.max_retries;
    baseline_cycles = baseline.Cosim.device_cycles;
    cells;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(** Fixed formats throughout so a replayed campaign renders the same
    bytes. *)
let div_to_string (d : float) : string =
  if Float.is_nan d then "-" else Printf.sprintf "%.3e" d

let to_string (r : report) : string =
  let buf = Buffer.create 1024 in
  let wx, wy = r.wafers in
  Buffer.add_string buf
    (Printf.sprintf
       "wafer fault campaign: %s on %dx%d %s (%s, %d epochs, %s driver, \
        resilience %s)\n"
       r.bench wx wy r.machine r.size r.iterations r.driver
       (if r.resilient then
          Printf.sprintf "on: cadence %d, max retries %d" r.cadence
            r.max_retries
        else "off"));
  Buffer.add_string buf
    (Printf.sprintf "fault-free co-simulation: %.0f device cycles\n"
       r.baseline_cycles);
  Buffer.add_string buf
    (Printf.sprintf "survival: %d/%d cells (%.0f%%)\n"
       (List.length (List.filter (fun c -> c.survived) r.cells))
       (List.length r.cells)
       (100.0 *. survival_rate r));
  Buffer.add_string buf
    "kind          rate    seed  ok  bits  inj  det  rbk  replay  spawn  \
     ckpt  lost  taint   overhead  divergence\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-12s  %-6g  %-4d  %-2s  %-4s  %3d  %3d  %3d  %6d  %5d  %4d  \
            %4d  %5d  %9.0f  %s%s\n"
           (Wf.kind_to_string c.kind)
           c.rate c.seed
           (if c.survived then "y" else "n")
           (if c.bit_identical then "y" else "n")
           c.injected c.detections c.rollbacks c.replayed_epochs c.respawns
           c.checkpoints c.lost_wafers c.tainted_wafers
           (if Float.is_nan c.overhead_cycles then 0.0 else c.overhead_cycles)
           (div_to_string c.divergence)
           (match c.error with None -> "" | Some e -> "  ! " ^ e)))
    r.cells;
  Buffer.contents buf

let cell_to_json (c : cell) : Json.t =
  Json.Obj
    [
      ("kind", Json.String (Wf.kind_to_string c.kind));
      ("rate", Json.Float c.rate);
      ("seed", Json.Int c.seed);
      ("completed", Json.Bool c.completed);
      ("survived", Json.Bool c.survived);
      ("bit_identical", Json.Bool c.bit_identical);
      ("degraded", Json.Bool c.degraded);
      ("divergence", Json.float_or_null c.divergence);
      ("injected", Json.Int c.injected);
      ("detections", Json.Int c.detections);
      ("rollbacks", Json.Int c.rollbacks);
      ("replayed_epochs", Json.Int c.replayed_epochs);
      ("respawns", Json.Int c.respawns);
      ("checkpoints", Json.Int c.checkpoints);
      ("checkpoint_bytes", Json.Int c.checkpoint_bytes);
      ("lost_wafers", Json.Int c.lost_wafers);
      ("tainted_wafers", Json.Int c.tainted_wafers);
      ("device_cycles", Json.float_or_null c.device_cycles);
      ("overhead_cycles", Json.float_or_null c.overhead_cycles);
      ( "error",
        match c.error with None -> Json.Null | Some e -> Json.String e );
    ]

(** Shared [--json] envelope (see {!Wsc_trace.Json.summary}). *)
let to_json (r : report) : Json.t =
  let wx, wy = r.wafers in
  Json.summary ~tool:"mwfaults"
    ~config:
      [
        ("bench", Json.String r.bench);
        ("machine", Json.String r.machine);
        ("size", Json.String r.size);
        ("iterations", Json.Int r.iterations);
        ("wafers", Json.String (Printf.sprintf "%dx%d" wx wy));
        ("driver", Json.String r.driver);
        ("resilient", Json.Bool r.resilient);
        ("checkpoint_cadence", Json.Int r.cadence);
        ("max_retries", Json.Int r.max_retries);
        ("baseline_cycles", Json.Float r.baseline_cycles);
        ("survival_rate", Json.Float (survival_rate r));
      ]
    ~results:(List.map cell_to_json r.cells)
