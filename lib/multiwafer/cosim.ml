(** Multi-wafer co-simulation — see the interface.

    Execution is bulk-synchronous at wafer granularity: one BSP epoch
    is one global timestep.  Each epoch, every wafer's subproblem is
    rebuilt from the current global state (its interior plus a full
    halo ring, so inter-wafer halos are exchanged through host memory
    with perfect fidelity), simulated on its own domain, and its
    interior gathered back.  Cells of the global halo ring keep their
    initial values forever — exactly the single-wafer host's Dirichlet
    boundary treatment — so the gathered fields are bit-identical to
    the undecomposed simulation by construction, and the modeled
    interconnect charges time without touching data.

    Resilience: the global grids are only mutated at the gather, and
    the gather only runs when every live wafer simulated on
    checksum-verified halos — so any detected fault (halo drop or
    corruption, wafer crash, wafer loss) leaves the globals exactly as
    they stood at the end of the previous epoch.  Recovery restores the
    last checkpoint and re-executes from there; every re-execution is
    keyed with a fresh attempt number, so transient faults clear and
    the recovered fields stay bit-identical to the fault-free run.  A
    wafer whose epoch exhausts [max_retries] is declared dead: its
    interior freezes, taint spreads to neighbours through the halo
    graph, and the run completes with a validity report instead of
    crashing. *)

module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp
module Dmp = Wsc_dialects.Dmp
module Printer = Wsc_ir.Printer
module Pipeline = Wsc_core.Pipeline
module Engine = Wsc_serve.Engine
module Pool = Wsc_serve.Pool
module Cache = Wsc_serve.Cache
module Host = Wsc_wse.Host
module Fabric = Wsc_wse.Fabric
module Machine = Wsc_wse.Machine
module Faults = Wsc_faults.Faults
module Wf = Wsc_faults.Faults.Wafer

exception Cosim_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Cosim_error s)) fmt

(* one domain per wafer, spawned once per co-simulation through the
   serve pool — this counter pins the discipline in a regression test,
   like Fabric.domains_spawned and Pool.domains_spawned *)
let spawned = Atomic.make 0
let domains_spawned () = Atomic.get spawned

type recovery = {
  rollbacks : int;
  replayed_epochs : int;
  checkpoints : int;
  checkpoint_bytes : int;
  respawns : int;
  detections : int;
  degraded : bool;
  lost : (int * int) list;
  tainted : (int * int) list;
}

type t = {
  plan : Decompose.plan;
  grids : I.grid list;  (** gathered global state, [Host.read_all] shape *)
  epochs : int;
  device_cycles : float;  (** Σ over epochs of the slowest wafer's cycles *)
  interconnect_s : float;  (** modeled inter-wafer exchange time *)
  exchange_bytes : int;  (** bytes a real interconnect would have moved *)
  cache : Cache.stats;  (** compile-engine cache counters after compiling *)
  distinct_programs : int;  (** distinct per-wafer slice shapes *)
  wall_s : float;
  recovery : recovery option;  (** [None] unless a fault injector ran *)
}

(** Freshly initialized state grids for [p] (the CLI / oracle init). *)
let init_grids (p : P.t) : I.grid list =
  let ft = P.field_type p in
  List.map
    (fun _ ->
      let g3 = I.grid_of_typ ft in
      I.init_grid g3;
      I.retensorize_grid g3)
    p.P.state

(** Bit-exact comparison (not a tolerance): shape and every float's
    bits. *)
let grids_bit_identical (a : I.grid list) (b : I.grid list) : bool =
  List.length a = List.length b
  && List.for_all2
       (fun (x : I.grid) (y : I.grid) ->
         x.I.gbounds = y.I.gbounds
         && Array.length x.I.gdata = Array.length y.I.gdata
         &&
         let ok = ref true in
         Array.iteri
           (fun i v ->
             if Int64.bits_of_float v <> Int64.bits_of_float y.I.gdata.(i) then
               ok := false)
           x.I.gdata;
         !ok)
       a b

(** The undecomposed single-wafer run under the same pipeline options
    and fabric driver — the bit-identity baseline. *)
let reference ?driver ?(machine = Machine.wse3)
    ?(options = Pipeline.default_options) (p : P.t) : I.grid list =
  let compiled = Pipeline.compile ~options (P.compile p) in
  let h = Host.simulate ?driver machine compiled (init_grids p) in
  Host.read_all h

(* ------------------------------------------------------------------ *)
(* halo strips                                                         *)
(* ------------------------------------------------------------------ *)

let dir_code = function
  | Dmp.North -> 0
  | Dmp.South -> 1
  | Dmp.East -> 2
  | Dmp.West -> 3

(** The view cells a swap fills with a neighbour's data (the whole
    z column per cell: damage in an uncarried column is harmless to the
    computation and keeps the receiver-side checksum conservative). *)
let strip_cells (s : Decompose.slice) (w : Dmp.swap_desc) : (int * int) list =
  let xs lo hi = List.init (hi - lo + 1) (fun i -> lo + i) in
  let cols, rows =
    match w.Dmp.dir with
    | Dmp.West -> (xs (-w.Dmp.depth) (-1), xs 0 (s.Decompose.sny - 1))
    | Dmp.East ->
        (xs s.Decompose.snx (s.Decompose.snx + w.Dmp.depth - 1),
         xs 0 (s.Decompose.sny - 1))
    | Dmp.North -> (xs 0 (s.Decompose.snx - 1), xs (-w.Dmp.depth) (-1))
    | Dmp.South ->
        (xs 0 (s.Decompose.snx - 1),
         xs s.Decompose.sny (s.Decompose.sny + w.Dmp.depth - 1))
  in
  List.concat_map (fun x -> List.map (fun y -> (x, y)) rows) cols

let cell_floats (g : I.grid) (x : int) (y : int) : float array =
  match I.grid_get g [ x; y ] with
  | I.Rtensor a -> a
  | I.Rfloat v -> [| v |]
  | _ -> assert false

(** Receiver-side checksum over a swap's strip, all state grids — the
    simulated protocol computes it on both ends of the transfer. *)
let strip_checksum (view : I.grid list) (cells : (int * int) list) : int64 =
  let flat =
    Array.concat
      (List.concat_map
         (fun g -> List.map (fun (x, y) -> cell_floats g x y) cells)
         view)
  in
  Faults.checksum flat ~off:0 ~len:(Array.length flat)

let strip_scalars (view : I.grid list) (cells : (int * int) list) : int =
  List.fold_left
    (fun acc (g : I.grid) ->
      List.fold_left
        (fun a (x, y) -> a + Array.length (cell_floats g x y))
        acc cells)
    0 view

(** A dropped transfer: the receive buffer was never written. *)
let zero_strip (view : I.grid list) (cells : (int * int) list) : unit =
  List.iter
    (fun g ->
      List.iter
        (fun (x, y) ->
          match I.grid_get g [ x; y ] with
          | I.Rtensor a ->
              I.grid_set g [ x; y ] (I.Rtensor (Array.make (Array.length a) 0.0))
          | I.Rfloat _ -> I.grid_set g [ x; y ] (I.Rfloat 0.0)
          | _ -> assert false)
        cells)
    view

(** Perturb scalar [idx] of the flattened strip by [noise]. *)
let corrupt_strip (view : I.grid list) (cells : (int * int) list) ~(idx : int)
    ~(noise : float) : unit =
  let seen = ref 0 in
  List.iter
    (fun g ->
      List.iter
        (fun (x, y) ->
          let a = cell_floats g x y in
          let n = Array.length a in
          if !seen <= idx && idx < !seen + n then begin
            let a = Array.copy a in
            a.(idx - !seen) <- a.(idx - !seen) +. noise;
            I.grid_set g [ x; y ] (I.Rtensor a)
          end;
          seen := !seen + n)
        cells)
    view

(* ------------------------------------------------------------------ *)
(* the run                                                             *)
(* ------------------------------------------------------------------ *)

type status = Healthy | Crashed | Lost_now | Halo_bad

let run ?engine ?(interconnect = Interconnect.default)
    ?(machine = Machine.wse3) ?driver ?(faults = Wf.null)
    ~(wafers : int * int) (p : P.t) : t =
  let t0 = Unix.gettimeofday () in
  let pl = Decompose.plan ~wafers p in
  let slices = Array.of_list pl.Decompose.slices in
  let n = Array.length slices in
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let subs = Array.map (Decompose.subprogram pl) slices in
  let distinct_programs =
    Array.to_list subs
    |> List.map (fun (s : P.t) -> s.P.extents)
    |> List.sort_uniq compare |> List.length
  in
  let injecting = Wf.enabled faults in
  let resilience =
    if injecting then (Wf.config faults).Wf.resilience else None
  in
  (* one worker domain per wafer, spawned exactly once per co-simulation *)
  let pool = Pool.create ~domains:n (fun _worker job -> job ()) in
  ignore (Atomic.fetch_and_add spawned n);
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let par_iter (f : int -> unit) : unit =
    let failed : exn option array = Array.make n None in
    for i = 0 to n - 1 do
      if not (Pool.submit pool (fun () ->
                  try f i with e -> failed.(i) <- Some e))
      then fail "worker pool rejected a job"
    done;
    Pool.drain pool;
    Array.iter (function Some e -> raise e | None -> ()) failed
  in
  (* compile every wafer concurrently through the shared engine:
     equal-extent slices key identically, so one compiles cold and the
     rest are cache/single-flight dedup hits *)
  let srcs = Array.map (fun s -> Printer.op_to_string (P.compile s)) subs in
  let programs = Array.make n None in
  let compile_wafer i =
    match (Engine.compile_source engine srcs.(i)).Engine.outcome with
    | Ok c -> programs.(i) <- Some (snd (Pipeline.modules_of c.Engine.lowered))
    | Error e ->
        fail "wafer (%d,%d): compile failed: %s" slices.(i).Decompose.wi
          slices.(i).Decompose.wj e.Engine.e_message
  in
  par_iter compile_wafer;
  let program i =
    match programs.(i) with Some m -> m | None -> fail "wafer %d: no program" i
  in
  let wafer_index =
    let h = Hashtbl.create n in
    Array.iteri
      (fun i (s : Decompose.slice) ->
        Hashtbl.replace h (s.Decompose.wi, s.Decompose.wj) i)
      slices;
    h
  in
  let neighbour (s : Decompose.slice) (d : Dmp.direction) : int option =
    let wi, wj = (s.Decompose.wi, s.Decompose.wj) in
    let key =
      match d with
      | Dmp.West -> (wi - 1, wj)
      | Dmp.East -> (wi + 1, wj)
      | Dmp.North -> (wi, wj - 1)
      | Dmp.South -> (wi, wj + 1)
    in
    Hashtbl.find_opt wafer_index key
  in
  (* global state, including the Dirichlet halo ring that never moves *)
  let globals = init_grids p in
  let epochs = p.P.iterations in
  let outs : I.grid list array = Array.make n [] in
  let cycles = Array.make n 0.0 in
  let statuses = Array.make n Healthy in
  let dead = Array.make n false in
  let tainted = Array.make n false in
  let device_cycles = ref 0.0 in
  let ic_s = ref 0.0 in
  let exchanges = ref 0 in
  let rollbacks = ref 0 in
  let respawns = ref 0 in
  let checkpoints = ref 0 in
  let checkpoint_bytes = ref 0 in
  let total_execs = ref 0 in
  let exec_count = Array.make (epochs + 1) 0 in
  let take_checkpoint epoch =
    let ck = Checkpoint.take ~epoch globals in
    incr checkpoints;
    checkpoint_bytes := !checkpoint_bytes + Checkpoint.bytes ck;
    ck
  in
  let ck = ref (Option.map (fun _ -> take_checkpoint 0) resilience) in
  let cadence =
    match resilience with
    | Some r -> max 1 r.Wf.checkpoint_cadence
    | None -> 1
  in
  let max_retries =
    match resilience with Some r -> r.Wf.max_retries | None -> 0
  in
  let e = ref 1 in
  while !e <= epochs do
    let epoch = !e in
    exec_count.(epoch) <- exec_count.(epoch) + 1;
    incr total_execs;
    let attempt = exec_count.(epoch) in
    Array.fill cycles 0 n 0.0;
    Array.fill statuses 0 n Healthy;
    (* the per-wafer path: guarded so a mid-epoch failure can never
       strand the pool (par_iter re-raises after the drain) *)
    par_iter (fun i ->
        if dead.(i) then ()
        else if injecting && Wf.lost_here faults ~epoch ~wafer:i then begin
          statuses.(i) <- Lost_now;
          Wf.record_detection faults
        end
        else if injecting && Wf.crash_here faults ~epoch ~wafer:i ~attempt
        then begin
          statuses.(i) <- Crashed;
          Wf.record_detection faults
        end
        else begin
          let s = slices.(i) in
          (* the wafer's current view: interior and full halo ring copied
             out of the global grids (neighbour interiors where a
             neighbour owns them, initial boundary values elsewhere) *)
          let sub_ft = P.field_type subs.(i) in
          let view =
            List.map
              (fun gl ->
                let g = I.retensorize_grid (I.grid_of_typ sub_ft) in
                I.iter_points g.I.gbounds (fun pt ->
                    match pt with
                    | [ sx; sy ] ->
                        I.grid_set g pt
                          (I.grid_get gl
                             [ s.Decompose.x0 + sx; s.Decompose.y0 + sy ])
                    | _ -> assert false);
                g)
              globals
          in
          (* inject inter-wafer faults on the freshly received halos and
             verify the per-swap checksums the protocol would carry *)
          if injecting then
            List.iter
              (fun (w : Dmp.swap_desc) ->
                let dir = dir_code w.Dmp.dir in
                let dropped = Wf.drop_halo faults ~epoch ~wafer:i ~dir ~attempt in
                let corrupted =
                  (not dropped)
                  && Wf.corrupt_halo faults ~epoch ~wafer:i ~dir ~attempt
                in
                if dropped || corrupted then begin
                  let cells = strip_cells s w in
                  let sent = strip_checksum view cells in
                  if dropped then zero_strip view cells
                  else begin
                    let len = strip_scalars view cells in
                    let idx, noise =
                      Wf.halo_corruption faults ~epoch ~wafer:i ~dir ~attempt
                        ~len
                    in
                    corrupt_strip view cells ~idx ~noise
                  end;
                  let received = strip_checksum view cells in
                  (* detection only with the protocol on; without it the
                     damaged halo is consumed silently *)
                  if resilience <> None && received <> sent then begin
                    statuses.(i) <- Halo_bad;
                    Wf.record_detection faults
                  end
                end)
              s.Decompose.swaps;
          if statuses.(i) = Healthy then begin
            let h = Host.load machine (program i) view in
            Host.run ?driver h;
            outs.(i) <- Host.read_all h;
            cycles.(i) <- Fabric.elapsed_cycles h.Host.sim
          end
        end);
    (* device time burns on every execution — wafers that simulated
       before the epoch rolled back are real recovery cost *)
    device_cycles := !device_cycles +. Array.fold_left Float.max 0.0 cycles;
    let faulty =
      Array.to_list statuses
      |> List.mapi (fun i st -> (i, st))
      |> List.filter (fun (i, st) -> (not dead.(i)) && st <> Healthy)
    in
    (* recovery happens off the fast path: faults without the protocol
       either abort (a dead wafer cannot be papered over) or, for halo
       damage, silently poison the data like PR 3's no-resilience mode *)
    if faulty <> [] && resilience = None then begin
      let i, st = List.hd faulty in
      let s = slices.(i) in
      fail "wafer (%d,%d) %s at epoch %d with resilience disabled"
        s.Decompose.wi s.Decompose.wj
        (match st with
        | Crashed -> "crashed"
        | Lost_now -> "was lost"
        | _ -> "failed")
        epoch
    end;
    if faulty = [] then begin
      (* gather: each live wafer's interior back into the global grids
         (the halo ring is untouched, preserving Dirichlet; dead wafers
         stay frozen at their last gathered state) *)
      Array.iteri
        (fun i out ->
          if not dead.(i) then
            let s = slices.(i) in
            List.iter2
              (fun gl oj ->
                for sx = 0 to s.Decompose.snx - 1 do
                  for sy = 0 to s.Decompose.sny - 1 do
                    I.grid_set gl
                      [ s.Decompose.x0 + sx; s.Decompose.y0 + sy ]
                      (I.grid_get oj [ sx; sy ])
                  done
                done)
              globals out)
        outs;
      (* the interconnect moves updated halos between consecutive
         epochs; epoch 1 starts from locally computable initial data *)
      if epoch >= 2 then begin
        incr exchanges;
        let charge =
          Array.fold_left
            (fun acc (s : Decompose.slice) ->
              let base = Interconnect.slice_s interconnect s in
              let i = Hashtbl.find wafer_index (s.Decompose.wi, s.Decompose.wj) in
              let f =
                if injecting && Wf.spike_here faults ~epoch ~wafer:i then
                  (Wf.config faults).Wf.spike_factor
                else 1.0
              in
              Float.max acc (base *. f))
            0.0 slices
        in
        ic_s := !ic_s +. charge
      end;
      (* taint flows one wafer-hop per epoch through the halo graph *)
      if Array.exists (fun b -> b) tainted then
        Array.iteri
          (fun i (s : Decompose.slice) ->
            if (not dead.(i)) && not tainted.(i) then
              if
                List.exists
                  (fun (w : Dmp.swap_desc) ->
                    match neighbour s w.Dmp.dir with
                    | Some j -> tainted.(j)
                    | None -> false)
                  s.Decompose.swaps
              then tainted.(i) <- true)
          slices;
      (match resilience with
      | Some _ when epoch < epochs && epoch mod cadence = 0 ->
          ck := Some (take_checkpoint epoch)
      | _ -> ());
      incr e
    end
    else if attempt > max_retries then begin
      (* this epoch's retry budget is exhausted: declare the offending
         wafers dead and degrade instead of crashing — their interiors
         freeze and taint spreads from them *)
      List.iter
        (fun (i, _) ->
          dead.(i) <- true;
          tainted.(i) <- true)
        faulty
    end
    else begin
      (* rollback: restore the last checkpoint and re-execute from
         there; crashed wafers are respawned through the shared engine
         (a warm cache hit — the slice was compiled once already) *)
      incr rollbacks;
      List.iter
        (fun (i, st) ->
          match st with
          | Crashed | Lost_now ->
              incr respawns;
              compile_wafer i
          | _ -> ())
        faulty;
      match !ck with
      | Some c ->
          Checkpoint.restore c ~into:globals;
          e := Checkpoint.epoch c + 1
      | None -> fail "rollback requested with no checkpoint"
    end
  done;
  let recovery =
    if not injecting then None
    else
      let coords pred =
        Array.to_list slices
        |> List.mapi (fun i (s : Decompose.slice) ->
               ((s.Decompose.wi, s.Decompose.wj), pred i))
        |> List.filter_map (fun (c, keep) -> if keep then Some c else None)
      in
      Some
        {
          rollbacks = !rollbacks;
          replayed_epochs = max 0 (!total_execs - epochs);
          checkpoints = !checkpoints;
          checkpoint_bytes = !checkpoint_bytes;
          respawns = !respawns;
          detections = (Wf.stats faults).Wf.detected;
          degraded = Array.exists (fun b -> b) dead;
          lost = coords (fun i -> dead.(i));
          tainted = coords (fun i -> tainted.(i));
        }
  in
  let interconnect_s, exchange_bytes =
    if injecting then
      (!ic_s, !exchanges * Interconnect.epoch_bytes pl)
    else
      (* fault-free closed form, unchanged from the pre-fault cosim *)
      let x = max 0 (epochs - 1) in
      (float_of_int x *. Interconnect.epoch_s interconnect pl,
       x * Interconnect.epoch_bytes pl)
  in
  {
    plan = pl;
    grids = globals;
    epochs;
    device_cycles = !device_cycles;
    interconnect_s;
    exchange_bytes;
    cache = Engine.cache_stats engine;
    distinct_programs;
    wall_s = Unix.gettimeofday () -. t0;
    recovery;
  }
