(** Multi-wafer co-simulation — see the interface.

    Execution is bulk-synchronous at wafer granularity: one BSP epoch
    is one global timestep.  Each epoch, every wafer's subproblem is
    rebuilt from the current global state (its interior plus a full
    halo ring, so inter-wafer halos are exchanged through host memory
    with perfect fidelity), simulated on its own domain, and its
    interior gathered back.  Cells of the global halo ring keep their
    initial values forever — exactly the single-wafer host's Dirichlet
    boundary treatment — so the gathered fields are bit-identical to
    the undecomposed simulation by construction, and the modeled
    interconnect charges time without touching data. *)

module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp
module Printer = Wsc_ir.Printer
module Pipeline = Wsc_core.Pipeline
module Engine = Wsc_serve.Engine
module Pool = Wsc_serve.Pool
module Cache = Wsc_serve.Cache
module Host = Wsc_wse.Host
module Fabric = Wsc_wse.Fabric
module Machine = Wsc_wse.Machine

exception Cosim_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Cosim_error s)) fmt

(* one domain per wafer, spawned once per co-simulation through the
   serve pool — this counter pins the discipline in a regression test,
   like Fabric.domains_spawned and Pool.domains_spawned *)
let spawned = Atomic.make 0
let domains_spawned () = Atomic.get spawned

type t = {
  plan : Decompose.plan;
  grids : I.grid list;  (** gathered global state, [Host.read_all] shape *)
  epochs : int;
  device_cycles : float;  (** Σ over epochs of the slowest wafer's cycles *)
  interconnect_s : float;  (** modeled inter-wafer exchange time *)
  exchange_bytes : int;  (** bytes a real interconnect would have moved *)
  cache : Cache.stats;  (** compile-engine cache counters after compiling *)
  distinct_programs : int;  (** distinct per-wafer slice shapes *)
  wall_s : float;
}

(** Freshly initialized state grids for [p] (the CLI / oracle init). *)
let init_grids (p : P.t) : I.grid list =
  let ft = P.field_type p in
  List.map
    (fun _ ->
      let g3 = I.grid_of_typ ft in
      I.init_grid g3;
      I.retensorize_grid g3)
    p.P.state

(** Bit-exact comparison (not a tolerance): shape and every float's
    bits. *)
let grids_bit_identical (a : I.grid list) (b : I.grid list) : bool =
  List.length a = List.length b
  && List.for_all2
       (fun (x : I.grid) (y : I.grid) ->
         x.I.gbounds = y.I.gbounds
         && Array.length x.I.gdata = Array.length y.I.gdata
         &&
         let ok = ref true in
         Array.iteri
           (fun i v ->
             if Int64.bits_of_float v <> Int64.bits_of_float y.I.gdata.(i) then
               ok := false)
           x.I.gdata;
         !ok)
       a b

(** The undecomposed single-wafer run under the same pipeline options
    and fabric driver — the bit-identity baseline. *)
let reference ?driver ?(machine = Machine.wse3)
    ?(options = Pipeline.default_options) (p : P.t) : I.grid list =
  let compiled = Pipeline.compile ~options (P.compile p) in
  let h = Host.simulate ?driver machine compiled (init_grids p) in
  Host.read_all h

let run ?engine ?(interconnect = Interconnect.default)
    ?(machine = Machine.wse3) ?driver ~(wafers : int * int) (p : P.t) : t =
  let t0 = Unix.gettimeofday () in
  let pl = Decompose.plan ~wafers p in
  let slices = Array.of_list pl.Decompose.slices in
  let n = Array.length slices in
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let subs = Array.map (Decompose.subprogram pl) slices in
  let distinct_programs =
    Array.to_list subs
    |> List.map (fun (s : P.t) -> s.P.extents)
    |> List.sort_uniq compare |> List.length
  in
  (* one worker domain per wafer, spawned exactly once per co-simulation *)
  let pool = Pool.create ~domains:n (fun _worker job -> job ()) in
  ignore (Atomic.fetch_and_add spawned n);
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let par_iter (f : int -> unit) : unit =
    let failed : exn option array = Array.make n None in
    for i = 0 to n - 1 do
      if not (Pool.submit pool (fun () ->
                  try f i with e -> failed.(i) <- Some e))
      then fail "worker pool rejected a job"
    done;
    Pool.drain pool;
    Array.iter (function Some e -> raise e | None -> ()) failed
  in
  (* compile every wafer concurrently through the shared engine:
     equal-extent slices key identically, so one compiles cold and the
     rest are cache/single-flight dedup hits *)
  let programs = Array.make n None in
  par_iter (fun i ->
      let src = Printer.op_to_string (P.compile subs.(i)) in
      match (Engine.compile_source engine src).Engine.outcome with
      | Ok c -> programs.(i) <- Some (snd (Pipeline.modules_of c.Engine.lowered))
      | Error e ->
          fail "wafer (%d,%d): compile failed: %s" slices.(i).Decompose.wi
            slices.(i).Decompose.wj e.Engine.e_message);
  let program i =
    match programs.(i) with Some m -> m | None -> fail "wafer %d: no program" i
  in
  (* global state, including the Dirichlet halo ring that never moves *)
  let globals = init_grids p in
  let epochs = p.P.iterations in
  let outs : I.grid list array = Array.make n [] in
  let cycles = Array.make n 0.0 in
  let device_cycles = ref 0.0 in
  for _epoch = 1 to epochs do
    par_iter (fun i ->
        let s = slices.(i) in
        (* the wafer's current view: interior and full halo ring copied
           out of the global grids (neighbour interiors where a
           neighbour owns them, initial boundary values elsewhere) *)
        let sub_ft = P.field_type subs.(i) in
        let view =
          List.map
            (fun gl ->
              let g = I.retensorize_grid (I.grid_of_typ sub_ft) in
              I.iter_points g.I.gbounds (fun pt ->
                  match pt with
                  | [ sx; sy ] ->
                      I.grid_set g pt
                        (I.grid_get gl [ s.Decompose.x0 + sx; s.Decompose.y0 + sy ])
                  | _ -> assert false);
              g)
            globals
        in
        let h = Host.load machine (program i) view in
        Host.run ?driver h;
        outs.(i) <- Host.read_all h;
        cycles.(i) <- Fabric.elapsed_cycles h.Host.sim);
    (* gather: each wafer's interior back into the global grids (the
       halo ring is untouched, preserving the Dirichlet boundary) *)
    Array.iteri
      (fun i out ->
        let s = slices.(i) in
        List.iter2
          (fun gl oj ->
            for sx = 0 to s.Decompose.snx - 1 do
              for sy = 0 to s.Decompose.sny - 1 do
                I.grid_set gl
                  [ s.Decompose.x0 + sx; s.Decompose.y0 + sy ]
                  (I.grid_get oj [ sx; sy ])
              done
            done)
          globals out)
      outs;
    device_cycles := !device_cycles +. Array.fold_left Float.max 0.0 cycles
  done;
  (* the interconnect moves updated halos between consecutive epochs;
     epoch 1 starts from locally computable initial data *)
  let exchanges = max 0 (epochs - 1) in
  {
    plan = pl;
    grids = globals;
    epochs;
    device_cycles = !device_cycles;
    interconnect_s = float_of_int exchanges *. Interconnect.epoch_s interconnect pl;
    exchange_bytes = exchanges * Interconnect.epoch_bytes pl;
    cache = Engine.cache_stats engine;
    distinct_programs;
    wall_s = Unix.gettimeofday () -. t0;
  }
