(** Multi-wafer co-simulation: run one stencil problem decomposed over
    a [(wx, wy)] grid of simulated wafers, one OCaml 5 domain per wafer
    on the persistent serve pool, with per-wafer programs compiled
    through the content-addressed compile engine (equal slices share
    one cache entry; concurrent compiles single-flight) and a modeled
    inter-wafer interconnect charged between BSP epochs.

    Determinism: halos move through host memory between epochs, the
    global boundary keeps the single-wafer Dirichlet values, and every
    wafer runs the same per-step code the undecomposed program would —
    so drained fields are bit-identical to the single-wafer simulation
    (asserted by [wsc multiwafer], the oracle tier and the tests).

    Resilience: pass a [Faults.Wafer] injector to exercise inter-wafer
    halo drops/corruption, wafer crashes and losses, and interconnect
    latency spikes.  With the injector's resilience protocol on, halos
    are checksum-verified each epoch, the gathered state is
    checkpointed on a configurable cadence, and any detected fault
    rolls back to the last checkpoint and re-executes — so recovered
    fields remain bit-identical to the fault-free reference.  A wafer
    that exhausts its retry budget degrades the run (it is declared
    dead and reported, with taint tracked through the halo graph)
    instead of crashing it. *)

module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp

exception Cosim_error of string

(** Worker domains ever spawned by co-simulations — exactly one per
    wafer per run; pinned by a regression test (the
    [Fabric.domains_spawned] / [Pool.domains_spawned] discipline). *)
val domains_spawned : unit -> int

(** What recovery did during a faulted run. *)
type recovery = {
  rollbacks : int;  (** checkpoint restores performed *)
  replayed_epochs : int;  (** epoch executions beyond the nominal count *)
  checkpoints : int;  (** snapshots taken (includes the initial one) *)
  checkpoint_bytes : int;  (** total bytes a real machine would persist *)
  respawns : int;  (** crashed/lost wafers re-provisioned (warm compiles) *)
  detections : int;  (** faults caught by checksums / liveness *)
  degraded : bool;  (** some wafer exhausted [max_retries] *)
  lost : (int * int) list;  (** wafer coordinates declared dead *)
  tainted : (int * int) list;  (** wafers whose fields are untrustworthy *)
}

type t = {
  plan : Decompose.plan;
  grids : I.grid list;  (** gathered global state, [Host.read_all] shape *)
  epochs : int;
  device_cycles : float;  (** Σ over epochs of the slowest wafer's cycles *)
  interconnect_s : float;  (** modeled inter-wafer exchange time *)
  exchange_bytes : int;  (** bytes a real interconnect would have moved *)
  cache : Wsc_serve.Cache.stats;  (** engine cache counters after compiling *)
  distinct_programs : int;  (** distinct per-wafer slice shapes *)
  wall_s : float;
  recovery : recovery option;  (** [None] unless a fault injector ran *)
}

(** Freshly initialized state grids (the shared CLI / oracle init). *)
val init_grids : P.t -> I.grid list

(** Bit-exact equality: same shape, same bits in every float. *)
val grids_bit_identical : I.grid list -> I.grid list -> bool

(** The undecomposed single-wafer simulation of [p] — the baseline the
    co-simulation must match bit for bit. *)
val reference :
  ?driver:Wsc_wse.Fabric.driver ->
  ?machine:Wsc_wse.Machine.t ->
  ?options:Wsc_core.Pipeline.options ->
  P.t ->
  I.grid list

(** Run the co-simulation.  [engine] defaults to a fresh compile
    engine (pass a shared one to reuse its cache across runs);
    [driver] is the within-wafer fabric driver (default event-driven —
    wafers already occupy one domain each).  [faults] defaults to
    [Faults.Wafer.null]: the fault-free path takes exactly one extra
    branch per decision point and stays bit-identical.
    @raise Decompose.Decompose_error when [p] cannot be decomposed
    @raise Cosim_error when a wafer fails to compile, or when a wafer
    crashes / is lost while the injector's resilience protocol is off
    (the pool and the engine cache are still cleanly released) *)
val run :
  ?engine:Wsc_serve.Engine.t ->
  ?interconnect:Interconnect.t ->
  ?machine:Wsc_wse.Machine.t ->
  ?driver:Wsc_wse.Fabric.driver ->
  ?faults:Wsc_faults.Faults.Wafer.t ->
  wafers:int * int ->
  P.t ->
  t
