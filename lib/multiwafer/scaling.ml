(** Strong/weak wafer scaling — see the interface.

    The model composes two measured/calibrated parts exactly the way
    [Wsc_perf.Cluster] does for the GPU and CPU baselines: per-wafer
    compute time is the simulator-measured steady-state cycles per
    iteration (extent-independent: the program is SPMD, every PE owns
    one z-column), and the per-epoch inter-wafer exchange is priced by
    the [Interconnect] latency/bandwidth model on the byte volumes the
    decomposition's [swap_desc]s imply. *)

module B = Wsc_benchmarks.Benchmarks
module Machine = Wsc_wse.Machine
module Cluster = Wsc_perf.Cluster
module J = Wsc_trace.Json

type point = {
  wafers : int * int;
  n_wafers : int;
  global : int * int * int;
  per_wafer : int * int;  (** widest slice *)
  feasible : bool;  (** every slice fits the machine's PE rectangle *)
  compute_s : float;  (** per iteration *)
  exchange_s : float;  (** per iteration, slowest wafer *)
  t_iter_s : float;
  gpts_per_s : float;
  speedup : float;  (** vs the first (1-wafer) point *)
  efficiency : float;  (** speedup / wafers (strong), t1/tN (weak) *)
  exchange_bytes : int;  (** received per epoch, all wafers *)
}

type figure = {
  mode : [ `Strong | `Weak ];
  bench : string;
  machine : string;
  cycles_per_iter : float;
  clock_hz : float;
  interconnect : Interconnect.t;
  points : point list;
  baselines : (string * Cluster.cluster_measurement) list;
}

let default_wafer_grids = [ (1, 1); (2, 1); (2, 2); (4, 2); (4, 4) ]

let baselines () =
  [
    ("tursa_128_a100", Cluster.tursa_128_a100 ());
    ("archer2_128_nodes", Cluster.archer2_128_nodes ());
  ]

(** One scaling point: the global problem [gx × gy × z] decomposed over
    [wafers]; compute per iteration is [cycles_per_iter / clock]. *)
let point ~(interconnect : Interconnect.t) ~(machine : Machine.t)
    ~(cycles_per_iter : float) (d : B.descr) ~(wafers : int * int)
    ~(global : int * int) : point =
  let wx, wy = wafers in
  let gx, gy = global in
  let p = d.B.make_n (B.Proxy (gx, gy)) 1 in
  let pl = Decompose.plan ~wafers p in
  let _, _, nz = p.Wsc_frontends.Stencil_program.extents in
  let widest =
    List.fold_left
      (fun (mx, my) (s : Decompose.slice) ->
        (max mx s.Decompose.snx, max my s.Decompose.sny))
      (0, 0) pl.Decompose.slices
  in
  let feasible =
    List.for_all
      (fun (s : Decompose.slice) ->
        s.Decompose.snx <= machine.Machine.max_width
        && s.Decompose.sny <= machine.Machine.max_height)
      pl.Decompose.slices
  in
  let compute_s = cycles_per_iter /. machine.Machine.clock_hz in
  let exchange_s =
    if wx * wy = 1 then 0.0 else Interconnect.epoch_s interconnect pl
  in
  let t_iter_s = compute_s +. exchange_s in
  let points = float_of_int gx *. float_of_int gy *. float_of_int nz in
  {
    wafers;
    n_wafers = wx * wy;
    global = (gx, gy, nz);
    per_wafer = widest;
    feasible;
    compute_s;
    exchange_s;
    t_iter_s;
    gpts_per_s = points /. t_iter_s /. 1e9;
    speedup = 1.0 (* filled against the first point below *);
    efficiency = 1.0;
    exchange_bytes = (if wx * wy = 1 then 0 else Interconnect.epoch_bytes pl);
  }

let with_ratios (mode : [ `Strong | `Weak ]) (points : point list) : point list =
  match points with
  | [] -> []
  | p1 :: _ ->
      List.map
        (fun p ->
          let speedup =
            match mode with
            | `Strong -> p1.t_iter_s /. p.t_iter_s
            | `Weak -> p.gpts_per_s /. p1.gpts_per_s
          in
          let efficiency =
            match mode with
            | `Strong -> speedup /. float_of_int p.n_wafers
            | `Weak -> p1.t_iter_s /. p.t_iter_s
          in
          { p with speedup; efficiency })
        points

(** Weak scaling: each wafer keeps the full [per_wafer] rectangle; the
    global problem grows with the wafer grid. *)
let weak ?(interconnect = Interconnect.default)
    ?(wafer_grids = default_wafer_grids) ?per_wafer ~(machine : Machine.t)
    ~(cycles_per_iter : float) (d : B.descr) : figure =
  let pwx, pwy =
    match per_wafer with
    | Some e -> e
    | None -> (machine.Machine.max_width, machine.Machine.max_height)
  in
  let points =
    List.map
      (fun (wx, wy) ->
        point ~interconnect ~machine ~cycles_per_iter d ~wafers:(wx, wy)
          ~global:(wx * pwx, wy * pwy))
      wafer_grids
  in
  {
    mode = `Weak;
    bench = d.B.id;
    machine = machine.Machine.name;
    cycles_per_iter;
    clock_hz = machine.Machine.clock_hz;
    interconnect;
    points = with_ratios `Weak points;
    baselines = baselines ();
  }

(** Strong scaling: the global problem is fixed (default 2× the wafer
    rectangle each way) and sliced ever finer. *)
let strong ?(interconnect = Interconnect.default)
    ?(wafer_grids = default_wafer_grids) ?global ~(machine : Machine.t)
    ~(cycles_per_iter : float) (d : B.descr) : figure =
  let gx, gy =
    match global with
    | Some e -> e
    | None -> (2 * machine.Machine.max_width, 2 * machine.Machine.max_height)
  in
  let points =
    List.map
      (fun wafers ->
        point ~interconnect ~machine ~cycles_per_iter d ~wafers ~global:(gx, gy))
      wafer_grids
  in
  {
    mode = `Strong;
    bench = d.B.id;
    machine = machine.Machine.name;
    cycles_per_iter;
    clock_hz = machine.Machine.clock_hz;
    interconnect;
    points = with_ratios `Strong points;
    baselines = baselines ();
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let point_to_json (p : point) : J.t =
  let wx, wy = p.wafers in
  let gx, gy, gz = p.global in
  let px, py = p.per_wafer in
  J.Obj
    [
      ("wafers", J.String (Printf.sprintf "%dx%d" wx wy));
      ("n_wafers", J.Int p.n_wafers);
      ("global_extent", J.List [ J.Int gx; J.Int gy; J.Int gz ]);
      ("per_wafer_extent", J.List [ J.Int px; J.Int py ]);
      ("feasible", J.Bool p.feasible);
      ("compute_s_per_iter", J.Float p.compute_s);
      ("exchange_s_per_iter", J.Float p.exchange_s);
      ("t_iter_s", J.Float p.t_iter_s);
      ("gpts_per_s", J.Float p.gpts_per_s);
      ("speedup", J.Float p.speedup);
      ("efficiency", J.Float p.efficiency);
      ("exchange_bytes_per_epoch", J.Int p.exchange_bytes);
    ]

let baseline_to_json ((name, c) : string * Cluster.cluster_measurement) : J.t =
  J.Obj
    [
      ("name", J.String name);
      ("devices", J.Int c.Cluster.devices);
      ("grid_points", J.Float c.Cluster.grid_points);
      ("gpts_per_s", J.Float c.Cluster.gpts_per_s);
      ("time_per_iter_s", J.Float c.Cluster.time_per_iter_s);
      ("memory_bound", J.Bool c.Cluster.memory_bound);
    ]

let to_json (f : figure) : J.t =
  J.Obj
    [
      ("mode", J.String (match f.mode with `Strong -> "strong" | `Weak -> "weak"));
      ("bench", J.String f.bench);
      ("machine", J.String f.machine);
      ("cycles_per_iter", J.Float f.cycles_per_iter);
      ("clock_hz", J.Float f.clock_hz);
      ("interconnect_latency_s", J.Float f.interconnect.Interconnect.latency_s);
      ( "interconnect_bandwidth_bytes_per_s",
        J.Float f.interconnect.Interconnect.bandwidth_bytes_per_s );
      ("points", J.List (List.map point_to_json f.points));
      ("baselines", J.List (List.map baseline_to_json f.baselines));
    ]
