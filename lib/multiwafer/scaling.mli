(** The paper's Figure 6 pushed past one wafer: strong/weak scaling of
    an N-wafer WSE against the 128-GPU (Tursa A100) and 128-node
    (ARCHER2) cluster models.  Per-wafer compute comes from the
    simulator-measured steady-state cycles per iteration
    ([Wsc_perf.Wse_perf.measure] — extent-independent, the program is
    SPMD); the inter-wafer term prices the decomposition's halo volumes
    through the {!Interconnect} model. *)

module B = Wsc_benchmarks.Benchmarks
module Cluster = Wsc_perf.Cluster

type point = {
  wafers : int * int;
  n_wafers : int;
  global : int * int * int;
  per_wafer : int * int;  (** widest slice *)
  feasible : bool;  (** every slice fits the machine's PE rectangle *)
  compute_s : float;  (** per iteration *)
  exchange_s : float;  (** per iteration, slowest wafer *)
  t_iter_s : float;
  gpts_per_s : float;
  speedup : float;  (** vs the first (1-wafer) point *)
  efficiency : float;
  exchange_bytes : int;  (** received per epoch, all wafers *)
}

type figure = {
  mode : [ `Strong | `Weak ];
  bench : string;
  machine : string;
  cycles_per_iter : float;
  clock_hz : float;
  interconnect : Interconnect.t;
  points : point list;
  baselines : (string * Cluster.cluster_measurement) list;
}

val default_wafer_grids : (int * int) list

(** Each wafer keeps the full [per_wafer] rectangle (default: the
    machine's PE rectangle); the global problem grows with the grid. *)
val weak :
  ?interconnect:Interconnect.t ->
  ?wafer_grids:(int * int) list ->
  ?per_wafer:int * int ->
  machine:Wsc_wse.Machine.t ->
  cycles_per_iter:float ->
  B.descr ->
  figure

(** Fixed global problem (default 2× the machine rectangle each way)
    sliced over ever more wafers. *)
val strong :
  ?interconnect:Interconnect.t ->
  ?wafer_grids:(int * int) list ->
  ?global:int * int ->
  machine:Wsc_wse.Machine.t ->
  cycles_per_iter:float ->
  B.descr ->
  figure

val to_json : figure -> Wsc_trace.Json.t
