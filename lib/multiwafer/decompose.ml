(** Wafer-level decomposition — see the interface.

    The same grid-slice strategy the [distribute-stencil] pass applies
    per-PE (paper §5.1), applied once more at the top: the global
    interior is cut into a [wx × wy] grid of contiguous rectangles, one
    per wafer, and the halo exchanges between neighbouring wafers are
    described with the intra-wafer [Dmp.swap_desc] machinery —
    per-direction depths from the actual access offsets and the
    needed-columns-only z restriction (§6.1). *)

module P = Wsc_frontends.Stencil_program
module Dmp = Wsc_dialects.Dmp
module B = Wsc_ir.Builder
module Stencil = Wsc_dialects.Stencil
module Func = Wsc_dialects.Func
module Builtin = Wsc_dialects.Builtin

exception Decompose_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decompose_error s)) fmt

type slice = {
  wi : int;
  wj : int;
  x0 : int;
  y0 : int;
  snx : int;
  sny : int;
  swaps : Dmp.swap_desc list;
}

type plan = {
  wafers : int * int;
  program : P.t;
  slices : slice list;
  depth_west : int;
  depth_east : int;
  depth_north : int;
  depth_south : int;
  z_lo : int;
  z_hi : int;
}

(* ------------------------------------------------------------------ *)
(* decomposability                                                     *)
(* ------------------------------------------------------------------ *)

let all_accesses (p : P.t) : (string * int list) list =
  List.concat_map (fun (k : P.kernel) -> P.accesses k.P.expr) p.P.kernels

(** Epoch-stepped decomposition preserves the single-wafer semantics
    only when (a) every grid read at a nonzero x/y offset is a state
    grid — intermediates must be consumed point-wise, so no intra-step
    inter-wafer traffic exists — and (b) the program steps through time
    one iteration at a time ([use_loop], or a single iteration), so one
    BSP epoch is exactly one timestep. *)
let decomposable (p : P.t) : (unit, string) result =
  if not (p.P.use_loop || p.P.iterations <= 1) then
    Error
      (Printf.sprintf
         "%s: straight-line program with %d iterations fuses across \
          timesteps; wafer decomposition needs use_loop or iterations <= 1"
         p.P.pname p.P.iterations)
  else
    let bad =
      List.find_opt
        (fun (g, off) ->
          let remote =
            match off with dx :: dy :: _ -> dx <> 0 || dy <> 0 | _ -> false
          in
          remote && not (List.mem g p.P.state))
        (all_accesses p)
    in
    match bad with
    | Some (g, _) ->
        Error
          (Printf.sprintf
             "%s: intermediate grid %s is read at a nonzero x/y offset; \
              inter-wafer halos carry state grids only"
             p.P.pname g)
    | None -> Ok ()

(* ------------------------------------------------------------------ *)
(* halo depths and the z restriction                                   *)
(* ------------------------------------------------------------------ *)

(** Per-direction receive depths and needed z columns, from the offsets
    the kernels actually use (not the declared halo, which may be
    wider).  Receiving from the west neighbour serves accesses with
    dx < 0, and so on; the z range is the union of columns any interior
    point reaches. *)
let halo_shape (p : P.t) : int * int * int * int * int * int =
  let _, _, nz = p.P.extents in
  let w = ref 0 and e = ref 0 and n = ref 0 and s = ref 0 in
  let dz_min = ref 0 and dz_max = ref 0 in
  List.iter
    (fun (g, off) ->
      match off with
      | [ dx; dy; dz ] ->
          if List.mem g p.P.state then begin
            w := max !w (-dx);
            e := max !e dx;
            n := max !n (-dy);
            s := max !s dy
          end;
          dz_min := min !dz_min dz;
          dz_max := max !dz_max dz
      | _ -> ())
    (all_accesses p);
  (!w, !e, !n, !s, min 0 !dz_min, nz + max 0 !dz_max)

(* ------------------------------------------------------------------ *)
(* the plan                                                            *)
(* ------------------------------------------------------------------ *)

(** Balanced 1-D split: the first [extent mod parts] slices are one
    cell wider, so slice widths differ by at most one and equal-width
    slices compile to identical per-wafer programs (one cache entry). *)
let split (extent : int) (parts : int) : (int * int) list =
  let base = extent / parts and rem = extent mod parts in
  let rec go i x0 =
    if i = parts then []
    else
      let w = base + if i < rem then 1 else 0 in
      (x0, w) :: go (i + 1) (x0 + w)
  in
  go 0 0

let plan ~(wafers : int * int) (p : P.t) : plan =
  let wx, wy = wafers in
  let nx, ny, _ = p.P.extents in
  if wx < 1 || wy < 1 then fail "wafer grid %dx%d: both sides must be >= 1" wx wy;
  if wx > nx || wy > ny then
    fail "wafer grid %dx%d does not fit the %dx%d interior" wx wy nx ny;
  (match decomposable p with Ok () -> () | Error msg -> fail "%s" msg);
  let dw, de, dn, ds, z_lo, z_hi = halo_shape p in
  let xs = split nx wx and ys = split ny wy in
  let slices =
    List.concat
      (List.mapi
         (fun wj (y0, sny) ->
           List.mapi
             (fun wi (x0, snx) ->
               let swaps =
                 List.filter
                   (fun (s : Dmp.swap_desc) -> s.Dmp.depth > 0)
                   [
                     { Dmp.dir = Dmp.West; depth = (if wi > 0 then dw else 0); z_lo; z_hi };
                     { Dmp.dir = Dmp.East; depth = (if wi < wx - 1 then de else 0); z_lo; z_hi };
                     { Dmp.dir = Dmp.North; depth = (if wj > 0 then dn else 0); z_lo; z_hi };
                     { Dmp.dir = Dmp.South; depth = (if wj < wy - 1 then ds else 0); z_lo; z_hi };
                   ]
               in
               { wi; wj; x0; y0; snx; sny; swaps })
             xs)
         ys)
  in
  {
    wafers;
    program = p;
    slices;
    depth_west = dw;
    depth_east = de;
    depth_north = dn;
    depth_south = ds;
    z_lo;
    z_hi;
  }

(** The per-wafer subproblem: same kernels, state rotation and halo on
    the slice's interior, advancing one timestep per BSP epoch.  The
    loop structure is preserved (a one-iteration [scf.for] compiles the
    identical per-step code as the global loop body), so the per-point
    arithmetic matches the undecomposed program bit for bit. *)
let subprogram (pl : plan) (s : slice) : P.t =
  let _, _, nz = pl.program.P.extents in
  { pl.program with P.extents = (s.snx, s.sny, nz); iterations = 1 }

(** Scalars this wafer receives per epoch: every swap contributes
    [depth] rows of boundary cells, [z_hi - z_lo] columns deep, along
    the full shared edge. *)
let slice_exchange_scalars (s : slice) : int =
  List.fold_left
    (fun acc (d : Dmp.swap_desc) ->
      let edge =
        match d.Dmp.dir with
        | Dmp.West | Dmp.East -> s.sny
        | Dmp.North | Dmp.South -> s.snx
      in
      acc + (Dmp.sum_volume [ d ] * edge))
    0 s.swaps

(** Scalars received per epoch across all wafers (every cell is counted
    at its receiver, like [Dmp.exchange_volume] counts per PE). *)
let exchange_scalars (pl : plan) : int =
  List.fold_left (fun acc s -> acc + slice_exchange_scalars s) 0 pl.slices

(** The plan as IR: a module whose [wafer_plan] function loads each
    state field and marks it with a [dmp.wafer_swap] carrying the
    wafer topology and the interior wafer's exchange descriptors —
    printable, parseable and verifiable like any pipeline stage. *)
let plan_module (pl : plan) : Wsc_ir.Ir.op =
  let p = pl.program in
  let dw, de, dn, ds = (pl.depth_west, pl.depth_east, pl.depth_north, pl.depth_south) in
  let swaps =
    List.filter
      (fun (s : Dmp.swap_desc) -> s.Dmp.depth > 0)
      [
        { Dmp.dir = Dmp.West; depth = dw; z_lo = pl.z_lo; z_hi = pl.z_hi };
        { Dmp.dir = Dmp.East; depth = de; z_lo = pl.z_lo; z_hi = pl.z_hi };
        { Dmp.dir = Dmp.North; depth = dn; z_lo = pl.z_lo; z_hi = pl.z_hi };
        { Dmp.dir = Dmp.South; depth = ds; z_lo = pl.z_lo; z_hi = pl.z_hi };
      ]
  in
  let ft = P.field_type p in
  let f =
    Func.func ~name:"wafer_plan"
      ~args:(List.map (fun _ -> ft) p.P.state)
      ~results:[] (fun b args ->
        List.iter
          (fun fv ->
            let t = B.insert b (Stencil.load fv) in
            ignore (B.insert b (Dmp.wafer_swap t ~topology:pl.wafers ~swaps)))
          args;
        B.insert0 b (Func.return_ []))
  in
  Builtin.module_op [ f ]
