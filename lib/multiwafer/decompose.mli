(** Wafer-level decomposition: one stencil program and a wafer-grid
    shape [(wx, wy)] in, per-wafer subproblems and inter-wafer halo
    exchanges out.  The exchanges reuse the intra-wafer
    [Dmp.swap_desc] machinery — direction, per-direction depth from
    the kernels' actual offsets, and the needed-columns-only z
    restriction (paper §6.1) — lifted to wafer granularity. *)

module P = Wsc_frontends.Stencil_program
module Dmp = Wsc_dialects.Dmp

exception Decompose_error of string

(** One wafer's share: interior rectangle [x0, x0+snx) × [y0, y0+sny)
    of the global interior, plus the halo exchanges it receives from
    its wafer-grid neighbours (boundary wafers have no swap for the
    missing side). *)
type slice = {
  wi : int;  (** wafer-grid column *)
  wj : int;  (** wafer-grid row *)
  x0 : int;
  y0 : int;
  snx : int;
  sny : int;
  swaps : Dmp.swap_desc list;
}

type plan = {
  wafers : int * int;
  program : P.t;  (** the undecomposed global program *)
  slices : slice list;  (** row-major, length wx × wy *)
  depth_west : int;
  depth_east : int;
  depth_north : int;
  depth_south : int;
  z_lo : int;  (** needed-columns z restriction, both inclusive bounds *)
  z_hi : int;
}

(** Why a program can or cannot be stepped one epoch at a time across
    wafers: remote reads must target state grids, and time must advance
    one iteration per step ([use_loop] or a single iteration). *)
val decomposable : P.t -> (unit, string) result

(** Balanced 1-D split of [extent] into [parts] contiguous ranges
    (start, width), widths differing by at most one. *)
val split : int -> int -> (int * int) list

(** @raise Decompose_error when the wafer grid does not fit or the
    program is not decomposable. *)
val plan : wafers:int * int -> P.t -> plan

(** The slice's subproblem: the same kernels on the slice interior,
    one timestep per BSP epoch.  Equal-extent slices produce equal
    programs — and therefore one compile-cache entry. *)
val subprogram : plan -> slice -> P.t

(** Scalars the slice receives per epoch over all its swaps. *)
val slice_exchange_scalars : slice -> int

(** Per-epoch received scalars summed over every wafer. *)
val exchange_scalars : plan -> int

(** The plan rendered as IR: a [wafer_plan] function whose state fields
    are marked with [dmp.wafer_swap] ops (wafer topology + the interior
    wafer's descriptors); round-trips through the printer/parser. *)
val plan_module : plan -> Wsc_ir.Ir.op
