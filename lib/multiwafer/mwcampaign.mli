(** Wafer-level fault campaign runner: sweep fault model × rate × seed
    over a decomposed benchmark, co-simulating each cell with
    {!Cosim.run} under a seeded {!Wsc_faults.Faults.Wafer} injector and
    checking the recovered fields bit-for-bit against the fault-free
    single-wafer reference.

    Every cell is fully deterministic in its (model, rate, seed)
    coordinates — rerunning a campaign reproduces the report
    byte-for-byte (pinned by a qcheck property at 2×1 and 2×2). *)

module Wf = Wsc_faults.Faults.Wafer

(** Outcome of one campaign cell. *)
type cell = {
  kind : Wf.kind;
  rate : float;
  seed : int;
  completed : bool;  (** the run finished (possibly degraded) *)
  survived : bool;  (** completed, bit-identical and not degraded *)
  bit_identical : bool;  (** fields match the single-wafer reference *)
  degraded : bool;  (** some wafer exhausted the retry budget *)
  divergence : float;  (** max |difference| vs the reference *)
  injected : int;  (** wafer faults the schedule actually fired *)
  detections : int;
  rollbacks : int;
  replayed_epochs : int;
  respawns : int;
  checkpoints : int;
  checkpoint_bytes : int;
  lost_wafers : int;
  tainted_wafers : int;
  device_cycles : float;
  overhead_cycles : float;  (** device cycles beyond the fault-free run *)
  error : string option;  (** failure message when not [completed] *)
}

type report = {
  bench : string;
  machine : string;
  size : string;
  iterations : int;
  wafers : int * int;
  driver : string;
  resilient : bool;
  cadence : int;
  max_retries : int;
  baseline_cycles : float;  (** fault-free co-simulation device cycles *)
  cells : cell list;  (** in sweep order: kind, then rate, then seed *)
}

(** Fraction of cells that survived, in [0, 1]. *)
val survival_rate : report -> float

(** Run the sweep.  [engine] defaults to a fresh compile engine and is
    shared by every cell, so each slice shape compiles once per
    campaign; [resilience] sets the checkpoint cadence and retry budget
    used when [resilient] is true.
    @raise Invalid_argument for an unknown benchmark id
    @raise Decompose.Decompose_error when the benchmark cannot be
    decomposed over [wafers] *)
val run :
  ?engine:Wsc_serve.Engine.t ->
  ?machine:Wsc_wse.Machine.t ->
  ?driver:Wsc_wse.Fabric.driver ->
  ?iterations:int ->
  ?kinds:Wf.kind list ->
  ?resilience:Wf.resilience ->
  bench:string ->
  size:Wsc_benchmarks.Benchmarks.size ->
  wafers:int * int ->
  resilient:bool ->
  rates:float list ->
  seeds:int list ->
  unit ->
  report

(** Render the report as the fixed-width table [wsc multiwafer
    --faults] prints; byte-identical across replays. *)
val to_string : report -> string

(** Machine-readable form on the shared [--json] envelope. *)
val to_json : report -> Wsc_trace.Json.t
