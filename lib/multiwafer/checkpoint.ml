(** Epoch-granular checkpoints of the co-simulation's gathered global
    state — see the interface. *)

module I = Wsc_dialects.Interp

type t = { ck_epoch : int; ck_grids : I.grid list }

let epoch (t : t) : int = t.ck_epoch

let take ~(epoch : int) (grids : I.grid list) : t =
  { ck_epoch = epoch; ck_grids = List.map I.copy_grid grids }

let restore (t : t) ~(into : I.grid list) : unit =
  if List.length t.ck_grids <> List.length into then
    invalid_arg "Checkpoint.restore: grid-count mismatch";
  List.iter2
    (fun (src : I.grid) (dst : I.grid) ->
      if src.I.gbounds <> dst.I.gbounds
         || Array.length src.I.gdata <> Array.length dst.I.gdata
      then invalid_arg "Checkpoint.restore: grid-shape mismatch";
      Array.blit src.I.gdata 0 dst.I.gdata 0 (Array.length src.I.gdata))
    t.ck_grids into

(* what a real machine would persist: the f32 fields, not OCaml's
   boxed doubles — priced like Interconnect.bytes_per_scalar *)
let bytes (t : t) : int =
  List.fold_left
    (fun acc (g : I.grid) ->
      acc + (Interconnect.bytes_per_scalar * Array.length g.I.gdata))
    0 t.ck_grids
