(** Modeled inter-wafer interconnect: a latency + bandwidth charge per
    BSP epoch, in the same coarse analytic style as the A100/ARCHER2
    cluster baselines.  The co-simulator exchanges halos through host
    memory (that is what makes the results bit-identical); this model
    prices what a SwarmX-like fabric would charge for the same bytes. *)

type t = { latency_s : float; bandwidth_bytes_per_s : float }

(** ~2 µs latency, 150 GB/s per wafer. *)
val default : t

(** [exchange_s t ~bytes] — latency + bytes / bandwidth; 0 for 0 bytes. *)
val exchange_s : t -> bytes:int -> float

val bytes_per_scalar : int

(** One wafer's receive time for one epoch (its swaps' scalars at
    [bytes_per_scalar] each).  The fault layer multiplies this by
    [spike_factor] on an interconnect latency spike. *)
val slice_s : t -> Decompose.slice -> float

(** Per-epoch charge: the slowest wafer's receive time (links are
    parallel across wafers). *)
val epoch_s : t -> Decompose.plan -> float

(** Total bytes received per epoch over all wafers. *)
val epoch_bytes : Decompose.plan -> int
