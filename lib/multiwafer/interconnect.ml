(** Modeled inter-wafer interconnect — see the interface. *)

type t = { latency_s : float; bandwidth_bytes_per_s : float }

(* SwarmX-class defaults: a few microseconds of switch latency and
   ~150 GB/s per wafer edge — deliberately coarse, like the cluster
   baselines in [Wsc_perf.Cluster]. *)
let default = { latency_s = 2e-6; bandwidth_bytes_per_s = 150e9 }

let exchange_s (t : t) ~(bytes : int) : float =
  if bytes <= 0 then 0.0
  else t.latency_s +. (float_of_int bytes /. t.bandwidth_bytes_per_s)

let bytes_per_scalar = 4 (* the pipeline computes in f32 *)

(** One wafer's receive time for one epoch. *)
let slice_s (t : t) (s : Decompose.slice) : float =
  exchange_s t ~bytes:(bytes_per_scalar * Decompose.slice_exchange_scalars s)

(** Time one BSP epoch spends exchanging: every wafer's receives happen
    in parallel over its own links, so the epoch is charged the slowest
    wafer's exchange. *)
let epoch_s (t : t) (pl : Decompose.plan) : float =
  List.fold_left (fun acc s -> Float.max acc (slice_s t s)) 0.0 pl.Decompose.slices

(** Bytes received per epoch across all wafers. *)
let epoch_bytes (pl : Decompose.plan) : int =
  bytes_per_scalar * Decompose.exchange_scalars pl
