(** Pass manager: named transformations over a module op, composed into
    pipelines with optional per-pass verification and IR dumping. *)

type t = { pass_name : string; run : Ir.op -> Ir.op }

(** [make name run] — a pass that may replace the module. *)
val make : string -> (Ir.op -> Ir.op) -> t

(** [make_inplace name f] — a pass that mutates the module in place. *)
val make_inplace : string -> (Ir.op -> unit) -> t

(** What one pass did to the module: wall-time cost and IR-size effect.
    Fed to [options.on_remark] as each pass finishes. *)
type remark = {
  r_pass : string;
  r_wall_s : float;  (** the pass's own run time, seconds *)
  r_verify_s : float;  (** post-pass verifier time (0 when not verifying) *)
  r_ops_before : int;  (** total ops in the module before the pass *)
  r_ops_after : int;
}

type options = {
  verify_each : bool;
      (** run the verifier after every pass; a failure is wrapped in
          {!Pass_failed} and its message includes the offending op's
          textual form (truncated) *)
  dump_each : bool;  (** print the IR after every pass *)
  dump_channel : Format.formatter;
  on_remark : (remark -> unit) option;
      (** called after each pass (and its verification) completes; op
          counting only happens when this is set *)
  on_ir : (string -> Ir.op -> unit) option;
      (** per-pass IR snapshot hook: called with the pass name and the
          module after each pass completes (and verified, when
          [verify_each]); exceptions it raises propagate unwrapped *)
}

val default_options : options

(** Raised when a pass (or the verifier after it) fails; carries the pass
    name and the original exception. *)
exception Pass_failed of string * exn

(** Run [passes] over a module in order. *)
val run_pipeline : ?options:options -> t list -> Ir.op -> Ir.op

val pass_names : t list -> string list
