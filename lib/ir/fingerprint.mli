(** Stable content hashing of modules — the identity half of the compile
    service's content-addressed cache key.

    A module's fingerprint is the digest of its canonical textual form:
    the {!Printer} output.  Because print→parse→print is a fixpoint
    (enforced continuously by the hardening oracle and the property
    tests), every textual variation of the same module — comments,
    whitespace, value-name hints — collapses to one canonical string
    after a parse, so two sources that parse to the same module always
    fingerprint identically, across processes and OCaml versions. *)

(** Hex digest (MD5, 32 lowercase hex chars) of a byte string.  Stable
    across runs and platforms — unlike [Hashtbl.hash], which is neither
    guaranteed across versions nor wide enough for an address space. *)
val digest_hex : string -> string

(** [op m] — digest of the canonical printed form of [m]. *)
val op : Ir.op -> string

(** [source ~extra s] — parse [s], print the resulting module back into
    canonical form, and digest that together with [extra] (the pipeline
    configuration string, see [Pipeline.options_to_string]).  Raises
    {!Parser.Parse_error} on malformed input.  Returns the key and the
    canonical text (callers cache the latter's length as a stat). *)
val source : extra:string -> string -> string * string
