(** Parser for the generic textual IR form produced by {!Printer}.
    Accepts exactly the constructs the printer emits (plus [//] line
    comments), so print/parse is a fixpoint after one round trip. *)

(** Source position of a parse failure: 1-based line and column of the
    offending token (column 0 when the position is unknown, e.g. at end
    of input). *)
type location = { line : int; col : int }

(** Every failure of this parser — malformed syntax, unknown types,
    numeric literals out of range, trailing tokens — raises this, never
    a bare [Failure] or [Invalid_argument].  [msg] is the full
    human-readable message and already names the location. *)
exception Parse_error of location * string

(** Parse a single top-level operation (usually a [builtin.module]).
    @raise Parse_error on malformed input or trailing tokens; messages
    name the offending op and its source line/column (e.g. an operand
    count that disagrees with the op's type list). *)
val parse_string : string -> Ir.op

val parse_file : string -> Ir.op
