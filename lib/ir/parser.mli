(** Parser for the generic textual IR form produced by {!Printer}.
    Accepts exactly the constructs the printer emits (plus [//] line
    comments), so print/parse is a fixpoint after one round trip. *)

exception Parse_error of string

(** Parse a single top-level operation (usually a [builtin.module]).
    @raise Parse_error on malformed input or trailing tokens; messages
    name the offending op and its source line (e.g. an operand count
    that disagrees with the op's type list). *)
val parse_string : string -> Ir.op

val parse_file : string -> Ir.op
