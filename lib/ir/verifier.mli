(** IR verifier: structural SSA checks plus a registry of per-op
    invariants that dialects populate at load time. *)

exception Verification_error of string

(** Raise a {!Verification_error} with a formatted message. *)
val fail : ('a, unit, string, 'b) format4 -> 'a

(** Register an invariant for all ops with the given name. *)
val register : string -> (Ir.op -> unit) -> unit

(** Declare that every region block of the named op must end in one of
    the given terminator ops. *)
val register_terminator : string -> string list -> unit

(** Every operand must be defined before use (block args and enclosing
    scopes included). *)
val verify_ssa : Ir.op -> unit

val verify_terminators : Ir.op -> unit

(** Run only the registered per-op invariants. *)
val verify_registered : Ir.op -> unit

(** All checks; raises {!Verification_error} on the first failure.  The
    message of every per-op failure ends with the offending op's textual
    form, truncated to ~200 characters. *)
val verify : Ir.op -> unit

val verify_result : Ir.op -> (unit, string) result
