(** Parser for the generic textual form produced by {!Printer}.

    Supports round-tripping every construct the printer emits; used by the
    CLI (to accept stencil-dialect input files) and by the tests (to check
    printer/parser round trips). *)

open Ir

(** 1-based source position of a failure (column 0: position unknown). *)
type location = { line : int; col : int }

exception Parse_error of location * string

let () =
  Printexc.register_printer (function
    | Parse_error (_, msg) -> Some ("Parse_error: " ^ msg)
    | _ -> None)

let error loc fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (loc, s))) fmt

type token =
  | Tid of string          (* bare identifier *)
  | Tpercent of string     (* %name *)
  | Tat of string          (* @symbol *)
  | Tcaret of string       (* ^block *)
  | Tstring of string
  | Tint of int
  | Tfloat of float
  | Tpunct of string       (* ( ) { } [ ] < > , = : -> ! *)
  | Teof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$' || c = '-'

let is_digit c = c >= '0' && c <= '9'

(** Tokenize to a list of (token, source location) pairs; multi-line
    tokens carry their starting line and column. *)
let tokenize (s : string) : (token * location) list =
  let n = String.length s in
  let toks = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in  (* offset of the first char of [line] *)
  let i = ref 0 in
  let read_ident start =
    let j = ref start in
    while !j < n && is_ident_char s.[!j] do incr j done;
    let id = String.sub s start (!j - start) in
    i := !j;
    id
  in
  while !i < n do
    let c = s.[!i] in
    (* location of the token that starts here; captured before any
       consumption so multi-line tokens report where they began *)
    let loc = { line = !line; col = !i - !line_start + 1 } in
    let emit t = toks := (t, loc) :: !toks in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
      if c = '\n' then begin
        incr line;
        line_start := !i + 1
      end;
      incr i
    end
    else if c = '/' && !i + 1 < n && s.[!i + 1] = '/' then begin
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if c = '%' then (incr i; emit (Tpercent (read_ident !i)))
    else if c = '@' then (incr i; emit (Tat (read_ident !i)))
    else if c = '^' then (incr i; emit (Tcaret (read_ident !i)))
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      while !i < n && s.[!i] <> '"' do
        if s.[!i] = '\\' && !i + 1 < n then begin
          (match s.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | c -> Buffer.add_char buf c);
          i := !i + 2
        end
        else begin
          if s.[!i] = '\n' then begin
            incr line;
            line_start := !i + 1
          end;
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      if !i >= n then
        error loc "unterminated string (line %d, column %d)" loc.line loc.col;
      incr i;
      emit (Tstring (Buffer.contents buf))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit s.[!i] do incr i done;
      let is_float =
        !i < n && (s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E')
        (* avoid consuming the 'x' of shapes like 4x8xf32 *)
      in
      let literal () = String.sub s start (!i - start) in
      let float_tok () =
        let l = literal () in
        match float_of_string_opt l with
        | Some f -> emit (Tfloat f)
        | None ->
            error loc "bad float literal '%s' (line %d, column %d)" l loc.line
              loc.col
      in
      if is_float && s.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit s.[!i] do incr i done;
        if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
          incr i;
          if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
          while !i < n && is_digit s.[!i] do incr i done
        end;
        float_tok ()
      end
      else if is_float then begin
        (* exponent without dot *)
        incr i;
        if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
        while !i < n && is_digit s.[!i] do incr i done;
        float_tok ()
      end
      else
        match int_of_string_opt (literal ()) with
        | Some v -> emit (Tint v)
        | None ->
            (* out-of-range literals must surface as located parse
               errors, not the bare [Failure] of [int_of_string] *)
            error loc "integer literal '%s' out of range (line %d, column %d)"
              (literal ()) loc.line loc.col
    end
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then begin
      i := !i + 2;
      emit (Tpunct "->")
    end
    else if is_ident_char c then emit (Tid (read_ident !i))
    else begin
      incr i;
      emit (Tpunct (String.make 1 c))
    end
  done;
  List.rev ((Teof, { line = !line; col = n - !line_start + 1 }) :: !toks)

(** Parser state. *)
type state = {
  mutable toks : (token * location) list;
  values : (string, value) Hashtbl.t;  (* %name -> value *)
}

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Teof

(** Source location of the next token (for error reports). *)
let peek_loc st =
  match st.toks with (_, l) :: _ -> l | [] -> { line = 0; col = 0 }

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let token_str = function
  | Tid s -> "id:" ^ s
  | Tpercent s -> "%" ^ s
  | Tat s -> "@" ^ s
  | Tcaret s -> "^" ^ s
  | Tstring s -> "\"" ^ s ^ "\""
  | Tint i -> string_of_int i
  | Tfloat f -> string_of_float f
  | Tpunct s -> s
  | Teof -> "<eof>"

let fail st msg =
  let loc = peek_loc st in
  error loc "%s (at %s, line %d, column %d)" msg (token_str (peek st)) loc.line
    loc.col

let expect st p =
  match peek st with
  | Tpunct q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" p)

let accept st p =
  match peek st with
  | Tpunct q when q = p ->
      advance st;
      true
  | _ -> false

(* Types -------------------------------------------------------------- *)

(* Shape elements inside tensor<...> print as "4x8xf32"; the tokenizer
   produces that as a single identifier, so split on 'x'. *)
let rec parse_typ st : typ =
  match peek st with
  | Tpunct "!" ->
      advance st;
      parse_bang_typ st
  | Tpunct "(" ->
      (* function type: (t, t) -> (t) *)
      advance st;
      let ins = parse_typ_list_until st ")" in
      expect st ")";
      expect st "->";
      expect st "(";
      let outs = parse_typ_list_until st ")" in
      expect st ")";
      Function (ins, outs)
  | Tid id ->
      advance st;
      parse_id_typ st id
  | _ -> fail st "expected type"

and parse_typ_list_until st closer =
  if peek st = Tpunct closer then []
  else begin
    let t = parse_typ st in
    if accept st "," then t :: parse_typ_list_until st closer else [ t ]
  end

and scalar_of_name = function
  | "f16" -> Some F16
  | "f32" -> Some F32
  | "f64" -> Some F64
  | "i1" -> Some I1
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "index" -> Some Index
  | _ -> None

and parse_id_typ st id =
  match scalar_of_name id with
  | Some t -> t
  | None -> (
      match id with
      | "tensor" ->
          expect st "<";
          let shape, e = parse_shape_elem st in
          expect st ">";
          Tensor (shape, e)
      | "memref" ->
          expect st "<";
          let shape, e = parse_shape_elem st in
          expect st ">";
          Memref (shape, e)
      | _ -> fail st (Printf.sprintf "unknown type '%s'" id))

(* parse "4x8xf32" possibly spread over tokens, or nested types after shape *)
and parse_shape_elem st : int list * typ =
  let dims = ref [] in
  let rec go () =
    match peek st with
    | Tint d ->
        advance st;
        (* the tokenizer splits "4x8xf32" as Tint 4, Tid "x8xf32"? No:
           '4' then 'x8xf32' as ident since 'x' is ident char.  Handle both. *)
        dims := !dims @ [ d ];
        (match peek st with
        | Tid s when String.length s > 0 && s.[0] = 'x' ->
            advance st;
            parse_x_suffix st (String.sub s 1 (String.length s - 1))
        | _ -> fail st "expected 'x' in shape")
    | Tid s -> (
        advance st;
        match scalar_of_name s with
        | Some t -> (!dims, t)
        | None -> parse_mixed_shape_ident st s)
    | Tpunct "!" ->
        advance st;
        (!dims, parse_bang_typ st)
    | _ -> fail st "expected shape or element type"
  and parse_x_suffix st rest =
    if rest = "" then go ()
    else parse_mixed_shape_ident st rest
  and parse_mixed_shape_ident st s =
    (* s like "8x16xf32", "f32", "8x" or "14xindex": consume leading
       digit runs separated by 'x'; whatever remains (which may itself
       contain 'x', e.g. "index") is the element type name *)
    let n = String.length s in
    let rec consume i =
      if i >= n then go ()
      else if s.[i] >= '0' && s.[i] <= '9' then begin
        let j = ref i in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
        dims := !dims @ [ int_of_string (String.sub s i (!j - i)) ];
        if !j < n then
          if s.[!j] = 'x' then consume (!j + 1)
          else fail st (Printf.sprintf "bad shape element '%s'" s)
        else go ()
      end
      else begin
        let rest = String.sub s i (n - i) in
        match scalar_of_name rest with
        | Some t -> (!dims, t)
        | None -> fail st (Printf.sprintf "bad shape element '%s'" rest)
      end
    in
    consume 0
  in
  go ()

and parse_bang_typ st : typ =
  match peek st with
  | Tid id when id = "stencil.temp" || id = "stencil.field" -> (
      advance st;
      expect st "<";
      let bounds = parse_bounds st in
      let e = parse_typ st in
      expect st ">";
      match id with
      | "stencil.temp" -> Temp (bounds, e)
      | _ -> Field (bounds, e))
  | Tid "csl.color" ->
      advance st;
      Color
  | Tid "csl.ptr" -> (
      advance st;
      expect st "<";
      let t = parse_typ st in
      expect st ",";
      match peek st with
      | Tid "single" ->
          advance st;
          expect st ">";
          Ptr (t, Ptr_single)
      | Tid "many" ->
          advance st;
          expect st ">";
          Ptr (t, Ptr_many)
      | _ -> fail st "expected single|many")
  | Tid "csl.dsd" -> (
      advance st;
      expect st "<";
      match peek st with
      | Tid k ->
          advance st;
          expect st ">";
          let kind =
            match k with
            | "mem1d" -> Mem1d
            | "mem4d" -> Mem4d
            | "fabin" -> Fabin
            | "fabout" -> Fabout
            | _ -> fail st "bad dsd kind"
          in
          Dsd kind
      | _ -> fail st "expected dsd kind")
  | Tid "csl.struct" -> (
      advance st;
      expect st "<";
      match peek st with
      | Tid s ->
          advance st;
          expect st ">";
          Struct s
      | Tstring s ->
          (* quoted form for names that are not identifier tokens *)
          advance st;
          expect st ">";
          Struct s
      | _ -> fail st "expected struct name")
  | _ -> fail st "unknown ! type"

(* bounds: [l,u]x[l,u]x... then elem type follows *)
and parse_bounds st : (int * int) list =
  let rec go acc =
    if accept st "[" then begin
      let lb = parse_int st in
      expect st ",";
      let ub = parse_int st in
      expect st "]";
      (* following is ident starting with x, e.g. "x" then next bound, or
         'x' merged with following type name like "xf32" *)
      match peek st with
      | Tid s when String.length s >= 1 && s.[0] = 'x' ->
          let l = peek_loc st in
          advance st;
          let rest = String.sub s 1 (String.length s - 1) in
          if rest = "" then go (acc @ [ (lb, ub) ])
          else begin
            (* rest is the element type name (scalar or compound like
               "tensor"): push it back and end the bounds *)
            st.toks <- (Tid rest, l) :: st.toks;
            acc @ [ (lb, ub) ]
          end
      | _ -> acc @ [ (lb, ub) ]
    end
    else acc
  in
  go []

and parse_int st =
  match peek st with
  | Tint i ->
      advance st;
      i
  | _ -> fail st "expected integer"

(* Attributes ---------------------------------------------------------- *)

let rec parse_attr st : attr =
  match peek st with
  | Tid "unit" ->
      advance st;
      Unit_attr
  | Tid "true" ->
      advance st;
      Bool_attr true
  | Tid "false" ->
      advance st;
      Bool_attr false
  | Tid "dense_i" ->
      advance st;
      expect st "[";
      let rec ints acc =
        match peek st with
        | Tint i ->
            advance st;
            if accept st "," then ints (acc @ [ i ]) else acc @ [ i ]
        | _ -> acc
      in
      let l = ints [] in
      expect st "]";
      Dense_ints l
  | Tid "dense_f" ->
      advance st;
      expect st "[";
      let rec floats acc =
        match peek st with
        | Tfloat f ->
            advance st;
            if accept st "," then floats (acc @ [ f ]) else acc @ [ f ]
        | Tint i ->
            advance st;
            let f = float_of_int i in
            if accept st "," then floats (acc @ [ f ]) else acc @ [ f ]
        | _ -> acc
      in
      let l = floats [] in
      expect st "]";
      Dense_floats l
  | Tint i ->
      advance st;
      Int_attr i
  | Tfloat f ->
      advance st;
      Float_attr f
  | Tstring s ->
      advance st;
      String_attr s
  | Tat s ->
      advance st;
      Symbol_ref s
  | Tpunct "[" ->
      advance st;
      let rec elts acc =
        if peek st = Tpunct "]" then acc
        else begin
          let a = parse_attr st in
          if accept st "," then elts (acc @ [ a ]) else acc @ [ a ]
        end
      in
      let l = elts [] in
      expect st "]";
      Array_attr l
  | Tpunct "{" ->
      advance st;
      let l = parse_attr_dict_body st in
      expect st "}";
      Dict_attr l
  | Tpunct "!" | Tpunct "(" ->
      Type_attr (parse_typ st)
  | Tid id when scalar_of_name id <> None || id = "tensor" || id = "memref" ->
      Type_attr (parse_typ st)
  | _ -> fail st "expected attribute"

and parse_attr_dict_body st : (string * attr) list =
  let rec go acc =
    match peek st with
    | Tid k ->
        advance st;
        expect st "=";
        let v = parse_attr st in
        let acc = acc @ [ (k, v) ] in
        if accept st "," then go acc else acc
    | _ -> acc
  in
  go []

(* Operations ---------------------------------------------------------- *)

let lookup_value st name typ =
  match Hashtbl.find_opt st.values name with
  | Some v -> v
  | None ->
      let v = new_value typ in
      Hashtbl.replace st.values name v;
      v

(** Invert the printer's value naming so name hints survive a parse and
    printed IR is a print→parse→print fixpoint: ["out_12"] carries hint
    ["out"] (the printer appends its own counter), plain ["12"] carries
    none, and any other name is kept whole as the hint. *)
let hint_of_name (name : string) : string option =
  let all_digits s =
    s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s
  in
  if all_digits name then None
  else
    match String.rindex_opt name '_' with
    | Some i
      when i > 0
           && i < String.length name - 1
           && all_digits (String.sub name (i + 1) (String.length name - i - 1))
      ->
        Some (String.sub name 0 i)
    | _ -> Some name

let rec parse_op st : op =
  (* results *)
  let result_names =
    match peek st with
    | Tpercent _ ->
        let rec names acc =
          match peek st with
          | Tpercent n ->
              advance st;
              let acc = acc @ [ n ] in
              if accept st "," then names acc else acc
          | _ -> acc
        in
        let ns = names [] in
        expect st "=";
        ns
    | _ -> []
  in
  let op_loc = peek_loc st in
  let opname =
    match peek st with
    | Tstring s ->
        advance st;
        s
    | _ -> fail st "expected op name string"
  in
  expect st "(";
  let operand_names =
    let rec names acc =
      match peek st with
      | Tpercent n ->
          advance st;
          let acc = acc @ [ n ] in
          if accept st "," then names acc else acc
      | _ -> acc
    in
    names []
  in
  expect st ")";
  (* regions *)
  let regions =
    if accept st "(" then begin
      let rec go acc =
        if peek st = Tpunct "{" then begin
          let r = parse_region st in
          let acc = acc @ [ r ] in
          if accept st "," then go acc else acc
        end
        else acc
      in
      let rs = go [] in
      expect st ")";
      rs
    end
    else []
  in
  (* attributes *)
  let attrs =
    if accept st "{" then begin
      let l = parse_attr_dict_body st in
      expect st "}";
      l
    end
    else []
  in
  expect st ":";
  expect st "(";
  let in_types = parse_typ_list_until st ")" in
  expect st ")";
  expect st "->";
  expect st "(";
  let out_types = parse_typ_list_until st ")" in
  expect st ")";
  (* guard the List.map2/iter2 below: a count mismatch must surface as a
     parse error naming the op and its source line, not as a bare
     [Invalid_argument "List.map2"] *)
  if List.length in_types <> List.length operand_names then
    fail st
      (Printf.sprintf "op %s (line %d, column %d): %d operands but %d operand types"
         opname op_loc.line op_loc.col
         (List.length operand_names)
         (List.length in_types));
  if List.length out_types <> List.length result_names then
    fail st
      (Printf.sprintf "op %s (line %d, column %d): %d results but %d result types"
         opname op_loc.line op_loc.col
         (List.length result_names)
         (List.length out_types));
  let operands = List.map2 (lookup_value st) operand_names in_types in
  let op = create_op opname ~operands ~attrs ~regions ~results:out_types in
  List.iter2
    (fun name v ->
      v.vhint <- hint_of_name name;
      Hashtbl.replace st.values name v)
    result_names op.results;
  op

and parse_region st : region =
  expect st "{";
  let rec blocks acc =
    if peek st = Tpunct "}" then acc
    else begin
      let b = parse_block st in
      blocks (acc @ [ b ])
    end
  in
  let bs = blocks [] in
  expect st "}";
  let bs = if bs = [] then [ new_block [] ] else bs in
  new_region bs

and parse_block st : block =
  let args =
    match peek st with
    | Tcaret _ ->
        advance st;
        expect st "(";
        let rec go acc =
          match peek st with
          | Tpercent n ->
              advance st;
              expect st ":";
              let t = parse_typ st in
              let v = new_value ?hint:(hint_of_name n) t in
              Hashtbl.replace st.values n v;
              let acc = acc @ [ v ] in
              if accept st "," then go acc else acc
          | _ -> acc
        in
        let args = go [] in
        expect st ")";
        expect st ":";
        args
    | _ -> []
  in
  let rec ops acc =
    match peek st with
    | Tpercent _ | Tstring _ ->
        let o = parse_op st in
        ops (acc @ [ o ])
    | _ -> acc
  in
  new_block ~args (ops [])

(** Parse a single top-level operation (usually a [builtin.module]). *)
let parse_string (s : string) : op =
  let st = { toks = tokenize s; values = Hashtbl.create 64 } in
  let op = parse_op st in
  (match peek st with
  | Teof -> ()
  | t ->
      let loc = peek_loc st in
      error loc "trailing input: %s (line %d, column %d)" (token_str t) loc.line
        loc.col);
  op

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try parse_string s
  with Parse_error (loc, msg) -> raise (Parse_error (loc, path ^ ": " ^ msg))
