(** IR verifier.

    Structural checks common to all ops (SSA dominance within a block,
    terminator presence for region-carrying ops that declare one) plus a
    registry of per-op verifiers that dialects populate. *)

open Ir

exception Verification_error of string

let () =
  Printexc.register_printer (function
    | Verification_error msg -> Some ("Verification_error: " ^ msg)
    | _ -> None)

let fail fmt = Printf.ksprintf (fun s -> raise (Verification_error s)) fmt

(** Textual form of the offending op for error messages, truncated so a
    module-sized op cannot flood the report. *)
let op_snippet (op : op) : string =
  let s = Printer.op_to_string op in
  let limit = 200 in
  if String.length s <= limit then s
  else String.sub s 0 limit ^ " ... (truncated)"

(** Re-attribute a per-op check failure to the op's textual form. *)
let with_culprit (op : op) (f : unit -> unit) : unit =
  try f ()
  with Verification_error msg ->
    raise (Verification_error (msg ^ "\n  offending op: " ^ op_snippet op))

(** Per-op verifiers, keyed by op name.  A dialect registers invariants for
    its ops; unknown ops only get the structural checks. *)
let registry : (string, op -> unit) Hashtbl.t = Hashtbl.create 64

let register name f = Hashtbl.replace registry name f

(** Ops whose single-block regions must end in the given terminator. *)
let terminator_registry : (string, string list) Hashtbl.t = Hashtbl.create 64

let register_terminator opname terminators =
  Hashtbl.replace terminator_registry opname terminators

(** Verify SSA: every operand of every op must be defined earlier in the
    same block, be a block argument of an enclosing block, or be defined by
    an op in an enclosing scope (regions may capture outer values). *)
let verify_ssa (root : op) : unit =
  let defined : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let define v = Hashtbl.replace defined v.vid () in
  let rec go_op op =
    with_culprit op (fun () ->
        List.iter
          (fun v ->
            if not (Hashtbl.mem defined v.vid) then
              fail "op %s: operand %%%d used before definition" op.opname v.vid)
          op.operands);
    (* results defined after operand check *)
    List.iter define op.results;
    List.iter
      (fun r ->
        List.iter
          (fun b ->
            List.iter define b.bargs;
            List.iter go_op b.bops)
          r.blocks)
      op.regions
  in
  List.iter define root.results;
  (* allow the root op's own operands to be free (e.g. function arguments
     bound externally); normally the root is a module with none *)
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          List.iter define b.bargs;
          List.iter go_op b.bops)
        r.blocks)
    root.regions

let verify_terminators (root : op) : unit =
  walk_op
    (fun op ->
      match Hashtbl.find_opt terminator_registry op.opname with
      | None -> ()
      | Some terms ->
          with_culprit op (fun () ->
              List.iter
                (fun r ->
                  List.iter
                    (fun b ->
                      match Ir.terminator b with
                      | Some t when List.mem t.opname terms -> ()
                      | Some t ->
                          fail
                            "op %s: region block ends in %s, expected one of [%s]"
                            op.opname t.opname (String.concat "; " terms)
                      | None ->
                          fail
                            "op %s: region block has no terminator (expected one of [%s])"
                            op.opname (String.concat "; " terms))
                    r.blocks)
                op.regions))
    root

let verify_registered (root : op) : unit =
  walk_op
    (fun op ->
      match Hashtbl.find_opt registry op.opname with
      | Some f -> with_culprit op (fun () -> f op)
      | None -> ())
    root

(** Run all checks; raises {!Verification_error} on the first failure. *)
let verify (root : op) : unit =
  verify_ssa root;
  verify_terminators root;
  verify_registered root

let verify_result (root : op) : (unit, string) result =
  match verify root with () -> Ok () | exception Verification_error e -> Error e
