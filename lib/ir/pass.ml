(** Pass manager.

    A pass is a named transformation over a module op.  Pipelines compose
    passes in order; options control verification after each pass and
    IR dumping for debugging (the equivalent of
    [--mlir-print-ir-after-all]). *)

open Ir

type t = { pass_name : string; run : op -> op }

let make name run = { pass_name = name; run }

(** In-place pass: mutates the module and returns it. *)
let make_inplace name f =
  make name (fun m ->
      f m;
      m)

(** What one pass did to the module: its cost in wall time and its
    effect on IR size.  Fed to [options.on_remark] as each pass
    finishes; the tracing layer renders these as the pass-remarks table
    and as compiler-track spans in the exported trace. *)
type remark = {
  r_pass : string;
  r_wall_s : float;  (** the pass's own run time, seconds *)
  r_verify_s : float;  (** post-pass verifier time (0 when not verifying) *)
  r_ops_before : int;  (** total ops in the module before the pass *)
  r_ops_after : int;
}

type options = {
  verify_each : bool;  (** run the verifier after every pass *)
  dump_each : bool;  (** print the IR after every pass *)
  dump_channel : Format.formatter;
  on_remark : (remark -> unit) option;
      (** called after each pass (and its verification) completes; op
          counting only happens when this is set *)
  on_ir : (string -> Ir.op -> unit) option;
      (** per-pass IR snapshot hook: called with the pass name and the
          module after each pass (and, when [verify_each], after it
          verified).  The hardening oracle hangs print→parse→print
          fixpoint checks off this; exceptions the hook raises propagate
          unwrapped, so the caller keeps its own attribution. *)
}

let default_options =
  {
    verify_each = true;
    dump_each = false;
    dump_channel = Format.err_formatter;
    on_remark = None;
    on_ir = None;
  }

exception Pass_failed of string * exn

let () =
  Printexc.register_printer (function
    | Pass_failed (pass, exn) ->
        Some (Printf.sprintf "pass %s failed: %s" pass (Printexc.to_string exn))
    | _ -> None)

(** Run [passes] over [m] in order.  Any exception escaping a pass —
    verifier errors, [Invalid_argument], [Failure], [Not_found], … — is
    wrapped in [Pass_failed] so the failing pass is always named. *)
let run_pipeline ?(options = default_options) (passes : t list) (m : op) : op =
  let instrumented = options.on_remark <> None in
  List.fold_left
    (fun m pass ->
      let ops_before = if instrumented then Stats.total_ops m else 0 in
      let t0 = Unix.gettimeofday () in
      let m' =
        try pass.run m with
        | Pass_failed _ as e ->
            (* a nested pipeline already attributed the failure *)
            raise e
        | e -> raise (Pass_failed (pass.pass_name, e))
      in
      let t1 = Unix.gettimeofday () in
      if options.dump_each then begin
        Format.fprintf options.dump_channel "// ----- IR after %s -----@." pass.pass_name;
        Printer.print_op ~out:options.dump_channel m'
      end;
      if options.verify_each then begin
        (* the verifier's per-op checkers may raise more than
           Verification_error (e.g. Invalid_argument on a malformed
           attribute); attribute those to the pass as well *)
        try Verifier.verify m'
        with e -> raise (Pass_failed (pass.pass_name, e))
      end;
      (match options.on_ir with
      | None -> ()
      | Some hook -> hook pass.pass_name m');
      (match options.on_remark with
      | None -> ()
      | Some f ->
          let t2 = Unix.gettimeofday () in
          f
            {
              r_pass = pass.pass_name;
              r_wall_s = t1 -. t0;
              r_verify_s = (if options.verify_each then t2 -. t1 else 0.0);
              r_ops_before = ops_before;
              r_ops_after = Stats.total_ops m';
            });
      m')
    m passes

let pass_names passes = List.map (fun p -> p.pass_name) passes
