(** Pass manager.

    A pass is a named transformation over a module op.  Pipelines compose
    passes in order; options control verification after each pass and
    IR dumping for debugging (the equivalent of
    [--mlir-print-ir-after-all]). *)

open Ir

type t = { pass_name : string; run : op -> op }

let make name run = { pass_name = name; run }

(** In-place pass: mutates the module and returns it. *)
let make_inplace name f =
  make name (fun m ->
      f m;
      m)

type options = {
  verify_each : bool;  (** run the verifier after every pass *)
  dump_each : bool;  (** print the IR after every pass *)
  dump_channel : Format.formatter;
}

let default_options =
  { verify_each = true; dump_each = false; dump_channel = Format.err_formatter }

exception Pass_failed of string * exn

(** Run [passes] over [m] in order.  Any exception escaping a pass —
    verifier errors, [Invalid_argument], [Failure], [Not_found], … — is
    wrapped in [Pass_failed] so the failing pass is always named. *)
let run_pipeline ?(options = default_options) (passes : t list) (m : op) : op =
  List.fold_left
    (fun m pass ->
      let m' =
        try pass.run m with
        | Pass_failed _ as e ->
            (* a nested pipeline already attributed the failure *)
            raise e
        | e -> raise (Pass_failed (pass.pass_name, e))
      in
      if options.dump_each then begin
        Format.fprintf options.dump_channel "// ----- IR after %s -----@." pass.pass_name;
        Printer.print_op ~out:options.dump_channel m'
      end;
      if options.verify_each then begin
        (* the verifier's per-op checkers may raise more than
           Verification_error (e.g. Invalid_argument on a malformed
           attribute); attribute those to the pass as well *)
        try Verifier.verify m'
        with e -> raise (Pass_failed (pass.pass_name, e))
      end;
      m')
    m passes

let pass_names passes = List.map (fun p -> p.pass_name) passes
