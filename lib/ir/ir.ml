(** Core SSA intermediate representation.

    A compact re-implementation of the MLIR/xDSL concepts the paper's
    pipeline is built on: dynamically named operations carrying operands,
    results, attributes and nested regions, arranged into blocks with block
    arguments.  Dialects are realized as modules providing smart
    constructors and accessors over this generic representation
    (see {!Wsc_dialects}). *)

(** {1 Types} *)

(** Element and aggregate types.  [Tensor] and [Memref] carry static shapes
    (the pipeline only ever produces static shapes).  [Temp] and [Field] are
    the stencil dialect's bounded grid types with half-open per-dimension
    bounds [\[lb, ub)].  [Ptr] and [Dsd] belong to the csl dialect. *)
type typ =
  | F16
  | F32
  | F64
  | I1
  | I16
  | I32
  | I64
  | Index
  | Tensor of int list * typ
  | Memref of int list * typ
  | Temp of (int * int) list * typ
  | Field of (int * int) list * typ
  | Function of typ list * typ list
  | Ptr of typ * ptr_kind
  | Dsd of dsd_kind
  | Color
  | Struct of string  (** opaque imported CSL module / struct type *)

and ptr_kind = Ptr_single | Ptr_many

and dsd_kind = Mem1d | Mem4d | Fabin | Fabout

(** {1 Attributes} *)

type attr =
  | Unit_attr
  | Bool_attr of bool
  | Int_attr of int
  | Float_attr of float
  | String_attr of string
  | Type_attr of typ
  | Array_attr of attr list
  | Dict_attr of (string * attr) list
  | Dense_ints of int list
  | Dense_floats of float list
  | Symbol_ref of string

(** {1 IR structure}

    Values, operations, blocks and regions are mutually recursive mutable
    records.  Ops are stored as plain lists inside blocks; rewrites build
    new lists rather than maintaining intrusive linkage, which keeps the
    rewriting utilities simple and safe. *)

type value = {
  vid : int;
  mutable vtyp : typ;
  mutable vhint : string option;  (** printer name hint *)
}

type op = {
  oid : int;
  mutable opname : string;  (** fully qualified, e.g. ["stencil.apply"] *)
  mutable operands : value list;
  mutable results : value list;
  mutable attrs : (string * attr) list;
  mutable regions : region list;
}

and block = {
  bid : int;
  mutable bargs : value list;
  mutable bops : op list;
}

and region = { rgid : int; mutable blocks : block list }

(* id wells are atomic so modules can be built/parsed concurrently on
   several domains (the compile service does exactly that); with plain
   refs a lost increment can hand two values in one module the same vid,
   which corrupts substitution maps, the verifier and the printer *)
let value_counter = Atomic.make 0
let op_counter = Atomic.make 0
let block_counter = Atomic.make 0
let region_counter = Atomic.make 0

let new_value ?hint typ =
  { vid = 1 + Atomic.fetch_and_add value_counter 1; vtyp = typ; vhint = hint }

let new_block ?(args = []) ops =
  { bid = 1 + Atomic.fetch_and_add block_counter 1; bargs = args; bops = ops }

let new_region blocks =
  { rgid = 1 + Atomic.fetch_and_add region_counter 1; blocks }

(** Create an operation.  Result values are freshly allocated from the
    given result types. *)
let create_op ?(operands = []) ?(attrs = []) ?(regions = []) ?(result_hints = [])
    name ~results =
  let mk i typ =
    let hint = List.nth_opt result_hints i in
    new_value ?hint typ
  in
  {
    oid = 1 + Atomic.fetch_and_add op_counter 1;
    opname = name;
    operands;
    results = List.mapi mk results;
    attrs;
    regions;
  }

(** {1 Attribute access} *)

let attr op name = List.assoc_opt name op.attrs

let attr_exn op name =
  match attr op name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "op %s: missing attribute %s" op.opname name)

let int_attr op name =
  match attr op name with Some (Int_attr i) -> Some i | _ -> None

let int_attr_exn op name =
  match attr_exn op name with
  | Int_attr i -> i
  | _ -> invalid_arg (Printf.sprintf "op %s: attribute %s is not an int" op.opname name)

let float_attr_exn op name =
  match attr_exn op name with
  | Float_attr f -> f
  | Int_attr i -> float_of_int i
  | _ -> invalid_arg (Printf.sprintf "op %s: attribute %s is not a float" op.opname name)

let string_attr op name =
  match attr op name with Some (String_attr s) -> Some s | _ -> None

let string_attr_exn op name =
  match attr_exn op name with
  | String_attr s -> s
  | Symbol_ref s -> s
  | _ -> invalid_arg (Printf.sprintf "op %s: attribute %s is not a string" op.opname name)

let dense_ints_exn op name =
  match attr_exn op name with
  | Dense_ints l -> l
  | Array_attr l ->
      List.map (function Int_attr i -> i | _ -> invalid_arg "dense_ints: not ints") l
  | _ -> invalid_arg (Printf.sprintf "op %s: attribute %s is not dense ints" op.opname name)

let bool_attr op name =
  match attr op name with Some (Bool_attr b) -> Some b | Some Unit_attr -> Some true | _ -> None

let set_attr op name a = op.attrs <- (name, a) :: List.remove_assoc name op.attrs
let remove_attr op name = op.attrs <- List.remove_assoc name op.attrs
let has_attr op name = List.mem_assoc name op.attrs

(** {1 Structural helpers} *)

let result op = List.hd op.results
let result_n op n = List.nth op.results n
let operand op n = List.nth op.operands n

let region op n = List.nth op.regions n
let entry_block r = List.hd r.blocks

(** Single-block region body of [op]'s [n]-th region. *)
let body_block op n = entry_block (region op n)

let is_terminated_by block names =
  match List.rev block.bops with
  | last :: _ -> List.mem last.opname names
  | [] -> false

let terminator block =
  match List.rev block.bops with
  | last :: _ -> Some last
  | [] -> None

(** {1 Type helpers} *)

let rec elem_type = function
  | Tensor (_, e) | Memref (_, e) | Temp (_, e) | Field (_, e) -> elem_type e
  | t -> t

let shape_of = function
  | Tensor (s, _) | Memref (s, _) -> s
  | Temp (b, _) | Field (b, _) -> List.map (fun (lb, ub) -> ub - lb) b
  | _ -> []

let bounds_of = function
  | Temp (b, _) | Field (b, _) -> b
  | t -> List.map (fun d -> (0, d)) (shape_of t)

let num_elements t = List.fold_left ( * ) 1 (shape_of t)

let byte_width = function
  | F16 | I16 -> 2
  | F32 | I32 -> 4
  | F64 | I64 | Index -> 8
  | I1 -> 1
  | t ->
      ignore t;
      4

let size_in_bytes t = num_elements t * byte_width (elem_type t)

let rank t = List.length (shape_of t)

(** {1 Traversal} *)

(** Pre-order walk over [op] and every op nested in its regions. *)
let rec walk_op (f : op -> unit) (op : op) : unit =
  f op;
  List.iter (fun r -> List.iter (walk_block f) r.blocks) op.regions

and walk_block f b = List.iter (walk_op f) b.bops

(** Post-order walk (children before the op itself). *)
let rec walk_op_post (f : op -> unit) (op : op) : unit =
  List.iter (fun r -> List.iter (fun b -> List.iter (walk_op_post f) b.bops) r.blocks) op.regions;
  f op

let find_ops pred root =
  let acc = ref [] in
  walk_op (fun o -> if pred o then acc := o :: !acc) root;
  List.rev !acc

let find_op pred root =
  match find_ops pred root with [] -> None | o :: _ -> Some o

let find_op_by_name name root = find_op (fun o -> o.opname = name) root
let find_ops_by_name name root = find_ops (fun o -> o.opname = name) root

let count_ops pred root = List.length (find_ops pred root)

(** {1 Value substitution}

    Rewrites thread an explicit substitution from old values to new values;
    [resolve] chases chains so a -> b -> c resolves a to c. *)

module Subst = struct
  type t = (int, value) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec resolve (s : t) (v : value) : value =
    match Hashtbl.find_opt s v.vid with
    | Some v' when v'.vid <> v.vid -> resolve s v'
    | Some v' -> v'
    | None -> v

  let add (s : t) ~(from : value) ~(to_ : value) : unit =
    if from.vid <> to_.vid then Hashtbl.replace s from.vid to_

  let add_all s ~from ~to_ =
    List.iter2 (fun a b -> add s ~from:a ~to_:b) from to_

  let apply_op (s : t) (op : op) : unit =
    let rec go o =
      o.operands <- List.map (resolve s) o.operands;
      List.iter (fun r -> List.iter (fun b -> List.iter go b.bops) r.blocks) o.regions
    in
    go op
end

(** Deep-clone [op], remapping operand values through [subst] and recording
    result/blockarg mappings into [subst] so later clones see them. *)
let rec clone_op (subst : Subst.t) (op : op) : op =
  let regions = List.map (clone_region subst) op.regions in
  let cloned =
    create_op op.opname
      ~operands:(List.map (Subst.resolve subst) op.operands)
      ~attrs:op.attrs ~regions
      ~results:(List.map (fun v -> v.vtyp) op.results)
      ~result_hints:(List.map (fun v -> Option.value v.vhint ~default:"") op.results)
  in
  List.iter2 (fun old nw -> Subst.add subst ~from:old ~to_:nw) op.results cloned.results;
  cloned

and clone_region subst r = new_region (List.map (clone_block subst) r.blocks)

and clone_block subst b =
  let args = List.map (fun v -> new_value ?hint:v.vhint v.vtyp) b.bargs in
  List.iter2 (fun old nw -> Subst.add subst ~from:old ~to_:nw) b.bargs args;
  new_block ~args (List.map (clone_op subst) b.bops)

(** {1 Block rewriting} *)

type rewrite = Keep | Erase | Replace of op list

(** Rewrite each op in [block] (non-recursively) with [f].  [Replace ops]
    splices the replacement list in place; the caller is responsible for
    recording value substitutions for the erased op's results and then
    running {!Subst.apply_op} over the enclosing scope. *)
let rewrite_block (f : op -> rewrite) (block : block) : unit =
  let out =
    List.concat_map
      (fun o -> match f o with Keep -> [ o ] | Erase -> [] | Replace ops -> ops)
      block.bops
  in
  block.bops <- out

(** Recursively rewrite all blocks under [root] (including nested regions),
    innermost first. *)
let rec rewrite_nested (f : op -> rewrite) (root : op) : unit =
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          List.iter (rewrite_nested f) b.bops;
          rewrite_block f b)
        r.blocks)
    root.regions

(** {1 Use counting} *)

(** Map from value id to number of uses within [root] (nested included). *)
let use_counts (root : op) : (int, int) Hashtbl.t =
  let h = Hashtbl.create 256 in
  walk_op
    (fun o ->
      List.iter
        (fun v ->
          let c = Option.value (Hashtbl.find_opt h v.vid) ~default:0 in
          Hashtbl.replace h v.vid (c + 1))
        o.operands)
    root;
  h

(** Remove ops with no side effects whose results are all unused.
    [pure] decides side-effect freedom by op name. *)
let dce ~(pure : string -> bool) (root : op) : int =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let uses = use_counts root in
    let used v = Option.value (Hashtbl.find_opt uses v.vid) ~default:0 > 0 in
    let f o =
      if pure o.opname && o.results <> [] && not (List.exists used o.results) then (
        incr removed;
        changed := true;
        Erase)
      else Keep
    in
    rewrite_nested f root;
    (* also rewrite top-level block if root is a module-like op: handled by
       rewrite_nested already since it iterates root.regions *)
    ignore f
  done;
  !removed
