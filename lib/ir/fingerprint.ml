(** Stable content hashing of modules — see the interface. *)

let digest_hex (s : string) : string = Digest.to_hex (Digest.string s)

let op (m : Ir.op) : string = digest_hex (Printer.op_to_string m)

let source ~(extra : string) (s : string) : string * string =
  let m = Parser.parse_string s in
  let canonical = Printer.op_to_string m in
  (* '\x00' cannot appear in printed IR or in an options string, so the
     concatenation is unambiguous *)
  (digest_hex (canonical ^ "\x00" ^ extra), canonical)
