(** Textual printer for the generic IR form.

    The syntax mirrors MLIR's generic operation form:
    [%0, %1 = "dialect.op"(%a, %b) ({ ... }) {attr = v} : (t) -> (t)]
    so that IR dumps read like the listings in the paper. *)

open Ir

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Can [s] print unquoted as a single parser identifier token? *)
let bare_name (s : string) : bool =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '$' | '-' -> true
         | _ -> false)
       s

let rec pp_typ fmt = function
  | F16 -> Format.pp_print_string fmt "f16"
  | F32 -> Format.pp_print_string fmt "f32"
  | F64 -> Format.pp_print_string fmt "f64"
  | I1 -> Format.pp_print_string fmt "i1"
  | I16 -> Format.pp_print_string fmt "i16"
  | I32 -> Format.pp_print_string fmt "i32"
  | I64 -> Format.pp_print_string fmt "i64"
  | Index -> Format.pp_print_string fmt "index"
  | Tensor (shape, e) ->
      Format.fprintf fmt "tensor<%a%a>" pp_shape shape pp_typ e
  | Memref (shape, e) ->
      Format.fprintf fmt "memref<%a%a>" pp_shape shape pp_typ e
  | Temp (bounds, e) ->
      Format.fprintf fmt "!stencil.temp<%a%a>" pp_bounds bounds pp_typ e
  | Field (bounds, e) ->
      Format.fprintf fmt "!stencil.field<%a%a>" pp_bounds bounds pp_typ e
  | Function (ins, outs) ->
      Format.fprintf fmt "(%a) -> (%a)" pp_typ_list ins pp_typ_list outs
  | Ptr (t, Ptr_single) -> Format.fprintf fmt "!csl.ptr<%a, single>" pp_typ t
  | Ptr (t, Ptr_many) -> Format.fprintf fmt "!csl.ptr<%a, many>" pp_typ t
  | Dsd Mem1d -> Format.pp_print_string fmt "!csl.dsd<mem1d>"
  | Dsd Mem4d -> Format.pp_print_string fmt "!csl.dsd<mem4d>"
  | Dsd Fabin -> Format.pp_print_string fmt "!csl.dsd<fabin>"
  | Dsd Fabout -> Format.pp_print_string fmt "!csl.dsd<fabout>"
  | Color -> Format.pp_print_string fmt "!csl.color"
  | Struct s ->
      (* import-module structs carry names like "<memcpy/memcpy>" that
         are not identifier tokens; quote those so the type re-parses *)
      if bare_name s then Format.fprintf fmt "!csl.struct<%s>" s
      else Format.fprintf fmt "!csl.struct<\"%s\">" (escape_string s)

and pp_shape fmt shape =
  List.iter (fun d -> Format.fprintf fmt "%dx" d) shape

and pp_bounds fmt bounds =
  List.iter (fun (lb, ub) -> Format.fprintf fmt "[%d,%d]x" lb ub) bounds

and pp_typ_list fmt ts =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_typ fmt ts

let typ_to_string t = Format.asprintf "%a" pp_typ t

let pp_float fmt f =
  if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf fmt "%.6f" f
  else Format.fprintf fmt "%.17g" f

let rec pp_attr fmt = function
  | Unit_attr -> Format.pp_print_string fmt "unit"
  | Bool_attr b -> Format.pp_print_bool fmt b
  | Int_attr i -> Format.pp_print_int fmt i
  | Float_attr f -> pp_float fmt f
  | String_attr s -> Format.fprintf fmt "\"%s\"" (escape_string s)
  | Type_attr t -> pp_typ fmt t
  | Array_attr l ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_attr)
        l
  | Dict_attr l ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (k, v) -> Format.fprintf fmt "%s = %a" k pp_attr v))
        l
  | Dense_ints l ->
      Format.fprintf fmt "dense_i[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Format.pp_print_int)
        l
  | Dense_floats l ->
      Format.fprintf fmt "dense_f[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_float)
        l
  | Symbol_ref s -> Format.fprintf fmt "@%s" s

(** Printing environment assigning stable names to values and blocks. *)
type env = {
  names : (int, string) Hashtbl.t;
  mutable next : int;
  block_names : (int, int) Hashtbl.t;
  mutable next_block : int;
}

let new_env () =
  { names = Hashtbl.create 64; next = 0; block_names = Hashtbl.create 16; next_block = 0 }

let block_label env (b : Ir.block) =
  match Hashtbl.find_opt env.block_names b.Ir.bid with
  | Some n -> n
  | None ->
      let n = env.next_block in
      env.next_block <- n + 1;
      Hashtbl.replace env.block_names b.Ir.bid n;
      n

(** Hints come from arbitrary pass-internal strings; printed value names
    must stay single parser tokens, so anything outside [A-Za-z0-9_] is
    mapped to '_' (and a leading digit is prefixed) — keeping printed IR
    a print→parse→print fixpoint. *)
let sanitize_hint (h : string) : string =
  let h =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      h
  in
  if h <> "" && h.[0] >= '0' && h.[0] <= '9' then "_" ^ h else h

let value_name env v =
  match Hashtbl.find_opt env.names v.vid with
  | Some n -> n
  | None ->
      let base =
        match v.vhint with
        | Some h when h <> "" ->
            Printf.sprintf "%%%s_%d" (sanitize_hint h) env.next
        | _ -> Printf.sprintf "%%%d" env.next
      in
      env.next <- env.next + 1;
      Hashtbl.replace env.names v.vid base;
      base

let pp_values env fmt vs =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    (fun fmt v -> Format.pp_print_string fmt (value_name env v))
    fmt vs

let rec pp_op env indent fmt op =
  let pad = String.make indent ' ' in
  Format.fprintf fmt "%s" pad;
  (if op.results <> [] then
     Format.fprintf fmt "%a = " (pp_values env) op.results);
  Format.fprintf fmt "\"%s\"(%a)" op.opname (pp_values env) op.operands;
  if op.regions <> [] then begin
    Format.fprintf fmt " (";
    List.iteri
      (fun i r ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_region env indent fmt r)
      op.regions;
    Format.fprintf fmt ")"
  end;
  if op.attrs <> [] then begin
    let attrs = List.sort (fun (a, _) (b, _) -> compare a b) op.attrs in
    Format.fprintf fmt " {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt (k, v) -> Format.fprintf fmt "%s = %a" k pp_attr v))
      attrs
  end;
  Format.fprintf fmt " : (%a) -> (%a)" pp_typ_list
    (List.map (fun v -> v.vtyp) op.operands)
    pp_typ_list
    (List.map (fun v -> v.vtyp) op.results)

and pp_region env indent fmt r =
  Format.fprintf fmt "{\n";
  List.iter (pp_block env (indent + 2) fmt) r.blocks;
  Format.fprintf fmt "%s}" (String.make indent ' ')

and pp_block env indent fmt b =
  let pad = String.make indent ' ' in
  if b.bargs <> [] then begin
    Format.fprintf fmt "%s^bb%d(" pad (block_label env b);
    List.iteri
      (fun i a ->
        if i > 0 then Format.fprintf fmt ", ";
        Format.fprintf fmt "%s : %a" (value_name env a) pp_typ a.vtyp)
      b.bargs;
    Format.fprintf fmt "):\n"
  end;
  List.iter
    (fun o ->
      pp_op env indent fmt o;
      Format.fprintf fmt "\n")
    b.bops

let op_to_string op =
  let env = new_env () in
  Format.asprintf "%a" (pp_op env 0) op

let print_op ?(out = Format.std_formatter) op =
  let env = new_env () in
  pp_op env 0 out op;
  Format.fprintf out "\n%!"
