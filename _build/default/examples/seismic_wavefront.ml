(* Seismic wave propagation: the 25-point high-order stencil of the
   paper's headline benchmark, with a point source in the middle of the
   domain.  Watches the wavefront expand across the PE grid and reports
   the communication/computation breakdown the WSE's asynchronous
   execution produces.

     dune exec examples/seismic_wavefront.exe *)

module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp

let nx, ny = (10, 10)
let steps = 6

let program = (B.find "seismic").make_n (B.Proxy (nx, ny)) steps
let nz = match program.P.extents with _, _, z -> z

(* initial displacement: a sharp pulse at the domain centre, identical in
   both time levels (zero initial velocity) *)
let pulse () : I.grid =
  let g = I.grid_of_typ (P.field_type program) in
  I.iter_points g.I.gbounds (fun p ->
      match p with
      | [ x; y; z ] when x = nx / 2 && y = ny / 2 && z = nz / 2 ->
          I.grid_set_scalar g p 1.0
      | _ -> ());
  g

(* wavefront radius: farthest xy cell (at the source depth) whose
   amplitude exceeds a threshold *)
let radius_of (g : I.grid) : float =
  let r = ref 0.0 in
  I.iter_points g.I.gbounds (fun p ->
      match p with
      | [ x; y ] -> (
          match I.grid_get g p with
          | I.Rtensor col ->
              let h = program.P.halo in
              if Float.abs col.(h + (nz / 2)) > 1e-6 then
                r :=
                  Float.max !r
                    (sqrt
                       ((float_of_int (x - (nx / 2)) ** 2.0)
                       +. (float_of_int (y - (ny / 2)) ** 2.0)))
          | _ -> ())
      | _ -> ());
  !r

let () =
  Printf.printf "25-point seismic kernel, %dx%d PEs, %d columns deep, %d steps\n"
    nx ny nz steps;
  let u_prev = pulse () and u = pulse () in
  let compiled = Wsc_core.Pipeline.compile (P.compile program) in
  (* step count is baked into the compiled timestep task graph; run the
     whole thing and inspect the wavefront at the end *)
  let init = [ I.retensorize_grid u_prev; I.retensorize_grid u ] in
  let host = Wsc_wse.Host.simulate Wsc_wse.Machine.wse3 compiled init in
  let final = Wsc_wse.Host.read_state host 1 in
  Printf.printf "wavefront radius after %d steps: %.1f PE hops\n" steps
    (radius_of final);
  (* the 8th-order stencil has radius 4: the front can move at most 4 PEs
     per step *)
  assert (radius_of final <= float_of_int (4 * steps));
  assert (radius_of final > 0.0);

  let stats = Wsc_wse.Fabric.total_stats host.sim in
  let pes = float_of_int (nx * ny) in
  Printf.printf "per PE per step: %.0f compute cycles, %.0f send cycles, %.0f wait\n"
    (stats.compute_cycles /. pes /. float_of_int steps)
    (stats.send_cycles /. pes /. float_of_int steps)
    (stats.wait_cycles /. pes /. float_of_int steps);
  Printf.printf "task activations per PE per step: %.1f\n"
    (float_of_int stats.task_activations /. pes /. float_of_int steps);

  (* the same wave on the sequential reference, point for point *)
  let g_prev = pulse () and g_cur = pulse () in
  ignore
    (I.run_func (P.compile program) ~name:"main" [ I.Rgrid g_prev; I.Rgrid g_cur ]);
  let diff = I.max_abs_diff (I.retensorize_grid g_cur) final in
  Printf.printf "max |diff| vs sequential reference: %.2e\n" diff;
  assert (diff < 1e-4)
