examples/seismic_wavefront.ml: Array Float Printf Wsc_benchmarks Wsc_core Wsc_dialects Wsc_frontends Wsc_wse
