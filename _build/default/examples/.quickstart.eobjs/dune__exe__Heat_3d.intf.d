examples/heat_3d.mli:
