examples/ocean_kernel.ml: Float List Printf Wsc_core Wsc_dialects Wsc_frontends Wsc_ir Wsc_wse
