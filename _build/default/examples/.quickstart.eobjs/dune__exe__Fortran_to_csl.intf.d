examples/fortran_to_csl.mli:
