examples/quickstart.mli:
