examples/fortran_to_csl.ml: List Printf String Wsc_core Wsc_frontends
