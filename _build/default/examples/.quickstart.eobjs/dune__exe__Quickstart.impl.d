examples/quickstart.ml: Float List Printf String Wsc_core Wsc_dialects Wsc_frontends Wsc_ir Wsc_wse
