examples/ocean_kernel.mli:
