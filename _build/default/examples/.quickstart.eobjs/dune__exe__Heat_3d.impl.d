examples/heat_3d.ml: Array Float Printf Wsc_core Wsc_dialects Wsc_frontends Wsc_wse
