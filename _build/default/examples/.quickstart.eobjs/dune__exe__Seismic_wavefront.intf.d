examples/seismic_wavefront.mli:
