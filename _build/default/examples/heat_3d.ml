(* 3-D heat diffusion through the mini-Devito frontend: the workload the
   paper's Diffusion benchmark is built on, here with a physical setup —
   a hot plume in a cold box — run on the simulated wafer, tracking how
   the temperature field relaxes over time.

     dune exec examples/heat_3d.exe *)

module Devito = Wsc_frontends.Devito_fe
module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp

let nx, ny, nz = (8, 8, 24)
let steps = 8
let alpha_dt = 0.04

(* the same symbolic definition a Devito user writes in Python *)
let program =
  let g = Devito.grid ~shape:(nx, ny, nz) "box" in
  let u = Devito.time_function ~space_order:2 ~grid:g "u" in
  let open Devito in
  operator ~name:"heat3d" ~iterations:steps
    [ eq (forward u) (fn u + (num alpha_dt * laplace (fn u))) ]

(* a hot Gaussian blob in the middle of a cold box *)
let initial_field () : I.grid =
  let g = I.grid_of_typ (P.field_type program) in
  let h = program.P.halo in
  let cx, cy, cz = (float_of_int nx /. 2.0, float_of_int ny /. 2.0, float_of_int nz /. 2.0) in
  I.iter_points g.I.gbounds (fun p ->
      match p with
      | [ x; y; z ] ->
          let d2 =
            ((float_of_int x -. cx) ** 2.0)
            +. ((float_of_int y -. cy) ** 2.0)
            +. (((float_of_int z -. cz) /. 2.0) ** 2.0)
          in
          I.grid_set_scalar g p (100.0 *. exp (-.d2 /. 8.0))
      | _ -> ());
  ignore h;
  g

let stats_of (g : I.grid) =
  let total = ref 0.0 and peak = ref 0.0 and n = ref 0 in
  Array.iter
    (fun v ->
      total := !total +. v;
      peak := Float.max !peak v;
      incr n)
    g.I.gdata;
  (!total, !peak)

let () =
  let g3 = initial_field () in
  let total0, peak0 = stats_of g3 in
  Printf.printf "initial field: total heat %.1f, peak %.2f\n" total0 peak0;

  (* compile once, simulate the full run *)
  let compiled = Wsc_core.Pipeline.compile (P.compile program) in
  let host =
    Wsc_wse.Host.simulate Wsc_wse.Machine.wse3 compiled [ I.retensorize_grid g3 ]
  in
  let final = Wsc_wse.Host.read_state host 0 in
  let total1, peak1 = stats_of final in
  Printf.printf "after %d steps:  total heat %.1f, peak %.2f\n" steps total1 peak1;
  Printf.printf "simulated in %.0f cycles on %dx%d PEs (%.2f us at %s clock)\n"
    (Wsc_wse.Fabric.elapsed_cycles host.sim)
    host.sim.width host.sim.height
    (1e6 *. Wsc_wse.Fabric.elapsed_seconds host.sim)
    host.sim.machine.name;

  (* physical sanity: diffusion smooths — the peak must fall *)
  assert (peak1 < peak0);

  (* cross-check against the sequential reference *)
  let reference =
    let g = I.copy_grid g3 in
    let m = P.compile program in
    ignore (I.run_func m ~name:"main" [ I.Rgrid g ]);
    g
  in
  let diff = I.max_abs_diff (I.retensorize_grid reference) final in
  Printf.printf "max |diff| vs reference: %.2e\n" diff;
  assert (diff < 1e-3)
