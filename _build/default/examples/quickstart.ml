(* Quickstart: define a stencil, compile it for the WSE, run it on the
   fabric simulator, and look at the generated CSL.

     dune exec examples/quickstart.exe

   The public API in five steps:
   1. describe the stencil as a {!Wsc_frontends.Stencil_program.t};
   2. [compile] it to stencil-dialect IR;
   3. run the full pipeline with {!Wsc_core.Pipeline.compile};
   4. execute on the simulated wafer with {!Wsc_wse.Host};
   5. print CSL with {!Wsc_core.Csl_printer}. *)

module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp

let () =
  (* 1. a 5-point-in-xy moving-average smoother over an 8x8 grid of
        16-element columns, two timesteps *)
  let expr =
    let a c off = P.Mul (P.Const c, P.Access ("u", off)) in
    P.Add
      ( P.Add (a 0.2 [ 0; 0; 0 ], a 0.2 [ 1; 0; 0 ]),
        P.Add (a 0.2 [ -1; 0; 0 ], P.Add (a 0.2 [ 0; 1; 0 ], a 0.2 [ 0; -1; 0 ])) )
  in
  let program =
    {
      P.pname = "smoother";
      frontend = "quickstart";
      extents = (8, 8, 16);
      halo = 1;
      state = [ "u" ];
      kernels = [ { P.kname = "smooth"; output = "u_next"; expr } ];
      next_state = [ "u_next" ];
      iterations = 2;
      use_loop = true;
      dsl_loc = 0;
    }
  in

  (* 2. frontend: stencil-dialect IR *)
  let stencil_ir = P.compile program in
  print_endline "--- stencil dialect (input to the pipeline) ---";
  Wsc_ir.Printer.print_op stencil_ir;

  (* 3. the full lowering pipeline (groups 1-5 of the paper) *)
  let compiled = Wsc_core.Pipeline.compile stencil_ir in

  (* 4. run on the simulated WSE3 and compare against the sequential
        reference interpreter *)
  let reference = P.run_reference program in
  let init =
    List.map
      (fun _ ->
        let g = I.grid_of_typ (P.field_type program) in
        I.init_grid g;
        I.retensorize_grid g)
      program.P.state
  in
  let host = Wsc_wse.Host.simulate Wsc_wse.Machine.wse3 compiled init in
  let results = Wsc_wse.Host.read_all host in
  let diff =
    List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff reference results)
  in
  Printf.printf "\nsimulated on %dx%d PEs in %.0f cycles; max |diff| vs reference = %g\n"
    host.sim.width host.sim.height
    (Wsc_wse.Fabric.elapsed_cycles host.sim)
    diff;
  assert (diff < 1e-5);

  (* 5. the CSL a programmer would otherwise write by hand *)
  print_endline "\n--- generated CSL program (excerpt) ---";
  let files = Wsc_core.Csl_printer.print_files compiled in
  let program_file =
    List.find
      (fun (f : Wsc_core.Csl_printer.file) -> f.filename = "stencil_program.csl")
      files
  in
  let lines = String.split_on_char '\n' program_file.contents in
  List.iteri (fun i l -> if i < 30 then print_endline l) lines;
  Printf.printf "... (%d lines total, plus %d lines of runtime library)\n"
    (List.length lines)
    (Wsc_core.Csl_printer.loc_of
       (List.find
          (fun (f : Wsc_core.Csl_printer.file) -> f.filename = "stencil_comms.csl")
          files)
         .contents)
