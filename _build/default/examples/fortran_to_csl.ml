(* Unmodified Fortran in, CSL out: the paper's headline claim.  A
   Fortran time-stepping loop nest goes through the mini-Flang frontend's
   stencil extraction and the full pipeline; the program that lands on
   each PE is printed at the end.

     dune exec examples/fortran_to_csl.exe *)

module Flang = Wsc_frontends.Flang_fe
module P = Wsc_frontends.Stencil_program

(* a 3-D anisotropic smoothing kernel, exactly as a scientist writes it *)
let fortran_source =
  {|
real :: t(0:nx+1, 0:ny+1, 0:nz+1)
real :: tn(0:nx+1, 0:ny+1, 0:nz+1)
do step = 1, 10
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        tn(i,j,k) = 0.5 * t(i,j,k) + 0.125 * (t(i-1,j,k) + t(i+1,j,k))
                  + 0.1 * (t(i,j-1,k) + t(i,j+1,k))
                  + 0.025 * (t(i,j,k-1) + t(i,j,k+1))
      end do
    end do
  end do
  t = tn
end do
|}

(* mini-Flang accepts single-statement expressions; fold continuations *)
let source =
  String.concat " "
    (List.filter_map
       (fun l ->
         let t = String.trim l in
         if t = "" then None
         else if String.length t > 0 && (t.[0] = '+' || t.[0] = '-') then Some t
         else Some ("\n" ^ l))
       (String.split_on_char '\n' fortran_source))

let () =
  print_endline "--- Fortran source ---";
  print_string fortran_source;

  let program =
    Flang.compile ~name:"smoother" ~extents:(6, 6, 12) source
  in
  Printf.printf "\nextracted stencil: %d kernel(s), radius %d, %d timesteps\n"
    (List.length program.P.kernels)
    (P.program_radius program)
    program.P.iterations;

  let compiled = Wsc_core.Pipeline.compile (P.compile program) in
  let files = Wsc_core.Csl_printer.print_files compiled in
  print_endline "\n--- generated files ---";
  List.iter
    (fun (f : Wsc_core.Csl_printer.file) ->
      Printf.printf "%-28s %4d LoC\n" f.filename
        (Wsc_core.Csl_printer.loc_of f.contents))
    files;

  print_endline "\n--- generated PE program ---";
  print_string
    (List.find
       (fun (f : Wsc_core.Csl_printer.file) -> f.filename = "stencil_program.csl")
       files)
      .contents
