(* An ocean-model kernel in the mini-PSyclone frontend: the structure of
   the paper's UVKBE benchmark — several fields, kernel metadata with
   declared stencil shapes, two consecutive kernels fused by the pipeline
   into a single communication round.

     dune exec examples/ocean_kernel.exe *)

module Psy = Wsc_frontends.Psyclone_fe
module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp

let nx, ny, nz = (8, 8, 12)

(* vorticity diagnostic from the velocity components, then a damped
   velocity update — two kernels, two communicated fields *)
let program =
  let open Psy in
  let vort_kernel =
    kernel ~name:"vorticity"
      ~meta:
        [
          { field = "u"; access = Gh_read; shape = Cross 1 };
          { field = "v"; access = Gh_read; shape = Cross 1 };
          { field = "zeta"; access = Gh_write; shape = Pointwise };
        ]
      ~body:
        (P.Sub
           ( P.Sub (P.Access ("v", [ 0; 0; 0 ]), P.Access ("v", [ -1; 0; 0 ])),
             P.Sub (P.Access ("u", [ 0; 0; 0 ]), P.Access ("u", [ 0; -1; 0 ])) ))
  in
  let update_kernel =
    (* the whole update is gated by the land/sea mask: after fusion the
       remote velocity columns are multiplied by a locally held field, so
       the pipeline falls back to pack mode — received columns are staged
       whole and the computation runs entirely in the done region *)
    kernel ~name:"damped_update"
      ~meta:
        [
          { field = "u"; access = Gh_read; shape = Pointwise };
          { field = "zeta"; access = Gh_read; shape = Pointwise };
          { field = "mask"; access = Gh_read; shape = Pointwise };
          { field = "u_next"; access = Gh_write; shape = Pointwise };
        ]
      ~body:
        (P.Mul
           ( P.Access ("mask", [ 0; 0; 0 ]),
             P.Sub
               ( P.Access ("u", [ 0; 0; 0 ]),
                 P.Mul (P.Const 0.1, P.Access ("zeta", [ 0; 0; 0 ])) ) ))
  in
  invoke ~name:"ocean_momentum" ~extents:(nx, ny, nz) ~iterations:1
    ~use_loop:false
    ~state:[ "u"; "v"; "mask" ]
    ~next_state:[ "u_next"; "v"; "mask" ]
    [ vort_kernel; update_kernel ]

let () =
  Printf.printf "ocean momentum kernel: %d fields, %d kernels\n"
    (List.length program.P.state)
    (List.length program.P.kernels);

  (* how many stencil.apply ops remain after inlining?  The two kernels
     fuse into one, collapsing two communication rounds into one. *)
  let m = P.compile program in
  let after_inline =
    Wsc_ir.Pass.run_pipeline [ Wsc_core.Stencil_inlining.pass ] m
  in
  Printf.printf "applies before inlining: 2, after: %d\n"
    (Wsc_ir.Stats.count after_inline "stencil.apply");

  (* run end to end on both WSE generations *)
  let reference = P.run_reference program in
  List.iter
    (fun machine ->
      let compiled = Wsc_core.Pipeline.compile (P.compile program) in
      let init =
        List.map
          (fun _ ->
            let g = I.grid_of_typ (P.field_type program) in
            I.init_grid g;
            I.retensorize_grid g)
          program.P.state
      in
      let host = Wsc_wse.Host.simulate machine compiled init in
      let out = Wsc_wse.Host.read_all host in
      let diff =
        List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff reference out)
      in
      Printf.printf "%s: %.0f cycles, max |diff| vs reference %.2e\n"
        machine.Wsc_wse.Machine.name
        (Wsc_wse.Fabric.elapsed_cycles host.sim)
        diff;
      assert (diff < 1e-5))
    [ Wsc_wse.Machine.wse2; Wsc_wse.Machine.wse3 ]
