(** Textual printer for the generic IR form (MLIR-like generic syntax).
    Output round-trips through {!Parser}. *)

val pp_typ : Format.formatter -> Ir.typ -> unit
val typ_to_string : Ir.typ -> string
val pp_attr : Format.formatter -> Ir.attr -> unit

(** Printing environment assigning stable names to values and blocks
    within one printing session. *)
type env

val new_env : unit -> env
val value_name : env -> Ir.value -> string

(** Print one op (and everything nested) at the given indent. *)
val pp_op : env -> int -> Format.formatter -> Ir.op -> unit

val op_to_string : Ir.op -> string
val print_op : ?out:Format.formatter -> Ir.op -> unit
