lib/ir/stats.mli: Ir
