lib/ir/printer.ml: Buffer Float Format Hashtbl Ir List Printf String
