lib/ir/verifier.mli: Ir
