lib/ir/ir.ml: Hashtbl List Option Printf
