lib/ir/pass.ml: Format Ir List Printer Verifier
