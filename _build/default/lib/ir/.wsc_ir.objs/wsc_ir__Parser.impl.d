lib/ir/parser.ml: Buffer Hashtbl Ir List Printf String
