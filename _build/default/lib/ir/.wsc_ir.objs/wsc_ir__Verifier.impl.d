lib/ir/verifier.ml: Hashtbl Ir List Printf String
