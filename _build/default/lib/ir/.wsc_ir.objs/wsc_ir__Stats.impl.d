lib/ir/stats.ml: Hashtbl Ir List Option
