(** Sequential IR builder.

    Dialect constructors return ops; the builder collects them in order and
    finally produces a block.  This mirrors how lowering passes in the
    pipeline assemble replacement regions. *)

open Ir

type t = { mutable rev_ops : op list }

let create () = { rev_ops = [] }

(** Append [op] and return its first result. *)
let insert (b : t) (op : op) : value =
  b.rev_ops <- op :: b.rev_ops;
  match op.results with v :: _ -> v | [] -> invalid_arg "Builder.insert: op has no results"

(** Append [op] that produces no results. *)
let insert0 (b : t) (op : op) : unit = b.rev_ops <- op :: b.rev_ops

(** Append [op] and return all results. *)
let insert_multi (b : t) (op : op) : value list =
  b.rev_ops <- op :: b.rev_ops;
  op.results

let ops (b : t) : op list = List.rev b.rev_ops

let to_block ?(args = []) (b : t) : block = new_block ~args (ops b)

(** Build a single-block region from a construction function that receives
    the fresh block arguments. *)
let region_with_args (arg_types : typ list) (f : t -> value list -> unit) : region =
  let args = List.map new_value arg_types in
  let b = create () in
  f b args;
  new_region [ new_block ~args (ops b) ]

let region_no_args (f : t -> unit) : region =
  let b = create () in
  f b;
  new_region [ new_block (ops b) ]
