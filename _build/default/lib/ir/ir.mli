(** Core SSA intermediate representation.

    A compact re-implementation of the MLIR/xDSL concepts the paper's
    pipeline builds on: dynamically named operations carrying operands,
    results, attributes and nested regions, arranged into blocks with
    block arguments.  Dialects are modules of smart constructors and
    accessors over this generic representation (see [Wsc_dialects] and
    the csl dialects in [Wsc_core]). *)

(** {1 Types} *)

(** Element and aggregate types.  [Tensor] and [Memref] carry static
    shapes; [Temp] and [Field] are the stencil dialect's bounded grid
    types with half-open per-dimension bounds [[lb, ub)]; [Ptr], [Dsd],
    [Color] and [Struct] belong to the csl dialect. *)
type typ =
  | F16
  | F32
  | F64
  | I1
  | I16
  | I32
  | I64
  | Index
  | Tensor of int list * typ
  | Memref of int list * typ
  | Temp of (int * int) list * typ
  | Field of (int * int) list * typ
  | Function of typ list * typ list
  | Ptr of typ * ptr_kind
  | Dsd of dsd_kind
  | Color
  | Struct of string

and ptr_kind = Ptr_single | Ptr_many
and dsd_kind = Mem1d | Mem4d | Fabin | Fabout

(** {1 Attributes} *)

type attr =
  | Unit_attr
  | Bool_attr of bool
  | Int_attr of int
  | Float_attr of float
  | String_attr of string
  | Type_attr of typ
  | Array_attr of attr list
  | Dict_attr of (string * attr) list
  | Dense_ints of int list
  | Dense_floats of float list
  | Symbol_ref of string

(** {1 IR structure}

    Mutually recursive mutable records.  Ops live in plain lists inside
    blocks; rewrites build new lists rather than maintaining intrusive
    links. *)

type value = {
  vid : int;  (** unique id; substitutions key on it *)
  mutable vtyp : typ;
  mutable vhint : string option;  (** printer name hint *)
}

type op = {
  oid : int;
  mutable opname : string;  (** fully qualified, e.g. ["stencil.apply"] *)
  mutable operands : value list;
  mutable results : value list;
  mutable attrs : (string * attr) list;
  mutable regions : region list;
}

and block = {
  bid : int;
  mutable bargs : value list;
  mutable bops : op list;
}

and region = { rgid : int; mutable blocks : block list }

val new_value : ?hint:string -> typ -> value
val new_block : ?args:value list -> op list -> block
val new_region : block list -> region

(** Create an operation; result values are freshly allocated from the
    result types. *)
val create_op :
  ?operands:value list ->
  ?attrs:(string * attr) list ->
  ?regions:region list ->
  ?result_hints:string list ->
  string ->
  results:typ list ->
  op

(** {1 Attribute access} *)

val attr : op -> string -> attr option

(** @raise Invalid_argument when absent (all [_exn] accessors). *)
val attr_exn : op -> string -> attr

val int_attr : op -> string -> int option
val int_attr_exn : op -> string -> int
val float_attr_exn : op -> string -> float
val string_attr : op -> string -> string option
val string_attr_exn : op -> string -> string
val dense_ints_exn : op -> string -> int list
val bool_attr : op -> string -> bool option
val set_attr : op -> string -> attr -> unit
val remove_attr : op -> string -> unit
val has_attr : op -> string -> bool

(** {1 Structural helpers} *)

(** First result.  @raise Failure on result-less ops. *)
val result : op -> value

val result_n : op -> int -> value
val operand : op -> int -> value
val region : op -> int -> region
val entry_block : region -> block

(** Entry block of the op's [n]-th region. *)
val body_block : op -> int -> block

val is_terminated_by : block -> string list -> bool
val terminator : block -> op option

(** {1 Type helpers} *)

(** Innermost scalar type. *)
val elem_type : typ -> typ

val shape_of : typ -> int list
val bounds_of : typ -> (int * int) list
val num_elements : typ -> int
val byte_width : typ -> int
val size_in_bytes : typ -> int
val rank : typ -> int

(** {1 Traversal} *)

(** Pre-order walk over an op and everything nested in its regions. *)
val walk_op : (op -> unit) -> op -> unit

val walk_block : (op -> unit) -> block -> unit

(** Post-order walk (children before the op itself). *)
val walk_op_post : (op -> unit) -> op -> unit

val find_ops : (op -> bool) -> op -> op list
val find_op : (op -> bool) -> op -> op option
val find_op_by_name : string -> op -> op option
val find_ops_by_name : string -> op -> op list
val count_ops : (op -> bool) -> op -> int

(** {1 Value substitution}

    Rewrites thread an explicit substitution from old to new values;
    [resolve] chases chains. *)
module Subst : sig
  type t

  val create : unit -> t
  val resolve : t -> value -> value
  val add : t -> from:value -> to_:value -> unit
  val add_all : t -> from:value list -> to_:value list -> unit

  (** Rewrite every operand under the op (nested included). *)
  val apply_op : t -> op -> unit
end

(** Deep-clone an op, remapping operands through the substitution and
    recording result/block-arg mappings into it. *)
val clone_op : Subst.t -> op -> op

val clone_region : Subst.t -> region -> region
val clone_block : Subst.t -> block -> block

(** {1 Block rewriting} *)

type rewrite = Keep | Erase | Replace of op list

(** Rewrite each op of the block (non-recursively); the caller records
    value substitutions for erased results and applies them over the
    enclosing scope. *)
val rewrite_block : (op -> rewrite) -> block -> unit

(** Recursively rewrite all blocks under the root, innermost first. *)
val rewrite_nested : (op -> rewrite) -> op -> unit

(** {1 Use counting and cleanup} *)

(** Map from value id to its use count under the root. *)
val use_counts : op -> (int, int) Hashtbl.t

(** Remove ops whose results are all unused and whose name [pure]
    declares side-effect free; returns how many were removed. *)
val dce : pure:(string -> bool) -> op -> int
