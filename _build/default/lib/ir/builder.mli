(** Sequential IR builder: collects ops in order and produces blocks and
    single-block regions, the shape every lowering pass assembles. *)

type t

val create : unit -> t

(** Append an op and return its first result.
    @raise Invalid_argument if the op has no results. *)
val insert : t -> Ir.op -> Ir.value

(** Append an op that produces no results. *)
val insert0 : t -> Ir.op -> unit

(** Append an op and return all of its results. *)
val insert_multi : t -> Ir.op -> Ir.value list

(** The collected ops, in insertion order. *)
val ops : t -> Ir.op list

val to_block : ?args:Ir.value list -> t -> Ir.block

(** Build a single-block region whose entry block has arguments of the
    given types; [f] receives the builder and the fresh arguments. *)
val region_with_args :
  Ir.typ list -> (t -> Ir.value list -> unit) -> Ir.region

val region_no_args : (t -> unit) -> Ir.region
