(** IR statistics.

    The performance models in {!Wsc_perf} are driven by measurements of the
    actually-compiled program: op histograms, per-point FLOP counts, and
    communication volumes.  This module extracts them. *)

open Ir

(** Histogram of op names under [root]. *)
let op_histogram (root : op) : (string * int) list =
  let h = Hashtbl.create 64 in
  walk_op
    (fun o ->
      let c = Option.value (Hashtbl.find_opt h o.opname) ~default:0 in
      Hashtbl.replace h o.opname (c + 1))
    root;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let count root name =
  Option.value (List.assoc_opt name (op_histogram root)) ~default:0

(** FLOPs contributed by one execution of an op, given the number of scalar
    elements it operates over.  Fused multiply-accumulate counts as two. *)
let flops_of_op_name name ~elements =
  match name with
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" -> elements
  | "linalg.add" | "linalg.sub" | "linalg.mul" | "linalg.div" -> elements
  | "csl.fadds" | "csl.fsubs" | "csl.fmuls" -> elements
  | "csl.fmacs" | "linalg.fmac" -> 2 * elements
  | "varith.add" | "varith.mul" -> elements (* per extra operand, see below *)
  | _ -> 0

(** Total FLOPs for one grid point of a [stencil.apply] body: walks the
    region and sums arithmetic ops, scaling variadic ops by arity. *)
let flops_per_point (apply : op) : int =
  let total = ref 0 in
  walk_op
    (fun o ->
      match o.opname with
      | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" -> incr total
      | "varith.add" | "varith.mul" ->
          total := !total + max 0 (List.length o.operands - 1)
      | _ -> ())
    apply;
  !total

(** Number of distinct stencil accesses (neighbour reads) in an apply. *)
let accesses_of_apply (apply : op) : (int list) list =
  let acc = ref [] in
  walk_op
    (fun o ->
      if o.opname = "stencil.access" || o.opname = "csl_stencil.access" then
        acc := dense_ints_exn o "offset" :: !acc)
    apply;
  List.rev !acc

(** Remote accesses are those with a non-zero offset in the first two
    (distributed) dimensions. *)
let remote_accesses_of_apply (apply : op) : (int list) list =
  List.filter
    (fun off ->
      match off with
      | x :: y :: _ -> x <> 0 || y <> 0
      | [ x ] -> x <> 0
      | [] -> false)
    (accesses_of_apply apply)

(** Star-pattern radius: maximum absolute offset over the distributed
    dimensions across all accesses. *)
let stencil_radius (apply : op) : int =
  List.fold_left
    (fun r off ->
      match off with
      | x :: y :: _ -> max r (max (abs x) (abs y))
      | [ x ] -> max r (abs x)
      | [] -> r)
    0
    (accesses_of_apply apply)

(** Total number of ops under [root]. *)
let total_ops (root : op) : int =
  let n = ref 0 in
  walk_op (fun _ -> incr n) root;
  !n
