(** Pass manager: named transformations over a module op, composed into
    pipelines with optional per-pass verification and IR dumping. *)

type t = { pass_name : string; run : Ir.op -> Ir.op }

(** [make name run] — a pass that may replace the module. *)
val make : string -> (Ir.op -> Ir.op) -> t

(** [make_inplace name f] — a pass that mutates the module in place. *)
val make_inplace : string -> (Ir.op -> unit) -> t

type options = {
  verify_each : bool;  (** run the verifier after every pass *)
  dump_each : bool;  (** print the IR after every pass *)
  dump_channel : Format.formatter;
}

val default_options : options

(** Raised when a pass (or the verifier after it) fails; carries the pass
    name and the original exception. *)
exception Pass_failed of string * exn

(** Run [passes] over a module in order. *)
val run_pipeline : ?options:options -> t list -> Ir.op -> Ir.op

val pass_names : t list -> string list
