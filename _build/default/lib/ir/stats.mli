(** IR statistics: op histograms and the stencil-specific measurements
    (FLOPs per point, access sets) that drive the performance models. *)

(** Histogram of op names under the given root, sorted by name. *)
val op_histogram : Ir.op -> (string * int) list

(** Occurrences of the named op under the root. *)
val count : Ir.op -> string -> int

(** FLOPs contributed by one execution of the named op over [elements]
    scalar elements (fused multiply-accumulate counts as two). *)
val flops_of_op_name : string -> elements:int -> int

(** Arithmetic FLOPs per grid point of a stencil-apply body. *)
val flops_per_point : Ir.op -> int

(** Offsets of all (csl_)stencil accesses under an apply. *)
val accesses_of_apply : Ir.op -> int list list

(** Accesses with a non-zero offset in the distributed dimensions. *)
val remote_accesses_of_apply : Ir.op -> int list list

(** Maximum |offset| over the distributed dimensions. *)
val stencil_radius : Ir.op -> int

(** Total op count under the root (root included). *)
val total_ops : Ir.op -> int
