(** Performance models of the GPU and CPU cluster baselines (Figure 6):
    memory-bandwidth rooflines with a strong-scaling halo-exchange term,
    following the setups of Bisbas et al. (IPDPS'25). *)

type device = {
  dev_name : string;
  mem_bw_bytes : float;
  bw_efficiency : float;
  peak_flops : float;
  interconnect_bytes : float;
  bytes_per_point : float;
      (** acoustic-kernel memory traffic per point, calibrated against
          the published throughputs (see DESIGN.md) *)
}

(** Nvidia A100-80GB as deployed on Tursa. *)
val a100 : device

(** One ARCHER2 node (2 × AMD EPYC 7742). *)
val archer2_node : device

type cluster_measurement = {
  cm_name : string;
  devices : int;
  grid_points : float;
  gpts_per_s : float;
  time_per_iter_s : float;
  flops_per_s : float;
  memory_bound : bool;
  ai : float;
}

val acoustic_flops_per_point : float

(** Strong-scaling throughput of [devices] devices on an [n]³ grid. *)
val acoustic_throughput : device -> devices:int -> n:int -> cluster_measurement

(** The two Figure 6 baselines: 1158³ on 128 GPUs, 1024³ on 128 nodes. *)
val tursa_128_a100 : unit -> cluster_measurement

val archer2_128_nodes : unit -> cluster_measurement

(** Single-A100 point for the Figure 7 roofline. *)
val single_a100 : unit -> cluster_measurement
