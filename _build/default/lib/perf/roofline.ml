(** Roofline model (Figure 7).

    A kernel is plotted at (arithmetic intensity, performance); the
    machine bounds it by min(peak, AI × bandwidth).  Following the paper,
    each WSE benchmark contributes two points: one with all data accesses
    priced against local SRAM bandwidth and one against the fabric, since
    on the WSE local memory is faster than the interconnect.  All inputs
    are measured on the simulator (FLOPs, SRAM traffic and fabric traffic
    of the actually-compiled program). *)

module Machine = Wsc_wse.Machine

type point = {
  label : string;
  ai : float;  (** FLOPs per byte *)
  gflops : float;  (** achieved performance, total over the machine *)
  bound : [ `Compute | `Memory ];
}

type roof = {
  machine_name : string;
  peak_gflops : float;
  mem_bw_gbytes : float;  (** aggregate *)
  fabric_bw_gbytes : float;
}

let wse_roof (m : Machine.t) ~(pes : int) : roof =
  {
    machine_name = m.name;
    peak_gflops = float_of_int pes *. m.flops_per_pe_per_cycle *. m.clock_hz /. 1e9;
    mem_bw_gbytes = float_of_int pes *. Machine.mem_bandwidth_per_pe m /. 1e9;
    fabric_bw_gbytes = float_of_int pes *. Machine.ramp_bandwidth_per_pe m /. 1e9;
  }

(** Attainable performance at intensity [ai] under bandwidth [bw]. *)
let attainable (roof : roof) ~(bw_gbytes : float) (ai : float) : float =
  Float.min roof.peak_gflops (ai *. bw_gbytes)

let classify (roof : roof) ~(bw_gbytes : float) (ai : float) : [ `Compute | `Memory ] =
  if ai *. bw_gbytes >= roof.peak_gflops then `Compute else `Memory

(** The two roofline points of one WSE measurement. *)
let points_of_measurement (roof : roof) (m : Wse_perf.measurement) : point list =
  let achieved_gflops = m.tflops *. 1e3 in
  let ai_mem = m.flops_per_pt /. m.mem_bytes_per_pt in
  let ai_fabric =
    if m.fabric_bytes_per_pt > 0.0 then m.flops_per_pt /. m.fabric_bytes_per_pt
    else infinity
  in
  [
    {
      label = m.bench ^ " (memory)";
      ai = ai_mem;
      gflops = achieved_gflops;
      bound = classify roof ~bw_gbytes:roof.mem_bw_gbytes ai_mem;
    };
    {
      label = m.bench ^ " (fabric)";
      ai = ai_fabric;
      gflops = achieved_gflops;
      bound = classify roof ~bw_gbytes:roof.fabric_bw_gbytes ai_fabric;
    };
  ]

(** The A100 acoustic point from the cluster model. *)
let a100_point () : point =
  let cm = Cluster.single_a100 () in
  {
    label = "acoustic (A100)";
    ai = cm.Cluster.ai;
    gflops = cm.Cluster.flops_per_s /. 1e9;
    bound = (if cm.Cluster.memory_bound then `Memory else `Compute);
  }

let a100_roof : roof =
  {
    machine_name = "A100";
    peak_gflops = Cluster.a100.Cluster.peak_flops /. 1e9;
    mem_bw_gbytes = Cluster.a100.Cluster.mem_bw_bytes /. 1e9;
    fabric_bw_gbytes = Cluster.a100.Cluster.interconnect_bytes /. 1e9;
  }

let pp_point fmt (p : point) =
  Format.fprintf fmt "%-22s AI=%8.2f FLOP/B  %12.1f GFLOP/s  %s" p.label p.ai
    p.gflops
    (match p.bound with `Compute -> "compute-bound" | `Memory -> "memory-bound")
