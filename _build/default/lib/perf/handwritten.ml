(** Cost model of the hand-written 25-point seismic CSL kernel
    (Jacquelin et al., SC'22; Cerebras csl-examples) for Figure 5.

    The paper attributes the compiled kernel's edge over the hand-written
    one to four measured mechanisms (§6.1), which this model applies on
    top of our own simulated per-iteration breakdown:

    - the hand-written version communicates in {e two} chunks where the
      generated code uses one (extra per-chunk task/synchronization
      round);
    - it transmits the {e full} column including the z-halo values the
      computation never reads, where the generated code sends only the
      needed columns;
    - it uses roughly {e twice} as many tasks, paying the activation
      overhead twice;
    - it exists only for the WSE2, so it always pays the self-send switch
      workaround.

    Everything else (compute, queue drains) is identical to the measured
    simulation of our generated WSE2 kernel. *)

module B = Wsc_benchmarks.Benchmarks
module Machine = Wsc_wse.Machine

type breakdown = {
  hw_cycles_per_iter : float;
  ours_cycles_per_iter : float;
  advantage_pct : float;  (** how much faster the generated code is *)
}

(** Per-iteration per-PE cycle components extracted from a measurement of
    our generated kernel. *)
let hand_written_cycles (machine : Machine.t) (ours : Wse_perf.measurement)
    ~(z_halo : int) : float =
  let nz = float_of_int ours.nz in
  let zfull = float_of_int (ours.nz + (2 * z_halo)) in
  (* communication share of the per-iteration time: sends + drains scale
     with transmitted volume *)
  let dirs = 4.0 in
  let self = if machine.self_send then 2.0 else 1.0 in
  let send = dirs *. nz *. machine.send_cycles_per_elem *. self in
  let radius = float_of_int z_halo in
  let drain =
    ((dirs *. radius *. nz) +. (if machine.self_send then dirs *. nz else 0.0))
    *. machine.drain_cycles_per_elem
  in
  let comm_ours = send +. drain in
  (* full-column transmission: volume scales by zfull/nz *)
  let comm_hw = comm_ours *. (zfull /. nz) in
  (* two chunks: one extra round of chunk tasks and synchronization per
     direction *)
  let extra_chunk_tasks = (dirs +. 1.0) *. float_of_int machine.task_activate_cycles in
  (* twice the tasks overall: the generated runtime needs ~half the task
     activations (§6.1) *)
  let task_overhead =
    ours.tasks_per_pe_per_iter *. float_of_int machine.task_activate_cycles
  in
  ours.cycles_per_iter -. comm_ours +. comm_hw +. extra_chunk_tasks +. task_overhead

(** Figure 5 data point: hand-written vs generated for one problem size.
    The hand-written kernel only exists on the WSE2. *)
let compare_seismic ~(size : B.size) : breakdown * Wse_perf.measurement =
  let d = B.find "seismic" in
  let machine = Machine.wse2 in
  let ours = Wse_perf.measure ~machine ~size d in
  let hw = hand_written_cycles machine ours ~z_halo:4 in
  ( {
      hw_cycles_per_iter = hw;
      ours_cycles_per_iter = ours.cycles_per_iter;
      advantage_pct = 100.0 *. ((hw /. ours.cycles_per_iter) -. 1.0);
    },
    ours )

(** Throughput of the hand-written kernel in GPts/s for a problem size. *)
let hand_written_gpts ~(size : B.size) : float =
  let bd, ours = compare_seismic ~size in
  ours.gpts_per_s *. ours.cycles_per_iter /. bd.hw_cycles_per_iter
