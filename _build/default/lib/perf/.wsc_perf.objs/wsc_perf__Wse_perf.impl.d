lib/perf/wse_perf.ml: Format List Wsc_benchmarks Wsc_core Wsc_dialects Wsc_frontends Wsc_ir Wsc_wse
