lib/perf/roofline.mli: Format Wsc_wse Wse_perf
