lib/perf/roofline.ml: Cluster Float Format Wsc_wse Wse_perf
