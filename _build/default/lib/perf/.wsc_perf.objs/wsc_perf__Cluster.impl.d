lib/perf/cluster.ml: Float Printf
