lib/perf/handwritten.ml: Wsc_benchmarks Wsc_wse Wse_perf
