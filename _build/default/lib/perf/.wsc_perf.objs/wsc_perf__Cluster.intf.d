lib/perf/cluster.mli:
