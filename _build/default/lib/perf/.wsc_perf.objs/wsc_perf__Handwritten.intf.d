lib/perf/handwritten.mli: Wsc_benchmarks Wsc_wse Wse_perf
