lib/perf/wse_perf.mli: Format Wsc_benchmarks Wsc_core Wsc_wse
