(** Roofline model (Figure 7).  Each WSE kernel contributes two points:
    its measured traffic priced against local SRAM bandwidth and against
    the (ramp-limited) fabric.  All inputs are measured on the simulator
    from the actually-compiled program. *)

module Machine = Wsc_wse.Machine

type point = {
  label : string;
  ai : float;  (** arithmetic intensity, FLOPs per byte *)
  gflops : float;  (** achieved performance over the whole machine *)
  bound : [ `Compute | `Memory ];
}

type roof = {
  machine_name : string;
  peak_gflops : float;
  mem_bw_gbytes : float;
  fabric_bw_gbytes : float;
}

(** The roofline of a [pes]-sized rectangle of the given machine. *)
val wse_roof : Machine.t -> pes:int -> roof

(** min(peak, AI × bandwidth). *)
val attainable : roof -> bw_gbytes:float -> float -> float

val classify : roof -> bw_gbytes:float -> float -> [ `Compute | `Memory ]

(** The memory and fabric points of one WSE measurement. *)
val points_of_measurement : roof -> Wse_perf.measurement -> point list

(** The acoustic-on-one-A100 point from the cluster model. *)
val a100_point : unit -> point

val a100_roof : roof
val pp_point : Format.formatter -> point -> unit
