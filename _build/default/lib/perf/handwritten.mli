(** Cost model of the hand-written 25-point seismic CSL kernel
    (Jacquelin et al., SC'22) for Figure 5: our measured per-iteration
    breakdown plus the paper's four documented hand-written inefficiencies
    (two-chunk communication, full-column transmission, ~2× task count,
    WSE2-only). *)

module B = Wsc_benchmarks.Benchmarks

type breakdown = {
  hw_cycles_per_iter : float;
  ours_cycles_per_iter : float;
  advantage_pct : float;  (** how much faster the generated code is *)
}

(** Model the hand-written kernel from a measurement of ours. *)
val hand_written_cycles :
  Wsc_wse.Machine.t -> Wse_perf.measurement -> z_halo:int -> float

(** Figure 5 data point for one problem size (WSE2 only, as the
    hand-written kernel is). *)
val compare_seismic : size:B.size -> breakdown * Wse_perf.measurement

(** Hand-written throughput in GPts/s for a problem size. *)
val hand_written_gpts : size:B.size -> float
