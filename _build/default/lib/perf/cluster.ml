(** Performance models of the GPU and CPU cluster baselines (Figure 6).

    The paper compares the WSE3 running Devito's acoustic kernel against
    the strong-scaling results of Bisbas et al. (IPDPS'25): MPI + OpenACC
    on 128 Nvidia A100s (Tursa) and MPI + OpenMP on 128 dual-EPYC-7742
    nodes (ARCHER2).  Stencil kernels on those machines are memory-bound,
    so each device is modelled by its sustained memory bandwidth over the
    kernel's bytes-per-point, degraded by a halo-exchange term from the
    strong-scaling decomposition — the two effects that set the published
    throughputs. *)

type device = {
  dev_name : string;
  mem_bw_bytes : float;  (** peak memory bandwidth per device *)
  bw_efficiency : float;  (** sustained fraction achieved by stencils *)
  peak_flops : float;  (** f32 peak per device *)
  interconnect_bytes : float;  (** node injection bandwidth *)
  bytes_per_point : float;
      (** memory traffic per acoustic grid point: calibrated against the
          published throughputs of Bisbas et al. — OpenACC on the A100
          streams the 13-point neighbourhood with poor reuse (the paper
          itself notes the GPU baseline does not exercise full potential),
          while the EPYC nodes' 256 MB of L3 capture most reuse *)
}

(** Nvidia A100-80GB (Tursa): 2.0 TB/s HBM2e, ~70% sustained on stencil
    streams; 4 × 200 Gb/s IB per node shared by 4 GPUs. *)
let a100 =
  {
    dev_name = "A100";
    mem_bw_bytes = 2.0e12;
    bw_efficiency = 0.55;
    peak_flops = 19.5e12;
    interconnect_bytes = 25.0e9;
    bytes_per_point = 95.0;
  }

(** ARCHER2 node: 2 × AMD EPYC 7742, 8 DDR4-3200 channels per socket
    (~409 GB/s/node), ~65% sustained; Slingshot 100 Gb/s injection. *)
let archer2_node =
  {
    dev_name = "ARCHER2-node";
    mem_bw_bytes = 409.6e9;
    bw_efficiency = 0.65;
    peak_flops = 4.7e12;
    interconnect_bytes = 12.5e9;
    bytes_per_point = 33.0;
  }

type cluster_measurement = {
  cm_name : string;
  devices : int;
  grid_points : float;
  gpts_per_s : float;
  time_per_iter_s : float;
  flops_per_s : float;
  memory_bound : bool;
  ai : float;  (** arithmetic intensity, FLOPs per byte of memory traffic *)
}

let acoustic_flops_per_point = 18.0

(** Strong-scaling throughput of [devices] devices on an [n]^3 grid. *)
let acoustic_throughput (dev : device) ~(devices : int) ~(n : int) :
    cluster_measurement =
  let points = float_of_int n ** 3.0 in
  let points_per_dev = points /. float_of_int devices in
  (* memory-bound time per iteration per device *)
  let bw = dev.mem_bw_bytes *. dev.bw_efficiency in
  let t_mem = points_per_dev *. dev.bytes_per_point /. bw in
  let t_compute = points_per_dev *. acoustic_flops_per_point /. dev.peak_flops in
  (* halo exchange: 3-D decomposition, 6 faces of depth 2 (space order 4),
     f32; latency-inclusive *)
  let side = (points_per_dev ** (1.0 /. 3.0)) +. 1.0 in
  let halo_bytes = 6.0 *. 2.0 *. side *. side *. 4.0 in
  let t_halo = (halo_bytes /. dev.interconnect_bytes) +. 20.0e-6 in
  let t_iter = Float.max t_mem t_compute +. t_halo in
  let gpts = points /. t_iter /. 1e9 in
  {
    cm_name = Printf.sprintf "%dx %s" devices dev.dev_name;
    devices;
    grid_points = points;
    gpts_per_s = gpts;
    time_per_iter_s = t_iter;
    flops_per_s = points /. t_iter *. acoustic_flops_per_point;
    memory_bound = t_mem > t_compute;
    ai = acoustic_flops_per_point /. dev.bytes_per_point;
  }

(** The two baselines exactly as in Figure 6: 1158^3 on the GPUs,
    1024^3 on the CPU nodes (the paper notes the larger grids favour the
    clusters by lowering their communication share). *)
let tursa_128_a100 () = acoustic_throughput a100 ~devices:128 ~n:1158
let archer2_128_nodes () = acoustic_throughput archer2_node ~devices:128 ~n:1024

(** Single A100 point for the roofline plot (Figure 7). *)
let single_a100 () = acoustic_throughput a100 ~devices:1 ~n:512
