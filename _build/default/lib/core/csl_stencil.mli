(** The [csl_stencil] dialect (paper §4.1): makes the WSE-specific
    structure of a stencil explicit — what is fetched from neighbours and
    how the computation splits into chunk-wise processing of received
    data (region 0) versus computation on locally held data (region 1). *)

open Wsc_ir.Ir
module Dmp = Wsc_dialects.Dmp

(** Transitional op replacing [dmp.swap]; folded into the apply. *)
val prefetch :
  value -> topology:int * int -> swaps:Dmp.swap_desc list -> op

type apply_config = {
  topology : int * int;  (** PE grid extents *)
  swaps : Dmp.swap_desc list list;  (** per communicated input *)
  num_chunks : int;
  chunk_size : int;
  comm_count : int;  (** leading operands that are communicated grids *)
  coeffs : (int * int * int * float) list;
      (** promoted coefficients (input, dx, dy, c): the communication
          layer scales data arriving from PE offset (dx, dy) and reduces
          it into the per-direction staging buffer (§5.7); empty when
          promotion does not apply *)
}

(** Operands are [comm_inputs @ [acc] @ local_inputs]; region 0
    (receive-chunk) takes one received view per communicated input, the
    chunk offset and the accumulator; region 1 (done) takes the operand
    list.  Both end in [csl_stencil.yield]. *)
val apply :
  config:apply_config ->
  comm_inputs:value list ->
  acc:value ->
  local_inputs:value list ->
  result_types:typ list ->
  recv_region:region ->
  done_region:region ->
  op

val is_apply : op -> bool
val config_of : op -> apply_config
val comm_inputs : op -> value list
val acc_init : op -> value
val local_inputs : op -> value list
val recv_region : op -> region
val done_region : op -> region

(** Same shape as [stencil.access]: reads the received view (region 0)
    or a local grid (region 1). *)
val access : value -> offset:int list -> result:typ -> op

val yield : value list -> op
