(** Group 3 (paper §5.3): memory realization within a PE.

    Rewrites the value-semantics tensor bodies of [csl_stencil.apply] into
    reference semantics: tensors become memrefs, arithmetic becomes
    destination-passing-style [linalg] ops writing into explicit buffers,
    and the accumulator is reused in place for intermediate and final
    results.  Intermediate buffers are allocated automatically when an
    expression cannot be computed in place (the bufferization fail-safe
    the paper gets from upstream MLIR). *)

open Wsc_ir.Ir
module Linalg = Wsc_dialects.Linalg_d
module Memref = Wsc_dialects.Memref_d
module Arith = Wsc_dialects.Arith
module B = Wsc_ir.Builder

exception Bufferize_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bufferize_error s)) fmt

let def_map_of_block (b : block) : (int, op) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun o -> List.iter (fun r -> Hashtbl.replace h r.vid o) o.results) b.bops;
  h

let dense_const defs (v : value) : float option =
  match Hashtbl.find_opt defs v.vid with
  | Some o when Arith.is_constant o -> Arith.constant_value o
  | _ -> None

let memref_of_tensor = function
  | Tensor (shape, e) -> Memref (shape, e)
  | t -> t

let len_of v = match shape_of v.vtyp with [ n ] -> n | _ -> fail "expected 1-D value"

type options = {
  fuse_fmac : bool;
      (** emit [linalg.fmac] for multiply-accumulate chains (paper §5.7);
          when off, a separate multiply into a temporary plus an add is
          produced (the input shape for the standalone
          [linalg-fuse-multiply-add] pass and its ablation) *)
}

let default_options = { fuse_fmac = true }

(** Lowering context for one region. *)
type lctx = {
  defs : (int, op) Hashtbl.t;
  b : B.t;
  buf_cache : (int, value) Hashtbl.t;  (** tensor value vid -> memref value *)
  opts : options;
}

(** Produce a memref value aliasing or holding [v]'s data. *)
let rec lower_buf (c : lctx) (v : value) : value =
  match Hashtbl.find_opt c.buf_cache v.vid with
  | Some m -> m
  | None ->
      let m =
        match Hashtbl.find_opt c.defs v.vid with
        | None ->
            (* block argument: already converted to a memref by the caller *)
            v
        | Some o -> (
            match o.opname with
            | "csl_stencil.access" ->
                let nw =
                  Csl_stencil.access (operand o 0)
                    ~offset:(dense_ints_exn o "offset")
                    ~result:(memref_of_tensor (result o).vtyp)
                in
                B.insert c.b nw
            | "tensor.extract_slice" ->
                let src = lower_buf c (operand o 0) in
                B.insert c.b
                  (Memref.subview src ~offset:(int_attr_exn o "offset")
                     ~size:(int_attr_exn o "size"))
            | _ ->
                let tmp =
                  B.insert c.b (Memref.alloc ~shape:[ len_of v ] ~hint:"tmp" ())
                in
                lower_into c tmp v;
                tmp)
      in
      Hashtbl.replace c.buf_cache v.vid m;
      m

(** Compute [v] into destination buffer [dst]. *)
and lower_into (c : lctx) (dst : value) (v : value) : unit =
  match Hashtbl.find_opt c.defs v.vid with
  | None ->
      (* block arg (e.g. the accumulator): copy *)
      B.insert0 c.b (Linalg.copy ~a:v ~out:dst)
  | Some o -> (
      match o.opname with
      | "varith.add" -> (
          match o.operands with
          | [] -> fail "empty varith.add"
          | x :: rest ->
              lower_into c dst x;
              List.iter (fun y -> accumulate c dst y 1.0) rest)
      | "arith.addf" ->
          lower_into c dst (operand o 0);
          accumulate c dst (operand o 1) 1.0
      | "arith.subf" ->
          lower_into c dst (operand o 0);
          accumulate c dst (operand o 1) (-1.0)
      | "varith.mul" | "arith.mulf" -> (
          let consts, rest =
            List.partition (fun x -> dense_const c.defs x <> None) o.operands
          in
          let k =
            List.fold_left
              (fun k x -> k *. Option.get (dense_const c.defs x))
              1.0 consts
          in
          match rest with
          | [] -> B.insert0 c.b (Linalg.fill ~out:dst ~value:k)
          | [ x ] ->
              let bx = lower_buf c x in
              if k = 1.0 then B.insert0 c.b (Linalg.copy ~a:bx ~out:dst)
              else B.insert0 c.b (Linalg.mul_scalar ~a:bx ~out:dst ~scalar:k)
          | x :: y :: more ->
              let bx = lower_buf c x in
              let by = lower_buf c y in
              B.insert0 c.b (Linalg.mul ~a:bx ~b:by ~out:dst);
              List.iter
                (fun z ->
                  let bz = lower_buf c z in
                  B.insert0 c.b (Linalg.mul ~a:dst ~b:bz ~out:dst))
                more;
              if k <> 1.0 then
                B.insert0 c.b (Linalg.mul_scalar ~a:dst ~out:dst ~scalar:k))
      | "arith.divf" -> (
          match dense_const c.defs (operand o 1) with
          | Some k ->
              let bx = lower_buf c (operand o 0) in
              B.insert0 c.b (Linalg.mul_scalar ~a:bx ~out:dst ~scalar:(1.0 /. k))
          | None ->
              let bx = lower_buf c (operand o 0) in
              let by = lower_buf c (operand o 1) in
              B.insert0 c.b (Linalg.div ~a:bx ~b:by ~out:dst))
      | "arith.constant" -> (
          match Arith.constant_value o with
          | Some k -> B.insert0 c.b (Linalg.fill ~out:dst ~value:k)
          | None -> fail "non-float constant in tensor position")
      | "csl_stencil.access" | "tensor.extract_slice" ->
          let bv = lower_buf c v in
          B.insert0 c.b (Linalg.copy ~a:bv ~out:dst)
      | name -> fail "bufferize: cannot lower %s" name)

(** Accumulate [sign * v] into [dst]. *)
and accumulate (c : lctx) (dst : value) (v : value) (sign : float) : unit =
  let fallback () =
    let bv = lower_buf c v in
    if sign > 0.0 then B.insert0 c.b (Linalg.add ~a:dst ~b:bv ~out:dst)
    else B.insert0 c.b (Linalg.sub ~a:dst ~b:bv ~out:dst)
  in
  match Hashtbl.find_opt c.defs v.vid with
  | Some o when o.opname = "arith.mulf" || o.opname = "varith.mul" -> (
      let consts, rest =
        List.partition (fun x -> dense_const c.defs x <> None) o.operands
      in
      let k =
        sign
        *. List.fold_left
             (fun k x -> k *. Option.get (dense_const c.defs x))
             1.0 consts
      in
      match rest with
      | [ x ] when c.opts.fuse_fmac ->
          (* the canonical fused multiply-accumulate *)
          let bx = lower_buf c x in
          B.insert0 c.b (Linalg.fmac ~a:dst ~b:bx ~out:dst ~scalar:k)
      | [ x ] ->
          let bx = lower_buf c x in
          let tmp = B.insert c.b (Memref.alloc ~shape:[ len_of x ] ~hint:"tmp" ()) in
          B.insert0 c.b (Linalg.mul_scalar ~a:bx ~out:tmp ~scalar:k);
          B.insert0 c.b (Linalg.add ~a:dst ~b:tmp ~out:dst)
      | _ -> fallback ())
  | Some o when Arith.is_constant o -> (
      match Arith.constant_value o with
      | Some k -> B.insert0 c.b (Linalg.add_scalar ~a:dst ~out:dst ~scalar:(sign *. k))
      | None -> fallback ())
  | _ -> fallback ()

(** {1 Region conversion} *)

(** Receive-chunk region: compute the chunk value directly into the
    accumulator slice at the dynamic offset. *)
let bufferize_recv_region ~(opts : options) (apply : op) : unit =
  let blk = entry_block (Csl_stencil.recv_region apply) in
  let cfg = Csl_stencil.config_of apply in
  let n = List.length blk.bargs in
  let acc_arg = List.nth blk.bargs (n - 1) in
  let off_arg = List.nth blk.bargs (n - 2) in
  acc_arg.vtyp <- memref_of_tensor acc_arg.vtyp;
  let defs = def_map_of_block blk in
  let yield_op =
    match terminator blk with
    | Some t when t.opname = "csl_stencil.yield" -> t
    | _ -> fail "recv region: missing yield"
  in
  let b = B.create () in
  let c = { defs; b; buf_cache = Hashtbl.create 16; opts } in
  (* rebuild an index computation (constants and adds over the offset
     block argument) into the new body *)
  let rec lower_index (v : value) : value =
    if v.vid = off_arg.vid then off_arg
    else
      match Hashtbl.find_opt defs v.vid with
      | Some o when Arith.is_constant o -> B.insert b (clone_op (Subst.create ()) o)
      | Some o when o.opname = "arith.addi" ->
          let x = lower_index (operand o 0) and y = lower_index (operand o 1) in
          B.insert b
            (create_op "arith.addi" ~operands:[ x; y ] ~results:[ Index ])
      | _ -> fail "recv region: unsupported slice offset"
  in
  (* the yield value is a chain of insert_slice ops ending at the
     accumulator argument: one per packed column, or a single one in
     reduce mode *)
  let rec collect_inserts (v : value) acc =
    if v.vid = acc_arg.vid then acc
    else
      match Hashtbl.find_opt defs v.vid with
      | Some o when o.opname = "tensor.insert_slice" ->
          collect_inserts (operand o 1) (o :: acc)
      | _ -> fail "recv region: expected insert_slice chain before yield"
  in
  let inserts = collect_inserts (List.hd yield_op.operands) [] in
  List.iter
    (fun insert_op ->
      let src = operand insert_op 0 in
      let off = lower_index (operand insert_op 2) in
      let dst =
        B.insert b (Memref.subview_dyn acc_arg ~offset:off ~size:cfg.chunk_size)
      in
      lower_into c dst src)
    inserts;
  B.insert0 b (Csl_stencil.yield [ acc_arg ]);
  blk.bops <- B.ops b

(** Done region: allocate the output column, copy the Dirichlet z-halo
    from the centre column, compute the interior in place. *)
let bufferize_done_region ~(opts : options) (apply : op) : unit =
  let blk = entry_block (Csl_stencil.done_region apply) in
  let cfg = Csl_stencil.config_of apply in
  let z_halo = int_attr_exn apply "z_halo" in
  let nz = int_attr_exn apply "z_interior" in
  let acc_arg = List.nth blk.bargs cfg.comm_count in
  acc_arg.vtyp <- memref_of_tensor acc_arg.vtyp;
  let defs = def_map_of_block blk in
  let yield_op =
    match terminator blk with
    | Some t when t.opname = "csl_stencil.yield" -> t
    | _ -> fail "done region: missing yield"
  in
  let inserts =
    List.map
      (fun rv ->
        match Hashtbl.find_opt defs rv.vid with
        | Some o when o.opname = "tensor.insert_slice" -> o
        | _ -> fail "done region: expected insert_slice before yield")
      yield_op.operands
  in
  let zfull = nz + (2 * z_halo) in
  let b = B.create () in
  let c = { defs; b; buf_cache = Hashtbl.create 16; opts } in
  (* one output buffer per yielded column (multi-result applies come from
     stencil inlining's pass-through outputs) *)
  let outs =
    List.map
      (fun insert_op ->
        let interior_val = operand insert_op 0 in
        let center_val = operand insert_op 1 in
        let out = B.insert b (Memref.alloc ~shape:[ zfull ] ~hint:"out" ()) in
        let center = lower_buf c center_val in
        if z_halo > 0 then begin
          let lo_src = B.insert b (Memref.subview center ~offset:0 ~size:z_halo) in
          let lo_dst = B.insert b (Memref.subview out ~offset:0 ~size:z_halo) in
          B.insert0 b (Linalg.copy ~a:lo_src ~out:lo_dst);
          let hi_src =
            B.insert b (Memref.subview center ~offset:(z_halo + nz) ~size:z_halo)
          in
          let hi_dst =
            B.insert b (Memref.subview out ~offset:(z_halo + nz) ~size:z_halo)
          in
          B.insert0 b (Linalg.copy ~a:hi_src ~out:hi_dst)
        end;
        let dst_int = B.insert b (Memref.subview out ~offset:z_halo ~size:nz) in
        lower_into c dst_int interior_val;
        out)
      inserts
  in
  B.insert0 b (Csl_stencil.yield outs);
  blk.bops <- B.ops b

(** Replace the accumulator's [tensor.empty] init with a [memref.alloc]. *)
let bufferize_acc_init (root : op) (apply : op) : unit =
  let acc = Csl_stencil.acc_init apply in
  let subst = Subst.create () in
  rewrite_nested
    (fun o ->
      if o.opname = "tensor.empty" && (result o).vid = acc.vid then begin
        let nw = Memref.alloc ~shape:(shape_of acc.vtyp) ~hint:"acc" () in
        Subst.add subst ~from:acc ~to_:(result nw);
        Replace [ nw ]
      end
      else Keep)
    root;
  Subst.apply_op subst root

let run ?(options = default_options) (m : op) : op =
  let applies = find_ops_by_name "csl_stencil.apply" m in
  List.iter
    (fun apply ->
      bufferize_recv_region ~opts:options apply;
      bufferize_done_region ~opts:options apply;
      bufferize_acc_init m apply;
      set_attr apply "bufferized" Unit_attr)
    applies;
  m

let pass ?(options = default_options) () =
  Wsc_ir.Pass.make "csl-stencil-bufferize" (run ~options)
