(** The [csl_stencil] dialect (paper §4.1).

    Makes the WSE-specific structure of a stencil explicit: which data is
    fetched from neighbours ([prefetch]), and how the computation splits
    into chunk-wise processing of received data versus computation on
    locally held data (the two regions of [apply]).

    [csl_stencil.apply] anatomy:
    - operands: the communicated input grids (2D temps of z-column
      tensors), then the accumulator init tensor, then any local-only
      input grids;
    - attrs: [topo] (PE grid), [swaps] (per-direction exchange
      descriptors, reusing the dmp encoding), [num_chunks], [chunk_size],
      [comm_count] (number of communicated inputs), and optionally
      [coeffs] — coefficients promoted into the communication layer
      (paper §5.7: multiply incoming data at zero overhead);
    - region 0 (receive_chunk): block args are one received-halo view per
      communicated input (a temp whose element is a chunk-sized tensor),
      the chunk z-offset (index), and the accumulator; executed once per
      chunk; must yield the updated accumulator;
    - region 1 (done): block args are the original inputs followed by the
      accumulator; executed once after all chunks arrived; yields the
      output column(s). *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier
module Dmp = Wsc_dialects.Dmp

(** [prefetch] — transitional op produced when replacing [dmp.swap]: marks
    that [input]'s halo must be fetched into a local buffer.  Folded into
    the enclosing [apply] by the same pass group. *)
let prefetch (input : value) ~(topology : int * int) ~(swaps : Dmp.swap_desc list) :
    op =
  let w, h = topology in
  create_op "csl_stencil.prefetch" ~operands:[ input ] ~results:[ input.vtyp ]
    ~attrs:
      [
        ("topo", Dense_ints [ w; h ]);
        ("swaps", Dmp.swap_attr swaps);
      ]

type apply_config = {
  topology : int * int;
  swaps : Dmp.swap_desc list list;  (** per communicated input *)
  num_chunks : int;
  chunk_size : int;
  comm_count : int;  (** how many leading operands are communicated grids *)
  coeffs : (int * int * int * float) list;
      (** promoted coefficients: (input index, dx, dy, coefficient); empty
          when coefficient promotion does not apply.  The communication
          layer multiplies data arriving from PE offset (dx, dy) for
          communicated input [i] by the coefficient and reduces it into
          the per-direction staging buffer (paper §5.7). *)
}

let apply ~(config : apply_config) ~(comm_inputs : value list) ~(acc : value)
    ~(local_inputs : value list) ~(result_types : typ list)
    ~(recv_region : region) ~(done_region : region) : op =
  let w, h = config.topology in
  let attrs =
    [
      ("topo", Dense_ints [ w; h ]);
      ("swaps", Array_attr (List.map Dmp.swap_attr config.swaps));
      ("num_chunks", Int_attr config.num_chunks);
      ("chunk_size", Int_attr config.chunk_size);
      ("comm_count", Int_attr config.comm_count);
    ]
    @
    if config.coeffs = [] then []
    else
      [
        ( "coeffs",
          Array_attr
            (List.map
               (fun (i, dx, dy, c) ->
                 Dict_attr
                   [
                     ("i", Int_attr i);
                     ("dx", Int_attr dx);
                     ("dy", Int_attr dy);
                     ("c", Float_attr c);
                   ])
               config.coeffs) );
      ]
  in
  create_op "csl_stencil.apply"
    ~operands:((comm_inputs @ [ acc ]) @ local_inputs)
    ~results:result_types ~attrs
    ~regions:[ recv_region; done_region ]
    ~result_hints:(List.map (fun _ -> "out") result_types)

let is_apply op = op.opname = "csl_stencil.apply"

let config_of (op : op) : apply_config =
  let topology =
    match dense_ints_exn op "topo" with
    | [ w; h ] -> (w, h)
    | _ -> invalid_arg "csl_stencil.apply: bad topo"
  in
  let coeffs =
    match attr op "coeffs" with
    | Some (Array_attr l) ->
        List.map
          (function
            | Dict_attr d ->
                let geti k =
                  match List.assoc_opt k d with Some (Int_attr i) -> i | _ -> 0
                in
                let getf k =
                  match List.assoc_opt k d with
                  | Some (Float_attr f) -> f
                  | Some (Int_attr i) -> float_of_int i
                  | _ -> 0.0
                in
                (geti "i", geti "dx", geti "dy", getf "c")
            | _ -> invalid_arg "csl_stencil.apply: bad coeffs")
          l
    | _ -> []
  in
  let swaps =
    match attr_exn op "swaps" with
    | Array_attr l -> List.map Dmp.swaps_of_attr l
    | _ -> invalid_arg "csl_stencil.apply: bad swaps"
  in
  {
    topology;
    swaps;
    num_chunks = int_attr_exn op "num_chunks";
    chunk_size = int_attr_exn op "chunk_size";
    comm_count = int_attr_exn op "comm_count";
    coeffs;
  }

let comm_inputs (op : op) : value list =
  let c = int_attr_exn op "comm_count" in
  List.filteri (fun i _ -> i < c) op.operands

let acc_init (op : op) : value = List.nth op.operands (int_attr_exn op "comm_count")

let local_inputs (op : op) : value list =
  let c = int_attr_exn op "comm_count" in
  List.filteri (fun i _ -> i > c) op.operands

let recv_region (op : op) : region = List.nth op.regions 0
let done_region (op : op) : region = List.nth op.regions 1

(** [access] — same shape as [stencil.access]; reads either the received
    buffer (inside region 0) or a local grid (inside region 1). *)
let access (source : value) ~(offset : int list) ~(result : typ) : op =
  create_op "csl_stencil.access" ~operands:[ source ] ~results:[ result ]
    ~attrs:[ ("offset", Dense_ints offset) ]

let yield (vals : value list) : op =
  create_op "csl_stencil.yield" ~operands:vals ~results:[]

let () =
  Verifier.register "csl_stencil.apply" (fun op ->
      let cfg = config_of op in
      if List.length op.regions <> 2 then
        Verifier.fail "csl_stencil.apply: exactly two regions required";
      if cfg.comm_count < 1 then
        Verifier.fail "csl_stencil.apply: at least one communicated input";
      if cfg.num_chunks < 1 then Verifier.fail "csl_stencil.apply: num_chunks >= 1";
      let recv = entry_block (recv_region op) in
      (* one rcv view per communicated input + offset + acc *)
      if List.length recv.bargs <> cfg.comm_count + 2 then
        Verifier.fail
          "csl_stencil.apply: recv region takes %d args, expected %d (rcv views + \
           offset + acc)"
          (List.length recv.bargs) (cfg.comm_count + 2);
      let done_ = entry_block (done_region op) in
      if List.length done_.bargs <> List.length op.operands then
        Verifier.fail
          "csl_stencil.apply: done region takes %d args, expected %d (operands)"
          (List.length done_.bargs)
          (List.length op.operands));
  Verifier.register_terminator "csl_stencil.apply" [ "csl_stencil.yield" ]
