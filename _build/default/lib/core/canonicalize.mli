(** Canonicalization: constant folding of float arithmetic (with the
    x+0 / x*1 / x*0 identities), common-subexpression elimination of
    duplicate constants and stencil accesses, and dead-code elimination —
    run to a fixpoint. *)

val pure : string -> bool
val run : Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val pass : Wsc_ir.Pass.t
