(** Group 4 (paper §5.4): map to the actor execution model.  Converts
    the synchronous program — a timestep loop (or straight-line sequence)
    of [csl_stencil.apply] ops — into the asynchronous task graph of a
    [csl.module]: a communicate call plus chunk/done callback actors per
    apply, a loop-condition function, and an advance task rotating the
    grid buffer pointers.  Checks per-PE memory against the 48 kB
    budget. *)

exception Actor_error of string

val pe_memory_bytes : int

val run : Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val pass : Wsc_ir.Pass.t
