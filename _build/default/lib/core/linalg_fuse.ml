(** [linalg-fuse-multiply-add] (paper §5.7).

    Recognizes a scalar multiplication into a temporary followed by an
    addition of that temporary and rewrites the pair into a single
    [linalg.fmac], which group 5 lowers to the [@fmacs] CSL builtin:

    {v
      %tmp = memref.alloc
      linalg.mul_scalar(%a, %tmp) {scalar = k}
      linalg.add(%d, %tmp, %d)
      =>  linalg.fmac(%d, %a, %d) {scalar = k}
    v} *)

open Wsc_ir.Ir
module Linalg = Wsc_dialects.Linalg_d

let fuse_block (root : op) (blk : block) : int =
  let uses = use_counts root in
  let count v = Option.value (Hashtbl.find_opt uses v.vid) ~default:0 in
  let fused = ref 0 in
  (* map: tmp vid -> (a, scalar, mul op oid) for single-use mul_scalar temps *)
  let muls = Hashtbl.create 8 in
  List.iter
    (fun o ->
      if o.opname = "linalg.mul_scalar" then begin
        let a = operand o 0 and out = operand o 1 in
        if count out = 2 (* the mul and one add *) then
          Hashtbl.replace muls out.vid (a, float_attr_exn o "scalar", o.oid)
      end)
    blk.bops;
  let killed = Hashtbl.create 8 in
  rewrite_block
    (fun o ->
      if o.opname = "linalg.add" then begin
        let a = operand o 0 and b = operand o 1 and out = operand o 2 in
        let try_fuse x other =
          match Hashtbl.find_opt muls x.vid with
          | Some (src, k, mul_oid)
            when other.vid = out.vid && not (Hashtbl.mem killed mul_oid) ->
              Hashtbl.replace killed mul_oid ();
              incr fused;
              Some (Linalg.fmac ~a:other ~b:src ~out ~scalar:k)
          | _ -> None
        in
        match try_fuse b a with
        | Some f -> Replace [ f ]
        | None -> (
            match try_fuse a b with Some f -> Replace [ f ] | None -> Keep)
      end
      else Keep)
    blk;
  (* remove the consumed multiplies and their (now unused) temporaries *)
  blk.bops <-
    List.filter (fun o -> not (Hashtbl.mem killed o.oid)) blk.bops;
  ignore
    (dce root ~pure:(fun n -> n = "memref.alloc"));
  !fused

let run (m : op) : op =
  walk_op
    (fun o ->
      if o.opname = "csl_stencil.apply" then
        List.iter (fun r -> List.iter (fun b -> ignore (fuse_block m b)) r.blocks)
          o.regions)
    m;
  m

let pass = Wsc_ir.Pass.make "linalg-fuse-multiply-add" run
