(** Stencil inlining (paper §5.7).

    Merges consecutive [stencil.apply] ops into a single fused kernel,
    removing the synchronization (and on the WSE: the communication round)
    between them.  Accesses to the producer's result at offset [o] are
    replaced by a clone of the producer's body with all of its accesses
    shifted by [o] (redundant computation at the halo).  If the producer's
    result has uses other than the consumer, it is passed through as an
    additional result. *)

open Wsc_ir.Ir
module Stencil = Wsc_dialects.Stencil

(** Clone the producer's body with accesses shifted by [shift], mapping its
    block args through [arg_map]; append the cloned ops to [acc] and return
    the values the producer's [stencil.return] would yield. *)
let inline_producer_body (producer : op) (arg_map : Subst.t) (shift : int list) :
    op list * value list =
  let body = Stencil.apply_body producer in
  let subst = Subst.create () in
  (* producer body arg i corresponds to producer operand i, which maps to
     a fused-apply block arg through [arg_map] *)
  List.iter2
    (fun arg oper -> Subst.add subst ~from:arg ~to_:(Subst.resolve arg_map oper))
    body.bargs producer.operands;
  let cloned = List.map (clone_op subst) body.bops in
  let shifted =
    List.map
      (fun o ->
        if o.opname = "stencil.access" then begin
          let off = dense_ints_exn o "offset" in
          set_attr o "offset" (Dense_ints (List.map2 ( + ) off shift))
        end;
        o)
      cloned
  in
  match List.rev shifted with
  | ret :: rest when ret.opname = "stencil.return" ->
      (List.rev rest, ret.operands)
  | _ -> invalid_arg "stencil-inlining: producer body has no stencil.return"

(** Fuse [producer] into [consumer]; returns the fused op and a
    substitution for the pair's results. *)
let fuse (producer : op) (consumer : op) ~(passthrough : bool) : op * Subst.t =
  let prod_result = result producer in
  (* fused inputs: producer's inputs then consumer's inputs minus the
     producer result, deduplicated *)
  let fused_inputs =
    List.fold_left
      (fun acc v ->
        if v.vid = prod_result.vid || List.exists (fun u -> u.vid = v.vid) acc then acc
        else acc @ [ v ])
      [] (producer.operands @ consumer.operands)
  in
  let args = List.map (fun v -> new_value ?hint:v.vhint v.vtyp) fused_inputs in
  let arg_map = Subst.create () in
  List.iter2 (fun v a -> Subst.add arg_map ~from:v ~to_:a) fused_inputs args;
  let body = Wsc_ir.Builder.create () in
  (* rebuild the consumer body, inlining the producer at each access *)
  let consumer_body = Stencil.apply_body consumer in
  let subst = Subst.create () in
  List.iter2
    (fun carg coperand ->
      (* consumer block arg corresponding to the producer result is
         resolved per-access below; others map to fused args *)
      if coperand.vid <> prod_result.vid then
        Subst.add subst ~from:carg ~to_:(Subst.resolve arg_map coperand))
    consumer_body.bargs consumer.operands;
  let prod_args =
    List.filteri
      (fun i _ -> (List.nth consumer.operands i).vid = prod_result.vid)
      consumer_body.bargs
  in
  let is_prod_arg v = List.exists (fun a -> a.vid = v.vid) prod_args in
  let ret_vals = ref [] in
  List.iter
    (fun o ->
      if o.opname = "stencil.access" && is_prod_arg (operand o 0) then begin
        let shift = dense_ints_exn o "offset" in
        let ops, vals = inline_producer_body producer arg_map shift in
        List.iter (Wsc_ir.Builder.insert0 body) ops;
        match vals with
        | [ v ] -> Subst.add subst ~from:(result o) ~to_:v
        | _ -> invalid_arg "stencil-inlining: multi-result producer unsupported"
      end
      else if o.opname = "stencil.return" then ret_vals := o.operands
      else begin
        let cloned = clone_op subst o in
        Wsc_ir.Builder.insert0 body cloned
      end)
    consumer_body.bops;
  let ret_vals = List.map (Subst.resolve subst) !ret_vals in
  (* optional passthrough of the producer value at offset zero *)
  let pass_vals, pass_types =
    if passthrough then begin
      let zero_shift = List.map (fun _ -> 0) (bounds_of prod_result.vtyp) in
      let ops, vals = inline_producer_body producer arg_map zero_shift in
      List.iter (Wsc_ir.Builder.insert0 body) ops;
      (vals, [ prod_result.vtyp ])
    end
    else ([], [])
  in
  Wsc_ir.Builder.insert0 body (Stencil.return_ (ret_vals @ pass_vals));
  let block = new_block ~args (Wsc_ir.Builder.ops body) in
  let fused =
    create_op "stencil.apply" ~operands:fused_inputs
      ~attrs:consumer.attrs
      ~results:(List.map (fun r -> r.vtyp) consumer.results @ pass_types)
      ~regions:[ new_region [ block ] ]
  in
  let res_subst = Subst.create () in
  List.iteri
    (fun i r -> Subst.add res_subst ~from:r ~to_:(List.nth fused.results i))
    consumer.results;
  if passthrough then
    Subst.add res_subst ~from:prod_result
      ~to_:(List.nth fused.results (List.length consumer.results));
  (fused, res_subst)

(** Try one fusion step in [b]: find a producer apply whose result feeds a
    later apply in the same block. *)
let fuse_once_in_block (root : op) (b : block) : bool =
  let uses = use_counts root in
  let count v = Option.value (Hashtbl.find_opt uses v.vid) ~default:0 in
  let applies = List.filter Stencil.is_apply b.bops in
  let candidate =
    List.find_map
      (fun producer ->
        if List.length producer.results <> 1 then None
        else begin
          let r = result producer in
          let consumers =
            List.filter
              (fun o ->
                Stencil.is_apply o && o.oid <> producer.oid
                && List.exists (fun v -> v.vid = r.vid) o.operands)
              applies
          in
          match consumers with
          | [ consumer ] ->
              let uses_in_consumer =
                List.length (List.filter (fun v -> v.vid = r.vid) consumer.operands)
              in
              let passthrough = count r > uses_in_consumer in
              Some (producer, consumer, passthrough)
          | _ -> None
        end)
      applies
  in
  match candidate with
  | None -> false
  | Some (producer, consumer, passthrough) ->
      let fused, res_subst = fuse producer consumer ~passthrough in
      b.bops <-
        List.concat_map
          (fun o ->
            if o.oid = producer.oid then []
            else if o.oid = consumer.oid then [ fused ]
            else [ o ])
          b.bops;
      Subst.apply_op res_subst root;
      true

let run (m : op) : op =
  let changed = ref true in
  while !changed do
    changed := false;
    walk_op
      (fun o ->
        List.iter
          (fun r -> List.iter (fun b -> if fuse_once_in_block m b then changed := true) r.blocks)
          o.regions)
      m
  done;
  m

let pass = Wsc_ir.Pass.make "stencil-inlining" run
