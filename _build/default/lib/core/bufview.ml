(** Buffer views: the runtime representation shared by the bufferized-IR
    evaluator and the fabric simulator's DSD execution.

    A view aliases a slice of a backing array — exactly what a memref
    subview or a mem1d DSD denotes on a PE. *)

type t = { data : float array; off : int; len : int; stride : int }

let of_array (a : float array) : t =
  { data = a; off = 0; len = Array.length a; stride = 1 }

let make (a : float array) ~off ~len ?(stride = 1) () : t =
  if off < 0 || (len > 0 && off + ((len - 1) * stride) >= Array.length a) then
    invalid_arg
      (Printf.sprintf "Bufview: [%d, +%d x%d) out of array of %d" off len stride
         (Array.length a));
  { data = a; off; len; stride }

let sub (v : t) ~off ~len : t =
  make v.data ~off:(v.off + (off * v.stride)) ~len ~stride:v.stride ()

let get (v : t) i = v.data.(v.off + (i * v.stride))
let set (v : t) i x = v.data.(v.off + (i * v.stride)) <- x

let fill (v : t) x =
  for i = 0 to v.len - 1 do
    set v i x
  done

let to_array (v : t) : float array = Array.init v.len (get v)

let blit ~(src : t) ~(dst : t) : unit =
  if src.len <> dst.len then invalid_arg "Bufview.blit: length mismatch";
  for i = 0 to src.len - 1 do
    set dst i (get src i)
  done

(** Elementwise [dst.(i) <- f a.(i) b.(i)]; operands may alias [dst]. *)
let map2_into (f : float -> float -> float) (a : t) (b : t) (dst : t) : unit =
  if a.len <> dst.len || b.len <> dst.len then
    invalid_arg "Bufview.map2_into: length mismatch";
  for i = 0 to dst.len - 1 do
    set dst i (f (get a i) (get b i))
  done

let map_into (f : float -> float) (a : t) (dst : t) : unit =
  if a.len <> dst.len then invalid_arg "Bufview.map_into: length mismatch";
  for i = 0 to dst.len - 1 do
    set dst i (f (get a i))
  done

(** Fused multiply-accumulate: [dst.(i) <- a.(i) + b.(i) * s]. *)
let fmac_into (a : t) (b : t) (s : float) (dst : t) : unit =
  if a.len <> dst.len || b.len <> dst.len then
    invalid_arg "Bufview.fmac_into: length mismatch";
  for i = 0 to dst.len - 1 do
    set dst i (get a i +. (get b i *. s))
  done
