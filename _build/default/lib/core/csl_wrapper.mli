(** The [csl_wrapper] dialect (paper §4.2): packages program-wide
    parameters, the layout metaprogram region and the PE program region,
    mirroring CSL's staged compilation. *)

open Wsc_ir.Ir

type params = {
  width : int;
  height : int;
  z_dim : int;  (** elements per PE column, halo included *)
  pattern : int;  (** stencil radius + 1 *)
  num_chunks : int;
  chunk_size : int;
  program_name : string;
}

val params_attr : params -> attr
val params_of_attr : attr -> params

(** Region 0 controls layout across the WSE; region 1 holds the PE
    program. *)
val module_ : params:params -> layout:region -> program:region -> op

val is_module : op -> bool
val params_of : op -> params
val layout_region : op -> region
val program_region : op -> region

(** Import a CSL library (e.g. memcpy) inside the module. *)
val import : name:string -> op

val yield : value list -> op
