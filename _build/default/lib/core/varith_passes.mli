(** Varith optimization passes (paper §5.7): collapse binary add/mul
    chains into variadic ops, turn n-fold repeated additions of one value
    into a multiplication, and expand back to binary form. *)

val to_varith : Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val to_varith_pass : Wsc_ir.Pass.t

(** [n >= 3] repeated operands of a [varith.add] become [n * v]. *)
val fuse_repeated : Wsc_ir.Ir.op -> Wsc_ir.Ir.op

val fuse_repeated_pass : Wsc_ir.Pass.t

val from_varith : Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val from_varith_pass : Wsc_ir.Pass.t
