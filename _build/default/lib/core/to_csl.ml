(** Group 5 (paper §5.5): lowering to the csl dialect.

    - [convert-linalg-to-csl]: DPS linalg ops become CSL's high-throughput
      DSD arithmetic builtins ([@fadds], [@fmuls], [@fmacs], [@fmovs], …).
    - [lower-memref-to-dsd]: memref views become [get_mem_dsd] /
      [increment_dsd_offset] definitions over the underlying buffers.
    - [csl-wrapper-to-csl]: the wrapper module becomes two csl modules —
      the layout metaprogram (set_rectangle + uniform PE placement) and
      the PE program. *)

open Wsc_ir.Ir
module Memref = Wsc_dialects.Memref_d
module Arith = Wsc_dialects.Arith
module B = Wsc_ir.Builder

exception Csl_lowering_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Csl_lowering_error s)) fmt

(** Rewrite one function/task body block: memref views to DSDs, linalg
    ops to builtins.  Buffer-producing csl ops (get_global, deref_ptr)
    stay; each distinct view gets one DSD. *)
let lower_block (blk : block) : unit =
  let subst = Subst.create () in
  let b = B.create () in
  (* map memref value vid -> dsd value *)
  let dsd_cache : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let buf_len (v : value) =
    match v.vtyp with
    | Memref ([ n ], _) -> n
    | _ -> fail "expected 1-D memref, got %s" (Wsc_ir.Printer.typ_to_string v.vtyp)
  in
  (* DSD for a memref-typed value (a whole buffer) *)
  let dsd_of (v : value) : value =
    let v = Subst.resolve subst v in
    match v.vtyp with
    | Dsd _ -> v
    | Memref _ -> (
        match Hashtbl.find_opt dsd_cache v.vid with
        | Some d -> d
        | None ->
            let d = B.insert b (Csl.get_mem_dsd v ~offset:0 ~length:(buf_len v) ()) in
            Hashtbl.replace dsd_cache v.vid d;
            d)
    | _ -> fail "operand is neither memref nor DSD"
  in
  let scalar_const (k : float) : value = B.insert b (Arith.constant_f k) in
  List.iter
    (fun o ->
      match o.opname with
      | "memref.subview" ->
          let base = dsd_of (operand o 0) in
          let off = int_attr_exn o "offset" in
          let len = int_attr_exn o "size" in
          let d1 = B.insert b (Csl.increment_dsd_offset base ~by:off) in
          let d2 = B.insert b (Csl.set_dsd_length d1 ~length:len) in
          Subst.add subst ~from:(result o) ~to_:d2
      | "memref.subview_dyn" ->
          let base = dsd_of (operand o 0) in
          let off = Subst.resolve subst (operand o 1) in
          let len = int_attr_exn o "size" in
          let d1 = B.insert b (Csl.increment_dsd_offset_by base off) in
          let d2 = B.insert b (Csl.set_dsd_length d1 ~length:len) in
          Subst.add subst ~from:(result o) ~to_:d2
      | "linalg.add" ->
          let a = dsd_of (operand o 0) and c = dsd_of (operand o 1) in
          B.insert0 b (Csl.fadds ~dest:(dsd_of (operand o 2)) a c)
      | "linalg.sub" ->
          let a = dsd_of (operand o 0) and c = dsd_of (operand o 1) in
          B.insert0 b (Csl.fsubs ~dest:(dsd_of (operand o 2)) a c)
      | "linalg.mul" ->
          let a = dsd_of (operand o 0) and c = dsd_of (operand o 1) in
          B.insert0 b (Csl.fmuls ~dest:(dsd_of (operand o 2)) a c)
      | "linalg.div" -> fail "CSL has no DSD divide builtin; divide by a constant instead"
      | "linalg.mul_scalar" ->
          let a = dsd_of (operand o 0) in
          let k = scalar_const (float_attr_exn o "scalar") in
          B.insert0 b (Csl.fmuls ~dest:(dsd_of (operand o 1)) a k)
      | "linalg.add_scalar" ->
          let a = dsd_of (operand o 0) in
          let k = scalar_const (float_attr_exn o "scalar") in
          B.insert0 b (Csl.fadds ~dest:(dsd_of (operand o 1)) a k)
      | "linalg.fmac" ->
          let a = dsd_of (operand o 0) and c = dsd_of (operand o 1) in
          let k = scalar_const (float_attr_exn o "scalar") in
          B.insert0 b (Csl.fmacs ~dest:(dsd_of (operand o 2)) a c k)
      | "linalg.copy" ->
          let a = dsd_of (operand o 0) in
          B.insert0 b (Csl.fmovs ~dest:(dsd_of (operand o 1)) a)
      | "linalg.fill" ->
          let k = scalar_const (float_attr_exn o "value") in
          B.insert0 b (Csl.fmovs ~dest:(dsd_of (operand o 0)) k)
      | _ ->
          o.operands <- List.map (Subst.resolve subst) o.operands;
          B.insert0 b o)
    blk.bops;
  blk.bops <- B.ops b

let lower_program (program : op) : unit =
  List.iter
    (fun o ->
      match o.opname with
      | "csl.func" | "csl.task" ->
          List.iter (fun r -> List.iter lower_block r.blocks) o.regions;
          (* nested scf.if blocks contain only csl ops already *)
          walk_op
            (fun inner ->
              if inner.opname = "scf.if" then
                List.iter (fun r -> List.iter lower_block r.blocks) inner.regions)
            o
      | _ -> ())
    (Csl.module_body program)

(** Generate the layout metaprogram module from the wrapper params. *)
let layout_module (params : Csl_wrapper.params) : op =
  let b = B.create () in
  B.insert0 b (Csl.set_rectangle ~width:params.width ~height:params.height);
  B.insert0 b
    (Csl.place_pes
       ~file:(params.program_name ^ ".csl")
       ~params:
         [
           ("width", Int_attr params.width);
           ("height", Int_attr params.height);
           ("z_dim", Int_attr params.z_dim);
           ("pattern", Int_attr params.pattern);
           ("num_chunks", Int_attr params.num_chunks);
           ("chunk_size", Int_attr params.chunk_size);
         ]);
  B.insert0 b (Csl.export ~name:"run" ~kind:"fn");
  Csl.module_ ~kind:Csl.Layout ~name:(params.program_name ^ "_layout") (B.ops b)

(** csl-wrapper-to-csl: produce a builtin.module holding the layout and
    program csl modules. *)
let run (m : op) : op =
  if not (Csl_wrapper.is_module m) then fail "expected csl_wrapper.module";
  let params = Csl_wrapper.params_of m in
  let program =
    match (entry_block (Csl_wrapper.program_region m)).bops with
    | [ p ] when p.opname = "csl.module" -> p
    | _ -> fail "program region does not hold a csl.module"
  in
  lower_program program;
  set_attr program "width" (Int_attr params.width);
  set_attr program "height" (Int_attr params.height);
  let layout = layout_module params in
  Wsc_dialects.Builtin.module_op [ layout; program ]

let pass = Wsc_ir.Pass.make "csl-wrapper-to-csl" run
