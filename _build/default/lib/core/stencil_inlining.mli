(** Stencil inlining (paper §5.7): merges consecutive [stencil.apply] ops
    into a single fused kernel, replacing accesses to the producer's
    result at offset [o] by a clone of the producer's body with its
    accesses shifted by [o] (redundant computation at the halo).  A
    producer value with other uses is passed through as an extra
    result. *)

(** Fuse until no producer/consumer pair remains. *)
val run : Wsc_ir.Ir.op -> Wsc_ir.Ir.op

val pass : Wsc_ir.Pass.t
