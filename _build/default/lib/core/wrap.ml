(** csl-stencil-wrap (paper §5.2): package the program into a
    [csl_wrapper.module], extracting program-wide parameters from the
    [csl_stencil.apply] ops — PE grid extents, column height, pattern
    (stencil radius + 1), chunking — which the staged CSL compilation
    needs in the layout metaprogram. *)

open Wsc_ir.Ir
module Dmp = Wsc_dialects.Dmp

exception Wrap_error of string

let program_params ?(name = "stencil_program") (m : op) : Csl_wrapper.params =
  let applies = find_ops_by_name "csl_stencil.apply" m in
  match applies with
  | [] -> raise (Wrap_error "no csl_stencil.apply in module")
  | first :: _ ->
      let cfg = Csl_stencil.config_of first in
      let w, h = cfg.topology in
      let z_halo = int_attr_exn first "z_halo" in
      let nz = int_attr_exn first "z_interior" in
      let radius =
        List.fold_left
          (fun r a ->
            let c = Csl_stencil.config_of a in
            List.fold_left
              (fun r (s : Dmp.swap_desc) -> max r s.depth)
              r
              (List.concat c.swaps))
          1 applies
      in
      let num_chunks =
        List.fold_left (fun n a -> max n (Csl_stencil.config_of a).num_chunks) 1 applies
      in
      {
        Csl_wrapper.width = w;
        height = h;
        z_dim = nz + (2 * z_halo);
        pattern = radius + 1;
        num_chunks;
        chunk_size = cfg.chunk_size;
        program_name = name;
      }

let run ?name (m : op) : op =
  let params = program_params ?name m in
  let layout = new_region [ new_block [] ] in
  (* the program region takes over the module's body *)
  let program = List.hd m.regions in
  Csl_wrapper.module_ ~params ~layout ~program

let pass ?name () = Wsc_ir.Pass.make "csl-stencil-wrap" (run ?name)
