(** Group 1 transformations (paper §5.1): decomposition and data
    dependencies.

    [distribute-stencil] decomposes the x/y dimensions across the WSE's 2D
    PE grid (one grid column per PE) and inserts [dmp.swap] ops describing
    the halo exchanges each [stencil.apply] depends on.  The z range of
    each swap is narrowed to the columns actually read remotely
    (needed-columns-only, §6.1).

    [tensorize-z] then converts the 3D grid of f32 scalars into a 2D grid
    of f32 z-column tensors: accesses gain explicit [tensor.extract_slice]
    ops for their z offset, scalar constants become dense splats, and the
    body's arithmetic becomes rank-polymorphic tensor arithmetic. *)

open Wsc_ir.Ir
module Stencil = Wsc_dialects.Stencil
module Dmp = Wsc_dialects.Dmp
module Arith = Wsc_dialects.Arith
module Tensor = Wsc_dialects.Tensor_d

(** {1 distribute-stencil} *)

exception Distribute_error of string

(** The runtime communication library covers star-shaped patterns
    (paper §5.6); diagonal dependencies would need the box-pattern
    library update the paper leaves to future work.  Rejecting them here
    — before any communication is planned — turns a would-be silent
    miscompilation into a diagnostic. *)
let check_star_shaped (apply : op) : unit =
  List.iter
    (fun off ->
      match off with
      | x :: y :: _ when x <> 0 && y <> 0 ->
          raise
            (Distribute_error
               (Printf.sprintf
                  "access at offset (%d, %d) is diagonal: only star-shaped \
                   stencils are supported by the communication library \
                   (box patterns are future work, paper §5.6)"
                  x y))
      | _ -> ())
    (Stencil.offsets apply)

(** Swap descriptors needed by [apply] for its [input_index]-th operand. *)
let swaps_for (apply : op) (input_index : int) : Dmp.swap_desc list =
  let body = Stencil.apply_body apply in
  let arg = List.nth body.bargs input_index in
  let cb = Stencil.compute_bounds apply in
  let z_interior = match cb with [ _; _; z ] -> z | _ -> (0, 0) in
  let offsets =
    List.filter_map
      (fun o ->
        if o.opname = "stencil.access" && (operand o 0).vid = arg.vid then
          Some (dense_ints_exn o "offset")
        else None)
      body.bops
  in
  let per_direction dir =
    (* positive x offset reads data that lives to the east, etc. *)
    let selects off =
      match (dir, off) with
      | Dmp.East, x :: _ :: _ -> x > 0
      | Dmp.West, x :: _ :: _ -> x < 0
      | Dmp.North, _ :: y :: _ -> y > 0
      | Dmp.South, _ :: y :: _ -> y < 0
      | _ -> false
    in
    let dir_offsets = List.filter selects offsets in
    if dir_offsets = [] then None
    else begin
      let depth =
        List.fold_left
          (fun d off ->
            match off with
            | x :: y :: _ -> max d (max (abs x) (abs y))
            | _ -> d)
          0 dir_offsets
      in
      let z_offs = List.map (fun off -> List.nth off 2) dir_offsets in
      let z_min = List.fold_left min 0 z_offs
      and z_max = List.fold_left max 0 z_offs in
      let z_lo, z_hi = z_interior in
      Some { Dmp.dir; depth; z_lo = z_lo + z_min; z_hi = z_hi + z_max }
    end
  in
  List.filter_map per_direction Dmp.all_directions

(** Topology: one PE per interior (x, y) grid point. *)
let topology_of (apply : op) : int * int =
  match Stencil.compute_bounds apply with
  | (lx, ux) :: (ly, uy) :: _ -> (ux - lx, uy - ly)
  | _ -> invalid_arg "distribute-stencil: apply is not at least 2-D"

let distribute (m : op) : op =
  rewrite_nested
    (fun o ->
      if not (Stencil.is_apply o) then Keep
      else begin
        check_star_shaped o;
        let topo = topology_of o in
        let subst = Subst.create () in
        let swap_ops =
          List.concat
            (List.mapi
               (fun i input ->
                 match swaps_for o i with
                 | [] -> []
                 | swaps ->
                     let sw = Dmp.swap input ~topology:topo ~swaps in
                     Subst.add subst ~from:input ~to_:(result sw);
                     [ sw ])
               o.operands)
        in
        if swap_ops = [] then Keep
        else begin
          o.operands <- List.map (Subst.resolve subst) o.operands;
          Replace (swap_ops @ [ o ])
        end
      end)
    m;
  m

let distribute_pass = Wsc_ir.Pass.make "distribute-stencil" distribute

(** {1 tensorize-z} *)

let tensorize_typ = function
  | Temp ([ bx; by; (zl, zu) ], F32) -> Temp ([ bx; by ], Tensor ([ zu - zl ], F32))
  | Field ([ bx; by; (zl, zu) ], F32) -> Field ([ bx; by ], Tensor ([ zu - zl ], F32))
  | t -> t

(** Rewrite one apply body from 3D scalar form to 2D tensor form.
    [z_halo] is the z halo width, [nz] the z interior extent. *)
let tensorize_apply_body (apply : op) ~(z_halo : int) ~(nz : int) : unit =
  let zfull = nz + (2 * z_halo) in
  let body = Stencil.apply_body apply in
  let b = Wsc_ir.Builder.create () in
  let subst = Subst.create () in
  (* cache: one access op per (arg, dx, dy); one slice per (access, zoff) *)
  let access_cache : (int * int * int, value) Hashtbl.t = Hashtbl.create 8 in
  let slice_cache : (int * int, value) Hashtbl.t = Hashtbl.create 8 in
  let get_access (arg : value) dx dy =
    match Hashtbl.find_opt access_cache (arg.vid, dx, dy) with
    | Some v -> v
    | None ->
        let a = Stencil.access arg ~offset:[ dx; dy ] in
        (result a).vtyp <- Tensor ([ zfull ], F32);
        let v = Wsc_ir.Builder.insert b a in
        Hashtbl.replace access_cache (arg.vid, dx, dy) v;
        v
  in
  let get_slice (col : value) zoff =
    match Hashtbl.find_opt slice_cache (col.vid, zoff) with
    | Some v -> v
    | None ->
        let s = Tensor.extract_slice col ~offset:(z_halo + zoff) ~size:nz in
        let v = Wsc_ir.Builder.insert b s in
        Hashtbl.replace slice_cache (col.vid, zoff) v;
        v
  in
  let ret_handled = ref false in
  List.iter
    (fun o ->
      match o.opname with
      | "stencil.access" ->
          let arg = Subst.resolve subst (operand o 0) in
          (match dense_ints_exn o "offset" with
          | [ dx; dy; dz ] ->
              let col = get_access arg dx dy in
              let v = get_slice col dz in
              Subst.add subst ~from:(result o) ~to_:v
          | _ -> invalid_arg "tensorize-z: access is not 3-D")
      | "arith.constant" ->
          (* scalar f32 constants become dense splats over the interior *)
          (match ((result o).vtyp, attr o "value") with
          | F32, Some (Float_attr f) ->
              let c = Arith.constant_dense ~shape:[ nz ] f in
              Subst.add subst ~from:(result o) ~to_:(result c);
              Wsc_ir.Builder.insert0 b c
          | _ ->
              o.operands <- List.map (Subst.resolve subst) o.operands;
              Wsc_ir.Builder.insert0 b o)
      | "stencil.return" ->
          ret_handled := true;
          let rets = List.map (Subst.resolve subst) o.operands in
          (* wrap each returned interior column into a full column copied
             from the first input at offset zero (Dirichlet z boundary) *)
          let center = get_access (List.hd body.bargs) 0 0 in
          let h_ix = Wsc_ir.Builder.insert b (Arith.constant_index z_halo) in
          let full =
            List.map
              (fun r ->
                Wsc_ir.Builder.insert b
                  (Tensor.insert_slice ~src:r ~dst:center ~offset:h_ix))
              rets
          in
          Wsc_ir.Builder.insert0 b (Stencil.return_ full)
      | _ ->
          o.operands <- List.map (Subst.resolve subst) o.operands;
          List.iter (fun r -> if r.vtyp = F32 then r.vtyp <- Tensor ([ nz ], F32)) o.results;
          Wsc_ir.Builder.insert0 b o)
    body.bops;
  if not !ret_handled then invalid_arg "tensorize-z: apply body has no return";
  body.bops <- Wsc_ir.Builder.ops b

let tensorize (m : op) : op =
  (* per-apply body rewrite, using z metadata from the 3-D types *)
  walk_op
    (fun o ->
      if Stencil.is_apply o then begin
        match (result o).vtyp with
        | Temp ([ _; _; (zl, zu) ], F32) ->
            let cb = Stencil.compute_bounds o in
            let z_lo, z_hi = List.nth cb 2 in
            let nz = z_hi - z_lo in
            let z_halo = z_lo - zl in
            if zu - z_hi <> z_halo then
              invalid_arg "tensorize-z: asymmetric z halo unsupported";
            tensorize_apply_body o ~z_halo ~nz;
            set_attr o "z_halo" (Int_attr z_halo);
            set_attr o "z_interior" (Int_attr nz);
            set_attr o "compute_bounds"
              (Stencil.bounds_attr (List.filteri (fun i _ -> i < 2) cb))
        | _ -> ()
      end)
    m;
  (* global type conversion: every 3-D grid value becomes 2-D of tensors *)
  let convert_value v = v.vtyp <- tensorize_typ v.vtyp in
  let rec convert_op o =
    List.iter convert_value o.results;
    (match o.opname with
    | "func.func" ->
        (match attr o "function_type" with
        | Some (Type_attr (Function (ins, outs))) ->
            set_attr o "function_type"
              (Type_attr (Function (List.map tensorize_typ ins, List.map tensorize_typ outs)))
        | _ -> ())
    | _ -> ());
    List.iter
      (fun r ->
        List.iter
          (fun blk ->
            List.iter convert_value blk.bargs;
            List.iter convert_op blk.bops)
          r.blocks)
      o.regions
  in
  convert_op m;
  m

let tensorize_pass = Wsc_ir.Pass.make "stencil-tensorize-z-dimension" tensorize
