(** [linalg-fuse-multiply-add] (paper §5.7): rewrites a scalar multiply
    into a temporary followed by an accumulate into a single
    [linalg.fmac], which group 5 lowers to the [@fmacs] CSL builtin. *)

val run : Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val pass : Wsc_ir.Pass.t
