(** csl-stencil-wrap (paper §5.2): package the program into a
    [csl_wrapper.module], extracting the program-wide parameters the
    staged CSL compilation needs in the layout metaprogram. *)

exception Wrap_error of string

(** Parameters derived from the module's [csl_stencil.apply] ops.
    @raise Wrap_error when the module has none. *)
val program_params : ?name:string -> Wsc_ir.Ir.op -> Csl_wrapper.params

val run : ?name:string -> Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val pass : ?name:string -> unit -> Wsc_ir.Pass.t
