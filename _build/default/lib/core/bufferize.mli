(** Group 3 (paper §5.3): memory realization within a PE.  Rewrites the
    tensor-valued regions of [csl_stencil.apply] to reference semantics:
    memrefs, destination-passing-style [linalg] ops, in-place accumulator
    reuse, and automatic temporaries where an expression cannot be
    computed in place. *)

exception Bufferize_error of string

type options = {
  fuse_fmac : bool;
      (** emit [linalg.fmac] directly (paper §5.7); off produces the
          multiply + add shape for the standalone fuse pass / ablation *)
}

val default_options : options

val run : ?options:options -> Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val pass : ?options:options -> unit -> Wsc_ir.Pass.t
