(** Evaluator for bufferized (memref + linalg) region bodies.

    Shared reference semantics between the post-group-3 interpreter hook
    and tests: values are buffer views, integers or grids; linalg ops
    mutate their destination views in place, exactly as DSD builtins do
    on a PE. *)

open Wsc_ir.Ir
module I = Wsc_dialects.Interp

type cell =
  | Vbuf of Bufview.t
  | Vint of int
  | Vfloat of float
  | Vgrid of I.grid

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

type env = { cells : (int, cell) Hashtbl.t; mutable point : int list }

let new_env () = { cells = Hashtbl.create 64; point = [ 0; 0 ] }

let bind env (v : value) (c : cell) = Hashtbl.replace env.cells v.vid c

let lookup env (v : value) : cell =
  match Hashtbl.find_opt env.cells v.vid with
  | Some c -> c
  | None -> fail "buf_eval: unbound value %%%d" v.vid

let as_buf env v =
  match lookup env v with
  | Vbuf b -> b
  | _ -> fail "buf_eval: expected buffer"

let as_int env v =
  match lookup env v with
  | Vint i -> i
  | _ -> fail "buf_eval: expected int"

(** View of the z-column stored at [point + offset] in a grid of tensors. *)
let grid_column_view (g : I.grid) (point : int list) (offset : int list) : Bufview.t =
  let idx = List.map2 ( + ) point offset in
  let z = I.tensor_extent g.I.gelt in
  let flat = I.flat_index g idx in
  Bufview.make g.I.gdata ~off:(flat * z) ~len:z ()

(** Evaluate one block; returns the yield operands' cells. *)
let eval_block (env : env) (blk : block) : cell list =
  let yielded = ref [] in
  List.iter
    (fun o ->
      match o.opname with
      | "memref.alloc" ->
          let n = num_elements (Wsc_ir.Ir.result o).vtyp in
          bind env (result o) (Vbuf (Bufview.of_array (Array.make n 0.0)))
      | "memref.subview" ->
          let b = as_buf env (operand o 0) in
          bind env (result o)
            (Vbuf (Bufview.sub b ~off:(int_attr_exn o "offset") ~len:(int_attr_exn o "size")))
      | "memref.subview_dyn" ->
          let b = as_buf env (operand o 0) in
          let off = as_int env (operand o 1) in
          bind env (result o) (Vbuf (Bufview.sub b ~off ~len:(int_attr_exn o "size")))
      | "csl_stencil.access" -> (
          match lookup env (operand o 0) with
          | Vgrid g ->
              let off = dense_ints_exn o "offset" in
              bind env (result o) (Vbuf (grid_column_view g env.point off))
          | Vbuf b -> bind env (result o) (Vbuf b)
          | _ -> fail "csl_stencil.access: bad source")
      | "arith.constant" -> (
          match attr o "value" with
          | Some (Int_attr i) -> bind env (result o) (Vint i)
          | Some (Float_attr f) -> bind env (result o) (Vfloat f)
          | _ -> fail "buf_eval: bad constant")
      | "arith.addi" ->
          bind env (result o)
            (Vint (as_int env (operand o 0) + as_int env (operand o 1)))
      | "linalg.copy" ->
          Bufview.blit ~src:(as_buf env (operand o 0)) ~dst:(as_buf env (operand o 1))
      | "linalg.fill" ->
          Bufview.fill (as_buf env (operand o 0)) (float_attr_exn o "value")
      | "linalg.add" ->
          Bufview.map2_into ( +. )
            (as_buf env (operand o 0))
            (as_buf env (operand o 1))
            (as_buf env (operand o 2))
      | "linalg.sub" ->
          Bufview.map2_into ( -. )
            (as_buf env (operand o 0))
            (as_buf env (operand o 1))
            (as_buf env (operand o 2))
      | "linalg.mul" ->
          Bufview.map2_into ( *. )
            (as_buf env (operand o 0))
            (as_buf env (operand o 1))
            (as_buf env (operand o 2))
      | "linalg.div" ->
          Bufview.map2_into ( /. )
            (as_buf env (operand o 0))
            (as_buf env (operand o 1))
            (as_buf env (operand o 2))
      | "linalg.mul_scalar" ->
          let k = float_attr_exn o "scalar" in
          Bufview.map_into
            (fun x -> x *. k)
            (as_buf env (operand o 0))
            (as_buf env (operand o 1))
      | "linalg.add_scalar" ->
          let k = float_attr_exn o "scalar" in
          Bufview.map_into
            (fun x -> x +. k)
            (as_buf env (operand o 0))
            (as_buf env (operand o 1))
      | "linalg.fmac" ->
          Bufview.fmac_into
            (as_buf env (operand o 0))
            (as_buf env (operand o 1))
            (float_attr_exn o "scalar")
            (as_buf env (operand o 2))
      | "csl_stencil.yield" -> yielded := List.map (lookup env) o.operands
      | name -> fail "buf_eval: unsupported op %s" name)
    blk.bops;
  !yielded
