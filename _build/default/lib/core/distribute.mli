(** Group 1 transformations (paper §5.1).

    [distribute-stencil] decomposes x/y across the 2-D PE grid (one
    column per PE) and inserts [dmp.swap] halo exchanges before every
    apply, narrowing the z range to the columns actually read remotely.

    [tensorize-z] converts the 3-D grid of scalars into a 2-D grid of
    z-column tensors: accesses gain explicit slices for their z offset,
    scalar constants become dense splats, arithmetic becomes
    rank-polymorphic; [z_halo] / [z_interior] attrs record the column
    layout for the later groups. *)

exception Distribute_error of string

(** Reject diagonal (box-pattern) accesses: the communication library is
    star-shaped (paper §5.6).
    @raise Distribute_error on a diagonal offset. *)
val check_star_shaped : Wsc_ir.Ir.op -> unit

(** Swap descriptors needed by an apply for its n-th operand. *)
val swaps_for : Wsc_ir.Ir.op -> int -> Wsc_dialects.Dmp.swap_desc list

(** One PE per interior (x, y) point. *)
val topology_of : Wsc_ir.Ir.op -> int * int

val distribute : Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val distribute_pass : Wsc_ir.Pass.t

val tensorize : Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val tensorize_pass : Wsc_ir.Pass.t
