(** Evaluator for bufferized (memref + linalg) region bodies: values are
    buffer views, integers or grids; DPS ops mutate their destination
    views in place, exactly as DSD builtins do on a PE.  Shared reference
    semantics between the post-group-3 interpreter hook and tests. *)

open Wsc_ir.Ir

type cell =
  | Vbuf of Bufview.t
  | Vint of int
  | Vfloat of float
  | Vgrid of Wsc_dialects.Interp.grid

exception Eval_error of string

type env = {
  cells : (int, cell) Hashtbl.t;
  mutable point : int list;  (** current PE coordinates for grid accesses *)
}

val new_env : unit -> env
val bind : env -> value -> cell -> unit
val lookup : env -> value -> cell

(** View of the z-column stored at [point + offset] in a grid of
    tensors. *)
val grid_column_view :
  Wsc_dialects.Interp.grid -> int list -> int list -> Bufview.t

(** Evaluate one block; returns the yield operands' cells.
    @raise Eval_error on unbound values or unsupported ops. *)
val eval_block : env -> block -> cell list
