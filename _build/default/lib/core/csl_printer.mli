(** CSL source printer (paper §4.3): emits CSL code from csl-ir — the
    layout metaprogram, the PE program, and the runtime communication
    library that ships with every generated program. *)

exception Print_error of string

type file = { filename : string; contents : string }

(** Print one csl program module as CSL source. *)
val print_program : Wsc_ir.Ir.op -> string

(** Print one csl layout module as the placement metaprogram. *)
val print_layout : Wsc_ir.Ir.op -> string

(** The runtime communication library source (see {!Comms_csl}). *)
val comms_library_source : string

(** All files for a compiled module (layout, program, comms library). *)
val print_files : Wsc_ir.Ir.op -> file list

(** Non-empty source lines — the paper's LoC metric (Table 1). *)
val loc_of : string -> int
