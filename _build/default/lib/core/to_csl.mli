(** Group 5 (paper §5.5): lowering to the csl dialect — linalg ops to the
    DSD arithmetic builtins, memref views to DSD definitions, and the
    wrapper module to the (layout, program) pair of csl modules. *)

exception Csl_lowering_error of string

(** The layout metaprogram module generated from the wrapper params. *)
val layout_module : Csl_wrapper.params -> Wsc_ir.Ir.op

val run : Wsc_ir.Ir.op -> Wsc_ir.Ir.op
val pass : Wsc_ir.Pass.t
