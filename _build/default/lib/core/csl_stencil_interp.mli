(** Reference semantics for [csl_stencil.apply], registered into the
    sequential interpreter: per 2-D point, the receive-chunk region runs
    once per chunk with views of the neighbours' column slices
    (pre-scaled and distance-reduced when coefficients are promoted),
    then the done region combines the accumulator with local data.
    Handles both the tensor form (post group 2) and the bufferized form
    (post group 3). *)

(** Install the handler; idempotent.  {!Pipeline.compile} calls this, but
    code that interprets csl_stencil modules directly must call it
    first. *)
val register : unit -> unit
