(** CSL source printer (paper §4.3): emits CSL code from csl-ir.

    The csl dialect re-implements the subset of CSL the pipeline targets,
    so printing is a direct, local mapping: modules become [.csl] files,
    [csl.func]/[csl.task] become [fn]/[task] definitions, DSD ops become
    [@get_dsd]/[@increment_dsd_offset]/…, and the arithmetic builtins
    print as [@fadds]/[@fmacs]/….  The layout module prints as the
    metaprogram with its placement loop nest; the runtime communication
    library (§5.6) is emitted alongside the program. *)

open Wsc_ir.Ir

exception Print_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Print_error s)) fmt

type file = { filename : string; contents : string }

(** {1 Value naming} *)

type penv = {
  buf : Buffer.t;
  names : (int, string) Hashtbl.t;
  mutable next : int;
  mutable indent : int;
}

let new_penv () =
  { buf = Buffer.create 4096; names = Hashtbl.create 64; next = 0; indent = 0 }

let name_of env (v : value) : string =
  match Hashtbl.find_opt env.names v.vid with
  | Some n -> n
  | None -> fail "csl printer: value %%%d has no name" v.vid

let fresh env (v : value) (prefix : string) : string =
  let n = Printf.sprintf "%s%d" prefix env.next in
  env.next <- env.next + 1;
  Hashtbl.replace env.names v.vid n;
  n

let set_name env (v : value) (n : string) = Hashtbl.replace env.names v.vid n

let line env fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string env.buf (String.make (env.indent * 2) ' ');
      Buffer.add_string env.buf s;
      Buffer.add_char env.buf '\n')
    fmt

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

(** {1 Statement printing} *)

let rec print_block (env : penv) (blk : block) : unit =
  List.iter (print_op env) blk.bops

and print_op (env : penv) (o : op) : unit =
  match o.opname with
  | "csl.get_global" -> set_name env (result o) (string_attr_exn o "gname")
  | "csl.deref_ptr" -> set_name env (result o) (string_attr_exn o "gname")
  | "csl.load_scalar" -> set_name env (result o) (string_attr_exn o "gname")
  | "csl.store_scalar" ->
      line env "%s = %s;" (string_attr_exn o "gname") (name_of env (operand o 0))
  | "csl.get_mem_dsd" ->
      let base = name_of env (operand o 0) in
      let n = fresh env (result o) "dsd" in
      let len = int_attr_exn o "length" in
      let off = int_attr_exn o "offset" in
      if off = 0 then
        line env "var %s = @get_dsd(mem1d_dsd, .{ .tensor_access = |i|{%d} -> %s[i] });"
          n len base
      else
        line env
          "var %s = @get_dsd(mem1d_dsd, .{ .tensor_access = |i|{%d} -> %s[i + %d] });"
          n len base off
  | "csl.increment_dsd_offset" ->
      let base = name_of env (operand o 0) in
      let n = fresh env (result o) "dsd" in
      let by =
        match (int_attr o "by", o.operands) with
        | Some k, _ -> string_of_int k
        | None, [ _; v ] -> name_of env v
        | _ -> fail "increment_dsd_offset: no offset"
      in
      line env "var %s = @increment_dsd_offset(%s, %s, f32);" n base by
  | "csl.set_dsd_length" ->
      let base = name_of env (operand o 0) in
      let n = fresh env (result o) "dsd" in
      line env "var %s = @set_dsd_length(%s, %d);" n base (int_attr_exn o "length")
  | "csl.set_dsd_base_addr" ->
      let base = name_of env (operand o 0) in
      let addr = name_of env (operand o 1) in
      let n = fresh env (result o) "dsd" in
      line env "var %s = @set_dsd_base_addr(%s, &%s);" n base addr
  | "csl.fadds" | "csl.fsubs" | "csl.fmuls" | "csl.fmovs" ->
      let builtin = "@" ^ String.sub o.opname 4 (String.length o.opname - 4) in
      line env "%s(%s);" builtin
        (String.concat ", " (List.map (name_of env) o.operands))
  | "csl.fmacs" ->
      line env "@fmacs(%s);"
        (String.concat ", " (List.map (name_of env) o.operands))
  | "arith.constant" -> (
      match attr o "value" with
      | Some (Float_attr f) -> set_name env (result o) (float_lit f)
      | Some (Int_attr i) -> set_name env (result o) (string_of_int i)
      | _ -> fail "constant without value")
  | "arith.addi" ->
      let n = fresh env (result o) "v" in
      line env "const %s = %s + %s;" n
        (name_of env (operand o 0))
        (name_of env (operand o 1))
  | "arith.cmpi" ->
      let n = fresh env (result o) "v" in
      let opstr =
        match string_attr_exn o "predicate" with
        | "slt" -> "<"
        | "sle" -> "<="
        | "sgt" -> ">"
        | "sge" -> ">="
        | "eq" -> "=="
        | "ne" -> "!="
        | p -> fail "cmpi %s" p
      in
      line env "const %s = %s %s %s;" n
        (name_of env (operand o 0))
        opstr
        (name_of env (operand o 1))
  | "scf.if" ->
      line env "if (%s) {" (name_of env (operand o 0));
      env.indent <- env.indent + 1;
      print_block env (entry_block (region o 0));
      env.indent <- env.indent - 1;
      let else_blk = entry_block (region o 1) in
      if else_blk.bops <> [] then begin
        line env "} else {";
        env.indent <- env.indent + 1;
        print_block env else_blk;
        env.indent <- env.indent - 1
      end;
      line env "}"
  | "csl.call" -> line env "%s();" (string_attr_exn o "callee")
  | "csl.activate" ->
      line env "@activate(%s_id);" (string_attr_exn o "task")
  | "csl.assign_ptrs" ->
      let dests = Csl.string_list_attr o "dests" in
      let srcs = Csl.string_list_attr o "srcs" in
      List.iteri
        (fun i (d, s) ->
          ignore i;
          line env "const old_%s = %s;" d s)
        (List.combine dests srcs);
      List.iter (fun d -> line env "%s = old_%s;" d d) dests
  | "csl.member_call" -> (
      match string_attr_exn o "field" with
      | "communicate" ->
          let cfg = attr_exn o "config" in
          let dict = match cfg with Dict_attr d -> d | _ -> [] in
          let gets k =
            match List.assoc_opt k dict with
            | Some (String_attr s) -> s
            | _ -> "?"
          in
          let geti k =
            match List.assoc_opt k dict with Some (Int_attr i) -> i | _ -> 0
          in
          line env
            "comms.communicate(.{ .apply = %d, .z_base = %d, .nz = %d, .num_chunks = \
             %d, .chunk_size = %d, .chunk_cb = &%s, .done_cb = &%s });"
            (geti "apply_id") (geti "z_base") (geti "nz") (geti "num_chunks")
            (geti "chunk_size") (gets "chunk_cb") (gets "done_cb")
      | f -> fail "member_call %s" f)
  | "csl.unblock_cmd_stream" -> line env "sys_mod.unblock_cmd_stream();"
  | "csl.return" -> ()
  | name -> fail "csl printer: unsupported op %s" name

(** {1 Top-level printing} *)

let type_str = function
  | I16 -> "i16"
  | I32 -> "i32"
  | F32 -> "f32"
  | t -> fail "csl printer: unsupported param type %s" (Wsc_ir.Printer.typ_to_string t)

let print_func (env : penv) (o : op) : unit =
  let name = string_attr_exn o "sym_name" in
  let blk = entry_block (List.hd o.regions) in
  let args =
    List.mapi
      (fun i (a : value) ->
        let an = Printf.sprintf "arg%d" i in
        set_name env a an;
        Printf.sprintf "%s: %s" an (type_str a.vtyp))
      blk.bargs
  in
  line env "fn %s(%s) void {" name (String.concat ", " args);
  env.indent <- env.indent + 1;
  print_block env blk;
  env.indent <- env.indent - 1;
  line env "}";
  line env ""

let print_task (env : penv) (o : op) : unit =
  let name = string_attr_exn o "sym_name" in
  line env "task %s() void {" name;
  env.indent <- env.indent + 1;
  print_block env (entry_block (List.hd o.regions));
  env.indent <- env.indent - 1;
  line env "}";
  line env ""

(** Emit a program module as CSL source. *)
let print_program (program : op) : string =
  let env = new_penv () in
  let name = string_attr_exn program "sym_name" in
  line env "// %s.csl — generated by the wsc stencil pipeline" name;
  line env "param width: u16;";
  line env "param height: u16;";
  line env "param z_dim: u16;";
  line env "param pattern: u16;";
  line env "param num_chunks: u16;";
  line env "param chunk_size: u16;";
  line env "";
  let tasks = ref [] in
  List.iter
    (fun o ->
      match o.opname with
      | "csl.import_module" ->
          let m = string_attr_exn o "module" in
          let var =
            if m = "<memcpy/memcpy>" then "sys_mod"
            else if m = "stencil_comms" then "comms"
            else "mod"
          in
          set_name env (result o) var;
          if m = "stencil_comms" then
            line env
              "const %s = @import_module(\"%s.csl\", .{ .width = width, .height = \
               height, .pattern = pattern, .chunk_size = chunk_size });"
              var m
          else line env "const %s = @import_module(\"%s\");" var m
      | "csl.global_buffer" ->
          let n = string_attr_exn o "sym_name" in
          let size =
            match attr_exn o "type" with
            | Type_attr t -> num_elements t
            | _ -> 0
          in
          line env "var %s = @zeros([%d]f32);" n size
      | "csl.global_scalar" ->
          let n = string_attr_exn o "sym_name" in
          let init = match attr o "init" with Some (Int_attr i) -> i | _ -> 0 in
          line env "var %s: i32 = %d;" n init
      | "csl.ptr_global" ->
          line env "var %s: [*]f32 = &%s;" (string_attr_exn o "sym_name")
            (string_attr_exn o "target")
      | "csl.func" ->
          line env "";
          print_func env o;
          tasks := !tasks
      | "csl.task" ->
          line env "";
          print_task env o;
          tasks := !tasks @ [ (string_attr_exn o "sym_name", int_attr_exn o "id") ]
      | "csl.export" -> ()
      | name -> fail "csl printer: unexpected top-level op %s" name)
    (Csl.module_body program);
  line env "comptime {";
  env.indent <- env.indent + 1;
  List.iter
    (fun (t, id) ->
      line env "const %s_id = @get_local_task_id(%d);" t id;
      line env "@bind_local_task(%s, %s_id);" t t)
    !tasks;
  List.iter
    (fun o ->
      if o.opname = "csl.export" then
        line env "@export_symbol(%s);" (string_attr_exn o "name"))
    (Csl.module_body program);
  env.indent <- env.indent - 1;
  line env "}";
  Buffer.contents env.buf

(** Emit the layout metaprogram as CSL source: the placement loop nest the
    wrapper's layout region abstracts (paper §4.2). *)
let print_layout (layout : op) : string =
  let env = new_penv () in
  let name = string_attr_exn layout "sym_name" in
  line env "// %s.csl — generated layout metaprogram" name;
  List.iter
    (fun o ->
      match o.opname with
      | "csl.set_rectangle" ->
          line env "param width: u16 = %d;" (int_attr_exn o "width");
          line env "param height: u16 = %d;" (int_attr_exn o "height")
      | _ -> ())
    (Csl.module_body layout);
  line env "layout {";
  env.indent <- env.indent + 1;
  List.iter
    (fun o ->
      match o.opname with
      | "csl.set_rectangle" ->
          line env "@set_rectangle(width, height);"
      | "csl.place_pes" ->
          let file = string_attr_exn o "file" in
          let params =
            match attr_exn o "params" with
            | Dict_attr d ->
                String.concat ", "
                  (List.map
                     (fun (k, v) ->
                       match v with
                       | Int_attr i -> Printf.sprintf ".%s = %d" k i
                       | String_attr s -> Printf.sprintf ".%s = \"%s\"" k s
                       | _ -> Printf.sprintf ".%s = ?" k)
                     d)
            | _ -> ""
          in
          line env "for (@range(u16, width)) |x| {";
          env.indent <- env.indent + 1;
          line env "for (@range(u16, height)) |y| {";
          env.indent <- env.indent + 1;
          line env "@set_tile_code(x, y, \"%s\", .{ %s });" file params;
          env.indent <- env.indent - 1;
          line env "}";
          env.indent <- env.indent - 1;
          line env "}"
      | "csl.export" ->
          line env "@export_name(\"%s\", fn () void);" (string_attr_exn o "name")
      | name -> fail "layout printer: unexpected op %s" name)
    (Csl.module_body layout);
  env.indent <- env.indent - 1;
  line env "}";
  Buffer.contents env.buf

(** The runtime communication library (paper §5.6), emitted with every
    program.  Implements the partitionable star-pattern exchange of
    Jacquelin et al.: per-direction colors and switch configurations,
    chunked asynchronous sends and receives with internal tasks per
    direction, promoted-coefficient application on incoming data, and the
    user chunk/done callbacks. *)
let comms_library_source : string = Comms_csl.source

(** All files for a compiled module. *)
let print_files (compiled : op) : file list =
  match Wsc_dialects.Builtin.body compiled with
  | [ layout; program ] ->
      let pname = string_attr_exn program "sym_name" in
      let lname = string_attr_exn layout "sym_name" in
      [
        { filename = lname ^ ".csl"; contents = print_layout layout };
        { filename = pname ^ ".csl"; contents = print_program program };
        { filename = "stencil_comms.csl"; contents = comms_library_source };
      ]
  | _ -> fail "expected layout + program modules"

(** Non-empty source lines (the paper's LoC metric). *)
let loc_of (s : string) : int =
  List.length
    (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s))
