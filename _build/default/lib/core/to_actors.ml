(** Group 4 (paper §5.4): map to the actor execution model.

    Converts the synchronous program — a timestep loop (or straight-line
    sequence) of [csl_stencil.apply] ops — into the WSE's asynchronous
    task graph inside a [csl.module]:

    - each apply becomes a [communicate] call into the runtime
      communication library (§5.6) plus two software actors: a chunk
      callback (the receive-chunk region, run per arriving chunk) and a
      done callback (the done region, run once all chunks arrived);
    - the enclosing [scf.for] becomes a control-flow task graph of
      zero-parameter functions: a loop-condition function, the apply
      chain, and an advance task that rotates the grid buffer pointers
      and re-enters the condition — there is no top-level loop left,
      exactly as Figure 1 requires;
    - grids become global buffers addressed through pointer globals so
      that the end-of-step rotation is a pointer assignment;
    - per-PE memory use is checked against the 48 kB budget.

    The output bodies still use [memref] views and [linalg] compute ops;
    group 5 lowers those to DSDs and CSL builtins. *)

open Wsc_ir.Ir
module Scf = Wsc_dialects.Scf
module Arith = Wsc_dialects.Arith
module Dmp = Wsc_dialects.Dmp
module B = Wsc_ir.Builder

exception Actor_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Actor_error s)) fmt

let pe_memory_bytes = 48 * 1024
let reserved_program_bytes = 6 * 1024  (* code + stack + runtime reserve *)

type apply_info = {
  index : int;
  apply : op;
  cfg : Csl_stencil.apply_config;
  out_ptrs : string list;
      (** pointer globals its output buffers are reached through, one per
          result (several when stencil inlining passed values through) *)
}

(** Direction name used in receive-buffer naming. *)
let dir_name = Dmp.direction_to_string

(** The schedule extracted from the synchronous program. *)
type schedule = {
  n_state : int;
  zfull : int;
  nz : int;
  z_halo : int;
  trip_count : int;
  applies : apply_info list;
  ptr_of : int -> string;  (** value vid -> pointer global name *)
  advance_dests : string list;
  advance_srcs : string list;
  result_ptrs : string list;  (** per state slot, where the host reads results *)
}

let state_ptr i = Printf.sprintf "ptr_state%d" i

let out_ptr k j =
  if j = 0 then Printf.sprintf "ptr_out%d" k else Printf.sprintf "ptr_out%d_%d" k j
let buf_name i = Printf.sprintf "buf%d" i
let acc_name k = Printf.sprintf "acc%d" k
let rcv_name k i dir = Printf.sprintf "rcv%d_%d_%s" k i (dir_name dir)
let rcv_all_name k i = Printf.sprintf "rcv%d_%d_all" k i
let scratch_name k tag n = Printf.sprintf "scratch%d_%s%d" k tag n

(** Extract the schedule from the wrapped module's [main] function. *)
let extract_schedule (m : op) : schedule =
  let main =
    match Wsc_dialects.Func.lookup m "main" with
    | Some f -> f
    | None -> fail "no main function"
  in
  let body = Wsc_dialects.Func.entry main in
  let loads =
    List.filter (fun o -> o.opname = "stencil.load") body.bops
  in
  let n_state = List.length loads in
  if n_state = 0 then fail "main has no stencil.load ops";
  let zfull =
    match (result (List.hd loads)).vtyp with
    | Temp (_, Tensor ([ z ], _)) -> z
    | _ -> fail "state grids are not tensorized"
  in
  let ptr_table : (int, string) Hashtbl.t = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace ptr_table (result l).vid (state_ptr i)) loads;
  let for_ops = List.filter (fun o -> o.opname = "scf.for") body.bops in
  let apply_block, trip_count, advance =
    match for_ops with
    | [ f ] ->
        let n =
          match Scf.trip_count m f with
          | Some n -> n
          | None -> fail "timestep loop trip count is not a compile-time constant"
        in
        (* iter args inherit the pointer of the init value *)
        let inits = Scf.for_iter_inits f in
        let iter_args = Scf.for_iter_args f in
        List.iter2
          (fun init arg ->
            match Hashtbl.find_opt ptr_table init.vid with
            | Some p -> Hashtbl.replace ptr_table arg.vid p
            | None -> fail "loop iter init is not a loaded grid")
          inits iter_args;
        (Scf.for_body f, n, `Loop f)
    | [] -> (body, 1, `Straight)
    | _ -> fail "more than one timestep loop"
  in
  let applies =
    List.filter (fun o -> o.opname = "csl_stencil.apply") apply_block.bops
  in
  if applies = [] then fail "no csl_stencil.apply ops";
  let infos =
    List.mapi
      (fun k a ->
        let ptrs =
          List.mapi
            (fun j r ->
              let p = out_ptr k j in
              Hashtbl.replace ptr_table r.vid p;
              p)
            a.results
        in
        { index = k; apply = a; cfg = Csl_stencil.config_of a; out_ptrs = ptrs })
      applies
  in
  let ptr_of vid =
    match Hashtbl.find_opt ptr_table vid with
    | Some p -> p
    | None -> fail "no buffer pointer for value %%%d" vid
  in
  let advance_dests, advance_srcs =
    match advance with
    | `Straight -> ([], [])
    | `Loop f ->
        let yield =
          match terminator (Scf.for_body f) with
          | Some t when t.opname = "scf.yield" -> t
          | _ -> fail "loop has no yield"
        in
        let dests = List.init (List.length yield.operands) state_ptr in
        let srcs = List.map (fun v -> ptr_of v.vid) yield.operands in
        (* out pointers pick up whichever buffers the state no longer uses *)
        let all_ptrs = dests @ List.concat_map (fun i -> i.out_ptrs) infos in
        let leftovers =
          List.filter (fun p -> not (List.mem p srcs)) all_ptrs
        in
        let out_dests = List.concat_map (fun i -> i.out_ptrs) infos in
        if List.length leftovers < List.length out_dests then
          fail "buffer rotation: not enough free buffers";
        ( dests @ out_dests,
          srcs @ List.filteri (fun i _ -> i < List.length out_dests) leftovers )
  in
  (* result pointers: map each store back to a pointer *)
  let result_ptrs = Array.make n_state "" in
  let stores = List.filter (fun o -> o.opname = "stencil.store") body.bops in
  let field_args = (Wsc_dialects.Func.entry main).bargs in
  List.iter
    (fun st ->
      let src = operand st 0 and dst = operand st 1 in
      let slot =
        let rec go i = function
          | [] -> fail "store target is not a field argument"
          | a :: rest -> if a.vid = dst.vid then i else go (i + 1) rest
        in
        go 0 field_args
      in
      (* a store of the k-th loop result reads state pointer k after the
         final rotation *)
      let ptr =
        match for_ops with
        | [ f ] ->
            let rec idx i = function
              | [] -> None
              | r :: rest -> if r.vid = src.vid then Some i else idx (i + 1) rest
            in
            (match idx 0 f.results with
            | Some k -> state_ptr k
            | None -> ptr_of src.vid)
        | _ -> ptr_of src.vid
      in
      result_ptrs.(slot) <- ptr)
    stores;
  let z_halo = int_attr_exn (List.hd infos).apply "z_halo" in
  let nz = int_attr_exn (List.hd infos).apply "z_interior" in
  {
    n_state;
    zfull;
    nz;
    z_halo;
    trip_count;
    applies = infos;
    ptr_of;
    advance_dests;
    advance_srcs;
    result_ptrs = Array.to_list result_ptrs;
  }

(** {1 Global declarations} *)

let buffer_globals (s : schedule) : op list * int =
  let out_ptr_names = List.concat_map (fun i -> i.out_ptrs) s.applies in
  let n_bufs = s.n_state + List.length out_ptr_names in
  let bufs =
    List.init n_bufs (fun i -> Csl.global_buffer ~name:(buf_name i) ~size:s.zfull ())
  in
  let ptrs =
    List.init s.n_state (fun i ->
        Csl.ptr_global ~name:(state_ptr i) ~target:(buf_name i)
          ~buf_type:(Memref ([ s.zfull ], F32)))
    @ List.mapi
        (fun j p ->
          Csl.ptr_global ~name:p
            ~target:(buf_name (s.n_state + j))
            ~buf_type:(Memref ([ s.zfull ], F32)))
        out_ptr_names
  in
  (bufs @ ptrs, n_bufs * s.zfull * 4)

let comm_globals (s : schedule) : op list * int =
  let ops = ref [] and bytes = ref 0 in
  List.iter
    (fun info ->
      let cs = info.cfg.chunk_size in
      let promoted = info.cfg.coeffs <> [] in
      (* accumulator: z-sized when reduced on arrival, one slot per
         received distance-column in pack mode *)
      let acc_len = num_elements (Csl_stencil.acc_init info.apply).vtyp in
      ops := !ops @ [ Csl.global_buffer ~name:(acc_name info.index) ~size:acc_len () ];
      bytes := !bytes + (acc_len * 4);
      let one_shot = has_attr info.apply "one_shot" in
      List.iteri
        (fun i swaps ->
          if one_shot && swaps <> [] then begin
            (* one shared staging buffer for all directions of this input *)
            ops :=
              !ops @ [ Csl.global_buffer ~name:(rcv_all_name info.index i) ~size:cs () ];
            bytes := !bytes + (cs * 4)
          end
          else
            List.iter
              (fun (sw : Dmp.swap_desc) ->
                let size = if promoted then cs else sw.depth * cs in
                ops :=
                  !ops
                  @ [ Csl.global_buffer ~name:(rcv_name info.index i sw.dir) ~size () ];
                bytes := !bytes + (size * 4))
              swaps)
        info.cfg.swaps)
    s.applies;
  (!ops, !bytes)

(** {1 Region body lowering} *)

(** Direction and distance of a receive offset. *)
let dir_dist dx dy =
  if dx > 0 then (Dmp.East, dx)
  else if dx < 0 then (Dmp.West, -dx)
  else if dy > 0 then (Dmp.North, dy)
  else if dy < 0 then (Dmp.South, -dy)
  else fail "receive offset (0,0)"

(** Build @apply<K>_chunk(%offset): the receive-chunk actor body. *)
let build_chunk_func (info : apply_info) : op =
  let recv_blk = entry_block (Csl_stencil.recv_region info.apply) in
  let cfg = info.cfg in
  let n_args = List.length recv_blk.bargs in
  let acc_arg = List.nth recv_blk.bargs (n_args - 1) in
  let off_arg = List.nth recv_blk.bargs (n_args - 2) in
  let rcv_args = List.filteri (fun i _ -> i < cfg.comm_count) recv_blk.bargs in
  let rcv_index v =
    let rec go i = function
      | [] -> None
      | (a : value) :: rest -> if a.vid = v.vid then Some i else go (i + 1) rest
    in
    go 0 rcv_args
  in
  Csl.func ~name:(Printf.sprintf "apply%d_chunk" info.index) ~args:[ I16 ]
    (fun b args ->
      let off_val = List.hd args in
      let subst0 = Subst.create () in
      Subst.add subst0 ~from:off_arg ~to_:off_val;
      let acc_val =
        B.insert b
          (Csl.get_global ~name:(acc_name info.index)
             ~typ:(Memref ([ num_elements acc_arg.vtyp ], F32)))
      in
      Subst.add subst0 ~from:acc_arg ~to_:acc_val;
      let buf_cache = Hashtbl.create 8 in
      let scratch_count = ref 0 in
      let map_op (o : op) (subst : Subst.t) : value option =
        ignore subst;
        if o.opname = "memref.alloc" then begin
          let n = !scratch_count in
          incr scratch_count;
          Some
            (B.insert b
               (Csl.get_global
                  ~name:(scratch_name info.index "c" n)
                  ~typ:(result o).vtyp))
        end
        else if o.opname = "csl_stencil.access" then begin
          match rcv_index (operand o 0) with
          | Some i -> (
              match dense_ints_exn o "offset" with
              | [ 0; 0 ] ->
                  (* one-shot staging buffer *)
                  Some
                    (B.insert b
                       (Csl.get_global
                          ~name:(rcv_all_name info.index i)
                          ~typ:(Memref ([ cfg.chunk_size ], F32))))
              | [ dx; dy ] ->
                  let dir, dist = dir_dist dx dy in
                  let promoted = cfg.coeffs <> [] in
                  let name = rcv_name info.index i dir in
                  let key = (name, dist) in
                  (match Hashtbl.find_opt buf_cache key with
                  | Some v -> Some v
                  | None ->
                      let full_size =
                        if promoted then cfg.chunk_size
                        else
                          let sw =
                            List.find
                              (fun (s : Dmp.swap_desc) -> s.dir = dir)
                              (List.nth cfg.swaps i)
                          in
                          sw.depth * cfg.chunk_size
                      in
                      let g =
                        B.insert b
                          (Csl.get_global ~name ~typ:(Memref ([ full_size ], F32)))
                      in
                      let v =
                        if promoted then g
                        else
                          B.insert b
                            (Wsc_dialects.Memref_d.subview g
                               ~offset:((dist - 1) * cfg.chunk_size)
                               ~size:cfg.chunk_size)
                      in
                      Hashtbl.replace buf_cache key v;
                      Some v)
              | _ -> fail "chunk access with bad offset")
          | None -> fail "chunk access to a non-received view"
        end
        else None
      in
      (* seed the substitution with arg mappings, then lower the body *)
      let subst = subst0 in
      List.iter
        (fun o ->
          if o.opname = "csl_stencil.yield" then ()
          else
            match map_op o subst with
            | Some v -> Subst.add subst ~from:(result o) ~to_:v
            | None ->
                let c = clone_op subst o in
                B.insert0 b c)
        recv_blk.bops;
      B.insert0 b (Csl.return_ ()))

(** Build @apply<K>_done(): the local-compute actor body plus control-flow
    continuation. *)
let build_done_func (s : schedule) (info : apply_info) ~(next : string option) : op =
  let done_blk = entry_block (Csl_stencil.done_region info.apply) in
  let cfg = info.cfg in
  (* done args mirror operands: comm grids..., acc, local grids... *)
  let operand_for_arg =
    List.map2 (fun (a : value) o -> (a.vid, o)) done_blk.bargs info.apply.operands
  in
  (* the out buffers are the allocs yielded by the region, one per
     result; each maps to its output pointer *)
  let out_ptr_of_alloc =
    match terminator done_blk with
    | Some t when t.opname = "csl_stencil.yield" ->
        List.map2 (fun (v : value) p -> (v.vid, p)) t.operands info.out_ptrs
    | _ -> fail "done region has no yield"
  in
  let scratch_count = ref 0 in
  Csl.func ~name:(Printf.sprintf "apply%d_done" info.index) (fun b _ ->
      let subst = Subst.create () in
      (* bind grid and acc args *)
      List.iteri
        (fun i (a : value) ->
          if i = cfg.comm_count then begin
            let acc_val =
              B.insert b
                (Csl.get_global ~name:(acc_name info.index)
                   ~typ:(Memref ([ num_elements a.vtyp ], F32)))
            in
            Subst.add subst ~from:a ~to_:acc_val
          end
          else begin
            let oper = List.assoc a.vid operand_for_arg in
            let ptr = s.ptr_of oper.vid in
            let v =
              B.insert b (Csl.deref_ptr ~name:ptr ~typ:(Memref ([ s.zfull ], F32)))
            in
            Subst.add subst ~from:a ~to_:v
          end)
        done_blk.bargs;
      let map_op (o : op) (subst : Subst.t) : value option =
        if o.opname = "csl_stencil.access" then begin
          match dense_ints_exn o "offset" with
          | [ 0; 0 ] -> Some (Subst.resolve subst (operand o 0))
          | _ -> fail "done region accesses a remote offset"
        end
        else if o.opname = "memref.alloc" then begin
          match List.assoc_opt (result o).vid out_ptr_of_alloc with
          | Some ptr ->
              Some
                (B.insert b (Csl.deref_ptr ~name:ptr ~typ:(Memref ([ s.zfull ], F32))))
          | None -> begin
            (* bufferization fail-safe temporaries become global scratch *)
            let n = !scratch_count in
            incr scratch_count;
            Some
              (B.insert b
                 (Csl.get_global
                    ~name:(scratch_name info.index "d" n)
                    ~typ:(result o).vtyp))
          end
        end
        else None
      in
      List.iter
        (fun o ->
          if o.opname = "csl_stencil.yield" then ()
          else
            match map_op o subst with
            | Some v -> Subst.add subst ~from:(result o) ~to_:v
            | None ->
                let c = clone_op subst o in
                B.insert0 b c)
        done_blk.bops;
      (* continuation: next apply, or end-of-iteration advance *)
      (match next with
      | Some f -> B.insert0 b (Csl.call ~callee:f ())
      | None -> B.insert0 b (Csl.activate ~task:"advance"));
      B.insert0 b (Csl.return_ ()))

(** Scratch globals needed by a done region (same walk as above). *)
let scratch_globals (s : schedule) : op list * int =
  ignore s;
  let ops = ref [] and bytes = ref 0 in
  List.iter
    (fun info ->
      let done_blk = entry_block (Csl_stencil.done_region info.apply) in
      let recv_blk = entry_block (Csl_stencil.recv_region info.apply) in
      let out_alloc_vids =
        match terminator done_blk with
        | Some t -> List.map (fun (v : value) -> v.vid) t.operands
        | None -> []
      in
      List.iter
        (fun (tag, blk) ->
          let n = ref 0 in
          List.iter
            (fun o ->
              if
                o.opname = "memref.alloc"
                && not (List.mem (result o).vid out_alloc_vids)
              then begin
                let size = num_elements (result o).vtyp in
                ops :=
                  !ops
                  @ [
                      Csl.global_buffer ~name:(scratch_name info.index tag !n) ~size ();
                    ];
                bytes := !bytes + (size * 4);
                incr n
              end)
            blk.bops)
        [ ("d", done_blk); ("c", recv_blk) ])
    s.applies;
  (!ops, !bytes)

(** Config dict passed to the communicate call (consumed by the runtime
    communication library / simulator and printed as a comptime struct). *)
let communicate_config (s : schedule) (info : apply_info) : attr =
  let cfg = info.cfg in
  let swaps_attr =
    Array_attr
      (List.mapi
         (fun i swaps ->
           Dict_attr
             [
               ("send_ptr", String_attr (s.ptr_of (List.nth info.apply.operands i).vid));
               ("swaps", Dmp.swap_attr swaps);
               ( "rcv_bufs",
                 Array_attr
                   (List.map
                      (fun (sw : Dmp.swap_desc) ->
                        if has_attr info.apply "one_shot" then
                          String_attr (rcv_all_name info.index i)
                        else String_attr (rcv_name info.index i sw.dir))
                      swaps) );
             ])
         cfg.swaps)
  in
  let coeffs_attr =
    Array_attr
      (List.map
         (fun (i, dx, dy, c) ->
           Dict_attr
             [
               ("i", Int_attr i);
               ("dx", Int_attr dx);
               ("dy", Int_attr dy);
               ("c", Float_attr c);
             ])
         cfg.coeffs)
  in
  Dict_attr
    [
      ("apply_id", Int_attr info.index);
      ("inputs", swaps_attr);
      ("coeffs", coeffs_attr);
      ("z_base", Int_attr s.z_halo);
      ("nz", Int_attr s.nz);
      ("num_chunks", Int_attr cfg.num_chunks);
      ("chunk_size", Int_attr cfg.chunk_size);
      ("chunk_cb", String_attr (Printf.sprintf "apply%d_chunk" info.index));
      ("done_cb", String_attr (Printf.sprintf "apply%d_done" info.index));
    ]

let build_start_func (s : schedule) (info : apply_info) (comms : value) : op =
  Csl.func ~name:(Printf.sprintf "apply%d_start" info.index) (fun b _ ->
      let call =
        Csl.member_call ~struct_:comms ~field:"communicate" ()
      in
      set_attr call "config" (communicate_config s info);
      B.insert0 b call;
      B.insert0 b (Csl.return_ ()))

(** Lower the wrapped module: replace the program region's contents with
    the csl task graph. *)
let run (m : op) : op =
  if not (Csl_wrapper.is_module m) then fail "expected csl_wrapper.module at top level";
  let s = extract_schedule m in
  let params = Csl_wrapper.params_of m in
  let b = B.create () in
  let _memcpy =
    B.insert b (Csl.import_module ~name:"<memcpy/memcpy>")
  in
  let comms = B.insert b (Csl.import_module ~name:"stencil_comms") in
  let buf_ops, buf_bytes = buffer_globals s in
  let comm_ops, comm_bytes = comm_globals s in
  let scratch_ops, scratch_bytes = scratch_globals s in
  List.iter (B.insert0 b) (buf_ops @ comm_ops @ scratch_ops);
  let total = buf_bytes + comm_bytes + scratch_bytes + reserved_program_bytes in
  if total > pe_memory_bytes then
    fail "per-PE memory exceeded: %d bytes needed of %d (buffers %d, comm %d, scratch %d)"
      total pe_memory_bytes buf_bytes comm_bytes scratch_bytes;
  B.insert0 b
    (Csl.global_scalar ~name:"iteration" ~typ:I32 ~init:(Int_attr 0));
  (* apply actors *)
  let n_applies = List.length s.applies in
  List.iteri
    (fun k info ->
      B.insert0 b (build_start_func s info comms);
      B.insert0 b (build_chunk_func info);
      let next =
        if k + 1 < n_applies then Some (Printf.sprintf "apply%d_start" (k + 1))
        else None
      in
      B.insert0 b (build_done_func s info ~next))
    s.applies;
  (* loop condition *)
  B.insert0 b
    (Csl.func ~name:"loop_cond" (fun fb _ ->
         let i = B.insert fb (Csl.load_scalar ~name:"iteration" ~typ:I32) in
         let n = B.insert fb (Arith.constant_i s.trip_count) in
         let c = B.insert fb (Arith.cmpi ~pred:"slt" i n) in
         B.insert0 fb
           (Wsc_dialects.Scf.if_ ~cond:c ~results:[]
              (fun tb -> B.insert0 tb (Csl.call ~callee:"apply0_start" ()))
              (fun eb -> B.insert0 eb (Csl.unblock_cmd_stream ())));
         B.insert0 fb (Csl.return_ ())));
  (* advance task: rotate pointers, bump the counter, re-enter the loop *)
  B.insert0 b
    (Csl.task ~name:"advance" ~kind:Csl.Local_task ~id:10 (fun tb ->
         if s.advance_dests <> [] then
           B.insert0 tb (Csl.assign_ptrs ~dests:s.advance_dests ~srcs:s.advance_srcs);
         let i = B.insert tb (Csl.load_scalar ~name:"iteration" ~typ:I32) in
         let one = B.insert tb (Arith.constant_i 1) in
         let i' = B.insert tb (Arith.addi i one) in
         B.insert0 tb (Csl.store_scalar ~name:"iteration" i');
         B.insert0 tb (Csl.call ~callee:"loop_cond" ())));
  (* host entry *)
  B.insert0 b
    (Csl.func ~name:"run" (fun fb _ ->
         B.insert0 fb (Csl.call ~callee:"loop_cond" ());
         B.insert0 fb (Csl.return_ ())));
  B.insert0 b (Csl.export ~name:"run" ~kind:"fn");
  let program = Csl.module_ ~kind:Csl.Program ~name:params.program_name (B.ops b) in
  set_attr program "result_ptrs"
    (Array_attr (List.map (fun p -> String_attr p) s.result_ptrs));
  set_attr program "n_state" (Int_attr s.n_state);
  set_attr program "zfull" (Int_attr s.zfull);
  set_attr program "z_halo" (Int_attr s.z_halo);
  set_attr program "nz" (Int_attr s.nz);
  set_attr program "memory_bytes" (Int_attr total);
  (* the wrapper's program region now holds the csl program module *)
  m.regions <- [ Csl_wrapper.layout_region m; new_region [ new_block [ program ] ] ];
  m

let pass = Wsc_ir.Pass.make "lower-csl-stencil-to-csl" run
