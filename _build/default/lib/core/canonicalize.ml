(** Canonicalization: the greatest-common-denominator cleanups every
    MLIR-style pipeline runs between the interesting passes.

    - constant folding of float arithmetic with constant operands
      (including the algebraic identities x*1, x*0, x+0);
    - common-subexpression elimination of duplicate constants and of
      duplicate [stencil.access]/[tensor.extract_slice] ops (the frontends
      already CSE within one kernel, but stencil inlining re-materializes
      producer bodies per consumer access and leaves duplicates behind);
    - dead-code elimination of unused pure ops. *)

open Wsc_ir.Ir
module Arith = Wsc_dialects.Arith

let pure = function
  | "arith.constant" | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.cmpi"
  | "varith.add" | "varith.mul"
  | "stencil.access" | "csl_stencil.access"
  | "tensor.extract_slice" | "tensor.empty" ->
      true
  | _ -> false

(** Structural key for CSE: op name, attrs, operand ids.  Only pure,
    region-free ops participate. *)
let cse_key (o : op) : string option =
  if (not (pure o.opname)) || o.regions <> [] then None
  else
    Some
      (String.concat "|"
         (o.opname
          :: List.map (fun v -> string_of_int v.vid) o.operands
         @ List.map
             (fun (k, a) -> k ^ "=" ^ Format.asprintf "%a" Wsc_ir.Printer.pp_attr a)
             (List.sort compare o.attrs)))

let splat_shape (v : value) =
  match v.vtyp with Tensor (s, _) -> Some s | F32 -> Some [] | _ -> None

let mk_const shape (x : float) : op =
  match shape with
  | [] -> Arith.constant_f x
  | s -> Arith.constant_dense ~shape:s x

(** One folding / CSE sweep over a block; returns whether anything
    changed.  [consts] maps value ids to known constant values. *)
let sweep_block (root : op) (blk : block) : bool =
  let changed = ref false in
  let subst = Subst.create () in
  let consts : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let seen : (string, value) Hashtbl.t = Hashtbl.create 32 in
  rewrite_block
    (fun o ->
      o.operands <- List.map (Subst.resolve subst) o.operands;
      (* record constants *)
      (if Arith.is_constant o then
         match Arith.constant_value o with
         | Some x -> Hashtbl.replace consts (result o).vid x
         | None -> ());
      let const_of v = Hashtbl.find_opt consts v.vid in
      let fold =
        match (o.opname, o.operands) with
        | "arith.addf", [ a; b ] -> (
            match (const_of a, const_of b) with
            | Some x, Some y -> Some (`Const (x +. y))
            | Some 0.0, None -> Some (`Value b)
            | None, Some 0.0 -> Some (`Value a)
            | _ -> None)
        | "arith.subf", [ a; b ] -> (
            match (const_of a, const_of b) with
            | Some x, Some y -> Some (`Const (x -. y))
            | None, Some 0.0 -> Some (`Value a)
            | _ -> None)
        | "arith.mulf", [ a; b ] -> (
            match (const_of a, const_of b) with
            | Some x, Some y -> Some (`Const (x *. y))
            | Some 1.0, None -> Some (`Value b)
            | None, Some 1.0 -> Some (`Value a)
            | Some 0.0, None | None, Some 0.0 -> Some (`Const 0.0)
            | _ -> None)
        | "arith.divf", [ a; b ] -> (
            match (const_of a, const_of b) with
            | Some x, Some y when y <> 0.0 -> Some (`Const (x /. y))
            | None, Some 1.0 -> Some (`Value a)
            | _ -> None)
        | _ -> None
      in
      match fold with
      | Some (`Value v) ->
          changed := true;
          Subst.add subst ~from:(result o) ~to_:v;
          Erase
      | Some (`Const x) -> (
          match splat_shape (result o) with
          | Some shape ->
              changed := true;
              let c = mk_const shape x in
              Hashtbl.replace consts (result c).vid x;
              Subst.add subst ~from:(result o) ~to_:(result c);
              Replace [ c ]
          | None -> Keep)
      | None -> (
          (* CSE *)
          match cse_key o with
          | Some key -> (
              match Hashtbl.find_opt seen key with
              | Some earlier when earlier.vid <> (result o).vid ->
                  changed := true;
                  Subst.add subst ~from:(result o) ~to_:earlier;
                  Erase
              | _ ->
                  if o.results <> [] then Hashtbl.replace seen key (result o);
                  Keep)
          | None -> Keep))
    blk;
  Subst.apply_op subst root;
  !changed

let run (m : op) : op =
  let changed = ref true in
  while !changed do
    changed := false;
    walk_op
      (fun o ->
        List.iter
          (fun r ->
            List.iter (fun blk -> if sweep_block m blk then changed := true) r.blocks)
          o.regions)
      m;
    if dce ~pure m > 0 then changed := true
  done;
  m

let pass = Wsc_ir.Pass.make "canonicalize" run
