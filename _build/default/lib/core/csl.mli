(** The [csl] dialect — csl-ir (paper §4.3): a direct re-implementation
    of the CSL subset the pipeline targets.  {!Csl_printer} emits CSL
    source from it; the fabric simulator executes it. *)

open Wsc_ir.Ir

(** {1 Modules} *)

type module_kind = Program | Layout

val module_kind_to_string : module_kind -> string
val module_ : kind:module_kind -> name:string -> op list -> op
val module_kind_of : op -> module_kind
val module_body : op -> op list

(** {1 Imports and parameters} *)

val import_module : name:string -> op

(** Comptime parameter, specialized by the layout metaprogram. *)
val param : name:string -> typ:typ -> default:attr -> op

(** {1 Globals} *)

(** Zero-initialized global f32 buffer. *)
val global_buffer : name:string -> size:int -> ?elt:typ -> unit -> op

val global_scalar : name:string -> typ:typ -> init:attr -> op

(** Pointer variable, initially targeting buffer [target]. *)
val ptr_global : name:string -> target:string -> buf_type:typ -> op

val get_global : name:string -> typ:typ -> op
val load_scalar : name:string -> typ:typ -> op
val store_scalar : name:string -> value -> op

(** The buffer a pointer global currently targets. *)
val deref_ptr : name:string -> typ:typ -> op

(** Parallel pointer assignment — the end-of-timestep buffer rotation
    (double and triple buffering are special cases).
    @raise Invalid_argument on length mismatch. *)
val assign_ptrs : dests:string list -> srcs:string list -> op

(** A string-array attribute of an op (dests/srcs of assign_ptrs). *)
val string_list_attr : op -> string -> string list

(** {1 Functions and tasks} *)

val func :
  name:string ->
  ?args:typ list ->
  (Wsc_ir.Builder.t -> value list -> unit) ->
  op

type task_kind = Local_task | Data_task | Control_task

val task_kind_to_string : task_kind -> string
val task_kind_of_string : string -> task_kind

(** Task bound to hardware task id [id]. *)
val task : name:string -> kind:task_kind -> id:int -> (Wsc_ir.Builder.t -> unit) -> op

val call : callee:string -> ?args:value list -> ?results:typ list -> unit -> op

(** Schedule a local task for activation. *)
val activate : task:string -> op

val return_ : ?vals:value list -> unit -> op

(** Call a member of an imported module (e.g. the communication
    library); callback arguments are symbol attrs. *)
val member_call :
  struct_:value ->
  field:string ->
  ?args:value list ->
  ?callbacks:(string * string) list ->
  ?results:typ list ->
  unit ->
  op

(** Signal the host that the device program has finished. *)
val unblock_cmd_stream : unit -> op

(** {1 DSDs} *)

val get_mem_dsd : value -> offset:int -> length:int -> ?stride:int -> unit -> op
val increment_dsd_offset : value -> by:int -> op

(** Offset from an SSA value (chunk callbacks). *)
val increment_dsd_offset_by : value -> value -> op

val set_dsd_base_addr : value -> value -> op
val set_dsd_length : value -> length:int -> op

(** {1 DSD arithmetic builtins}

    DPS over DSD operands; sources may also be f32 scalars.
    [fmacs dest a b scale] computes [dest[i] = a[i] + b[i] * scale]. *)

val fadds : dest:value -> value -> value -> op
val fsubs : dest:value -> value -> value -> op
val fmuls : dest:value -> value -> value -> op
val fmacs : dest:value -> value -> value -> value -> op
val fmovs : dest:value -> value -> op
val builtin_ops : string list

(** {1 Layout ops} *)

val set_rectangle : width:int -> height:int -> op

(** The layout loop nest collapsed to one op: set_tile_code for every
    (x, y) of the rectangle (paper §4.2). *)
val place_pes : file:string -> params:(string * attr) list -> op

(** Export a symbol to the host runtime. *)
val export : name:string -> kind:string -> op
