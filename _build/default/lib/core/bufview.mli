(** Buffer views: the runtime representation shared by the bufferized-IR
    evaluator and the fabric simulator's DSD execution.  A view aliases a
    (possibly strided) slice of a backing array — what a memref subview or
    a mem1d DSD denotes on a PE. *)

type t = { data : float array; off : int; len : int; stride : int }

val of_array : float array -> t

(** @raise Invalid_argument when the view exceeds the backing array. *)
val make : float array -> off:int -> len:int -> ?stride:int -> unit -> t

(** Sub-view relative to [v]'s own indexing. *)
val sub : t -> off:int -> len:int -> t

val get : t -> int -> float
val set : t -> int -> float -> unit
val fill : t -> float -> unit
val to_array : t -> float array

(** @raise Invalid_argument on length mismatch (all functions below). *)
val blit : src:t -> dst:t -> unit

(** [map2_into f a b dst] — [dst.(i) <- f a.(i) b.(i)]; operands may
    alias [dst] (accumulator reuse relies on it). *)
val map2_into : (float -> float -> float) -> t -> t -> t -> unit

val map_into : (float -> float) -> t -> t -> unit

(** [fmac_into a b s dst] — [dst.(i) <- a.(i) +. b.(i) *. s], the
    semantics of CSL's [@fmacs]. *)
val fmac_into : t -> t -> float -> t -> unit
