lib/core/stencil_inlining.ml: Hashtbl List Option Subst Wsc_dialects Wsc_ir
