lib/core/buf_eval.mli: Bufview Hashtbl Wsc_dialects Wsc_ir
