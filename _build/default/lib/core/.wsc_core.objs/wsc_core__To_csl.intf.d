lib/core/to_csl.mli: Csl_wrapper Wsc_ir
