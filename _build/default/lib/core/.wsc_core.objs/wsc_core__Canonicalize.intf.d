lib/core/canonicalize.mli: Wsc_ir
