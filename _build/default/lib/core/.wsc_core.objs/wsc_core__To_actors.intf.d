lib/core/to_actors.mli: Wsc_ir
