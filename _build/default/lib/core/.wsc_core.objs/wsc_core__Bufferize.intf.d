lib/core/bufferize.mli: Wsc_ir
