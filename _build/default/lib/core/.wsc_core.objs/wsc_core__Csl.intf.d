lib/core/csl.mli: Wsc_ir
