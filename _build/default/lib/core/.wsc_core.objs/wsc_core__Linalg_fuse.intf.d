lib/core/linalg_fuse.mli: Wsc_ir
