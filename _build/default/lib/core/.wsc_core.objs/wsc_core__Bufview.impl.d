lib/core/bufview.ml: Array Printf
