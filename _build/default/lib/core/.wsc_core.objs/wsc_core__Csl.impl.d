lib/core/csl.ml: List String Wsc_ir
