lib/core/csl_stencil.ml: List Wsc_dialects Wsc_ir
