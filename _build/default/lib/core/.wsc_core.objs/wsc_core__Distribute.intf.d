lib/core/distribute.mli: Wsc_dialects Wsc_ir
