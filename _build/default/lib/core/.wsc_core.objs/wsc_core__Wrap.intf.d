lib/core/wrap.mli: Csl_wrapper Wsc_ir
