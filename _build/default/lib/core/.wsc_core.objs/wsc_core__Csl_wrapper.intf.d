lib/core/csl_wrapper.mli: Wsc_ir
