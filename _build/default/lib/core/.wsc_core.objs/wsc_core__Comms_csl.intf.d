lib/core/comms_csl.mli:
