lib/core/to_csl_stencil.ml: Csl_stencil Hashtbl List Option Printf Subst Wsc_dialects Wsc_ir
