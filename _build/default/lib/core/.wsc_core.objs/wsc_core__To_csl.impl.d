lib/core/to_csl.ml: Csl Csl_wrapper Hashtbl List Printf Subst Wsc_dialects Wsc_ir
