lib/core/to_csl_stencil.mli: Wsc_dialects Wsc_ir
