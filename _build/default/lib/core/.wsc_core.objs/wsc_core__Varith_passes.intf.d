lib/core/varith_passes.mli: Wsc_ir
