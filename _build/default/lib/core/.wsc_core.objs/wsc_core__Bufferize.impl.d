lib/core/bufferize.ml: Csl_stencil Hashtbl List Option Printf Subst Wsc_dialects Wsc_ir
