lib/core/pipeline.mli: Wsc_ir
