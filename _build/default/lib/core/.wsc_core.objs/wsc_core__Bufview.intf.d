lib/core/bufview.mli:
