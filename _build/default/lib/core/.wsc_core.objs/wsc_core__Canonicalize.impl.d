lib/core/canonicalize.ml: Format Hashtbl List String Subst Wsc_dialects Wsc_ir
