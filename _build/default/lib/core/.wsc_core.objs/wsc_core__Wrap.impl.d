lib/core/wrap.ml: Csl_stencil Csl_wrapper List Wsc_dialects Wsc_ir
