lib/core/csl_printer.ml: Buffer Comms_csl Csl Float Hashtbl List Printf String Wsc_dialects Wsc_ir
