lib/core/buf_eval.ml: Array Bufview Hashtbl List Printf Wsc_dialects Wsc_ir
