lib/core/csl_wrapper.ml: List Wsc_ir
