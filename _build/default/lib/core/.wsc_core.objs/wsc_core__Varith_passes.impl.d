lib/core/varith_passes.ml: Hashtbl List Option Subst Wsc_dialects Wsc_ir
