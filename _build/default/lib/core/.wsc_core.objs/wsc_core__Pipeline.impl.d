lib/core/pipeline.ml: Bufferize Canonicalize Csl_stencil_interp Distribute Linalg_fuse Stencil_inlining To_actors To_csl To_csl_stencil Varith_passes Wrap Wsc_dialects Wsc_ir
