lib/core/to_actors.ml: Array Csl Csl_stencil Csl_wrapper Hashtbl List Printf Subst Wsc_dialects Wsc_ir
