lib/core/csl_stencil.mli: Wsc_dialects Wsc_ir
