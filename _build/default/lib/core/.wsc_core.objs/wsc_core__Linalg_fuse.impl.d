lib/core/linalg_fuse.ml: Hashtbl List Option Wsc_dialects Wsc_ir
