lib/core/distribute.ml: Hashtbl List Printf Subst Wsc_dialects Wsc_ir
