lib/core/csl_stencil_interp.mli:
