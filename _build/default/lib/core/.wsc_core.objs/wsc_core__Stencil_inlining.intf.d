lib/core/stencil_inlining.mli: Wsc_ir
