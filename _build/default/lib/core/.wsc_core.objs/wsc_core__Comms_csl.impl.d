lib/core/comms_csl.ml: Buffer String
