lib/core/csl_printer.mli: Wsc_ir
