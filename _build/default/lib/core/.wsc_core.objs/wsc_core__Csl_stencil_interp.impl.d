lib/core/csl_stencil_interp.ml: Array Buf_eval Bufview Csl_stencil List Wsc_dialects Wsc_ir
