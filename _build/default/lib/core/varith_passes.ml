(** Varith optimization passes (paper §5.7).

    - [convert-arith-to-varith]: collapse chains of [arith.addf] /
      [arith.mulf] into variadic [varith.add] / [varith.mul], which keeps
      the additive structure of a stencil reduction explicit and easy to
      split between the remote-data and local-data regions.
    - [varith-fuse-repeated-operands]: replace [n] repeated additions of
      the same value by one multiplication by [n] (e.g. the Acoustic
      kernel, where three DSD additions become one multiplication).
    - [varith-to-arith]: expand any leftover varith ops back into binary
      arith form (used by consumers that predate varith). *)

open Wsc_ir.Ir
module Arith = Wsc_dialects.Arith
module Varith = Wsc_dialects.Varith

let def_map_of_block (b : block) : (int, op) Hashtbl.t =
  let h = Hashtbl.create 32 in
  List.iter (fun o -> List.iter (fun r -> Hashtbl.replace h r.vid o) o.results) b.bops;
  h

let pure_varith name = name = "varith.add" || name = "varith.mul"

(** {1 arith -> varith} *)

(** Within a block: addf/mulf trees whose intermediate results have a
    single use become variadic ops. *)
let to_varith_block (root : op) (b : block) : unit =
  let varith_name = function
    | "arith.addf" | "varith.add" -> Some "varith.add"
    | "arith.mulf" | "varith.mul" -> Some "varith.mul"
    | _ -> None
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let uses = use_counts root in
    let count v = Option.value (Hashtbl.find_opt uses v.vid) ~default:0 in
    let defs = def_map_of_block b in
    let subst = Subst.create () in
    (* first: binary arith -> varith *)
    rewrite_block
      (fun o ->
        match o.opname with
        | "arith.addf" | "arith.mulf" ->
            let name = Option.get (varith_name o.opname) in
            let nw = create_op name ~operands:o.operands ~results:[ (result o).vtyp ] in
            Subst.add subst ~from:(result o) ~to_:(result nw);
            changed := true;
            Replace [ nw ]
        | _ -> Keep)
      b;
    ignore defs;
    (* then: merge single-use varith operands of the same kind *)
    let defs = def_map_of_block b in
    rewrite_block
      (fun o ->
        if not (Varith.is_varith o) then Keep
        else begin
          let merged = ref false in
          let operands =
            List.concat_map
              (fun v ->
                match Hashtbl.find_opt defs v.vid with
                | Some d
                  when d.opname = o.opname && d.oid <> o.oid && count v = 1 ->
                    merged := true;
                    d.operands
                | _ -> [ v ])
              o.operands
          in
          if !merged then begin
            changed := true;
            let nw = create_op o.opname ~operands ~results:[ (result o).vtyp ] in
            Subst.add subst ~from:(result o) ~to_:(result nw);
            Replace [ nw ]
          end
          else Keep
        end)
      b;
    Subst.apply_op subst root;
    (* drop now-dead merged varith ops *)
    ignore (dce root ~pure:pure_varith)
  done

let to_varith (m : op) : op =
  walk_op
    (fun o ->
      if o.opname = "stencil.apply" || o.opname = "csl_stencil.apply" then
        List.iter (fun r -> List.iter (to_varith_block m) r.blocks) o.regions)
    m;
  ignore (dce m ~pure:pure_varith);
  m

let to_varith_pass = Wsc_ir.Pass.make "convert-arith-to-varith" to_varith

(** {1 varith-fuse-repeated-operands} *)

(** Count duplicate operands of a [varith.add]; [n >= 3] repeats of [v]
    become [n * v] (an [arith.mulf] by a splat constant), which the later
    fmac fusion folds into the surrounding computation. *)
let fuse_repeated_block (root : op) (b : block) : unit =
  let subst = Subst.create () in
  rewrite_block
    (fun o ->
      if o.opname <> "varith.add" then Keep
      else begin
        let groups = Hashtbl.create 8 in
        List.iter
          (fun v ->
            let c = Option.value (Hashtbl.find_opt groups v.vid) ~default:(v, 0) in
            Hashtbl.replace groups v.vid (v, snd c + 1))
          o.operands;
        let has_repeats = Hashtbl.fold (fun _ (_, c) acc -> acc || c >= 3) groups false in
        if not has_repeats then Keep
        else begin
          let new_ops = ref [] in
          let seen = Hashtbl.create 8 in
          let operands =
            List.concat_map
              (fun v ->
                let _, c = Hashtbl.find groups v.vid in
                if c < 3 then [ v ]
                else if Hashtbl.mem seen v.vid then []
                else begin
                  Hashtbl.replace seen v.vid ();
                  let shape = shape_of v.vtyp in
                  let cst =
                    if shape = [] then Arith.constant_f (float_of_int c)
                    else Arith.constant_dense ~shape (float_of_int c)
                  in
                  let mul = create_op "arith.mulf" ~operands:[ result cst; v ]
                      ~results:[ v.vtyp ] in
                  new_ops := !new_ops @ [ cst; mul ];
                  [ result mul ]
                end)
              o.operands
          in
          match operands with
          | [ single ] when !new_ops <> [] ->
              Subst.add subst ~from:(result o) ~to_:single;
              Replace !new_ops
          | _ ->
              let nw = create_op "varith.add" ~operands ~results:[ (result o).vtyp ] in
              Subst.add subst ~from:(result o) ~to_:(result nw);
              Replace (!new_ops @ [ nw ])
        end
      end)
    b;
  Subst.apply_op subst root

let fuse_repeated (m : op) : op =
  walk_op
    (fun o ->
      if o.opname = "stencil.apply" || o.opname = "csl_stencil.apply" then
        List.iter (fun r -> List.iter (fuse_repeated_block m) r.blocks) o.regions)
    m;
  m

let fuse_repeated_pass =
  Wsc_ir.Pass.make "varith-fuse-repeated-operands" fuse_repeated

(** {1 varith -> arith} *)

let from_varith (m : op) : op =
  let subst = Subst.create () in
  rewrite_nested
    (fun o ->
      match o.opname with
      | "varith.add" | "varith.mul" ->
          let bin = if o.opname = "varith.add" then "arith.addf" else "arith.mulf" in
          (match o.operands with
          | [] -> Erase
          | [ v ] ->
              Subst.add subst ~from:(result o) ~to_:v;
              Erase
          | first :: rest ->
              let ops = ref [] in
              let acc =
                List.fold_left
                  (fun acc v ->
                    let nw = create_op bin ~operands:[ acc; v ] ~results:[ acc.vtyp ] in
                    ops := !ops @ [ nw ];
                    result nw)
                  first rest
              in
              Subst.add subst ~from:(result o) ~to_:acc;
              Replace !ops)
      | _ -> Keep)
    m;
  Subst.apply_op subst m;
  m

let from_varith_pass = Wsc_ir.Pass.make "convert-varith-to-arith" from_varith
