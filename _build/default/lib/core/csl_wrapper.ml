(** The [csl_wrapper] dialect (paper §4.2).

    CSL compilation is staged: a layout metaprogram places and
    parameterizes per-PE programs.  [csl_wrapper.module] packages
    program-wide parameters, the layout region and the program region;
    it is domain-agnostic but is populated with stencil-specific
    parameters by the wrapping pass. *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

type params = {
  width : int;  (** PE grid width *)
  height : int;  (** PE grid height *)
  z_dim : int;  (** elements per PE column (with halo) *)
  pattern : int;  (** stencil radius + 1, the comm pattern extent *)
  num_chunks : int;
  chunk_size : int;
  program_name : string;
}

let params_attr (p : params) : attr =
  Dict_attr
    [
      ("width", Int_attr p.width);
      ("height", Int_attr p.height);
      ("z_dim", Int_attr p.z_dim);
      ("pattern", Int_attr p.pattern);
      ("num_chunks", Int_attr p.num_chunks);
      ("chunk_size", Int_attr p.chunk_size);
      ("program_name", String_attr p.program_name);
    ]

let params_of_attr = function
  | Dict_attr d ->
      let geti k =
        match List.assoc_opt k d with
        | Some (Int_attr i) -> i
        | _ -> invalid_arg ("csl_wrapper: missing int param " ^ k)
      in
      let gets k =
        match List.assoc_opt k d with
        | Some (String_attr s) -> s
        | _ -> invalid_arg ("csl_wrapper: missing string param " ^ k)
      in
      {
        width = geti "width";
        height = geti "height";
        z_dim = geti "z_dim";
        pattern = geti "pattern";
        num_chunks = geti "num_chunks";
        chunk_size = geti "chunk_size";
        program_name = gets "program_name";
      }
  | _ -> invalid_arg "csl_wrapper: params must be a dict"

(** [module_ ~params ~layout ~program]: region 0 controls layout across
    the WSE, region 1 holds the PE program. *)
let module_ ~(params : params) ~(layout : region) ~(program : region) : op =
  create_op "csl_wrapper.module" ~results:[]
    ~attrs:[ ("params", params_attr params) ]
    ~regions:[ layout; program ]

let is_module op = op.opname = "csl_wrapper.module"

let params_of (op : op) : params = params_of_attr (attr_exn op "params")

let layout_region (op : op) : region = List.nth op.regions 0
let program_region (op : op) : region = List.nth op.regions 1

(** [import name] — import a CSL library (e.g. memcpy) inside the module. *)
let import ~(name : string) : op =
  create_op "csl_wrapper.import" ~results:[ Struct name ]
    ~attrs:[ ("module", String_attr name) ]
    ~result_hints:[ name ]

let yield (vals : value list) : op =
  create_op "csl_wrapper.yield" ~operands:vals ~results:[]

let () =
  Verifier.register "csl_wrapper.module" (fun op ->
      if List.length op.regions <> 2 then
        Verifier.fail "csl_wrapper.module: layout and program regions required";
      ignore (params_of op))
