(** The [csl] dialect — csl-ir (paper §4.3).

    A direct re-implementation of the subset of the CSL programming
    language the pipeline targets: modules, comptime parameters, global
    buffers, functions, tasks, task activation, imported-module member
    calls, Data Structure Descriptors (DSDs) and the DSD arithmetic
    builtins.  The {!Csl_printer} emits CSL source from this dialect, and
    the fabric simulator in [wsc_wse] executes it directly. *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

(** {1 Modules} *)

type module_kind = Program | Layout

let module_kind_to_string = function Program -> "program" | Layout -> "layout"

let module_ ~(kind : module_kind) ~(name : string) (ops : op list) : op =
  create_op "csl.module" ~results:[]
    ~attrs:
      [
        ("kind", String_attr (module_kind_to_string kind));
        ("sym_name", String_attr name);
      ]
    ~regions:[ new_region [ new_block ops ] ]

let module_kind_of (op : op) : module_kind =
  match string_attr_exn op "kind" with
  | "program" -> Program
  | "layout" -> Layout
  | k -> invalid_arg ("csl.module: bad kind " ^ k)

let module_body (op : op) : op list = (entry_block (List.hd op.regions)).bops

(** {1 Imports and parameters} *)

let import_module ~(name : string) : op =
  create_op "csl.import_module" ~results:[ Struct name ]
    ~attrs:[ ("module", String_attr name) ]
    ~result_hints:[ String.map (fun c -> if c = '.' then '_' else c) name ]

(** Comptime parameter with a default; specialized by the layout file. *)
let param ~(name : string) ~(typ : typ) ~(default : attr) : op =
  create_op "csl.param" ~results:[ typ ]
    ~attrs:[ ("pname", String_attr name); ("default", default) ]
    ~result_hints:[ name ]

(** {1 Globals} *)

(** Global buffer of [size] f32 elements, zero-initialized. *)
let global_buffer ~(name : string) ~(size : int) ?(elt = F32) () : op =
  create_op "csl.global_buffer" ~results:[]
    ~attrs:[ ("sym_name", String_attr name); ("type", Type_attr (Memref ([ size ], elt))) ]

(** Mutable global scalar. *)
let global_scalar ~(name : string) ~(typ : typ) ~(init : attr) : op =
  create_op "csl.global_scalar" ~results:[]
    ~attrs:[ ("sym_name", String_attr name); ("type", Type_attr typ); ("init", init) ]

(** Global pointer variable, initially pointing at buffer [target]. *)
let ptr_global ~(name : string) ~(target : string) ~(buf_type : typ) : op =
  create_op "csl.ptr_global" ~results:[]
    ~attrs:
      [
        ("sym_name", String_attr name);
        ("target", String_attr target);
        ("type", Type_attr (Ptr (buf_type, Ptr_many)));
      ]

let get_global ~(name : string) ~(typ : typ) : op =
  create_op "csl.get_global" ~results:[ typ ]
    ~attrs:[ ("gname", String_attr name) ]
    ~result_hints:[ name ]

let load_scalar ~(name : string) ~(typ : typ) : op =
  create_op "csl.load_scalar" ~results:[ typ ] ~attrs:[ ("gname", String_attr name) ]

let store_scalar ~(name : string) (v : value) : op =
  create_op "csl.store_scalar" ~operands:[ v ] ~results:[]
    ~attrs:[ ("gname", String_attr name) ]

(** Dereference a pointer global: yields the buffer it currently targets. *)
let deref_ptr ~(name : string) ~(typ : typ) : op =
  create_op "csl.deref_ptr" ~results:[ typ ]
    ~attrs:[ ("gname", String_attr name) ]
    ~result_hints:[ name ]

(** Parallel pointer assignment: [dests.(i) := old value of srcs.(i)] —
    the general buffer rotation at the end of a timestep (double and
    triple buffering are special cases). *)
let assign_ptrs ~(dests : string list) ~(srcs : string list) : op =
  if List.length dests <> List.length srcs then
    invalid_arg "csl.assign_ptrs: length mismatch";
  create_op "csl.assign_ptrs" ~results:[]
    ~attrs:
      [
        ("dests", Array_attr (List.map (fun s -> String_attr s) dests));
        ("srcs", Array_attr (List.map (fun s -> String_attr s) srcs));
      ]

let string_list_attr op name =
  match attr_exn op name with
  | Array_attr l ->
      List.map (function String_attr s -> s | _ -> invalid_arg "expected strings") l
  | _ -> invalid_arg "expected string array"

(** {1 Functions and tasks} *)

let func ~(name : string) ?(args = []) (body : Wsc_ir.Builder.t -> value list -> unit)
    : op =
  let region = Wsc_ir.Builder.region_with_args args body in
  create_op "csl.func" ~results:[]
    ~attrs:[ ("sym_name", String_attr name) ]
    ~regions:[ region ]

type task_kind = Local_task | Data_task | Control_task

let task_kind_to_string = function
  | Local_task -> "local"
  | Data_task -> "data"
  | Control_task -> "control"

let task_kind_of_string = function
  | "local" -> Local_task
  | "data" -> Data_task
  | "control" -> Control_task
  | s -> invalid_arg ("csl.task: bad kind " ^ s)

(** Task bound to hardware task id [id]. *)
let task ~(name : string) ~(kind : task_kind) ~(id : int)
    (body : Wsc_ir.Builder.t -> unit) : op =
  let region = Wsc_ir.Builder.region_no_args (fun b -> body b) in
  create_op "csl.task" ~results:[]
    ~attrs:
      [
        ("sym_name", String_attr name);
        ("kind", String_attr (task_kind_to_string kind));
        ("id", Int_attr id);
      ]
    ~regions:[ region ]

let call ~(callee : string) ?(args = []) ?(results = []) () : op =
  create_op "csl.call" ~operands:args ~results
    ~attrs:[ ("callee", Symbol_ref callee) ]

(** Activate a local task: it will run once the current task yields. *)
let activate ~(task : string) : op =
  create_op "csl.activate" ~results:[] ~attrs:[ ("task", Symbol_ref task) ]

let return_ ?(vals = []) () : op = create_op "csl.return" ~operands:vals ~results:[]

(** Call a member function of an imported module value, e.g. the
    communication library.  Callback arguments are symbol attrs. *)
let member_call ~(struct_ : value) ~(field : string) ?(args = [])
    ?(callbacks : (string * string) list = []) ?(results = []) () : op =
  create_op "csl.member_call"
    ~operands:(struct_ :: args)
    ~results
    ~attrs:
      (("field", String_attr field)
      :: List.map (fun (k, v) -> (k, Symbol_ref v)) callbacks)

(** Signal the host that the device program has finished. *)
let unblock_cmd_stream () : op =
  create_op "csl.unblock_cmd_stream" ~results:[]

(** {1 DSDs} *)

(** 1-D memory DSD over [length] elements of [buf] starting at [offset]
    with [stride]. *)
let get_mem_dsd (buf : value) ~(offset : int) ~(length : int) ?(stride = 1) () : op =
  create_op "csl.get_mem_dsd" ~operands:[ buf ]
    ~results:[ Dsd Mem1d ]
    ~attrs:
      [ ("offset", Int_attr offset); ("length", Int_attr length); ("stride", Int_attr stride) ]

let increment_dsd_offset (dsd : value) ~(by : int) : op =
  create_op "csl.increment_dsd_offset" ~operands:[ dsd ]
    ~results:[ Dsd Mem1d ]
    ~attrs:[ ("by", Int_attr by) ]

(** Dynamic variant: offset comes from an SSA value (chunk callbacks). *)
let increment_dsd_offset_by (dsd : value) (by : value) : op =
  create_op "csl.increment_dsd_offset" ~operands:[ dsd; by ] ~results:[ Dsd Mem1d ]

let set_dsd_base_addr (dsd : value) (buf : value) : op =
  create_op "csl.set_dsd_base_addr" ~operands:[ dsd; buf ] ~results:[ Dsd Mem1d ]

let set_dsd_length (dsd : value) ~(length : int) : op =
  create_op "csl.set_dsd_length" ~operands:[ dsd ]
    ~results:[ Dsd Mem1d ]
    ~attrs:[ ("length", Int_attr length) ]

(** {1 DSD arithmetic builtins}

    DPS over DSD operands; sources may be DSDs or f32 scalar SSA values
    (CSL allows mixing).  [fmacs dest a b scale] computes
    [dest[i] = a[i] + b[i] * scale]. *)

let fadds ~(dest : value) (a : value) (b : value) : op =
  create_op "csl.fadds" ~operands:[ dest; a; b ] ~results:[]

let fsubs ~(dest : value) (a : value) (b : value) : op =
  create_op "csl.fsubs" ~operands:[ dest; a; b ] ~results:[]

let fmuls ~(dest : value) (a : value) (b : value) : op =
  create_op "csl.fmuls" ~operands:[ dest; a; b ] ~results:[]

let fmacs ~(dest : value) (a : value) (b : value) (scale : value) : op =
  create_op "csl.fmacs" ~operands:[ dest; a; b; scale ] ~results:[]

let fmovs ~(dest : value) (a : value) : op =
  create_op "csl.fmovs" ~operands:[ dest; a ] ~results:[]

let builtin_ops = [ "csl.fadds"; "csl.fsubs"; "csl.fmuls"; "csl.fmacs"; "csl.fmovs" ]

(** {1 Layout ops} *)

let set_rectangle ~(width : int) ~(height : int) : op =
  create_op "csl.set_rectangle" ~results:[]
    ~attrs:[ ("width", Int_attr width); ("height", Int_attr height) ]

(** Uniform placement: set_tile_code for every (x, y) of the rectangle —
    the layout loop nest collapsed to a single op (paper §4.2). *)
let place_pes ~(file : string) ~(params : (string * attr) list) : op =
  create_op "csl.place_pes" ~results:[]
    ~attrs:[ ("file", String_attr file); ("params", Dict_attr params) ]

(** Export a symbol to the host runtime. *)
let export ~(name : string) ~(kind : string) : op =
  create_op "csl.export" ~results:[]
    ~attrs:[ ("name", String_attr name); ("kind", String_attr kind) ]

(** {1 Verifiers} *)

let () =
  Verifier.register "csl.module" (fun op ->
      ignore (module_kind_of op);
      if List.length op.regions <> 1 then Verifier.fail "csl.module: one region");
  Verifier.register "csl.task" (fun op ->
      ignore (task_kind_of_string (string_attr_exn op "kind")));
  Verifier.register "csl.get_mem_dsd" (fun op ->
      if int_attr_exn op "length" < 0 then Verifier.fail "csl.get_mem_dsd: bad length");
  List.iter
    (fun name ->
      Verifier.register name (fun op ->
          match op.operands with
          | dest :: _ ->
              if dest.vtyp <> Dsd Mem1d then
                Verifier.fail "%s: destination must be a mem1d DSD" name
          | [] -> Verifier.fail "%s: missing operands" name))
    builtin_ops
