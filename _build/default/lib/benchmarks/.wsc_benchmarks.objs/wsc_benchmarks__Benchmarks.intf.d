lib/benchmarks/benchmarks.mli: Wsc_frontends
