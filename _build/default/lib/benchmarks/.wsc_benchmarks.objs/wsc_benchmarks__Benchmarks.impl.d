lib/benchmarks/benchmarks.ml: List Printf String Wsc_frontends
