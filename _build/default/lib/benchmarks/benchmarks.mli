(** The five paper benchmarks (§6), each expressed through its frontend:
    Jacobian via mini-Flang (from Fortran source), Diffusion and Acoustic
    via mini-Devito, the 25-point Seismic directly as a stencil program,
    and UVKBE via mini-PSyclone. *)

module P = Wsc_frontends.Stencil_program

type size =
  | Tiny  (** 4×4, small z, few iterations — simulator correctness tests *)
  | Small  (** 100×100 (paper) *)
  | Medium  (** 500×500 (paper) *)
  | Large  (** 750×994, the full WSE2 rectangle (paper) *)
  | Proxy of int * int
      (** custom PE extents with the benchmark's real z — used by the
          harness to measure steady-state per-PE behaviour *)

val size_to_string : size -> string
val xy_extents : size -> int * int

val jacobian : ?iterations:int -> size -> P.t
val diffusion : ?iterations:int -> size -> P.t
val acoustic : ?iterations:int -> size -> P.t
val seismic : ?iterations:int -> size -> P.t
val uvkbe : ?iterations:int -> size -> P.t

(** The Fortran source the Jacobian benchmark is parsed from. *)
val jacobian_source : string

type descr = {
  id : string;
  frontend : string;
  z_extent : int;  (** large-size z extent, as in the paper *)
  default_iterations : int;
  flops_per_point : int;
  make : size -> P.t;
  make_n : size -> int -> P.t;  (** explicit iteration count *)
}

val all : descr list

(** @raise Invalid_argument for unknown ids. *)
val find : string -> descr
