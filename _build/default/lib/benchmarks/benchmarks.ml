(** The five paper benchmarks (§6), each expressed through its frontend:

    - Jacobian — Fortran source through mini-Flang
    - Diffusion, Acoustic — symbolic equations through mini-Devito
    - 25-point Seismic — direct stencil construction (the paper's version
      is hand-translated from CSL, i.e. enters the pipeline as stencil IR)
    - UVKBE — kernel metadata through mini-PSyclone *)

module P = Wsc_frontends.Stencil_program
module Flang = Wsc_frontends.Flang_fe
module Devito = Wsc_frontends.Devito_fe
module Psyclone = Wsc_frontends.Psyclone_fe

type size =
  | Tiny
  | Small
  | Medium
  | Large
  | Proxy of int * int
      (** custom PE-grid extents with the real z extent — used by the
          benchmark harness to measure steady-state per-PE behaviour on a
          small grid and extrapolate to the full wafer *)

let size_to_string = function
  | Tiny -> "tiny"
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"
  | Proxy (x, y) -> Printf.sprintf "proxy%dx%d" x y

(** X/Y extents per problem size (paper §6); Tiny is ours, for simulator
    correctness tests. *)
let xy_extents = function
  | Tiny -> (4, 4)
  | Small -> (100, 100)
  | Medium -> (500, 500)
  | Large -> (750, 994)
  | Proxy (x, y) -> (x, y)

(** {1 Jacobian (Flang)} — 3D 6-point Laplace solver, z = 900. *)

let jacobian_source =
  {|
real :: u(0:nx+1, 0:ny+1, 0:nz+1)
real :: un(0:nx+1, 0:ny+1, 0:nz+1)
do step = 1, 100000
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        un(i,j,k) = 0.16666666 * (u(i-1,j,k) + u(i+1,j,k) + u(i,j-1,k) &
                  + u(i,j+1,k) + u(i,j,k-1) + u(i,j,k+1))
      end do
    end do
  end do
  u = un
end do
|}

(* The free-form continuation '&' is not in the mini-Flang grammar; join
   continued lines before parsing. *)
let join_continuations src =
  String.concat ""
    (List.map
       (fun line ->
         let t = String.trim line in
         if String.length t > 0 && t.[String.length t - 1] = '&' then
           String.sub t 0 (String.length t - 1)
         else line ^ "\n")
       (String.split_on_char '\n' src))

let jacobian ?iterations (size : size) : P.t =
  let nx, ny = xy_extents size in
  let nz = match size with Tiny -> 6 | _ -> 900 in
  let iterations =
    match (size, iterations) with
    | Tiny, None -> Some 3
    | _, it -> it
  in
  Flang.compile ~name:"jacobian" ~extents:(nx, ny, nz) ?iterations
    (join_continuations jacobian_source)

(** {1 Diffusion (Devito)} — 3D 13-point heat equation, z = 704. *)

let diffusion_python_loc = 40
(* the paper's Table 1 reports 40 lines of Devito python for Diffusion *)

let diffusion ?iterations (size : size) : P.t =
  let nx, ny = xy_extents size in
  let nz = match size with Tiny -> 6 | _ -> 704 in
  let iterations =
    match (iterations, size) with
    | Some n, _ -> n
    | None, Tiny -> 2
    | None, _ -> 512
  in
  let g = Devito.grid ~shape:(nx, ny, nz) "grid" in
  let u = Devito.time_function ~space_order:4 ~grid:g "u" in
  let alpha_dt = 0.05 in
  let open Devito in
  operator ~name:"diffusion" ~iterations ~dsl_loc:diffusion_python_loc
    [ eq (forward u) (fn u + (num alpha_dt * laplace (fn u))) ]

(** {1 Acoustic (Devito)} — isotropic acoustic wave equation, 2nd order in
    time, 3D 13-point, z = 604. *)

let acoustic_python_loc = 81

let acoustic ?iterations (size : size) : P.t =
  let nx, ny = xy_extents size in
  let nz = match size with Tiny -> 6 | _ -> 604 in
  let iterations =
    match (iterations, size) with
    | Some n, _ -> n
    | None, Tiny -> 2
    | None, _ -> 512
  in
  let g = Devito.grid ~shape:(nx, ny, nz) "grid" in
  let u = Devito.time_function ~time_order:2 ~space_order:4 ~grid:g "u" in
  let c2_dt2 = 0.1 in
  let open Devito in
  operator ~name:"acoustic" ~iterations ~dsl_loc:acoustic_python_loc
    [ eq (forward u) ((num 2.0 * fn u) - backward u + (num c2_dt2 * laplace (fn u))) ]

(** {1 25-point Seismic (Cerebras)} — 8th-order star stencil for seismic
    modelling, translated from the hand-written CSL kernel of Jacquelin et
    al.; z = 450.  Entered directly as a stencil program (the "frontend"
    is stencil IR itself). *)

let seismic_dsl_loc = 81

let seismic ?iterations (size : size) : P.t =
  let nx, ny = xy_extents size in
  let nz = match size with Tiny -> 10 | _ -> 450 in
  let iterations =
    match (iterations, size) with
    | Some n, _ -> n
    | None, Tiny -> 2
    | None, _ -> 100_000
  in
  let coeffs = Devito.deriv2_coeffs 8 in
  let c2_dt2 = 0.08 in
  (* u_next = 2u - u_prev + c2_dt2 * (8th-order laplacian u) *)
  let axis dim =
    List.map
      (fun (off, c) ->
        let o = List.init 3 (fun d -> if d = dim then off else 0) in
        P.Mul (P.Const (c *. c2_dt2), P.Access ("u", o)))
      coeffs
  in
  let terms = axis 0 @ axis 1 @ axis 2 in
  let lap = List.fold_left (fun acc t -> P.Add (acc, t)) (List.hd terms) (List.tl terms) in
  let expr =
    P.Add
      ( P.Sub (P.Mul (P.Const 2.0, P.Access ("u", [ 0; 0; 0 ])), P.Access ("u_prev", [ 0; 0; 0 ])),
        lap )
  in
  let prog =
    {
      P.pname = "seismic";
      frontend = "csl";
      extents = (nx, ny, nz);
      halo = 4;
      state = [ "u_prev"; "u" ];
      kernels = [ { P.kname = "seismic_update"; output = "u_next"; expr } ];
      next_state = [ "u"; "u_next" ];
      iterations;
      use_loop = true;
      dsl_loc = seismic_dsl_loc;
    }
  in
  prog

(** {1 UVKBE (PSyclone)} — four fields, two communicated, two consecutive
    applies; a single iteration; z = 600. *)

let uvkbe_dsl_loc = 44

let uvkbe ?(iterations = 1) (size : size) : P.t =
  let nx, ny = xy_extents size in
  let nz = match size with Tiny -> 6 | _ -> 600 in
  let open Psyclone in
  let sq g off = P.Mul (P.Access (g, off), P.Access (g, off)) in
  (* kinetic-energy kernel: reads u, v with a depth-1 cross stencil *)
  let ke_kernel =
    kernel ~name:"ke_kern"
      ~meta:
        [
          { field = "u"; access = Gh_read; shape = Cross 1 };
          { field = "v"; access = Gh_read; shape = Cross 1 };
          { field = "ke"; access = Gh_write; shape = Pointwise };
        ]
      ~body:
        (P.Mul
           ( P.Const 0.25,
             P.Add
               ( P.Add (sq "u" [ 0; 0; 0 ], sq "u" [ -1; 0; 0 ]),
                 P.Add (sq "v" [ 0; 0; 0 ], sq "v" [ 0; -1; 0 ]) ) ))
  in
  (* velocity update consuming the kinetic energy locally, plus
     local-only fields — u and v are the two communicated fields *)
  let dt = 0.01 in
  let u_update =
    kernel ~name:"u_update_kern"
      ~meta:
        [
          { field = "u"; access = Gh_read; shape = Pointwise };
          { field = "ke"; access = Gh_read; shape = Pointwise };
          { field = "ssh"; access = Gh_read; shape = Pointwise };
          { field = "h"; access = Gh_read; shape = Pointwise };
          { field = "u_next"; access = Gh_write; shape = Pointwise };
        ]
      ~body:
        (P.Add
           ( P.Sub
               ( P.Access ("u", [ 0; 0; 0 ]),
                 P.Mul (P.Const dt, P.Access ("ke", [ 0; 0; 0 ])) ),
             P.Mul (P.Access ("ssh", [ 0; 0; 0 ]), P.Access ("h", [ 0; 0; 0 ])) ))
  in
  (* single-shot UVKBE exercises the loop-free path (paper §5.4); with
     more iterations a timestep loop is used, as unrolled straight-line
     repetitions would be fused across timesteps by stencil inlining *)
  invoke ~name:"uvkbe" ~extents:(nx, ny, nz) ~iterations ~use_loop:(iterations > 1)
    ~state:[ "u"; "v"; "ssh"; "h" ]
    ~next_state:[ "u_next"; "v"; "ssh"; "h" ]
    ~dsl_loc:uvkbe_dsl_loc
    [ ke_kernel; u_update ]

(** {1 Registry} *)

type descr = {
  id : string;
  frontend : string;
  z_extent : int;  (** large-size z extent, as in the paper *)
  default_iterations : int;
  flops_per_point : int;  (** per grid point per timestep, as compiled *)
  make : size -> P.t;
  make_n : size -> int -> P.t;  (** explicit iteration count *)
}

let all : descr list =
  [
    {
      id = "jacobian";
      frontend = "flang";
      z_extent = 900;
      default_iterations = 100_000;
      flops_per_point = 6;
      make = (fun s -> jacobian s);
      make_n = (fun s n -> jacobian ~iterations:n s);
    };
    {
      id = "diffusion";
      frontend = "devito";
      z_extent = 704;
      default_iterations = 512;
      flops_per_point = 16;
      make = (fun s -> diffusion s);
      make_n = (fun s n -> diffusion ~iterations:n s);
    };
    {
      id = "acoustic";
      frontend = "devito";
      z_extent = 604;
      default_iterations = 512;
      flops_per_point = 18;
      make = (fun s -> acoustic s);
      make_n = (fun s n -> acoustic ~iterations:n s);
    };
    {
      id = "seismic";
      frontend = "csl";
      z_extent = 450;
      default_iterations = 100_000;
      flops_per_point = 28;
      make = (fun s -> seismic s);
      make_n = (fun s n -> seismic ~iterations:n s);
    };
    {
      id = "uvkbe";
      frontend = "psyclone";
      z_extent = 600;
      default_iterations = 1;
      flops_per_point = 12;
      make = (fun s -> uvkbe s);
      make_n = (fun s n -> uvkbe ~iterations:n s);
    };
  ]

let find id =
  match List.find_opt (fun d -> d.id = id) all with
  | Some d -> d
  | None -> invalid_arg ("unknown benchmark: " ^ id)
