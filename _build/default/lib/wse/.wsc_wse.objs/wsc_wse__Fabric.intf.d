lib/wse/fabric.mli: Hashtbl Machine Wsc_dialects Wsc_ir
