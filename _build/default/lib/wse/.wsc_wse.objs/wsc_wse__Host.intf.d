lib/wse/host.mli: Fabric Machine Wsc_dialects Wsc_ir
