lib/wse/machine.ml:
