lib/wse/fabric.ml: Array Float Hashtbl List Machine Option Printf String Wsc_core Wsc_dialects Wsc_ir
