lib/wse/machine.mli:
