lib/wse/host.ml: Array Fabric Hashtbl List Machine Printf Wsc_core Wsc_dialects Wsc_ir
