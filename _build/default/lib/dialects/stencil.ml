(** The [stencil] dialect (Open Earth Compiler / xDSL flavour).

    A [stencil.apply] runs its body for every point of the output grid; the
    body reads neighbouring points through [stencil.access] at constant
    offsets and produces the point value through [stencil.return].  Types
    carry per-dimension half-open bounds (paper §3, Listing 2). *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

(** Bounds of the result grid given input bounds and the maximal negative /
    positive offsets used: shrink by the halo. *)
let shrink_bounds (bounds : (int * int) list) (radius : int list) : (int * int) list =
  List.map2 (fun (lb, ub) r -> (lb + r, ub - r)) bounds radius

(** Encode a bounds list as a flat Dense_ints [lb0; ub0; lb1; ub1; ...]. *)
let bounds_attr (bounds : (int * int) list) : attr =
  Dense_ints (List.concat_map (fun (lb, ub) -> [ lb; ub ]) bounds)

let bounds_of_attr = function
  | Dense_ints flat ->
      let rec go = function
        | lb :: ub :: rest -> (lb, ub) :: go rest
        | [] -> []
        | _ -> invalid_arg "bounds attr: odd length"
      in
      go flat
  | _ -> invalid_arg "bounds attr: not dense ints"

(** [apply ~inputs ~result_type ?compute_bounds body]: create a
    [stencil.apply].  [body] receives a builder and block arguments
    mirroring [inputs].

    The result type carries the full (halo-extended) bounds so that grids
    flow unchanged through a timestep loop's [iter_args];
    [compute_bounds], when given, restricts the points the body is
    evaluated at (the grid interior).  Points outside keep the value of
    the first input — Dirichlet boundary semantics, matching what the
    paper's benchmarks do at the global domain edge. *)
let apply ?compute_bounds ~(inputs : value list) ~(result_type : typ)
    (body : Wsc_ir.Builder.t -> value list -> unit) : op =
  let region =
    Wsc_ir.Builder.region_with_args (List.map (fun v -> v.vtyp) inputs) body
  in
  let attrs =
    match compute_bounds with
    | Some b -> [ ("compute_bounds", bounds_attr b) ]
    | None -> []
  in
  create_op "stencil.apply" ~operands:inputs ~results:[ result_type ] ~attrs
    ~regions:[ region ] ~result_hints:[ "out" ]

(** Like {!apply} but with several results (produced by stencil inlining
    when outputs of the first apply are passed through, paper §5.7). *)
let apply_multi ?compute_bounds ~(inputs : value list) ~(result_types : typ list)
    (body : Wsc_ir.Builder.t -> value list -> unit) : op =
  let region =
    Wsc_ir.Builder.region_with_args (List.map (fun v -> v.vtyp) inputs) body
  in
  let attrs =
    match compute_bounds with
    | Some b -> [ ("compute_bounds", bounds_attr b) ]
    | None -> []
  in
  create_op "stencil.apply" ~operands:inputs ~results:result_types ~attrs
    ~regions:[ region ]

let compute_bounds (apply_op : op) : (int * int) list =
  match attr apply_op "compute_bounds" with
  | Some a -> bounds_of_attr a
  | None -> bounds_of (result apply_op).vtyp

(** Access a neighbouring value at a constant [offset] from the current
    point.  The result is the grid's element type (a scalar before
    tensorization; a z-column tensor afterwards). *)
let access (temp : value) ~(offset : int list) : op =
  let result =
    match temp.vtyp with
    | Temp (_, e) | Field (_, e) -> e
    | t -> t
  in
  create_op "stencil.access" ~operands:[ temp ] ~results:[ result ]
    ~attrs:[ ("offset", Dense_ints offset) ]

let return_ (vals : value list) : op =
  create_op "stencil.return" ~operands:vals ~results:[]

let load (field : value) : op =
  let t =
    match field.vtyp with
    | Field (b, e) -> Temp (b, e)
    | _ -> invalid_arg "stencil.load: operand is not a field"
  in
  create_op "stencil.load" ~operands:[ field ] ~results:[ t ]

let store (temp : value) (field : value) : op =
  create_op "stencil.store" ~operands:[ temp; field ] ~results:[]

let is_apply op = op.opname = "stencil.apply"

let apply_body (op : op) : block = body_block op 0

(** Offsets of all accesses in an apply body. *)
let offsets (apply_op : op) : int list list =
  List.filter_map
    (fun o ->
      if o.opname = "stencil.access" then Some (dense_ints_exn o "offset") else None)
    (apply_body apply_op).bops

(** Per-dimension maximal |offset| over all accesses. *)
let radius (apply_op : op) : int list =
  let offs = offsets apply_op in
  match offs with
  | [] -> []
  | first :: _ ->
      List.mapi
        (fun i _ ->
          List.fold_left (fun acc off -> max acc (abs (List.nth off i))) 0 offs)
        first

let () =
  Verifier.register "stencil.apply" (fun op ->
      let b = apply_body op in
      if List.length b.bargs <> List.length op.operands then
        Verifier.fail "stencil.apply: block args must mirror operands";
      List.iter2
        (fun arg input ->
          if arg.vtyp <> input.vtyp then
            Verifier.fail "stencil.apply: block arg type mismatch")
        b.bargs op.operands);
  Verifier.register_terminator "stencil.apply" [ "stencil.return" ];
  Verifier.register "stencil.access" (fun op ->
      let off = dense_ints_exn op "offset" in
      match (operand op 0).vtyp with
      | Temp (bounds, _) | Field (bounds, _) ->
          if List.length off <> List.length bounds then
            Verifier.fail "stencil.access: offset rank %d but grid rank %d"
              (List.length off) (List.length bounds)
      | _ -> Verifier.fail "stencil.access: operand must be a stencil grid")
