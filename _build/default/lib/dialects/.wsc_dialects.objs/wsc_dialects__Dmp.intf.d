lib/dialects/dmp.mli: Wsc_ir
