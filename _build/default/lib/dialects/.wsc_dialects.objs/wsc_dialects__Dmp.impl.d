lib/dialects/dmp.ml: List Wsc_ir
