lib/dialects/stencil.mli: Wsc_ir
