lib/dialects/builtin.mli: Wsc_ir
