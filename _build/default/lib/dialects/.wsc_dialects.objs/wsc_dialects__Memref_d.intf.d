lib/dialects/memref_d.mli: Wsc_ir
