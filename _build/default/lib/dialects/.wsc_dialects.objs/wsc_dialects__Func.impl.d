lib/dialects/func.ml: List Wsc_ir
