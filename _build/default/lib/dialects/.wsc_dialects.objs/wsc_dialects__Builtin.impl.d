lib/dialects/builtin.ml: List Wsc_ir
