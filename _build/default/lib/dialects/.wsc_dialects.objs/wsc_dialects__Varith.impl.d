lib/dialects/varith.ml: List Wsc_ir
