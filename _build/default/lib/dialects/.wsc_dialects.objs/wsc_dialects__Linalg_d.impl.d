lib/dialects/linalg_d.ml: List Wsc_ir
