lib/dialects/tensor_d.mli: Wsc_ir
