lib/dialects/scf.mli: Wsc_ir
