lib/dialects/func.mli: Wsc_ir
