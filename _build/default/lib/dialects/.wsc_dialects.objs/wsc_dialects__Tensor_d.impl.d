lib/dialects/tensor_d.ml: Wsc_ir
