lib/dialects/scf.ml: Arith List Option Wsc_ir
