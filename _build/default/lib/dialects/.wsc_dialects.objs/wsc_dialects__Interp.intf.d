lib/dialects/interp.mli: Wsc_ir
