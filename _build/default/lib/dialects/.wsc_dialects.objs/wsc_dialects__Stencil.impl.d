lib/dialects/stencil.ml: List Wsc_ir
