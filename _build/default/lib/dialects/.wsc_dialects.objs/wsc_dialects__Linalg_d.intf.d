lib/dialects/linalg_d.mli: Wsc_ir
