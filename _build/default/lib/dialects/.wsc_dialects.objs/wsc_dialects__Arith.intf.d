lib/dialects/arith.mli: Wsc_ir
