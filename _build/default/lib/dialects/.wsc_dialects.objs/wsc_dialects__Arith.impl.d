lib/dialects/arith.ml: List Wsc_ir
