lib/dialects/interp.ml: Array Float Func Hashtbl List Printf Scf Stencil Wsc_ir
