lib/dialects/varith.mli: Wsc_ir
