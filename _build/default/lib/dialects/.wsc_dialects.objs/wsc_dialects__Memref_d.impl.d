lib/dialects/memref_d.ml: List Wsc_ir
