(** The [linalg] dialect subset: destination-passing-style elementwise
    kernels over memrefs (paper §5.3).

    Each op reads its input memrefs and writes the output memref passed as
    the last operand, matching CSL's DSD builtin calling convention so that
    the group-5 lowering is one-to-one:
    add→[@fadds], sub→[@fsubs], mul→[@fmuls], fmac→[@fmacs],
    copy→[@fmovs]. *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

let binary name ~(a : value) ~(b : value) ~(out : value) : op =
  create_op name ~operands:[ a; b; out ] ~results:[]

let add = binary "linalg.add"
let sub = binary "linalg.sub"
let mul = binary "linalg.mul"
let div = binary "linalg.div"

(** [out := a * scalar] *)
let mul_scalar ~(a : value) ~(out : value) ~(scalar : float) : op =
  create_op "linalg.mul_scalar" ~operands:[ a; out ]
    ~attrs:[ ("scalar", Float_attr scalar) ]
    ~results:[]

(** [out := a + scalar] *)
let add_scalar ~(a : value) ~(out : value) ~(scalar : float) : op =
  create_op "linalg.add_scalar" ~operands:[ a; out ]
    ~attrs:[ ("scalar", Float_attr scalar) ]
    ~results:[]

(** Fused multiply-accumulate: [out := a + b * scalar]. *)
let fmac ~(a : value) ~(b : value) ~(out : value) ~(scalar : float) : op =
  create_op "linalg.fmac" ~operands:[ a; b; out ]
    ~attrs:[ ("scalar", Float_attr scalar) ]
    ~results:[]

(** [out := a] *)
let copy ~(a : value) ~(out : value) : op =
  create_op "linalg.copy" ~operands:[ a; out ] ~results:[]

let fill ~(out : value) ~(value : float) : op =
  create_op "linalg.fill" ~operands:[ out ]
    ~attrs:[ ("value", Float_attr value) ]
    ~results:[]

let dps_ops =
  [
    "linalg.add"; "linalg.sub"; "linalg.mul"; "linalg.div"; "linalg.mul_scalar";
    "linalg.add_scalar"; "linalg.fmac"; "linalg.copy"; "linalg.fill";
  ]

let is_linalg op = List.mem op.opname dps_ops

(** The destination memref of a DPS op (the last non-attribute operand for
    all ops of this dialect). *)
let dst (op : op) : value = List.nth op.operands (List.length op.operands - 1)

let () =
  List.iter
    (fun name ->
      Verifier.register name (fun op ->
          if op.results <> [] then Verifier.fail "%s: DPS ops have no results" name;
          List.iter
            (fun v ->
              match v.vtyp with
              | Memref _ | Dsd _ -> ()
              | _ -> Verifier.fail "%s: operands must be memrefs or DSDs" name)
            op.operands))
    dps_ops
