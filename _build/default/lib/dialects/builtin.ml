(** The [builtin] dialect: module container op. *)

open Wsc_ir.Ir

let module_name = "builtin.module"

(** Create a [builtin.module] holding [ops] in a single block. *)
let module_op (ops : op list) : op =
  create_op module_name ~results:[] ~regions:[ new_region [ new_block ops ] ]

let is_module op = op.opname = module_name

(** Top-level ops of a module. *)
let body (m : op) : op list = (entry_block (List.hd m.regions)).bops

let set_body (m : op) (ops : op list) : unit =
  (entry_block (List.hd m.regions)).bops <- ops

let () =
  Wsc_ir.Verifier.register module_name (fun op ->
      if op.operands <> [] || op.results <> [] then
        Wsc_ir.Verifier.fail "builtin.module takes no operands/results";
      if List.length op.regions <> 1 then
        Wsc_ir.Verifier.fail "builtin.module must have exactly one region")
