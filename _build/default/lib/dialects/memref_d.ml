(** The [memref] dialect subset: allocation, copies and 1-D subviews.
    After bufferization (group 3) all grid data lives in memrefs that are
    later lowered to DSD-addressed buffers (group 5). *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

let alloc ~(shape : int list) ?(elt = F32) ?(hint = "buf") () : op =
  create_op "memref.alloc" ~results:[ Memref (shape, elt) ] ~result_hints:[ hint ]

let copy ~(src : value) ~(dst : value) : op =
  create_op "memref.copy" ~operands:[ src; dst ] ~results:[]

(** Static 1-D subview. *)
let subview (m : value) ~(offset : int) ~(size : int) : op =
  let elt = elem_type m.vtyp in
  create_op "memref.subview" ~operands:[ m ]
    ~results:[ Memref ([ size ], elt) ]
    ~attrs:[ ("offset", Int_attr offset); ("size", Int_attr size) ]

(** 1-D subview at a dynamic offset (chunk positions within the
    accumulator). *)
let subview_dyn (m : value) ~(offset : value) ~(size : int) : op =
  let elt = elem_type m.vtyp in
  create_op "memref.subview_dyn" ~operands:[ m; offset ]
    ~results:[ Memref ([ size ], elt) ]
    ~attrs:[ ("size", Int_attr size) ]

(** Named global buffer (becomes a CSL top-level [var] array). *)
let global ~(name : string) ~(shape : int list) ?(elt = F32) () : op =
  create_op "memref.global" ~results:[]
    ~attrs:[ ("sym_name", String_attr name); ("type", Type_attr (Memref (shape, elt))) ]

let get_global ~(name : string) ~(typ : typ) : op =
  create_op "memref.get_global" ~results:[ typ ]
    ~attrs:[ ("name", Symbol_ref name) ]
    ~result_hints:[ name ]

let () =
  Verifier.register "memref.copy" (fun op ->
      if List.length op.operands <> 2 then Verifier.fail "memref.copy: two operands")
