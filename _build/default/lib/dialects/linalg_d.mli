(** The [linalg] dialect subset (paper §5.3): destination-passing-style
    elementwise kernels over memrefs, in one-to-one correspondence with
    CSL's DSD builtins (add→[@fadds], mul→[@fmuls], fmac→[@fmacs],
    copy→[@fmovs], …). *)

open Wsc_ir.Ir

val add : a:value -> b:value -> out:value -> op
val sub : a:value -> b:value -> out:value -> op
val mul : a:value -> b:value -> out:value -> op
val div : a:value -> b:value -> out:value -> op

(** [out := a * scalar] *)
val mul_scalar : a:value -> out:value -> scalar:float -> op

(** [out := a + scalar] *)
val add_scalar : a:value -> out:value -> scalar:float -> op

(** Fused multiply-accumulate: [out := a + b * scalar]. *)
val fmac : a:value -> b:value -> out:value -> scalar:float -> op

val copy : a:value -> out:value -> op
val fill : out:value -> value:float -> op

val dps_ops : string list
val is_linalg : op -> bool

(** The destination memref (the last operand of every op here). *)
val dst : op -> value
