(** The [varith] dialect (paper §5.7): variadic additions and
    multiplications, keeping a stencil reduction's additive structure
    explicit for the region split and for fuse-repeated-operands. *)

open Wsc_ir.Ir

(** @raise Invalid_argument on an empty operand list (both). *)
val add : value list -> op

val mul : value list -> op
val is_varith : op -> bool
