(** The [tensor] dialect subset: empty tensors, static slice extraction
    (a neighbour's sub-column) and dynamic slice insertion (packing a
    received chunk into the accumulator, paper Listing 4). *)

open Wsc_ir.Ir

val empty : shape:int list -> ?elt:typ -> unit -> op

(** Static 1-D slice [offset, offset + size). *)
val extract_slice : value -> offset:int -> size:int -> op

(** Functional update of [dst] at a dynamic offset. *)
val insert_slice : src:value -> dst:value -> offset:value -> op
