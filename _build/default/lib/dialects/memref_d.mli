(** The [memref] dialect subset: allocation, copies and 1-D subviews.
    After bufferization (group 3), grid data lives in memrefs that group
    5 lowers to DSD-addressed buffers. *)

open Wsc_ir.Ir

val alloc : shape:int list -> ?elt:typ -> ?hint:string -> unit -> op
val copy : src:value -> dst:value -> op

(** Static 1-D subview. *)
val subview : value -> offset:int -> size:int -> op

(** 1-D subview at a dynamic offset (chunk positions). *)
val subview_dyn : value -> offset:value -> size:int -> op

(** Named global buffer (a CSL top-level array). *)
val global : name:string -> shape:int list -> ?elt:typ -> unit -> op

val get_global : name:string -> typ:typ -> op
