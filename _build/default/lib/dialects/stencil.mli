(** The [stencil] dialect (Open Earth Compiler / xDSL flavour): a
    [stencil.apply] runs its body for every point of the compute bounds,
    reading neighbours through constant-offset [stencil.access] ops and
    producing point values through [stencil.return]. *)

open Wsc_ir.Ir

(** Shrink bounds by a per-dimension radius. *)
val shrink_bounds : (int * int) list -> int list -> (int * int) list

(** Flat encoding of a bounds list ([lb0; ub0; lb1; ub1; ...]). *)
val bounds_attr : (int * int) list -> attr

val bounds_of_attr : attr -> (int * int) list

(** Create a [stencil.apply].  The result type carries the full
    (halo-extended) bounds so grids flow unchanged through a timestep
    loop's iteration arguments; [compute_bounds] restricts where the body
    runs (the interior) — points outside keep the first input's value
    (Dirichlet boundary semantics). *)
val apply :
  ?compute_bounds:(int * int) list ->
  inputs:value list ->
  result_type:typ ->
  (Wsc_ir.Builder.t -> value list -> unit) ->
  op

(** Multi-result variant (stencil inlining's pass-through outputs). *)
val apply_multi :
  ?compute_bounds:(int * int) list ->
  inputs:value list ->
  result_types:typ list ->
  (Wsc_ir.Builder.t -> value list -> unit) ->
  op

val compute_bounds : op -> (int * int) list

(** Access a neighbouring value at a constant offset from the current
    point; the result is the grid's element type. *)
val access : value -> offset:int list -> op

val return_ : value list -> op

(** @raise Invalid_argument when the operand is not a field. *)
val load : value -> op

val store : value -> value -> op
val is_apply : op -> bool
val apply_body : op -> block

(** Offsets of all accesses in an apply body, in order. *)
val offsets : op -> int list list

(** Per-dimension maximal |offset| over all accesses. *)
val radius : op -> int list
