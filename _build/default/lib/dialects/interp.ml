(** Sequential reference interpreter.

    Executes modules built from the [func]/[scf]/[arith]/[stencil]/[tensor]/
    [varith]/[dmp] dialects with the mathematical (single-address-space)
    semantics the paper starts from.  It is the correctness oracle: the
    compiled WSE program, executed on the fabric simulator, must produce
    point-wise identical grids. *)

open Wsc_ir.Ir

type grid = { gbounds : (int * int) list; gelt : typ; gdata : float array }
(** A stencil grid: bounds per dimension, flattened row-major data.  When
    [gelt] is a tensor (after tensorization), the innermost tensor extent
    is folded into the flattened layout. *)

type rtvalue =
  | Rfloat of float
  | Rint of int
  | Rgrid of grid
  | Rtensor of float array

exception Interp_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Interp_error s)) fmt

(** {1 Grid helpers} *)


let tensor_extent (elt : typ) : int =
  match elt with Tensor ([ n ], _) -> n | Tensor _ -> fail "grid: bad tensor elt" | _ -> 1

let grid_total_size (bounds : (int * int) list) (elt : typ) : int =
  List.fold_left (fun acc (lb, ub) -> acc * (ub - lb)) 1 bounds * tensor_extent elt

let make_grid (bounds : (int * int) list) (elt : typ) : grid =
  { gbounds = bounds; gelt = elt; gdata = Array.make (grid_total_size bounds elt) 0.0 }

let grid_of_typ = function
  | Temp (b, e) | Field (b, e) -> make_grid b e
  | t -> fail "not a grid type: %s" (Wsc_ir.Printer.typ_to_string t)

(** Flattened index of point [idx] (absolute coordinates within bounds). *)
let flat_index g (idx : int list) : int =
  let rec go bounds idx acc =
    match (bounds, idx) with
    | [], [] -> acc
    | (lb, ub) :: bs, i :: is ->
        if i < lb || i >= ub then fail "grid index %d out of [%d,%d)" i lb ub;
        go bs is ((acc * (ub - lb)) + (i - lb))
    | _ -> fail "grid index rank mismatch"
  in
  go g.gbounds idx 0

let grid_get_scalar g idx = g.gdata.(flat_index g idx)
let grid_set_scalar g idx v = g.gdata.(flat_index g idx) <- v

(** Read the element (scalar or z-column tensor) at point [idx]. *)
let grid_get g idx : rtvalue =
  let z = tensor_extent g.gelt in
  if z = 1 then Rfloat (grid_get_scalar g idx)
  else begin
    let base = flat_index g idx * z in
    Rtensor (Array.sub g.gdata base z)
  end

let grid_set g idx (v : rtvalue) : unit =
  let z = tensor_extent g.gelt in
  match v with
  | Rfloat f when z = 1 -> grid_set_scalar g idx f
  | Rtensor a when Array.length a = z ->
      let base = flat_index g idx * z in
      Array.blit a 0 g.gdata base z
  | Rfloat _ -> fail "grid_set: scalar into tensor grid"
  | Rtensor a -> fail "grid_set: tensor size %d, grid elt %d" (Array.length a) z
  | _ -> fail "grid_set: bad value"

let copy_grid g = { g with gdata = Array.copy g.gdata }

(** All points of [bounds] in row-major order. *)
let iter_points (bounds : (int * int) list) (f : int list -> unit) : unit =
  let rec go prefix = function
    | [] -> f (List.rev prefix)
    | (lb, ub) :: rest ->
        for i = lb to ub - 1 do
          go (i :: prefix) rest
        done
  in
  go [] bounds

(** {1 Value environment} *)

type env = { vals : (int, rtvalue) Hashtbl.t }

let new_env () = { vals = Hashtbl.create 64 }

let bind env (v : value) (r : rtvalue) = Hashtbl.replace env.vals v.vid r

let lookup env (v : value) : rtvalue =
  match Hashtbl.find_opt env.vals v.vid with
  | Some r -> r
  | None -> fail "unbound SSA value %%%d" v.vid

let as_float = function
  | Rfloat f -> f
  | Rint i -> float_of_int i
  | _ -> fail "expected scalar float"

let as_int = function
  | Rint i -> i
  | Rfloat f -> int_of_float f
  | _ -> fail "expected integer"

let as_grid = function Rgrid g -> g | _ -> fail "expected grid"
let as_tensor = function
  | Rtensor a -> a
  | Rfloat f -> [| f |]
  | _ -> fail "expected tensor"

(** Elementwise float operation, rank-polymorphic. *)
let elementwise2 (f : float -> float -> float) (a : rtvalue) (b : rtvalue) : rtvalue =
  match (a, b) with
  | Rfloat x, Rfloat y -> Rfloat (f x y)
  | Rtensor x, Rtensor y ->
      if Array.length x <> Array.length y then
        fail "elementwise: tensor sizes %d vs %d" (Array.length x) (Array.length y);
      Rtensor (Array.mapi (fun i xi -> f xi y.(i)) x)
  | Rtensor x, Rfloat y -> Rtensor (Array.map (fun xi -> f xi y) x)
  | Rfloat x, Rtensor y -> Rtensor (Array.map (fun yi -> f x yi) y)
  | _ -> fail "elementwise: bad operands"

(** {1 Interpreter} *)

type ctx = {
  module_ : op;
  env : env;
  mutable point : int list;  (** current stencil point inside an apply body *)
}

(** Extension point: dialects defined in downstream libraries (the csl
    dialects) register handlers for their ops here. *)
type handler = ctx -> op -> (ctx -> block -> rtvalue list) -> rtvalue list

let handlers : (string, handler) Hashtbl.t = Hashtbl.create 16

let register_handler name (h : handler) = Hashtbl.replace handlers name h

let rec run_block (ctx : ctx) (b : block) : rtvalue list =
  let result = ref [] in
  List.iter
    (fun o ->
      match run_op ctx o with
      | `Values vs -> List.iter2 (fun r v -> bind ctx.env r v) o.results vs
      | `Terminator vs -> result := vs)
    b.bops;
  !result

and run_op (ctx : ctx) (o : op) : [ `Values of rtvalue list | `Terminator of rtvalue list ]
    =
  let env = ctx.env in
  let operand_vals () = List.map (lookup env) o.operands in
  match o.opname with
  | "arith.constant" -> (
      match (attr o "value", (result o).vtyp) with
      | Some (Float_attr f), Tensor ([ n ], _) -> `Values [ Rtensor (Array.make n f) ]
      | Some (Float_attr f), _ -> `Values [ Rfloat f ]
      | Some (Int_attr i), (Index | I16 | I32 | I64) -> `Values [ Rint i ]
      | Some (Int_attr i), _ -> `Values [ Rfloat (float_of_int i) ]
      | _ -> fail "arith.constant: bad value")
  | "arith.addf" ->
      let a, b = (lookup env (operand o 0), lookup env (operand o 1)) in
      `Values [ elementwise2 ( +. ) a b ]
  | "arith.subf" ->
      let a, b = (lookup env (operand o 0), lookup env (operand o 1)) in
      `Values [ elementwise2 ( -. ) a b ]
  | "arith.mulf" ->
      let a, b = (lookup env (operand o 0), lookup env (operand o 1)) in
      `Values [ elementwise2 ( *. ) a b ]
  | "arith.divf" ->
      let a, b = (lookup env (operand o 0), lookup env (operand o 1)) in
      `Values [ elementwise2 ( /. ) a b ]
  | "arith.addi" ->
      `Values [ Rint (as_int (lookup env (operand o 0)) + as_int (lookup env (operand o 1))) ]
  | "arith.subi" ->
      `Values [ Rint (as_int (lookup env (operand o 0)) - as_int (lookup env (operand o 1))) ]
  | "arith.muli" ->
      `Values [ Rint (as_int (lookup env (operand o 0)) * as_int (lookup env (operand o 1))) ]
  | "arith.cmpi" ->
      let a = as_int (lookup env (operand o 0)) and b = as_int (lookup env (operand o 1)) in
      let r =
        match string_attr_exn o "predicate" with
        | "slt" -> a < b
        | "sle" -> a <= b
        | "sgt" -> a > b
        | "sge" -> a >= b
        | "eq" -> a = b
        | "ne" -> a <> b
        | p -> fail "cmpi: bad predicate %s" p
      in
      `Values [ Rint (if r then 1 else 0) ]
  | "varith.add" ->
      let vs = operand_vals () in
      `Values [ List.fold_left (elementwise2 ( +. )) (List.hd vs) (List.tl vs) ]
  | "varith.mul" ->
      let vs = operand_vals () in
      `Values [ List.fold_left (elementwise2 ( *. )) (List.hd vs) (List.tl vs) ]
  | "tensor.empty" ->
      let n = match (result o).vtyp with Tensor ([ n ], _) -> n | _ -> 0 in
      `Values [ Rtensor (Array.make n 0.0) ]
  | "memref.alloc" ->
      (* buffers at function level are zero-initialized flat arrays *)
      `Values [ Rtensor (Array.make (num_elements (result o).vtyp) 0.0) ]
  | "tensor.extract_slice" ->
      let a = as_tensor (lookup env (operand o 0)) in
      let off = int_attr_exn o "offset" and size = int_attr_exn o "size" in
      `Values [ Rtensor (Array.sub a off size) ]
  | "tensor.insert_slice" ->
      let src = as_tensor (lookup env (operand o 0)) in
      let dst = Array.copy (as_tensor (lookup env (operand o 1))) in
      let off = as_int (lookup env (operand o 2)) in
      Array.blit src 0 dst off (Array.length src);
      `Values [ Rtensor dst ]
  | "stencil.load" -> (
      match lookup env (operand o 0) with
      | Rgrid g -> `Values [ Rgrid g ]
      | _ -> fail "stencil.load: operand is not a grid")
  | "stencil.store" ->
      let src = as_grid (lookup env (operand o 0)) in
      let dst = as_grid (lookup env (operand o 1)) in
      (* copy overlapping region *)
      iter_points src.gbounds (fun p -> grid_set dst p (grid_get src p));
      `Values []
  | "dmp.swap" ->
      (* halo exchange is the identity in single-address-space semantics *)
      `Values [ lookup env (operand o 0) ]
  | "stencil.apply" -> `Values (run_apply ctx o)
  | "stencil.access" | "csl_stencil.access" ->
      let g = as_grid (lookup env (operand o 0)) in
      let off = dense_ints_exn o "offset" in
      if List.length ctx.point <> List.length off then
        fail "stencil.access: offset rank %d at point rank %d" (List.length off)
          (List.length ctx.point);
      let idx = List.map2 ( + ) ctx.point off in
      `Values [ grid_get g idx ]
  | "stencil.return" | "scf.yield" | "func.return" | "csl_stencil.yield" ->
      `Terminator (operand_vals ())
  | "scf.for" ->
      let lb = as_int (lookup env (operand o 0)) in
      let ub = as_int (lookup env (operand o 1)) in
      let step = as_int (lookup env (operand o 2)) in
      let body = Scf.for_body o in
      let carried = ref (List.map (lookup env) (Scf.for_iter_inits o)) in
      let i = ref lb in
      while !i < ub do
        bind env (List.hd body.bargs) (Rint !i);
        List.iter2 (fun arg v -> bind env arg v) (List.tl body.bargs) !carried;
        carried := run_block ctx body;
        i := !i + step
      done;
      `Values !carried
  | "scf.if" ->
      let c = as_int (lookup env (operand o 0)) in
      let r = region o (if c <> 0 then 0 else 1) in
      `Values (run_block ctx (entry_block r))
  | "func.call" ->
      let callee = string_attr_exn o "callee" in
      let f =
        match Func.lookup ctx.module_ callee with
        | Some f -> f
        | None -> fail "func.call: unknown function %s" callee
      in
      `Values (call_func ctx f (operand_vals ()))
  | name -> (
      match Hashtbl.find_opt handlers name with
      | Some h -> `Values (h ctx o run_block)
      | None -> fail "interpreter: unsupported op %s" name)

and run_apply (ctx : ctx) (o : op) : rtvalue list =
  let env = ctx.env in
  let body = Stencil.apply_body o in
  List.iter2 (fun arg input -> bind env arg (lookup env input)) body.bargs o.operands;
  (* Dirichlet semantics: start each output grid as a copy of the first
     input grid when shapes agree, then overwrite the compute region. *)
  let first_input =
    match o.operands with v :: _ -> Some (lookup env v) | [] -> None
  in
  let elt_of = function Temp (_, e) | Field (_, e) -> e | t -> t in
  let out_grids =
    List.map
      (fun r ->
        match first_input with
        | Some (Rgrid g)
          when g.gbounds = bounds_of r.vtyp
               && tensor_extent g.gelt = tensor_extent (elt_of r.vtyp) ->
            copy_grid g
        | _ -> grid_of_typ r.vtyp)
      o.results
  in
  let out_bounds = Stencil.compute_bounds o in
  let saved_point = ctx.point in
  iter_points out_bounds (fun p ->
      ctx.point <- p;
      let vals = run_block ctx body in
      List.iter2 (fun g v -> grid_set g p v) out_grids vals);
  ctx.point <- saved_point;
  List.map (fun g -> Rgrid g) out_grids

and call_func (ctx : ctx) (f : op) (args : rtvalue list) : rtvalue list =
  let entry = Func.entry f in
  if List.length entry.bargs <> List.length args then
    fail "call %s: arity mismatch" (Func.name_of f);
  List.iter2 (fun p a -> bind ctx.env p a) entry.bargs args;
  run_block ctx entry

(** Run function [name] of module [m] on [args]. *)
let run_func (m : op) ~(name : string) (args : rtvalue list) : rtvalue list =
  let f =
    match Func.lookup m name with
    | Some f -> f
    | None -> fail "no function %s" name
  in
  let ctx = { module_ = m; env = new_env (); point = [] } in
  call_func ctx f args

(** {1 Grid initialization and comparison helpers} *)

(** Deterministic pseudo-random-ish init so reference and simulated runs
    agree: value depends only on the point coordinates. *)
let init_value (idx : int list) : float =
  let h = List.fold_left (fun acc i -> (acc * 31) + i + 17) 7 idx in
  float_of_int (((h mod 1000) + 1000) mod 1000) /. 997.0

let init_grid (g : grid) : unit =
  let z = tensor_extent g.gelt in
  if z = 1 then iter_points g.gbounds (fun p -> grid_set_scalar g p (init_value p))
  else
    iter_points g.gbounds (fun p ->
        let col = Array.init z (fun k -> init_value (p @ [ k ])) in
        grid_set g p (Rtensor col))

(** Reinterpret a 3-D scalar grid as the corresponding 2-D grid of
    z-column tensors (identical flattened layout) — used to feed the same
    initial data to a module before and after tensorization. *)
let retensorize_grid (g : grid) : grid =
  match g.gbounds with
  | [ bx; by; (zl, zu) ] ->
      { gbounds = [ bx; by ]; gelt = Tensor ([ zu - zl ], F32); gdata = Array.copy g.gdata }
  | _ -> fail "retensorize_grid: grid is not 3-D scalar"

let max_abs_diff (a : grid) (b : grid) : float =
  if Array.length a.gdata <> Array.length b.gdata then infinity
  else begin
    let m = ref 0.0 in
    Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.gdata.(i)))) a.gdata;
    !m
  end
