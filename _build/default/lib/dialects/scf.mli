(** The [scf] dialect: structured control flow.  The benchmarks' top-level
    timestep loop is an [scf.for] carrying the grids as iteration
    arguments; group 4 converts it into the actor task graph. *)

open Wsc_ir.Ir

(** [for_ ~lb ~ub ~step ~iter_args body]: [body] receives a builder, the
    induction variable and the carried values, and must end with an
    [scf.yield] of the next carried values. *)
val for_ :
  lb:value ->
  ub:value ->
  step:value ->
  iter_args:value list ->
  (Wsc_ir.Builder.t -> value -> value list -> unit) ->
  op

val yield : value list -> op

val if_ :
  cond:value ->
  results:typ list ->
  (Wsc_ir.Builder.t -> unit) ->
  (Wsc_ir.Builder.t -> unit) ->
  op

val for_bounds : op -> value * value * value
val for_iter_inits : op -> value list
val for_body : op -> block
val for_induction_var : op -> value
val for_iter_args : op -> value list

(** The constant defining [v], looked up under [scope]. *)
val const_of : op -> value -> int option

(** Constant trip count when the bounds are constant-defined. *)
val trip_count : op -> op -> int option
