(** The [arith] dialect: constants and elementwise arithmetic.

    Operations are rank-polymorphic: they accept scalars or tensors of
    scalars, matching MLIR's elementwise trait that the tensorize pass
    relies on (paper §5.1). *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

let constant_f ?(typ = F32) (v : float) : op =
  create_op "arith.constant" ~results:[ typ ] ~attrs:[ ("value", Float_attr v) ]

let constant_i ?(typ = I32) (v : int) : op =
  create_op "arith.constant" ~results:[ typ ] ~attrs:[ ("value", Int_attr v) ]

let constant_index (v : int) : op =
  create_op "arith.constant" ~results:[ Index ] ~attrs:[ ("value", Int_attr v) ]

(** Splat constant over a tensor shape (used after tensorization, where
    scalar coefficients become dense tensor constants). *)
let constant_dense ~(shape : int list) ?(elt = F32) (v : float) : op =
  create_op "arith.constant"
    ~results:[ Tensor (shape, elt) ]
    ~attrs:[ ("value", Float_attr v); ("splat", Unit_attr) ]

let is_constant op = op.opname = "arith.constant"

let constant_value (op : op) : float option =
  if is_constant op then
    match attr op "value" with
    | Some (Float_attr f) -> Some f
    | Some (Int_attr i) -> Some (float_of_int i)
    | _ -> None
  else None

let binary name (a : value) (b : value) : op =
  create_op name ~operands:[ a; b ] ~results:[ a.vtyp ]

let addf a b = binary "arith.addf" a b
let subf a b = binary "arith.subf" a b
let mulf a b = binary "arith.mulf" a b
let divf a b = binary "arith.divf" a b
let addi a b = binary "arith.addi" a b
let subi a b = binary "arith.subi" a b
let muli a b = binary "arith.muli" a b

let cmpi ~(pred : string) (a : value) (b : value) : op =
  create_op "arith.cmpi" ~operands:[ a; b ] ~results:[ I1 ]
    ~attrs:[ ("predicate", String_attr pred) ]

let select (c : value) (a : value) (b : value) : op =
  create_op "arith.select" ~operands:[ c; a; b ] ~results:[ a.vtyp ]

let float_binops = [ "arith.addf"; "arith.subf"; "arith.mulf"; "arith.divf" ]
let is_float_binop op = List.mem op.opname float_binops

let () =
  List.iter
    (fun name ->
      Verifier.register name (fun op ->
          if List.length op.operands <> 2 then
            Verifier.fail "%s: expected 2 operands" name;
          let a = operand op 0 and b = operand op 1 in
          if a.vtyp <> b.vtyp then
            Verifier.fail "%s: operand types differ" name))
    float_binops;
  (* integer arithmetic may mix widths with index values (offsets coming
     from i16 task arguments are used as index computations) *)
  let int_typ = function I16 | I32 | I64 | Index -> true | _ -> false in
  List.iter
    (fun name ->
      Verifier.register name (fun op ->
          if List.length op.operands <> 2 then
            Verifier.fail "%s: expected 2 operands" name;
          List.iter
            (fun v ->
              if not (int_typ v.vtyp) then
                Verifier.fail "%s: operands must be integers" name)
            op.operands))
    [ "arith.addi"; "arith.subi"; "arith.muli" ]
