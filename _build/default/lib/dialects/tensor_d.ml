(** The [tensor] dialect subset used by the pipeline: empty tensors,
    slice extraction (reading a neighbour's sub-column) and slice
    insertion (packing a received chunk into the accumulator,
    paper Listing 4). *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

let empty ~(shape : int list) ?(elt = F32) () : op =
  create_op "tensor.empty" ~results:[ Tensor (shape, elt) ]

(** [extract_slice t ~offset ~size] — 1-D slice [offset, offset+size). *)
let extract_slice (t : value) ~(offset : int) ~(size : int) : op =
  let elt = elem_type t.vtyp in
  create_op "tensor.extract_slice" ~operands:[ t ]
    ~results:[ Tensor ([ size ], elt) ]
    ~attrs:[ ("offset", Int_attr offset); ("size", Int_attr size) ]

(** [insert_slice ~src ~dst ~offset] — functional update of [dst]. *)
let insert_slice ~(src : value) ~(dst : value) ~(offset : value) : op =
  create_op "tensor.insert_slice" ~operands:[ src; dst; offset ]
    ~results:[ dst.vtyp ]

let () =
  Verifier.register "tensor.extract_slice" (fun op ->
      let size = int_attr_exn op "size" in
      let offset = int_attr_exn op "offset" in
      match (operand op 0).vtyp with
      | Tensor ([ n ], _) ->
          if offset < 0 || offset + size > n then
            Verifier.fail "tensor.extract_slice: [%d, %d) out of tensor<%d>" offset
              (offset + size) n
      | _ -> ())
