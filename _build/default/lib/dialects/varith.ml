(** The [varith] dialect: variadic arithmetic (paper §5.7).

    Representing chains of additions or multiplications as a single
    variadic op simplifies splitting the computation between the
    remote-data and local-data regions and enables the
    [varith-fuse-repeated-operands] optimization. *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

let add (vals : value list) : op =
  match vals with
  | v :: _ -> create_op "varith.add" ~operands:vals ~results:[ v.vtyp ]
  | [] -> invalid_arg "varith.add: empty operand list"

let mul (vals : value list) : op =
  match vals with
  | v :: _ -> create_op "varith.mul" ~operands:vals ~results:[ v.vtyp ]
  | [] -> invalid_arg "varith.mul: empty operand list"

let is_varith op = op.opname = "varith.add" || op.opname = "varith.mul"

let () =
  List.iter
    (fun name ->
      Verifier.register name (fun op ->
          if op.operands = [] then Verifier.fail "%s: needs >= 1 operand" name;
          let t = (List.hd op.operands).vtyp in
          List.iter
            (fun v ->
              if v.vtyp <> t then Verifier.fail "%s: mixed operand types" name)
            op.operands))
    [ "varith.add"; "varith.mul" ]
