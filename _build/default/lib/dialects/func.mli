(** The [func] dialect: functions, calls and returns. *)

open Wsc_ir.Ir

(** Define a function; [body] receives a builder and the fresh entry
    block arguments and must end by inserting a [func.return]. *)
val func :
  name:string ->
  args:typ list ->
  results:typ list ->
  (Wsc_ir.Builder.t -> value list -> unit) ->
  op

val return_ : value list -> op
val call : callee:string -> value list -> results:typ list -> op

val name_of : op -> string
val signature : op -> typ list * typ list
val entry : op -> block

(** Find a function by symbol name anywhere under the root. *)
val lookup : op -> string -> op option
