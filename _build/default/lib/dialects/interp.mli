(** Sequential reference interpreter — the correctness oracle.  Executes
    modules built from the standard dialects with the mathematical
    single-address-space semantics the paper starts from; downstream
    dialects register handlers for their ops. *)

open Wsc_ir.Ir

type grid = { gbounds : (int * int) list; gelt : typ; gdata : float array }
(** A stencil grid: half-open bounds per dimension, flattened row-major
    data; a tensor element type folds its extent into the layout. *)

type rtvalue = Rfloat of float | Rint of int | Rgrid of grid | Rtensor of float array

exception Interp_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a

(** {1 Grids} *)

val tensor_extent : typ -> int
val make_grid : (int * int) list -> typ -> grid

(** @raise Interp_error when the type is not a stencil grid. *)
val grid_of_typ : typ -> grid

(** Flattened index of an absolute point.
    @raise Interp_error out of bounds. *)
val flat_index : grid -> int list -> int

val grid_get_scalar : grid -> int list -> float
val grid_set_scalar : grid -> int list -> float -> unit

(** Element (scalar or z-column copy) at a point. *)
val grid_get : grid -> int list -> rtvalue

val grid_set : grid -> int list -> rtvalue -> unit
val copy_grid : grid -> grid

(** All points in row-major order. *)
val iter_points : (int * int) list -> (int list -> unit) -> unit

(** Reinterpret a 3-D scalar grid as the 2-D grid of z-column tensors
    with the identical flattened layout. *)
val retensorize_grid : grid -> grid

(** {1 Values} *)

val as_float : rtvalue -> float
val as_int : rtvalue -> int
val as_grid : rtvalue -> grid
val as_tensor : rtvalue -> float array

(** Rank-polymorphic elementwise combination. *)
val elementwise2 : (float -> float -> float) -> rtvalue -> rtvalue -> rtvalue

(** {1 Execution} *)

type env

val new_env : unit -> env
val bind : env -> value -> rtvalue -> unit
val lookup : env -> value -> rtvalue

type ctx = { module_ : op; env : env; mutable point : int list }

(** Extension point for downstream dialects: handler receives the
    context, the op, and a block runner. *)
type handler = ctx -> op -> (ctx -> block -> rtvalue list) -> rtvalue list

val register_handler : string -> handler -> unit

(** Run function [name] of a module on the given arguments. *)
val run_func : op -> name:string -> rtvalue list -> rtvalue list

(** {1 Test data} *)

(** Deterministic initialization value for a point. *)
val init_value : int list -> float

val init_grid : grid -> unit

(** Point-wise maximum |difference|; infinite on size mismatch. *)
val max_abs_diff : grid -> grid -> float
