(** The [builtin] dialect: the top-level module container. *)

open Wsc_ir.Ir

val module_name : string

(** A [builtin.module] holding [ops] in a single block. *)
val module_op : op list -> op

val is_module : op -> bool
val body : op -> op list
val set_body : op -> op list -> unit
