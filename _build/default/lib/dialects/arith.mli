(** The [arith] dialect: constants and elementwise arithmetic.  Float ops
    are rank-polymorphic over scalars and tensors (the elementwise trait
    the tensorize pass relies on, paper §5.1). *)

open Wsc_ir.Ir

val constant_f : ?typ:typ -> float -> op
val constant_i : ?typ:typ -> int -> op
val constant_index : int -> op

(** Splat constant over a tensor shape (tensorized coefficients). *)
val constant_dense : shape:int list -> ?elt:typ -> float -> op

val is_constant : op -> bool

(** Numeric value of a constant op, int constants included. *)
val constant_value : op -> float option

val addf : value -> value -> op
val subf : value -> value -> op
val mulf : value -> value -> op
val divf : value -> value -> op
val addi : value -> value -> op
val subi : value -> value -> op
val muli : value -> value -> op

(** [pred] is one of slt, sle, sgt, sge, eq, ne. *)
val cmpi : pred:string -> value -> value -> op

val select : value -> value -> value -> op

val float_binops : string list
val is_float_binop : op -> bool
