(** The [scf] dialect: structured control flow (for / if / yield).

    The paper's benchmarks wrap stencil applies in a top-level [scf.for]
    timestep loop carrying the grids as [iter_args]; group-4 lowering
    converts it into the actor task graph. *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

(** [for_ ~lb ~ub ~step ~iter_args body]: [body] receives a builder, the
    induction variable, and the iteration-carried values; it must end by
    inserting an [scf.yield]. *)
let for_ ~(lb : value) ~(ub : value) ~(step : value) ~(iter_args : value list)
    (body : Wsc_ir.Builder.t -> value -> value list -> unit) : op =
  let arg_types = Index :: List.map (fun v -> v.vtyp) iter_args in
  let region =
    Wsc_ir.Builder.region_with_args arg_types (fun b args ->
        match args with
        | iv :: rest -> body b iv rest
        | [] -> assert false)
  in
  create_op "scf.for"
    ~operands:([ lb; ub; step ] @ iter_args)
    ~results:(List.map (fun v -> v.vtyp) iter_args)
    ~regions:[ region ]

let yield (vals : value list) : op =
  create_op "scf.yield" ~operands:vals ~results:[]

let if_ ~(cond : value) ~(results : typ list)
    (then_ : Wsc_ir.Builder.t -> unit) (else_ : Wsc_ir.Builder.t -> unit) : op =
  create_op "scf.if" ~operands:[ cond ] ~results
    ~regions:
      [ Wsc_ir.Builder.region_no_args then_; Wsc_ir.Builder.region_no_args else_ ]

(** Accessors for [scf.for]. *)
let for_bounds (op : op) : value * value * value =
  (operand op 0, operand op 1, operand op 2)

let for_iter_inits (op : op) : value list =
  match op.operands with _ :: _ :: _ :: rest -> rest | _ -> []

let for_body (op : op) : block = body_block op 0

let for_induction_var (op : op) : value = List.hd (for_body op).bargs

let for_iter_args (op : op) : value list = List.tl (for_body op).bargs

(** Constant trip count when bounds are [arith.constant]-defined.  The
    defining ops are looked up from [scope]. *)
let const_of (scope : op) (v : value) : int option =
  let found = ref None in
  walk_op
    (fun o ->
      if Arith.is_constant o && List.exists (fun r -> r.vid = v.vid) o.results then
        found := Arith.constant_value o)
    scope;
  Option.map int_of_float !found

let trip_count (scope : op) (for_op : op) : int option =
  let lb, ub, step = for_bounds for_op in
  match (const_of scope lb, const_of scope ub, const_of scope step) with
  | Some l, Some u, Some s when s > 0 -> Some ((u - l + s - 1) / s)
  | _ -> None

let () =
  Verifier.register "scf.for" (fun op ->
      if List.length op.operands < 3 then Verifier.fail "scf.for: needs lb, ub, step";
      let n_iter = List.length op.operands - 3 in
      if List.length op.results <> n_iter then
        Verifier.fail "scf.for: %d iter_args but %d results" n_iter
          (List.length op.results);
      let b = for_body op in
      if List.length b.bargs <> n_iter + 1 then
        Verifier.fail "scf.for: body must take induction var + iter args");
  Verifier.register_terminator "scf.for" [ "scf.yield" ]
