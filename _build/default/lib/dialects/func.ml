(** The [func] dialect: functions, calls and returns. *)

open Wsc_ir.Ir
module Verifier = Wsc_ir.Verifier

(** Define a function.  [body] receives a builder and the entry block
    arguments. *)
let func ~(name : string) ~(args : typ list) ~(results : typ list)
    (body : Wsc_ir.Builder.t -> value list -> unit) : op =
  let region = Wsc_ir.Builder.region_with_args args body in
  create_op "func.func" ~results:[]
    ~attrs:
      [
        ("sym_name", String_attr name);
        ("function_type", Type_attr (Function (args, results)));
      ]
    ~regions:[ region ]

let return_ (vals : value list) : op =
  create_op "func.return" ~operands:vals ~results:[]

let call ~(callee : string) (args : value list) ~(results : typ list) : op =
  create_op "func.call" ~operands:args ~results
    ~attrs:[ ("callee", Symbol_ref callee) ]

let name_of (f : op) : string = string_attr_exn f "sym_name"

let signature (f : op) : typ list * typ list =
  match attr_exn f "function_type" with
  | Type_attr (Function (ins, outs)) -> (ins, outs)
  | _ -> invalid_arg "func.func: bad function_type"

let entry (f : op) : block = body_block f 0

(** Find a function by symbol name within a module. *)
let lookup (m : op) (name : string) : op option =
  find_op (fun o -> o.opname = "func.func" && string_attr o "sym_name" = Some name) m

let () =
  Verifier.register "func.func" (fun op ->
      ignore (name_of op);
      let ins, _ = signature op in
      let b = entry op in
      if List.length b.bargs <> List.length ins then
        Verifier.fail "func.func %s: entry block has %d args, type says %d"
          (name_of op) (List.length b.bargs) (List.length ins));
  Verifier.register_terminator "func.func" [ "func.return" ]
