(** Mini-Flang frontend.

    Parses a small Fortran subset — perfectly nested [do] loops over
    3D [real] arrays with constant-offset accesses, optionally surrounded
    by a timestep loop with buffer swap — and extracts stencil kernels from
    it, mirroring the stencil-extraction pass added to Flang in the paper's
    prior work (Brown et al., §3).

    Accepted shape (case-insensitive, free form):
    {v
      real :: u(0:nx-1, 0:ny-1, 0:nz-1)
      real :: un(0:nx-1, 0:ny-1, 0:nz-1)
      do step = 1, 100
        do k = 1, nz-2
          do j = 1, ny-2
            do i = 1, nx-2
              un(i,j,k) = 0.166 * (u(i-1,j,k) + u(i+1,j,k) + u(i,j,k))
            end do
          end do
        end do
        u = un
      end do
    v}
    Extents are provided by the caller ([nx]/[ny]/[nz] stay symbolic in the
    source). *)

module P = Stencil_program

exception Frontend_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Frontend_error s)) fmt

(** {1 Lexer} *)

type tok = Kw of string | Ident of string | Num of float | Punct of char | Newline

let keywords = [ "real"; "do"; "end"; "enddo"; "integer" ]

let lex (src : string) : tok list =
  let toks = ref [] in
  let n = String.length src in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '!' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '\n' then (emit Newline; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let s = !i in
      while
        !i < n
        && ((src.[!i] >= 'a' && src.[!i] <= 'z')
           || (src.[!i] >= 'A' && src.[!i] <= 'Z')
           || (src.[!i] >= '0' && src.[!i] <= '9')
           || src.[!i] = '_')
      do
        incr i
      done;
      let w = String.lowercase_ascii (String.sub src s (!i - s)) in
      if List.mem w keywords then emit (Kw w) else emit (Ident w)
    end
    else if c >= '0' && c <= '9' then begin
      let s = !i in
      while !i < n && ((src.[!i] >= '0' && src.[!i] <= '9') || src.[!i] = '.') do
        incr i
      done;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done
      end;
      emit (Num (float_of_string (String.sub src s (!i - s))))
    end
    else begin
      emit (Punct c);
      incr i
    end
  done;
  List.rev !toks

(** {1 AST} *)

type fexpr =
  | Fnum of float
  | Fref of string * findex list
  | Fvar of string
  | Fbin of char * fexpr * fexpr
  | Fneg of fexpr

and findex = { base : string; offset : int }

type fstmt =
  | Assign of { array : string; indices : findex list; rhs : fexpr }
  | Swap of string * string  (** whole-array copy [u = un] *)
  | Do of { var : string; lo : string; hi : string; body : fstmt list }

(** {1 Parser} *)

type pstate = { mutable toks : tok list }

let peek st = match st.toks with t :: _ -> t | [] -> Newline
let at_eof st = st.toks = []
let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let skip_newlines st =
  while (not (at_eof st)) && peek st = Newline do advance st done

let expect_punct st c =
  match peek st with
  | Punct c' when c' = c -> advance st
  | _ -> fail "expected '%c'" c

let parse_index st : findex =
  match peek st with
  | Ident v -> (
      advance st;
      match peek st with
      | Punct '+' ->
          advance st;
          (match peek st with
          | Num f -> advance st; { base = v; offset = int_of_float f }
          | _ -> fail "expected offset after '+'")
      | Punct '-' ->
          advance st;
          (match peek st with
          | Num f -> advance st; { base = v; offset = -int_of_float f }
          | _ -> fail "expected offset after '-'")
      | _ -> { base = v; offset = 0 })
  | _ -> fail "expected index expression"

let parse_index_list st : findex list =
  expect_punct st '(';
  let rec go acc =
    let ix = parse_index st in
    match peek st with
    | Punct ',' -> advance st; go (acc @ [ ix ])
    | Punct ')' -> advance st; acc @ [ ix ]
    | _ -> fail "expected ',' or ')' in index list"
  in
  go []

let rec parse_expr st : fexpr = parse_additive st

and parse_additive st =
  let lhs = ref (parse_term st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Punct '+' -> advance st; lhs := Fbin ('+', !lhs, parse_term st)
    | Punct '-' -> advance st; lhs := Fbin ('-', !lhs, parse_term st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_term st =
  let lhs = ref (parse_factor st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Punct '*' -> advance st; lhs := Fbin ('*', !lhs, parse_factor st)
    | Punct '/' -> advance st; lhs := Fbin ('/', !lhs, parse_factor st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_factor st =
  match peek st with
  | Num f -> advance st; Fnum f
  | Punct '-' -> advance st; Fneg (parse_factor st)
  | Punct '(' ->
      advance st;
      let e = parse_expr st in
      expect_punct st ')';
      e
  | Ident name -> (
      advance st;
      match peek st with
      | Punct '(' -> Fref (name, parse_index_list st)
      | _ -> Fvar name)
  | _ -> fail "expected expression"

let parse_do_bound st : string =
  match peek st with
  | Num f -> advance st; string_of_int (int_of_float f)
  | Ident v -> (
      advance st;
      match peek st with
      | Punct '-' ->
          advance st;
          (match peek st with
          | Num f -> advance st; Printf.sprintf "%s-%d" v (int_of_float f)
          | _ -> fail "do: bad bound")
      | _ -> v)
  | _ -> fail "do: bad bound"

(** Parse one statement (assumes not at [end]). *)
let rec parse_stmt st : fstmt =
  match peek st with
  | Kw "do" ->
      advance st;
      let var = match peek st with Ident v -> advance st; v | _ -> fail "do: var" in
      expect_punct st '=';
      let lo = parse_do_bound st in
      expect_punct st ',';
      let hi = parse_do_bound st in
      let body = parse_body st in
      Do { var; lo; hi; body }
  | Ident name -> (
      advance st;
      match peek st with
      | Punct '(' ->
          let indices = parse_index_list st in
          expect_punct st '=';
          let rhs = parse_expr st in
          Assign { array = name; indices; rhs }
      | Punct '=' -> (
          advance st;
          match peek st with
          | Ident src -> advance st; Swap (name, src)
          | _ -> fail "bad whole-array assignment")
      | _ -> fail "unexpected statement")
  | _ -> fail "unexpected token in statement position"

(** Parse statements until the matching [end do] / [enddo], consuming it. *)
and parse_body st : fstmt list =
  skip_newlines st;
  match peek st with
  | Kw "end" ->
      advance st;
      (match peek st with Kw "do" -> advance st | _ -> ());
      []
  | Kw "enddo" -> advance st; []
  | _ when at_eof st -> fail "missing 'end do'"
  | _ ->
      let s = parse_stmt st in
      s :: parse_body st

(** Parse declarations then top-level statements until EOF. *)
let parse (src : string) : string list * fstmt list =
  let st = { toks = lex src } in
  let arrays = ref [] in
  let rec decls () =
    skip_newlines st;
    match peek st with
    | Kw "real" | Kw "integer" ->
        let is_array = peek st = Kw "real" in
        advance st;
        while (match peek st with Punct ':' -> true | _ -> false) do advance st done;
        (match peek st with
        | Ident name ->
            advance st;
            (match peek st with
            | Punct '(' ->
                let depth = ref 0 in
                let continue_ = ref true in
                while !continue_ do
                  (match peek st with
                  | Punct '(' -> incr depth
                  | Punct ')' -> decr depth
                  | Newline -> fail "unterminated dimension spec"
                  | _ -> ());
                  advance st;
                  if !depth = 0 then continue_ := false
                done
            | _ -> ());
            if is_array then arrays := !arrays @ [ name ]
        | _ -> fail "expected identifier after type");
        decls ()
    | _ -> ()
  in
  decls ();
  let rec top acc =
    skip_newlines st;
    if at_eof st then acc else top (acc @ [ parse_stmt st ])
  in
  (!arrays, top [])

(** {1 Stencil extraction} *)

(** Convert the expression at the heart of a loop nest, mapping loop
    variables (given in (x, y, z) dimension order) to offsets. *)
let rec extract_expr (dims : string list) (e : fexpr) : P.expr =
  match e with
  | Fnum f -> P.Const f
  | Fneg e -> P.Sub (P.Const 0.0, extract_expr dims e)
  | Fvar v -> fail "free scalar variable '%s' in stencil expression" v
  | Fbin ('+', a, b) -> P.Add (extract_expr dims a, extract_expr dims b)
  | Fbin ('-', a, b) -> P.Sub (extract_expr dims a, extract_expr dims b)
  | Fbin ('*', a, b) -> P.Mul (extract_expr dims a, extract_expr dims b)
  | Fbin ('/', a, b) -> P.Div (extract_expr dims a, extract_expr dims b)
  | Fbin (c, _, _) -> fail "unsupported operator '%c'" c
  | Fref (arr, indices) ->
      let offset =
        List.map
          (fun d ->
            match List.find_opt (fun ix -> ix.base = d) indices with
            | Some ix -> ix.offset
            | None -> fail "array %s not indexed by loop var %s" arr d)
          dims
      in
      P.Access (arr, offset)

(** Walk into a perfect nest and return loop vars (outer first) and the
    single assignment inside. *)
let rec unwrap_nest vars = function
  | Do { var; body = [ (Do _ as inner) ]; _ } -> unwrap_nest (vars @ [ var ]) inner
  | Do { var; body = [ (Assign _ as a) ]; _ } -> (vars @ [ var ], a)
  | _ -> fail "expected a perfect loop nest with a single assignment"

let extract ~(name : string) ~(extents : int * int * int)
    ?(iterations : int option) ~(dsl_loc : int) (stmts : fstmt list) : P.t =
  (* peel optional outer time loop: its body contains nests and swaps;
     an explicit [iterations] overrides the source trip count (used to
     re-size the experiment without editing the source) *)
  let time_body, iterations =
    match stmts with
    | [ Do { body; lo; hi; _ } ]
      when List.exists (function Swap _ -> true | _ -> false) body ->
        let its =
          match (iterations, int_of_string_opt lo, int_of_string_opt hi) with
          | Some n, _, _ -> n
          | None, Some l, Some h -> h - l + 1
          | None, _, _ -> 1
        in
        (body, its)
    | _ -> (stmts, Option.value iterations ~default:1)
  in
  let nests = List.filter_map (function Do _ as d -> Some d | _ -> None) time_body in
  let swaps = List.filter_map (function Swap (a, b) -> Some (a, b) | _ -> None) time_body in
  if nests = [] then fail "no loop nest found";
  let kernels =
    List.map
      (fun nest ->
        let vars, assign = unwrap_nest [] nest in
        (* Fortran convention: do k / do j / do i — innermost is x *)
        let dims =
          match vars with
          | [ vz; vy; vx ] -> [ vx; vy; vz ]
          | _ -> fail "expected exactly 3 nested loops, got %d" (List.length vars)
        in
        match assign with
        | Assign { array; indices; rhs } ->
            List.iter
              (fun d ->
                if not (List.exists (fun ix -> ix.base = d) indices) then
                  fail "assignment to %s not indexed by %s" array d)
              dims;
            { P.kname = array ^ "_kernel"; output = array; expr = extract_expr dims rhs }
        | _ -> fail "nest body is not an assignment")
      nests
  in
  let state, next_state =
    match swaps with
    | [] ->
        let ins = P.kernel_inputs (List.hd kernels) in
        (ins, [ (List.hd kernels).P.output ])
    | _ -> (List.map fst swaps, List.map snd swaps)
  in
  if List.length state <> List.length next_state then
    fail "swap structure does not match state";
  let prog =
    {
      P.pname = name;
      frontend = "flang";
      extents;
      halo = 1;
      state;
      kernels;
      next_state;
      iterations;
      use_loop = true;
      dsl_loc;
    }
  in
  { prog with halo = max 1 (P.program_radius prog) }

(** Front door: parse Fortran source and extract a stencil program.
    [iterations], when given, overrides the source's timestep trip count. *)
let compile ~(name : string) ~(extents : int * int * int) ?iterations
    (src : string) : P.t =
  let _arrays, stmts = parse src in
  let dsl_loc =
    List.length
      (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' src))
  in
  extract ~name ~extents ?iterations ~dsl_loc stmts
