(** Frontend-independent stencil program representation.

    Each of the three frontends (mini-Flang, mini-Devito, mini-PSyclone)
    translates its surface syntax into this representation, which is then
    compiled into stencil-dialect IR — the common entry point of the
    paper's pipeline (Figure 3). *)

open Wsc_ir.Ir
module B = Wsc_ir.Builder
module Stencil = Wsc_dialects.Stencil
module Arith = Wsc_dialects.Arith
module Scf = Wsc_dialects.Scf
module Func = Wsc_dialects.Func
module Builtin = Wsc_dialects.Builtin

(** Point-wise expression over grid accesses at constant offsets. *)
type expr =
  | Access of string * int list  (** grid name, offset per dimension *)
  | Const of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

(** One stencil kernel: computes grid [output] from an expression over
    previously defined grids. *)
type kernel = { kname : string; output : string; expr : expr }

type t = {
  pname : string;
  frontend : string;  (** which DSL produced this: flang/devito/psyclone/csl *)
  extents : int * int * int;  (** interior nx, ny, nz *)
  halo : int;  (** halo width (the stencil radius) *)
  state : string list;  (** grids carried across timesteps, in order *)
  kernels : kernel list;  (** applied in order within one step *)
  next_state : string list;  (** per state slot: a kernel output or a state name *)
  iterations : int;
  use_loop : bool;  (** wrap steps in an [scf.for] (false: straight-line) *)
  dsl_loc : int;  (** lines of DSL source code, for the Table 1 comparison *)
}

(** {1 Expression utilities} *)

let rec accesses = function
  | Access (g, off) -> [ (g, off) ]
  | Const _ -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> accesses a @ accesses b

let rec fold_constants = function
  | (Access _ | Const _) as e -> e
  | Add (a, b) -> (
      match (fold_constants a, fold_constants b) with
      | Const x, Const y -> Const (x +. y)
      | a, b -> Add (a, b))
  | Sub (a, b) -> (
      match (fold_constants a, fold_constants b) with
      | Const x, Const y -> Const (x -. y)
      | a, b -> Sub (a, b))
  | Mul (a, b) -> (
      match (fold_constants a, fold_constants b) with
      | Const x, Const y -> Const (x *. y)
      | a, b -> Mul (a, b))
  | Div (a, b) -> (
      match (fold_constants a, fold_constants b) with
      | Const x, Const y -> Const (x /. y)
      | a, b -> Div (a, b))

(** Grid names read by a kernel, in first-use order, without duplicates. *)
let kernel_inputs (k : kernel) : string list =
  List.fold_left
    (fun acc (g, _) -> if List.mem g acc then acc else acc @ [ g ])
    [] (accesses k.expr)

(** Maximum |offset| per dimension over the whole program. *)
let program_radius (p : t) : int =
  List.fold_left
    (fun r k ->
      List.fold_left
        (fun r (_, off) -> List.fold_left (fun r o -> max r (abs o)) r off)
        r (accesses k.expr))
    0 p.kernels

(** Count of FLOPs per point of a kernel expression. *)
let rec expr_flops = function
  | Access _ | Const _ -> 0
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      1 + expr_flops a + expr_flops b

(** {1 Compilation to stencil-dialect IR} *)

let grid_type (p : t) : typ =
  let nx, ny, nz = p.extents in
  let h = p.halo in
  Temp ([ (-h, nx + h); (-h, ny + h); (-h, nz + h) ], F32)

let field_type (p : t) : typ =
  match grid_type p with Temp (b, e) -> Field (b, e) | t -> t

let interior (p : t) : (int * int) list =
  let nx, ny, nz = p.extents in
  [ (0, nx); (0, ny); (0, nz) ]

(** Emit the body of one kernel into builder [b], with [env] mapping grid
    names to SSA values (block args of the apply).  Accesses are CSE'd per
    (grid, offset). *)
let emit_expr (b : B.t) (env : (string * value) list) (expr : expr) : value =
  let cache : (string * int list, value) Hashtbl.t = Hashtbl.create 16 in
  let rec go = function
    | Const c -> B.insert b (Arith.constant_f c)
    | Access (g, off) -> (
        match Hashtbl.find_opt cache (g, off) with
        | Some v -> v
        | None ->
            let grid =
              match List.assoc_opt g env with
              | Some v -> v
              | None -> invalid_arg ("unknown grid " ^ g)
            in
            let v = B.insert b (Stencil.access grid ~offset:off) in
            Hashtbl.replace cache (g, off) v;
            v)
    | Add (x, y) ->
        let vx = go x in
        let vy = go y in
        B.insert b (Arith.addf vx vy)
    | Sub (x, y) ->
        let vx = go x in
        let vy = go y in
        B.insert b (Arith.subf vx vy)
    | Mul (x, y) ->
        let vx = go x in
        let vy = go y in
        B.insert b (Arith.mulf vx vy)
    | Div (x, y) ->
        let vx = go x in
        let vy = go y in
        B.insert b (Arith.divf vx vy)
  in
  go (fold_constants expr)

(** Emit one [stencil.apply] for kernel [k] reading grids from [env]. *)
let emit_kernel (p : t) (b : B.t) (env : (string * value) list) (k : kernel) : value =
  let input_names = kernel_inputs k in
  let inputs =
    List.map
      (fun n ->
        match List.assoc_opt n env with
        | Some v -> v
        | None -> invalid_arg ("kernel " ^ k.kname ^ ": unknown grid " ^ n))
      input_names
  in
  let apply =
    Stencil.apply ~compute_bounds:(interior p) ~inputs ~result_type:(grid_type p)
      (fun bb args ->
        let body_env = List.combine input_names args in
        let r = emit_expr bb body_env k.expr in
        B.insert0 bb (Stencil.return_ [ r ]))
  in
  B.insert b apply

(** Emit the kernels of one timestep and return the next state values. *)
let emit_step (p : t) (b : B.t) (state_env : (string * value) list) :
    (string * value) list * value list =
  let env =
    List.fold_left
      (fun env k ->
        let out = emit_kernel p b env k in
        env @ [ (k.output, out) ])
      state_env p.kernels
  in
  let next =
    List.map
      (fun n ->
        match List.assoc_opt n env with
        | Some v -> v
        | None -> invalid_arg ("next_state: unknown grid " ^ n))
      p.next_state
  in
  (env, next)

(** Compile the program to a module containing function [main]: it takes
    one field per state grid, loads them, runs the timestep loop (or the
    straight-line kernels), and stores the final state back. *)
let compile (p : t) : op =
  let ft = field_type p in
  let n_state = List.length p.state in
  let f =
    Func.func ~name:"main"
      ~args:(List.init n_state (fun _ -> ft))
      ~results:[] (fun b args ->
        let temps = List.map (fun fv -> B.insert b (Stencil.load fv)) args in
        let finals =
          if p.use_loop then begin
            let lb = B.insert b (Arith.constant_index 0) in
            let ub = B.insert b (Arith.constant_index p.iterations) in
            let step = B.insert b (Arith.constant_index 1) in
            let loop =
              Scf.for_ ~lb ~ub ~step ~iter_args:temps (fun bb _iv iter ->
                  let state_env = List.combine p.state iter in
                  let _, next = emit_step p bb state_env in
                  B.insert0 bb (Scf.yield next))
            in
            B.insert_multi b loop
          end
          else begin
            let env = ref (List.combine p.state temps) in
            let out = ref temps in
            for _ = 1 to p.iterations do
              let env', next = emit_step p b !env in
              ignore env';
              out := next;
              env := List.combine p.state next
            done;
            !out
          end
        in
        List.iter2 (fun t fv -> B.insert0 b (Stencil.store t fv)) finals args;
        B.insert0 b (Func.return_ []))
  in
  Builtin.module_op [ f ]

(** {1 Reference execution}

    Convenience wrapper: allocate and initialize fields, run [main] with
    the sequential interpreter, return the final state grids. *)
module Interp = Wsc_dialects.Interp

let run_reference (p : t) : Interp.grid list =
  let m = compile p in
  let ft = field_type p in
  let grids =
    List.map
      (fun _ ->
        let g = Interp.grid_of_typ ft in
        Interp.init_grid g;
        g)
      p.state
  in
  ignore (Interp.run_func m ~name:"main" (List.map (fun g -> Interp.Rgrid g) grids));
  grids
