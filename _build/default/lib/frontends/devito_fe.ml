(** Mini-Devito frontend.

    A symbolic finite-difference eDSL mirroring the Devito API surface the
    paper's benchmarks use: grids, (time-)functions with a space order,
    derivative operators built from standard central-difference
    coefficients, equations, and an operator.  Lowering produces a
    {!Stencil_program.t}, the common entry to the pipeline.

    Second-order-accurate (space_order 2) and fourth-order-accurate
    (space_order 4) Laplacians give 7-point and 13-point 3D star stencils
    respectively, matching the paper's Diffusion / Acoustic kernels. *)

module P = Stencil_program

exception Frontend_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Frontend_error s)) fmt

type grid = { gname : string; shape : int * int * int; spacing : float }

(** A symbolic function on a grid.  [time_order] 1 gives [u] / [u.forward];
    2 adds [u.backward]. *)
type fn = { fname : string; fgrid : grid; space_order : int; time_order : int }

(** Symbolic expressions: functions at time offsets, spatial derivatives. *)
type sym =
  | Fn_at of fn * int  (** function at time offset: -1 backward, 0, +1 forward *)
  | Snum of float
  | Sadd of sym * sym
  | Ssub of sym * sym
  | Smul of sym * sym
  | Sdiv of sym * sym
  | Deriv2 of sym * int  (** second spatial derivative along dimension 0|1|2 *)
  | Laplace of sym  (** sum of second derivatives over all three dims *)
  | Shift of sym * int list  (** constant spatial shift, for custom stencils *)

let grid ?(spacing = 1.0) ~shape name = { gname = name; shape; spacing }

let time_function ?(time_order = 1) ~space_order ~grid name =
  { fname = name; fgrid = grid; space_order; time_order }

let ( + ) a b = Sadd (a, b)
let ( - ) a b = Ssub (a, b)
let ( * ) a b = Smul (a, b)
let ( / ) a b = Sdiv (a, b)
let num f = Snum f
let fn u = Fn_at (u, 0)
let forward u = Fn_at (u, 1)
let backward u = Fn_at (u, -1)
let laplace e = Laplace e
let dxx e = Deriv2 (e, 0)
let dyy e = Deriv2 (e, 1)
let dzz e = Deriv2 (e, 2)
let shift e off = Shift (e, off)

type eq = { lhs : sym; rhs : sym }

let eq lhs rhs = { lhs; rhs }

(** Central second-derivative coefficients (offset, coefficient), unit
    spacing, for a given order of accuracy. *)
let deriv2_coeffs = function
  | 2 -> [ (-1, 1.0); (0, -2.0); (1, 1.0) ]
  | 4 ->
      [
        (-2, -1.0 /. 12.0);
        (-1, 4.0 /. 3.0);
        (0, -5.0 /. 2.0);
        (1, 4.0 /. 3.0);
        (2, -1.0 /. 12.0);
      ]
  | 8 ->
      [
        (-4, -1.0 /. 560.0);
        (-3, 8.0 /. 315.0);
        (-2, -1.0 /. 5.0);
        (-1, 8.0 /. 5.0);
        (0, -205.0 /. 72.0);
        (1, 8.0 /. 5.0);
        (2, -1.0 /. 5.0);
        (3, 8.0 /. 315.0);
        (4, -1.0 /. 560.0);
      ]
  | o -> fail "unsupported space order %d" o

(** Name of the stencil-program grid for a function at a time offset.
    Time offset 0 = current ("u"), -1 = previous ("u_prev"). *)
let grid_name (f : fn) (t : int) : string =
  match t with
  | 0 -> f.fname
  | -1 -> f.fname ^ "_prev"
  | 1 -> f.fname ^ "_next"
  | t -> fail "unsupported time offset %d" t

let shift_offset off extra = List.map2 Stdlib.( + ) off extra

(** Lower a symbolic expression to a point-wise stencil expression. *)
let rec lower_sym (s : sym) (shift : int list) : P.expr =
  match s with
  | Snum f -> P.Const f
  | Fn_at (f, t) -> P.Access (grid_name f t, shift)
  | Sadd (a, b) -> P.Add (lower_sym a shift, lower_sym b shift)
  | Ssub (a, b) -> P.Sub (lower_sym a shift, lower_sym b shift)
  | Smul (a, b) -> P.Mul (lower_sym a shift, lower_sym b shift)
  | Sdiv (a, b) -> P.Div (lower_sym a shift, lower_sym b shift)
  | Shift (e, extra) -> lower_sym e (shift_offset shift extra)
  | Deriv2 (e, dim) ->
      let order = space_order_of e in
      let h = spacing_of e in
      let inv_h2 = 1.0 /. (h *. h) in
      let terms =
        List.map
          (fun (off, c) ->
            let extra = List.init 3 (fun d -> if d = dim then off else 0) in
            P.Mul (P.Const (c *. inv_h2), lower_sym e (shift_offset shift extra)))
          (deriv2_coeffs order)
      in
      List.fold_left (fun acc t -> P.Add (acc, t)) (List.hd terms) (List.tl terms)
  | Laplace e ->
      P.Add (P.Add (lower_sym (Deriv2 (e, 0)) shift, lower_sym (Deriv2 (e, 1)) shift),
             lower_sym (Deriv2 (e, 2)) shift)

and space_order_of = function
  | Fn_at (f, _) -> f.space_order
  | Snum _ -> 2
  | Sadd (a, b) | Ssub (a, b) | Smul (a, b) | Sdiv (a, b) ->
      max (space_order_of a) (space_order_of b)
  | Deriv2 (e, _) | Laplace e | Shift (e, _) -> space_order_of e

and spacing_of = function
  | Fn_at (f, _) -> f.fgrid.spacing
  | Snum _ -> 1.0
  | Sadd (a, _) | Ssub (a, _) | Smul (a, _) | Sdiv (a, _) -> spacing_of a
  | Deriv2 (e, _) | Laplace e | Shift (e, _) -> spacing_of e

(** Build an operator: each equation must assign [forward u] for some
    time function [u].  Produces the stencil program run for
    [iterations] timesteps. *)
let operator ~(name : string) ~(iterations : int) ?(dsl_loc = 0) (eqs : eq list) :
    P.t =
  if eqs = [] then fail "operator: no equations";
  let target = function
    | Fn_at (f, 1) -> f
    | _ -> fail "operator: every lhs must be a forward function reference"
  in
  let kernels =
    List.map
      (fun e ->
        let f = target e.lhs in
        {
          P.kname = f.fname ^ "_update";
          output = grid_name f 1;
          expr = lower_sym e.rhs [ 0; 0; 0 ];
        })
      eqs
  in
  let fns = List.map (fun e -> target e.lhs) eqs in
  let f0 = List.hd fns in
  let extents = f0.fgrid.shape in
  (* state grids: for time_order 2 both u_prev and u; for 1 just u *)
  let state =
    List.concat_map
      (fun f ->
        if f.time_order >= 2 then [ grid_name f (-1); grid_name f 0 ]
        else [ grid_name f 0 ])
      fns
  in
  let next_state =
    List.concat_map
      (fun f ->
        if f.time_order >= 2 then [ grid_name f 0; grid_name f 1 ]
        else [ grid_name f 1 ])
      fns
  in
  let prog =
    {
      P.pname = name;
      frontend = "devito";
      extents;
      halo = 1;
      state;
      kernels;
      next_state;
      iterations;
      use_loop = true;
      dsl_loc;
    }
  in
  { prog with halo = max 1 (P.program_radius prog) }
