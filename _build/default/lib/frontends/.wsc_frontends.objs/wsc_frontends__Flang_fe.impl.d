lib/frontends/flang_fe.ml: List Option Printf Stencil_program String
