lib/frontends/stencil_program.mli: Wsc_dialects Wsc_ir
