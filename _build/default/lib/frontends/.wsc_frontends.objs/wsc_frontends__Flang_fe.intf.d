lib/frontends/flang_fe.mli: Stencil_program
