lib/frontends/stencil_program.ml: Hashtbl List Wsc_dialects Wsc_ir
