lib/frontends/devito_fe.mli: Stencil_program
