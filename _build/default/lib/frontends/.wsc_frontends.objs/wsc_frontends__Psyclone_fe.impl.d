lib/frontends/psyclone_fe.ml: List Option Printf Stencil_program String
