lib/frontends/psyclone_fe.mli: Stencil_program
