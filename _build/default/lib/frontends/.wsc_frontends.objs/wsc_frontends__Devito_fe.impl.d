lib/frontends/devito_fe.ml: List Printf Stdlib Stencil_program
