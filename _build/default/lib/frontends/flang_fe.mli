(** Mini-Flang frontend: parses a Fortran subset — perfectly nested [do]
    loops over 3-D [real] arrays with constant-offset accesses, optionally
    surrounded by a timestep loop with whole-array swaps — and extracts
    stencil kernels, mirroring the stencil-extraction pass the paper's
    prior work added to Flang. *)

exception Frontend_error of string

(** Parse Fortran source and extract a stencil program.  The array
    extents are symbolic in the source ([nx]/[ny]/[nz]) and provided by
    the caller; [iterations], when given, overrides the source's timestep
    trip count.
    @raise Frontend_error on unsupported or malformed input. *)
val compile :
  name:string ->
  extents:int * int * int ->
  ?iterations:int ->
  string ->
  Stencil_program.t
