(** Mini-Devito frontend: a symbolic finite-difference eDSL mirroring the
    Devito API surface the paper's benchmarks use — grids, time functions
    with a space order, derivative operators from standard
    central-difference coefficients, equations, operators. *)

exception Frontend_error of string

type grid
type fn
type sym
type eq

val grid : ?spacing:float -> shape:int * int * int -> string -> grid

(** [time_function ~time_order ~space_order ~grid name]:
    [time_order] 2 adds a backward time level ([u_prev]). *)
val time_function : ?time_order:int -> space_order:int -> grid:grid -> string -> fn

(** {1 Symbolic expressions} *)

val ( + ) : sym -> sym -> sym
val ( - ) : sym -> sym -> sym
val ( * ) : sym -> sym -> sym
val ( / ) : sym -> sym -> sym
val num : float -> sym

(** The function at the current time level. *)
val fn : fn -> sym

val forward : fn -> sym
val backward : fn -> sym

(** Sum of second derivatives over all three axes. *)
val laplace : sym -> sym
val dxx : sym -> sym
val dyy : sym -> sym
val dzz : sym -> sym

(** Constant spatial shift — for custom (non-derivative) stencils. *)
val shift : sym -> int list -> sym

(** Central second-derivative coefficients (offset, coefficient) at unit
    spacing for accuracy order 2, 4 or 8.
    @raise Frontend_error for other orders. *)
val deriv2_coeffs : int -> (int * float) list

val eq : sym -> sym -> eq

(** Build the operator: every equation's left side must be
    [forward u] for some time function [u].
    @raise Frontend_error otherwise. *)
val operator :
  name:string -> iterations:int -> ?dsl_loc:int -> eq list -> Stencil_program.t
