(** Mini-PSyclone frontend.

    PSyclone kernels declare metadata describing each field argument
    (access mode and stencil shape) and the algorithm layer invokes a list
    of kernels.  This module mirrors that structure: kernels carry explicit
    argument metadata which is validated against the kernel body, and an
    [invoke] lowers the kernel list to a {!Stencil_program.t} with one
    [stencil.apply] per kernel — the structure the UVKBE benchmark needs
    (two consecutive applies, four fields, two of them communicated). *)

module P = Stencil_program

exception Frontend_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Frontend_error s)) fmt

type access = Gh_read | Gh_write

type stencil_shape =
  | Pointwise  (** only [0,0,0] accesses *)
  | Cross of int  (** star stencil of the given depth *)

type arg_meta = { field : string; access : access; shape : stencil_shape }

type kernel = {
  kname : string;
  meta : arg_meta list;
  body : P.expr;  (** point expression; must assign the single gh_write field *)
}

let kernel ~name ~meta ~body = { kname = name; meta; body }

(** Validate a kernel body against its declared metadata: reads only from
    gh_read fields within the declared stencil shape; no reads of the
    output. *)
let check_kernel (k : kernel) : unit =
  let writes = List.filter (fun a -> a.access = Gh_write) k.meta in
  let w =
    match writes with
    | [ w ] -> w
    | _ -> fail "kernel %s: exactly one gh_write field required" k.kname
  in
  List.iter
    (fun (g, off) ->
      if g = w.field then fail "kernel %s: reads its gh_write field %s" k.kname g;
      match List.find_opt (fun a -> a.field = g) k.meta with
      | None -> fail "kernel %s: access to undeclared field %s" k.kname g
      | Some { access = Gh_write; _ } ->
          fail "kernel %s: field %s is declared gh_write but read" k.kname g
      | Some { shape = Pointwise; _ } ->
          if List.exists (fun o -> o <> 0) off then
            fail "kernel %s: field %s is pointwise but accessed at an offset"
              k.kname g
      | Some { shape = Cross d; _ } ->
          let nonzero = List.filter (fun o -> o <> 0) off in
          if List.length nonzero > 1 then
            fail "kernel %s: field %s access %s is not on the stencil cross"
              k.kname g
              (String.concat "," (List.map string_of_int off));
          List.iter
            (fun o ->
              if abs o > d then
                fail "kernel %s: field %s accessed beyond stencil depth %d"
                  k.kname g d)
            off)
    (P.accesses k.body)

let output_field (k : kernel) : string =
  match List.find_opt (fun a -> a.access = Gh_write) k.meta with
  | Some a -> a.field
  | None -> fail "kernel %s: no gh_write field" k.kname

(** [invoke] — the PSy layer: schedule kernels in order over the mesh.
    [state] lists the persistent fields; [next_state] maps them to their
    values after one step (defaults to identity, i.e. a single-shot
    diagnostic computation). *)
let invoke ~(name : string) ~(extents : int * int * int) ~(iterations : int)
    ?(use_loop = true) ?state ?next_state ?(dsl_loc = 0) (kernels : kernel list) :
    P.t =
  List.iter check_kernel kernels;
  let kouts = List.map output_field kernels in
  let all_reads =
    List.concat_map (fun k -> List.map fst (P.accesses k.body)) kernels
  in
  (* persistent fields default to: every field read before being produced *)
  let default_state =
    List.fold_left
      (fun acc g -> if List.mem g acc || List.mem g kouts then acc else acc @ [ g ])
      [] all_reads
  in
  let state = Option.value state ~default:default_state in
  let next_state = Option.value next_state ~default:state in
  let pkernels =
    List.map
      (fun k -> { P.kname = k.kname; output = output_field k; expr = k.body })
      kernels
  in
  let prog =
    {
      P.pname = name;
      frontend = "psyclone";
      extents;
      halo = 1;
      state;
      kernels = pkernels;
      next_state;
      iterations;
      use_loop;
      dsl_loc;
    }
  in
  { prog with halo = max 1 (P.program_radius prog) }
