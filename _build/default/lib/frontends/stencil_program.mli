(** Frontend-independent stencil program representation: every frontend
    lowers its surface syntax to this form, which then compiles to
    stencil-dialect IR — the common entry point of the pipeline
    (paper Figure 3). *)

(** Point-wise expression over grid accesses at constant offsets. *)
type expr =
  | Access of string * int list  (** grid name, per-dimension offset *)
  | Const of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type kernel = { kname : string; output : string; expr : expr }

type t = {
  pname : string;
  frontend : string;  (** which DSL produced this *)
  extents : int * int * int;  (** interior nx, ny, nz *)
  halo : int;  (** halo width (the stencil radius) *)
  state : string list;  (** grids carried across timesteps *)
  kernels : kernel list;  (** applied in order within one step *)
  next_state : string list;  (** per state slot: kernel output or state name *)
  iterations : int;
  use_loop : bool;  (** wrap steps in an [scf.for] (false: straight-line) *)
  dsl_loc : int;  (** DSL source lines, for the Table 1 comparison *)
}

(** {1 Expression utilities} *)

(** All accesses, in evaluation order, with duplicates. *)
val accesses : expr -> (string * int list) list

val fold_constants : expr -> expr

(** Grids read by a kernel, first-use order, deduplicated. *)
val kernel_inputs : kernel -> string list

(** Maximum |offset| over the whole program. *)
val program_radius : t -> int

val expr_flops : expr -> int

(** {1 Compilation to stencil IR} *)

(** The halo-extended grid type all state grids share. *)
val grid_type : t -> Wsc_ir.Ir.typ

val field_type : t -> Wsc_ir.Ir.typ

(** The interior compute bounds. *)
val interior : t -> (int * int) list

(** Compile to a module whose [main] function takes one field per state
    grid, runs the timestep loop (or straight-line kernels), and stores
    the final state back. *)
val compile : t -> Wsc_ir.Ir.op

(** Allocate and deterministically initialize fields, run [main] with the
    sequential interpreter, return the final (3-D scalar) grids. *)
val run_reference : t -> Wsc_dialects.Interp.grid list
