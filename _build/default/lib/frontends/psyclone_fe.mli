(** Mini-PSyclone frontend: kernels declare metadata for each field
    argument (access mode and stencil shape), validated against the kernel
    body; an [invoke] schedules a kernel list over the mesh — the
    structure of the paper's UVKBE benchmark. *)

exception Frontend_error of string

type access = Gh_read | Gh_write

type stencil_shape =
  | Pointwise  (** only zero-offset accesses *)
  | Cross of int  (** star stencil of the given depth *)

type arg_meta = { field : string; access : access; shape : stencil_shape }

type kernel = {
  kname : string;
  meta : arg_meta list;
  body : Stencil_program.expr;
}

val kernel :
  name:string -> meta:arg_meta list -> body:Stencil_program.expr -> kernel

(** Validate a kernel body against its metadata: reads only declared
    [Gh_read] fields within their stencil shapes, exactly one [Gh_write]
    field, never read.
    @raise Frontend_error on violation. *)
val check_kernel : kernel -> unit

val output_field : kernel -> string

(** The PSy layer: schedule [kernels] in order.  [state] lists the
    persistent fields (default: every field read before being produced);
    [next_state] maps them to their post-step values.
    @raise Frontend_error if any kernel fails validation. *)
val invoke :
  name:string ->
  extents:int * int * int ->
  iterations:int ->
  ?use_loop:bool ->
  ?state:string list ->
  ?next_state:string list ->
  ?dsl_loc:int ->
  kernel list ->
  Stencil_program.t
