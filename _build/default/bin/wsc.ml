(** wsc — the wafer-scale stencil compiler driver.

    Subcommands:
    - [compile]: run the full pipeline on a built-in benchmark or a
      stencil-dialect IR file and write the generated CSL files;
    - [simulate]: compile and execute on the fabric simulator, checking
      the result against the sequential reference interpreter;
    - [perf]: report simulated throughput for a benchmark/machine/size;
    - [ir]: print the IR after a chosen pipeline stage. *)

open Cmdliner
module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp

let program_of ~bench ~input ~size ~iterations : P.t option * Wsc_ir.Ir.op =
  match (bench, input) with
  | Some id, None ->
      let d = B.find id in
      let p =
        match iterations with
        | Some n -> d.make_n size n
        | None -> d.make size
      in
      (Some p, P.compile p)
  | None, Some file -> (None, Wsc_ir.Parser.parse_file file)
  | _ -> invalid_arg "give exactly one of --bench or an input file"

let size_conv =
  let parse s =
    match s with
    | "tiny" -> Ok B.Tiny
    | "small" -> Ok B.Small
    | "medium" -> Ok B.Medium
    | "large" -> Ok B.Large
    | s -> (
        match String.split_on_char 'x' s with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some x, Some y -> Ok (B.Proxy (x, y))
            | _ -> Error (`Msg ("bad size: " ^ s)))
        | _ -> Error (`Msg ("bad size: " ^ s)))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (B.size_to_string s))

let machine_conv =
  let parse = function
    | "wse2" -> Ok Wsc_wse.Machine.wse2
    | "wse3" -> Ok Wsc_wse.Machine.wse3
    | s -> Error (`Msg ("unknown machine: " ^ s))
  in
  Arg.conv (parse, fun fmt (m : Wsc_wse.Machine.t) -> Format.pp_print_string fmt m.name)

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "bench" ] ~docv:"NAME"
        ~doc:"Built-in benchmark (jacobian, diffusion, acoustic, seismic, uvkbe).")

let input_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Stencil-dialect IR input file.")

let size_arg =
  Arg.(
    value & opt size_conv B.Tiny
    & info [ "s"; "size" ] ~docv:"SIZE"
        ~doc:"Problem size: tiny, small, medium, large or WxH.")

let iters_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Timestep count override.")

let machine_arg =
  Arg.(
    value & opt machine_conv Wsc_wse.Machine.wse3
    & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Target: wse2 or wse3.")

let outdir_arg =
  Arg.(
    value & opt string "out"
    & info [ "o"; "outdir" ] ~docv:"DIR" ~doc:"Output directory for CSL files.")

let pipeline_options = Wsc_core.Pipeline.default_options

(* ---------------- compile ---------------- *)

let compile_cmd =
  let run bench input size iterations outdir =
    let _, m = program_of ~bench ~input ~size ~iterations in
    let compiled = Wsc_core.Pipeline.compile ~options:pipeline_options m in
    let files = Wsc_core.Csl_printer.print_files compiled in
    if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
    List.iter
      (fun (f : Wsc_core.Csl_printer.file) ->
        let path = Filename.concat outdir f.filename in
        let oc = open_out path in
        output_string oc f.contents;
        close_out oc;
        Printf.printf "wrote %s (%d LoC)\n" path (Wsc_core.Csl_printer.loc_of f.contents))
      files
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile to CSL source files.")
    Term.(const run $ bench_arg $ input_arg $ size_arg $ iters_arg $ outdir_arg)

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let run bench input size iterations machine =
    let prog, m = program_of ~bench ~input ~size ~iterations in
    let compiled = Wsc_core.Pipeline.compile ~options:pipeline_options m in
    match prog with
    | None ->
        prerr_endline "simulate: reference check needs --bench";
        exit 1
    | Some p ->
        let ft = P.field_type p in
        let init =
          List.map
            (fun _ ->
              let g3 = I.grid_of_typ ft in
              I.init_grid g3;
              I.retensorize_grid g3)
            p.P.state
        in
        (* simulate first: the fabric guards (grid size, per-PE memory)
           reject oversized runs before the expensive reference pass *)
        let h = Wsc_wse.Host.simulate machine compiled init in
        let out = Wsc_wse.Host.read_all h in
        let ref_grids = P.run_reference p in
        let maxd =
          List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff ref_grids out)
        in
        let stats = Wsc_wse.Fabric.total_stats h.sim in
        Printf.printf "simulated %s on %s: %dx%d PEs, %.0f cycles (%.3f ms)\n"
          p.P.pname machine.name h.sim.width h.sim.height
          (Wsc_wse.Fabric.elapsed_cycles h.sim)
          (1e3 *. Wsc_wse.Fabric.elapsed_seconds h.sim);
        Printf.printf "  flops=%.3e  sent=%d elems  tasks=%d\n" stats.flops
          stats.elems_sent stats.task_activations;
        Printf.printf "  max |difference| vs sequential reference: %.3e  -> %s\n" maxd
          (if maxd < 1e-4 then "MATCH" else "MISMATCH");
        if maxd >= 1e-4 then exit 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Compile, run on the fabric simulator, check against the reference.")
    Term.(const run $ bench_arg $ input_arg $ size_arg $ iters_arg $ machine_arg)

(* ---------------- perf ---------------- *)

let perf_cmd =
  let run bench size machine =
    match bench with
    | None ->
        prerr_endline "perf: --bench required";
        exit 1
    | Some id ->
        let d = B.find id in
        let r = Wsc_perf.Wse_perf.measure ~machine ~size d in
        Format.printf "%a@." Wsc_perf.Wse_perf.pp_measurement r
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Report simulated throughput.")
    Term.(const run $ bench_arg $ size_arg $ machine_arg)

(* ---------------- ir ---------------- *)

let stage_arg =
  Arg.(
    value & opt string "csl"
    & info [ "stage" ] ~docv:"STAGE"
        ~doc:"Pipeline stage to print: stencil, distributed, prefetch, \
              csl-stencil, bufferized, csl.")

let ir_cmd =
  let run bench input size iterations stage =
    let _, m = program_of ~bench ~input ~size ~iterations in
    Wsc_core.Csl_stencil_interp.register ();
    let o = pipeline_options in
    let passes =
      match stage with
      | "stencil" -> []
      | "distributed" -> Wsc_core.Pipeline.frontend_passes o
      | "prefetch" ->
          Wsc_core.Pipeline.frontend_passes o
          @ [ List.hd (Wsc_core.Pipeline.middle_passes o) ]
      | "csl-stencil" ->
          Wsc_core.Pipeline.frontend_passes o
          @ (Wsc_core.Pipeline.middle_passes o |> List.filteri (fun i _ -> i < 2))
      | "bufferized" ->
          Wsc_core.Pipeline.frontend_passes o @ Wsc_core.Pipeline.middle_passes o
      | "csl" -> Wsc_core.Pipeline.passes o
      | s ->
          prerr_endline ("unknown stage " ^ s);
          exit 1
    in
    let m = Wsc_ir.Pass.run_pipeline passes m in
    Wsc_ir.Printer.print_op m
  in
  Cmd.v
    (Cmd.info "ir" ~doc:"Print the IR after a pipeline stage.")
    Term.(const run $ bench_arg $ input_arg $ size_arg $ iters_arg $ stage_arg)

let () =
  let info =
    Cmd.info "wsc" ~version:"1.0.0"
      ~doc:"An MLIR-style lowering pipeline for stencils at wafer scale."
  in
  let rc =
    try
      Cmd.eval ~catch:false
        (Cmd.group info [ compile_cmd; simulate_cmd; perf_cmd; ir_cmd ])
    with
    | Wsc_wse.Fabric.Sim_error msg
    | Wsc_wse.Host.Host_error msg
    | Wsc_core.To_csl_stencil.Lowering_error msg
    | Wsc_core.To_actors.Actor_error msg ->
        prerr_endline ("wsc: " ^ msg);
        2
    | Wsc_ir.Pass.Pass_failed (pass, exn) ->
        prerr_endline
          (Printf.sprintf "wsc: pass %s failed: %s" pass (Printexc.to_string exn));
        2
  in
  exit rc
